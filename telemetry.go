package divot

import "divot/internal/telemetry"

// Telemetry re-exports. The implementation lives in internal/telemetry; these
// aliases are the supported public names. Attach a sink with System.SetSink
// and every bus of the system — existing and future — reports measurement,
// round, alert, gate, health, fault and re-enrollment events through it.
// Event content is a pure function of the simulation: no wall-clock state, so
// event sequences are bit-identical across runs and Parallelism settings
// (wall-clock timestamps exist only as an opt-in at the AuditLog sink).
type (
	// TelemetryEvent is one structured protocol event.
	TelemetryEvent = telemetry.Event
	// TelemetryEventKind classifies events.
	TelemetryEventKind = telemetry.EventKind
	// TelemetrySink consumes events; implementations must not block.
	TelemetrySink = telemetry.Sink
	// TelemetryBus fans events out to subscribers over bounded queues,
	// dropping (and counting) rather than blocking the measurement path.
	TelemetryBus = telemetry.Bus
	// TelemetrySubscription is one subscriber's bounded event queue.
	TelemetrySubscription = telemetry.Subscription
	// TelemetryRecorder buffers events in memory (test and replay helper).
	TelemetryRecorder = telemetry.Recorder
	// MetricsRegistry holds counters, gauges and histograms and renders
	// them in Prometheus text exposition format.
	MetricsRegistry = telemetry.Registry
	// MetricsSink folds events into divot_* metric families.
	MetricsSink = telemetry.MetricsSink
	// AuditLog appends events as deterministic JSON lines.
	AuditLog = telemetry.AuditLog
)

// Telemetry event kinds.
const (
	EventMeasurement  = telemetry.EventMeasurement
	EventRound        = telemetry.EventRound
	EventAlert        = telemetry.EventAlert
	EventGate         = telemetry.EventGate
	EventHealth       = telemetry.EventHealth
	EventSuspect      = telemetry.EventSuspect
	EventReenroll     = telemetry.EventReenroll
	EventCalibrated   = telemetry.EventCalibrated
	EventReactor      = telemetry.EventReactor
	EventFault        = telemetry.EventFault
	EventAttack       = telemetry.EventAttack
	EventMonitorError = telemetry.EventMonitorError
	EventRestored     = telemetry.EventRestored
)

// Telemetry constructors.
var (
	// NewTelemetryBus builds a non-blocking publish/subscribe event bus.
	NewTelemetryBus = telemetry.NewBus
	// NewMetricsRegistry builds an empty metrics registry.
	NewMetricsRegistry = telemetry.NewRegistry
	// NewMetricsSink registers the divot_* families on a registry and
	// returns the sink that updates them.
	NewMetricsSink = telemetry.NewMetricsSink
	// NewAuditLog builds a JSONL audit log over a writer.
	NewAuditLog = telemetry.NewAuditLog
	// TelemetryFanout combines sinks; nils are skipped.
	TelemetryFanout = telemetry.Fanout
)

// SetSink attaches (or, with nil, detaches) a telemetry sink to the system:
// every registered bus — and every bus created afterwards — emits its
// protocol events through it. Reactors owned by memory systems built after
// the call are wired too.
func (s *System) SetSink(sink TelemetrySink) {
	s.sink = sink
	for _, l := range s.links {
		l.Link.SetSink(sink)
	}
	for _, m := range s.multis {
		m.SetSink(sink)
	}
}

// Sink returns the system's telemetry sink (nil when none attached).
func (s *System) Sink() TelemetrySink { return s.sink }
