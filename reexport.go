package divot

import (
	"divot/internal/attack"
	"divot/internal/core"
	"divot/internal/fault"
	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/txline"
)

// Re-exported building blocks. The implementation lives in internal
// packages; these aliases are the supported public names.

// Engine-level types (§III protocol).
type (
	// EngineConfig configures the per-endpoint DIVOT engine.
	EngineConfig = core.Config
	// Alert is a monitoring alarm.
	Alert = core.Alert
	// AlertKind classifies alerts.
	AlertKind = core.AlertKind
	// Side identifies the CPU or module end of a link.
	Side = core.Side
	// Endpoint is one iTDR-equipped bus interface.
	Endpoint = core.Endpoint
	// Robustness tunes the fault-tolerant monitoring protocol.
	Robustness = core.Robustness
	// ReenrollPolicy governs drift-guarded fingerprint refresh.
	ReenrollPolicy = core.ReenrollPolicy
	// LinkHealth is a link's instrument/protocol condition snapshot.
	LinkHealth = core.LinkHealth
	// EndpointHealth is one endpoint's condition snapshot.
	EndpointHealth = core.EndpointHealth
	// HealthState orders conditions from ok to failed.
	HealthState = core.HealthState
	// LinkSnapshot is a link's durable state (Link.Snapshot / Link.Restore):
	// enrolled fingerprints, tamper thresholds, dead-bin masks, drift
	// baselines, and health counters, in a versioned JSON-encodable form.
	LinkSnapshot = core.LinkSnapshot
	// EndpointSnapshot is one endpoint's durable state within a LinkSnapshot.
	EndpointSnapshot = core.EndpointSnapshot
)

// Engine constants.
const (
	SideCPU          = core.SideCPU
	SideModule       = core.SideModule
	AlertAuthFailure = core.AlertAuthFailure
	AlertTamper      = core.AlertTamper

	HealthOK       = core.HealthOK
	HealthSuspect  = core.HealthSuspect
	HealthDegraded = core.HealthDegraded
	HealthFailed   = core.HealthFailed
)

// Protocol sentinels.
var (
	// ErrNotCalibrated is returned when monitoring precedes calibration.
	ErrNotCalibrated = core.ErrNotCalibrated
	// ErrEnrollmentLost is returned when an enrollment store is empty.
	ErrEnrollmentLost = core.ErrEnrollmentLost
)

// DefaultRobustness is the hardened-protocol default configuration.
var DefaultRobustness = core.DefaultRobustness

// Fault-injection layer (instrument fault modeling; attach a plane to an
// endpoint via Endpoint.Instrument().SetInjector).
type (
	// Fault is one injectable instrument fault with its schedule.
	Fault = fault.Fault
	// FaultKind enumerates the fault models.
	FaultKind = fault.Kind
	// FaultSchedule says when a fault is active.
	FaultSchedule = fault.Schedule
	// FaultPlane folds scheduled faults into an instrument's measurements.
	FaultPlane = fault.Plane
)

// Fault constructors.
var (
	NewFaultPlane      = fault.NewPlane
	FaultOnce          = fault.Once
	FaultFrom          = fault.From
	FaultDuty          = fault.Duty
	NewStuckComparator = fault.StuckComparator
	NewOffsetStep      = fault.OffsetStep
	NewNoiseDrift      = fault.NoiseDrift
	NewPhaseGlitch     = fault.PhaseGlitch
	NewPhaseDrift      = fault.PhaseDrift
	NewJitterBurst     = fault.JitterBurst
	NewDeadBinField    = fault.DeadBinField
	NewDeadBinList     = fault.DeadBinList
	NewCounterUpset    = fault.CounterUpset
	NewTempGlitch      = fault.TempGlitch
	NewEMIGlitch       = fault.EMIGlitch
)

// Instrument types (§II).
type (
	// ITDRConfig holds the reflectometer's operating parameters.
	ITDRConfig = itdr.Config
	// TriggerMode selects which bus events launch probes.
	TriggerMode = itdr.TriggerMode
	// Resources is the FPGA utilization model.
	Resources = itdr.Resources
)

// Trigger modes.
const (
	TriggerClock = itdr.TriggerClock
	TriggerFIFO  = itdr.TriggerFIFO
	TriggerNone  = itdr.TriggerNone
)

// Fingerprinting types (Eq. 4/5).
type (
	// IIP is a processed fingerprint.
	IIP = fingerprint.IIP
	// Pipeline post-processes measurements into fingerprints.
	Pipeline = fingerprint.Pipeline
	// Matcher makes authentication decisions.
	Matcher = fingerprint.Matcher
	// TamperDetector flags localized IIP changes.
	TamperDetector = fingerprint.TamperDetector
	// TamperVerdict is a tamper-check outcome.
	TamperVerdict = fingerprint.TamperVerdict
	// AlignResult is a stretch-compensated match (extension).
	AlignResult = fingerprint.AlignResult
	// FixedPointScorer scores Eq. 4 on an integer datapath — the form a
	// hardware implementation synthesizes.
	FixedPointScorer = fingerprint.FixedPointScorer
	// BinMask marks dead ETS bins that matching renormalizes around.
	BinMask = fingerprint.BinMask
)

// Masked matching (graceful degradation over dead ETS bins).
var (
	// MaskedSimilarity is Similarity restricted to live bins.
	MaskedSimilarity = fingerprint.MaskedSimilarity
	// MaskedErrorFunction is ErrorFunction with masked bins zeroed.
	MaskedErrorFunction = fingerprint.MaskedErrorFunction
)

// AlignStretch estimates and undoes a common time-axis stretch (thermal or
// mechanical) before scoring — the environmental-robustness extension.
var AlignStretch = fingerprint.AlignStretch

// MultiLink protects a bus as a bundle of wires with fused gates.
type MultiLink = core.MultiLink

// Similarity computes S_xy (Eq. 4) on two fingerprints.
func Similarity(x, y IIP) float64 { return fingerprint.Similarity(x, y) }

// ErrorFunction computes E_xy (Eq. 5); see fingerprint.ErrorFunction.
var ErrorFunction = fingerprint.ErrorFunction

// Physical-layer types.
type (
	// LineConfig describes transmission-line construction.
	LineConfig = txline.Config
	// Line is a transmission line with its intrinsic IIP.
	Line = txline.Line
	// Environment models ambient measurement conditions.
	Environment = txline.Environment
	// Probe describes the interrogating edge.
	Probe = txline.Probe
	// Perturbation is a local impedance modification.
	Perturbation = txline.Perturbation
)

// Environment constructors.
var (
	// RoomTemperature is the calibration environment.
	RoomTemperature = txline.RoomTemperature
	// OvenSwing is the Fig. 8 temperature-swing environment.
	OvenSwing = txline.OvenSwing
	// VibrationEnv is the §IV-C piezo-chirp environment.
	VibrationEnv = txline.Vibration
	// EMIEnv is the §IV-C nearby-digital-circuit environment.
	EMIEnv = txline.EMI
)

// Attack models (§IV-D/E/F, §III).
type (
	// Attack is a reversible physical manipulation of a line.
	Attack = attack.Attack
	// LoadModification swaps the terminating chip.
	LoadModification = attack.LoadModification
	// WireTap solders a tapping stub onto the trace.
	WireTap = attack.WireTap
	// MagneticProbe is a non-contact near-field probe.
	MagneticProbe = attack.MagneticProbe
	// ColdBootSwap moves the module to an attacker's bus.
	ColdBootSwap = attack.ColdBootSwap
	// ModuleSwap replaces the memory module on the genuine bus.
	ModuleSwap = attack.ModuleSwap
	// TraceMill is supply-chain copper tampering.
	TraceMill = attack.TraceMill
	// Interposer is a data-transparent man-in-the-middle insertion.
	Interposer = attack.Interposer
	// AdaptiveTap is a tap whose loading drifts slowly between rounds,
	// trying to hide inside the re-enrollment window.
	AdaptiveTap = attack.AdaptiveTap
	// AttackStepper is implemented by attacks that evolve one step per
	// monitoring round (adaptive adversaries).
	AttackStepper = attack.Stepper
)

// Attack constructors.
var (
	NewWireTap       = attack.DefaultWireTap
	NewMagneticProbe = attack.DefaultMagneticProbe
	NewTraceMill     = attack.DefaultTraceMill
	NewColdBootSwap  = attack.NewColdBootSwap
	NewModuleSwap    = attack.NewModuleSwap
	NewInterposer    = attack.DefaultInterposer
	NewAdaptiveTap   = attack.DefaultAdaptiveTap
)

// ResourceModel returns the iTDR utilization for a configuration.
var ResourceModel = itdr.ResourceModel

// FleetUtilization returns the cost of protecting n buses.
var FleetUtilization = itdr.FleetUtilization
