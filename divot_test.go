package divot

import (
	"testing"

	"divot/internal/sim"
)

func TestSystemLinkLifecycle(t *testing.T) {
	s := NewSystem(1, DefaultConfig())
	l, err := s.NewLink("bus0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewLink("bus0"); err == nil {
		t.Error("duplicate link id should fail")
	}
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if alerts, err := l.MonitorOnce(); err != nil {
		t.Fatal(err)
	} else if len(alerts) != 0 {
		t.Errorf("clean link alerted: %v", alerts)
	}
}

func TestMustNewLinkPanicsOnDuplicate(t *testing.T) {
	s := NewSystem(2, DefaultConfig())
	s.MustNewLink("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.MustNewLink("x")
}

func TestAuthenticateSpotCheck(t *testing.T) {
	s := NewSystem(3, DefaultConfig())
	l := s.MustNewLink("bus0")
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	res := l.Authenticate()
	if !res.Accepted {
		t.Errorf("genuine spot check rejected: %+v", res)
	}
	// Spot checks must not leave side effects.
	if len(l.Alerts) != 0 {
		t.Error("spot check polluted alert log")
	}

	// Swap the module: spot check fails but gates were rolled back to
	// their prior state.
	swap := NewModuleSwap(s.Config().Line, s.Stream("attacker"))
	swap.Apply(l.Line)
	res = l.Authenticate()
	if res.Accepted {
		t.Errorf("swapped module accepted: %+v", res)
	}
	if !l.CPU.Gate.Authorized() {
		t.Error("spot check should not have closed the gate")
	}
}

func TestMemorySystemEndToEnd(t *testing.T) {
	s := NewSystem(4, DefaultConfig())
	m, err := s.NewMemorySystem("dimm0", DefaultMemoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, DefaultMemoryConfig().Geometry.BurstBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	m.Write(MemAddress{Bank: 0, Row: 1, Col: 2}, payload)
	m.Read(MemAddress{Bank: 0, Row: 1, Col: 2})
	if err := m.Drain(2, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	resps := m.Responses()
	if resps[0].Status != StatusOK || resps[1].Status != StatusOK {
		t.Fatalf("responses: %+v", resps)
	}
	if got := resps[1].Data; got[5] != 5 {
		t.Errorf("read back %v", got[:8])
	}
	m.StopMonitor()
}

func TestMemorySystemColdBootBlocked(t *testing.T) {
	s := NewSystem(5, DefaultConfig())
	m, err := s.NewMemorySystem("dimm0", DefaultMemoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(); err != nil {
		t.Fatal(err)
	}
	// Attacker powers the module in their own machine: the module-side
	// iTDR sees an unknown bus at the next monitoring round and closes the
	// column-access gate.
	cb := NewColdBootSwap(s.Config().Line, s.Stream("coldboot"))
	m.Bus.Module.SetObservedLine(cb.BusSeenByModule())
	m.RunFor(sim.FromSeconds(3 * m.Bus.MeasurementDuration()))

	// With BlockFail semantics the attacker's read is rejected. (The real
	// attacker's controller has no DIVOT gate, so model their host as
	// always-authorized on the CPU side; the module-side gate is what
	// stops them.)
	m.Read(MemAddress{Bank: 0, Row: 0, Col: 0})
	if err := m.Drain(1, 20*sim.Millisecond); err == nil {
		// Stalled forever is also acceptable protection, but with the
		// default config the module gate produces a block response.
		resp := m.Responses()[0]
		if resp.Status != StatusBlockedByModule {
			t.Fatalf("cold-boot read status %v, want blocked by module", resp.Status)
		}
	}
	if m.Bus.Module.Gate.Authorized() {
		t.Error("module gate open on attacker bus")
	}
	m.StopMonitor()
}

func TestMemorySystemTamperAlertDuringTraffic(t *testing.T) {
	s := NewSystem(6, DefaultConfig())
	m, err := s.NewMemorySystem("dimm0", DefaultMemoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(); err != nil {
		t.Fatal(err)
	}
	probe := NewMagneticProbe(0.12)
	probe.Apply(m.Bus.Line)
	// Keep traffic flowing while monitoring catches the probe.
	for i := 0; i < 10; i++ {
		m.Read(MemAddress{Bank: i % 4, Row: i, Col: i})
	}
	m.RunFor(sim.FromSeconds(4 * m.Bus.MeasurementDuration()))
	if err := m.Drain(10, 50*sim.Millisecond); err != nil {
		t.Fatalf("traffic stalled during probing: %v", err)
	}
	var tampered bool
	for _, a := range m.Bus.Alerts {
		if a.Kind == AlertTamper {
			tampered = true
		}
	}
	if !tampered {
		t.Error("magnetic probe went unnoticed during live traffic")
	}
	// Probing alone must not block traffic (detection is concurrent and
	// non-disruptive; reaction policy for probes is an alert).
	for _, r := range m.Responses() {
		if r.Status != StatusOK {
			t.Errorf("request blocked during probe monitoring: %v", r.Status)
		}
	}
	m.StopMonitor()
}
