package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"divot/client"
	"divot/internal/attest"
	"divot/internal/daemon"
)

// benchPack builds a sharded federation: nb buses partitioned contiguously
// across nd daemons (each bus owned by exactly one daemon), attestation
// caches enabled so iterations measure the herd — assignment, fan-out,
// merge, encode — rather than re-measurement physics.
func benchPack(b *testing.B, nd, nb int) *Herd {
	b.Helper()
	addrs := make([]daemonAddr, nd)
	per := nb / nd
	for di := 0; di < nd; di++ {
		spec := daemon.Spec{Seed: 7, Listen: "127.0.0.1:0", IntervalMS: 60_000,
			MaxStalenessMS: 3_600_000}
		lo, hi := di*per, (di+1)*per
		if di == nd-1 {
			hi = nb
		}
		for i := lo; i < hi; i++ {
			spec.Buses = append(spec.Buses, daemon.BusSpec{ID: fmt.Sprintf("dimm%06d", i)})
		}
		d, err := daemon.NewWithConfig(spec, lightConfig())
		if err != nil {
			b.Fatalf("daemon %d: %v", di, err)
		}
		srv := httptest.NewServer(d.Handler())
		b.Cleanup(srv.Close)
		addrs[di] = daemonAddr{Name: fmt.Sprintf("d%d", di), Addr: srv.URL}
	}
	h, err := NewHerd(context.Background(), herdConfig{
		Daemons: addrs,
		Timeout: 10 * time.Minute, // a 100k-bus cold pass is minutes of measurement
		Retry:   client.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		b.Fatalf("NewHerd: %v", err)
	}
	return h
}

// herdAttest drives POST /v1/attest with a raw reader: a 100k-bus federated
// response is tens of MB of enveloped JSON, past the SDK's read cap.
func herdAttest(b *testing.B, base string) attest.FederatedAttestResponse {
	b.Helper()
	resp, err := http.Post(base+"/v1/attest", "application/json", strings.NewReader(""))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("attest status %d: %.200s", resp.StatusCode, raw)
	}
	var out attest.FederatedAttestResponse
	if err := attest.ParseBody(raw, &out); err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkFederatedAttest measures a whole-fleet attestation through one
// divotherd endpoint — ring assignment, bounded fan-out across the pack,
// request-order merge, envelope encode — over warm daemon caches, sweeping
// daemon count × fleet size. The first (untimed) attest is the cold pass
// that populates every daemon's attestation cache. -short keeps only the
// smallest fleet: the big rows calibrate up to 100k buses first.
func BenchmarkFederatedAttest(b *testing.B) {
	for _, nd := range []int{1, 4, 16} {
		for _, nb := range []int{1_000, 10_000, 100_000} {
			b.Run(fmt.Sprintf("daemons=%d/buses=%d", nd, nb), func(b *testing.B) {
				if testing.Short() && (nb > 1_000 || nd > 4) {
					b.Skipf("skipping %d buses × %d daemons in -short mode", nb, nd)
				}
				if nd == 1 && nb == 100_000 {
					// A single 100k-bus shard answers ~25 MB of enveloped JSON
					// per attest — past the SDK's 16 MB frame cap, so the herd
					// rejects the oversized shard response. Sharding the pack
					// is the supported way to reach 100k buses (the nd=4 and
					// nd=16 rows); this cell documents the limit instead of
					// timing it.
					b.Skip("one daemon serving 100k buses exceeds the per-shard response cap; federate instead")
				}
				h := benchPack(b, nd, nb)
				srv := httptest.NewServer(h.Handler())
				defer srv.Close()

				// The herd's correctness property is completeness — every bus
				// answered once. all_accepted is not asserted: at fleet scale
				// the light instrument's noise floor throws the occasional
				// false tamper positive, which is a physics artifact, not a
				// federation bug.
				cold := herdAttest(b, srv.URL)
				if !cold.Complete || len(cold.Results) != nb {
					b.Fatalf("cold pass: complete=%v results=%d/%d (errors: %.300v)",
						cold.Complete, len(cold.Results), nb, cold.Errors)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					warm := herdAttest(b, srv.URL)
					if !warm.Complete {
						b.Fatalf("warm pass went partial: %.300v", warm.Errors)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nb), "ns/bus")
			})
		}
	}
}
