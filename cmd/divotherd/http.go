package main

import (
	"encoding/json"
	"io"
	"net/http"

	"divot/internal/attest"
)

// Handler returns the aggregator's HTTP API. It speaks the same v1 envelope
// as divotd, and its POST /v1/attest answer is a strict superset of the
// daemon's — existing clients (divotctl, the SDK's Attest) work unchanged
// against a herd; federation-aware callers decode the extra shard fields.
func (h *Herd) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.handleHealthz)
	mux.HandleFunc("GET /metrics", h.handleMetrics)
	mux.HandleFunc("GET /v1/health", h.handleHerdHealth)
	mux.HandleFunc("GET /v1/daemons", h.handleDaemons)
	mux.HandleFunc("POST /v1/attest", h.handleAttest)
	mux.HandleFunc("GET /v1/stream", h.handleStream)
	mux.HandleFunc("GET /v1/links/{id}/history", h.handleHistory)
	return mux
}

func (h *Herd) handleHistory(w http.ResponseWriter, r *http.Request) {
	resp, werr := h.History(r.Context(), r.PathValue("id"))
	if werr != nil {
		attest.WriteError(w, werr.Code, "%s", werr.Message)
		return
	}
	attest.WriteData(w, http.StatusOK, resp)
}

func (h *Herd) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	attest.WriteData(w, http.StatusOK, h.HealthSummary())
}

func (h *Herd) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	h.reg.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
}

func (h *Herd) handleHerdHealth(w http.ResponseWriter, r *http.Request) {
	attest.WriteData(w, http.StatusOK, h.HerdHealth(r.Context()))
}

func (h *Herd) handleDaemons(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	fed := h.cfg.FederationID
	h.mu.RUnlock()
	attest.WriteData(w, http.StatusOK, attest.DaemonsResponse{
		FederationID: fed,
		Daemons:      h.shardStatuses(),
	})
}

func (h *Herd) handleAttest(w http.ResponseWriter, r *http.Request) {
	var req attest.AttestRequest
	raw, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		attest.WriteError(w, attest.CodeBadRequest, "reading request: %v", err)
		return
	}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &req); err != nil {
			attest.WriteError(w, attest.CodeBadRequest, "parsing request: %v", err)
			return
		}
	}
	resp, werr := h.Attest(r.Context(), req.Links)
	if werr != nil {
		attest.WriteError(w, werr.Code, "%s", werr.Message)
		return
	}
	attest.WriteData(w, http.StatusOK, resp)
}
