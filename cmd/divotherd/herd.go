package main

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"divot/client"
	"divot/internal/attest"
	"divot/internal/ring"
	"divot/internal/telemetry"
)

// daemonAddr names one divotd instance under the herd's supervision.
type daemonAddr struct {
	Name string
	Addr string
}

// herdConfig is the aggregator's runtime configuration (flags in main).
type herdConfig struct {
	Listen        string
	FederationID  string
	Daemons       []daemonAddr
	ProbeInterval time.Duration
	MaxInFlight   int
	Replicas      int
	// Timeout is the per-attempt timeout of every upstream call.
	Timeout time.Duration
	// Retry overrides the upstream retry policy when non-zero.
	Retry client.RetryPolicy
}

// shard is one supervised divotd instance and the herd's view of it. All
// mutable fields are guarded by Herd.mu; the client is immutable and called
// outside the lock.
type shard struct {
	name string
	addr string
	c    *client.Client

	up bool
	// buses is the instance's fleet as last discovered (empty while the
	// instance has never been reachable).
	buses map[string]bool
	// fleetOK mirrors the instance's own /healthz verdict.
	fleetOK bool
	// lastErr is the most recent probe or fan-out failure ("" while up).
	lastErr string
}

// Herd supervises a pack of divotd instances: it discovers each daemon's
// fleet, assigns every bus to a daemon on a consistent-hash ring, fans
// attestation requests out across the shards with a bounded in-flight
// budget, merges the verdicts back into request order, and re-balances
// assignments the moment a daemon dies or rejoins. A shard failure is never
// papered over — the affected buses come back in the response's
// partial-error envelope, so the herd cannot fabricate an OK it did not
// measure.
type Herd struct {
	cfg   herdConfig
	multi *client.Multi
	// ring holds every configured daemon permanently; liveness and bus
	// ownership are applied as a Pick predicate at assignment time. That
	// makes re-balance a pure function of the (membership, liveness) pair:
	// a dead daemon's buses land exactly where a ring built without it
	// would put them, and its rejoin restores the original assignment.
	ring *ring.Ring
	reg  *telemetry.Registry

	mu     sync.RWMutex
	shards map[string]*shard
	// buses is the sorted union of every shard's discovered fleet — the
	// herd's fleet order for whole-fleet attests.
	buses []string
	// owners maps a bus to the sorted names of the shards serving it.
	owners map[string][]string

	started time.Time

	shardBuses *telemetry.GaugeVec
	daemonUp   *telemetry.GaugeVec
	fanoutDur  *telemetry.HistogramVec
	attests    *telemetry.CounterVec
	rebalances *telemetry.Counter
}

// NewHerd builds the aggregator and runs the initial discovery: every
// configured daemon is probed for liveness, federation membership, and its
// bus set. Unreachable daemons start in the down state (the prober revives
// them); at least one daemon must be reachable. A reachable daemon whose
// federation id contradicts the herd's is a configuration error and refuses
// startup.
func NewHerd(ctx context.Context, cfg herdConfig) (*Herd, error) {
	if len(cfg.Daemons) == 0 {
		return nil, fmt.Errorf("no daemons given (use -daemons url[,url...])")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	h := &Herd{
		cfg:     cfg,
		multi:   client.NewMulti(cfg.MaxInFlight),
		ring:    ring.New(cfg.Replicas),
		reg:     telemetry.NewRegistry(),
		shards:  make(map[string]*shard, len(cfg.Daemons)),
		owners:  make(map[string][]string),
		started: time.Now(),
	}
	h.shardBuses = h.reg.Gauge("divotherd_shard_buses",
		"Buses currently assigned to a daemon by the consistent-hash ring.", "daemon")
	h.daemonUp = h.reg.Gauge("divotherd_daemon_up",
		"1 while the daemon answers health probes, 0 while it is considered dead.", "daemon")
	h.fanoutDur = h.reg.Histogram("divotherd_fanout_seconds",
		"Wall-clock duration of one fanned-out upstream call.",
		telemetry.DurationBuckets, "daemon", "op")
	h.attests = h.reg.Counter("divotherd_attest_total",
		"Federated attestation requests by outcome (complete/partial).", "outcome")
	h.rebalances = h.reg.Counter("divotherd_rebalance_total",
		"Assignment re-balances (a daemon died, rejoined, or changed its fleet).").With()

	seen := make(map[string]bool, len(cfg.Daemons))
	for _, d := range cfg.Daemons {
		if seen[d.Name] {
			return nil, fmt.Errorf("duplicate daemon name %q", d.Name)
		}
		seen[d.Name] = true
		opts := []client.Option{client.WithUserAgent("divotherd/1")}
		if cfg.Timeout > 0 {
			opts = append(opts, client.WithTimeout(cfg.Timeout))
		}
		if cfg.Retry.MaxAttempts > 0 {
			opts = append(opts, client.WithRetryPolicy(cfg.Retry))
		}
		c, err := client.New(d.Addr, opts...)
		if err != nil {
			return nil, fmt.Errorf("daemon %s: %w", d.Name, err)
		}
		h.shards[d.Name] = &shard{name: d.Name, addr: d.Addr, c: c, buses: map[string]bool{}}
		h.multi.Set(d.Name, c)
		h.ring.Add(d.Name)
	}

	if err := h.probeOnce(ctx); err != nil {
		return nil, err
	}
	h.mu.RLock()
	up := 0
	for _, s := range h.shards {
		if s.up {
			up++
		}
	}
	h.mu.RUnlock()
	if up == 0 {
		return nil, fmt.Errorf("none of the %d daemons is reachable", len(cfg.Daemons))
	}
	return h, nil
}

// probeOnce runs one liveness sweep: every daemon's /healthz is probed
// concurrently; a daemon coming up (re)discovers its bus set, a daemon going
// down is removed from assignment. Probe failures are per-daemon state, not
// errors — the only error is a federation-id contradiction, and only during
// the initial discovery (NewHerd); later contradictions keep the daemon
// down.
func (h *Herd) probeOnce(ctx context.Context) error {
	outcomes := h.multi.Health(ctx)
	var firstErr error
	changed := false
	for name, o := range outcomes {
		timer := time.Now()
		switch {
		case o.Err != nil:
			if h.setDown(name, o.Err.Error()) {
				changed = true
			}
		case h.fedMismatch(o.View.FederationID):
			err := fmt.Errorf("daemon %s belongs to federation %q, this herd is %q",
				name, o.View.FederationID, h.cfg.FederationID)
			if firstErr == nil {
				firstErr = err
			}
			if h.setDown(name, err.Error()) {
				changed = true
			}
		default:
			wasUp := h.isUp(name)
			if !wasUp {
				// Revival: the bus set may have changed while it was away.
				links, err := h.shards[name].c.Links(ctx)
				if err != nil {
					h.setDown(name, err.Error())
					continue
				}
				h.setUp(name, links, o.View.FleetOK)
				changed = true
			} else {
				h.setFleetOK(name, o.View.FleetOK)
			}
		}
		h.fanoutDur.With(name, "probe").Observe(time.Since(timer).Seconds())
	}
	if changed {
		h.rebalanced()
	}
	if h.anyUp() {
		return nil // a live majority beats a misconfigured straggler
	}
	return firstErr
}

// fedMismatch reports whether a daemon's federation id contradicts the
// herd's (empty on either side matches anything).
func (h *Herd) fedMismatch(daemonFed string) bool {
	return daemonFed != "" && h.cfg.FederationID != "" && daemonFed != h.cfg.FederationID
}

func (h *Herd) isUp(name string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := h.shards[name]
	return s != nil && s.up
}

func (h *Herd) anyUp() bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, s := range h.shards {
		if s.up {
			return true
		}
	}
	return false
}

// setDown marks a daemon dead, reporting whether that is a transition.
func (h *Herd) setDown(name, why string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.shards[name]
	if s == nil {
		return false
	}
	trans := s.up
	s.up = false
	s.fleetOK = false
	s.lastErr = why
	h.daemonUp.With(name).Set(0)
	return trans
}

// setUp installs a revived daemon's bus set and recomputes the owner index.
func (h *Herd) setUp(name string, links []client.LinkSummary, fleetOK bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.shards[name]
	if s == nil {
		return
	}
	s.up = true
	s.fleetOK = fleetOK
	s.lastErr = ""
	s.buses = make(map[string]bool, len(links))
	for _, l := range links {
		s.buses[l.ID] = true
	}
	h.daemonUp.With(name).Set(1)
	h.reindexLocked()
}

func (h *Herd) setFleetOK(name string, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.shards[name]; s != nil {
		s.fleetOK = ok
	}
}

// reindexLocked rebuilds the bus union and owner index. Caller holds h.mu.
func (h *Herd) reindexLocked() {
	h.owners = make(map[string][]string)
	for name, s := range h.shards {
		for b := range s.buses {
			h.owners[b] = append(h.owners[b], name)
		}
	}
	h.buses = make([]string, 0, len(h.owners))
	for b, names := range h.owners {
		sort.Strings(names)
		h.buses = append(h.buses, b)
	}
	sort.Strings(h.buses)
}

// rebalanced recounts per-shard assignments after a liveness or fleet
// change and updates the divotherd_shard_buses gauges.
func (h *Herd) rebalanced() {
	h.rebalances.Inc()
	h.mu.RLock()
	counts := make(map[string]int, len(h.shards))
	for _, b := range h.buses {
		if name, ok := h.assignLocked(b); ok {
			counts[name]++
		}
	}
	names := make([]string, 0, len(h.shards))
	for name := range h.shards {
		names = append(names, name)
	}
	h.mu.RUnlock()
	for _, name := range names {
		h.shardBuses.With(name).Set(float64(counts[name]))
	}
}

// assignLocked picks the daemon responsible for a bus: the first live owner
// clockwise of the bus's ring position. Caller holds h.mu (read suffices).
func (h *Herd) assignLocked(bus string) (string, bool) {
	return h.ring.Pick(bus, func(name string) bool {
		s := h.shards[name]
		return s != nil && s.up && s.buses[bus]
	})
}

// Assign resolves a bus's current daemon (for tests and the HTTP layer).
func (h *Herd) Assign(bus string) (string, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.assignLocked(bus)
}

// planFor groups targets by assigned daemon, preserving request order inside
// each group, and returns the buses no live daemon serves.
func (h *Herd) planFor(targets []string) (plan map[string][]string, unassigned []string) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	plan = make(map[string][]string)
	for _, b := range targets {
		if name, ok := h.assignLocked(b); ok {
			plan[name] = append(plan[name], b)
		} else {
			unassigned = append(unassigned, b)
		}
	}
	return plan, unassigned
}

// Attest runs a federated batch attestation: targets are resolved against
// the fleet (every known bus when ids is empty), grouped by assigned daemon,
// fanned out concurrently under the in-flight budget, and merged back into
// request order with per-verdict shard attribution. A failing shard is
// marked down (re-balancing its buses for subsequent requests) and its buses
// are reported in the partial-error envelope of this response — never as
// fabricated verdicts.
func (h *Herd) Attest(ctx context.Context, ids []string) (attest.FederatedAttestResponse, *attest.Error) {
	var targets []string
	if len(ids) == 0 {
		h.mu.RLock()
		targets = append([]string(nil), h.buses...)
		h.mu.RUnlock()
	} else {
		h.mu.RLock()
		for _, id := range ids {
			if _, known := h.owners[id]; !known {
				h.mu.RUnlock()
				return attest.FederatedAttestResponse{}, &attest.Error{
					Code:    attest.CodeUnknownLink,
					Message: fmt.Sprintf("unknown bus %q", id),
				}
			}
		}
		h.mu.RUnlock()
		targets = ids
	}

	plan, unassigned := h.planFor(targets)
	start := time.Now()
	outcomes := h.multi.Attest(ctx, plan)
	for name := range plan {
		h.fanoutDur.With(name, "attest").Observe(time.Since(start).Seconds())
	}

	byBus := make(map[string]attest.AuthReport, len(targets))
	failed := make(map[string]error)
	rebalance := false
	for name, o := range outcomes {
		if o.Err != nil {
			failed[name] = o.Err
			if h.setDown(name, o.Err.Error()) {
				rebalance = true
			}
			continue
		}
		for _, rep := range o.Resp.Results {
			rep.Daemon = name
			byBus[rep.ID] = rep
		}
	}
	if rebalance {
		h.rebalanced()
	}

	resp := attest.FederatedAttestResponse{
		Results:     make([]attest.AuthReport, 0, len(targets)),
		AllAccepted: true,
		Shards:      h.shardStatuses(),
	}
	for _, b := range targets {
		rep, ok := byBus[b]
		if !ok {
			continue // covered by the error envelope below
		}
		if !rep.Accepted {
			resp.AllAccepted = false
		}
		resp.Results = append(resp.Results, rep)
	}
	names := make([]string, 0, len(failed))
	for name := range failed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		resp.Errors = append(resp.Errors, attest.ShardError{
			Daemon:  name,
			Code:    errCode(failed[name]),
			Message: failed[name].Error(),
			Links:   plan[name],
		})
	}
	if len(unassigned) > 0 {
		resp.Errors = append(resp.Errors, attest.ShardError{
			Code:    attest.CodeUnavailable,
			Message: "no live daemon serves these buses",
			Links:   unassigned,
		})
	}
	resp.Complete = len(resp.Results) == len(targets)
	if !resp.Complete {
		resp.AllAccepted = false
		h.attests.With("partial").Inc()
	} else {
		h.attests.With("complete").Inc()
	}
	return resp, nil
}

// History proxies one bus's durable score history from its assigned daemon.
// The herd holds no history of its own — the samples live in the daemon's
// WAL — so this is a pure passthrough with the usual federation semantics:
// unknown buses are named as such, a bus whose every owner is down is
// unavailable, and a shard failing mid-call is marked down for re-balance.
func (h *Herd) History(ctx context.Context, id string) (attest.HistoryResponse, *attest.Error) {
	h.mu.RLock()
	_, known := h.owners[id]
	h.mu.RUnlock()
	if !known {
		return attest.HistoryResponse{}, &attest.Error{
			Code:    attest.CodeUnknownLink,
			Message: fmt.Sprintf("unknown bus %q", id),
		}
	}
	name, ok := h.Assign(id)
	if !ok {
		return attest.HistoryResponse{}, &attest.Error{
			Code:    attest.CodeUnavailable,
			Message: fmt.Sprintf("no live daemon serves bus %q", id),
		}
	}
	h.mu.RLock()
	c := h.shards[name].c
	h.mu.RUnlock()
	start := time.Now()
	samples, err := c.History(ctx, id)
	h.fanoutDur.With(name, "history").Observe(time.Since(start).Seconds())
	if err != nil {
		// A structured 4xx is the daemon answering fine (e.g. it dropped the
		// bus from its spec); only transport faults and 5xx mark it down.
		var aerr *client.APIError
		if !errors.As(err, &aerr) || aerr.Status >= 500 {
			if h.setDown(name, err.Error()) {
				h.rebalanced()
			}
		}
		return attest.HistoryResponse{}, &attest.Error{
			Code:    errCode(err),
			Message: fmt.Sprintf("daemon %s: %v", name, err),
		}
	}
	if samples == nil {
		samples = []attest.HistorySample{}
	}
	return attest.HistoryResponse{Link: id, Samples: samples}, nil
}

// errCode maps a fan-out failure to the wire error code that best describes
// it: structured daemon answers keep their code, everything else (transport
// faults, timeouts, dead daemons) is "unavailable".
func errCode(err error) string {
	var aerr *client.APIError
	if errors.As(err, &aerr) {
		return aerr.Code
	}
	return attest.CodeUnavailable
}

// shardStatuses snapshots every daemon's standing, sorted by name, with the
// current per-daemon assignment counts.
func (h *Herd) shardStatuses() []attest.ShardStatus {
	h.mu.RLock()
	defer h.mu.RUnlock()
	counts := make(map[string]int, len(h.shards))
	for _, b := range h.buses {
		if name, ok := h.assignLocked(b); ok {
			counts[name]++
		}
	}
	out := make([]attest.ShardStatus, 0, len(h.shards))
	for _, s := range h.shards {
		out = append(out, attest.ShardStatus{
			Daemon: s.name, Addr: s.addr, Up: s.up, Buses: counts[s.name],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Daemon < out[j].Daemon })
	return out
}

// HerdHealth builds the federated /v1/health rollup: one probe plus one
// fleet-health fetch per daemon, each bus reported once by its assigned
// daemon.
func (h *Herd) HerdHealth(ctx context.Context) attest.HerdHealthResponse {
	// probeOnce refreshes liveness; a federation contradiction surfaces per
	// daemon in the rollup below, so its error needs no separate channel.
	_ = h.probeOnce(ctx)
	fleet := h.multi.FleetHealth(ctx)

	h.mu.RLock()
	defer h.mu.RUnlock()
	resp := attest.HerdHealthResponse{
		FederationID: h.cfg.FederationID,
		Daemons:      make([]attest.DaemonHealth, 0, len(h.shards)),
		Links:        []attest.LinkHealthView{},
		Complete:     true,
	}
	names := make([]string, 0, len(h.shards))
	for name := range h.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	views := make(map[string]attest.LinkHealthView)
	for _, name := range names {
		s := h.shards[name]
		dh := attest.DaemonHealth{
			Daemon: name, Addr: s.addr, Up: s.up,
			Buses: len(s.buses), FleetOK: s.fleetOK, Error: s.lastErr,
		}
		fo := fleet[name]
		switch {
		case !s.up:
			resp.Complete = false
		case fo.Err != nil:
			resp.Complete = false
			dh.Error = fo.Err.Error()
		default:
			for _, lv := range fo.Links {
				if owner, ok := h.assignLocked(lv.ID); ok && owner == name {
					views[lv.ID] = lv
				}
			}
		}
		resp.Daemons = append(resp.Daemons, dh)
	}
	for _, b := range h.buses {
		if lv, ok := views[b]; ok {
			resp.Links = append(resp.Links, lv)
		} else {
			resp.Complete = false
		}
	}
	return resp
}

// HealthSummary is the herd's own /healthz: fleet size is the bus union,
// fleet_ok demands every daemon up and every daemon's own fleet ok.
func (h *Herd) HealthSummary() attest.HealthView {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ok := true
	for _, s := range h.shards {
		if !s.up || !s.fleetOK {
			ok = false
		}
	}
	return attest.HealthView{
		Status:       "ok",
		Buses:        len(h.buses),
		FleetOK:      ok,
		UptimeS:      time.Since(h.started).Seconds(),
		FederationID: h.cfg.FederationID,
	}
}

// probeLoop re-probes the pack until ctx ends, reviving daemons that come
// back and retiring ones that die between requests.
func (h *Herd) probeLoop(ctx context.Context) {
	t := time.NewTicker(h.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.probeOnce(ctx) //nolint:errcheck // per-daemon state, not fatal
		}
	}
}
