package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"divot/internal/attest"
	"divot/internal/wire"
)

// fakeShard is a scripted upstream divotd: enough of the HTTP surface for
// herd discovery (/healthz, /v1/links) plus a binary /v1/stream that serves
// a fixed per-link event history honoring the subscriber's resume map and
// kind filter, then holds the stream open. Deterministic where a real daemon
// would be driven by the physics engine.
type fakeShard struct {
	fed    string
	events map[string][]attest.Event // per link, seq-ascending

	mu   sync.Mutex
	subs []wire.Subscribe
	gap  *wire.Gap // when set, answer any subscribe with this gap frame

	srv *httptest.Server
}

func newFakeShard(t *testing.T, fed string, events map[string][]attest.Event) *fakeShard {
	t.Helper()
	fs := &fakeShard{fed: fed, events: events}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		attest.WriteData(w, http.StatusOK, attest.HealthView{
			Status: "ok", Buses: len(fs.events), FleetOK: true, FederationID: fed,
		})
	})
	mux.HandleFunc("GET /v1/links", func(w http.ResponseWriter, _ *http.Request) {
		var resp attest.LinksResponse
		for id := range fs.events {
			resp.Links = append(resp.Links, attest.LinkSummary{ID: id, Health: "healthy"})
		}
		attest.WriteData(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/stream", fs.serveStream)
	fs.srv = httptest.NewServer(mux)
	t.Cleanup(fs.srv.Close)
	return fs
}

func (fs *fakeShard) serveStream(w http.ResponseWriter, r *http.Request) {
	sub, err := wire.ParseSubscribeRequest(r)
	if err != nil {
		attest.WriteError(w, attest.CodeBadRequest, "%v", err)
		return
	}
	fs.mu.Lock()
	fs.subs = append(fs.subs, sub)
	gap := fs.gap
	fs.mu.Unlock()

	links := sub.Links
	if len(links) == 0 {
		for id := range fs.events {
			links = append(links, id)
		}
	}
	kindOK := func(kind string) bool {
		if len(sub.Kinds) == 0 {
			return true
		}
		for _, k := range sub.Kinds {
			if k == kind {
				return true
			}
		}
		return false
	}

	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	hello, _ := json.Marshal(wire.Hello{Links: links})
	buf := wire.AppendFrame(nil, wire.FrameHello, hello)
	if gap != nil {
		raw, _ := json.Marshal(*gap)
		buf = wire.AppendFrame(buf, wire.FrameGap, raw)
	} else {
		for _, id := range links {
			for _, ev := range fs.events[id] {
				if ev.Seq > sub.After[id] && kindOK(ev.Kind) {
					buf = wire.AppendEventFrame(buf, ev)
				}
			}
		}
	}
	w.Write(buf) //nolint:errcheck // test server
	fl.Flush()
	<-r.Context().Done()
}

// herdOverFakes builds a herd supervising the given fake shards.
func herdOverFakes(t *testing.T, fakes ...*fakeShard) *Herd {
	t.Helper()
	cfg := herdConfig{
		FederationID:  "fed-test",
		ProbeInterval: time.Hour, // probes only when the test asks
		Replicas:      4,
		Retry:         fastRetryPolicy(),
	}
	for i, fs := range fakes {
		cfg.Daemons = append(cfg.Daemons, daemonAddr{
			Name: string(rune('A' + i)), Addr: fs.srv.URL,
		})
	}
	h, err := NewHerd(context.Background(), cfg)
	if err != nil {
		t.Fatalf("building herd: %v", err)
	}
	return h
}

// herdStream opens the herd's /v1/stream and returns a frame reader.
func herdStream(t *testing.T, base, qs string) (*wire.Reader, func()) {
	t.Helper()
	url := base + "/v1/stream"
	if qs != "" {
		url += "?" + qs
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("herd stream status = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("herd stream Content-Type = %q, want %q", ct, wire.ContentType)
	}
	return wire.NewReader(resp.Body), func() { resp.Body.Close() }
}

// readHello asserts the next frame is the Hello and returns its link list.
func readHello(t *testing.T, rd *wire.Reader) []string {
	t.Helper()
	typ, payload, err := rd.Next()
	if err != nil || typ != wire.FrameHello {
		t.Fatalf("first frame = %v (%v), want hello", typ, err)
	}
	var h wire.Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		t.Fatal(err)
	}
	return h.Links
}

// readEvents collects n event frames, skipping heartbeats.
func readEvents(t *testing.T, rd *wire.Reader, n int) []attest.Event {
	t.Helper()
	var out []attest.Event
	for len(out) < n {
		typ, payload, err := rd.Next()
		if err != nil {
			t.Fatalf("reading frame after %d events: %v", len(out), err)
		}
		switch typ {
		case wire.FrameHeartbeat:
		case wire.FrameEvent:
			ev, err := wire.DecodeEvent(payload)
			if err != nil {
				t.Fatalf("decoding event: %v", err)
			}
			out = append(out, ev)
		default:
			t.Fatalf("frame = %v, want event (got %d/%d)", typ, len(out), n)
		}
	}
	return out
}

func TestHerdStreamFansAcrossShards(t *testing.T) {
	fs1 := newFakeShard(t, "fed-test", map[string][]attest.Event{
		"a1": {{Seq: 1, Kind: "alert", Link: "a1"}, {Seq: 2, Kind: "gate", Link: "a1"}},
		"a2": {{Seq: 1, Kind: "health", Link: "a2"}},
	})
	fs2 := newFakeShard(t, "fed-test", map[string][]attest.Event{
		"b1": {{Seq: 1, Kind: "alert", Link: "b1"}, {Seq: 2, Kind: "alert", Link: "b1"}},
	})
	h := herdOverFakes(t, fs1, fs2)
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	// Whole fleet: the Hello names every assigned bus, and all five retained
	// events arrive (per-link order preserved, seq spaces untouched).
	rd, closeStream := herdStream(t, srv.URL, "")
	links := readHello(t, rd)
	if want := []string{"a1", "a2", "b1"}; !reflect.DeepEqual(links, want) {
		t.Fatalf("hello links = %v, want %v", links, want)
	}
	perLink := map[string][]uint64{}
	for _, ev := range readEvents(t, rd, 5) {
		perLink[ev.Link] = append(perLink[ev.Link], ev.Seq)
	}
	closeStream()
	want := map[string][]uint64{"a1": {1, 2}, "a2": {1}, "b1": {1, 2}}
	if !reflect.DeepEqual(perLink, want) {
		t.Fatalf("per-link seqs = %v, want %v", perLink, want)
	}

	// Filtered subscribe: links + kinds + resume map reach the owning shard
	// and only the surviving events come back.
	rd, closeStream = herdStream(t, srv.URL, "links=a1,b1&kinds=alert&after=b1:1")
	defer closeStream()
	if links := readHello(t, rd); !reflect.DeepEqual(links, []string{"a1", "b1"}) {
		t.Fatalf("filtered hello = %v", links)
	}
	got := readEvents(t, rd, 2)
	seen := map[string]uint64{}
	for _, ev := range got {
		if ev.Kind != "alert" {
			t.Fatalf("kind filter leaked %q", ev.Kind)
		}
		seen[ev.Link] = ev.Seq
	}
	if seen["a1"] != 1 || seen["b1"] != 2 {
		t.Fatalf("filtered events = %v, want a1:1 b1:2", seen)
	}
	fs2.mu.Lock()
	lastSub := fs2.subs[len(fs2.subs)-1]
	fs2.mu.Unlock()
	if lastSub.After["b1"] != 1 {
		t.Fatalf("shard resume map = %v, want b1:1", lastSub.After)
	}
}

func TestHerdStreamErrorSurface(t *testing.T) {
	fs1 := newFakeShard(t, "fed-test", map[string][]attest.Event{
		"a1": {{Seq: 1, Kind: "alert", Link: "a1"}},
	})
	fs2 := newFakeShard(t, "fed-test", map[string][]attest.Event{
		"b1": {{Seq: 10, Kind: "alert", Link: "b1"}},
	})
	h := herdOverFakes(t, fs1, fs2)
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	// Unknown bus: a pre-stream envelope, not a broken stream.
	resp, err := http.Get(srv.URL + "/v1/stream?links=ghost")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown bus status = %d: %s", resp.StatusCode, raw)
	}
	var env attest.Envelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil || env.Error.Code != attest.CodeUnknownLink {
		t.Fatalf("unknown bus envelope = %s", raw)
	}

	// An upstream resume gap comes back as a typed Gap frame with the
	// shard-owned cursor bounds, then the stream ends.
	fs2.mu.Lock()
	fs2.gap = &wire.Gap{Link: "b1", Resume: 5, Oldest: 9}
	fs2.mu.Unlock()
	rd, closeStream := herdStream(t, srv.URL, "links=b1&after=b1:5")
	defer closeStream()
	readHello(t, rd)
	for {
		typ, payload, err := rd.Next()
		if err != nil {
			t.Fatalf("reading for gap frame: %v", err)
		}
		if typ == wire.FrameHeartbeat {
			continue
		}
		if typ != wire.FrameGap {
			t.Fatalf("frame = %v, want gap", typ)
		}
		var g wire.Gap
		if err := json.Unmarshal(payload, &g); err != nil {
			t.Fatal(err)
		}
		if g != (wire.Gap{Link: "b1", Resume: 5, Oldest: 9}) {
			t.Fatalf("gap = %+v, want {b1 5 9}", g)
		}
		break
	}
	if _, _, err := rd.Next(); err == nil {
		t.Fatal("stream stayed open after gap frame")
	}

	// A dead shard makes its buses explicitly unavailable.
	fs2.srv.Close()
	if err := h.probeOnce(context.Background()); err != nil {
		t.Fatalf("probe: %v", err)
	}
	resp, err = http.Get(srv.URL + "/v1/stream?links=b1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead shard status = %d: %s", resp.StatusCode, raw)
	}
}
