// Command divotherd is the federation aggregator: one HTTP endpoint in front
// of a pack of divotd daemons. It discovers each daemon's bus fleet, assigns
// every bus to a daemon on a consistent-hash ring, fans attestation requests
// out across the shards under a bounded in-flight budget, and merges the
// verdicts back into request order with per-shard attribution. Daemon death
// re-balances the surviving fleet automatically; the dead daemon's buses are
// reported unavailable — never fabricated — until it rejoins or another
// daemon serves them.
//
// Usage:
//
//	divotherd -daemons http://h1:9720,http://h2:9720 [flags]
//
// Daemons are named d0, d1, ... in flag order, or explicitly with
// name=url entries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the entry point without the process plumbing, so tests can drive
// flag parsing and assert on the exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("divotherd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:9730", "address to serve the aggregator API on")
	daemons := fs.String("daemons", "",
		"comma-separated divotd base URLs, each optionally name=url (required)")
	fedID := fs.String("federation-id", "",
		"federation label; a reachable daemon claiming a different non-empty federation_id refuses startup")
	probeEvery := fs.Duration("probe-interval", 2*time.Second,
		"how often to re-probe daemon liveness (revives rejoined daemons)")
	maxInFlight := fs.Int("max-in-flight", 16, "upper bound on concurrent upstream calls")
	replicas := fs.Int("replicas", 0, "virtual points per daemon on the assignment ring (0 = default)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-attempt timeout of upstream calls")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pack, err := parseDaemons(*daemons)
	if err != nil {
		fmt.Fprintf(stderr, "divotherd: %v\n", err)
		return 2
	}
	h, err := NewHerd(ctx, herdConfig{
		Listen:        *listen,
		FederationID:  *fedID,
		Daemons:       pack,
		ProbeInterval: *probeEvery,
		MaxInFlight:   *maxInFlight,
		Replicas:      *replicas,
		Timeout:       *timeout,
	})
	if err != nil {
		fmt.Fprintf(stderr, "divotherd: %v\n", err)
		return 1
	}
	if err := h.Serve(ctx, stdout); err != nil {
		fmt.Fprintf(stderr, "divotherd: %v\n", err)
		return 1
	}
	return 0
}

// parseDaemons splits the -daemons flag: "url" entries are named d0, d1, ...
// in order; "name=url" entries pick their own name.
func parseDaemons(s string) ([]daemonAddr, error) {
	var out []daemonAddr
	for i, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, addr := fmt.Sprintf("d%d", i), entry
		if at := strings.Index(entry, "="); at >= 0 && !strings.Contains(entry[:at], "/") {
			name, addr = entry[:at], entry[at+1:]
			if name == "" {
				return nil, fmt.Errorf("empty daemon name in %q", entry)
			}
		}
		out = append(out, daemonAddr{Name: name, Addr: addr})
	}
	if len(out) == 0 {
		return nil, errors.New("no daemons given (use -daemons url[,url...])")
	}
	return out, nil
}

// Serve runs the aggregator until ctx is cancelled: the HTTP API on the
// configured listen address plus the background probe loop.
func (h *Herd) Serve(ctx context.Context, logw io.Writer) error {
	ln, err := net.Listen("tcp", h.cfg.Listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", h.cfg.Listen, err)
	}
	probeCtx, stopProbe := context.WithCancel(ctx)
	defer stopProbe()
	go h.probeLoop(probeCtx)

	srv := &http.Server{Handler: h.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	h.mu.RLock()
	nd, nb := len(h.shards), len(h.buses)
	h.mu.RUnlock()
	fmt.Fprintf(logw, "divotherd: %d daemons, %d buses, serving on %s\n", nd, nb, ln.Addr())

	var runErr error
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			runErr = err
		}
	}
	stopProbe()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}
