package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"divot"
	"divot/client"
	"divot/internal/attest"
	"divot/internal/daemon"
)

// lightConfig shrinks the instrument so federation tests measure the herd —
// assignment, fan-out, merge — rather than the physics (same trick as the
// daemon's own benchmarks). The tamper threshold is looser than the daemon
// bench's: these tests assert on verdicts, and the light instrument's noise
// floor at 5 trials/bin throws the occasional false positive past 1e-6.
func lightConfig() divot.Config {
	cfg := divot.DefaultConfig()
	cfg.Engine.ITDR.WindowSec = 0.5e-9
	cfg.Engine.ITDR.TrialsPerBin = 5
	cfg.Engine.TamperThreshold = 1e-3
	cfg.Engine.EnrollMeasurements = 2
	cfg.Engine.Parallelism = 1
	return cfg
}

// packServer is one in-process divotd behind a real TCP listener that tests
// can kill and resurrect at the same address — the lifecycle a herd sees when
// a daemon dies and rejoins.
type packServer struct {
	d    *daemon.Daemon
	addr string
	srv  *http.Server
}

// startPackServer calibrates a daemon for the given buses and serves it.
// Identical (seed, buses) pairs produce identical enrollments, so a pack
// built this way models replicated verifiers over a shared measurement
// fabric: any member can attest any bus.
func startPackServer(t testing.TB, buses []string) *packServer {
	t.Helper()
	spec := daemon.Spec{Seed: 7, Listen: "127.0.0.1:0", IntervalMS: 60_000, MaxStalenessMS: 0}
	for _, id := range buses {
		spec.Buses = append(spec.Buses, daemon.BusSpec{ID: id})
	}
	d, err := daemon.NewWithConfig(spec, lightConfig())
	if err != nil {
		t.Fatalf("building pack daemon: %v", err)
	}
	p := &packServer{d: d}
	p.start(t)
	return p
}

// start serves (or re-serves) the daemon. The first call binds an ephemeral
// port; later calls re-bind the same address, modelling a daemon rejoin.
func (p *packServer) start(t testing.TB) {
	t.Helper()
	addr := p.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("pack server listen: %v", err)
	}
	p.addr = ln.Addr().String()
	p.srv = &http.Server{Handler: p.d.Handler()}
	go p.srv.Serve(ln) //nolint:errcheck // closed by stop
	t.Cleanup(p.stop)
}

// stop kills the server: connections refuse immediately, as a crashed daemon
// would.
func (p *packServer) stop() { p.srv.Close() }

func (p *packServer) url() string { return "http://" + p.addr }

// fastRetryPolicy keeps dead-daemon probes quick: one attempt, no backoff.
func fastRetryPolicy() client.RetryPolicy {
	return client.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}
}

// newTestHerd builds n replicated daemons over the buses plus a herd
// supervising them (daemons named d0..dn-1).
func newTestHerd(t testing.TB, n int, buses []string) (*Herd, []*packServer) {
	t.Helper()
	pack := make([]*packServer, n)
	addrs := make([]daemonAddr, n)
	for i := range pack {
		pack[i] = startPackServer(t, buses)
		addrs[i] = daemonAddr{Name: fmt.Sprintf("d%d", i), Addr: pack[i].url()}
	}
	h, err := NewHerd(context.Background(), herdConfig{
		FederationID: "test-fed",
		Daemons:      addrs,
		Timeout:      5 * time.Second,
		Retry:        fastRetryPolicy(),
	})
	if err != nil {
		t.Fatalf("NewHerd: %v", err)
	}
	return h, pack
}

func busNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dimm%02d", i)
	}
	return out
}

// TestHerdAttestFleetWide attests the whole fleet through the aggregator:
// every bus answers exactly once, in fleet order, with shard attribution, and
// the per-shard bus counts account for the whole fleet.
func TestHerdAttestFleetWide(t *testing.T) {
	buses := busNames(12)
	h, _ := newTestHerd(t, 4, buses)

	resp, werr := h.Attest(context.Background(), nil)
	if werr != nil {
		t.Fatalf("Attest: %v", werr)
	}
	if !resp.Complete || !resp.AllAccepted {
		t.Fatalf("fleet attest: complete=%v all_accepted=%v, want true/true (errors: %+v)",
			resp.Complete, resp.AllAccepted, resp.Errors)
	}
	if len(resp.Results) != len(buses) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(buses))
	}
	seenDaemons := map[string]bool{}
	for i, rep := range resp.Results {
		if rep.ID != buses[i] {
			t.Errorf("result %d is %q, want request order %q", i, rep.ID, buses[i])
		}
		if rep.Daemon == "" {
			t.Errorf("bus %s verdict has no shard attribution", rep.ID)
		}
		seenDaemons[rep.Daemon] = true
		if owner, ok := h.Assign(rep.ID); !ok || owner != rep.Daemon {
			t.Errorf("bus %s attributed to %s but assigned to %s", rep.ID, rep.Daemon, owner)
		}
	}
	if len(seenDaemons) < 2 {
		t.Errorf("all 12 buses landed on %d daemon(s); the ring should spread them", len(seenDaemons))
	}
	total := 0
	for _, s := range resp.Shards {
		if !s.Up {
			t.Errorf("shard %s reported down in a healthy pack", s.Daemon)
		}
		total += s.Buses
	}
	if total != len(buses) {
		t.Errorf("shard bus counts sum to %d, want %d", total, len(buses))
	}
}

// TestHerdAttestSubsetAndUnknown covers targeted attests: a named subset
// comes back in request order; an unknown bus is refused with unknown_link
// before any fan-out.
func TestHerdAttestSubsetAndUnknown(t *testing.T) {
	h, _ := newTestHerd(t, 2, busNames(6))

	resp, werr := h.Attest(context.Background(), []string{"dimm03", "dimm01"})
	if werr != nil {
		t.Fatalf("subset attest: %v", werr)
	}
	if len(resp.Results) != 2 || resp.Results[0].ID != "dimm03" || resp.Results[1].ID != "dimm01" {
		t.Fatalf("subset results %+v, want [dimm03 dimm01] in request order", resp.Results)
	}

	_, werr = h.Attest(context.Background(), []string{"dimm01", "bogus"})
	if werr == nil || werr.Code != attest.CodeUnknownLink {
		t.Fatalf("unknown bus error = %+v, want code %s", werr, attest.CodeUnknownLink)
	}
}

// TestHerdDaemonDeath is the federation's core failure drill: kill 1 of 4
// daemons, attest mid-death, and check the herd (a) reports exactly the dead
// daemon's buses as unavailable rather than fabricating verdicts, (b)
// re-balances so a follow-up attest succeeds fleet-wide on the survivors,
// and (c) moves only the dead daemon's buses.
func TestHerdDaemonDeath(t *testing.T) {
	buses := busNames(12)
	h, pack := newTestHerd(t, 4, buses)

	before := map[string]string{}
	for _, b := range buses {
		owner, ok := h.Assign(b)
		if !ok {
			t.Fatalf("bus %s unassigned in a healthy pack", b)
		}
		before[b] = owner
	}
	// Kill the daemon that owns dimm00 (the pack is replicated, so every
	// daemon could serve every bus — ownership is purely the ring's choice).
	victim := before["dimm00"]
	var victimIdx int
	fmt.Sscanf(victim, "d%d", &victimIdx)
	pack[victimIdx].stop()

	resp, werr := h.Attest(context.Background(), nil)
	if werr != nil {
		t.Fatalf("mid-death attest: %v", werr)
	}
	if resp.Complete || resp.AllAccepted {
		t.Fatalf("mid-death attest: complete=%v all_accepted=%v, want false/false",
			resp.Complete, resp.AllAccepted)
	}
	// The error envelope must carry exactly the victim's planned buses, and
	// no verdict may cover them.
	var victimErr *attest.ShardError
	for i := range resp.Errors {
		if resp.Errors[i].Daemon == victim {
			victimErr = &resp.Errors[i]
		}
	}
	if victimErr == nil {
		t.Fatalf("no shard error for dead daemon %s: %+v", victim, resp.Errors)
	}
	if victimErr.Code != attest.CodeUnavailable {
		t.Errorf("dead shard error code %q, want %s", victimErr.Code, attest.CodeUnavailable)
	}
	failed := map[string]bool{}
	for _, b := range victimErr.Links {
		if before[b] != victim {
			t.Errorf("error envelope lists %s, which %s never owned", b, victim)
		}
		failed[b] = true
	}
	for _, rep := range resp.Results {
		if failed[rep.ID] {
			t.Errorf("bus %s got verdict %v from a dead daemon's shard — fabricated OK", rep.ID, rep.Accepted)
		}
		if rep.Daemon == victim {
			t.Errorf("bus %s attributed to the dead daemon %s", rep.ID, victim)
		}
	}
	if len(resp.Results)+len(failed) != len(buses) {
		t.Errorf("results (%d) + failed (%d) != fleet (%d)", len(resp.Results), len(failed), len(buses))
	}

	// Re-balance: the follow-up attest must succeed fleet-wide on the
	// survivors, and only the victim's buses may have moved.
	resp2, werr := h.Attest(context.Background(), nil)
	if werr != nil {
		t.Fatalf("post-death attest: %v", werr)
	}
	if !resp2.Complete || !resp2.AllAccepted {
		t.Fatalf("post-death attest: complete=%v all_accepted=%v, want true/true (errors: %+v)",
			resp2.Complete, resp2.AllAccepted, resp2.Errors)
	}
	for _, rep := range resp2.Results {
		if rep.Daemon == victim {
			t.Errorf("bus %s still attributed to dead daemon %s", rep.ID, victim)
		}
		if before[rep.ID] != victim && rep.Daemon != before[rep.ID] {
			t.Errorf("bus %s moved %s→%s though its daemon never died",
				rep.ID, before[rep.ID], rep.Daemon)
		}
	}
}

// TestHerdRejoin resurrects a killed daemon at the same address: the next
// probe revives it and the original assignment comes back.
func TestHerdRejoin(t *testing.T) {
	buses := busNames(8)
	h, pack := newTestHerd(t, 3, buses)

	before := map[string]string{}
	for _, b := range buses {
		before[b], _ = h.Assign(b)
	}
	victim := before[buses[0]]
	var victimIdx int
	fmt.Sscanf(victim, "d%d", &victimIdx)
	pack[victimIdx].stop()

	if err := h.probeOnce(context.Background()); err != nil {
		t.Fatalf("probe with dead daemon: %v", err)
	}
	if owner, ok := h.Assign(buses[0]); !ok || owner == victim {
		t.Fatalf("bus %s assignment after death = %s/%v, want a survivor", buses[0], owner, ok)
	}

	pack[victimIdx].start(t)
	if err := h.probeOnce(context.Background()); err != nil {
		t.Fatalf("probe after rejoin: %v", err)
	}
	for _, b := range buses {
		owner, ok := h.Assign(b)
		if !ok || owner != before[b] {
			t.Errorf("bus %s assigned to %s/%v after rejoin, want original %s", b, owner, ok, before[b])
		}
	}
}

// TestHerdHealthRollup checks the federated /v1/health: every bus reported
// once by its assigned daemon, per-daemon standing included, and a dead
// daemon turns Complete false without fabricating its links' health.
func TestHerdHealthRollup(t *testing.T) {
	buses := busNames(9)
	h, pack := newTestHerd(t, 3, buses)
	ctx := context.Background()

	hr := h.HerdHealth(ctx)
	if !hr.Complete {
		t.Fatalf("healthy rollup incomplete: %+v", hr)
	}
	if hr.FederationID != "test-fed" {
		t.Errorf("rollup federation_id %q, want test-fed", hr.FederationID)
	}
	if len(hr.Daemons) != 3 {
		t.Fatalf("rollup has %d daemons, want 3", len(hr.Daemons))
	}
	seen := map[string]int{}
	for _, lv := range hr.Links {
		seen[lv.ID]++
	}
	for _, b := range buses {
		if seen[b] != 1 {
			t.Errorf("bus %s reported %d times in rollup, want exactly once", b, seen[b])
		}
	}

	victim, _ := h.Assign(buses[0])
	var victimIdx int
	fmt.Sscanf(victim, "d%d", &victimIdx)
	pack[victimIdx].stop()

	hr = h.HerdHealth(ctx)
	if hr.Complete {
		t.Fatal("rollup claims completeness with a dead daemon")
	}
	for _, dh := range hr.Daemons {
		if dh.Daemon == victim {
			if dh.Up {
				t.Errorf("dead daemon %s reported up", victim)
			}
			if dh.Error == "" {
				t.Errorf("dead daemon %s carries no error detail", victim)
			}
		}
	}
}

// TestHerdFederationMismatch: a reachable daemon claiming a different
// federation refuses startup — silently absorbing someone else's fleet is a
// misconfiguration, not a degraded mode.
func TestHerdFederationMismatch(t *testing.T) {
	p := startPackServer(t, busNames(2))
	// The pack daemon has no federation id of its own; impersonate one by
	// fronting it with a herd claiming a different federation than a second
	// herd probing it. The daemon-side id comes from the spec, so build one
	// directly.
	spec := daemon.Spec{Seed: 7, Listen: "127.0.0.1:0", IntervalMS: 60_000, FederationID: "blue"}
	spec.Buses = []daemon.BusSpec{{ID: "solo"}}
	d, err := daemon.NewWithConfig(spec, lightConfig())
	if err != nil {
		t.Fatal(err)
	}
	fed := &packServer{d: d}
	fed.start(t)

	_, err = NewHerd(context.Background(), herdConfig{
		FederationID: "green",
		Daemons:      []daemonAddr{{Name: "d0", Addr: fed.url()}},
		Timeout:      5 * time.Second,
		Retry:        fastRetryPolicy(),
	})
	if err == nil {
		t.Fatal("herd enrolled a daemon from a foreign federation")
	}

	// The same daemon under a blank herd id (not federated) is accepted.
	h, err := NewHerd(context.Background(), herdConfig{
		Daemons: []daemonAddr{{Name: "d0", Addr: p.url()}},
		Timeout: 5 * time.Second,
		Retry:   fastRetryPolicy(),
	})
	if err != nil {
		t.Fatalf("blank federation herd refused a plain daemon: %v", err)
	}
	if got := h.HealthSummary(); got.Buses != 2 {
		t.Errorf("herd sees %d buses, want 2", got.Buses)
	}
}

// TestParseDaemons covers the -daemons flag grammar.
func TestParseDaemons(t *testing.T) {
	got, err := parseDaemons("http://a:1, east=http://b:2 ,http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []daemonAddr{
		{Name: "d0", Addr: "http://a:1"},
		{Name: "east", Addr: "http://b:2"},
		{Name: "d2", Addr: "http://c:3"},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := parseDaemons(""); err == nil {
		t.Error("empty -daemons accepted")
	}
	if _, err := parseDaemons("=http://x"); err == nil {
		t.Error("empty daemon name accepted")
	}
}

// TestHerdHistoryPassthrough covers the federated history route: a known
// bus's history comes from its assigned daemon (empty but present on a fresh
// fleet), an unknown bus is refused before fan-out, a dead owner surfaces as
// unavailable once and is re-balanced away, and the HTTP route speaks the
// v1 envelope.
func TestHerdHistoryPassthrough(t *testing.T) {
	buses := busNames(4)
	h, pack := newTestHerd(t, 2, buses)
	ctx := context.Background()

	resp, werr := h.History(ctx, "dimm00")
	if werr != nil {
		t.Fatalf("History: %+v", werr)
	}
	if resp.Link != "dimm00" || resp.Samples == nil {
		t.Fatalf("History = %+v, want link dimm00 with non-nil samples", resp)
	}

	// HTTP route: same answer through the envelope.
	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/links/dimm00/history", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("history route status %d: %s", rec.Code, rec.Body.String())
	}
	var hr attest.HistoryResponse
	if err := attest.ParseBody(rec.Body.Bytes(), &hr); err != nil {
		t.Fatalf("history route body: %v", err)
	}
	if hr.Link != "dimm00" {
		t.Errorf("history route link %q, want dimm00", hr.Link)
	}

	if _, werr := h.History(ctx, "bogus"); werr == nil || werr.Code != attest.CodeUnknownLink {
		t.Fatalf("unknown bus history = %+v, want %s", werr, attest.CodeUnknownLink)
	}

	// Kill the assigned owner: the in-flight call fails as unavailable and
	// marks the shard down; the replicated survivor serves the retry.
	owner, ok := h.Assign("dimm00")
	if !ok {
		t.Fatal("dimm00 unassigned in a healthy pack")
	}
	var ownerIdx int
	fmt.Sscanf(owner, "d%d", &ownerIdx)
	pack[ownerIdx].stop()
	if _, werr := h.History(ctx, "dimm00"); werr == nil || werr.Code != attest.CodeUnavailable {
		t.Fatalf("mid-death history = %+v, want %s", werr, attest.CodeUnavailable)
	}
	resp, werr = h.History(ctx, "dimm00")
	if werr != nil {
		t.Fatalf("post-death history: %+v", werr)
	}
	if newOwner, _ := h.Assign("dimm00"); newOwner == owner {
		t.Errorf("dimm00 still assigned to dead daemon %s", owner)
	}
}
