package main

// The herd's GET /v1/stream is the federated face of the daemons' multiplexed
// event stream: one downstream connection fans out to one upstream WatchMulti
// per shard, and the shards' frames are re-encoded onto the single downstream
// socket. Per-link sequence numbers are owned by the serving daemon and pass
// through untouched — a resume cursor handed back to the herd lands on the
// same daemon (consistent-hash assignment), so the cursor stays meaningful
// across herd restarts. The herd adds no buffering of record: an upstream gap
// or shard failure is re-encoded as a Gap or Error frame and ends the stream,
// never papered over.

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"time"

	"divot/client"
	"divot/internal/attest"
	"divot/internal/telemetry"
	"divot/internal/wire"
)

// herdHeartbeat paces downstream keep-alive frames while every shard is
// quiet (matches the daemons' own stream heartbeat).
const herdHeartbeat = 5 * time.Second

// streamMsg is one item off the merged per-shard feeds: an event, or a
// shard's feed ending (err nil only when the watch was closed locally).
type streamMsg struct {
	ev    client.Event
	ended bool
	shard string
	err   error
}

func (h *Herd) handleStream(w http.ResponseWriter, r *http.Request) {
	sub, err := wire.ParseSubscribeRequest(r)
	if err != nil {
		attest.WriteError(w, attest.CodeBadRequest, "%v", err)
		return
	}
	for _, k := range sub.Kinds {
		if _, ok := telemetry.KindByName(k); !ok {
			attest.WriteError(w, attest.CodeBadRequest, "unknown event kind %q", k)
			return
		}
	}

	// Resolve targets and their serving shards. Explicitly named buses must
	// all be servable — a dead shard's bus is an up-front unavailable, not a
	// silently missing feed. A whole-fleet subscribe streams what is
	// currently assigned; the Hello names exactly the links served.
	var targets []string
	if len(sub.Links) == 0 {
		h.mu.RLock()
		targets = append([]string(nil), h.buses...)
		h.mu.RUnlock()
	} else {
		seen := make(map[string]bool, len(sub.Links))
		h.mu.RLock()
		for _, id := range sub.Links {
			if _, known := h.owners[id]; !known {
				h.mu.RUnlock()
				attest.WriteError(w, attest.CodeUnknownLink, "unknown bus %q", id)
				return
			}
			if !seen[id] {
				seen[id] = true
				targets = append(targets, id)
			}
		}
		h.mu.RUnlock()
		sort.Strings(targets)
	}
	plan, unassigned := h.planFor(targets)
	if len(sub.Links) > 0 && len(unassigned) > 0 {
		attest.WriteError(w, attest.CodeUnavailable,
			"no live daemon serves %v", unassigned)
		return
	}
	if len(sub.Links) == 0 {
		targets = targets[:0]
		for _, group := range plan {
			targets = append(targets, group...)
		}
		sort.Strings(targets)
	}
	if len(plan) == 0 {
		attest.WriteError(w, attest.CodeUnavailable, "no live daemon serves any bus")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		attest.WriteError(w, attest.CodeInternal, "streaming unsupported")
		return
	}

	// Open every upstream watch before the first downstream byte: a shard
	// refusing the subscribe (unknown kind, gone bus) still surfaces as a
	// proper error envelope.
	ctx := r.Context()
	names := make([]string, 0, len(plan))
	for name := range plan {
		names = append(names, name)
	}
	sort.Strings(names)
	watches := make([]*client.MultiWatch, 0, len(names))
	for _, name := range names {
		group := plan[name]
		after := make(map[string]uint64)
		for _, id := range group {
			if cur, ok := sub.After[id]; ok {
				after[id] = cur
			}
		}
		h.mu.RLock()
		c := h.shards[name].c
		h.mu.RUnlock()
		start := time.Now()
		mw, err := c.WatchMulti(ctx, client.WatchOptions{
			Links: group, Kinds: sub.Kinds, AfterByLink: after, Buffer: 64,
		})
		h.fanoutDur.With(name, "stream").Observe(time.Since(start).Seconds())
		if err != nil {
			for _, open := range watches {
				open.Close()
			}
			h.markStreamFailure(name, err)
			attest.WriteError(w, errCode(err), "daemon %s: %v", name, err)
			return
		}
		watches = append(watches, mw)
	}

	merged := make(chan streamMsg, 64)
	for i, mw := range watches {
		go func(name string, mw *client.MultiWatch) {
			for ev := range mw.Events() {
				select {
				case merged <- streamMsg{ev: ev}:
				case <-ctx.Done():
					return
				}
			}
			select {
			case merged <- streamMsg{ended: true, shard: name, err: mw.Err()}:
			case <-ctx.Done():
			}
		}(names[i], mw)
	}
	defer func() {
		for _, mw := range watches {
			mw.Close()
		}
	}()

	w.Header().Set("Content-Type", wire.ContentType)
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	hello, _ := json.Marshal(wire.Hello{Links: targets})
	buf := wire.AppendFrame(nil, wire.FrameHello, hello)
	if _, err := w.Write(buf); err != nil {
		return
	}
	fl.Flush()

	heartbeat := time.NewTicker(herdHeartbeat)
	defer heartbeat.Stop()
	live := len(watches)
	for {
		buf = buf[:0]
		select {
		case <-ctx.Done():
			return
		case <-heartbeat.C:
			buf = wire.AppendFrame(buf, wire.FrameHeartbeat, nil)
		case msg := <-merged:
			for {
				if msg.ended {
					if msg.err == nil || errors.Is(msg.err, ctx.Err()) && ctx.Err() != nil {
						live--
						if live > 0 {
							break
						}
						// Every shard finished cleanly: tell the subscriber
						// the stream is over rather than just hanging up.
						buf = wire.AppendFrame(buf, wire.FrameShutdown, nil)
						w.Write(buf) //nolint:errcheck // closing anyway
						fl.Flush()
						return
					}
					buf = h.appendShardFailure(buf, msg.shard, msg.err)
					w.Write(buf) //nolint:errcheck // closing anyway
					fl.Flush()
					return
				}
				buf = wire.AppendEventFrame(buf, msg.ev)
				// Opportunistically batch whatever else is already queued
				// into this write.
				select {
				case msg = <-merged:
					continue
				default:
				}
				break
			}
		}
		if len(buf) == 0 {
			continue
		}
		if _, err := w.Write(buf); err != nil {
			return
		}
		fl.Flush()
	}
}

// appendShardFailure re-encodes a shard's terminal watch error for the
// downstream subscriber: an upstream resume gap stays a Gap frame (typed,
// with the link and cursor bounds), everything else becomes an Error frame
// naming the shard. Either way the shard is re-probed for liveness via the
// usual mark-down path.
func (h *Herd) appendShardFailure(buf []byte, name string, err error) []byte {
	h.markStreamFailure(name, err)
	var gap *client.ResumeGapError
	if errors.As(err, &gap) {
		raw, _ := json.Marshal(wire.Gap{Link: gap.Link, Resume: gap.Resume, Oldest: gap.Oldest})
		return wire.AppendFrame(buf, wire.FrameGap, raw)
	}
	raw, _ := json.Marshal(wire.ErrorInfo{
		Code:    errCode(err),
		Message: "daemon " + name + ": " + err.Error(),
	})
	return wire.AppendFrame(buf, wire.FrameError, raw)
}

// markStreamFailure applies the History rule to a stream fan-out failure:
// structured 4xx answers mean the daemon is alive and refusing, transport
// faults and 5xx mark it down and re-balance its buses.
func (h *Herd) markStreamFailure(name string, err error) {
	var aerr *client.APIError
	if errors.As(err, &aerr) && aerr.Status < 500 {
		return
	}
	var gap *client.ResumeGapError
	if errors.As(err, &gap) {
		return // the daemon answered fine; the subscriber's cursor is stale
	}
	if h.setDown(name, err.Error()) {
		h.rebalanced()
	}
}
