// Command divotcal demonstrates the calibration lifecycle (§III): pair a
// link, export both endpoints' EPROM images to files, then "power cycle"
// into a fresh engine over the same physical bus and restore calibration
// from the images — the boot path of a factory-paired system.
//
// Usage:
//
//	divotcal [-seed N] [-dir DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"divot/internal/core"
	"divot/internal/rng"
	"divot/internal/txline"
)

func main() {
	seed := flag.Uint64("seed", 1, "root random seed")
	dir := flag.String("dir", ".", "directory for the EPROM image files")
	flag.Parse()

	stream := rng.New(*seed)
	line := txline.New("bus0", txline.DefaultConfig(), stream.Child("line"))

	fmt.Println("== factory: manufacture line, pair endpoints ==")
	factory, err := core.NewLinkOver("bus0", core.DefaultConfig(), line, stream.Child("factory"))
	if err != nil {
		fail(err)
	}
	if err := factory.Calibrate(); err != nil {
		fail(err)
	}
	cleanAlerts, err := factory.MonitorN(2)
	if err != nil {
		fail(err)
	}
	fmt.Printf("calibrated; clean monitoring rounds: %d alerts\n", len(cleanAlerts))

	cpuPath := filepath.Join(*dir, "bus0-cpu.eprom.json")
	modPath := filepath.Join(*dir, "bus0-module.eprom.json")
	if err := exportTo(cpuPath, factory.CPU.ExportEnrollment); err != nil {
		fail(err)
	}
	if err := exportTo(modPath, factory.Module.ExportEnrollment); err != nil {
		fail(err)
	}
	fmt.Printf("EPROM images written: %s, %s\n", cpuPath, modPath)

	fmt.Println("\n== field: power-on with fresh engine, restore from EPROM ==")
	field, err := core.NewLinkOver("bus0", core.DefaultConfig(), line, stream.Child("field"))
	if err != nil {
		fail(err)
	}
	cpuROM, err := os.Open(cpuPath)
	if err != nil {
		fail(err)
	}
	defer cpuROM.Close()
	modROM, err := os.Open(modPath)
	if err != nil {
		fail(err)
	}
	defer modROM.Close()
	if err := field.RestoreCalibration(cpuROM, modROM); err != nil {
		fail(err)
	}
	alerts, err := field.MonitorN(3)
	if err != nil {
		fail(err)
	}
	fmt.Printf("restored; 3 monitoring rounds raised %d alerts; gates cpu=%v module=%v\n",
		len(alerts), field.CPU.Gate.Authorized(), field.Module.Gate.Authorized())

	fmt.Println("\n== sanity: restored engine still rejects a foreign bus ==")
	attacker := txline.New("foreign", txline.DefaultConfig(), rng.New(*seed+1))
	field.Module.SetObservedLine(attacker)
	foreign, err := field.MonitorOnce()
	if err != nil {
		fail(err)
	}
	for _, a := range foreign {
		fmt.Println("ALERT", a)
	}
}

func exportTo(path string, export func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return export(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "divotcal:", err)
	os.Exit(1)
}
