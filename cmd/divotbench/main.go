// Command divotbench regenerates the paper's tables and figures from the
// behavioral DIVOT simulation. Every artifact in DESIGN.md's per-experiment
// index is available by ID; the default runs them all.
//
// Usage:
//
//	divotbench [-mode quick|full] [-seed N] [-exp all|id1,id2,...] [-list]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"divot/internal/exper"
)

func main() {
	mode := flag.String("mode", "quick", "statistical depth: quick or full")
	seed := flag.Uint64("seed", 42, "root random seed")
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array instead of tables")
	flag.Parse()

	if *list {
		for _, e := range exper.All() {
			fmt.Println(e.ID)
		}
		return
	}

	var m exper.Mode
	switch *mode {
	case "quick":
		m = exper.Quick
	case "full":
		m = exper.Full
	default:
		fmt.Fprintf(os.Stderr, "divotbench: unknown mode %q (want quick or full)\n", *mode)
		os.Exit(2)
	}

	var entries []exper.Entry
	if *expFlag == "all" {
		entries = exper.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			gen, ok := exper.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "divotbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			entries = append(entries, exper.Entry{ID: id, Generator: gen})
		}
	}

	if *jsonOut {
		results := make([]exper.Result, 0, len(entries))
		for _, e := range entries {
			results = append(results, e.Generator(*seed, m))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "divotbench:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("DIVOT reproduction bench — mode=%s seed=%d — %d experiment(s)\n\n",
		m, *seed, len(entries))
	for _, e := range entries {
		start := time.Now()
		r := e.Generator(*seed, m)
		fmt.Print(r.String())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
