// Command iipgen manufactures transmission lines, measures their IIP
// fingerprints through the iTDR, renders them as ASCII waveforms, and prints
// the cross-similarity matrix — a quick way to see the PUF property.
//
// Usage:
//
//	iipgen [-lines N] [-seed N] [-plot] [-attack wiretap|magprobe|loadmod] [-pos mm]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"divot/internal/attack"
	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

type dut struct {
	line *txline.Line
	refl *itdr.Reflectometer
	fp   fingerprint.IIP
}

func main() {
	lines := flag.Int("lines", 3, "number of lines to manufacture")
	seed := flag.Uint64("seed", 1, "root random seed")
	plot := flag.Bool("plot", true, "render ASCII waveforms")
	attackName := flag.String("attack", "", "mount an attack on line 0: wiretap, magprobe, or loadmod")
	posMM := flag.Float64("pos", 120, "attack position in mm")
	csvPath := flag.String("csv", "", "write the fingerprints as CSV (time_ns, tx0, tx1, ...) to this file")
	flag.Parse()

	stream := rng.New(*seed)
	icfg := itdr.DefaultConfig()
	lcfg := txline.DefaultConfig()
	pipe := fingerprint.DefaultPipeline()
	env := txline.RoomTemperature()

	duts := make([]*dut, *lines)
	for i := range duts {
		id := fmt.Sprintf("tx%d", i)
		sub := stream.Child(id)
		d := &dut{
			line: txline.New(id, lcfg, sub.Child("line")),
			refl: itdr.MustNew(icfg, txline.DefaultProbe(), nil, sub.Child("itdr")),
		}
		d.fp = pipe.FromWaveform(d.refl.Measure(d.line, env).IIP)
		duts[i] = d
	}

	fmt.Printf("manufactured %d lines (25 cm, 50 Ω nominal); measured via iTDR "+
		"(%d bins, %.1f µs per IIP)\n\n", *lines, icfg.Bins(), icfg.MeasurementDuration()*1e6)

	if *plot {
		for i, d := range duts {
			fmt.Printf("line tx%d IIP (termination %.2f Ω):\n", i, d.line.Termination())
			fmt.Println(asciiPlot(d.fp.Raw, 64, 9))
		}
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, duts); err != nil {
			fmt.Fprintln(os.Stderr, "iipgen:", err)
			os.Exit(1)
		}
		fmt.Printf("fingerprints written to %s\n", *csvPath)
	}

	fmt.Println("similarity matrix (Eq. 4):")
	fmt.Print("        ")
	for j := range duts {
		fmt.Printf("tx%-6d", j)
	}
	fmt.Println()
	for i, d := range duts {
		m := pipe.FromWaveform(d.refl.Measure(d.line, env).IIP)
		fmt.Printf("tx%-6d", i)
		for _, o := range duts {
			fmt.Printf("%-8.4f", fingerprint.Similarity(m, o.fp))
		}
		fmt.Println()
	}

	if *attackName != "" {
		d := duts[0]
		pos := *posMM / 1e3
		var a attack.Attack
		switch *attackName {
		case "wiretap":
			a = attack.DefaultWireTap(pos)
		case "magprobe":
			a = attack.DefaultMagneticProbe(pos)
		case "loadmod":
			a = attack.SameModelReplacement(lcfg, stream.Child("chip"))
		default:
			fmt.Fprintf(os.Stderr, "iipgen: unknown attack %q\n", *attackName)
			os.Exit(2)
		}
		fmt.Printf("\nmounting %s on tx0...\n", a.Name())
		a.Apply(d.line)
		m := pipe.FromWaveform(d.refl.Measure(d.line, env).IIP)
		e := fingerprint.ErrorFunction(m, d.fp)
		peak, idx, at := fingerprint.PeakError(e)
		fmt.Printf("E_xy peak %.3g at %.2f ns → %.1f mm (similarity now %.4f)\n",
			peak, at*1e9, fingerprint.LocalizeError(e, idx, lcfg.Velocity)*1e3,
			fingerprint.Similarity(m, d.fp))
		if *plot {
			fmt.Println("error function E_xy(t):")
			fmt.Println(asciiPlot(e, 64, 7))
		}
	}
}

// asciiPlot renders a waveform as a rows×cols character grid.
func asciiPlot(w *signal.Waveform, cols, rows int) string {
	if w.Len() == 0 {
		return "(empty)"
	}
	lo, hi := w.Samples[0], w.Samples[0]
	for _, v := range w.Samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for c := 0; c < cols; c++ {
		idx := c * (w.Len() - 1) / (cols - 1)
		v := w.Samples[idx]
		r := int(float64(rows-1) * (hi - v) / (hi - lo))
		grid[r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %+.3g\n", hi)
	for _, row := range grid {
		b.WriteString("  |" + string(row) + "\n")
	}
	fmt.Fprintf(&b, "  %+.3g  (0 .. %.2f ns)\n", lo, w.Duration()*1e9)
	return b.String()
}

// writeCSV dumps the fingerprints column-wise for external plotting.
func writeCSV(path string, duts []*dut) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprint(w, "time_ns")
	for i := range duts {
		fmt.Fprintf(w, ",tx%d", i)
	}
	fmt.Fprintln(w)
	n := duts[0].fp.Raw.Len()
	for s := 0; s < n; s++ {
		fmt.Fprintf(w, "%.4f", duts[0].fp.Raw.TimeOf(s)*1e9)
		for _, d := range duts {
			fmt.Fprintf(w, ",%.6e", d.fp.Raw.Samples[s])
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
