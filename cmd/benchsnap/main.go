// Command benchsnap converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON array on stdout, one object per benchmark
// result line:
//
//	[{"name": "MonitorRound", "procs": 8, "iterations": 100,
//	  "ns_per_op": 11897940, "bytes_per_op": 5374858, "allocs_per_op": 200}]
//
// Non-benchmark lines (package headers, PASS/ok, sub-test noise) are
// ignored, so the tool can sit directly on a `go test` pipe:
//
//	go test . -run XXX -bench . -benchtime 1x -benchmem | benchsnap > BENCH_3.json
//
// Used by `make bench-snapshot` to record BENCH_<pr>.json checkpoints that
// can be diffed across PRs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

// run parses benchmark lines from r and writes the JSON array to w.
func run(r io.Reader, w, errw io.Writer) int {
	results, err := parse(r)
	if err != nil {
		fmt.Fprintln(errw, "benchsnap:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(errw, "benchsnap: no benchmark lines on stdin")
		return 1
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(errw, "benchsnap:", err)
		return 1
	}
	return 0
}

// parse scans `go test -bench` output and extracts every result line, in
// input order (the order benchmarks ran).
func parse(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// parseLine parses one line of the form
//
//	BenchmarkName-8   100   11897940 ns/op   5374858 B/op   200 allocs/op
//
// and reports whether the line was a benchmark result. Trailing custom
// metrics are ignored; B/op and allocs/op are optional (absent without
// -benchmem).
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	res := result{Name: strings.TrimPrefix(fields[0], "Benchmark"), Procs: 1}
	if i := strings.LastIndex(res.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Procs = p
			res.Name = res.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res.Iterations = iters

	// The rest is value/unit pairs.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return result{}, false
			}
			res.NsPerOp = f
			seenNs = true
		case "B/op":
			res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return res, seenNs
}
