// Command benchsnap converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON array on stdout, one object per benchmark
// result line:
//
//	[{"name": "MonitorRound", "procs": 8, "iterations": 100,
//	  "ns_per_op": 11897940, "bytes_per_op": 5374858, "allocs_per_op": 200}]
//
// Non-benchmark lines (package headers, PASS/ok, sub-test noise) are
// ignored, so the tool can sit directly on a `go test` pipe. `make
// bench-snapshot` is the canonical producer — it runs the hot-path micros
// and the federation sweep and records BENCH_$(PR).json (PR comes from the
// Makefile variable), the checkpoints the perf history is diffed on.
//
// Every result must carry B/op and allocs/op — benchsnap refuses input
// produced without -benchmem, so a snapshot can never silently drop the
// allocation columns.
//
// Repeatable -max-allocs name=N flags turn benchsnap into an allocation
// guard with three hard edges: a budgeted benchmark that allocates more
// than N allocs/op fails (exit 1), a budget naming a benchmark absent from
// the input fails (a guard that guards nothing would rot), and input
// without -benchmem columns fails before any budget is checked. `make
// bench-guard` runs the hot-path benchmarks through
// `-max-allocs MonitorRound=$(MONITOR_ALLOC_BUDGET)` (and the calibration
// budget) to fail the build when a hot path regresses.
//
// -compare OLD.json diffs the fresh run against a previously recorded
// snapshot: every benchmark present in both gets a ns/op, B/op, and
// allocs/op delta line on stderr; benchmarks new to this run are marked
// "new", and baseline entries that did not run are skipped (a guard run
// benches a subset of the snapshot). With -max-regress P (a percentage),
// any compared dimension growing by more than P% fails the run — a
// dimension whose baseline is zero fails on any growth, since no finite
// percentage describes it. -max-regress without -compare is an error:
// a regression gate with nothing to compare against would rot silently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`

	// Metrics holds any custom b.ReportMetric units on the line (e.g.
	// BenchmarkEventFanout's "cores" and "frames/s"), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// hasMem records whether the line actually carried B/op and allocs/op
	// (false means the run forgot -benchmem and zeros would be lies).
	hasMem bool
}

// allocBudgets maps benchmark name → maximum allowed allocs/op.
type allocBudgets map[string]int64

// String implements flag.Value.
func (b allocBudgets) String() string {
	parts := make([]string, 0, len(b))
	for name, n := range b {
		parts = append(parts, fmt.Sprintf("%s=%d", name, n))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Set implements flag.Value, parsing one name=N pair.
func (b allocBudgets) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=N, got %q", s)
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil || n < 0 {
		return fmt.Errorf("budget for %q must be a non-negative integer, got %q", name, val)
	}
	b[name] = n
	return nil
}

func main() {
	budgets := allocBudgets{}
	flag.Var(budgets, "max-allocs",
		"fail when benchmark `name=N` exceeds N allocs/op (repeatable)")
	comparePath := flag.String("compare", "",
		"prior benchsnap `snapshot` (JSON) to diff this run against")
	maxRegress := flag.Float64("max-regress", -1,
		"with -compare, fail when any ns/B/allocs dimension grows more than this `percent` (-1 reports only)")
	flag.Parse()
	var baseline []result
	if *comparePath != "" {
		raw, err := os.ReadFile(*comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: parsing baseline %s: %v\n", *comparePath, err)
			os.Exit(1)
		}
	} else if *maxRegress >= 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: -max-regress needs -compare")
		os.Exit(1)
	}
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr, budgets, baseline, *maxRegress))
}

// run parses benchmark lines from r, writes the JSON array to w, and
// enforces the allocation budgets and (with a baseline) the regression
// threshold.
func run(r io.Reader, w, errw io.Writer, budgets allocBudgets, baseline []result, maxRegress float64) int {
	results, err := parse(r)
	if err != nil {
		fmt.Fprintln(errw, "benchsnap:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(errw, "benchsnap: no benchmark lines on stdin")
		return 1
	}
	for _, res := range results {
		if !res.hasMem {
			fmt.Fprintf(errw,
				"benchsnap: %s has no B/op / allocs/op — run go test with -benchmem\n", res.Name)
			return 1
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(errw, "benchsnap:", err)
		return 1
	}
	code := checkBudgets(results, budgets, errw)
	if baseline != nil {
		if c := compare(results, baseline, maxRegress, errw); c != 0 {
			code = c
		}
	}
	return code
}

// compare prints per-benchmark deltas against a prior snapshot and, when
// maxRegress >= 0, fails past the threshold. Benchmarks absent from the
// baseline are "new"; baseline entries that did not run are skipped, so a
// guard can bench a subset of a full snapshot.
func compare(results, baseline []result, maxRegress float64, errw io.Writer) int {
	byName := make(map[string]result, len(baseline))
	for _, res := range baseline {
		byName[res.Name] = res
	}
	code := 0
	for _, res := range results {
		old, ok := byName[res.Name]
		if !ok {
			fmt.Fprintf(errw, "benchsnap: %s: new (no baseline)\n", res.Name)
			continue
		}
		type dim struct {
			unit     string
			old, new float64
		}
		dims := []dim{
			{"ns/op", old.NsPerOp, res.NsPerOp},
			{"B/op", float64(old.BytesPerOp), float64(res.BytesPerOp)},
			{"allocs/op", float64(old.AllocsPerOp), float64(res.AllocsPerOp)},
		}
		parts := make([]string, 0, len(dims))
		for _, d := range dims {
			parts = append(parts, fmt.Sprintf("%s %s -> %s (%s)",
				d.unit, trimFloat(d.old), trimFloat(d.new), deltaPct(d.old, d.new)))
			if maxRegress < 0 {
				continue
			}
			switch {
			case d.old == 0 && d.new > 0:
				fmt.Fprintf(errw, "benchsnap: %s %s regressed from zero to %s\n",
					res.Name, d.unit, trimFloat(d.new))
				code = 1
			case d.old > 0 && (d.new-d.old)/d.old*100 > maxRegress:
				fmt.Fprintf(errw, "benchsnap: %s %s regressed %s, limit +%.1f%%\n",
					res.Name, d.unit, deltaPct(d.old, d.new), maxRegress)
				code = 1
			}
		}
		fmt.Fprintf(errw, "benchsnap: %s: %s\n", res.Name, strings.Join(parts, ", "))
	}
	return code
}

// deltaPct renders the relative change between two values.
func deltaPct(old, new float64) string {
	switch {
	case old == 0 && new == 0:
		return "+0.0%"
	case old == 0:
		return "new"
	default:
		return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
	}
}

// trimFloat renders a value without trailing zeros.
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// checkBudgets compares every budgeted benchmark against its ceiling. A
// budget naming a benchmark that did not run is itself an error — a guard
// that silently guards nothing would rot.
func checkBudgets(results []result, budgets allocBudgets, errw io.Writer) int {
	if len(budgets) == 0 {
		return 0
	}
	byName := make(map[string]result, len(results))
	for _, res := range results {
		byName[res.Name] = res
	}
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)
	code := 0
	for _, name := range names {
		res, ok := byName[name]
		if !ok {
			fmt.Fprintf(errw, "benchsnap: budgeted benchmark %s not in input\n", name)
			code = 1
			continue
		}
		if res.AllocsPerOp > budgets[name] {
			fmt.Fprintf(errw, "benchsnap: %s allocates %d/op, budget %d/op\n",
				name, res.AllocsPerOp, budgets[name])
			code = 1
		}
	}
	return code
}

// parse scans `go test -bench` output and extracts every result line, in
// input order (the order benchmarks ran).
func parse(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// parseLine parses one line of the form
//
//	BenchmarkName-8   100   11897940 ns/op   5374858 B/op   200 allocs/op
//
// and reports whether the line was a benchmark result. Custom b.ReportMetric
// units land in Metrics verbatim; a line without both B/op and allocs/op is
// parsed but flagged, so run can reject snapshots taken without -benchmem.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	res := result{Name: strings.TrimPrefix(fields[0], "Benchmark"), Procs: 1}
	if i := strings.LastIndex(res.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Procs = p
			res.Name = res.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res.Iterations = iters

	// The rest is value/unit pairs.
	seenNs, seenB, seenAllocs := false, false, false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return result{}, false
			}
			res.NsPerOp = f
			seenNs = true
		case "B/op":
			res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			seenB = true
		case "allocs/op":
			res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			seenAllocs = true
		default:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				continue
			}
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = f
		}
	}
	res.hasMem = seenB && seenAllocs
	return res, seenNs
}
