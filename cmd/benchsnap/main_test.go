package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: divot
cpu: some CPU @ 2.80GHz
BenchmarkIIPMeasurement-8                	       1	  32876311 ns/op	  806304 B/op	      24 allocs/op
BenchmarkSimilarity-8                    	  838552	      1391 ns/op	       0 B/op	       0 allocs/op
BenchmarkMonitorRoundTelemetry/nosink-8  	       1	  68229000 ns/op	 1612608 B/op	      48 allocs/op
BenchmarkMonitorRoundTelemetry/sink-8    	       1	  69120000 ns/op	 1613400 B/op	      62 allocs/op
PASS
ok  	divot	12.345s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	first := results[0]
	if first.Name != "IIPMeasurement" || first.Procs != 8 || first.Iterations != 1 ||
		first.NsPerOp != 32876311 || first.BytesPerOp != 806304 || first.AllocsPerOp != 24 {
		t.Errorf("first result mis-parsed: %+v", first)
	}
	if results[2].Name != "MonitorRoundTelemetry/nosink" {
		t.Errorf("sub-benchmark name = %q", results[2].Name)
	}
	// A zero-allocation result still carries the columns explicitly.
	if sim := results[1]; !sim.hasMem || sim.BytesPerOp != 0 || sim.AllocsPerOp != 0 {
		t.Errorf("zero-alloc result mis-parsed: %+v", sim)
	}
}

func TestParseRecordsCustomMetrics(t *testing.T) {
	line := "BenchmarkEventFanout/watchers=10000-8 \t 5391 \t 401857 ns/op \t " +
		"0.9778 cores \t 626.3 deliveries/op \t 1558646 frames/s \t 406 B/op \t 0 allocs/op"
	res, ok := parseLine(line)
	if !ok {
		t.Fatalf("line did not parse: %q", line)
	}
	if res.Name != "EventFanout/watchers=10000" || !res.hasMem {
		t.Fatalf("mis-parsed: %+v", res)
	}
	want := map[string]float64{"cores": 0.9778, "deliveries/op": 626.3, "frames/s": 1558646}
	if len(res.Metrics) != len(want) {
		t.Fatalf("metrics = %v, want %v", res.Metrics, want)
	}
	for unit, v := range want {
		if res.Metrics[unit] != v {
			t.Errorf("metric %q = %v, want %v", unit, res.Metrics[unit], v)
		}
	}
	// Plain lines must not grow a metrics map (and must omit it from JSON).
	plain, _ := parseLine(sampleOutput[strings.Index(sampleOutput, "BenchmarkSimilarity"):])
	if plain.Metrics != nil {
		t.Errorf("plain line grew metrics: %v", plain.Metrics)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	divot	1.2s",
		"goos: linux",
		"Benchmark", // name alone, no fields
		"BenchmarkX-8 notanumber 12 ns/op",
		"--- BENCH: BenchmarkX-8",
	} {
		if res, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as %+v", line, res)
		}
	}
}

func TestRunEmitsJSONArray(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader(sampleOutput), &out, &errOut, nil, nil, -1); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var results []result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(results) != 4 {
		t.Fatalf("round-tripped %d results, want 4", len(results))
	}
	// The allocation columns must always be encoded, even at zero, so
	// snapshot diffs never lose them to omitempty.
	if !bytes.Contains(out.Bytes(), []byte(`"bytes_per_op": 0`)) ||
		!bytes.Contains(out.Bytes(), []byte(`"allocs_per_op": 0`)) {
		t.Errorf("zero mem columns omitted from JSON:\n%s", out.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader("PASS\nok\n"), &out, &errOut, nil, nil, -1); code != 1 {
		t.Errorf("empty input exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "no benchmark lines") {
		t.Errorf("stderr %q should explain the empty input", errOut.String())
	}
}

func TestRunRejectsMissingBenchmem(t *testing.T) {
	var out, errOut bytes.Buffer
	in := "BenchmarkNoMem-4 	     200	    123456 ns/op\n"
	if code := run(strings.NewReader(in), &out, &errOut, nil, nil, -1); code != 1 {
		t.Errorf("no-benchmem input exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "-benchmem") {
		t.Errorf("stderr %q should tell the user to pass -benchmem", errOut.String())
	}
}

func TestAllocBudgets(t *testing.T) {
	b := allocBudgets{}
	if err := b.Set("MonitorRound=2"); err != nil {
		t.Fatal(err)
	}
	if err := b.Set("Attest/warm=0"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "NoEquals", "=3", "X=-1", "X=abc"} {
		if err := b.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}

	within := "BenchmarkMonitorRound-8 	 10	 100 ns/op	 0 B/op	 2 allocs/op\n" +
		"BenchmarkAttest/warm-8 	 10	 100 ns/op	 0 B/op	 0 allocs/op\n"
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader(within), &out, &errOut, b, nil, -1); code != 0 {
		t.Errorf("within-budget exit = %d, stderr: %s", code, errOut.String())
	}

	over := "BenchmarkMonitorRound-8 	 10	 100 ns/op	 64 B/op	 3 allocs/op\n" +
		"BenchmarkAttest/warm-8 	 10	 100 ns/op	 0 B/op	 0 allocs/op\n"
	out.Reset()
	errOut.Reset()
	if code := run(strings.NewReader(over), &out, &errOut, b, nil, -1); code != 1 {
		t.Errorf("over-budget exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "budget") {
		t.Errorf("stderr %q should name the blown budget", errOut.String())
	}

	// A budget whose benchmark never ran must fail too.
	missing := "BenchmarkMonitorRound-8 	 10	 100 ns/op	 0 B/op	 0 allocs/op\n"
	out.Reset()
	errOut.Reset()
	if code := run(strings.NewReader(missing), &out, &errOut, b, nil, -1); code != 1 {
		t.Errorf("missing-benchmark exit = %d, want 1", code)
	}
}

func TestCompareReportsDeltas(t *testing.T) {
	baseline := []result{
		{Name: "MonitorRound", NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
		{Name: "Retired", NsPerOp: 5, BytesPerOp: 5, AllocsPerOp: 5},
	}
	in := "BenchmarkMonitorRound-8 	 10	 900 ns/op	 100 B/op	 10 allocs/op\n" +
		"BenchmarkFresh-8 	 10	 50 ns/op	 0 B/op	 0 allocs/op\n"
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader(in), &out, &errOut, nil, baseline, -1); code != 0 {
		t.Fatalf("report-only compare exit = %d, stderr: %s", code, errOut.String())
	}
	msg := errOut.String()
	if !strings.Contains(msg, "MonitorRound") || !strings.Contains(msg, "-10.0%") {
		t.Errorf("stderr %q should show the ns/op improvement", msg)
	}
	if !strings.Contains(msg, "Fresh: new (no baseline)") {
		t.Errorf("stderr %q should mark the new benchmark", msg)
	}
	// Baseline entries that did not run are skipped, not failed — a guard
	// benches a subset of the snapshot.
	if strings.Contains(msg, "Retired") {
		t.Errorf("stderr %q should skip retired baseline entries", msg)
	}
}

func TestCompareMaxRegress(t *testing.T) {
	baseline := []result{
		{Name: "MonitorRound", NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
	}
	within := "BenchmarkMonitorRound-8 	 10	 1040 ns/op	 100 B/op	 10 allocs/op\n"
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader(within), &out, &errOut, nil, baseline, 5); code != 0 {
		t.Fatalf("within-threshold exit = %d, stderr: %s", code, errOut.String())
	}

	over := "BenchmarkMonitorRound-8 	 10	 1200 ns/op	 100 B/op	 10 allocs/op\n"
	out.Reset()
	errOut.Reset()
	if code := run(strings.NewReader(over), &out, &errOut, nil, baseline, 5); code != 1 {
		t.Errorf("ns regression past threshold exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "regressed") {
		t.Errorf("stderr %q should name the regression", errOut.String())
	}

	// Allocation growth trips the same gate.
	allocUp := "BenchmarkMonitorRound-8 	 10	 1000 ns/op	 100 B/op	 12 allocs/op\n"
	out.Reset()
	errOut.Reset()
	if code := run(strings.NewReader(allocUp), &out, &errOut, nil, baseline, 5); code != 1 {
		t.Errorf("alloc regression exit = %d, want 1", code)
	}

	// A zero baseline that grows has no finite percentage — always a failure.
	zeroBase := []result{{Name: "MonitorRound", NsPerOp: 1000, BytesPerOp: 0, AllocsPerOp: 0}}
	grew := "BenchmarkMonitorRound-8 	 10	 1000 ns/op	 8 B/op	 1 allocs/op\n"
	out.Reset()
	errOut.Reset()
	if code := run(strings.NewReader(grew), &out, &errOut, nil, zeroBase, 50); code != 1 {
		t.Errorf("regression-from-zero exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "from zero") {
		t.Errorf("stderr %q should flag growth from a zero baseline", errOut.String())
	}
}
