package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: divot
cpu: some CPU @ 2.80GHz
BenchmarkIIPMeasurement-8                	       1	  32876311 ns/op	  806304 B/op	      24 allocs/op
BenchmarkSimilarity-8                    	  838552	      1391 ns/op	       0 B/op	       0 allocs/op
BenchmarkMonitorRoundTelemetry/nosink-8  	       1	  68229000 ns/op	 1612608 B/op	      48 allocs/op
BenchmarkMonitorRoundTelemetry/sink-8    	       1	  69120000 ns/op	 1613400 B/op	      62 allocs/op
BenchmarkNoMem-4 	     200	    123456 ns/op
PASS
ok  	divot	12.345s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5: %+v", len(results), results)
	}
	first := results[0]
	if first.Name != "IIPMeasurement" || first.Procs != 8 || first.Iterations != 1 ||
		first.NsPerOp != 32876311 || first.BytesPerOp != 806304 || first.AllocsPerOp != 24 {
		t.Errorf("first result mis-parsed: %+v", first)
	}
	if results[2].Name != "MonitorRoundTelemetry/nosink" {
		t.Errorf("sub-benchmark name = %q", results[2].Name)
	}
	last := results[4]
	if last.Name != "NoMem" || last.Procs != 4 || last.BytesPerOp != 0 {
		t.Errorf("no-benchmem result mis-parsed: %+v", last)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	divot	1.2s",
		"goos: linux",
		"Benchmark", // name alone, no fields
		"BenchmarkX-8 notanumber 12 ns/op",
		"--- BENCH: BenchmarkX-8",
	} {
		if res, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as %+v", line, res)
		}
	}
}

func TestRunEmitsJSONArray(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var results []result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(results) != 5 {
		t.Fatalf("round-tripped %d results, want 5", len(results))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader("PASS\nok\n"), &out, &errOut); code != 1 {
		t.Errorf("empty input exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "no benchmark lines") {
		t.Errorf("stderr %q should explain the empty input", errOut.String())
	}
}
