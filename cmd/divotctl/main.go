// Command divotctl is the operator's console for a divotd fleet, built
// entirely on the public SDK (divot/client) — it exercises exactly the code
// path an external integrator gets, nothing privileged.
//
//	divotctl [flags] health              fleet liveness; exit 1 unless fleet_ok
//	divotctl [flags] links               per-bus monitoring snapshots
//	divotctl [flags] alerts <bus>        one bus's retained event history
//	divotctl [flags] history <bus>       one bus's per-round score history
//	                                     (survives restarts on a stateful daemon)
//	divotctl [flags] attest [bus ...]    batch attestation (whole fleet bare);
//	                                     exit 1 unless every bus is accepted
//	divotctl [flags] watch <bus> [bus ...]   live event feed, resumes across drops
//	divotctl [flags] -all watch              the whole fleet on one connection
//
// Flags: -addr (or $DIVOTD_ADDR), -json, -timeout, -retries, and for watch
// -after / -max / -all / -kinds. Exit codes: 0 success/accepted, 1 rejected
// or fleet not ok, 2 usage, 3 transport or daemon failure.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"divot/client"
)

const defaultAddr = "http://127.0.0.1:9720"

// Exit codes. Scripts branch on these; keep them stable.
const (
	exitOK        = 0 // command succeeded; attested buses all accepted
	exitRejected  = 1 // the daemon answered, and the answer is bad news
	exitUsage     = 2 // the invocation itself was wrong
	exitTransport = 3 // could not get an answer out of the daemon
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process globals, so tests drive it directly.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("divotctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", envOr("DIVOTD_ADDR", defaultAddr), "daemon base URL (or $DIVOTD_ADDR)")
	jsonOut := fs.Bool("json", false, "emit raw JSON instead of text")
	timeout := fs.Duration("timeout", 10*time.Second, "per-attempt timeout")
	retries := fs.Int("retries", 4, "max attempts per idempotent call")
	after := fs.Uint64("after", 0, "watch: resume past this sequence number (single bus only)")
	maxEvents := fs.Int("max", 0, "watch: exit 0 after this many events (0 = forever)")
	all := fs.Bool("all", false, "watch: subscribe to every bus in the fleet")
	kinds := fs.String("kinds", "", "watch: comma-separated event kinds to deliver (empty = all)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: divotctl [flags] {health|links|alerts <bus>|history <bus>|attest [bus ...]|watch <bus> [bus ...]}")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return exitUsage
	}
	policy := client.DefaultRetryPolicy()
	policy.MaxAttempts = *retries
	c, err := client.New(*addr,
		client.WithTimeout(*timeout),
		client.WithRetryPolicy(policy),
		client.WithUserAgent("divotctl/1"))
	if err != nil {
		fmt.Fprintln(stderr, "divotctl:", err)
		return exitUsage
	}
	switch cmd, rest := rest[0], rest[1:]; cmd {
	case "health":
		return cmdHealth(ctx, c, *jsonOut, stdout, stderr)
	case "links":
		return cmdLinks(ctx, c, *jsonOut, stdout, stderr)
	case "alerts":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "usage: divotctl alerts <bus>")
			return exitUsage
		}
		return cmdAlerts(ctx, c, rest[0], *jsonOut, stdout, stderr)
	case "history":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "usage: divotctl history <bus>")
			return exitUsage
		}
		return cmdHistory(ctx, c, rest[0], *jsonOut, stdout, stderr)
	case "attest":
		return cmdAttest(ctx, c, rest, *jsonOut, stdout, stderr)
	case "watch":
		if *all != (len(rest) == 0) {
			fmt.Fprintln(stderr, "usage: divotctl watch <bus> [bus ...]  (or: divotctl -all watch)")
			return exitUsage
		}
		if *after > 0 && len(rest) != 1 {
			fmt.Fprintln(stderr, "divotctl: -after needs exactly one bus (the cursor is per-bus)")
			return exitUsage
		}
		return cmdWatch(ctx, c, rest, *after, *maxEvents, splitKinds(*kinds), *jsonOut, stdout, stderr)
	default:
		fs.Usage()
		return exitUsage
	}
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

// transportFail reports a failed call and picks the exit code: any error
// getting an answer is exitTransport — rejections are verdicts, not errors,
// and never come through here.
func transportFail(stderr io.Writer, what string, err error) int {
	fmt.Fprintf(stderr, "divotctl: %s: %v\n", what, err)
	return exitTransport
}

// emitJSON renders v as indented JSON — the machine-readable twin of every
// command's text output, and the form the golden tests pin.
func emitJSON(stdout io.Writer, v any) {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // stdout gone means the pipe closed
}

func cmdHealth(ctx context.Context, c *client.Client, jsonOut bool, stdout, stderr io.Writer) int {
	hv, err := c.Health(ctx)
	if err != nil {
		return transportFail(stderr, "health", err)
	}
	if jsonOut {
		emitJSON(stdout, hv)
	} else {
		fmt.Fprintf(stdout, "status=%s fleet_ok=%v buses=%d uptime=%.0fs\n",
			hv.Status, hv.FleetOK, hv.Buses, hv.UptimeS)
	}
	if !hv.FleetOK {
		return exitRejected
	}
	return exitOK
}

func cmdLinks(ctx context.Context, c *client.Client, jsonOut bool, stdout, stderr io.Writer) int {
	links, err := c.Links(ctx)
	if err != nil {
		return transportFail(stderr, "links", err)
	}
	if jsonOut {
		emitJSON(stdout, links)
		return exitOK
	}
	for _, l := range links {
		fmt.Fprintf(stdout, "%-12s health=%-9s rounds=%-6d alerts=%-4d cpu_gate=%v module_gate=%v\n",
			l.ID, l.Health, l.Rounds, l.Alerts, l.CPUGate, l.ModuleGate)
	}
	return exitOK
}

func cmdAlerts(ctx context.Context, c *client.Client, id string, jsonOut bool, stdout, stderr io.Writer) int {
	events, err := c.Alerts(ctx, id)
	if err != nil {
		return transportFail(stderr, "alerts "+id, err)
	}
	if jsonOut {
		emitJSON(stdout, events)
		return exitOK
	}
	for _, ev := range events {
		fmt.Fprintln(stdout, eventLine(ev))
	}
	return exitOK
}

func cmdHistory(ctx context.Context, c *client.Client, id string, jsonOut bool, stdout, stderr io.Writer) int {
	samples, err := c.History(ctx, id)
	if err != nil {
		return transportFail(stderr, "history "+id, err)
	}
	if jsonOut {
		emitJSON(stdout, samples)
		return exitOK
	}
	for _, s := range samples {
		fmt.Fprintf(stdout, "round=%-6d score=%.4f health=%-9s reaction=%-9s verdict=%s\n",
			s.Round, s.Score, s.Health, s.Reaction, s.Verdict)
	}
	return exitOK
}

func cmdAttest(ctx context.Context, c *client.Client, ids []string, jsonOut bool, stdout, stderr io.Writer) int {
	res, err := c.Attest(ctx, ids...)
	if err != nil {
		return transportFail(stderr, "attest", err)
	}
	if jsonOut {
		emitJSON(stdout, res)
	} else {
		for _, rep := range res.Results {
			verdict := "ACCEPTED"
			if !rep.Accepted {
				verdict = "REJECTED"
			}
			fmt.Fprintf(stdout, "%-12s %-8s score=%.4f health=%s", rep.ID, verdict, rep.Score, rep.Health)
			if rep.Tampered {
				fmt.Fprintf(stdout, " tamper_at=%.3f", rep.TamperPosition)
			}
			fmt.Fprintln(stdout)
		}
	}
	if !res.AllAccepted {
		return exitRejected
	}
	return exitOK
}

func cmdWatch(ctx context.Context, c *client.Client, ids []string, after uint64, maxEvents int, kinds []string, jsonOut bool, stdout, stderr io.Writer) int {
	what := "watch " + strings.Join(ids, ",")
	if len(ids) == 0 {
		what = "watch (fleet)"
	}
	opts := client.WatchOptions{Links: ids, Kinds: kinds}
	if after > 0 && len(ids) == 1 {
		opts.AfterByLink = map[string]uint64{ids[0]: after}
	}
	w, err := c.WatchMulti(ctx, opts)
	if err != nil {
		return transportFail(stderr, what, err)
	}
	defer w.Close()
	seen := 0
	for ev := range w.Events() {
		if jsonOut {
			emitJSON(stdout, ev)
		} else {
			fmt.Fprintln(stdout, eventLine(ev))
		}
		seen++
		if maxEvents > 0 && seen >= maxEvents {
			return exitOK
		}
	}
	// The feed ended on its own: a cancelled context (ctrl-C) is a normal
	// exit, anything else means the daemon became unreachable.
	if err := w.Err(); err != nil && !errors.Is(err, context.Canceled) {
		return transportFail(stderr, what, err)
	}
	return exitOK
}

// splitKinds parses the -kinds flag ("alert,gate" → ["alert","gate"]).
func splitKinds(raw string) []string {
	if raw == "" {
		return nil
	}
	var out []string
	for _, k := range strings.Split(raw, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}

// eventLine renders one event for humans; the JSON twin is the Event DTO.
func eventLine(ev client.Event) string {
	out := fmt.Sprintf("[%d] %-7s %s", ev.Seq, ev.Kind, ev.Link)
	if ev.Side != "" {
		out += " side=" + ev.Side
	}
	if ev.Round > 0 {
		out += fmt.Sprintf(" round=%d", ev.Round)
	}
	if ev.From != "" || ev.To != "" {
		out += fmt.Sprintf(" %s->%s", ev.From, ev.To)
	}
	if ev.Detail != "" {
		out += " " + ev.Detail
	}
	return out
}
