package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"divot/internal/attest"
	"divot/internal/wire"
)

// stubDaemon serves a fixed fleet: clean0 accepted, victim interposed and
// rejected. Fixed numbers keep the --json output byte-stable for the golden
// comparison.
func stubDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	attestResp := attest.AttestResponse{
		Results: []attest.AuthReport{
			{ID: "clean0", Accepted: true, Score: 0.9987, Health: "ok"},
			{ID: "victim", Accepted: false, Score: 0.41, Tampered: true, TamperPosition: 0.35, Health: "failed"},
		},
		AllAccepted: false,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/attest", func(w http.ResponseWriter, r *http.Request) {
		attest.WriteData(w, http.StatusOK, attestResp)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		attest.WriteData(w, http.StatusOK, attest.HealthView{Status: "ok", Buses: 2, FleetOK: false, UptimeS: 12})
	})
	mux.HandleFunc("GET /v1/links", func(w http.ResponseWriter, r *http.Request) {
		attest.WriteData(w, http.StatusOK, attest.LinksResponse{Links: []attest.LinkSummary{
			{ID: "clean0", Rounds: 40, Health: "ok", Reaction: "alert_and_block", CPUGate: true, ModuleGate: true, CPUScore: 0.9987},
			{ID: "victim", Rounds: 40, Health: "failed", Reaction: "alert_and_block", Alerts: 12, CPUScore: 0.41},
		}})
	})
	mux.HandleFunc("GET /v1/links/{id}/history", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != "victim" {
			attest.WriteError(w, attest.CodeUnknownLink, "unknown bus")
			return
		}
		attest.WriteData(w, http.StatusOK, attest.HistoryResponse{Link: "victim", Samples: []attest.HistorySample{
			{Round: 2, Score: 0.9981, Health: "ok", Reaction: "normal", Verdict: "ok"},
			{Round: 3, Score: 0.41, Health: "failed", Reaction: "alert_and_block", Verdict: "auth-failure"},
		}})
	})
	// The binary multiplexed stream, serving the same events as the SSE
	// route below — divotctl negotiates this one first.
	mux.HandleFunc("GET /v1/stream", func(w http.ResponseWriter, r *http.Request) {
		sub, err := wire.ParseSubscribeRequest(r)
		if err != nil {
			attest.WriteError(w, attest.CodeBadRequest, "%v", err)
			return
		}
		events := map[string][]attest.Event{
			"clean0": {{Seq: 1, Kind: "health", Link: "clean0", Side: "cpu", Round: 40}},
			"victim": {
				{Seq: 5, Kind: "alert", Link: "victim", Side: "cpu", Round: 3, Score: 0.41},
				{Seq: 6, Kind: "gate", Link: "victim", Side: "cpu", Round: 3, From: "open", To: "closed"},
			},
		}
		links := sub.Links
		if len(links) == 0 {
			links = []string{"clean0", "victim"}
		}
		for _, id := range links {
			if _, ok := events[id]; !ok {
				attest.WriteError(w, attest.CodeUnknownLink, "unknown bus %q", id)
				return
			}
		}
		w.Header().Set("Content-Type", wire.ContentType)
		w.WriteHeader(http.StatusOK)
		hello, _ := json.Marshal(wire.Hello{Links: links})
		buf := wire.AppendFrame(nil, wire.FrameHello, hello)
		kindOK := func(kind string) bool {
			if len(sub.Kinds) == 0 {
				return true
			}
			for _, k := range sub.Kinds {
				if k == kind {
					return true
				}
			}
			return false
		}
		for _, id := range links {
			for _, ev := range events[id] {
				if ev.Seq > sub.After[id] && kindOK(ev.Kind) {
					buf = wire.AppendEventFrame(buf, ev)
				}
			}
		}
		w.Write(buf) //nolint:errcheck // test server
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	})
	mux.HandleFunc("GET /v1/links/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != "victim" {
			attest.WriteError(w, attest.CodeUnknownLink, "unknown bus")
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(": hb\n\n" + //nolint:errcheck
			"id: 5\nevent: alert\ndata: {\"seq\":5,\"kind\":\"alert\",\"link\":\"victim\",\"side\":\"cpu\",\"round\":3,\"score\":0.41}\n\n" +
			"id: 6\nevent: gate\ndata: {\"seq\":6,\"kind\":\"gate\",\"link\":\"victim\",\"side\":\"cpu\",\"round\":3,\"from\":\"open\",\"to\":\"closed\"}\n\n"))
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func runCtl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestAttestJSONGolden pins the machine-readable attest output byte-for-byte
// — the contract scripts parse — and the rejected-fleet exit code.
func TestAttestJSONGolden(t *testing.T) {
	srv := stubDaemon(t)
	code, out, errOut := runCtl(t, "-addr", srv.URL, "-json", "attest")
	if code != exitRejected {
		t.Errorf("exit = %d, want %d (victim rejected); stderr: %s", code, exitRejected, errOut)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "attest_json.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Errorf("--json attest output drifted from golden.\ngot:\n%s\nwant:\n%s", out, golden)
	}
}

func TestAttestTextVerdicts(t *testing.T) {
	srv := stubDaemon(t)
	code, out, _ := runCtl(t, "-addr", srv.URL, "attest", "clean0", "victim")
	if code != exitRejected {
		t.Errorf("exit = %d, want %d", code, exitRejected)
	}
	if !strings.Contains(out, "clean0") || !strings.Contains(out, "ACCEPTED") {
		t.Errorf("text output missing accepted verdict:\n%s", out)
	}
	if !strings.Contains(out, "victim") || !strings.Contains(out, "REJECTED") ||
		!strings.Contains(out, "tamper_at=0.350") {
		t.Errorf("text output missing rejected verdict with tamper position:\n%s", out)
	}
}

func TestHealthExitCodes(t *testing.T) {
	srv := stubDaemon(t)
	code, out, _ := runCtl(t, "-addr", srv.URL, "health")
	if code != exitRejected {
		t.Errorf("fleet_ok=false health exit = %d, want %d", code, exitRejected)
	}
	if !strings.Contains(out, "fleet_ok=false") {
		t.Errorf("health output: %s", out)
	}
}

func TestLinksText(t *testing.T) {
	srv := stubDaemon(t)
	code, out, _ := runCtl(t, "-addr", srv.URL, "links")
	if code != exitOK {
		t.Errorf("links exit = %d", code)
	}
	if !strings.Contains(out, "victim") || !strings.Contains(out, "health=failed") {
		t.Errorf("links output: %s", out)
	}
}

// TestHistoryText renders a bus's persisted score history, one round per
// line, and refuses unknown buses with the transport exit code.
func TestHistoryText(t *testing.T) {
	srv := stubDaemon(t)
	code, out, errOut := runCtl(t, "-addr", srv.URL, "history", "victim")
	if code != exitOK {
		t.Fatalf("history exit = %d, stderr: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("history printed %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "round=2") || !strings.Contains(lines[0], "verdict=ok") {
		t.Errorf("history line 0: %s", lines[0])
	}
	if !strings.Contains(lines[1], "score=0.4100") || !strings.Contains(lines[1], "verdict=auth-failure") {
		t.Errorf("history line 1: %s", lines[1])
	}
	if code, _, _ := runCtl(t, "-addr", srv.URL, "history", "ghost"); code != exitTransport {
		t.Errorf("unknown bus history exit = %d, want %d", code, exitTransport)
	}
	if code, _, _ := runCtl(t, "-addr", srv.URL, "history"); code != exitUsage {
		t.Errorf("bare history exit = %d, want %d", code, exitUsage)
	}
}

// TestWatchMaxEvents streams two events from the stub and stops at -max 2
// with exit 0 — the smoke script's interposer capture path.
func TestWatchMaxEvents(t *testing.T) {
	srv := stubDaemon(t)
	code, out, errOut := runCtl(t, "-addr", srv.URL, "-max", "2", "watch", "victim")
	if code != exitOK {
		t.Fatalf("watch exit = %d, stderr: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("watch printed %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "[5] alert") || !strings.Contains(lines[1], "open->closed") {
		t.Errorf("watch lines:\n%s", out)
	}
}

// TestWatchMultiLinks subscribes several buses over one connection: the
// victim's two events and clean0's health event all arrive, each attributed
// to its bus.
func TestWatchMultiLinks(t *testing.T) {
	srv := stubDaemon(t)
	code, out, errOut := runCtl(t, "-addr", srv.URL, "-max", "3", "watch", "victim", "clean0")
	if code != exitOK {
		t.Fatalf("multi watch exit = %d, stderr: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("multi watch printed %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "victim") || !strings.Contains(out, "clean0") {
		t.Errorf("multi watch output missing a bus:\n%s", out)
	}
}

// TestWatchAllFlag streams the whole fleet without naming it.
func TestWatchAllFlag(t *testing.T) {
	srv := stubDaemon(t)
	code, out, errOut := runCtl(t, "-addr", srv.URL, "-all", "-max", "3", "watch")
	if code != exitOK {
		t.Fatalf("-all watch exit = %d, stderr: %s", code, errOut)
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 3 {
		t.Fatalf("-all watch printed %d lines, want 3:\n%s", len(lines), out)
	}
}

// TestWatchKindsFilter narrows the feed server-side.
func TestWatchKindsFilter(t *testing.T) {
	srv := stubDaemon(t)
	code, out, errOut := runCtl(t, "-addr", srv.URL, "-kinds", "gate", "-max", "1", "watch", "victim")
	if code != exitOK {
		t.Fatalf("kinds watch exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "[6] gate") || strings.Contains(out, "alert") {
		t.Errorf("kinds filter output:\n%s", out)
	}
}

// TestWatchJSONGolden pins the machine-readable watch output byte-for-byte —
// scripts parse this.
func TestWatchJSONGolden(t *testing.T) {
	srv := stubDaemon(t)
	code, out, errOut := runCtl(t, "-addr", srv.URL, "-json", "-max", "2", "watch", "victim")
	if code != exitOK {
		t.Fatalf("json watch exit = %d, stderr: %s", code, errOut)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "watch_json.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Errorf("--json watch output drifted from golden.\ngot:\n%s\nwant:\n%s", out, golden)
	}
}

func TestUsageErrors(t *testing.T) {
	srv := stubDaemon(t)
	for _, args := range [][]string{
		{},
		{"-addr", srv.URL, "frobnicate"},
		{"-addr", srv.URL, "alerts"},
		{"-addr", srv.URL, "watch"},
		{"-addr", srv.URL, "-all", "watch", "victim"},
		{"-addr", srv.URL, "-after", "2", "watch", "victim", "clean0"},
		{"-addr", "ftp://nope", "health"},
	} {
		if code, _, _ := runCtl(t, args...); code != exitUsage {
			t.Errorf("args %v exit = %d, want %d", args, code, exitUsage)
		}
	}
}

// TestTransportErrorExitCode: an unreachable daemon is exit 3, distinct from
// a rejection.
func TestTransportErrorExitCode(t *testing.T) {
	code, _, errOut := runCtl(t, "-addr", "http://127.0.0.1:1", "-retries", "1", "-timeout", "1s", "health")
	if code != exitTransport {
		t.Errorf("unreachable daemon exit = %d, want %d; stderr: %s", code, exitTransport, errOut)
	}
	if errOut == "" {
		t.Error("transport failure printed nothing to stderr")
	}
}

func TestUnknownBusIsTransportFailure(t *testing.T) {
	srv := stubDaemon(t)
	code, _, errOut := runCtl(t, "-addr", srv.URL, "watch", "ghost")
	if code != exitTransport {
		t.Errorf("unknown bus exit = %d, want %d", code, exitTransport)
	}
	if !strings.Contains(errOut, attest.CodeUnknownLink) {
		t.Errorf("stderr does not surface the error code: %s", errOut)
	}
}
