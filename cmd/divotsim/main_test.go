package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins divotsim's -json output for representative scenarios.
// The summary is a pure function of (scenario, seed, reqs), so any diff means
// the simulation's observable behavior changed — regenerate deliberately with
// `go test ./cmd/divotsim -run JSONGolden -update`.
func TestJSONGolden(t *testing.T) {
	for _, scenario := range []string{"clean", "coldboot", "interposer"} {
		t.Run(scenario, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			args := []string{"-json", "-scenario", scenario, "-seed", "1", "-reqs", "16"}
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			golden := filepath.Join("testdata", scenario+".golden.json")
			if *update {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output differs from %s:\ngot:\n%s\nwant:\n%s", golden, stdout.Bytes(), want)
			}
		})
	}
}

// TestJSONShape checks the summary parses and carries the scenario verdicts
// without comparing against a golden file.
func TestJSONShape(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-scenario", "coldboot", "-reqs", "8"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var res simResult
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if res.Scenario != "coldboot" || len(res.Phases) != 2 {
		t.Fatalf("unexpected summary: %+v", res)
	}
	if res.ModuleGateOpen {
		t.Error("cold boot should close the module gate")
	}
	if len(res.Alerts) == 0 {
		t.Error("cold boot should raise alerts")
	}
	if res.Phases[1].Blocked == 0 && res.Phases[1].Stalled == 0 {
		t.Errorf("post-attack traffic should be blocked or stalled: %+v", res.Phases[1])
	}
}

func TestHumanOutputAndErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", "clean", "-reqs", "8"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "DIVOT protected memory system") {
		t.Error("narration missing banner")
	}
	if strings.Contains(stdout.String(), `"scenario"`) {
		t.Error("narration mode should not emit JSON")
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-scenario", "nonsense"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown scenario exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown scenario") {
		t.Errorf("stderr %q should name the bad scenario", stderr.String())
	}
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}
