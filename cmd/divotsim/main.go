// Command divotsim runs attack scenarios against the Fig. 6 protected
// memory system on a discrete-event timeline and narrates what DIVOT sees
// and does.
//
// Usage:
//
//	divotsim [-scenario coldboot|moduleswap|wiretap|magprobe|interposer|clean] [-seed N] [-reqs N] [-json]
//
// With -json the narration is replaced by one machine-readable summary on
// stdout. The summary is deterministic for a given scenario/seed/reqs — it
// carries no wall-clock state — so it can be diffed and golden-tested.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"divot"
	"divot/internal/sim"
)

// phaseResult is one traffic phase's outcome.
type phaseResult struct {
	Label        string `json:"label"`
	OK           int    `json:"ok"`
	Blocked      int    `json:"blocked"`
	Stalled      int    `json:"stalled"`
	AvgLatencyPS int64  `json:"avg_latency_ps"`
}

// reactionEntry is one reactor log line.
type reactionEntry struct {
	Round  int    `json:"round"`
	Action string `json:"action"`
	Cause  string `json:"cause"`
}

// simResult is the -json summary.
type simResult struct {
	Scenario       string          `json:"scenario"`
	Seed           uint64          `json:"seed"`
	Bins           int             `json:"bins"`
	MeasurementUS  float64         `json:"measurement_us"`
	Phases         []phaseResult   `json:"phases"`
	Alerts         []string        `json:"alerts"`
	CPUGateOpen    bool            `json:"cpu_gate_open"`
	ModuleGateOpen bool            `json:"module_gate_open"`
	SimulatedPS    int64           `json:"simulated_ps"`
	ReactorState   string          `json:"reactor_state"`
	Reactions      []reactionEntry `json:"reactions"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process plumbing, so tests can golden-compare the
// output and assert on exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("divotsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "coldboot",
		"attack scenario: coldboot, moduleswap, wiretap, magprobe, interposer, or clean")
	seed := fs.Uint64("seed", 1, "root random seed")
	reqs := fs.Int("reqs", 64, "memory requests per traffic phase")
	jsonOut := fs.Bool("json", false, "emit one machine-readable JSON summary instead of narration")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "divotsim:", err)
		return 1
	}
	// Narration goes to stdout unless -json claimed it for the summary.
	narrate := stdout
	if *jsonOut {
		narrate = io.Discard
	}

	sys := divot.NewSystem(*seed, divot.DefaultConfig())
	m, err := sys.NewMemorySystem("dimm0", divot.DefaultMemoryConfig())
	if err != nil {
		return fail(err)
	}
	res := simResult{
		Scenario:      *scenario,
		Seed:          *seed,
		Bins:          sys.Config().Engine.ITDR.Bins(),
		MeasurementUS: m.Bus.MeasurementDuration() * 1e6,
	}
	fmt.Fprintln(narrate, "== DIVOT protected memory system ==")
	fmt.Fprintf(narrate, "bus: 25 cm lane, iTDR window %d bins, measurement %.1f µs\n",
		res.Bins, res.MeasurementUS)

	fmt.Fprintln(narrate, "\n[calibration] pairing CPU and module over the bus fingerprint...")
	if err := m.Calibrate(); err != nil {
		return fail(err)
	}
	fmt.Fprintf(narrate, "gates open: cpu=%v module=%v\n",
		m.Bus.CPU.Gate.Authorized(), m.Bus.Module.Gate.Authorized())

	runTraffic := func(label string) {
		m.ClearResponses()
		stream := sys.Stream("traffic-" + label)
		for i := 0; i < *reqs; i++ {
			m.Read(divot.MemAddress{Bank: stream.Intn(8), Row: stream.Intn(64), Col: stream.Intn(128)})
		}
		err := m.Drain(*reqs, 200*sim.Millisecond)
		ok, blocked := 0, 0
		for _, r := range m.Responses() {
			if r.Status == divot.StatusOK {
				ok++
			} else {
				blocked++
			}
		}
		p := phaseResult{Label: label, OK: ok, Blocked: blocked,
			AvgLatencyPS: int64(m.Controller.Stats.AvgLatency())}
		stalled := ""
		if err != nil {
			p.Stalled = *reqs - ok - blocked
			stalled = fmt.Sprintf(", %d stalled", p.Stalled)
		}
		res.Phases = append(res.Phases, p)
		fmt.Fprintf(narrate, "[%s] %d OK, %d blocked%s; avg latency %v\n",
			label, ok, blocked, stalled, m.Controller.Stats.AvgLatency())
	}

	runTraffic("baseline traffic")

	alertsBefore := len(m.Bus.Alerts)
	switch *scenario {
	case "clean":
		fmt.Fprintln(narrate, "\n[scenario] no attack; monitoring continues")
	case "coldboot":
		fmt.Fprintln(narrate, "\n[scenario] cold boot: module pulled and powered in the attacker's machine")
		cb := divot.NewColdBootSwap(sys.Config().Line, sys.Stream("attacker"))
		m.Bus.Module.SetObservedLine(cb.BusSeenByModule())
	case "moduleswap":
		fmt.Fprintln(narrate, "\n[scenario] module swap: impostor DIMM (same model) installed on the genuine bus")
		swap := divot.NewModuleSwap(sys.Config().Line, sys.Stream("attacker"))
		swap.Apply(m.Bus.Line)
	case "wiretap":
		fmt.Fprintln(narrate, "\n[scenario] wire tap soldered at 100 mm")
		divot.NewWireTap(0.10).Apply(m.Bus.Line)
	case "magprobe":
		fmt.Fprintln(narrate, "\n[scenario] magnetic near-field probe held at 150 mm")
		divot.NewMagneticProbe(0.15).Apply(m.Bus.Line)
	case "interposer":
		fmt.Fprintln(narrate, "\n[scenario] impedance-matched interposer inserted at 125 mm (forwards all data)")
		divot.NewInterposer(0.125).Apply(m.Bus.Line)
	default:
		return fail(fmt.Errorf("unknown scenario %q", *scenario))
	}

	// Let monitoring observe the new state.
	m.RunFor(sim.FromSeconds(4 * m.Bus.MeasurementDuration()))
	res.Alerts = make([]string, 0, len(m.Bus.Alerts)-alertsBefore)
	for _, a := range m.Bus.Alerts[alertsBefore:] {
		res.Alerts = append(res.Alerts, a.String())
		fmt.Fprintf(narrate, "ALERT %s\n", a)
	}
	if len(m.Bus.Alerts) == alertsBefore {
		fmt.Fprintln(narrate, "no alerts raised")
	}
	fmt.Fprintf(narrate, "gates: cpu=%v module=%v\n",
		m.Bus.CPU.Gate.Authorized(), m.Bus.Module.Gate.Authorized())

	runTraffic("post-attack traffic")
	m.StopMonitor()

	res.CPUGateOpen = m.Bus.CPU.Gate.Authorized()
	res.ModuleGateOpen = m.Bus.Module.Gate.Authorized()
	res.SimulatedPS = int64(m.Sched.Now())
	res.ReactorState = m.Reactor.State().String()
	fmt.Fprintf(narrate, "\nsimulated time: %v; monitor rounds ≈ %d; total alerts: %d\n",
		m.Sched.Now(),
		int(m.Sched.Now().Seconds()/m.Bus.MeasurementDuration()),
		len(m.Bus.Alerts))
	fmt.Fprintf(narrate, "reaction engine: state=%v\n", m.Reactor.State())
	res.Reactions = make([]reactionEntry, 0, len(m.Reactor.Log))
	for _, e := range m.Reactor.Log {
		res.Reactions = append(res.Reactions, reactionEntry{
			Round: e.Round, Action: e.Action.String(), Cause: e.Cause,
		})
		fmt.Fprintf(narrate, "  round %d: %v (%s)\n", e.Round, e.Action, e.Cause)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return fail(err)
		}
	}
	return 0
}
