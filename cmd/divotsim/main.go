// Command divotsim runs attack scenarios against the Fig. 6 protected
// memory system on a discrete-event timeline and narrates what DIVOT sees
// and does.
//
// Usage:
//
//	divotsim [-scenario coldboot|moduleswap|wiretap|magprobe|clean] [-seed N] [-reqs N]
package main

import (
	"flag"
	"fmt"
	"os"

	"divot"
	"divot/internal/sim"
)

func main() {
	scenario := flag.String("scenario", "coldboot",
		"attack scenario: coldboot, moduleswap, wiretap, magprobe, interposer, or clean")
	seed := flag.Uint64("seed", 1, "root random seed")
	reqs := flag.Int("reqs", 64, "memory requests per traffic phase")
	flag.Parse()

	sys := divot.NewSystem(*seed, divot.DefaultConfig())
	m, err := sys.NewMemorySystem("dimm0", divot.DefaultMemoryConfig())
	if err != nil {
		fail(err)
	}
	fmt.Println("== DIVOT protected memory system ==")
	fmt.Printf("bus: 25 cm lane, iTDR window %d bins, measurement %.1f µs\n",
		sys.Config().Engine.ITDR.Bins(), m.Bus.MeasurementDuration()*1e6)

	fmt.Println("\n[calibration] pairing CPU and module over the bus fingerprint...")
	if err := m.Calibrate(); err != nil {
		fail(err)
	}
	fmt.Printf("gates open: cpu=%v module=%v\n",
		m.Bus.CPU.Gate.Authorized(), m.Bus.Module.Gate.Authorized())

	runTraffic := func(label string) {
		m.ClearResponses()
		stream := sys.Stream("traffic-" + label)
		for i := 0; i < *reqs; i++ {
			m.Read(divot.MemAddress{Bank: stream.Intn(8), Row: stream.Intn(64), Col: stream.Intn(128)})
		}
		err := m.Drain(*reqs, 200*sim.Millisecond)
		ok, blocked := 0, 0
		for _, r := range m.Responses() {
			if r.Status == divot.StatusOK {
				ok++
			} else {
				blocked++
			}
		}
		stalled := ""
		if err != nil {
			stalled = fmt.Sprintf(", %d stalled", *reqs-ok-blocked)
		}
		fmt.Printf("[%s] %d OK, %d blocked%s; avg latency %v\n",
			label, ok, blocked, stalled, m.Controller.Stats.AvgLatency())
	}

	runTraffic("baseline traffic")

	alertsBefore := len(m.Bus.Alerts)
	switch *scenario {
	case "clean":
		fmt.Println("\n[scenario] no attack; monitoring continues")
	case "coldboot":
		fmt.Println("\n[scenario] cold boot: module pulled and powered in the attacker's machine")
		cb := divot.NewColdBootSwap(sys.Config().Line, sys.Stream("attacker"))
		m.Bus.Module.SetObservedLine(cb.BusSeenByModule())
	case "moduleswap":
		fmt.Println("\n[scenario] module swap: impostor DIMM (same model) installed on the genuine bus")
		swap := divot.NewModuleSwap(sys.Config().Line, sys.Stream("attacker"))
		swap.Apply(m.Bus.Line)
	case "wiretap":
		fmt.Println("\n[scenario] wire tap soldered at 100 mm")
		divot.NewWireTap(0.10).Apply(m.Bus.Line)
	case "magprobe":
		fmt.Println("\n[scenario] magnetic near-field probe held at 150 mm")
		divot.NewMagneticProbe(0.15).Apply(m.Bus.Line)
	case "interposer":
		fmt.Println("\n[scenario] impedance-matched interposer inserted at 125 mm (forwards all data)")
		divot.NewInterposer(0.125).Apply(m.Bus.Line)
	default:
		fail(fmt.Errorf("unknown scenario %q", *scenario))
	}

	// Let monitoring observe the new state.
	m.RunFor(sim.FromSeconds(4 * m.Bus.MeasurementDuration()))
	for _, a := range m.Bus.Alerts[alertsBefore:] {
		fmt.Printf("ALERT %s\n", a)
	}
	if len(m.Bus.Alerts) == alertsBefore {
		fmt.Println("no alerts raised")
	}
	fmt.Printf("gates: cpu=%v module=%v\n",
		m.Bus.CPU.Gate.Authorized(), m.Bus.Module.Gate.Authorized())

	runTraffic("post-attack traffic")
	m.StopMonitor()

	fmt.Printf("\nsimulated time: %v; monitor rounds ≈ %d; total alerts: %d\n",
		m.Sched.Now(),
		int(m.Sched.Now().Seconds()/m.Bus.MeasurementDuration()),
		len(m.Bus.Alerts))
	fmt.Printf("reaction engine: state=%v\n", m.Reactor.State())
	for _, e := range m.Reactor.Log {
		fmt.Printf("  round %d: %v (%s)\n", e.Round, e.Action, e.Cause)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "divotsim:", err)
	os.Exit(1)
}
