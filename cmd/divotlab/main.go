// Command divotlab drives the detection-quality experiment harness
// (internal/experiment): declarative scenario grids over attack type,
// contrast, temperature, comparator noise, dead-bin fraction, and fleet
// size, aggregated into TPR/FPR per cell, ROC curves per attack and
// detection channel, detection-latency percentiles, and an auto-tuned
// operating point. Reports are deterministic: the same grid and seed
// produce byte-identical JSON at any -parallelism.
//
// Usage:
//
//	divotlab run   -config grid.json [-out report.json] [-markdown EXPERIMENTS.md] [-parallelism N]
//	divotlab report -in report.json
//	divotlab tune  -in report.json
//	divotlab guard -config grid.json -baseline QUALITY_BASELINE.json [-tpr-tol F] [-fpr-tol F] [-auc-tol F]
//
// `run` executes the grid and writes the report JSON (stdout by default);
// -markdown additionally splices the rendered tables into the named file
// between the `<!-- divotlab:begin/end -->` markers. `report` re-renders an
// existing report's tables. `tune` prints the auto-tuned operating point as
// a divotd spec fragment. `guard` re-runs a fixed-seed grid and exits 1 if
// any cell's TPR/FPR or any curve's AUC regressed against the checked-in
// baseline — `make quality-guard` runs it in CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"divot/internal/exper"
	"divot/internal/experiment"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommands; testable via the return code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "report":
		return cmdReport(args[1:], stdout, stderr)
	case "tune":
		return cmdTune(args[1:], stdout, stderr)
	case "guard":
		return cmdGuard(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "divotlab: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `divotlab — detection-quality experiment harness

  divotlab run    -config grid.json [-out report.json] [-markdown FILE] [-parallelism N]
  divotlab report -in report.json
  divotlab tune   -in report.json
  divotlab guard  -config grid.json -baseline baseline.json [-tpr-tol F] [-fpr-tol F] [-auc-tol F]
`)
}

// newFlags builds a subcommand flag set that reports into stderr.
func newFlags(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("divotlab "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := newFlags("run", stderr)
	config := fs.String("config", "", "grid config JSON (required)")
	out := fs.String("out", "", "report output path (default stdout)")
	markdown := fs.String("markdown", "", "markdown file to splice the rendered tables into")
	par := fs.Int("parallelism", 0, "trial workers (0 = GOMAXPROCS; results identical at any value)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rep, code := runGrid(*config, *par, stderr)
	if code != 0 {
		return code
	}
	raw, err := experiment.EncodeReport(rep)
	if err != nil {
		fmt.Fprintln(stderr, "divotlab:", err)
		return 1
	}
	if *out == "" {
		if _, err := stdout.Write(raw); err != nil {
			fmt.Fprintln(stderr, "divotlab:", err)
			return 1
		}
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(stderr, "divotlab:", err)
		return 1
	}
	if *markdown != "" {
		doc, err := rep.SpliceMarkdown(*markdown)
		if err != nil {
			fmt.Fprintln(stderr, "divotlab:", err)
			return 1
		}
		if err := os.WriteFile(*markdown, []byte(doc), 0o644); err != nil {
			fmt.Fprintln(stderr, "divotlab:", err)
			return 1
		}
	}
	return 0
}

// runGrid loads the config and executes it with the requested parallelism.
func runGrid(configPath string, parallelism int, stderr io.Writer) (*experiment.Report, int) {
	if configPath == "" {
		fmt.Fprintln(stderr, "divotlab: -config is required")
		return nil, 2
	}
	cfg, err := experiment.LoadConfig(configPath)
	if err != nil {
		fmt.Fprintln(stderr, "divotlab:", err)
		return nil, 1
	}
	// exper.Parallelism is the repo-wide worker knob; the harness inherits
	// it so divotlab and the exper sweeps scale the same way.
	prev := exper.Parallelism
	exper.Parallelism = parallelism
	defer func() { exper.Parallelism = prev }()
	rep, err := experiment.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "divotlab:", err)
		return nil, 1
	}
	return rep, 0
}

func cmdReport(args []string, stdout, stderr io.Writer) int {
	fs := newFlags("report", stderr)
	in := fs.String("in", "", "report JSON to render (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "divotlab: -in is required")
		return 2
	}
	rep, err := experiment.LoadReport(*in)
	if err != nil {
		fmt.Fprintln(stderr, "divotlab:", err)
		return 1
	}
	fmt.Fprint(stdout, rep.Markdown())
	return 0
}

func cmdTune(args []string, stdout, stderr io.Writer) int {
	fs := newFlags("tune", stderr)
	in := fs.String("in", "", "report JSON to read the operating point from (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "divotlab: -in is required")
		return 2
	}
	rep, err := experiment.LoadReport(*in)
	if err != nil {
		fmt.Fprintln(stderr, "divotlab:", err)
		return 1
	}
	t := rep.Tuning
	fmt.Fprintf(stdout, "auth threshold %.2f holds pooled FPR at %.4f (target %g)\n",
		t.AuthThreshold, t.AchievedFPR, t.TargetFPR)
	for _, atk := range rep.Config.Attacks {
		fmt.Fprintf(stdout, "  %-14s TPR %.3f\n", atk, t.TPRByAttack[atk])
	}
	fmt.Fprintf(stdout, "divotd spec fragment: {\"auth_threshold\": %.2f}\n", t.AuthThreshold)
	return 0
}

func cmdGuard(args []string, stdout, stderr io.Writer) int {
	fs := newFlags("guard", stderr)
	config := fs.String("config", "", "fixed-seed grid config JSON (required)")
	baseline := fs.String("baseline", "", "checked-in baseline report JSON (required)")
	par := fs.Int("parallelism", 0, "trial workers (0 = GOMAXPROCS)")
	tprTol := fs.Float64("tpr-tol", 0, "allowed per-cell TPR drop")
	fprTol := fs.Float64("fpr-tol", 0, "allowed per-cell FPR rise")
	aucTol := fs.Float64("auc-tol", 0, "allowed per-curve AUC loss")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" {
		fmt.Fprintln(stderr, "divotlab: -baseline is required")
		return 2
	}
	base, err := experiment.LoadReport(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "divotlab:", err)
		return 1
	}
	cur, code := runGrid(*config, *par, stderr)
	if code != 0 {
		return code
	}
	violations := experiment.CompareReports(base, cur, experiment.Tolerances{
		TPR: *tprTol, FPR: *fprTol, AUC: *aucTol,
	})
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(stderr, "divotlab: quality regression:", v)
		}
		return 1
	}
	fmt.Fprintf(stdout, "quality guard passed: %d cells, %d ROC curves within tolerance of %s\n",
		len(base.Cells), len(base.ROC), *baseline)
	return 0
}
