package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyGrid is a seconds-scale fixed-seed grid for the CLI round trip.
const tinyGrid = `{
  "name": "cli-test", "seed": 23,
  "attacks": ["wiretap"],
  "seeds": 1, "pre_rounds": 3, "post_rounds": 5
}`

// nerfedGrid is tinyGrid with the detector deliberately desensitized.
const nerfedGrid = `{
  "name": "cli-test", "seed": 23,
  "attacks": ["wiretap"],
  "seeds": 1, "pre_rounds": 3, "post_rounds": 5,
  "detector": {"auth_threshold": 0.05, "tamper_threshold_scale": 25}
}`

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunReportTuneGuardRoundTrip drives the full CLI surface: run a grid to
// a report file (splicing markdown on the way), re-render and tune from the
// artifact, then guard the same grid against it (green) and the nerfed grid
// (red, exit 1).
func TestRunReportTuneGuardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	grid := write(t, "grid.json", tinyGrid)
	report := filepath.Join(dir, "report.json")
	md := filepath.Join(dir, "EXPERIMENTS.md")
	if err := os.WriteFile(md, []byte("# Experiments\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"run", "-config", grid, "-out", report, "-markdown", md, "-parallelism", "4"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"version": 1`) {
		t.Error("report carries no schema version")
	}
	doc, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), "divotlab:begin") || !strings.Contains(string(doc), "| wiretap |") {
		t.Errorf("markdown splice missing generated table:\n%s", doc)
	}

	stdout.Reset()
	if code := run([]string{"report", "-in", report}, &stdout, &stderr); code != 0 {
		t.Fatalf("report exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "| attack | channel | AUC |") {
		t.Errorf("report render missing ROC table:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"tune", "-in", report}, &stdout, &stderr); code != 0 {
		t.Fatalf("tune exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `{"auth_threshold": `) {
		t.Errorf("tune printed no spec fragment:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"guard", "-config", grid, "-baseline", report, "-parallelism", "4"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("self-guard exit %d, stderr: %s", code, stderr.String())
	}

	nerfed := write(t, "nerfed.json", nerfedGrid)
	stderr.Reset()
	if code := run([]string{"guard", "-config", nerfed, "-baseline", report, "-parallelism", "4"},
		&stdout, &stderr); code != 1 {
		t.Fatalf("nerfed guard exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "quality regression") {
		t.Errorf("nerfed guard stderr names no regression:\n%s", stderr.String())
	}
}

func TestCLIRejectsBadInvocations(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
	if code := run([]string{"frobnicate"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown subcommand exit = %d, want 2", code)
	}
	if code := run([]string{"run"}, &stdout, &stderr); code != 2 {
		t.Errorf("run without -config exit = %d, want 2", code)
	}
	if code := run([]string{"guard", "-config", "x.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("guard without -baseline exit = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"run", "-config", "/does/not/exist.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing config exit = %d, want 1", code)
	}
	if code := run([]string{"report", "-in", "/does/not/exist.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing report exit = %d, want 1", code)
	}
	if code := run([]string{"help"}, &stdout, &stderr); code != 0 {
		t.Errorf("help exit = %d, want 0", code)
	}
}
