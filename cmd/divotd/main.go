// Command divotd is the fleet-attestation daemon: it owns a divot.System of
// protected buses, monitors each on its own jittered interval, escalates
// alerts through per-bus reactors, and serves health, metrics (Prometheus
// text format), per-bus alert history, and on-demand authentication over
// HTTP. The daemon itself lives in divot/internal/daemon so the divotherd
// federation aggregator can spin up in-process packs of it in tests and
// benchmarks; this wrapper only adds the process plumbing.
package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"divot/internal/daemon"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(daemon.Main(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
