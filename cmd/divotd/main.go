package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process plumbing, so tests can drive flag parsing
// and spec loading and assert on the exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("divotd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "fleet spec JSON file (required)")
	listen := fs.String("listen", "", "override the spec's listen address")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	spec, err := LoadSpec(*specPath)
	if err != nil {
		fmt.Fprintf(stderr, "divotd: %v\n", err)
		return 1
	}
	if *listen != "" {
		spec.Listen = *listen
	}
	d, err := NewDaemon(spec)
	if err != nil {
		fmt.Fprintf(stderr, "divotd: %v\n", err)
		return 1
	}
	if err := d.Run(ctx, stdout); err != nil {
		fmt.Fprintf(stderr, "divotd: %v\n", err)
		return 1
	}
	return 0
}
