package main

import (
	"encoding/json"
	"net/http"
	"time"

	"divot"
)

// linkView is the /v1/links representation of one bus.
type linkView struct {
	ID         string  `json:"id"`
	Rounds     uint64  `json:"rounds"`
	Health     string  `json:"health"`
	Reaction   string  `json:"reaction"`
	CPUGate    bool    `json:"cpu_gate_open"`
	ModuleGate bool    `json:"module_gate_open"`
	CPUScore   float64 `json:"cpu_score"`
	Alerts     int     `json:"alerts"`
}

// view snapshots a bus under its lock.
func (d *Daemon) view(ls *linkState) linkView {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	h := ls.link.Health()
	return linkView{
		ID:         ls.id,
		Rounds:     ls.link.Rounds(),
		Health:     h.State().String(),
		Reaction:   ls.reactor.State().String(),
		CPUGate:    ls.link.CPU.Gate.Authorized(),
		ModuleGate: ls.link.Module.Gate.Authorized(),
		CPUScore:   h.CPU.LastScore,
		Alerts:     len(ls.link.Alerts),
	}
}

// Handler returns the daemon's HTTP API. It is exposed (rather than buried in
// Run) so tests can drive the API through httptest without binding a socket.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /v1/links", d.handleLinks)
	mux.HandleFunc("GET /v1/links/{id}/alerts", d.handleAlerts)
	mux.HandleFunc("POST /v1/links/{id}/authenticate", d.handleAuthenticate)
	return mux
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-response
}

// lookup resolves the {id} path segment, answering 404 itself on a miss.
func (d *Daemon) lookup(w http.ResponseWriter, r *http.Request) (*linkState, bool) {
	id := r.PathValue("id")
	ls, ok := d.byID[id]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown bus " + id})
	}
	return ls, ok
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// The daemon is healthy when every scheduler can still take a bus lock —
	// which the per-link views below already prove by snapshotting. fleet_ok
	// means every bus still authenticates: "degraded" (benign dead-bin
	// masking at reduced resolution) still passes; only "failed" does not.
	fleetOK := true
	for _, ls := range d.links {
		if d.view(ls).Health == divot.HealthFailed.String() {
			fleetOK = false
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"buses":    len(d.links),
		"fleet_ok": fleetOK,
		"uptime_s": time.Since(d.started).Seconds(),
	})
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	d.reg.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
}

func (d *Daemon) handleLinks(w http.ResponseWriter, _ *http.Request) {
	views := make([]linkView, 0, len(d.links))
	for _, ls := range d.sortedLinks() {
		views = append(views, d.view(ls))
	}
	writeJSON(w, http.StatusOK, views)
}

func (d *Daemon) handleAlerts(w http.ResponseWriter, r *http.Request) {
	ls, ok := d.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, ls.snapshotAlerts())
}

func (d *Daemon) handleAuthenticate(w http.ResponseWriter, r *http.Request) {
	ls, ok := d.lookup(w, r)
	if !ok {
		return
	}
	// Serialize with the scheduler: the engine is not safe for concurrent
	// rounds on one link.
	ls.mu.Lock()
	res := ls.link.Authenticate()
	ls.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":              ls.id,
		"accepted":        res.Accepted,
		"score":           res.Score,
		"tampered":        res.Tampered,
		"tamper_position": res.TamperPosition,
	})
}
