// Command divotd is the fleet-attestation daemon: it owns a divot.System of
// protected buses, monitors each on its own jittered interval, escalates
// alerts through per-bus reactors, and serves health, metrics (Prometheus
// text format), per-bus alert history, and on-demand authentication over
// HTTP. Telemetry flows from the engine through one fanned-out sink into the
// metrics registry, the JSONL audit log, and the daemon's alert rings.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"divot"
	"divot/internal/attest"
	"divot/internal/rng"
	"divot/internal/telemetry"
)

// alertRingCap bounds each bus's in-memory alert history; older entries fall
// off (the audit log keeps everything). It is also the stream resume window:
// a subscriber reconnecting with ?after= older than the ring tail continues
// from the oldest retained event.
const alertRingCap = 128

// streamQueueCap bounds each event-stream subscriber's queue; a subscriber
// that cannot keep up loses events (counted on the bus) rather than stalling
// the fleet.
const streamQueueCap = 256

// defaultHeartbeat is the idle keep-alive period of the event stream.
const defaultHeartbeat = 5 * time.Second

// Daemon is the running fleet.
type Daemon struct {
	spec  Spec
	sys   *divot.System
	reg   *divot.MetricsRegistry
	audit *divot.AuditLog
	// auditFile is closed (after a final flush) at shutdown when the audit
	// log writes to a file.
	auditFile *os.File

	links []*linkState
	byID  map[string]*linkState

	roundDur *telemetry.HistogramVec
	overruns *telemetry.CounterVec

	// heartbeat paces the event stream's idle keep-alives (tests shorten it).
	heartbeat time.Duration
	// stop is closed when the daemon begins shutting down; open event
	// streams terminate on it so graceful shutdown is not held hostage by
	// long-lived subscribers.
	stop chan struct{}

	started time.Time
	// listener is set once Run has bound the API socket; Addr exposes it so
	// tests can use ":0".
	listenerMu sync.Mutex
	listener   net.Listener
}

// linkState is one protected bus with its scheduler bookkeeping. mu
// serializes monitoring rounds with on-demand authentication — the engine is
// not safe for concurrent use of one link.
type linkState struct {
	id       string
	mu       sync.Mutex
	link     *divot.Link
	reactor  *divot.Reactor
	interval time.Duration
	jitter   *rng.Stream

	attack      divot.Attack
	attackAfter uint64
	attacked    bool

	rounds atomic.Uint64

	// events fans the bus's feed out to stream subscribers over bounded
	// queues; its sequence counter is the per-link seq the resume protocol
	// keys on. alerts is the retained history (the resume window), stored
	// in wire form with the same sequence numbers. alertsMu covers both, so
	// ring content and published seqs advance in lockstep.
	events   *telemetry.Bus
	alertsMu sync.Mutex
	alerts   []attest.Event
}

// record stamps the per-link sequence number, offers the event to stream
// subscribers, and appends it to the bounded retention ring.
func (ls *linkState) record(ev telemetry.Event) {
	ls.alertsMu.Lock()
	defer ls.alertsMu.Unlock()
	wire := attest.EventFromTelemetry(ev)
	wire.Seq = ls.events.Publish(ev)
	ls.alerts = append(ls.alerts, wire)
	if len(ls.alerts) > alertRingCap {
		ls.alerts = ls.alerts[len(ls.alerts)-alertRingCap:]
	}
}

// snapshotAlerts copies the ring, newest last.
func (ls *linkState) snapshotAlerts() []attest.Event {
	ls.alertsMu.Lock()
	defer ls.alertsMu.Unlock()
	out := make([]attest.Event, len(ls.alerts))
	copy(out, ls.alerts)
	return out
}

// alertSink routes attention-worthy events into the owning bus's ring and
// stream feed.
type alertSink struct{ d *Daemon }

// Emit implements telemetry.Sink.
func (s alertSink) Emit(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.EventAlert, telemetry.EventGate, telemetry.EventHealth,
		telemetry.EventReactor, telemetry.EventMonitorError, telemetry.EventAttack:
	default:
		return
	}
	if ls, ok := s.d.byID[ev.Link]; ok {
		ls.record(ev)
	}
}

// NewDaemon builds and calibrates the fleet described by spec. Every bus is
// enrolled before the daemon starts serving, so the API never exposes an
// uncalibrated link.
func NewDaemon(spec Spec) (*Daemon, error) {
	cfg := divot.DefaultConfig()
	cfg.Engine.Parallelism = spec.Parallelism
	sys := divot.NewSystem(spec.Seed, cfg)

	d := &Daemon{
		spec:      spec,
		sys:       sys,
		reg:       divot.NewMetricsRegistry(),
		byID:      make(map[string]*linkState, len(spec.Buses)),
		heartbeat: defaultHeartbeat,
		stop:      make(chan struct{}),
	}
	sinks := []divot.TelemetrySink{divot.NewMetricsSink(d.reg), alertSink{d}}
	if spec.AuditLog != "" {
		f, err := os.Create(spec.AuditLog)
		if err != nil {
			return nil, fmt.Errorf("opening audit log: %w", err)
		}
		d.auditFile = f
		d.audit = divot.NewAuditLog(f).WithClock(time.Now)
		sinks = append(sinks, d.audit)
	}
	sys.SetSink(divot.TelemetryFanout(sinks...))

	d.roundDur = d.reg.Histogram("divot_round_duration_seconds",
		"Wall-clock duration of one monitoring round.",
		telemetry.DurationBuckets, "link")
	d.overruns = d.reg.Counter("divot_scheduler_overruns_total",
		"Rounds that took longer than the bus's monitoring interval.", "link")

	for _, b := range spec.Buses {
		link, err := sys.NewLink(b.ID)
		if err != nil {
			return nil, err
		}
		if err := link.Calibrate(); err != nil {
			return nil, fmt.Errorf("calibrating bus %q: %w", b.ID, err)
		}
		reactor, err := divot.NewReactor(divot.DefaultReactionPolicy())
		if err != nil {
			return nil, err
		}
		reactor.SetSink(sys.Sink(), b.ID)
		ls := &linkState{
			id:       b.ID,
			link:     link,
			reactor:  reactor,
			interval: time.Duration(spec.interval(b)) * time.Millisecond,
			jitter:   sys.Stream("sched-" + b.ID),
			attack:   buildAttack(sys, b.ID, b.Attack),
			events:   divot.NewTelemetryBus(),
		}
		if b.Attack != nil {
			ls.attackAfter = b.Attack.AfterRounds
		}
		d.links = append(d.links, ls)
		d.byID[b.ID] = ls
	}
	return d, nil
}

// monitorOnce runs one round on a bus: mount the scripted attack when due,
// monitor, feed the reactor, observe the duration.
func (d *Daemon) monitorOnce(ls *linkState) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.attack != nil && !ls.attacked && ls.rounds.Load() >= ls.attackAfter {
		ls.attack.Apply(ls.link.Line)
		ls.attacked = true
		d.sys.Sink().Emit(divot.TelemetryEvent{
			Kind: divot.EventAttack, Link: ls.id,
			Round: ls.link.Rounds(), Detail: ls.attack.Name(),
		})
	}
	start := time.Now()
	alerts, err := ls.link.MonitorOnce()
	d.roundDur.With(ls.id).Observe(time.Since(start).Seconds())
	if err == nil {
		ls.reactor.ObserveHealth(alerts, ls.link.Health())
	}
	ls.rounds.Add(1)
}

// schedule runs the bus's monitoring loop until ctx is done. Each period is
// the bus interval spread by ±JitterFrac (drawn from the bus's own labelled
// stream, so the sequence is reproducible); a round that overruns its period
// is counted and the next one starts immediately — per-bus backpressure
// rather than an unbounded queue.
func (d *Daemon) schedule(ctx context.Context, ls *linkState) {
	timer := time.NewTimer(d.period(ls))
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		start := time.Now()
		d.monitorOnce(ls)
		period := d.period(ls)
		if took := time.Since(start); took >= period {
			d.overruns.With(ls.id).Inc()
			period = 0
		} else {
			period -= took
		}
		timer.Reset(period)
	}
}

// period draws the next jittered interval for a bus.
func (d *Daemon) period(ls *linkState) time.Duration {
	j := d.spec.JitterFrac
	if j <= 0 {
		return ls.interval
	}
	scale := ls.jitter.Uniform(1-j, 1+j)
	return time.Duration(float64(ls.interval) * scale)
}

// Addr returns the bound API address once Run is listening ("" before).
func (d *Daemon) Addr() string {
	d.listenerMu.Lock()
	defer d.listenerMu.Unlock()
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr().String()
}

// Run serves the fleet until ctx is cancelled (SIGTERM/SIGINT in main), then
// shuts down gracefully: the schedulers drain their in-flight rounds, the
// HTTP server finishes open requests, and the audit log is flushed.
func (d *Daemon) Run(ctx context.Context, logw io.Writer) error {
	d.started = time.Now()
	ln, err := net.Listen("tcp", d.spec.Listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", d.spec.Listen, err)
	}
	d.listenerMu.Lock()
	d.listener = ln
	d.listenerMu.Unlock()

	var wg sync.WaitGroup
	schedCtx, stopSched := context.WithCancel(ctx)
	defer stopSched()
	for _, ls := range d.links {
		wg.Add(1)
		go func(ls *linkState) {
			defer wg.Done()
			d.schedule(schedCtx, ls)
		}(ls)
	}

	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(logw, "divotd: %d buses calibrated, serving on %s\n", len(d.links), ln.Addr())

	var runErr error
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			runErr = err
		}
	}

	// Graceful shutdown: stop scheduling, let in-flight rounds finish, tell
	// open event streams to finish (or Shutdown would wait on them forever),
	// then close the server and flush the audit trail.
	stopSched()
	wg.Wait()
	close(d.stop)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && runErr == nil {
		runErr = err
	}
	if d.audit != nil {
		if d.auditFile != nil {
			if err := d.audit.Close(d.auditFile); err != nil && runErr == nil {
				runErr = err
			}
		} else if err := d.audit.Flush(); err != nil && runErr == nil {
			runErr = err
		}
	}
	fmt.Fprintf(logw, "divotd: shut down after %s\n", time.Since(d.started).Round(time.Millisecond))
	return runErr
}

// sortedLinks returns the fleet in id order.
func (d *Daemon) sortedLinks() []*linkState {
	out := make([]*linkState, len(d.links))
	copy(out, d.links)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
