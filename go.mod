module divot

go 1.22
