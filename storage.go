package divot

import (
	"divot/internal/sim"
	"divot/internal/storage"
)

// StorageSystem is the §VI future-work direction rendered concrete: a block
// device behind a DIVOT-protected link. The host-side gate stalls command
// submission and the device-side gate refuses media access when the link
// fingerprint stops matching — a stolen drive will not serve blocks to a
// foreign host.
type StorageSystem struct {
	// Sched is the discrete-event timeline.
	Sched *sim.Scheduler
	// Bus is the protected link between host and drive.
	Bus *Link
	// Host is the command queue; Drive the media.
	Host  *storage.Host
	Drive *storage.Device

	monitoring bool
	stopped    bool
	comps      []storage.Completion
}

// Storage re-exports.
type (
	// StorageCommand is one block operation.
	StorageCommand = storage.Command
	// StorageCompletion is a finished operation.
	StorageCompletion = storage.Completion
	// StorageHostConfig parameterizes the host queue.
	StorageHostConfig = storage.HostConfig
)

// Storage constants.
const (
	StorageBlockSize   = storage.BlockSize
	StorageRead        = storage.CmdRead
	StorageWrite       = storage.CmdWrite
	StorageTrim        = storage.CmdTrim
	StorageOK          = storage.CompOK
	StorageBlockedHost = storage.CompBlockedHost
	StorageBlockedDev  = storage.CompBlockedDevice
)

// NewStorageSystem wires a protected drive of the given capacity.
func (s *System) NewStorageSystem(id string, capacityBlocks int64, cfg storage.HostConfig) (*StorageSystem, error) {
	link, err := s.NewLink(id)
	if err != nil {
		return nil, err
	}
	sched := &sim.Scheduler{}
	drive, err := storage.NewDevice(capacityBlocks, link.Module.Gate)
	if err != nil {
		return nil, err
	}
	host, err := storage.NewHost(sched, drive, cfg, link.CPU.Gate)
	if err != nil {
		return nil, err
	}
	st := &StorageSystem{Sched: sched, Bus: link, Host: host, Drive: drive}
	st.startMonitor(sim.FromSeconds(link.MeasurementDuration()))
	return st, nil
}

// startMonitor schedules the continuous monitoring loop.
func (st *StorageSystem) startMonitor(interval sim.Time) {
	if st.monitoring {
		return
	}
	st.monitoring = true
	var round func()
	round = func() {
		if st.stopped {
			return
		}
		if st.Bus.Calibrated() {
			st.Bus.MonitorOnce() //nolint:errcheck // gates carry the verdict
		}
		st.Sched.After(interval, round)
	}
	st.Sched.After(interval, round)
}

// StopMonitor halts the monitoring loop.
func (st *StorageSystem) StopMonitor() { st.stopped = true }

// Calibrate pairs host and drive over the link fingerprint.
func (st *StorageSystem) Calibrate() error { return st.Bus.Calibrate() }

// ReadBlock queues a block read.
func (st *StorageSystem) ReadBlock(lba int64) uint64 {
	return st.Host.Submit(&storage.Command{Op: storage.CmdRead, LBA: lba,
		Done: func(c storage.Completion) { st.comps = append(st.comps, c) }})
}

// WriteBlock queues a block write.
func (st *StorageSystem) WriteBlock(lba int64, data []byte) uint64 {
	return st.Host.Submit(&storage.Command{Op: storage.CmdWrite, LBA: lba, Data: data,
		Done: func(c storage.Completion) { st.comps = append(st.comps, c) }})
}

// RunFor advances the simulation by d.
func (st *StorageSystem) RunFor(d sim.Time) { st.Sched.RunUntil(st.Sched.Now() + d) }

// Completions returns the collected completions in finish order.
func (st *StorageSystem) Completions() []storage.Completion { return st.comps }

// ClearCompletions resets the completion log.
func (st *StorageSystem) ClearCompletions() { st.comps = nil }
