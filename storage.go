package divot

import (
	"divot/internal/sim"
	"divot/internal/storage"
)

// StorageSystem is the §VI future-work direction rendered concrete: a block
// device behind a DIVOT-protected link. The host-side gate stalls command
// submission and the device-side gate refuses media access when the link
// fingerprint stops matching — a stolen drive will not serve blocks to a
// foreign host.
type StorageSystem struct {
	// Sched is the discrete-event timeline.
	Sched *sim.Scheduler
	// Bus is the protected link between host and drive.
	Bus *Link
	// Host is the command queue; Drive the media.
	Host  *storage.Host
	Drive *storage.Device

	monitoring bool
	stopped    bool
	// monitorGen invalidates rounds scheduled by earlier StartMonitor calls:
	// a pending round whose generation no longer matches is a no-op, so
	// stop/start cycles never leave two loops running.
	monitorGen int
	lastErr    error
	comps      []storage.Completion
}

// Storage re-exports.
type (
	// StorageCommand is one block operation.
	StorageCommand = storage.Command
	// StorageCompletion is a finished operation.
	StorageCompletion = storage.Completion
	// StorageHostConfig parameterizes the host queue.
	StorageHostConfig = storage.HostConfig
)

// Storage constants.
const (
	StorageBlockSize   = storage.BlockSize
	StorageRead        = storage.CmdRead
	StorageWrite       = storage.CmdWrite
	StorageTrim        = storage.CmdTrim
	StorageOK          = storage.CompOK
	StorageBlockedHost = storage.CompBlockedHost
	StorageBlockedDev  = storage.CompBlockedDevice
)

// NewStorageSystem wires a protected drive of the given capacity.
func (s *System) NewStorageSystem(id string, capacityBlocks int64, cfg storage.HostConfig) (*StorageSystem, error) {
	link, err := s.NewLink(id)
	if err != nil {
		return nil, err
	}
	sched := &sim.Scheduler{}
	drive, err := storage.NewDevice(capacityBlocks, link.Module.Gate)
	if err != nil {
		return nil, err
	}
	host, err := storage.NewHost(sched, drive, cfg, link.CPU.Gate)
	if err != nil {
		return nil, err
	}
	st := &StorageSystem{Sched: sched, Bus: link, Host: host, Drive: drive}
	st.startMonitor(sim.FromSeconds(link.MeasurementDuration()))
	return st, nil
}

// StartMonitor (re)starts the continuous monitoring loop at the given
// interval; zero or negative uses one measurement duration (back-to-back
// monitoring). Calling it while the loop runs is a no-op.
func (st *StorageSystem) StartMonitor(interval sim.Time) {
	if interval <= 0 {
		interval = sim.FromSeconds(st.Bus.MeasurementDuration())
	}
	st.startMonitor(interval)
}

// startMonitor schedules the continuous monitoring loop.
func (st *StorageSystem) startMonitor(interval sim.Time) {
	if st.monitoring {
		return
	}
	st.monitoring = true
	st.stopped = false
	st.monitorGen++
	gen := st.monitorGen
	var round func()
	round = func() {
		if st.stopped || gen != st.monitorGen {
			return
		}
		if st.Bus.Calibrated() {
			// The gates carry the verdict; a protocol error is retained for
			// LastMonitorError and reported through the link's telemetry sink
			// (EventMonitorError) rather than dropped.
			if _, err := st.Bus.MonitorOnce(); err != nil {
				st.lastErr = err
			}
		}
		st.Sched.After(interval, round)
	}
	st.Sched.After(interval, round)
}

// StopMonitor halts the monitoring loop; StartMonitor may restart it. Calling
// it again while stopped is a no-op.
func (st *StorageSystem) StopMonitor() {
	st.stopped = true
	st.monitoring = false
	st.monitorGen++
}

// Monitoring reports whether the continuous monitoring loop is scheduled.
func (st *StorageSystem) Monitoring() bool { return st.monitoring }

// LastMonitorError returns the most recent protocol error a monitoring round
// hit (nil while monitoring is healthy). Errors do not stop the loop — the
// next round reports again and the gates stay closed meanwhile.
func (st *StorageSystem) LastMonitorError() error { return st.lastErr }

// Calibrate pairs host and drive over the link fingerprint.
func (st *StorageSystem) Calibrate() error { return st.Bus.Calibrate() }

// ReadBlock queues a block read.
func (st *StorageSystem) ReadBlock(lba int64) uint64 {
	return st.Host.Submit(&storage.Command{Op: storage.CmdRead, LBA: lba,
		Done: func(c storage.Completion) { st.comps = append(st.comps, c) }})
}

// WriteBlock queues a block write.
func (st *StorageSystem) WriteBlock(lba int64, data []byte) uint64 {
	return st.Host.Submit(&storage.Command{Op: storage.CmdWrite, LBA: lba, Data: data,
		Done: func(c storage.Completion) { st.comps = append(st.comps, c) }})
}

// RunFor advances the simulation by d.
func (st *StorageSystem) RunFor(d sim.Time) { st.Sched.RunUntil(st.Sched.Now() + d) }

// Completions returns the collected completions in finish order.
func (st *StorageSystem) Completions() []storage.Completion { return st.comps }

// ClearCompletions resets the completion log.
func (st *StorageSystem) ClearCompletions() { st.comps = nil }
