package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
)

// WatchOptions configures a Watch or WatchMulti.
type WatchOptions struct {
	// After resumes a single-link Watch past events the caller has already
	// seen: only events with Seq > After are delivered. 0 replays the
	// server's whole retention ring. A non-zero After is a continuity claim —
	// if the server has already evicted event After+1 from its retention
	// ring, the watch ends with a *ResumeGapError instead of silently
	// skipping ahead. WatchMulti ignores it; use AfterByLink.
	After uint64
	// Buffer is the delivery channel's capacity (default 16). A full buffer
	// back-pressures the reader goroutine, not the server — the server drops
	// events for slow subscribers, and the watch re-syncs by resuming.
	Buffer int
	// Links names the buses a WatchMulti subscribes to; empty means the
	// whole fleet. Watch ignores it (the watched bus is its id argument).
	Links []string
	// Kinds narrows delivery to the named event kinds (attest.Event.Kind
	// strings: "alert", "gate", "health", ...); empty delivers every kind the
	// feed carries. On the binary stream the filter is applied server-side;
	// on the legacy SSE fallback the client filters, so the wire still
	// carries every kind. An unknown kind name is a bad_request on the binary
	// stream and silently matches nothing on the fallback.
	Kinds []string
	// AfterByLink is WatchMulti's per-link resume map: each named link
	// resumes past its cursor (see After for the continuity semantics; the
	// gap error then names the link). Links absent from the map start from
	// the server's whole retention ring.
	AfterByLink map[string]uint64
}

// ResumeGapError reports a broken resume: the watch asked the server to
// continue past sequence number Resume, but the oldest event the server
// still retained was Oldest > Resume+1 — the events in between fell off the
// server's bounded retention ring and can never be delivered. The watch ends
// rather than silently restarting from the surviving snapshot; the caller
// decides whether to re-Watch with After 0 (accepting the hole) or to
// rebuild its state from GET /v1/links/{id}/alerts first.
type ResumeGapError struct {
	// Link is the bus whose feed gapped ("" only on legacy single-link
	// streams from daemons that predate link attribution).
	Link string
	// Resume is the sequence number the watch tried to continue past.
	Resume uint64
	// Oldest is the first sequence number the server still had.
	Oldest uint64
}

// Error implements the error interface.
func (e *ResumeGapError) Error() string {
	if e.Link != "" {
		return fmt.Sprintf("client: resume gap on %s: events %d..%d evicted from the server's retention ring",
			e.Link, e.Resume+1, e.Oldest-1)
	}
	return fmt.Sprintf("client: resume gap: events %d..%d evicted from the server's retention ring",
		e.Resume+1, e.Oldest-1)
}

// Watch is a live subscription to one bus's event feed. Events arrive on
// Events() in sequence order, deduplicated; the channel closes when the
// subscription ends, after which Err reports why.
//
// Watch is a single-link view over the same machinery as WatchMulti: against
// a current daemon it rides the multiplexed binary stream, against an older
// one the legacy SSE feed — negotiated once and cached on the Client.
//
// # Resume semantics
//
// The Watch owns reconnection: a dropped stream (daemon restart, network
// fault) is redialed under the client's retry policy with the resume cursor
// set to the last delivered sequence number, and the server replays its
// retention ring past that point before switching to live delivery. Replay
// and live feed may overlap; the Watch deduplicates by sequence number. The
// guarantee is exactly-once delivery across the Watch's own reconnects: a
// consumer that reads Events() to completion observes each retained event at
// most once, in order, with no event skipped silently.
//
// Two bounded buffers qualify that guarantee, detectably:
//
//   - Under sustained overload the daemon degrades delivery for subscribers
//     that cannot keep up: its per-subscriber queues are bounded and never
//     block the measurement hot path, so periodic events (health, round,
//     measurement) are coalesced to their newest value and, past that,
//     events are dropped — both counted in the daemon's metrics. A drop is
//     visible as a sequence jump between consecutive delivered events within
//     one connection.
//   - Across a disconnect, events older than the daemon's retention ring
//     cannot be replayed. When the resume point has been evicted the watch
//     ends with *ResumeGapError rather than skipping the hole — the caller
//     chooses how to re-sync (see ResumeGapError).
//
// LastSeq after every delivery is the durable resume cursor: persisting it
// lets a future Watch (even in a new process) continue with
// WatchOptions.After and keep the same guarantee.
type Watch struct {
	mw *MultiWatch
	id string
}

// Events is the delivery channel. Closed when the watch ends.
func (w *Watch) Events() <-chan Event { return w.mw.Events() }

// LastSeq returns the sequence number of the newest delivered event (the
// resume point for a future Watch).
func (w *Watch) LastSeq() uint64 { return w.mw.LastSeq(w.id) }

// Close tears the watch down. Events() closes shortly after; safe to call
// more than once and concurrently with receives.
func (w *Watch) Close() { w.mw.Close() }

// Err reports why the watch ended: nil until Events() closes, then the
// caller's context error for cancellation, an *APIError for a server
// refusal, a *ResumeGapError for an evicted resume point, or the transport
// fault that exhausted the retry policy.
func (w *Watch) Err() error { return w.mw.Err() }

// Watch opens a live event subscription for one bus. The first connection is
// established synchronously — an unknown bus or unreachable daemon reports
// here, not on the channel — and the feed then runs until ctx is done, Close
// is called, or reconnection fails terminally. opts.Kinds filters the feed;
// opts.Links and opts.AfterByLink are WatchMulti concerns and are ignored.
func (c *Client) Watch(ctx context.Context, id string, opts WatchOptions) (*Watch, error) {
	opts.Links = []string{id}
	opts.AfterByLink = nil
	if opts.After > 0 {
		opts.AfterByLink = map[string]uint64{id: opts.After}
	}
	mw, err := c.WatchMulti(ctx, opts)
	if err != nil {
		return nil, err
	}
	return &Watch{mw: mw, id: id}, nil
}

// connectStream dials the legacy SSE event feed once per attempt, retrying
// transport faults and 5xx answers under the client's policy. On success the
// response body is the open stream (no per-attempt timeout — streams live
// until closed).
func (c *Client) connectStream(ctx context.Context, id string, after uint64) (*http.Response, error) {
	path := c.base + "/v1/links/" + url.PathEscape(id) + "/events"
	if after > 0 {
		path += "?after=" + strconv.FormatUint(after, 10)
	}
	var lastErr error
	var spent int64
	for attempt := 0; ; attempt++ {
		resp, err := c.dialStream(ctx, path)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !c.shouldRetry(ctx, err) || attempt+1 >= c.retry.MaxAttempts {
			return nil, lastErr
		}
		d := c.backoff(attempt)
		if c.retry.Budget > 0 && spent+int64(d) > int64(c.retry.Budget) {
			return nil, lastErr
		}
		spent += int64(d)
		if err := c.sleep(ctx, d); err != nil {
			return nil, lastErr
		}
	}
}

func (c *Client) dialStream(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building stream request: %w", err)
	}
	req.Header.Set("User-Agent", c.ua)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: opening stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		raw := make([]byte, 4096)
		n, _ := resp.Body.Read(raw)
		return nil, decodeResponse(resp.StatusCode, raw[:n], nil)
	}
	return resp, nil
}
