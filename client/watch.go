package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// WatchOptions configures a Watch.
type WatchOptions struct {
	// After resumes the feed past events the caller has already seen: only
	// events with Seq > After are delivered. 0 replays the server's whole
	// retention ring. A non-zero After is a continuity claim — if the server
	// has already evicted event After+1 from its retention ring, the watch
	// ends with a *ResumeGapError instead of silently skipping ahead.
	After uint64
	// Buffer is the delivery channel's capacity (default 16). A full buffer
	// back-pressures the reader goroutine, not the server — the server drops
	// events for slow subscribers, and the Watch re-syncs by resuming.
	Buffer int
}

// ResumeGapError reports a broken resume: the watch asked the server to
// continue past sequence number Resume, but the oldest event the server
// still retained was Oldest > Resume+1 — the events in between fell off the
// server's bounded retention ring and can never be delivered. The watch ends
// rather than silently restarting from the surviving snapshot; the caller
// decides whether to re-Watch with After 0 (accepting the hole) or to
// rebuild its state from GET /v1/links/{id}/alerts first.
type ResumeGapError struct {
	// Resume is the sequence number the watch tried to continue past.
	Resume uint64
	// Oldest is the first sequence number the server still had.
	Oldest uint64
}

// Error implements the error interface.
func (e *ResumeGapError) Error() string {
	return fmt.Sprintf("client: resume gap: events %d..%d evicted from the server's retention ring",
		e.Resume+1, e.Oldest-1)
}

// Watch is a live subscription to one bus's event feed. Events arrive on
// Events() in sequence order, deduplicated; the channel closes when the
// subscription ends, after which Err reports why.
//
// # Resume semantics
//
// The Watch owns reconnection: a dropped stream (daemon restart, network
// fault) is redialed under the client's retry policy with ?after set to the
// last delivered sequence number, and the server replays its retention ring
// past that point before switching to live delivery. Replay and live feed
// may overlap; the Watch deduplicates by sequence number. The guarantee is
// exactly-once delivery across the Watch's own reconnects: a consumer that
// reads Events() to completion observes each retained event at most once, in
// order, with no event skipped silently.
//
// Two bounded buffers qualify that guarantee, detectably:
//
//   - Under sustained overload the daemon drops events for subscribers that
//     cannot keep up (its per-subscriber queues are bounded and never block
//     the measurement hot path). Such a drop is visible as a sequence jump
//     between consecutive delivered events within one connection.
//   - Across a disconnect, events older than the daemon's retention ring
//     cannot be replayed. When the resume point has been evicted the watch
//     ends with *ResumeGapError rather than skipping the hole — the caller
//     chooses how to re-sync (see ResumeGapError).
//
// LastSeq after every delivery is the durable resume cursor: persisting it
// lets a future Watch (even in a new process) continue with
// WatchOptions.After and keep the same guarantee.
type Watch struct {
	ch     chan Event
	cancel context.CancelFunc
	last   atomic.Uint64

	mu  sync.Mutex
	err error
}

// Events is the delivery channel. Closed when the watch ends.
func (w *Watch) Events() <-chan Event { return w.ch }

// LastSeq returns the sequence number of the newest delivered event (the
// resume point for a future Watch).
func (w *Watch) LastSeq() uint64 { return w.last.Load() }

// Close tears the watch down. Events() closes shortly after; safe to call
// more than once and concurrently with receives.
func (w *Watch) Close() { w.cancel() }

// Err reports why the watch ended: nil until Events() closes, then the
// caller's context error for cancellation, an *APIError for a server
// refusal, a *ResumeGapError for an evicted resume point, or the transport
// fault that exhausted the retry policy.
func (w *Watch) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *Watch) setErr(err error) {
	w.mu.Lock()
	w.err = err
	w.mu.Unlock()
}

// Watch opens a live event subscription for one bus. The first connection is
// established synchronously — an unknown bus or unreachable daemon reports
// here, not on the channel — and the feed then runs until ctx is done, Close
// is called, or reconnection fails terminally.
func (c *Client) Watch(ctx context.Context, id string, opts WatchOptions) (*Watch, error) {
	if opts.Buffer <= 0 {
		opts.Buffer = 16
	}
	wctx, cancel := context.WithCancel(ctx)
	resp, err := c.connectStream(wctx, id, opts.After)
	if err != nil {
		cancel()
		return nil, err
	}
	w := &Watch{ch: make(chan Event, opts.Buffer), cancel: cancel}
	w.last.Store(opts.After)
	go w.run(wctx, c, id, resp)
	return w, nil
}

// connectStream dials the event feed once per attempt, retrying transport
// faults and 5xx answers under the client's policy. On success the response
// body is the open stream (no per-attempt timeout — streams live until
// closed).
func (c *Client) connectStream(ctx context.Context, id string, after uint64) (*http.Response, error) {
	path := c.base + "/v1/links/" + url.PathEscape(id) + "/events"
	if after > 0 {
		path += "?after=" + strconv.FormatUint(after, 10)
	}
	var lastErr error
	var spent int64
	for attempt := 0; ; attempt++ {
		resp, err := c.dialStream(ctx, path)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !c.shouldRetry(ctx, err) || attempt+1 >= c.retry.MaxAttempts {
			return nil, lastErr
		}
		d := c.backoff(attempt)
		if c.retry.Budget > 0 && spent+int64(d) > int64(c.retry.Budget) {
			return nil, lastErr
		}
		spent += int64(d)
		if err := c.sleep(ctx, d); err != nil {
			return nil, lastErr
		}
	}
}

func (c *Client) dialStream(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building stream request: %w", err)
	}
	req.Header.Set("User-Agent", c.ua)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: opening stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		raw := make([]byte, 4096)
		n, _ := resp.Body.Read(raw)
		return nil, decodeResponse(resp.StatusCode, raw[:n], nil)
	}
	return resp, nil
}

// run consumes stream connections until the context ends, a reconnect fails
// terminally, or a resume gap is detected. Each reconnect resumes from the
// last delivered sequence number.
func (w *Watch) run(ctx context.Context, c *Client, id string, resp *http.Response) {
	defer close(w.ch)
	for {
		if err := w.consume(ctx, resp); err != nil {
			w.setErr(err)
			return
		}
		if ctx.Err() != nil {
			w.setErr(ctx.Err())
			return
		}
		// The stream dropped mid-flight (daemon restart, network fault):
		// resume past everything already delivered.
		next, err := c.connectStream(ctx, id, w.last.Load())
		if err != nil {
			if ctx.Err() != nil {
				err = ctx.Err()
			}
			w.setErr(err)
			return
		}
		resp = next
	}
}

// consume parses one stream connection's SSE frames until it ends. Frames
// are "id:/event:/data:" blocks separated by blank lines; comment lines
// (": hb" heartbeats, ": shutdown") keep the connection warm and are
// skipped. Events at or below the resume point are dropped — the replay
// window and the live queue may overlap.
//
// The first event delivered on a resumed connection is the continuity
// check: when the connection was opened with ?after=R (R > 0), the server's
// replay must still hold event R+1 — a first event beyond R+1 means the
// ring evicted part of the feed, and consume reports it as *ResumeGapError
// instead of delivering across the hole. R == 0 claims nothing, so the
// first connection of an After-less watch starts wherever the ring starts.
func (w *Watch) consume(ctx context.Context, resp *http.Response) error {
	defer resp.Body.Close()
	resume := w.last.Load()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var data string
	first := true
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data == "" {
				continue // end of a comment-only block
			}
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err == nil && ev.Seq > w.last.Load() {
				if first {
					first = false
					if resume > 0 && ev.Seq > resume+1 {
						return &ResumeGapError{Resume: resume, Oldest: ev.Seq}
					}
				}
				select {
				case w.ch <- ev:
					w.last.Store(ev.Seq)
				case <-ctx.Done():
					return nil
				}
			}
			data = ""
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		default:
			// "id:" and "event:" lines duplicate fields already inside the
			// data payload; comments (":") are keep-alives.
		}
	}
	return nil
}
