package client

import (
	"context"
	"sort"
	"sync"
)

// Multi fans calls out across a set of named daemons under one bounded
// in-flight budget. It is the concurrency half of a federation aggregator:
// each member is an ordinary retrying Client (backoff, jitter, per-attempt
// timeouts all apply per call), and Multi adds the fleet-wide semaphore so a
// 100-daemon fan-out cannot hold 100 sockets' worth of requests in flight at
// once. Safe for concurrent use; membership may change between calls.
type Multi struct {
	sem chan struct{}

	mu      sync.RWMutex
	clients map[string]*Client
}

// NewMulti builds an empty fan-out set allowing at most maxInFlight
// concurrent calls (<=0 means 16).
func NewMulti(maxInFlight int) *Multi {
	if maxInFlight <= 0 {
		maxInFlight = 16
	}
	return &Multi{
		sem:     make(chan struct{}, maxInFlight),
		clients: make(map[string]*Client),
	}
}

// Set adds or replaces the named member.
func (m *Multi) Set(name string, c *Client) {
	m.mu.Lock()
	m.clients[name] = c
	m.mu.Unlock()
}

// Delete removes the named member (no-op when absent). In-flight calls to it
// finish undisturbed.
func (m *Multi) Delete(name string) {
	m.mu.Lock()
	delete(m.clients, name)
	m.mu.Unlock()
}

// Client returns the named member (nil when absent).
func (m *Multi) Client(name string) *Client {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.clients[name]
}

// Names returns the member names in sorted order.
func (m *Multi) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.clients))
	for n := range m.clients {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AttestOutcome is one daemon's answer to a fanned-out Attest.
type AttestOutcome struct {
	Resp AttestResponse
	Err  error
}

// Attest fans a batch attestation out to the planned daemons — plan maps a
// member name to the bus ids to attest there (nil ids = that daemon's whole
// fleet) — and returns every daemon's outcome. Calls run concurrently under
// the in-flight budget; a planned name that is not a member comes back with
// ErrUnknownDaemon. The context covers the whole fan-out.
func (m *Multi) Attest(ctx context.Context, plan map[string][]string) map[string]AttestOutcome {
	out := make(map[string]AttestOutcome, len(plan))
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for name, ids := range plan {
		wg.Add(1)
		go func(name string, ids []string) {
			defer wg.Done()
			var o AttestOutcome
			if c := m.Client(name); c == nil {
				o.Err = ErrUnknownDaemon
			} else if err := m.acquire(ctx); err != nil {
				o.Err = err
			} else {
				o.Resp, o.Err = c.Attest(ctx, ids...)
				m.release()
			}
			outMu.Lock()
			out[name] = o
			outMu.Unlock()
		}(name, ids)
	}
	wg.Wait()
	return out
}

// HealthOutcome is one daemon's answer to a fanned-out health probe.
type HealthOutcome struct {
	View HealthView
	Err  error
}

// Health probes every member's /healthz concurrently under the in-flight
// budget and returns each outcome by name. A dead daemon's entry carries the
// transport error; the probe itself still retries under the member's policy.
func (m *Multi) Health(ctx context.Context) map[string]HealthOutcome {
	names := m.Names()
	out := make(map[string]HealthOutcome, len(names))
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			var o HealthOutcome
			if c := m.Client(name); c == nil {
				o.Err = ErrUnknownDaemon
			} else if err := m.acquire(ctx); err != nil {
				o.Err = err
			} else {
				o.View, o.Err = c.Health(ctx)
				m.release()
			}
			outMu.Lock()
			out[name] = o
			outMu.Unlock()
		}(name)
	}
	wg.Wait()
	return out
}

// FleetHealthOutcome is one daemon's answer to a fanned-out FleetHealth.
type FleetHealthOutcome struct {
	Links []LinkHealthView
	Err   error
}

// FleetHealth fetches every member's /v1/health concurrently under the
// in-flight budget.
func (m *Multi) FleetHealth(ctx context.Context) map[string]FleetHealthOutcome {
	names := m.Names()
	out := make(map[string]FleetHealthOutcome, len(names))
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			var o FleetHealthOutcome
			if c := m.Client(name); c == nil {
				o.Err = ErrUnknownDaemon
			} else if err := m.acquire(ctx); err != nil {
				o.Err = err
			} else {
				o.Links, o.Err = c.FleetHealth(ctx)
				m.release()
			}
			outMu.Lock()
			out[name] = o
			outMu.Unlock()
		}(name)
	}
	wg.Wait()
	return out
}

// acquire takes one in-flight slot, or reports why the wait ended early.
func (m *Multi) acquire(ctx context.Context) error {
	select {
	case m.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m *Multi) release() { <-m.sem }
