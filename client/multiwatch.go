package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"divot/internal/wire"
)

// Stream transport modes, negotiated once per Client and cached: the first
// WatchMulti/Watch probes GET /v1/stream, and a daemon that predates it (a
// bare, non-envelope 404/405/501) downgrades every later watch on this Client
// to the legacy per-link SSE feed.
const (
	streamModeUnknown = int32(iota)
	streamModeBinary
	streamModeLegacy
)

// errStreamUnsupported marks a daemon that does not serve GET /v1/stream.
var errStreamUnsupported = errors.New("client: daemon does not serve /v1/stream")

// MultiWatch is a live subscription to many buses' event feeds over one
// logical stream. Events from every subscribed link arrive interleaved on
// Events(), each link's events in its own sequence order, deduplicated, with
// the same exactly-once-across-reconnects guarantee Watch documents — per
// link, keyed by the per-link cursors LastSeq exposes.
//
// Transport is negotiated: against a current daemon the subscription is one
// multiplexed binary connection (GET /v1/stream, internal/wire framing);
// against a daemon that predates the endpoint it degrades transparently to
// one legacy SSE connection per link, same events, same guarantees. The
// negotiated mode is cached on the Client.
type MultiWatch struct {
	ch     chan Event
	cancel context.CancelFunc

	mu      sync.Mutex
	err     error
	links   []string
	cursors map[string]uint64
}

// Events is the delivery channel, shared by every subscribed link. Closed
// when the subscription ends.
func (mw *MultiWatch) Events() <-chan Event { return mw.ch }

// LastSeq returns the sequence number of link id's newest delivered event —
// the per-link resume cursor for a future WatchMulti (via
// WatchOptions.AfterByLink). Zero for a link with no deliveries yet.
func (mw *MultiWatch) LastSeq(id string) uint64 {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	return mw.cursors[id]
}

// LastSeqs copies every link's resume cursor — the durable state a consumer
// persists to continue a multi-link subscription in a new process.
func (mw *MultiWatch) LastSeqs() map[string]uint64 {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	out := make(map[string]uint64, len(mw.cursors))
	for id, seq := range mw.cursors {
		out[id] = seq
	}
	return out
}

// Links returns the resolved subscription set: the requested links, or — for
// a fleet-wide subscription — what the server expanded it to.
func (mw *MultiWatch) Links() []string {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	return append([]string(nil), mw.links...)
}

// Close tears the subscription down. Events() closes shortly after; safe to
// call more than once and concurrently with receives.
func (mw *MultiWatch) Close() { mw.cancel() }

// Err reports why the subscription ended: nil until Events() closes, then
// the caller's context error for cancellation, an *APIError for a server
// refusal, a *ResumeGapError for an evicted resume point, or the transport
// fault that exhausted the retry policy. The first terminal cause wins — a
// legacy-mode subscription runs one connection per link, and one link's
// terminal failure ends the whole subscription.
func (mw *MultiWatch) Err() error {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	return mw.err
}

func (mw *MultiWatch) setErr(err error) {
	mw.mu.Lock()
	if mw.err == nil {
		mw.err = err
	}
	mw.mu.Unlock()
}

func (mw *MultiWatch) cursor(id string) uint64 {
	mw.mu.Lock()
	defer mw.mu.Unlock()
	return mw.cursors[id]
}

func (mw *MultiWatch) setCursor(id string, seq uint64) {
	mw.mu.Lock()
	mw.cursors[id] = seq
	mw.mu.Unlock()
}

func (mw *MultiWatch) cursorsCopy() map[string]uint64 { return mw.LastSeqs() }

func (mw *MultiWatch) setLinks(links []string) {
	mw.mu.Lock()
	mw.links = append([]string(nil), links...)
	mw.mu.Unlock()
}

// WatchMulti opens a live event subscription over many buses: the links named
// in opts.Links, or the whole fleet when none are. Events of every subscribed
// link arrive interleaved on one channel; opts.Kinds narrows them to the
// named event kinds, and opts.AfterByLink resumes each link past events a
// previous subscription already delivered (with the same continuity guarantee
// Watch documents — an evicted resume point ends the subscription with a
// *ResumeGapError naming the link, never a silent skip).
//
// The first connection is established synchronously — an unknown bus or
// unreachable daemon reports here, not on the channel. Transport (binary
// multiplexed stream vs legacy per-link SSE) is negotiated and cached on the
// Client; see MultiWatch.
func (c *Client) WatchMulti(ctx context.Context, opts WatchOptions) (*MultiWatch, error) {
	if opts.Buffer <= 0 {
		opts.Buffer = 16
	}
	wctx, cancel := context.WithCancel(ctx)
	mw := &MultiWatch{
		ch: make(chan Event, opts.Buffer), cancel: cancel,
		cursors: make(map[string]uint64, len(opts.AfterByLink)),
	}
	for id, seq := range opts.AfterByLink {
		mw.cursors[id] = seq
	}
	mw.setLinks(opts.Links)

	if c.streamMode.Load() != streamModeLegacy {
		resp, err := c.connectMulti(wctx, opts.Links, opts.Kinds, mw.cursorsCopy())
		switch {
		case err == nil:
			c.streamMode.Store(streamModeBinary)
			go mw.runBinary(wctx, c, opts, resp)
			return mw, nil
		case errors.Is(err, errStreamUnsupported):
			c.streamMode.Store(streamModeLegacy)
		default:
			cancel()
			return nil, err
		}
	}
	if err := mw.startLegacy(wctx, c, opts); err != nil {
		cancel()
		return nil, err
	}
	return mw, nil
}

// streamURL renders the /v1/stream query form of a Subscribe handshake.
// Cursors are sorted so the URL (and any log of it) is deterministic.
func (c *Client) streamURL(links, kinds []string, after map[string]uint64) string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if len(links) > 0 {
		add("links", strings.Join(links, ","))
	}
	if len(kinds) > 0 {
		add("kinds", strings.Join(kinds, ","))
	}
	if len(after) > 0 {
		entries := make([]string, 0, len(after))
		for id, seq := range after {
			if seq > 0 {
				entries = append(entries, id+":"+strconv.FormatUint(seq, 10))
			}
		}
		if len(entries) > 0 {
			sort.Strings(entries)
			add("after", strings.Join(entries, ","))
		}
	}
	u := c.base + "/v1/stream"
	if len(parts) > 0 {
		u += "?" + strings.Join(parts, "&")
	}
	return u
}

// connectMulti dials the binary stream, retrying transport faults and 5xx
// answers under the client's policy. errStreamUnsupported (the daemon
// predates the endpoint) is terminal here — the caller falls back to SSE.
func (c *Client) connectMulti(ctx context.Context, links, kinds []string, after map[string]uint64) (*http.Response, error) {
	u := c.streamURL(links, kinds, after)
	var lastErr error
	var spent int64
	for attempt := 0; ; attempt++ {
		resp, err := c.dialMulti(ctx, u)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !c.shouldRetry(ctx, err) || attempt+1 >= c.retry.MaxAttempts {
			return nil, lastErr
		}
		d := c.backoff(attempt)
		if c.retry.Budget > 0 && spent+int64(d) > int64(c.retry.Budget) {
			return nil, lastErr
		}
		spent += int64(d)
		if err := c.sleep(ctx, d); err != nil {
			return nil, lastErr
		}
	}
}

func (c *Client) dialMulti(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building stream request: %w", err)
	}
	req.Header.Set("User-Agent", c.ua)
	req.Header.Set("Accept", wire.ContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: opening stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		raw := make([]byte, 4096)
		n, _ := resp.Body.Read(raw)
		derr := decodeResponse(resp.StatusCode, raw[:n], nil)
		if streamUnsupported(resp.StatusCode, derr) {
			return nil, errStreamUnsupported
		}
		return nil, derr
	}
	return resp, nil
}

// streamUnsupported recognizes the version-negotiation signal: a daemon that
// predates GET /v1/stream answers its mux's bare 404 (or a proxy's 405/501) —
// a non-envelope body, which decodeResponse maps to a synthetic internal
// error. An *envelope* error on the same statuses is a current daemon
// refusing the subscription (unknown link) and stays terminal.
func streamUnsupported(status int, err error) bool {
	switch status {
	case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
	default:
		return false
	}
	var aerr *APIError
	return errors.As(err, &aerr) && aerr.Code == CodeInternal &&
		strings.HasPrefix(aerr.Message, "non-envelope answer")
}

// runBinary consumes binary stream connections until the context ends, a
// reconnect fails terminally, or the server reports a gap or error frame.
// Each reconnect resumes every link from its last delivered sequence number.
func (mw *MultiWatch) runBinary(ctx context.Context, c *Client, opts WatchOptions, resp *http.Response) {
	defer close(mw.ch)
	for {
		if err := mw.consumeBinary(ctx, resp, opts); err != nil {
			mw.setErr(err)
			return
		}
		if ctx.Err() != nil {
			mw.setErr(ctx.Err())
			return
		}
		next, err := c.connectMulti(ctx, opts.Links, opts.Kinds, mw.cursorsCopy())
		if err != nil {
			if ctx.Err() != nil {
				err = ctx.Err()
			}
			mw.setErr(err)
			return
		}
		resp = next
	}
}

// consumeBinary reads one binary stream connection until it ends. A nil
// return means reconnect (clean EOF, torn stream, server shutdown frame); an
// error is terminal.
//
// Per-link continuity: the first delivered event of a link whose resume
// cursor was R > 0 must be R+1 — anything later means the retention ring
// evicted part of the feed, reported as *ResumeGapError. The check only runs
// for unfiltered subscriptions (a kind filter legitimately skips sequence
// numbers); a filtered subscription still gets the server's eager Gap frame,
// which checks the same claim against the ring before replay.
func (mw *MultiWatch) consumeBinary(ctx context.Context, resp *http.Response, opts WatchOptions) error {
	defer resp.Body.Close()
	rd := wire.NewReader(resp.Body)
	resume := mw.cursorsCopy()
	checked := make(map[string]bool, len(resume))
	filtered := len(opts.Kinds) > 0
	for {
		typ, payload, err := rd.Next()
		if err != nil {
			return nil // clean EOF or torn stream: reconnect with the cursors
		}
		switch typ {
		case wire.FrameHello:
			var h wire.Hello
			if err := json.Unmarshal(payload, &h); err != nil {
				return fmt.Errorf("client: bad hello frame: %w", err)
			}
			mw.setLinks(h.Links)
		case wire.FrameHeartbeat:
		case wire.FrameShutdown:
			return nil // server shutting down: reconnect (under retry policy)
		case wire.FrameGap:
			var g wire.Gap
			if err := json.Unmarshal(payload, &g); err != nil {
				return fmt.Errorf("client: bad gap frame: %w", err)
			}
			return &ResumeGapError{Link: g.Link, Resume: g.Resume, Oldest: g.Oldest}
		case wire.FrameError:
			var e wire.ErrorInfo
			if err := json.Unmarshal(payload, &e); err != nil {
				return fmt.Errorf("client: bad error frame: %w", err)
			}
			return &APIError{Status: http.StatusOK, Code: e.Code, Message: e.Message}
		case wire.FrameEvent:
			ev, err := wire.DecodeEvent(payload)
			if err != nil {
				return fmt.Errorf("client: bad event frame: %w", err)
			}
			if ev.Seq <= mw.cursor(ev.Link) {
				continue // replay/live overlap: already delivered
			}
			if !checked[ev.Link] {
				checked[ev.Link] = true
				if r := resume[ev.Link]; r > 0 && !filtered && ev.Seq > r+1 {
					return &ResumeGapError{Link: ev.Link, Resume: r, Oldest: ev.Seq}
				}
			}
			select {
			case mw.ch <- ev:
				mw.setCursor(ev.Link, ev.Seq)
			case <-ctx.Done():
				return nil
			}
		}
	}
}

// startLegacy opens the legacy per-link SSE fan-out: one /v1/links/{id}/events
// connection per subscribed link, all delivering into the shared channel with
// client-side kind filtering. Every first connection is established
// synchronously so unknown links report from WatchMulti itself.
func (mw *MultiWatch) startLegacy(ctx context.Context, c *Client, opts WatchOptions) error {
	links := opts.Links
	if len(links) == 0 {
		// The legacy transport has no fleet-wide subscription: expand it
		// through the links listing, like a binary Hello would.
		sums, err := c.Links(ctx)
		if err != nil {
			return err
		}
		links = make([]string, 0, len(sums))
		for _, s := range sums {
			links = append(links, s.ID)
		}
	}
	seen := make(map[string]bool, len(links))
	uniq := links[:0:0]
	for _, id := range links {
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	links = uniq
	mw.setLinks(links)
	kinds := make(map[string]bool, len(opts.Kinds))
	for _, k := range opts.Kinds {
		kinds[k] = true
	}

	conns := make([]*http.Response, len(links))
	for i, id := range links {
		resp, err := c.connectStream(ctx, id, mw.cursor(id))
		if err != nil {
			for _, open := range conns[:i] {
				open.Body.Close()
			}
			return err
		}
		conns[i] = resp
	}
	var wg sync.WaitGroup
	for i, id := range links {
		wg.Add(1)
		go func(id string, resp *http.Response) {
			defer wg.Done()
			mw.runLegacyLink(ctx, c, id, kinds, resp)
		}(id, conns[i])
	}
	go func() {
		wg.Wait()
		close(mw.ch)
	}()
	return nil
}

// runLegacyLink consumes one link's SSE connections until the context ends or
// a terminal failure. A terminal failure on any link ends the whole
// subscription: the error is recorded (first cause wins) and the shared
// context cancelled so sibling links stop too.
func (mw *MultiWatch) runLegacyLink(ctx context.Context, c *Client, id string, kinds map[string]bool, resp *http.Response) {
	for {
		if err := mw.consumeSSE(ctx, resp, id, kinds); err != nil {
			mw.setErr(err)
			mw.cancel()
			return
		}
		if ctx.Err() != nil {
			mw.setErr(ctx.Err())
			return
		}
		next, err := c.connectStream(ctx, id, mw.cursor(id))
		if err != nil {
			if ctx.Err() != nil {
				err = ctx.Err()
			}
			mw.setErr(err)
			mw.cancel()
			return
		}
		resp = next
	}
}

// consumeSSE parses one legacy SSE connection until it ends. Frames are
// "id:/event:/data:" blocks separated by blank lines; comment lines (": hb"
// heartbeats, ": shutdown") keep the connection warm and are skipped. Events
// at or below the link's cursor are dropped — the replay window and the live
// queue may overlap.
//
// The first event on a resumed connection is the continuity check: a
// connection opened with ?after=R (R > 0) must see R+1 first — anything later
// means the ring evicted part of the feed, reported as *ResumeGapError. The
// legacy feed is unfiltered on the wire, so the check is valid even under a
// kind filter; filtering happens after it, client-side.
func (mw *MultiWatch) consumeSSE(ctx context.Context, resp *http.Response, id string, kinds map[string]bool) error {
	defer resp.Body.Close()
	resume := mw.cursor(id)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var data string
	first := true
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data == "" {
				continue // end of a comment-only block
			}
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err == nil && ev.Seq > mw.cursor(id) {
				if first {
					first = false
					if resume > 0 && ev.Seq > resume+1 {
						return &ResumeGapError{Link: id, Resume: resume, Oldest: ev.Seq}
					}
				}
				if len(kinds) == 0 || kinds[ev.Kind] {
					select {
					case mw.ch <- ev:
						mw.setCursor(id, ev.Seq)
					case <-ctx.Done():
						return nil
					}
				}
			}
			data = ""
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		default:
			// "id:" and "event:" lines duplicate fields already inside the
			// data payload; comments (":") are keep-alives.
		}
	}
	return nil
}
