package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"divot/internal/attest"
)

// attestServer is a minimal daemon answering POST /v1/attest with one
// accepted verdict per requested bus (whole-"fleet" = the one bus it owns).
// Each request holds the handler open briefly so concurrency is observable.
type attestServer struct {
	bus   string
	hold  time.Duration
	inUse *int32 // shared across the pack: live concurrent requests
	peak  *int32 // shared high-water mark
}

func (s attestServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost || r.URL.Path != "/v1/attest" {
		attest.WriteError(w, attest.CodeUnknownLink, "no route %s %s", r.Method, r.URL.Path)
		return
	}
	if s.inUse != nil {
		cur := atomic.AddInt32(s.inUse, 1)
		for {
			old := atomic.LoadInt32(s.peak)
			if cur <= old || atomic.CompareAndSwapInt32(s.peak, old, cur) {
				break
			}
		}
		defer atomic.AddInt32(s.inUse, -1)
	}
	if s.hold > 0 {
		time.Sleep(s.hold)
	}
	var req attest.AttestRequest
	json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req) //nolint:errcheck // empty body = whole fleet
	ids := req.Links
	if len(ids) == 0 {
		ids = []string{s.bus}
	}
	resp := attest.AttestResponse{AllAccepted: true}
	for _, id := range ids {
		resp.Results = append(resp.Results, attest.AuthReport{ID: id, Accepted: true, Score: 1, Health: "ok"})
	}
	attest.WriteData(w, http.StatusOK, resp)
}

// newPack builds n attestServer members named d0..dn-1 registered on m.
func newPack(t *testing.T, m *Multi, n int, hold time.Duration, inUse, peak *int32) []string {
	t.Helper()
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := "d" + string(rune('0'+i))
		srv := httptest.NewServer(attestServer{bus: "bus-" + name, hold: hold, inUse: inUse, peak: peak})
		t.Cleanup(srv.Close)
		c, err := New(srv.URL, WithRetryPolicy(fastRetry()))
		if err != nil {
			t.Fatal(err)
		}
		m.Set(name, c)
		names = append(names, name)
	}
	return names
}

// TestMultiAttestFanOut: every planned member answers exactly its planned
// buses; a planned name that is not a member reports ErrUnknownDaemon without
// disturbing the rest of the fan-out.
func TestMultiAttestFanOut(t *testing.T) {
	m := NewMulti(8)
	names := newPack(t, m, 3, 0, nil, nil)
	plan := map[string][]string{
		names[0]: {"a0", "a1"},
		names[1]: nil, // whole fleet
		names[2]: {"c0"},
		"ghost":  {"g0"},
	}
	out := m.Attest(context.Background(), plan)
	if len(out) != 4 {
		t.Fatalf("got %d outcomes, want 4", len(out))
	}
	if !errors.Is(out["ghost"].Err, ErrUnknownDaemon) {
		t.Errorf("ghost outcome err = %v, want ErrUnknownDaemon", out["ghost"].Err)
	}
	if o := out[names[0]]; o.Err != nil || len(o.Resp.Results) != 2 || o.Resp.Results[0].ID != "a0" {
		t.Errorf("%s outcome = %+v, want 2 verdicts starting at a0", names[0], o)
	}
	if o := out[names[1]]; o.Err != nil || len(o.Resp.Results) != 1 || o.Resp.Results[0].ID != "bus-"+names[1] {
		t.Errorf("%s outcome = %+v, want its own fleet", names[1], o)
	}
	if o := out[names[2]]; o.Err != nil || !o.Resp.AllAccepted {
		t.Errorf("%s outcome = %+v, want accepted c0", names[2], o)
	}
}

// TestMultiAttestPartialFailure: one member answering 503 yields a typed
// *APIError in its outcome while the others' verdicts come through — the
// aggregator above decides what partial means; Multi must not conflate them.
func TestMultiAttestPartialFailure(t *testing.T) {
	m := NewMulti(8)
	names := newPack(t, m, 2, 0, nil, nil)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attest.WriteError(w, attest.CodeUnavailable, "draining")
	}))
	t.Cleanup(bad.Close)
	bc, err := New(bad.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	m.Set("bad", bc)

	out := m.Attest(context.Background(), map[string][]string{
		names[0]: {"x"}, names[1]: {"y"}, "bad": {"z"},
	})
	var aerr *APIError
	if !errors.As(out["bad"].Err, &aerr) || aerr.Code != CodeUnavailable {
		t.Errorf("bad outcome err = %v, want *APIError %s", out["bad"].Err, CodeUnavailable)
	}
	for _, n := range names {
		if o := out[n]; o.Err != nil || !o.Resp.AllAccepted {
			t.Errorf("%s outcome = %+v, want clean verdict despite the failed peer", n, o)
		}
	}
}

// TestMultiBoundsInFlight: a fan-out across more members than the budget
// never holds more than maxInFlight requests open at once — the semaphore is
// what lets a federation aggregator front a large pack without a socket
// stampede.
func TestMultiBoundsInFlight(t *testing.T) {
	const budget = 2
	var inUse, peak int32
	m := NewMulti(budget)
	names := newPack(t, m, 6, 30*time.Millisecond, &inUse, &peak)

	plan := make(map[string][]string, len(names))
	for _, n := range names {
		plan[n] = nil
	}
	out := m.Attest(context.Background(), plan)
	for _, n := range names {
		if out[n].Err != nil {
			t.Fatalf("%s errored: %v", n, out[n].Err)
		}
	}
	if got := atomic.LoadInt32(&peak); got > budget {
		t.Errorf("peak concurrent requests = %d, want <= %d", got, budget)
	}
}

// TestMultiAttestHonorsContext: a cancelled context releases callers parked
// on the in-flight semaphore with the context error instead of deadlocking
// the fan-out.
func TestMultiAttestHonorsContext(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		attest.WriteData(w, http.StatusOK, attest.AttestResponse{AllAccepted: true})
	}))
	t.Cleanup(slow.Close)
	t.Cleanup(func() { once.Do(func() { close(release) }) })

	m := NewMulti(1)
	for _, n := range []string{"s0", "s1", "s2"} {
		c, err := New(slow.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}))
		if err != nil {
			t.Fatal(err)
		}
		m.Set(n, c)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	out := m.Attest(ctx, map[string][]string{"s0": nil, "s1": nil, "s2": nil})
	cancelled := 0
	for n, o := range out {
		if o.Err == nil {
			t.Errorf("%s returned no error under a cancelled context", n)
		} else if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	// With a budget of 1, at least the two parked callers must report the
	// context error (the in-flight one may fail with its own transport error).
	if cancelled < 2 {
		t.Errorf("%d outcomes carry context.Canceled, want >= 2", cancelled)
	}
	once.Do(func() { close(release) })
}

// TestMultiHealthFanOut: Health probes every member and attributes failures
// by name.
func TestMultiHealthFanOut(t *testing.T) {
	m := NewMulti(4)
	names := newPack(t, m, 2, 0, nil, nil)
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attest.WriteData(w, http.StatusOK, attest.HealthView{Status: "ok", Buses: 3, FleetOK: true})
	}))
	t.Cleanup(healthy.Close)
	hc, err := New(healthy.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	m.Set("h", hc)
	m.Delete(names[1])

	out := m.Health(context.Background())
	if len(out) != 2 {
		t.Fatalf("got %d outcomes, want 2 (deleted member not probed): %v", len(out), out)
	}
	if o := out["h"]; o.Err != nil || !o.View.FleetOK || o.View.Buses != 3 {
		t.Errorf("h outcome = %+v, want healthy view", o)
	}
	// names[0]'s attestServer has no /healthz route; the outcome must carry
	// an error attributed to that member, not poison "h".
	if out[names[0]].Err == nil {
		t.Errorf("%s has no /healthz yet reported none", names[0])
	}
}
