package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"divot/internal/attest"
)

// streamScript serves scripted SSE connections: connection i sends frames[i]
// (with heartbeats interleaved) and then either disconnects or holds the
// stream open until the client goes away. It records each connection's
// ?after value so tests can assert the resume protocol.
type streamScript struct {
	mu     sync.Mutex
	afters []uint64
	conns  int
	// script returns the events to send on connection n (0-based) and
	// whether to hold the stream open afterwards.
	script func(conn int) (events []Event, hold bool)
	srv    *httptest.Server
}

func newStreamScript(t *testing.T, script func(conn int) ([]Event, bool)) *streamScript {
	t.Helper()
	ss := &streamScript{script: script}
	ss.srv = httptest.NewServer(http.HandlerFunc(ss.serve))
	t.Cleanup(ss.srv.Close)
	return ss
}

func (ss *streamScript) serve(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/stream" {
		// This fake daemon predates the binary stream: the client's probe
		// gets a bare 404 and falls back to SSE. Not counted as a connection.
		http.NotFound(w, r)
		return
	}
	after := uint64(0)
	if raw := r.URL.Query().Get("after"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			attest.WriteError(w, attest.CodeBadRequest, "bad after=%q", raw)
			return
		}
		after = n
	}
	ss.mu.Lock()
	conn := ss.conns
	ss.conns++
	ss.afters = append(ss.afters, after)
	ss.mu.Unlock()
	events, hold := ss.script(conn)

	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	fmt.Fprintf(w, ": hb\n\n") // leading heartbeat, must be skipped
	fl.Flush()
	for _, ev := range events {
		raw := fmt.Sprintf(`{"seq":%d,"kind":%q,"link":%q}`, ev.Seq, ev.Kind, ev.Link)
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n: hb\n\n", ev.Seq, ev.Kind, raw)
		fl.Flush()
	}
	if hold {
		<-r.Context().Done()
	}
	// Returning severs the connection: a mid-stream disconnect from the
	// client's point of view.
}

func (ss *streamScript) seenAfters() []uint64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return append([]uint64(nil), ss.afters...)
}

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
}

func collectN(t *testing.T, w *Watch, n int) []Event {
	t.Helper()
	out := make([]Event, 0, n)
	deadline := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("stream closed after %d events, want %d (err: %v)", len(out), n, w.Err())
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out after %d events, want %d", len(out), n)
		}
	}
	return out
}

// TestWatchResumesAcrossDisconnects is the streaming acceptance test: the
// server drops the connection twice mid-stream; the watch must redial with
// ?after set to the last delivered sequence number and the consumer must see
// every event exactly once, in order, heartbeats invisible.
func TestWatchResumesAcrossDisconnects(t *testing.T) {
	ss := newStreamScript(t, func(conn int) ([]Event, bool) {
		switch conn {
		case 0:
			return []Event{{Seq: 1, Kind: "round", Link: "dimm0"}, {Seq: 2, Kind: "alert", Link: "dimm0"}, {Seq: 3, Kind: "gate", Link: "dimm0"}}, false
		case 1:
			// Overlap: the server's replay window may resend seq 3; the
			// watch must deduplicate it.
			return []Event{{Seq: 3, Kind: "gate", Link: "dimm0"}, {Seq: 4, Kind: "health", Link: "dimm0"}}, false
		default:
			return []Event{{Seq: 5, Kind: "round", Link: "dimm0"}}, true
		}
	})
	c, err := New(ss.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := c.Watch(ctx, "dimm0", WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectN(t, w, 5)
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want %d (dupes or gaps)", i, ev.Seq, i+1)
		}
	}
	if w.LastSeq() != 5 {
		t.Errorf("LastSeq = %d, want 5", w.LastSeq())
	}
	// Connect 0 starts fresh, connect 1 resumes past the first drop (seq 3
	// delivered), connect 2 past the second (seq 4 delivered).
	afters := ss.seenAfters()
	want := []uint64{0, 3, 4}
	if len(afters) != 3 || afters[0] != want[0] || afters[1] != want[1] || afters[2] != want[2] {
		t.Errorf("server saw after=%v, want %v (resume from last seen seq)", afters, want)
	}
	// Cancellation closes the channel and reports the context error.
	cancel()
	for range w.Events() {
	}
	if !errors.Is(w.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", w.Err())
	}
}

// TestWatchAfterOptionSkipsReplay: WatchOptions.After travels to the server
// on the first connection and pre-seeds the dedupe floor.
func TestWatchAfterOptionSkipsReplay(t *testing.T) {
	ss := newStreamScript(t, func(conn int) ([]Event, bool) {
		return []Event{{Seq: 7, Kind: "round", Link: "d"}, {Seq: 8, Kind: "alert", Link: "d"}}, true
	})
	c, err := New(ss.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := c.Watch(ctx, "d", WatchOptions{After: 7})
	if err != nil {
		t.Fatal(err)
	}
	got := collectN(t, w, 1)
	if got[0].Seq != 8 {
		t.Errorf("first delivered seq = %d, want 8 (7 is below the After floor)", got[0].Seq)
	}
	if afters := ss.seenAfters(); len(afters) != 1 || afters[0] != 7 {
		t.Errorf("server saw after=%v, want [7]", afters)
	}
}

// TestWatchUnknownLinkFailsFast: a 4xx on connect is the caller's mistake —
// Watch returns the structured error synchronously, no retries.
func TestWatchUnknownLinkFailsFast(t *testing.T) {
	conns := 0
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		conns++
		mu.Unlock()
		attest.WriteError(w, attest.CodeUnknownLink, "unknown bus %q", "ghost")
	}))
	t.Cleanup(srv.Close)
	c, err := New(srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Watch(context.Background(), "ghost", WatchOptions{})
	var aerr *APIError
	if !errors.As(err, &aerr) || aerr.Code != CodeUnknownLink {
		t.Fatalf("Watch err = %v, want *APIError with %s", err, CodeUnknownLink)
	}
	mu.Lock()
	defer mu.Unlock()
	if conns != 1 {
		t.Errorf("server saw %d connects, want 1 (4xx is terminal)", conns)
	}
}

// TestWatchConnectRetriesThrough5xx: a daemon mid-restart answers 503; the
// initial connect retries through it under the policy.
func TestWatchConnectRetriesThrough5xx(t *testing.T) {
	conns := 0
	var mu sync.Mutex
	ss := newStreamScript(t, func(conn int) ([]Event, bool) {
		return []Event{{Seq: 1, Kind: "round", Link: "d"}}, true
	})
	inner := ss.srv.Config.Handler
	ss.srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stream" {
			http.NotFound(w, r) // probe falls back to SSE; not a counted connection
			return
		}
		mu.Lock()
		n := conns
		conns++
		mu.Unlock()
		if n < 2 {
			attest.WriteError(w, attest.CodeUnavailable, "restarting")
			return
		}
		inner.ServeHTTP(w, r)
	})
	c, err := New(ss.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := c.Watch(ctx, "d", WatchOptions{})
	if err != nil {
		t.Fatalf("Watch through 503 burst: %v", err)
	}
	if got := collectN(t, w, 1); got[0].Seq != 1 {
		t.Errorf("delivered seq = %d, want 1", got[0].Seq)
	}
}

// TestWatchGivesUpWhenReconnectExhausts: after a disconnect, a server that
// stays down ends the watch with the transport error once the retry policy
// is exhausted — the channel closes instead of spinning forever.
func TestWatchGivesUpWhenReconnectExhausts(t *testing.T) {
	down := false
	var mu sync.Mutex
	ss := newStreamScript(t, func(conn int) ([]Event, bool) {
		return []Event{{Seq: 1, Kind: "round", Link: "d"}}, false
	})
	inner := ss.srv.Config.Handler
	ss.srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stream" {
			http.NotFound(w, r) // probe falls back to SSE; not a counted connection
			return
		}
		mu.Lock()
		d := down
		down = true // first connection streams, everything after is down
		mu.Unlock()
		if d {
			attest.WriteError(w, attest.CodeUnavailable, "gone")
			return
		}
		inner.ServeHTTP(w, r)
	})
	c, err := New(ss.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Watch(context.Background(), "d", WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectN(t, w, 1); got[0].Seq != 1 {
		t.Errorf("delivered seq = %d, want 1", got[0].Seq)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-w.Events():
			if !ok {
				var aerr *APIError
				if !errors.As(w.Err(), &aerr) || aerr.Code != CodeUnavailable {
					t.Fatalf("Err() = %v, want *APIError %s", w.Err(), CodeUnavailable)
				}
				return
			}
		case <-deadline:
			t.Fatal("watch never gave up on a dead server")
		}
	}
}

// TestWatchResumeGapFailsTyped: a Watch opened with After=R claims the
// server still holds event R+1. When the retention ring has evicted it — the
// first replayed event is beyond R+1 — the watch must end with a
// *ResumeGapError carrying the hole's bounds, delivering nothing, rather
// than silently skipping ahead.
func TestWatchResumeGapFailsTyped(t *testing.T) {
	ss := newStreamScript(t, func(conn int) ([]Event, bool) {
		// The ring's oldest survivor is seq 9; events 6..8 are gone.
		return []Event{{Seq: 9, Kind: "round", Link: "d"}, {Seq: 10, Kind: "alert", Link: "d"}}, true
	})
	c, err := New(ss.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Watch(context.Background(), "d", WatchOptions{After: 5})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-w.Events():
			if ok {
				t.Fatalf("delivered event seq %d across a resume gap", ev.Seq)
			}
			var gap *ResumeGapError
			if !errors.As(w.Err(), &gap) {
				t.Fatalf("Err() = %v, want *ResumeGapError", w.Err())
			}
			if gap.Resume != 5 || gap.Oldest != 9 {
				t.Errorf("gap = {Resume:%d Oldest:%d}, want {Resume:5 Oldest:9}", gap.Resume, gap.Oldest)
			}
			return
		case <-deadline:
			t.Fatal("watch never ended on a resume gap")
		}
	}
}

// TestWatchResumeGapAfterReconnect: the same continuity check guards the
// watch's own reconnects — events delivered before the disconnect arrive
// normally, then the gapped resume ends the feed instead of bridging the
// hole.
func TestWatchResumeGapAfterReconnect(t *testing.T) {
	ss := newStreamScript(t, func(conn int) ([]Event, bool) {
		if conn == 0 {
			return []Event{{Seq: 1, Kind: "round", Link: "d"}, {Seq: 2, Kind: "alert", Link: "d"}}, false
		}
		// By the time the watch redials with ?after=2, the ring starts at 10.
		return []Event{{Seq: 10, Kind: "round", Link: "d"}}, true
	})
	c, err := New(ss.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Watch(context.Background(), "d", WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectN(t, w, 2)
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("pre-disconnect seqs = [%d %d], want [1 2]", got[0].Seq, got[1].Seq)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-w.Events():
			if ok {
				t.Fatalf("delivered event seq %d across a resume gap", ev.Seq)
			}
			var gap *ResumeGapError
			if !errors.As(w.Err(), &gap) {
				t.Fatalf("Err() = %v, want *ResumeGapError", w.Err())
			}
			if gap.Resume != 2 || gap.Oldest != 10 {
				t.Errorf("gap = {Resume:%d Oldest:%d}, want {Resume:2 Oldest:10}", gap.Resume, gap.Oldest)
			}
			if afters := ss.seenAfters(); len(afters) != 2 || afters[1] != 2 {
				t.Errorf("server saw after=%v, want [0 2]", afters)
			}
			return
		case <-deadline:
			t.Fatal("watch never ended on a resume gap")
		}
	}
}

// TestWatchAfterZeroClaimsNothing: an After-less watch starts wherever the
// ring starts — a high first sequence number is not a gap.
func TestWatchAfterZeroClaimsNothing(t *testing.T) {
	ss := newStreamScript(t, func(conn int) ([]Event, bool) {
		return []Event{{Seq: 50, Kind: "round", Link: "d"}}, true
	})
	c, err := New(ss.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := c.Watch(ctx, "d", WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectN(t, w, 1); got[0].Seq != 50 {
		t.Errorf("delivered seq = %d, want 50", got[0].Seq)
	}
}

// TestWatchCloseEndsFeed: Close tears the stream down without an external
// context.
func TestWatchCloseEndsFeed(t *testing.T) {
	ss := newStreamScript(t, func(conn int) ([]Event, bool) {
		return []Event{{Seq: 1, Kind: "round", Link: "d"}}, true
	})
	c, err := New(ss.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Watch(context.Background(), "d", WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	collectN(t, w, 1)
	w.Close()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-w.Events():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("Events() never closed after Close")
		}
	}
}
