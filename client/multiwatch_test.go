package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"divot/internal/attest"
	"divot/internal/wire"
)

// binaryScript serves scripted binary /v1/stream connections, mirroring
// streamScript for the multiplexed transport. Connection i gets a Hello for
// the requested links, then frames[i], then holds or disconnects.
type binaryScript struct {
	mu    sync.Mutex
	subs  []wire.Subscribe
	conns int
	// script returns the frames (already encoded, Hello excluded) to send
	// on connection n and whether to hold the stream open afterwards.
	script func(conn int) (frames []byte, hold bool)
	srv    *httptest.Server
}

func newBinaryScript(t *testing.T, script func(conn int) ([]byte, bool)) *binaryScript {
	t.Helper()
	bs := &binaryScript{script: script}
	bs.srv = httptest.NewServer(http.HandlerFunc(bs.serve))
	t.Cleanup(bs.srv.Close)
	return bs
}

func (bs *binaryScript) serve(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/stream" {
		http.NotFound(w, r)
		return
	}
	sub, err := wire.ParseSubscribeRequest(r)
	if err != nil {
		attest.WriteError(w, attest.CodeBadRequest, "%v", err)
		return
	}
	bs.mu.Lock()
	conn := bs.conns
	bs.conns++
	bs.subs = append(bs.subs, sub)
	bs.mu.Unlock()
	frames, hold := bs.script(conn)

	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	hello, _ := json.Marshal(wire.Hello{Links: sub.Links})
	w.Write(wire.AppendFrame(nil, wire.FrameHello, hello))
	fl.Flush()
	if len(frames) > 0 {
		w.Write(frames)
		fl.Flush()
	}
	if hold {
		<-r.Context().Done()
	}
}

func (bs *binaryScript) seenSubs() []wire.Subscribe {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return append([]wire.Subscribe(nil), bs.subs...)
}

func eventFrames(evs ...Event) []byte {
	var buf []byte
	for _, ev := range evs {
		buf = wire.AppendEventFrame(buf, ev)
	}
	return buf
}

func gapFrame(g wire.Gap) []byte {
	raw, _ := json.Marshal(g)
	return wire.AppendFrame(nil, wire.FrameGap, raw)
}

func TestWatchMultiBinaryDeliversAndResumes(t *testing.T) {
	bs := newBinaryScript(t, func(conn int) ([]byte, bool) {
		switch conn {
		case 0:
			return eventFrames(
				Event{Seq: 1, Kind: "alert", Link: "a"},
				Event{Seq: 1, Kind: "gate", Link: "b"},
				Event{Seq: 2, Kind: "alert", Link: "a"},
			), false // disconnect mid-stream
		default:
			return eventFrames(
				Event{Seq: 2, Kind: "alert", Link: "a"}, // replay overlap: must dedupe
				Event{Seq: 3, Kind: "alert", Link: "a"},
				Event{Seq: 2, Kind: "gate", Link: "b"},
			), true
		}
	})
	c, err := New(bs.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mw, err := c.WatchMulti(ctx, WatchOptions{Links: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()

	var got []Event
	for len(got) < 5 {
		select {
		case ev, ok := <-mw.Events():
			if !ok {
				t.Fatalf("feed ended early (err=%v): %v", mw.Err(), got)
			}
			got = append(got, ev)
		case <-time.After(10 * time.Second):
			t.Fatalf("stalled at %v", got)
		}
	}
	want := []Event{
		{Seq: 1, Kind: "alert", Link: "a"},
		{Seq: 1, Kind: "gate", Link: "b"},
		{Seq: 2, Kind: "alert", Link: "a"},
		{Seq: 3, Kind: "alert", Link: "a"},
		{Seq: 2, Kind: "gate", Link: "b"},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if mw.LastSeq("a") != 3 || mw.LastSeq("b") != 2 {
		t.Fatalf("cursors = a:%d b:%d, want a:3 b:2", mw.LastSeq("a"), mw.LastSeq("b"))
	}

	// The reconnect must have carried both cursors as its resume map.
	subs := bs.seenSubs()
	if len(subs) != 2 {
		t.Fatalf("connections = %d, want 2", len(subs))
	}
	if subs[0].After != nil && len(subs[0].After) != 0 {
		t.Fatalf("first connection resume map = %v, want empty", subs[0].After)
	}
	if subs[1].After["a"] != 2 || subs[1].After["b"] != 1 {
		t.Fatalf("reconnect resume map = %v, want a:2 b:1", subs[1].After)
	}
}

func TestWatchMultiBinaryGapFailsTyped(t *testing.T) {
	bs := newBinaryScript(t, func(conn int) ([]byte, bool) {
		return gapFrame(wire.Gap{Link: "a", Resume: 5, Oldest: 9}), true
	})
	c, err := New(bs.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	mw, err := c.WatchMulti(context.Background(), WatchOptions{
		Links: []string{"a"}, AfterByLink: map[string]uint64{"a": 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	for range mw.Events() {
	}
	var gap *ResumeGapError
	if !errors.As(mw.Err(), &gap) {
		t.Fatalf("err = %v, want *ResumeGapError", mw.Err())
	}
	if gap.Link != "a" || gap.Resume != 5 || gap.Oldest != 9 {
		t.Fatalf("gap = %+v, want {a 5 9}", gap)
	}
}

func TestWatchMultiBinaryErrorFrameFailsTyped(t *testing.T) {
	bs := newBinaryScript(t, func(conn int) ([]byte, bool) {
		raw, _ := json.Marshal(wire.ErrorInfo{Code: attest.CodeUnknownLink, Message: "bus gone"})
		return wire.AppendFrame(nil, wire.FrameError, raw), true
	})
	c, err := New(bs.srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	mw, err := c.WatchMulti(context.Background(), WatchOptions{Links: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	for range mw.Events() {
	}
	var apiErr *APIError
	if !errors.As(mw.Err(), &apiErr) || apiErr.Code != attest.CodeUnknownLink {
		t.Fatalf("err = %v, want *APIError unknown_link", mw.Err())
	}
}

// TestStreamModeCachedAcrossWatches pins the negotiation contract: one probe
// per Client, not per Watch. After the first /v1/stream answers a bare 404,
// every later watch on the same Client goes straight to the SSE fallback.
func TestStreamModeCachedAcrossWatches(t *testing.T) {
	var mu sync.Mutex
	probes := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stream" {
			mu.Lock()
			probes++
			mu.Unlock()
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fl := w.(http.Flusher)
		fmt.Fprintf(w, "data: {\"seq\":1,\"kind\":\"round\",\"link\":\"d\"}\n\n")
		fl.Flush()
		<-r.Context().Done()
	}))
	defer srv.Close()

	c, err := New(srv.URL, WithRetryPolicy(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		w, err := c.Watch(context.Background(), "d", WatchOptions{})
		if err != nil {
			t.Fatalf("watch %d: %v", i, err)
		}
		select {
		case ev := <-w.Events():
			if ev.Seq != 1 {
				t.Fatalf("watch %d: seq = %d, want 1", i, ev.Seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("watch %d stalled", i)
		}
		w.Close()
		for range w.Events() {
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if probes != 1 {
		t.Fatalf("probes = %d, want 1 (mode must be cached on the Client)", probes)
	}
}
