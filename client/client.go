// Package client is the Go SDK for divotd's remote attestation API — the
// verifier side of the paper's §III protocol when it sits across a network
// from the monitored buses rather than on the same board.
//
// A Client speaks the versioned v1 wire protocol (envelope, error codes,
// DTOs — see the served API's documentation) over plain HTTP with pooled,
// reused connections. Every call takes a context; idempotent calls are
// retried on transport faults and 5xx/429 answers with capped exponential
// backoff, jitter, and a per-call retry budget. Watch subscribes to a bus's
// live event feed over server-sent events and transparently resumes from the
// last seen sequence number after a disconnect.
//
//	c, err := client.New("http://fleet-host:9720")
//	...
//	res, err := c.Attest(ctx)            // batch-attest the whole fleet
//	w, err := c.Watch(ctx, "dimm1", client.WatchOptions{})
//	for ev := range w.Events() { ... }   // live alert feed, auto-resumed
//
// POST /v1/attest is a read-only spot check on the daemon, so Attest is
// deliberately classified idempotent and retried; Authenticate (the
// per-bus POST) is kept un-retried as the conservative default for POSTs.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"divot/internal/attest"
)

// Wire DTO re-exports: the schema lives in internal/attest (shared with the
// daemon, so the two cannot drift); these aliases are the public names.
type (
	// HealthView is the fleet liveness summary (GET /healthz).
	HealthView = attest.HealthView
	// LinkSummary is one bus's monitoring snapshot (GET /v1/links).
	LinkSummary = attest.LinkSummary
	// Event is one bus-affecting protocol event (alert feed entries).
	Event = attest.Event
	// EventsResponse is one bus's retained event history.
	EventsResponse = attest.EventsResponse
	// AuthReport is one bus's attestation verdict.
	AuthReport = attest.AuthReport
	// AttestResponse is a batch attestation outcome.
	AttestResponse = attest.AttestResponse
	// LinkHealthView is one bus's per-endpoint condition (GET /v1/health).
	LinkHealthView = attest.LinkHealthView
	// FederatedAttestResponse is a divotherd aggregator's batch attestation
	// outcome: request-order results with shard attribution plus the
	// partial-failure envelope.
	FederatedAttestResponse = attest.FederatedAttestResponse
	// ShardStatus is one daemon's standing inside a federation.
	ShardStatus = attest.ShardStatus
	// ShardError is one failed shard's entry in a federated response.
	ShardError = attest.ShardError
	// DaemonHealth is one daemon's entry in a federated health rollup.
	DaemonHealth = attest.DaemonHealth
	// HerdHealthResponse is a divotherd aggregator's /v1/health rollup.
	HerdHealthResponse = attest.HerdHealthResponse
	// ReadyView is the warm-up progress report (GET /readyz).
	ReadyView = attest.ReadyView
	// HistorySample is one bus's per-round durable monitoring record.
	HistorySample = attest.HistorySample
	// HistoryResponse is one bus's retained score history.
	HistoryResponse = attest.HistoryResponse
)

// ErrUnknownDaemon reports a fan-out plan naming a daemon that is not a
// member of the Multi.
var ErrUnknownDaemon = errors.New("client: unknown daemon")

// Wire error codes (APIError.Code values).
const (
	CodeBadRequest    = attest.CodeBadRequest
	CodeUnknownLink   = attest.CodeUnknownLink
	CodeNotCalibrated = attest.CodeNotCalibrated
	CodeUnavailable   = attest.CodeUnavailable
	CodeInternal      = attest.CodeInternal
)

// APIError is a structured error answer from the daemon. Branch on Code —
// Status is transport decoration.
type APIError struct {
	// Status is the HTTP status the error travelled under.
	Status int
	// Code is the wire error code (Code* constants).
	Code string
	// Message is the human-readable detail.
	Message string
	// RetryAfter is the server's requested pause before the next attempt,
	// parsed from a Retry-After header (integer seconds); zero when the
	// server named none. Retrying calls honor it as a floor on the backoff.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("divotd: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// retryable reports whether the answer may succeed on another attempt:
// rate-limiting and server-side trouble are worth retrying, client mistakes
// (4xx) are not.
func (e *APIError) retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// RetryPolicy governs retries of idempotent calls. The zero value retries
// nothing; DefaultRetryPolicy is the production default.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per call (first attempt included).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles each
	// retry up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff.
	MaxDelay time.Duration
	// Jitter spreads each backoff uniformly by ±Jitter fraction (0..1), so
	// a fleet of recovering clients does not thundering-herd the daemon.
	Jitter float64
	// Budget caps the summed backoff per call; a retry whose delay would
	// exceed the remaining budget is not taken. 0 means no budget cap.
	Budget time.Duration
}

// DefaultRetryPolicy retries up to 4 attempts with 100ms→2s backoff, ±50%
// jitter, and a 10s per-call budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      0.5,
		Budget:      10 * time.Second,
	}
}

// Client is a remote attestation client. It is safe for concurrent use; all
// calls share one pooled HTTP transport.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	retry   RetryPolicy
	ua      string

	// streamMode caches the negotiated watch transport (streamMode*
	// constants): binary multiplexed /v1/stream when the daemon serves it,
	// legacy per-link SSE when it predates the endpoint.
	streamMode atomic.Int32

	// sleep and rnd are seams for deterministic retry tests.
	sleep func(ctx context.Context, d time.Duration) error
	rndMu sync.Mutex
	rnd   func() float64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (custom transport,
// TLS, proxies). The default uses a dedicated pooled transport.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTimeout sets the per-attempt timeout of unary calls (default 10s).
// Zero disables it — the call then runs until its context does. Streaming
// connections are exempt: a Watch lives until closed.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithRetryPolicy replaces the retry policy (DefaultRetryPolicy otherwise).
func WithRetryPolicy(p RetryPolicy) Option { return func(c *Client) { c.retry = p } }

// WithUserAgent sets the User-Agent header.
func WithUserAgent(ua string) Option { return func(c *Client) { c.ua = ua } }

// New builds a client for the daemon at baseURL (e.g. "http://host:9720").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q: want http:// or https://", baseURL)
	}
	c := &Client{
		base:    strings.TrimRight(u.String(), "/"),
		timeout: 10 * time.Second,
		retry:   DefaultRetryPolicy(),
		ua:      "divot-client/1",
		sleep:   sleepCtx,
		rnd:     rand.Float64,
	}
	for _, o := range opts {
		o(c)
	}
	if c.hc == nil {
		// A dedicated transport: connections to the daemon are kept alive
		// and reused across calls and across Watch reconnects.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 16
		c.hc = &http.Client{Transport: tr}
	}
	return c, nil
}

// Health fetches the fleet liveness summary.
func (c *Client) Health(ctx context.Context) (HealthView, error) {
	var out HealthView
	err := c.call(ctx, http.MethodGet, "/healthz", nil, true, &out)
	return out, err
}

// Links lists every bus's monitoring snapshot.
func (c *Client) Links(ctx context.Context) ([]LinkSummary, error) {
	var out attest.LinksResponse
	err := c.call(ctx, http.MethodGet, "/v1/links", nil, true, &out)
	return out.Links, err
}

// FleetHealth fetches the per-endpoint condition of every calibrated bus.
func (c *Client) FleetHealth(ctx context.Context) ([]LinkHealthView, error) {
	var out attest.FleetHealthResponse
	err := c.call(ctx, http.MethodGet, "/v1/health", nil, true, &out)
	return out.Links, err
}

// Alerts fetches one bus's retained event history, oldest first.
func (c *Client) Alerts(ctx context.Context, id string) ([]Event, error) {
	var out EventsResponse
	err := c.call(ctx, http.MethodGet, "/v1/links/"+url.PathEscape(id)+"/alerts", nil, true, &out)
	return out.Events, err
}

// Attest runs a batch remote attestation: one read-only spot check per named
// bus, or over the whole fleet when no ids are given. The call is idempotent
// on the daemon (no gate or alert state moves), so it is retried under the
// client's policy.
func (c *Client) Attest(ctx context.Context, ids ...string) (AttestResponse, error) {
	var out AttestResponse
	body, err := attestBody(ids)
	if err != nil {
		return out, err
	}
	err = c.call(ctx, http.MethodPost, "/v1/attest", body, true, &out)
	return out, err
}

func attestBody(ids []string) ([]byte, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	raw, err := json.Marshal(attest.AttestRequest{Links: ids})
	if err != nil {
		return nil, fmt.Errorf("client: encoding attest request: %w", err)
	}
	return raw, nil
}

// AttestFederated is Attest against a divotherd aggregator: the same
// request on the same route, decoded into the federated superset response
// (shard attribution per verdict, partial-failure envelope, per-shard
// status). Like Attest it is read-only and retried. Calling it against a
// plain divotd also works — Complete and the shard fields simply come back
// zero-valued, so callers should branch on len(Errors), not Complete, when
// the server kind is unknown.
func (c *Client) AttestFederated(ctx context.Context, ids ...string) (FederatedAttestResponse, error) {
	var out FederatedAttestResponse
	body, err := attestBody(ids)
	if err != nil {
		return out, err
	}
	err = c.call(ctx, http.MethodPost, "/v1/attest", body, true, &out)
	return out, err
}

// HerdHealth fetches a divotherd aggregator's federated health rollup:
// per-daemon liveness plus the merged per-bus health of every reachable
// shard.
func (c *Client) HerdHealth(ctx context.Context) (HerdHealthResponse, error) {
	var out HerdHealthResponse
	err := c.call(ctx, http.MethodGet, "/v1/health", nil, true, &out)
	return out, err
}

// Ready fetches the daemon's warm-up progress. Unlike every other route,
// /readyz answers 200 even while the fleet is still restoring or
// calibrating — poll it after starting or restarting a daemon and gate
// traffic on Ready being true.
func (c *Client) Ready(ctx context.Context) (ReadyView, error) {
	var out ReadyView
	err := c.call(ctx, http.MethodGet, "/readyz", nil, true, &out)
	return out, err
}

// History fetches one bus's retained per-round score history, oldest first.
// On a daemon with a state directory the samples survive restarts — the
// window is hydrated from the history WAL on boot.
func (c *Client) History(ctx context.Context, id string) ([]HistorySample, error) {
	var out HistoryResponse
	err := c.call(ctx, http.MethodGet, "/v1/links/"+url.PathEscape(id)+"/history", nil, true, &out)
	return out.Samples, err
}

// Authenticate spot-checks a single bus. Unlike Attest it is never retried —
// the conservative default for single-resource POSTs; callers wanting retry
// semantics should use Attest(ctx, id).
func (c *Client) Authenticate(ctx context.Context, id string) (AuthReport, error) {
	var out AuthReport
	err := c.call(ctx, http.MethodPost, "/v1/links/"+url.PathEscape(id)+"/authenticate", nil, false, &out)
	return out, err
}

// call runs one API call: at most MaxAttempts tries for idempotent calls,
// exponential backoff with jitter between tries, bounded by the retry
// budget. The context covers the whole call including backoff sleeps; the
// per-attempt timeout covers each individual HTTP exchange.
func (c *Client) call(ctx context.Context, method, path string, body []byte, idempotent bool, out any) error {
	var lastErr error
	var spent time.Duration
	for attempt := 0; ; attempt++ {
		lastErr = c.once(ctx, method, path, body, out)
		if lastErr == nil {
			return nil
		}
		if !idempotent || !c.shouldRetry(ctx, lastErr) || attempt+1 >= c.retry.MaxAttempts {
			return lastErr
		}
		d := c.backoff(attempt)
		// A warming or rate-limiting server knows its own timeline better
		// than our backoff curve does: its Retry-After is the floor.
		var aerr *APIError
		if errors.As(lastErr, &aerr) && aerr.RetryAfter > d {
			d = aerr.RetryAfter
		}
		if c.retry.Budget > 0 && spent+d > c.retry.Budget {
			return lastErr
		}
		spent += d
		if err := c.sleep(ctx, d); err != nil {
			return lastErr
		}
	}
}

// once runs a single HTTP exchange under the per-attempt timeout.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("User-Agent", c.ua)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("client: reading %s %s response: %w", method, path, err)
	}
	derr := decodeResponse(resp.StatusCode, raw, out)
	var aerr *APIError
	if errors.As(derr, &aerr) {
		aerr.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
	}
	return derr
}

// parseRetryAfter reads an integer-seconds Retry-After value; the HTTP-date
// form and anything malformed decode to zero (no server hint).
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// decodeResponse turns one HTTP answer into a payload or an *APIError.
func decodeResponse(status int, raw []byte, out any) error {
	if status >= 400 {
		if perr := attest.ParseBody(raw, nil); perr != nil {
			var werr *attest.Error
			if errors.As(perr, &werr) {
				return &APIError{Status: status, Code: werr.Code, Message: werr.Message}
			}
		}
		return &APIError{Status: status, Code: CodeInternal,
			Message: fmt.Sprintf("non-envelope answer: %.200s", raw)}
	}
	if err := attest.ParseBody(raw, out); err != nil {
		var werr *attest.Error
		if errors.As(err, &werr) {
			return &APIError{Status: status, Code: werr.Code, Message: werr.Message}
		}
		return fmt.Errorf("client: %w", err)
	}
	return nil
}

// shouldRetry classifies an attempt's failure. Transport faults and
// per-attempt timeouts (both surfacing as *url.Error) are retryable while
// the caller's context is still live; structured daemon answers delegate to
// the error's own classification; anything else — protocol version
// mismatches, undecodable payloads — is terminal, because retrying cannot
// change what the server speaks.
func (c *Client) shouldRetry(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false // the caller's context is done — nothing left to try
	}
	var aerr *APIError
	if errors.As(err, &aerr) {
		return aerr.retryable()
	}
	var uerr *url.Error
	return errors.As(err, &uerr)
}

// backoff computes the jittered delay before retry #attempt+1.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.retry.BaseDelay
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 0; i < attempt && d < c.retry.MaxDelay; i++ {
		d *= 2
	}
	if c.retry.MaxDelay > 0 && d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	if c.retry.Jitter > 0 {
		c.rndMu.Lock()
		u := c.rnd()
		c.rndMu.Unlock()
		d = time.Duration(float64(d) * (1 + c.retry.Jitter*(2*u-1)))
		if d < 0 {
			d = 0
		}
	}
	return d
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
