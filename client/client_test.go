package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"divot/internal/attest"
)

// flakyStep scripts one request's fate on the flaky server.
type flakyStep struct {
	drop       bool          // sever the connection without answering
	status     int           // HTTP status to answer (with an envelope body)
	retryAfter string        // Retry-After header on error answers
	delay      time.Duration // stall before answering
	data       any           // success payload (status < 400)
}

// flakyServer serves a scripted sequence of faults, then whatever the final
// step says for any further requests. It records every request line so tests
// can assert exactly what the client put on the wire.
type flakyServer struct {
	mu       sync.Mutex
	steps    []flakyStep
	requests []string
	srv      *httptest.Server
}

func newFlakyServer(t *testing.T, steps ...flakyStep) *flakyServer {
	t.Helper()
	fs := &flakyServer{steps: steps}
	fs.srv = httptest.NewServer(http.HandlerFunc(fs.serve))
	t.Cleanup(fs.srv.Close)
	return fs
}

func (fs *flakyServer) serve(w http.ResponseWriter, r *http.Request) {
	fs.mu.Lock()
	fs.requests = append(fs.requests, r.Method+" "+r.URL.RequestURI())
	step := fs.steps[0]
	if len(fs.steps) > 1 {
		fs.steps = fs.steps[1:]
	}
	fs.mu.Unlock()
	if step.delay > 0 {
		time.Sleep(step.delay)
	}
	switch {
	case step.drop:
		panic(http.ErrAbortHandler) // connection severed mid-exchange
	case step.status >= 400:
		w.Header().Set("Content-Type", "application/json")
		if step.retryAfter != "" {
			w.Header().Set("Retry-After", step.retryAfter)
		}
		w.WriteHeader(step.status)
		json.NewEncoder(w).Encode(attest.Envelope{ //nolint:errcheck
			V:     attest.Version,
			Error: &attest.Error{Code: attest.CodeInternal, Message: "scripted fault"},
		})
	default:
		attest.WriteData(w, http.StatusOK, step.data)
	}
}

func (fs *flakyServer) seen() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]string(nil), fs.requests...)
}

// newTestClient builds a client against the server with deterministic retry
// internals: recorded sleeps instead of real ones and a fixed rnd of 0.5,
// which makes the jitter factor exactly 1.
func newTestClient(t *testing.T, base string, p RetryPolicy) (*Client, *[]time.Duration) {
	t.Helper()
	c, err := New(base, WithRetryPolicy(p), WithTimeout(0))
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	var mu sync.Mutex
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	c.rnd = func() float64 { return 0.5 }
	return c, &slept
}

func testPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      0.5,
		Budget:      10 * time.Second,
	}
}

// TestAttestRecoversFromFaults drives Attest through a dropped connection
// and a 5xx burst to a success, asserting the exact attempt count and the
// exact exponential backoff schedule (jitter pinned to its midpoint).
func TestAttestRecoversFromFaults(t *testing.T) {
	want := AttestResponse{
		Results:     []AuthReport{{ID: "dimm0", Accepted: true, Score: 0.99, Health: "ok"}},
		AllAccepted: true,
	}
	fs := newFlakyServer(t,
		flakyStep{drop: true},
		flakyStep{status: 500},
		flakyStep{status: 500},
		flakyStep{data: want},
	)
	c, slept := newTestClient(t, fs.srv.URL, testPolicy())
	got, err := c.Attest(context.Background())
	if err != nil {
		t.Fatalf("Attest through faults: %v", err)
	}
	if len(got.Results) != 1 || got.Results[0] != want.Results[0] || !got.AllAccepted {
		t.Errorf("Attest = %+v, want %+v", got, want)
	}
	if reqs := fs.seen(); len(reqs) != 4 {
		t.Errorf("server saw %d requests, want 4: %v", len(reqs), reqs)
	}
	wantSleeps := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(*slept) != len(wantSleeps) {
		t.Fatalf("backoff schedule %v, want %v", *slept, wantSleeps)
	}
	for i, d := range wantSleeps {
		if (*slept)[i] != d {
			t.Errorf("backoff[%d] = %v, want %v", i, (*slept)[i], d)
		}
	}
}

// TestRetryStopsAtMaxAttempts pins the attempt ceiling: a server that never
// recovers costs exactly MaxAttempts requests and MaxAttempts-1 backoffs.
func TestRetryStopsAtMaxAttempts(t *testing.T) {
	fs := newFlakyServer(t, flakyStep{status: 500})
	p := testPolicy()
	p.MaxAttempts = 3
	c, slept := newTestClient(t, fs.srv.URL, p)
	_, err := c.Links(context.Background())
	var aerr *APIError
	if !errors.As(err, &aerr) || aerr.Status != 500 {
		t.Fatalf("err = %v, want *APIError with status 500", err)
	}
	if len(fs.seen()) != 3 {
		t.Errorf("server saw %d requests, want 3", len(fs.seen()))
	}
	if len(*slept) != 2 {
		t.Errorf("client slept %d times, want 2", len(*slept))
	}
}

// TestRetryBudgetCutsScheduleShort: a 250ms budget admits the 100ms backoff
// but not the following 200ms one, so the call returns after two attempts
// even though MaxAttempts allows five.
func TestRetryBudgetCutsScheduleShort(t *testing.T) {
	fs := newFlakyServer(t, flakyStep{status: 500})
	p := testPolicy()
	p.Budget = 250 * time.Millisecond
	c, slept := newTestClient(t, fs.srv.URL, p)
	_, err := c.Links(context.Background())
	if err == nil {
		t.Fatal("want error after budget exhaustion")
	}
	if n := len(fs.seen()); n != 2 {
		t.Errorf("server saw %d requests, want 2 (budget cuts the third)", n)
	}
	if len(*slept) != 1 || (*slept)[0] != 100*time.Millisecond {
		t.Errorf("sleeps = %v, want [100ms]", *slept)
	}
}

// TestAuthenticateNeverRetries: the non-idempotent POST takes its failure at
// face value even when a retry would have succeeded.
func TestAuthenticateNeverRetries(t *testing.T) {
	fs := newFlakyServer(t,
		flakyStep{status: 500},
		flakyStep{data: AuthReport{ID: "dimm0", Accepted: true}},
	)
	c, slept := newTestClient(t, fs.srv.URL, testPolicy())
	_, err := c.Authenticate(context.Background(), "dimm0")
	var aerr *APIError
	if !errors.As(err, &aerr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if n := len(fs.seen()); n != 1 {
		t.Errorf("server saw %d requests, want exactly 1 (no retry on POST authenticate)", n)
	}
	if len(*slept) != 0 {
		t.Errorf("client slept %v, want no backoff", *slept)
	}
}

// TestClientErrorsAreTerminal: 4xx answers are the caller's mistake, not a
// transient — no retry, and the structured code surfaces.
func TestClientErrorsAreTerminal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attest.WriteError(w, attest.CodeUnknownLink, "unknown bus %q", "ghost")
	}))
	t.Cleanup(srv.Close)
	reqs := 0
	c, slept := newTestClient(t, srv.URL, testPolicy())
	c.hc.Transport = countingTransport{rt: c.hc.Transport, n: &reqs}
	_, err := c.Alerts(context.Background(), "ghost")
	var aerr *APIError
	if !errors.As(err, &aerr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if aerr.Code != CodeUnknownLink || aerr.Status != http.StatusNotFound {
		t.Errorf("APIError = %+v, want code=%s status=404", aerr, CodeUnknownLink)
	}
	if reqs != 1 {
		t.Errorf("transport saw %d requests, want 1", reqs)
	}
	if len(*slept) != 0 {
		t.Errorf("client slept %v, want no backoff", *slept)
	}
}

type countingTransport struct {
	rt http.RoundTripper
	n  *int
}

func (c countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	*c.n++
	return c.rt.RoundTrip(r)
}

// TestSlowServerPerAttemptTimeout: an attempt that outlives the per-attempt
// timeout is abandoned and retried; the overall call still succeeds because
// the caller's context is alive.
func TestSlowServerPerAttemptTimeout(t *testing.T) {
	fs := newFlakyServer(t,
		flakyStep{delay: 300 * time.Millisecond, data: HealthView{Status: "late"}},
		flakyStep{data: HealthView{Status: "ok", FleetOK: true}},
	)
	c, err := New(fs.srv.URL, WithTimeout(50*time.Millisecond),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	hv, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health with slow first attempt: %v", err)
	}
	if hv.Status != "ok" || !hv.FleetOK {
		t.Errorf("Health = %+v, want the second (fast) answer", hv)
	}
	if n := len(fs.seen()); n != 2 {
		t.Errorf("server saw %d requests, want 2", n)
	}
}

// TestCallerCancellationIsTerminal: once the caller's context dies nothing
// is retried, regardless of policy headroom.
func TestCallerCancellationIsTerminal(t *testing.T) {
	fs := newFlakyServer(t, flakyStep{status: 500})
	c, slept := newTestClient(t, fs.srv.URL, testPolicy())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Links(ctx)
	if err == nil {
		t.Fatal("want error under a dead context")
	}
	if len(*slept) != 0 {
		t.Errorf("client slept %v under a dead context", *slept)
	}
}

// TestAttestSendsRequestBody pins the wire form of a targeted attest: a JSON
// AttestRequest, and no body at all for the whole-fleet form.
func TestAttestSendsRequestBody(t *testing.T) {
	var mu sync.Mutex
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(raw))
		mu.Unlock()
		attest.WriteData(w, http.StatusOK, AttestResponse{AllAccepted: true})
	}))
	t.Cleanup(srv.Close)
	c, _ := newTestClient(t, srv.URL, testPolicy())
	if _, err := c.Attest(context.Background(), "dimm1", "dimm0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attest(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var req attest.AttestRequest
	if err := json.Unmarshal([]byte(bodies[0]), &req); err != nil {
		t.Fatalf("targeted attest body %q: %v", bodies[0], err)
	}
	if len(req.Links) != 2 || req.Links[0] != "dimm1" || req.Links[1] != "dimm0" {
		t.Errorf("targeted attest named %v, want [dimm1 dimm0] in order", req.Links)
	}
	if bodies[1] != "" {
		t.Errorf("whole-fleet attest sent body %q, want empty", bodies[1])
	}
}

// TestFutureProtocolVersionRejected: a v2 envelope must fail loudly, not be
// half-decoded.
func TestFutureProtocolVersionRejected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"v": 2, "data": {}}`)) //nolint:errcheck
	}))
	t.Cleanup(srv.Close)
	c, slept := newTestClient(t, srv.URL, testPolicy())
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("want protocol version error")
	}
	if len(*slept) != 0 {
		t.Errorf("version mismatch was retried (%v); it is not transient", *slept)
	}
}

// TestBackoffCapAndJitterRange: the schedule caps at MaxDelay and jitter
// keeps every delay inside [d*(1-J), d*(1+J)].
func TestBackoffCapAndJitterRange(t *testing.T) {
	c, err := New("http://127.0.0.1:1", WithRetryPolicy(RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
		Jitter:      0.5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0.0; u < 1.0; u += 0.25 {
		uu := u
		c.rnd = func() float64 { return uu }
		for attempt := 0; attempt < 8; attempt++ {
			base := 100 * time.Millisecond << attempt
			if base > 400*time.Millisecond {
				base = 400 * time.Millisecond
			}
			d := c.backoff(attempt)
			lo := time.Duration(float64(base) * 0.5)
			hi := time.Duration(float64(base) * 1.5)
			if d < lo || d > hi {
				t.Errorf("backoff(%d) with u=%.2f = %v, want in [%v, %v]", attempt, uu, d, lo, hi)
			}
		}
	}
}

func TestNewRejectsBadBaseURL(t *testing.T) {
	for _, bad := range []string{"ftp://x", "://", "not a url at all\x00"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted a bad base URL", bad)
		}
	}
	if c, err := New("http://host:9720/"); err != nil || c.base != "http://host:9720" {
		t.Errorf("New trailing slash: c.base=%q err=%v", c.base, err)
	}
}

// TestRetryAfterFloorsBackoff: a warming daemon answers 503 with
// Retry-After: 2, which must floor the client's own 100ms/200ms backoff
// steps — the server knows its warm-up timeline better than our curve does.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	fs := newFlakyServer(t,
		flakyStep{status: 503, retryAfter: "2"},
		flakyStep{status: 503, retryAfter: "2"},
		flakyStep{data: attest.LinksResponse{Links: []LinkSummary{{ID: "dimm0"}}}},
	)
	c, slept := newTestClient(t, fs.srv.URL, testPolicy())
	links, err := c.Links(context.Background())
	if err != nil {
		t.Fatalf("Links through warm-up: %v", err)
	}
	if len(links) != 1 || links[0].ID != "dimm0" {
		t.Errorf("Links = %+v", links)
	}
	want := []time.Duration{2 * time.Second, 2 * time.Second}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Errorf("sleeps = %v, want %v (Retry-After floors the backoff)", *slept, want)
	}
}

// TestRetryAfterSurfacesOnAPIError: a terminal failure hands the caller the
// server's pause hint; malformed and missing headers decode to zero.
func TestRetryAfterSurfacesOnAPIError(t *testing.T) {
	fs := newFlakyServer(t, flakyStep{status: 503, retryAfter: "7"})
	p := testPolicy()
	p.MaxAttempts = 1
	c, _ := newTestClient(t, fs.srv.URL, p)
	_, err := c.Links(context.Background())
	var aerr *APIError
	if !errors.As(err, &aerr) || aerr.RetryAfter != 7*time.Second {
		t.Fatalf("err = %v, want APIError with RetryAfter=7s", err)
	}
	for v, want := range map[string]time.Duration{
		"":    0,
		"bad": 0,
		"-3":  0,
		" 2 ": 2 * time.Second,
	} {
		if got := parseRetryAfter(v); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", v, got, want)
		}
	}
}

// TestReadyAndHistory covers the two durability-era reads: /readyz progress
// and a bus's persisted score history.
func TestReadyAndHistory(t *testing.T) {
	samples := []HistorySample{
		{Round: 1, Score: 0.97, Health: "ok", Reaction: "normal", Verdict: "ok"},
		{Round: 2, Score: 0.31, Health: "suspect", Reaction: "degraded", Verdict: "auth-failure"},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			attest.WriteData(w, http.StatusOK, ReadyView{Ready: false, Calibrated: 12, WarmLoaded: 3, Total: 1000})
		case "/v1/links/dimm 1/history":
			attest.WriteData(w, http.StatusOK, HistoryResponse{Link: "dimm 1", Samples: samples})
		default:
			attest.WriteError(w, attest.CodeUnknownLink, "unknown bus")
		}
	}))
	t.Cleanup(srv.Close)
	c, _ := newTestClient(t, srv.URL, testPolicy())

	rv, err := c.Ready(context.Background())
	if err != nil {
		t.Fatalf("Ready: %v", err)
	}
	if rv.Ready || rv.Calibrated != 12 || rv.WarmLoaded != 3 || rv.Total != 1000 {
		t.Errorf("Ready = %+v", rv)
	}

	got, err := c.History(context.Background(), "dimm 1") // exercises path escaping too
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(got) != 2 || got[0] != samples[0] || got[1] != samples[1] {
		t.Errorf("History = %+v, want %+v", got, samples)
	}

	_, err = c.History(context.Background(), "ghost")
	var aerr *APIError
	if !errors.As(err, &aerr) || aerr.Code != CodeUnknownLink {
		t.Errorf("unknown bus history err = %v, want %s", err, CodeUnknownLink)
	}
}
