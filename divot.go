// Package divot is a behavioral implementation of DIVOT — "Detecting
// Impedance Variations Of Transmission-lines" (Xu et al., ISCA 2020) — a bus
// authentication and anti-probing architecture that extends the hardware
// trusted computing base beyond the CPU chip.
//
// Every transmission line carries a unique, unclonable Impedance
// Inhomogeneity Pattern (IIP). DIVOT measures it at runtime, concurrently
// with normal data transfers, using an integrated time-domain reflectometer
// (iTDR) built from three ideas: analog-to-probability conversion (a 1-bit
// comparator plus counters instead of an ADC), probability density
// modulation (a Vernier triangle reference that widens the dynamic range),
// and equivalent time sampling (PLL phase stepping for >80 GHz equivalent
// rates). Matching the measured IIP against an enrolled fingerprint
// authenticates both ends of a bus and exposes physical attacks — chip
// replacement, cold-boot module theft, wire taps, and non-contact magnetic
// probes — which all leave a detectable, localizable dent in the IIP.
//
// The package offers three levels of use:
//
//   - System/Link: create protected buses, calibrate them, run monitoring
//     rounds, and mount attack scenarios (the §III protocol).
//   - MemorySystem: the full Fig. 6 example design — a DDR-style memory
//     controller and SDRAM device whose command and column-access paths are
//     gated by two-way DIVOT authentication, on a discrete-event timeline.
//   - The re-exported building blocks (fingerprinting, iTDR configuration,
//     attacks, baseline detectors) for custom experiments.
//
// The physical layer is a first-order reflection simulation of segmented
// transmission lines; see DESIGN.md for the substitutions made for the
// paper's FPGA/PCB prototype and EXPERIMENTS.md for reproduced results.
package divot

import (
	"fmt"
	"sort"

	"divot/internal/core"
	"divot/internal/rng"
	"divot/internal/txline"
)

// Config bundles every tunable of a DIVOT deployment. The zero value is not
// usable; start from DefaultConfig.
//
// Engine.Parallelism is the system's single parallelism knob: it bounds the
// worker goroutines of MonitorAll's link fan-out, MultiLink wire fan-out,
// and the ETS-bin fan-out inside each measurement. 0 (the default) uses one
// worker per CPU; 1 runs fully sequentially; every setting produces
// bit-identical results.
type Config struct {
	// Engine is the endpoint configuration: iTDR parameters, fingerprint
	// pipeline, thresholds, enrollment depth.
	Engine core.Config
	// Line is the physical description of the buses the system builds.
	Line txline.Config
}

// DefaultConfig mirrors the paper's prototype: a 25 cm, 50 Ω PCB lane probed
// at 156.25 MHz with 11.16 ps ETS steps.
func DefaultConfig() Config {
	return Config{Engine: core.DefaultConfig(), Line: txline.DefaultConfig()}
}

// System is a fleet of DIVOT-protected links sharing one random universe —
// the manufacturing lottery, instrument noise, and environments of all its
// lines derive from the system seed, so experiments are reproducible.
type System struct {
	cfg    Config
	stream *rng.Stream
	links  map[string]*Link
}

// NewSystem creates a system rooted at the given seed.
func NewSystem(seed uint64, cfg Config) *System {
	return &System{cfg: cfg, stream: rng.New(seed), links: make(map[string]*Link)}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// NewLink manufactures a fresh protected bus. Each id yields an independent
// intrinsic IIP; reusing an id is an error.
func (s *System) NewLink(id string) (*Link, error) {
	if _, dup := s.links[id]; dup {
		return nil, fmt.Errorf("divot: link %q already exists", id)
	}
	inner, err := core.NewLink(id, s.cfg.Engine, s.cfg.Line, s.stream.Child("link-"+id))
	if err != nil {
		return nil, err
	}
	l := &Link{Link: inner, sys: s}
	s.links[id] = l
	return l, nil
}

// MustNewLink is NewLink for static setups; it panics on error.
func (s *System) MustNewLink(id string) *Link {
	l, err := s.NewLink(id)
	if err != nil {
		panic(err)
	}
	return l
}

// NewMultiLink manufactures a protected bus of n wires whose fused gates
// require every wire to authenticate (§IV-C's multi-wire direction).
func (s *System) NewMultiLink(id string, n int) (*MultiLink, error) {
	if _, dup := s.links[id]; dup {
		return nil, fmt.Errorf("divot: link %q already exists", id)
	}
	m, err := core.NewMultiLink(id, s.cfg.Engine, s.cfg.Line, n, s.stream.Child("multilink-"+id))
	if err != nil {
		return nil, err
	}
	s.links[id] = nil // reserve the id
	return m, nil
}

// Stream derives a labelled random stream from the system seed, for
// experiment code that needs auxiliary randomness (attack parameters,
// traffic).
func (s *System) Stream(label string) *rng.Stream { return s.stream.Child(label) }

// LinkAlerts pairs a link's id with the alerts one monitoring round raised
// on it (empty when the link stayed clean).
type LinkAlerts struct {
	ID     string
	Alerts []core.Alert
}

// MonitorAll runs one monitoring round on every calibrated single link of
// the system, fanning links across the engine's Parallelism workers
// (Config.Engine.Parallelism; 0 = one worker per CPU). Links own disjoint
// instruments and random streams, so the outcome is bit-identical to
// monitoring each link in id order — the knob trades wall-clock only.
// Results come back sorted by link id. Multi-wire buses created with
// NewMultiLink are monitored through their own MonitorOnce and are not
// included here.
func (s *System) MonitorAll() []LinkAlerts {
	ids := make([]string, 0, len(s.links))
	for id, l := range s.links {
		if l != nil { // nil entries reserve multi-link ids
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	links := make([]*core.Link, len(ids))
	for i, id := range ids {
		links[i] = s.links[id].Link
	}
	alerts := core.MonitorAll(links, s.cfg.Engine.Parallelism)
	out := make([]LinkAlerts, len(ids))
	for i, id := range ids {
		out[i] = LinkAlerts{ID: id, Alerts: alerts[i]}
	}
	return out
}

// Link is one DIVOT-protected bus. It embeds the core engine link, so the
// full §III protocol (Calibrate, MonitorOnce, MonitorN, gates, alerts) is
// available directly, plus convenience helpers below.
type Link struct {
	*core.Link
	sys *System
}

// Authenticate runs a single measurement round and reports whether the
// CPU-side view of the bus is clean, without touching gates or alert state —
// a read-only spot check. A swapped same-model module may keep the bus-wide
// similarity high while showing a localized error peak at the load
// (Fig. 9b/c), so both an authentication mismatch and a tamper signature
// count as rejection.
func (l *Link) Authenticate() AuthResult {
	alerts := l.snapshotMonitor()
	res := AuthResult{Accepted: true, Score: 1}
	for _, a := range alerts {
		if a.Side != core.SideCPU {
			continue
		}
		res.Accepted = false
		switch a.Kind {
		case core.AlertAuthFailure:
			res.Score = a.Score
		case core.AlertTamper:
			res.Tampered = true
			res.TamperPosition = a.Position
		}
	}
	return res
}

// AuthResult is a spot-check outcome.
type AuthResult struct {
	// Accepted is true only when the measurement matched the enrollment
	// with no tamper signature.
	Accepted bool
	// Score is the similarity (1 when no auth mismatch occurred).
	Score float64
	// Tampered indicates a localized IIP change at TamperPosition meters.
	Tampered       bool
	TamperPosition float64
}

// snapshotMonitor runs MonitorOnce and rolls back gate/alert side effects,
// leaving only the measurement consumed.
func (l *Link) snapshotMonitor() []core.Alert {
	cpuGate := l.CPU.Gate.Authorized()
	modGate := l.Module.Gate.Authorized()
	before := len(l.Alerts)
	alerts := l.MonitorOnce()
	l.Alerts = l.Alerts[:before]
	l.CPU.Gate.Set(cpuGate)
	l.Module.Gate.Set(modGate)
	return alerts
}
