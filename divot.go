// Package divot is a behavioral implementation of DIVOT — "Detecting
// Impedance Variations Of Transmission-lines" (Xu et al., ISCA 2020) — a bus
// authentication and anti-probing architecture that extends the hardware
// trusted computing base beyond the CPU chip.
//
// Every transmission line carries a unique, unclonable Impedance
// Inhomogeneity Pattern (IIP). DIVOT measures it at runtime, concurrently
// with normal data transfers, using an integrated time-domain reflectometer
// (iTDR) built from three ideas: analog-to-probability conversion (a 1-bit
// comparator plus counters instead of an ADC), probability density
// modulation (a Vernier triangle reference that widens the dynamic range),
// and equivalent time sampling (PLL phase stepping for >80 GHz equivalent
// rates). Matching the measured IIP against an enrolled fingerprint
// authenticates both ends of a bus and exposes physical attacks — chip
// replacement, cold-boot module theft, wire taps, and non-contact magnetic
// probes — which all leave a detectable, localizable dent in the IIP.
//
// The package offers three levels of use:
//
//   - System/Link: create protected buses, calibrate them, run monitoring
//     rounds, and mount attack scenarios (the §III protocol).
//   - MemorySystem: the full Fig. 6 example design — a DDR-style memory
//     controller and SDRAM device whose command and column-access paths are
//     gated by two-way DIVOT authentication, on a discrete-event timeline.
//   - The re-exported building blocks (fingerprinting, iTDR configuration,
//     attacks, baseline detectors) for custom experiments.
//
// The physical layer is a first-order reflection simulation of segmented
// transmission lines; see DESIGN.md for the substitutions made for the
// paper's FPGA/PCB prototype and EXPERIMENTS.md for reproduced results.
package divot

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"divot/internal/core"
	"divot/internal/rng"
	"divot/internal/txline"
)

// Config bundles every tunable of a DIVOT deployment. The zero value is not
// usable; start from DefaultConfig.
//
// Engine.Parallelism is the system's single parallelism knob: it bounds the
// worker goroutines of MonitorAll's link fan-out, MultiLink wire fan-out,
// and the ETS-bin fan-out inside each measurement. 0 (the default) uses one
// worker per CPU; 1 runs fully sequentially; every setting produces
// bit-identical results.
type Config struct {
	// Engine is the endpoint configuration: iTDR parameters, fingerprint
	// pipeline, thresholds, enrollment depth.
	Engine core.Config
	// Line is the physical description of the buses the system builds.
	Line txline.Config
}

// DefaultConfig mirrors the paper's prototype: a 25 cm, 50 Ω PCB lane probed
// at 156.25 MHz with 11.16 ps ETS steps.
func DefaultConfig() Config {
	return Config{Engine: core.DefaultConfig(), Line: txline.DefaultConfig()}
}

// System is a fleet of DIVOT-protected links sharing one random universe —
// the manufacturing lottery, instrument noise, and environments of all its
// lines derive from the system seed, so experiments are reproducible.
type System struct {
	cfg    Config
	stream *rng.Stream
	links  map[string]*Link
	multis map[string]*MultiLink
	// sink, when non-nil, receives telemetry from every bus of the system
	// (see SetSink in telemetry.go).
	sink TelemetrySink
}

// NewSystem creates a system rooted at the given seed.
func NewSystem(seed uint64, cfg Config) *System {
	return &System{
		cfg:    cfg,
		stream: rng.New(seed),
		links:  make(map[string]*Link),
		multis: make(map[string]*MultiLink),
	}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// taken reports whether an id names any bus in the system — single links and
// multi-wire buses share one namespace.
func (s *System) taken(id string) bool {
	_, single := s.links[id]
	_, multi := s.multis[id]
	return single || multi
}

// NewLink manufactures a fresh protected bus. Each id yields an independent
// intrinsic IIP; reusing an id is an error.
func (s *System) NewLink(id string) (*Link, error) {
	if s.taken(id) {
		return nil, fmt.Errorf("divot: link %q already exists", id)
	}
	inner, err := core.NewLink(id, s.cfg.Engine, s.cfg.Line, s.stream.Child("link-"+id))
	if err != nil {
		return nil, err
	}
	if s.sink != nil {
		inner.SetSink(s.sink)
	}
	l := &Link{Link: inner, sys: s}
	s.links[id] = l
	return l, nil
}

// MustNewLink is NewLink for static setups; it panics on error.
//
// Prefer NewLink with an explicit error return in anything beyond a fixed
// test fixture: the only failure modes (duplicate id, invalid configuration)
// are exactly the ones long-running services want to surface as errors
// rather than crashes. MustNewLink is soft-deprecated — it stays for
// compact examples but gains no new call sites in this repository.
func (s *System) MustNewLink(id string) *Link {
	l, err := s.NewLink(id)
	if err != nil {
		panic(err)
	}
	return l
}

// NewMultiLink manufactures a protected bus of n wires whose fused gates
// require every wire to authenticate (§IV-C's multi-wire direction). The bus
// registers under the same id namespace as single links and participates in
// MonitorAll and HealthAll.
func (s *System) NewMultiLink(id string, n int) (*MultiLink, error) {
	if s.taken(id) {
		return nil, fmt.Errorf("divot: link %q already exists", id)
	}
	m, err := core.NewMultiLink(id, s.cfg.Engine, s.cfg.Line, n, s.stream.Child("multilink-"+id))
	if err != nil {
		return nil, err
	}
	if s.sink != nil {
		m.SetSink(s.sink)
	}
	s.multis[id] = m
	return m, nil
}

// Link returns the single link registered under id, if any.
func (s *System) Link(id string) (*Link, bool) {
	l, ok := s.links[id]
	return l, ok
}

// MultiLink returns the multi-wire bus registered under id, if any.
func (s *System) MultiLink(id string) (*MultiLink, bool) {
	m, ok := s.multis[id]
	return m, ok
}

// Stream derives a labelled random stream from the system seed, for
// experiment code that needs auxiliary randomness (attack parameters,
// traffic).
func (s *System) Stream(label string) *rng.Stream { return s.stream.Child(label) }

// SkipReason says why MonitorAll ran no round on a bus. It is a string-typed
// enum so the JSON form stays the familiar human-readable string while Go
// code can switch on the constants below.
type SkipReason string

const (
	// SkipNone: the bus was not skipped.
	SkipNone SkipReason = ""
	// SkipNotCalibrated: the bus has no enrollment to monitor against.
	SkipNotCalibrated SkipReason = "not calibrated"
	// SkipCancelled: the MonitorAllCtx context was done before this bus's
	// round started.
	SkipCancelled SkipReason = "cancelled"
)

// String returns the reason's wire form.
func (r SkipReason) String() string { return string(r) }

// LinkAlerts pairs a bus id with the alerts one monitoring round raised on
// it (empty when the bus stayed clean). A bus the round could not monitor is
// returned with Skipped set and the Reason stated instead of being silently
// dropped.
type LinkAlerts struct {
	ID     string
	Alerts []core.Alert
	// Skipped reports that no monitoring round ran on this bus; Reason says
	// why.
	Skipped bool
	Reason  SkipReason
}

// MonitorAll runs one monitoring round on every bus of the system — single
// links fan out across the engine's Parallelism workers
// (Config.Engine.Parallelism; 0 = one worker per CPU), multi-wire buses run
// their fused round with the same internal fan-out. Buses own disjoint
// instruments and random streams, so the outcome is bit-identical to
// monitoring each in id order — the knob trades wall-clock only. Results
// come back sorted by bus id; uncalibrated buses are reported as Skipped.
// Protocol errors (lost enrollment) are joined into the returned error, with
// the healthy buses' rounds unaffected.
func (s *System) MonitorAll() ([]LinkAlerts, error) {
	return s.MonitorAllCtx(context.Background())
}

// MonitorAllCtx is MonitorAll with cooperative cancellation: once ctx is
// done, buses whose round has not started are reported as Skipped with
// SkipCancelled (in-flight rounds complete — an interrupted round would
// desynchronize an endpoint's robustness state), and ctx's error is joined
// into the returned error.
func (s *System) MonitorAllCtx(ctx context.Context) ([]LinkAlerts, error) {
	singleIDs := make([]string, 0, len(s.links))
	for id := range s.links {
		if s.links[id].Calibrated() {
			singleIDs = append(singleIDs, id)
		}
	}
	sort.Strings(singleIDs)
	links := make([]*core.Link, len(singleIDs))
	for i, id := range singleIDs {
		links[i] = s.links[id].Link
	}
	alerts, ran, err := core.MonitorAllCtx(ctx, links, s.cfg.Engine.Parallelism)
	errs := []error{err}

	byID := make(map[string]LinkAlerts, len(s.links)+len(s.multis))
	for i, id := range singleIDs {
		if !ran[i] {
			byID[id] = LinkAlerts{ID: id, Skipped: true, Reason: SkipCancelled}
			continue
		}
		byID[id] = LinkAlerts{ID: id, Alerts: alerts[i]}
	}
	for id, l := range s.links {
		if !l.Calibrated() {
			byID[id] = LinkAlerts{ID: id, Skipped: true, Reason: SkipNotCalibrated}
		}
	}
	// Multi-wire buses run in sorted id order so the telemetry stream is the
	// same on every run, not subject to map iteration order.
	multiIDs := make([]string, 0, len(s.multis))
	for id := range s.multis {
		multiIDs = append(multiIDs, id)
	}
	sort.Strings(multiIDs)
	for _, id := range multiIDs {
		m := s.multis[id]
		if !m.Calibrated() {
			byID[id] = LinkAlerts{ID: id, Skipped: true, Reason: SkipNotCalibrated}
			continue
		}
		if ctx.Err() != nil {
			byID[id] = LinkAlerts{ID: id, Skipped: true, Reason: SkipCancelled}
			continue
		}
		a, err := m.MonitorOnce()
		errs = append(errs, err)
		byID[id] = LinkAlerts{ID: id, Alerts: a}
	}

	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]LinkAlerts, len(ids))
	for i, id := range ids {
		out[i] = byID[id]
	}
	return out, errors.Join(errs...)
}

// HealthAll snapshots every calibrated bus's condition, sorted by id. A
// multi-wire bus contributes one entry per wire under its "id/wN" wire ids.
// The result is never nil — a fleet with nothing calibrated yields an empty
// slice, so JSON consumers see [] rather than null.
func (s *System) HealthAll() []core.LinkHealth {
	out := make([]core.LinkHealth, 0, len(s.links)+len(s.multis))
	for _, l := range s.links {
		if l.Calibrated() {
			out = append(out, l.Health())
		}
	}
	for _, m := range s.multis {
		if m.Calibrated() {
			out = append(out, m.Health()...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Link is one DIVOT-protected bus. It embeds the core engine link, so the
// full §III protocol (Calibrate, MonitorOnce, MonitorN, gates, alerts) is
// available directly, plus convenience helpers below.
type Link struct {
	*core.Link
	sys *System
}

// Authenticate runs a single measurement round and reports whether the
// CPU-side view of the bus is clean, without touching gates or alert state —
// a read-only spot check (core.Link.SpotCheck). A swapped same-model module
// may keep the bus-wide similarity high while showing a localized error peak
// at the load (Fig. 9b/c), so both an authentication mismatch and a tamper
// signature count as rejection. An uncalibrated or enrollment-less link is
// simply not accepted.
func (l *Link) Authenticate() AuthResult {
	alerts, err := l.SpotCheck()
	if err != nil {
		return AuthResult{Accepted: false}
	}
	res := AuthResult{Accepted: true, Score: 1}
	for _, a := range alerts {
		if a.Side != core.SideCPU {
			continue
		}
		res.Accepted = false
		switch a.Kind {
		case core.AlertAuthFailure:
			res.Score = a.Score
		case core.AlertTamper:
			res.Tampered = true
			res.TamperPosition = a.Position
		}
	}
	return res
}

// AuthResult is a spot-check outcome.
type AuthResult struct {
	// Accepted is true only when the measurement matched the enrollment
	// with no tamper signature.
	Accepted bool
	// Score is the similarity (1 when no auth mismatch occurred).
	Score float64
	// Tampered indicates a localized IIP change at TamperPosition meters.
	Tampered       bool
	TamperPosition float64
}
