#!/usr/bin/env bash
# Smoke-test the divotd daemon from the outside, the way an operator would:
# build it, point it at a three-bus fleet spec, scrape /metrics twice to see
# the round counters advance, drive the remote attestation API through
# divotctl (clean fleet first, then a fleet with a scripted interposer that
# must be caught over the wire), then SIGTERM it and require a clean exit.
# Phase 3 runs a 1000-bus fleet on the sharded scheduler and warm-restarts it
# from its state directory; phase 4 federates four daemons behind divotherd,
# kills one mid-fleet, and requires honest partial-failure reporting followed
# by a re-balanced fleet-wide attest; phase 5 SIGKILLs a stateful daemon
# mid-flight and requires a calibration-free warm restart with its history
# and audit trail intact; phase 6 attaches binary multi-link and legacy SSE
# watchers to a 1000-bus fleet, restarts the daemon both ways (SIGTERM and
# SIGKILL), and requires resume to be exact after the graceful stop and an
# honest, typed resume-gap — never a silent skip — after the crash.
# Used by CI's "daemon smoke" step; runnable locally as scripts/daemon_smoke.sh.
set -euo pipefail

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/divotd" ./cmd/divotd
go build -o "$workdir/divotctl" ./cmd/divotctl
go build -o "$workdir/divotherd" ./cmd/divotherd

cat > "$workdir/fleet.json" <<'EOF'
{
  "seed": 11,
  "listen": "127.0.0.1:9721",
  "interval_ms": 20,
  "jitter_frac": 0.1,
  "buses": [{"id": "dimm0"}, {"id": "dimm1"}, {"id": "dimm2"}]
}
EOF

"$workdir/divotd" -spec "$workdir/fleet.json" > "$workdir/divotd.log" 2>&1 &
pid=$!

# Wait for readiness: /readyz answers from the moment the listener binds —
# before calibration finishes — and flips "ready" when the fleet is up.
wait_ready() {
  local addr=$1 waitpid=$2 logf=$3 tries=${4:-100}
  for _ in $(seq 1 "$tries"); do
    if curl -sf "http://$addr/readyz" 2>/dev/null | grep -q '"ready": true'; then
      return 0
    fi
    if ! kill -0 "$waitpid" 2>/dev/null; then
      echo "divotd on $addr exited during startup:" >&2
      cat "$logf" >&2
      exit 1
    fi
    sleep 0.2
  done
  echo "divotd on $addr never became ready" >&2
  curl -sf "http://$addr/readyz" >&2 || true
  exit 1
}

wait_ready 127.0.0.1:9721 "$pid" "$workdir/divotd.log"
curl -sf http://127.0.0.1:9721/healthz

# Two scrapes a few rounds apart: every bus's round counter must advance.
curl -sf http://127.0.0.1:9721/metrics > "$workdir/scrape1"
sleep 1
curl -sf http://127.0.0.1:9721/metrics > "$workdir/scrape2"

for bus in dimm0 dimm1 dimm2; do
  r1=$(grep "^divot_rounds_total{link=\"$bus\",side=\"cpu\"}" "$workdir/scrape1" | grep -o '[0-9]*$')
  r2=$(grep "^divot_rounds_total{link=\"$bus\",side=\"cpu\"}" "$workdir/scrape2" | grep -o '[0-9]*$')
  if [ -z "$r1" ] || [ -z "$r2" ] || [ "$r2" -le "$r1" ]; then
    echo "round counter for $bus did not advance ($r1 -> $r2)" >&2
    exit 1
  fi
  echo "ok: $bus rounds $r1 -> $r2"
done

# A clean fleet must report fleet_ok.
curl -sf http://127.0.0.1:9721/healthz | grep '"fleet_ok": true'

# All gates must be open on a clean fleet.
if grep '^divot_gate_open' "$workdir/scrape2" | grep -qv ' 1$'; then
  echo "a gate is closed on a clean fleet:" >&2
  grep '^divot_gate_open' "$workdir/scrape2" >&2
  exit 1
fi

# The SDK path: divotctl against the clean fleet must accept everything.
ctl="$workdir/divotctl -addr http://127.0.0.1:9721"
$ctl health
$ctl links
$ctl attest
$ctl -json attest | grep '"all_accepted": true'
echo "ok: divotctl attests the clean fleet"

# Graceful shutdown on SIGTERM.
kill -TERM "$pid"
for _ in $(seq 1 50); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$pid" 2>/dev/null; then
  echo "divotd did not exit after SIGTERM" >&2
  kill -9 "$pid"
  exit 1
fi
wait "$pid" || { echo "divotd exited non-zero after SIGTERM" >&2; exit 1; }
grep 'shut down' "$workdir/divotd.log"

# Phase 2: a fleet with a scripted interposer on one bus. The attack must be
# visible remotely: the event feed carries it and attest rejects the victim.
cat > "$workdir/attacked.json" <<'EOF'
{
  "seed": 11,
  "listen": "127.0.0.1:9722",
  "interval_ms": 20,
  "jitter_frac": 0.1,
  "buses": [
    {"id": "clean0"},
    {"id": "victim", "attack": {"kind": "interposer", "after_rounds": 2, "position": 0.1}}
  ]
}
EOF
"$workdir/divotd" -spec "$workdir/attacked.json" > "$workdir/divotd2.log" 2>&1 &
pid2=$!
trap 'kill -9 "$pid2" 2>/dev/null || true; rm -rf "$workdir"' EXIT
wait_ready 127.0.0.1:9722 "$pid2" "$workdir/divotd2.log"

ctl2="$workdir/divotctl -addr http://127.0.0.1:9722"
# The live feed must deliver the attack's events through the SDK's watcher.
timeout 60 $ctl2 -max 1 watch victim > "$workdir/watch.out"
test -s "$workdir/watch.out"
echo "ok: divotctl watch captured: $(head -1 "$workdir/watch.out")"

# Wait until the attack is confirmed, then require the remote rejection: exit
# code 1 and accepted=false in the JSON verdict.
for _ in $(seq 1 100); do
  if $ctl2 -json attest victim > "$workdir/attest.out" 2>/dev/null; then
    sleep 0.2   # still accepted — the interposer is not confirmed yet
  else
    rc=$?
    if [ "$rc" -ne 1 ]; then
      echo "divotctl attest exited $rc, want 1 for a rejected bus" >&2
      exit 1
    fi
    grep '"accepted": false' "$workdir/attest.out"
    grep '"all_accepted": false' "$workdir/attest.out"
    echo "ok: interposer rejected through the remote client"
    break
  fi
done
if ! grep -q '"accepted": false' "$workdir/attest.out"; then
  echo "interposer was never rejected remotely:" >&2
  cat "$workdir/attest.out" >&2
  exit 1
fi

kill -TERM "$pid2"
for _ in $(seq 1 50); do
  kill -0 "$pid2" 2>/dev/null || break
  sleep 0.2
done
kill -0 "$pid2" 2>/dev/null && { echo "second divotd did not exit" >&2; kill -9 "$pid2"; exit 1; }
wait "$pid2" || { echo "second divotd exited non-zero after SIGTERM" >&2; exit 1; }

# Phase 3: fleet scale. A 1000-bus spec must calibrate (in parallel), run on
# the sharded scheduler with a bounded goroutine count — observed through the
# opt-in pprof listener, which lives on its own port, never the API — serve
# an attestation, and still shut down cleanly on SIGTERM.
{
  printf '{\n "seed": 5,\n "listen": "127.0.0.1:9723",\n "interval_ms": 60000,\n'
  printf ' "scheduler_shards": 8,\n "max_staleness_ms": 30000,\n "buses": [\n'
  for i in $(seq 0 999); do
    sep=","
    [ "$i" -eq 999 ] && sep=""
    printf '  {"id": "dimm%04d"}%s\n' "$i" "$sep"
  done
  printf ' ]\n}\n'
} > "$workdir/fleet1000.json"

"$workdir/divotd" -spec "$workdir/fleet1000.json" -pprof-addr 127.0.0.1:9733 \
  -state-dir "$workdir/state1000" > "$workdir/divotd3.log" 2>&1 &
pid3=$!
trap 'kill -9 "$pid3" 2>/dev/null || true; rm -rf "$workdir"' EXIT
# The arena-path cold enrollment brings 1000 buses up in ~26 s on a single
# core (faster with more); the 40 s ceiling is the performance gate — the
# retired allocating path took ~47 s and would time out here. /readyz
# reports progress the whole time.
wait_ready 127.0.0.1:9723 "$pid3" "$workdir/divotd3.log" 200
curl -sf http://127.0.0.1:9723/healthz | grep '"buses": 1000'

# The scheduler must be sharded, not goroutine-per-bus: the pprof profile's
# total must stay far below the fleet size.
goroutines=$(curl -sf "http://127.0.0.1:9733/debug/pprof/goroutine?debug=1" \
  | head -1 | grep -o 'total [0-9]*' | grep -o '[0-9]*')
if [ -z "$goroutines" ] || [ "$goroutines" -ge 100 ]; then
  echo "1000-bus fleet runs $goroutines goroutines, want < 100" >&2
  exit 1
fi
echo "ok: 1000 buses on $goroutines goroutines"

# The shard-depth gauges must be exported and an attestation must pass.
curl -sf http://127.0.0.1:9723/metrics | grep -q '^divot_scheduler_shard_depth{shard="0"}'
curl -sf -X POST http://127.0.0.1:9723/v1/attest -d '{"links":["dimm0007"]}' \
  | grep '"accepted": true'
echo "ok: 1000-bus fleet attests"

kill -TERM "$pid3"
for _ in $(seq 1 100); do
  kill -0 "$pid3" 2>/dev/null || break
  sleep 0.2
done
kill -0 "$pid3" 2>/dev/null && { echo "1000-bus divotd did not exit" >&2; kill -9 "$pid3"; exit 1; }
wait "$pid3" || { echo "1000-bus divotd exited non-zero after SIGTERM" >&2; exit 1; }
grep 'shut down' "$workdir/divotd3.log"

# Warm restart at scale: the graceful shutdown persisted every enrollment, so
# a relaunch on the same state directory must restore all 1000 buses without
# a single calibration measurement — startup drops from minutes to seconds.
"$workdir/divotd" -spec "$workdir/fleet1000.json" -state-dir "$workdir/state1000" \
  > "$workdir/divotd3b.log" 2>&1 &
pid3=$!
wait_ready 127.0.0.1:9723 "$pid3" "$workdir/divotd3b.log" 300
grep -q '1000 buses ready (1000 restored warm, 0 calibrated)' "$workdir/divotd3b.log"
curl -sf -X POST http://127.0.0.1:9723/v1/attest -d '{"links":["dimm0007"]}' \
  | grep '"accepted": true'
echo "ok: 1000-bus fleet warm-restarted with zero recalibration"
kill -TERM "$pid3"
for _ in $(seq 1 100); do
  kill -0 "$pid3" 2>/dev/null || break
  sleep 0.2
done
kill -0 "$pid3" 2>/dev/null && { echo "warm 1000-bus divotd did not exit" >&2; kill -9 "$pid3"; exit 1; }
wait "$pid3" || { echo "warm 1000-bus divotd exited non-zero after SIGTERM" >&2; exit 1; }

# Phase 4: federation. Four daemons with identical specs (same seed → same
# enrollments: replicated verifiers over a shared measurement fabric) behind
# one divotherd. The herd must attest the fleet through one endpoint; killing
# a daemon must surface as an honest partial failure (never a fabricated OK),
# and the very next attest must succeed fleet-wide on the re-balanced
# survivors.
cat > "$workdir/fed.json" <<'EOF'
{
  "seed": 23,
  "interval_ms": 60000,
  "max_staleness_ms": 30000,
  "buses": [
    {"id": "fed0"}, {"id": "fed1"}, {"id": "fed2"},
    {"id": "fed3"}, {"id": "fed4"}, {"id": "fed5"}
  ]
}
EOF
fedpids=()
for i in 0 1 2 3; do
  "$workdir/divotd" -spec "$workdir/fed.json" -listen "127.0.0.1:974$i" \
    -federation-id smoke > "$workdir/fed$i.log" 2>&1 &
  fedpids+=($!)
done
trap 'kill -9 "${fedpids[@]}" ${herdpid:-} 2>/dev/null || true; rm -rf "$workdir"' EXIT
for i in 0 1 2 3; do
  wait_ready "127.0.0.1:974$i" "${fedpids[$i]}" "$workdir/fed$i.log"
done

# A long probe interval keeps the test deterministic: the only thing allowed
# to mark a daemon down mid-phase is the failed attest fan-out itself.
"$workdir/divotherd" -listen 127.0.0.1:9744 -federation-id smoke -probe-interval 60s \
  -daemons "http://127.0.0.1:9740,http://127.0.0.1:9741,http://127.0.0.1:9742,http://127.0.0.1:9743" \
  > "$workdir/herd.log" 2>&1 &
herdpid=$!
for _ in $(seq 1 100); do
  curl -sf http://127.0.0.1:9744/healthz > /dev/null 2>&1 && break
  if ! kill -0 "$herdpid" 2>/dev/null; then
    echo "divotherd exited during startup:" >&2
    cat "$workdir/herd.log" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf http://127.0.0.1:9744/healthz | grep '"federation_id": "smoke"'
curl -sf http://127.0.0.1:9744/v1/daemons | grep -c '"up": true' | grep -qx 4

# divotctl works unchanged against the herd (the federated response is a
# strict superset of the daemon's); the federated extras are asserted on the
# raw wire, since the SDK decodes into the daemon-shaped AttestResponse.
ctlherd="$workdir/divotctl -addr http://127.0.0.1:9744"
$ctlherd -json attest > "$workdir/herd-attest.out"
grep '"all_accepted": true' "$workdir/herd-attest.out"
curl -sf -X POST http://127.0.0.1:9744/v1/attest > "$workdir/herd-fed.out"
grep '"complete": true' "$workdir/herd-fed.out"
grep '"daemon": "d0"' "$workdir/herd-fed.out"
echo "ok: herd attests 6 buses across 4 daemons"

# Kill one daemon. The next attest must report the partial failure honestly —
# all_accepted=false, complete=false, an unavailable shard error — and must
# not fabricate verdicts for the dead daemon's buses.
kill -9 "${fedpids[1]}"
curl -sf -X POST http://127.0.0.1:9744/v1/attest > "$workdir/herd-dead.out"
grep '"all_accepted": false' "$workdir/herd-dead.out"
grep '"complete": false' "$workdir/herd-dead.out"
grep '"code": "unavailable"' "$workdir/herd-dead.out"
echo "ok: daemon death reported as partial failure"

# Re-balance: the herd marked the daemon down during the failed fan-out, so
# the follow-up attest — through the unchanged single-daemon client — lands
# fleet-wide on the three survivors.
$ctlherd -json attest > "$workdir/herd-rebal.out"
grep '"all_accepted": true' "$workdir/herd-rebal.out"
curl -sf http://127.0.0.1:9744/v1/daemons | grep -c '"up": true' | grep -qx 3
echo "ok: herd re-balanced onto 3 survivors"

kill -TERM "$herdpid"
for _ in $(seq 1 50); do
  kill -0 "$herdpid" 2>/dev/null || break
  sleep 0.2
done
kill -0 "$herdpid" 2>/dev/null && { echo "divotherd did not exit after SIGTERM" >&2; kill -9 "$herdpid"; exit 1; }
wait "$herdpid" || { echo "divotherd exited non-zero after SIGTERM" >&2; exit 1; }
for i in 0 2 3; do kill -TERM "${fedpids[$i]}" 2>/dev/null || true; done
for p in "${fedpids[@]}"; do wait "$p" 2>/dev/null || true; done

# Phase 5: crash durability. A stateful daemon is SIGKILLed mid-flight — no
# graceful persist, no WAL close — and relaunched on the same state
# directory. The restart must restore every enrollment without a single
# calibration measurement, keep serving verdicts, and keep the history and
# audit trails accumulated before the crash.
cat > "$workdir/durable.json" <<EOF
{
  "seed": 31,
  "listen": "127.0.0.1:9725",
  "interval_ms": 20,
  "jitter_frac": 0.1,
  "state_dir": "$workdir/state5",
  "buses": [{"id": "dimm0"}, {"id": "dimm1"}, {"id": "dimm2"}]
}
EOF
"$workdir/divotd" -spec "$workdir/durable.json" > "$workdir/divotd5.log" 2>&1 &
pid5=$!
trap 'kill -9 "$pid5" 2>/dev/null || true; rm -rf "$workdir"' EXIT
wait_ready 127.0.0.1:9725 "$pid5" "$workdir/divotd5.log"
grep -q '3 buses ready (0 restored warm, 3 calibrated)' "$workdir/divotd5.log"

# Let rounds accumulate past the daemon's 1s durability flush, then snapshot
# the durable trails as of the crash.
sleep 2.5
hist_before=$(curl -sf http://127.0.0.1:9725/v1/links/dimm0/history | grep -c '"round"')
if [ "$hist_before" -lt 1 ]; then
  echo "no history samples before the crash" >&2
  exit 1
fi
audit_before=$(cat "$workdir"/state5/audit/seg-*.wal | wc -c)
if [ "$audit_before" -lt 1 ]; then
  echo "no audit bytes before the crash" >&2
  exit 1
fi

kill -9 "$pid5"
wait "$pid5" 2>/dev/null || true

"$workdir/divotd" -spec "$workdir/durable.json" > "$workdir/divotd5b.log" 2>&1 &
pid5=$!
wait_ready 127.0.0.1:9725 "$pid5" "$workdir/divotd5b.log"
# Zero recalibration: every bus came back from its enrollment snapshot.
grep -q '3 buses ready (3 restored warm, 0 calibrated)' "$workdir/divotd5b.log"

# Verdicts flow immediately on the restored enrollments.
ctl5="$workdir/divotctl -addr http://127.0.0.1:9725"
$ctl5 -json attest | grep '"all_accepted": true'

# History continuity: the pre-crash samples survived the torn WAL tail (the
# window is bounded at 256/bus, far above what this phase accumulates).
hist_after=$(curl -sf http://127.0.0.1:9725/v1/links/dimm0/history | grep -c '"round"')
if [ "$hist_after" -lt "$hist_before" ]; then
  echo "history lost across the crash: $hist_before -> $hist_after samples" >&2
  exit 1
fi
echo "ok: $hist_before pre-crash history samples survived ($hist_after retained)"

# Audit continuity: the audit WAL kept its pre-crash bytes and keeps growing.
sleep 2.5
audit_after=$(cat "$workdir"/state5/audit/seg-*.wal | wc -c)
if [ "$audit_after" -le "$audit_before" ]; then
  echo "audit log did not survive and grow: $audit_before -> $audit_after bytes" >&2
  exit 1
fi
echo "ok: audit trail continuous across SIGKILL ($audit_before -> $audit_after bytes)"

kill -TERM "$pid5"
for _ in $(seq 1 50); do
  kill -0 "$pid5" 2>/dev/null || break
  sleep 0.2
done
kill -0 "$pid5" 2>/dev/null && { echo "stateful divotd did not exit after SIGTERM" >&2; kill -9 "$pid5"; exit 1; }
wait "$pid5" || { echo "stateful divotd exited non-zero after SIGTERM" >&2; exit 1; }
echo "ok: crash-restart durability"

# Phase 6: event streaming at scale, across restarts. The phase-3 state
# directory warm-restores the 1000 clean buses in seconds; two attacked buses
# on a fast monitoring interval provide a continuous event feed (a tampered
# round emits an alert every round). A binary multi-link watcher (divotctl
# negotiates GET /v1/stream) and a legacy SSE watcher (curl) both follow the
# feed; a graceful restart must resume a cursor exactly, and a SIGKILL must
# surface as a typed resume gap — the stream protocol never skips silently.
cat > "$workdir/fleet1000s.json" <<'EOF'
{
  "seed": 5,
  "listen": "127.0.0.1:9726",
  "interval_ms": 60000,
  "scheduler_shards": 8,
  "max_staleness_ms": 30000,
  "buses": [
EOF
for i in $(seq 0 999); do
  printf '  {"id": "dimm%04d"},\n' "$i" >> "$workdir/fleet1000s.json"
done
cat >> "$workdir/fleet1000s.json" <<'EOF'
  {"id": "victimA", "interval_ms": 20, "attack": {"kind": "interposer", "after_rounds": 2, "position": 0.1}},
  {"id": "victimB", "interval_ms": 20, "attack": {"kind": "interposer", "after_rounds": 2, "position": 0.2}}
  ]
}
EOF

"$workdir/divotd" -spec "$workdir/fleet1000s.json" -state-dir "$workdir/state1000" \
  > "$workdir/divotd6.log" 2>&1 &
pid6=$!
trap 'kill -9 "$pid6" 2>/dev/null || true; rm -rf "$workdir"' EXIT
wait_ready 127.0.0.1:9726 "$pid6" "$workdir/divotd6.log" 300
# Only the two new victims calibrate; the 1000-bus fleet comes back warm.
grep -q '1002 buses ready (1000 restored warm, 2 calibrated)' "$workdir/divotd6.log"

# The stream degradation metrics must be exported from the start.
curl -sf http://127.0.0.1:9726/metrics > "$workdir/scrape6"
for fam in divot_stream_subscribers divot_stream_coalesced_total divot_stream_dropped_total; do
  grep -q "^$fam" "$workdir/scrape6" || { echo "metrics missing $fam" >&2; exit 1; }
done

ctl6="$workdir/divotctl -addr http://127.0.0.1:9726"
# Binary multi-link watch: both victims' events over one connection. The
# subscribe replays each link's retained ring (up to 128 events) before the
# live tail, so the cap must clear both backlogs to prove interleaving.
for attempt in 1 2 3; do
  timeout 120 $ctl6 -json -max 400 watch victimA victimB > "$workdir/watch6.out"
  grep -q '"link": "victimA"' "$workdir/watch6.out" && \
    grep -q '"link": "victimB"' "$workdir/watch6.out" && break
  if [ "$attempt" = 3 ]; then
    echo "multi-link watch never interleaved both victims:" >&2
    cat "$workdir/watch6.out" >&2
    exit 1
  fi
done
echo "ok: binary multi-link watch carries both victims"

# Legacy SSE watcher on the same daemon: the old route still serves.
timeout 30 bash -c \
  "curl -sN http://127.0.0.1:9726/v1/links/victimA/events | grep -m1 '^data:'" \
  > "$workdir/sse6.out"
test -s "$workdir/sse6.out"
echo "ok: legacy SSE watch still streams"

# Graceful restart: a watcher follows victimB to the shutdown frame, so its
# last seq IS the persisted stream cursor; after the restart, resuming past
# it must deliver exactly the next event — no gap, no duplicate.
$ctl6 -retries 2 -json watch victimB > "$workdir/graceful6.out" 2> /dev/null &
wpid=$!
sleep 2
kill -TERM "$pid6"
for _ in $(seq 1 100); do kill -0 "$pid6" 2>/dev/null || break; sleep 0.2; done
kill -0 "$pid6" 2>/dev/null && { echo "stream divotd did not exit after SIGTERM" >&2; kill -9 "$pid6"; exit 1; }
wait "$pid6" || { echo "stream divotd exited non-zero after SIGTERM" >&2; exit 1; }
wait "$wpid" 2>/dev/null || true   # the watcher exits 3 once reconnects exhaust
lastB=$(grep '"seq":' "$workdir/graceful6.out" | tail -1 | grep -o '[0-9][0-9]*')
if [ -z "$lastB" ]; then
  echo "graceful watcher captured no events" >&2
  exit 1
fi

"$workdir/divotd" -spec "$workdir/fleet1000s.json" -state-dir "$workdir/state1000" \
  > "$workdir/divotd6b.log" 2>&1 &
pid6=$!
wait_ready 127.0.0.1:9726 "$pid6" "$workdir/divotd6b.log" 300
grep -q '1002 buses ready (1002 restored warm, 0 calibrated)' "$workdir/divotd6b.log"
timeout 120 $ctl6 -json -after "$lastB" -max 1 watch victimB > "$workdir/resume6.out"
nextB=$(grep '"seq":' "$workdir/resume6.out" | head -1 | grep -o '[0-9][0-9]*')
if [ "$nextB" != "$((lastB + 1))" ]; then
  echo "graceful resume after seq $lastB delivered seq $nextB, want $((lastB + 1))" >&2
  exit 1
fi
echo "ok: graceful restart resumed victimB at seq $nextB exactly"

# Crash restart: take a cursor mid-feed, SIGKILL, relaunch. The crash seeds
# the sequence space past everything possibly published, so the stale cursor
# must come back as a typed resume gap (divotctl exit 3), never as a feed
# that silently skips the hole.
timeout 120 $ctl6 -json -max 3 watch victimA > "$workdir/cursor6.out"
seqA=$(grep '"seq":' "$workdir/cursor6.out" | tail -1 | grep -o '[0-9][0-9]*')
kill -9 "$pid6"
wait "$pid6" 2>/dev/null || true
"$workdir/divotd" -spec "$workdir/fleet1000s.json" -state-dir "$workdir/state1000" \
  > "$workdir/divotd6c.log" 2>&1 &
pid6=$!
wait_ready 127.0.0.1:9726 "$pid6" "$workdir/divotd6c.log" 300
grep -q '1002 buses ready (1002 restored warm, 0 calibrated)' "$workdir/divotd6c.log"
if timeout 60 $ctl6 -json -after "$seqA" -max 1 watch victimA > /dev/null 2> "$workdir/gap6.err"; then
  echo "crash resume after seq $seqA silently delivered events — want a resume gap" >&2
  exit 1
else
  rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "crash resume exited $rc, want 3 (typed resume gap)" >&2
    cat "$workdir/gap6.err" >&2
    exit 1
  fi
fi
grep -q 'resume gap' "$workdir/gap6.err"
echo "ok: crash resume surfaced a typed gap: $(head -1 "$workdir/gap6.err")"

# The legacy SSE route agrees: resuming the stale cursor jumps visibly (the
# SDK turns exactly this jump into ResumeGapError) instead of renumbering.
timeout 30 bash -c \
  "curl -sN 'http://127.0.0.1:9726/v1/links/victimA/events?after=$seqA' | grep -m1 '^data:'" \
  > "$workdir/sse6b.out"
sseSeq=$(grep -o '"seq":[0-9]*' "$workdir/sse6b.out" | grep -o '[0-9]*')
if [ -z "$sseSeq" ] || [ "$sseSeq" -le "$((seqA + 1))" ]; then
  echo "SSE resume after crash shows seq $sseSeq — the sequence space was not re-seeded" >&2
  exit 1
fi
echo "ok: SSE resume shows the honest jump ($seqA -> $sseSeq)"

# A fresh watch (no cursor claim) streams fine after the crash.
timeout 120 $ctl6 -max 2 watch victimA victimB > /dev/null
kill -TERM "$pid6"
for _ in $(seq 1 100); do kill -0 "$pid6" 2>/dev/null || break; sleep 0.2; done
kill -0 "$pid6" 2>/dev/null && { echo "stream divotd did not exit" >&2; kill -9 "$pid6"; exit 1; }
wait "$pid6" || { echo "stream divotd exited non-zero after final SIGTERM" >&2; exit 1; }
echo "ok: stream resume honesty across graceful and crash restarts"
echo "smoke test passed"
