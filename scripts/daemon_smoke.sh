#!/usr/bin/env bash
# Smoke-test the divotd daemon from the outside, the way an operator would:
# build it, point it at a three-bus fleet spec, scrape /metrics twice to see
# the round counters advance, then SIGTERM it and require a clean exit.
# Used by CI's "daemon smoke" step; runnable locally as scripts/daemon_smoke.sh.
set -euo pipefail

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/divotd" ./cmd/divotd

cat > "$workdir/fleet.json" <<'EOF'
{
  "seed": 11,
  "listen": "127.0.0.1:9721",
  "interval_ms": 20,
  "jitter_frac": 0.1,
  "buses": [{"id": "dimm0"}, {"id": "dimm1"}, {"id": "dimm2"}]
}
EOF

"$workdir/divotd" -spec "$workdir/fleet.json" > "$workdir/divotd.log" 2>&1 &
pid=$!

# Wait for the daemon to come up (calibration of three buses takes a moment).
for _ in $(seq 1 100); do
  if curl -sf http://127.0.0.1:9721/healthz > /dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "divotd exited during startup:" >&2
    cat "$workdir/divotd.log" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf http://127.0.0.1:9721/healthz

# Two scrapes a few rounds apart: every bus's round counter must advance.
curl -sf http://127.0.0.1:9721/metrics > "$workdir/scrape1"
sleep 1
curl -sf http://127.0.0.1:9721/metrics > "$workdir/scrape2"

for bus in dimm0 dimm1 dimm2; do
  r1=$(grep "^divot_rounds_total{link=\"$bus\",side=\"cpu\"}" "$workdir/scrape1" | grep -o '[0-9]*$')
  r2=$(grep "^divot_rounds_total{link=\"$bus\",side=\"cpu\"}" "$workdir/scrape2" | grep -o '[0-9]*$')
  if [ -z "$r1" ] || [ -z "$r2" ] || [ "$r2" -le "$r1" ]; then
    echo "round counter for $bus did not advance ($r1 -> $r2)" >&2
    exit 1
  fi
  echo "ok: $bus rounds $r1 -> $r2"
done

# A clean fleet must report fleet_ok.
curl -sf http://127.0.0.1:9721/healthz | grep '"fleet_ok": true'

# All gates must be open on a clean fleet.
if grep '^divot_gate_open' "$workdir/scrape2" | grep -qv ' 1$'; then
  echo "a gate is closed on a clean fleet:" >&2
  grep '^divot_gate_open' "$workdir/scrape2" >&2
  exit 1
fi

# Graceful shutdown on SIGTERM.
kill -TERM "$pid"
for _ in $(seq 1 50); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$pid" 2>/dev/null; then
  echo "divotd did not exit after SIGTERM" >&2
  kill -9 "$pid"
  exit 1
fi
wait "$pid" || { echo "divotd exited non-zero after SIGTERM" >&2; exit 1; }
grep 'shut down' "$workdir/divotd.log"
echo "smoke test passed"
