#!/usr/bin/env bash
# Smoke-test the divotd daemon from the outside, the way an operator would:
# build it, point it at a three-bus fleet spec, scrape /metrics twice to see
# the round counters advance, drive the remote attestation API through
# divotctl (clean fleet first, then a fleet with a scripted interposer that
# must be caught over the wire), then SIGTERM it and require a clean exit.
# Phase 3 runs a 1000-bus fleet on the sharded scheduler; phase 4 federates
# four daemons behind divotherd, kills one mid-fleet, and requires honest
# partial-failure reporting followed by a re-balanced fleet-wide attest.
# Used by CI's "daemon smoke" step; runnable locally as scripts/daemon_smoke.sh.
set -euo pipefail

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/divotd" ./cmd/divotd
go build -o "$workdir/divotctl" ./cmd/divotctl
go build -o "$workdir/divotherd" ./cmd/divotherd

cat > "$workdir/fleet.json" <<'EOF'
{
  "seed": 11,
  "listen": "127.0.0.1:9721",
  "interval_ms": 20,
  "jitter_frac": 0.1,
  "buses": [{"id": "dimm0"}, {"id": "dimm1"}, {"id": "dimm2"}]
}
EOF

"$workdir/divotd" -spec "$workdir/fleet.json" > "$workdir/divotd.log" 2>&1 &
pid=$!

# Wait for the daemon to come up (calibration of three buses takes a moment).
for _ in $(seq 1 100); do
  if curl -sf http://127.0.0.1:9721/healthz > /dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "divotd exited during startup:" >&2
    cat "$workdir/divotd.log" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf http://127.0.0.1:9721/healthz

# Two scrapes a few rounds apart: every bus's round counter must advance.
curl -sf http://127.0.0.1:9721/metrics > "$workdir/scrape1"
sleep 1
curl -sf http://127.0.0.1:9721/metrics > "$workdir/scrape2"

for bus in dimm0 dimm1 dimm2; do
  r1=$(grep "^divot_rounds_total{link=\"$bus\",side=\"cpu\"}" "$workdir/scrape1" | grep -o '[0-9]*$')
  r2=$(grep "^divot_rounds_total{link=\"$bus\",side=\"cpu\"}" "$workdir/scrape2" | grep -o '[0-9]*$')
  if [ -z "$r1" ] || [ -z "$r2" ] || [ "$r2" -le "$r1" ]; then
    echo "round counter for $bus did not advance ($r1 -> $r2)" >&2
    exit 1
  fi
  echo "ok: $bus rounds $r1 -> $r2"
done

# A clean fleet must report fleet_ok.
curl -sf http://127.0.0.1:9721/healthz | grep '"fleet_ok": true'

# All gates must be open on a clean fleet.
if grep '^divot_gate_open' "$workdir/scrape2" | grep -qv ' 1$'; then
  echo "a gate is closed on a clean fleet:" >&2
  grep '^divot_gate_open' "$workdir/scrape2" >&2
  exit 1
fi

# The SDK path: divotctl against the clean fleet must accept everything.
ctl="$workdir/divotctl -addr http://127.0.0.1:9721"
$ctl health
$ctl links
$ctl attest
$ctl -json attest | grep '"all_accepted": true'
echo "ok: divotctl attests the clean fleet"

# Graceful shutdown on SIGTERM.
kill -TERM "$pid"
for _ in $(seq 1 50); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$pid" 2>/dev/null; then
  echo "divotd did not exit after SIGTERM" >&2
  kill -9 "$pid"
  exit 1
fi
wait "$pid" || { echo "divotd exited non-zero after SIGTERM" >&2; exit 1; }
grep 'shut down' "$workdir/divotd.log"

# Phase 2: a fleet with a scripted interposer on one bus. The attack must be
# visible remotely: the event feed carries it and attest rejects the victim.
cat > "$workdir/attacked.json" <<'EOF'
{
  "seed": 11,
  "listen": "127.0.0.1:9722",
  "interval_ms": 20,
  "jitter_frac": 0.1,
  "buses": [
    {"id": "clean0"},
    {"id": "victim", "attack": {"kind": "interposer", "after_rounds": 2, "position": 0.1}}
  ]
}
EOF
"$workdir/divotd" -spec "$workdir/attacked.json" > "$workdir/divotd2.log" 2>&1 &
pid2=$!
trap 'kill -9 "$pid2" 2>/dev/null; rm -rf "$workdir"' EXIT
for _ in $(seq 1 100); do
  curl -sf http://127.0.0.1:9722/healthz > /dev/null 2>&1 && break
  if ! kill -0 "$pid2" 2>/dev/null; then
    echo "second divotd exited during startup:" >&2
    cat "$workdir/divotd2.log" >&2
    exit 1
  fi
  sleep 0.2
done

ctl2="$workdir/divotctl -addr http://127.0.0.1:9722"
# The live feed must deliver the attack's events through the SDK's watcher.
timeout 60 $ctl2 -max 1 watch victim > "$workdir/watch.out"
test -s "$workdir/watch.out"
echo "ok: divotctl watch captured: $(head -1 "$workdir/watch.out")"

# Wait until the attack is confirmed, then require the remote rejection: exit
# code 1 and accepted=false in the JSON verdict.
for _ in $(seq 1 100); do
  if $ctl2 -json attest victim > "$workdir/attest.out" 2>/dev/null; then
    sleep 0.2   # still accepted — the interposer is not confirmed yet
  else
    rc=$?
    if [ "$rc" -ne 1 ]; then
      echo "divotctl attest exited $rc, want 1 for a rejected bus" >&2
      exit 1
    fi
    grep '"accepted": false' "$workdir/attest.out"
    grep '"all_accepted": false' "$workdir/attest.out"
    echo "ok: interposer rejected through the remote client"
    break
  fi
done
if ! grep -q '"accepted": false' "$workdir/attest.out"; then
  echo "interposer was never rejected remotely:" >&2
  cat "$workdir/attest.out" >&2
  exit 1
fi

kill -TERM "$pid2"
for _ in $(seq 1 50); do
  kill -0 "$pid2" 2>/dev/null || break
  sleep 0.2
done
kill -0 "$pid2" 2>/dev/null && { echo "second divotd did not exit" >&2; kill -9 "$pid2"; exit 1; }
wait "$pid2" || { echo "second divotd exited non-zero after SIGTERM" >&2; exit 1; }

# Phase 3: fleet scale. A 1000-bus spec must calibrate (in parallel), run on
# the sharded scheduler with a bounded goroutine count — observed through the
# opt-in pprof listener, which lives on its own port, never the API — serve
# an attestation, and still shut down cleanly on SIGTERM.
{
  printf '{\n "seed": 5,\n "listen": "127.0.0.1:9723",\n "interval_ms": 60000,\n'
  printf ' "scheduler_shards": 8,\n "max_staleness_ms": 30000,\n "buses": [\n'
  for i in $(seq 0 999); do
    sep=","
    [ "$i" -eq 999 ] && sep=""
    printf '  {"id": "dimm%04d"}%s\n' "$i" "$sep"
  done
  printf ' ]\n}\n'
} > "$workdir/fleet1000.json"

"$workdir/divotd" -spec "$workdir/fleet1000.json" -pprof-addr 127.0.0.1:9733 \
  > "$workdir/divotd3.log" 2>&1 &
pid3=$!
trap 'kill -9 "$pid3" 2>/dev/null; rm -rf "$workdir"' EXIT
# Calibrating 1000 buses takes a while even in parallel; allow several minutes.
for _ in $(seq 1 1800); do
  curl -sf http://127.0.0.1:9723/healthz > /dev/null 2>&1 && break
  if ! kill -0 "$pid3" 2>/dev/null; then
    echo "1000-bus divotd exited during startup:" >&2
    cat "$workdir/divotd3.log" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf http://127.0.0.1:9723/healthz | grep '"buses": 1000'

# The scheduler must be sharded, not goroutine-per-bus: the pprof profile's
# total must stay far below the fleet size.
goroutines=$(curl -sf "http://127.0.0.1:9733/debug/pprof/goroutine?debug=1" \
  | head -1 | grep -o 'total [0-9]*' | grep -o '[0-9]*')
if [ -z "$goroutines" ] || [ "$goroutines" -ge 100 ]; then
  echo "1000-bus fleet runs $goroutines goroutines, want < 100" >&2
  exit 1
fi
echo "ok: 1000 buses on $goroutines goroutines"

# The shard-depth gauges must be exported and an attestation must pass.
curl -sf http://127.0.0.1:9723/metrics | grep -q '^divot_scheduler_shard_depth{shard="0"}'
curl -sf -X POST http://127.0.0.1:9723/v1/attest -d '{"links":["dimm0007"]}' \
  | grep '"accepted": true'
echo "ok: 1000-bus fleet attests"

kill -TERM "$pid3"
for _ in $(seq 1 100); do
  kill -0 "$pid3" 2>/dev/null || break
  sleep 0.2
done
kill -0 "$pid3" 2>/dev/null && { echo "1000-bus divotd did not exit" >&2; kill -9 "$pid3"; exit 1; }
wait "$pid3" || { echo "1000-bus divotd exited non-zero after SIGTERM" >&2; exit 1; }
grep 'shut down' "$workdir/divotd3.log"

# Phase 4: federation. Four daemons with identical specs (same seed → same
# enrollments: replicated verifiers over a shared measurement fabric) behind
# one divotherd. The herd must attest the fleet through one endpoint; killing
# a daemon must surface as an honest partial failure (never a fabricated OK),
# and the very next attest must succeed fleet-wide on the re-balanced
# survivors.
cat > "$workdir/fed.json" <<'EOF'
{
  "seed": 23,
  "interval_ms": 60000,
  "max_staleness_ms": 30000,
  "buses": [
    {"id": "fed0"}, {"id": "fed1"}, {"id": "fed2"},
    {"id": "fed3"}, {"id": "fed4"}, {"id": "fed5"}
  ]
}
EOF
fedpids=()
for i in 0 1 2 3; do
  "$workdir/divotd" -spec "$workdir/fed.json" -listen "127.0.0.1:974$i" \
    -federation-id smoke > "$workdir/fed$i.log" 2>&1 &
  fedpids+=($!)
done
trap 'kill -9 "${fedpids[@]}" ${herdpid:-} 2>/dev/null; rm -rf "$workdir"' EXIT
for i in 0 1 2 3; do
  for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:974$i/healthz" > /dev/null 2>&1 && break
    if ! kill -0 "${fedpids[$i]}" 2>/dev/null; then
      echo "federation daemon $i exited during startup:" >&2
      cat "$workdir/fed$i.log" >&2
      exit 1
    fi
    sleep 0.2
  done
done

# A long probe interval keeps the test deterministic: the only thing allowed
# to mark a daemon down mid-phase is the failed attest fan-out itself.
"$workdir/divotherd" -listen 127.0.0.1:9744 -federation-id smoke -probe-interval 60s \
  -daemons "http://127.0.0.1:9740,http://127.0.0.1:9741,http://127.0.0.1:9742,http://127.0.0.1:9743" \
  > "$workdir/herd.log" 2>&1 &
herdpid=$!
for _ in $(seq 1 100); do
  curl -sf http://127.0.0.1:9744/healthz > /dev/null 2>&1 && break
  if ! kill -0 "$herdpid" 2>/dev/null; then
    echo "divotherd exited during startup:" >&2
    cat "$workdir/herd.log" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf http://127.0.0.1:9744/healthz | grep '"federation_id": "smoke"'
curl -sf http://127.0.0.1:9744/v1/daemons | grep -c '"up": true' | grep -qx 4

# divotctl works unchanged against the herd (the federated response is a
# strict superset of the daemon's); the federated extras are asserted on the
# raw wire, since the SDK decodes into the daemon-shaped AttestResponse.
ctlherd="$workdir/divotctl -addr http://127.0.0.1:9744"
$ctlherd -json attest > "$workdir/herd-attest.out"
grep '"all_accepted": true' "$workdir/herd-attest.out"
curl -sf -X POST http://127.0.0.1:9744/v1/attest > "$workdir/herd-fed.out"
grep '"complete": true' "$workdir/herd-fed.out"
grep '"daemon": "d0"' "$workdir/herd-fed.out"
echo "ok: herd attests 6 buses across 4 daemons"

# Kill one daemon. The next attest must report the partial failure honestly —
# all_accepted=false, complete=false, an unavailable shard error — and must
# not fabricate verdicts for the dead daemon's buses.
kill -9 "${fedpids[1]}"
curl -sf -X POST http://127.0.0.1:9744/v1/attest > "$workdir/herd-dead.out"
grep '"all_accepted": false' "$workdir/herd-dead.out"
grep '"complete": false' "$workdir/herd-dead.out"
grep '"code": "unavailable"' "$workdir/herd-dead.out"
echo "ok: daemon death reported as partial failure"

# Re-balance: the herd marked the daemon down during the failed fan-out, so
# the follow-up attest — through the unchanged single-daemon client — lands
# fleet-wide on the three survivors.
$ctlherd -json attest > "$workdir/herd-rebal.out"
grep '"all_accepted": true' "$workdir/herd-rebal.out"
curl -sf http://127.0.0.1:9744/v1/daemons | grep -c '"up": true' | grep -qx 3
echo "ok: herd re-balanced onto 3 survivors"

kill -TERM "$herdpid"
for _ in $(seq 1 50); do
  kill -0 "$herdpid" 2>/dev/null || break
  sleep 0.2
done
kill -0 "$herdpid" 2>/dev/null && { echo "divotherd did not exit after SIGTERM" >&2; kill -9 "$herdpid"; exit 1; }
wait "$herdpid" || { echo "divotherd exited non-zero after SIGTERM" >&2; exit 1; }
for i in 0 2 3; do kill -TERM "${fedpids[$i]}" 2>/dev/null || true; done
for p in "${fedpids[@]}"; do wait "$p" 2>/dev/null || true; done
echo "smoke test passed"
