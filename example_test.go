package divot_test

import (
	"fmt"

	"divot"
)

// Example shows the minimal protect-calibrate-authenticate flow.
func Example() {
	sys := divot.NewSystem(2026, divot.DefaultConfig())
	bus := sys.MustNewLink("memory-bus")
	if err := bus.Calibrate(); err != nil {
		panic(err)
	}
	fmt.Println("genuine accepted:", bus.Authenticate().Accepted)

	// A cold-boot attacker moves the module onto their own machine.
	thief := divot.NewColdBootSwap(sys.Config().Line, sys.Stream("thief"))
	bus.Module.SetObservedLine(thief.BusSeenByModule())
	bus.MonitorOnce()
	fmt.Println("module gate open on attacker bus:", bus.Module.Gate.Authorized())
	// Output:
	// genuine accepted: true
	// module gate open on attacker bus: false
}

// ExampleSystem_NewLink manufactures a protected bus and calibrates it —
// after enrollment both gates open.
func ExampleSystem_NewLink() {
	sys := divot.NewSystem(11, divot.DefaultConfig())
	bus, err := sys.NewLink("pcie-lane0")
	if err != nil {
		panic(err)
	}
	if err := bus.Calibrate(); err != nil {
		panic(err)
	}
	fmt.Println("CPU gate:", bus.CPU.Gate.Authorized())
	fmt.Println("module gate:", bus.Module.Gate.Authorized())
	// Output:
	// CPU gate: true
	// module gate: true
}

// ExampleLink_Authenticate spot-checks a bus before and after a wire tap is
// soldered on: the tap dents the IIP and the check rejects.
func ExampleLink_Authenticate() {
	sys := divot.NewSystem(21, divot.DefaultConfig())
	bus := sys.MustNewLink("dimm0")
	if err := bus.Calibrate(); err != nil {
		panic(err)
	}
	fmt.Println("clean bus accepted:", bus.Authenticate().Accepted)

	divot.NewWireTap(0.1).Apply(bus.Line)
	res := bus.Authenticate()
	fmt.Println("tapped bus accepted:", res.Accepted)
	fmt.Println("tamper localized:", res.Tampered)
	// Output:
	// clean bus accepted: true
	// tapped bus accepted: false
	// tamper localized: true
}

// ExampleSystem_MonitorAll monitors a whole fleet in one call; links fan out
// across Config.Engine.Parallelism workers with bit-identical results.
func ExampleSystem_MonitorAll() {
	cfg := divot.DefaultConfig()
	cfg.Engine.Parallelism = 4 // 0 = one worker per CPU, 1 = sequential
	sys := divot.NewSystem(31, cfg)
	for _, id := range []string{"cmd", "addr", "dq0"} {
		if err := sys.MustNewLink(id).Calibrate(); err != nil {
			panic(err)
		}
	}
	rounds, err := sys.MonitorAll()
	if err != nil {
		panic(err)
	}
	for _, la := range rounds {
		fmt.Printf("%s: %d alerts\n", la.ID, len(la.Alerts))
	}
	// Output:
	// addr: 0 alerts
	// cmd: 0 alerts
	// dq0: 0 alerts
}

// ExampleSystem_NewMultiLink protects a bus as a 2-wire bundle: both wires
// must authenticate.
func ExampleSystem_NewMultiLink() {
	sys := divot.NewSystem(7, divot.DefaultConfig())
	bus, err := sys.NewMultiLink("bus-a", 2)
	if err != nil {
		panic(err)
	}
	if err := bus.Calibrate(); err != nil {
		panic(err)
	}
	clean, err := bus.MonitorOnce()
	if err != nil {
		panic(err)
	}
	fmt.Println("clean alerts:", len(clean))

	divot.NewWireTap(0.1).Apply(bus.Wires[1].Line)
	alerts, err := bus.MonitorOnce()
	if err != nil {
		panic(err)
	}
	fmt.Println("alerts after tapping wire 1:", len(alerts) > 0)
	// Output:
	// clean alerts: 0
	// alerts after tapping wire 1: true
}

// ExampleSimilarity scores two fingerprints of the same line.
func ExampleSimilarity() {
	sys := divot.NewSystem(3, divot.DefaultConfig())
	a := sys.MustNewLink("a")
	b := sys.MustNewLink("b")
	if err := a.Calibrate(); err != nil {
		panic(err)
	}
	if err := b.Calibrate(); err != nil {
		panic(err)
	}
	// Links authenticate themselves, not each other.
	fmt.Println("a accepts itself:", a.Authenticate().Accepted)
	fmt.Println("b accepts itself:", b.Authenticate().Accepted)
	// Output:
	// a accepts itself: true
	// b accepts itself: true
}
