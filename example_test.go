package divot_test

import (
	"fmt"

	"divot"
)

// Example shows the minimal protect-calibrate-authenticate flow.
func Example() {
	sys := divot.NewSystem(2026, divot.DefaultConfig())
	bus := sys.MustNewLink("memory-bus")
	if err := bus.Calibrate(); err != nil {
		panic(err)
	}
	fmt.Println("genuine accepted:", bus.Authenticate().Accepted)

	// A cold-boot attacker moves the module onto their own machine.
	thief := divot.NewColdBootSwap(sys.Config().Line, sys.Stream("thief"))
	bus.Module.SetObservedLine(thief.BusSeenByModule())
	bus.MonitorOnce()
	fmt.Println("module gate open on attacker bus:", bus.Module.Gate.Authorized())
	// Output:
	// genuine accepted: true
	// module gate open on attacker bus: false
}

// ExampleSystem_NewMultiLink protects a bus as a 2-wire bundle: both wires
// must authenticate.
func ExampleSystem_NewMultiLink() {
	sys := divot.NewSystem(7, divot.DefaultConfig())
	bus, err := sys.NewMultiLink("bus-a", 2)
	if err != nil {
		panic(err)
	}
	if err := bus.Calibrate(); err != nil {
		panic(err)
	}
	fmt.Println("clean alerts:", len(bus.MonitorOnce()))

	divot.NewWireTap(0.1).Apply(bus.Wires[1].Line)
	alerts := bus.MonitorOnce()
	fmt.Println("alerts after tapping wire 1:", len(alerts) > 0)
	// Output:
	// clean alerts: 0
	// alerts after tapping wire 1: true
}

// ExampleSimilarity scores two fingerprints of the same line.
func ExampleSimilarity() {
	sys := divot.NewSystem(3, divot.DefaultConfig())
	a := sys.MustNewLink("a")
	b := sys.MustNewLink("b")
	if err := a.Calibrate(); err != nil {
		panic(err)
	}
	if err := b.Calibrate(); err != nil {
		panic(err)
	}
	// Links authenticate themselves, not each other.
	fmt.Println("a accepts itself:", a.Authenticate().Accepted)
	fmt.Println("b accepts itself:", b.Authenticate().Accepted)
	// Output:
	// a accepts itself: true
	// b accepts itself: true
}
