package divot

import (
	"fmt"

	"divot/internal/memctl"
	"divot/internal/react"
	"divot/internal/sim"
)

// MemorySystem is the paper's Fig. 6 example design, end to end: a DDR-style
// memory controller (CPU side) and an SDRAM device (module side) joined by a
// DIVOT-protected bus. Both iTDRs monitor continuously on a discrete-event
// timeline; the CPU-side gate halts command issue and the module-side gate
// blocks column accesses whenever authentication fails.
type MemorySystem struct {
	// Sched is the shared discrete-event timeline.
	Sched *sim.Scheduler
	// Bus is the protected link between controller and device.
	Bus *Link
	// Controller is the CPU-side memory controller.
	Controller *memctl.Controller
	// Device is the SDRAM module.
	Device *memctl.Device
	// Reactor escalates monitoring alerts into platform actions (log,
	// halt, wipe) per the configured policy.
	Reactor *react.Reactor

	monitoring bool
	stopped    bool
	// monitorGen invalidates rounds scheduled by earlier StartMonitor calls
	// (see StorageSystem.startMonitor).
	monitorGen int
	lastErr    error
	responses  []memctl.Response
}

// SimTime is the discrete-event timeline's time unit (picoseconds), used by
// RunFor/Drain deadlines. The constants below let callers outside this
// module write `10 * divot.SimMillisecond`.
type SimTime = sim.Time

// Simulation time constants.
const (
	SimPicosecond  = sim.Picosecond
	SimNanosecond  = sim.Nanosecond
	SimMicrosecond = sim.Microsecond
	SimMillisecond = sim.Millisecond
)

// SimFromSeconds converts floating-point seconds to simulation time.
var SimFromSeconds = sim.FromSeconds

// Reaction re-exports for MemorySystem callers.
type (
	// ReactionPolicy sets the escalation thresholds.
	ReactionPolicy = react.Policy
	// ReactionAction is what the platform is told to do.
	ReactionAction = react.Action
	// ReactionState is the escalation level.
	ReactionState = react.State
	// ReactorSnapshot is a reactor's durable state (Reactor.Snapshot /
	// Reactor.Restore) — escalation level and anti-ratchet streaks.
	ReactorSnapshot = react.Snapshot
)

// Reaction action constants.
const (
	ReactNone = react.ActionNone
	ReactLog  = react.ActionLog
	ReactHalt = react.ActionHalt
	ReactWipe = react.ActionWipe
)

// Reaction state constants.
const (
	ReactStateNormal   = react.StateNormal
	ReactStateAlerted  = react.StateAlerted
	ReactStateHalted   = react.StateHalted
	ReactStateWiped    = react.StateWiped
	ReactStateSuspect  = react.StateSuspect
	ReactStateDegraded = react.StateDegraded
)

// DefaultReactionPolicy re-exports react.DefaultPolicy.
var DefaultReactionPolicy = react.DefaultPolicy

// Reactor is the escalation state machine; feed it each round's alerts and
// health via ObserveHealth.
type Reactor = react.Reactor

// NewReactor builds a standalone reactor for custom monitoring loops (the
// simulated systems above construct their own).
var NewReactor = react.NewReactor

// Re-exported memory types for callers of MemorySystem.
type (
	// MemRequest is a memory operation.
	MemRequest = memctl.Request
	// MemResponse is a completed operation's outcome.
	MemResponse = memctl.Response
	// MemAddress is a decomposed DRAM address.
	MemAddress = memctl.Address
	// MemOp is the operation type.
	MemOp = memctl.Op
	// MemStatus is the request outcome status.
	MemStatus = memctl.Status
	// ControllerConfig configures the memory controller.
	ControllerConfig = memctl.ControllerConfig
	// MemGeometry is the DRAM organization.
	MemGeometry = memctl.Geometry
	// MemMapper translates linear physical addresses to DRAM coordinates.
	MemMapper = memctl.Mapper
	// MemMapPolicy selects the address-interleaving scheme.
	MemMapPolicy = memctl.MapPolicy
)

// Address-mapping constants and constructor.
const (
	MapRowMajor        = memctl.MapRowMajor
	MapBankInterleaved = memctl.MapBankInterleaved
)

// NewMemMapper builds an address mapper over a geometry.
var NewMemMapper = memctl.NewMapper

// Memory operation constants.
const (
	OpRead                = memctl.OpRead
	OpWrite               = memctl.OpWrite
	StatusOK              = memctl.StatusOK
	StatusBlockedByCPU    = memctl.StatusBlockedByCPU
	StatusBlockedByModule = memctl.StatusBlockedByModule
)

// MemoryConfig parameterizes NewMemorySystem.
type MemoryConfig struct {
	Controller memctl.ControllerConfig
	Geometry   memctl.Geometry
	// MonitorInterval is the simulated time between monitoring rounds;
	// zero uses one measurement duration (back-to-back monitoring, the
	// paper's continuous mode).
	MonitorInterval sim.Time
	// Reaction sets the alert-escalation policy.
	Reaction react.Policy
}

// DefaultMemoryConfig returns an 800 MHz FR-FCFS controller over the default
// geometry with continuous monitoring and the default escalation policy.
func DefaultMemoryConfig() MemoryConfig {
	return MemoryConfig{
		Controller: memctl.DefaultControllerConfig(),
		Geometry:   memctl.DefaultGeometry(),
		Reaction:   react.DefaultPolicy(),
	}
}

// NewMemorySystem wires a protected memory system from a calibrated (or
// yet-to-be-calibrated) link of this system.
func (s *System) NewMemorySystem(id string, mcfg MemoryConfig) (*MemorySystem, error) {
	link, err := s.NewLink(id)
	if err != nil {
		return nil, err
	}
	sched := &sim.Scheduler{}
	dev, err := memctl.NewDevice(mcfg.Geometry, link.Module.Gate)
	if err != nil {
		return nil, err
	}
	ctl, err := memctl.NewController(sched, dev, mcfg.Controller, link.CPU.Gate)
	if err != nil {
		return nil, err
	}
	reactor, err := react.NewReactor(mcfg.Reaction)
	if err != nil {
		return nil, err
	}
	if s.sink != nil {
		reactor.SetSink(s.sink, id)
	}
	m := &MemorySystem{Sched: sched, Bus: link, Controller: ctl, Device: dev, Reactor: reactor}
	if mcfg.MonitorInterval > 0 {
		m.startMonitor(mcfg.MonitorInterval)
	} else {
		m.startMonitor(sim.FromSeconds(link.MeasurementDuration()))
	}
	return m, nil
}

// StartMonitor (re)starts the continuous monitoring loop at the given
// interval; zero or negative uses one measurement duration (back-to-back
// monitoring, the paper's continuous mode). A no-op while the loop runs.
func (m *MemorySystem) StartMonitor(interval sim.Time) {
	if interval <= 0 {
		interval = sim.FromSeconds(m.Bus.MeasurementDuration())
	}
	m.startMonitor(interval)
}

// startMonitor schedules the continuous monitoring loop: each round consumes
// one measurement duration of simulated time and then updates the gates.
func (m *MemorySystem) startMonitor(interval sim.Time) {
	if m.monitoring {
		return
	}
	m.monitoring = true
	m.stopped = false
	m.monitorGen++
	gen := m.monitorGen
	var round func()
	round = func() {
		if m.stopped || gen != m.monitorGen {
			return
		}
		if m.Bus.Calibrated() {
			// A protocol error (lost enrollment) skips reaction this round;
			// the next round reports again, health reflects the failure, and
			// the error is retained for LastMonitorError (and reported via
			// the link's telemetry sink as an EventMonitorError).
			if alerts, err := m.Bus.MonitorOnce(); err == nil {
				m.Reactor.ObserveHealth(alerts, m.Bus.Health())
			} else {
				m.lastErr = err
			}
		}
		m.Sched.After(interval, round)
	}
	m.Sched.After(interval, round)
}

// StopMonitor halts the monitoring loop (ends the simulation cleanly);
// StartMonitor may restart it. Calling it again while stopped is a no-op.
func (m *MemorySystem) StopMonitor() {
	m.stopped = true
	m.monitoring = false
	m.monitorGen++
}

// Monitoring reports whether the continuous monitoring loop is scheduled.
func (m *MemorySystem) Monitoring() bool { return m.monitoring }

// LastMonitorError returns the most recent protocol error a monitoring round
// hit (nil while monitoring is healthy).
func (m *MemorySystem) LastMonitorError() error { return m.lastErr }

// Calibrate enrolls the bus fingerprint at both endpoints and opens the
// gates — §III's pairing step, done at installation time.
func (m *MemorySystem) Calibrate() error { return m.Bus.Calibrate() }

// Read submits a read; the response is collected into Responses.
func (m *MemorySystem) Read(addr MemAddress) uint64 {
	return m.Controller.Submit(&memctl.Request{
		Op: OpRead, Addr: addr,
		Done: func(r memctl.Response) { m.responses = append(m.responses, r) },
	})
}

// Write submits a write of data (one burst) to addr.
func (m *MemorySystem) Write(addr MemAddress, data []byte) uint64 {
	return m.Controller.Submit(&memctl.Request{
		Op: OpWrite, Addr: addr, Data: data,
		Done: func(r memctl.Response) { m.responses = append(m.responses, r) },
	})
}

// RunFor advances the simulation by d.
func (m *MemorySystem) RunFor(d sim.Time) { m.Sched.RunUntil(m.Sched.Now() + d) }

// Drain runs until every submitted request has a response or the deadline
// passes; it returns an error on timeout with requests still in flight.
func (m *MemorySystem) Drain(submitted int, deadline sim.Time) error {
	for m.Sched.Now() < deadline && len(m.responses) < submitted {
		m.RunFor(10 * sim.Microsecond)
	}
	if len(m.responses) < submitted {
		return fmt.Errorf("divot: %d/%d responses after %v",
			len(m.responses), submitted, m.Sched.Now())
	}
	return nil
}

// Responses returns the collected responses in completion order.
func (m *MemorySystem) Responses() []MemResponse { return m.responses }

// ClearResponses resets the response log.
func (m *MemorySystem) ClearResponses() { m.responses = nil }
