package divot

import (
	"bytes"
	"strings"
	"testing"

	"divot/internal/sim"
)

// auditAll builds a system of three single links and one two-wire bus, wires
// an audit log, calibrates everything, runs rounds through MonitorAll, and
// returns the audit bytes.
func auditAll(t *testing.T, parallelism, rounds int) []byte {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Engine.Parallelism = parallelism
	sys := NewSystem(77, cfg)
	var buf bytes.Buffer
	audit := NewAuditLog(&buf)
	sys.SetSink(audit)
	for _, id := range []string{"dimm0", "dimm1", "dimm2"} {
		if err := sys.MustNewLink(id).Calibrate(); err != nil {
			t.Fatal(err)
		}
	}
	mb, err := sys.NewMultiLink("wide0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		if _, err := sys.MonitorAll(); err != nil {
			t.Fatal(err)
		}
	}
	if err := audit.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAuditLogBitIdenticalAcrossParallelism(t *testing.T) {
	seq := auditAll(t, 1, 2)
	par := auditAll(t, 4, 2)
	if len(seq) == 0 {
		t.Fatal("audit log is empty")
	}
	if !bytes.Equal(seq, par) {
		// Find the first differing line for a useful failure message.
		a, b := strings.Split(string(seq), "\n"), strings.Split(string(par), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("audit line %d differs between Parallelism 1 and 4:\nP1: %s\nP4: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("audit length differs: P1 %d lines, P4 %d lines", len(a), len(b))
	}
}

func TestSetSinkWiresExistingAndFutureBuses(t *testing.T) {
	sys := NewSystem(5, DefaultConfig())
	before := sys.MustNewLink("pre")
	rec := &TelemetryRecorder{}
	sys.SetSink(rec)
	if sys.Sink() != TelemetrySink(rec) {
		t.Fatal("Sink() should return the attached sink")
	}
	after := sys.MustNewLink("post")
	for _, l := range []*Link{before, after} {
		if err := l.Calibrate(); err != nil {
			t.Fatal(err)
		}
	}
	var pre, post bool
	for _, ev := range rec.Events() {
		if ev.Kind == EventCalibrated {
			switch ev.Link {
			case "pre":
				pre = true
			case "post":
				post = true
			}
		}
	}
	if !pre || !post {
		t.Fatalf("calibrated events: pre=%v post=%v (both links should report)", pre, post)
	}
}

func TestStorageMonitorRestart(t *testing.T) {
	sys := NewSystem(34, DefaultConfig())
	st, err := sys.NewStorageSystem("ssd0", 64, StorageHostConfig{
		LinkClockHz: 1e9, CmdOverheadCycles: 64, MediaCycles: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Calibrate(); err != nil {
		t.Fatal(err)
	}
	step := sim.FromSeconds(4 * st.Bus.MeasurementDuration())
	st.RunFor(step)
	ran := st.Bus.Rounds()
	if ran == 0 {
		t.Fatal("monitoring loop never ran a round")
	}
	if !st.Monitoring() {
		t.Fatal("Monitoring() should report true while the loop runs")
	}

	st.StopMonitor()
	st.StopMonitor() // idempotent
	if st.Monitoring() {
		t.Fatal("Monitoring() should report false after StopMonitor")
	}
	st.RunFor(step)
	if got := st.Bus.Rounds(); got != ran {
		t.Fatalf("rounds advanced to %d after StopMonitor (was %d)", got, ran)
	}

	// The original bug: monitoring stayed true and stopped stayed set, so a
	// restart silently did nothing forever.
	st.StartMonitor(0)
	st.StartMonitor(0) // idempotent while running
	st.RunFor(step)
	if got := st.Bus.Rounds(); got <= ran {
		t.Fatalf("rounds stuck at %d after StartMonitor — restart is broken", got)
	}

	// A second stop/start cycle must behave the same (no generation leak).
	st.StopMonitor()
	mid := st.Bus.Rounds()
	st.RunFor(step)
	if got := st.Bus.Rounds(); got != mid {
		t.Fatalf("rounds advanced to %d after second StopMonitor (was %d)", got, mid)
	}
	st.StartMonitor(0)
	st.RunFor(step)
	if got := st.Bus.Rounds(); got <= mid {
		t.Fatal("second restart is broken")
	}
	st.StopMonitor()
}

func TestMemoryMonitorRestart(t *testing.T) {
	sys := NewSystem(35, DefaultConfig())
	m, err := sys.NewMemorySystem("dimm0", DefaultMemoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(); err != nil {
		t.Fatal(err)
	}
	step := sim.FromSeconds(4 * m.Bus.MeasurementDuration())
	m.RunFor(step)
	ran := m.Bus.Rounds()
	if ran == 0 {
		t.Fatal("monitoring loop never ran a round")
	}
	m.StopMonitor()
	m.RunFor(step)
	if got := m.Bus.Rounds(); got != ran {
		t.Fatalf("rounds advanced to %d after StopMonitor (was %d)", got, ran)
	}
	m.StartMonitor(0)
	m.RunFor(step)
	if got := m.Bus.Rounds(); got <= ran {
		t.Fatal("memory monitor restart is broken")
	}
	if m.LastMonitorError() != nil {
		t.Errorf("unexpected monitor error: %v", m.LastMonitorError())
	}
	m.StopMonitor()
}
