GO ?= go
PR ?= 4

.PHONY: all build test race bench bench-experiments bench-snapshot vet

all: build test

## build: compile every package and the divotbench CLI
build:
	$(GO) build ./...

## test: the tier-1 gate — build everything and run the full test suite
test: build
	$(GO) test ./...

## race: run the internal suites (core, exper, itdr, ...), the daemon /
## scheduler paths, and the client SDK under the race detector
race:
	$(GO) test -race ./internal/... ./cmd/... ./client/...

## bench: run every benchmark once (experiment tables + hot-path micros)
bench:
	$(GO) test . -run XXX -bench . -benchtime 1x

## bench-snapshot: record the hot-path micro-benchmarks as machine-readable
## JSON (BENCH_$(PR).json) for cross-PR diffing; parsed by cmd/benchsnap
bench-snapshot:
	$(GO) test . -run XXX -bench 'IIPMeasurement|ReflectionSynthesis|Similarity|ErrorFunction|MonitorRound|MonitorAll|ClientRoundTrip' -benchtime 20x -benchmem \
		| $(GO) run ./cmd/benchsnap > BENCH_$(PR).json

## bench-experiments: the fleet campaign benchmarks used in EXPERIMENTS.md's
## performance table; pipe through benchstat to compare runs
bench-experiments:
	$(GO) test . -run XXX -bench 'Fig7|Fig8|Vibration|EMI|CloneResistance|IIPMeasurement|MonitorAll' -benchtime 3x

vet:
	$(GO) vet ./...
