GO ?= go

.PHONY: all build test race bench bench-experiments vet

all: build test

## build: compile every package and the divotbench CLI
build:
	$(GO) build ./...

## test: the tier-1 gate — build everything and run the full test suite
test: build
	$(GO) test ./...

## race: run the internal suites (core, exper, itdr, ...) under the race detector
race:
	$(GO) test -race ./internal/...

## bench: run every benchmark once (experiment tables + hot-path micros)
bench:
	$(GO) test . -run XXX -bench . -benchtime 1x

## bench-experiments: the fleet campaign benchmarks used in EXPERIMENTS.md's
## performance table; pipe through benchstat to compare runs
bench-experiments:
	$(GO) test . -run XXX -bench 'Fig7|Fig8|Vibration|EMI|CloneResistance|IIPMeasurement|MonitorAll' -benchtime 3x

vet:
	$(GO) vet ./...
