GO ?= go
PR ?= 10

# MONITOR_ALLOC_BUDGET is the allocs/op ceiling for the steady-state
# monitoring round benchmark (BenchmarkMonitorRound runs at the default
# parallelism, so worker-pool goroutine spawns dominate; the tighter ≤2
# sequential budget is enforced by TestMonitorOnceAllocationBudget).
MONITOR_ALLOC_BUDGET ?= 64

# CALIB_ALLOC_BUDGET is the allocs/op ceiling for a warm cold-enrollment
# (BenchmarkCalibrate re-calibrates a standing link on the arena path; the
# per-capture ≤4 budget is enforced by TestCalibrateAllocationBudget).
CALIB_ALLOC_BUDGET ?= 64

# BENCH_MAX_REGRESS is the percentage any guarded benchmark's ns/B/allocs
# may grow over the recorded BENCH_$(PR).json snapshot before bench-guard
# fails. Generous because shared CI runners show up to ~1.6× wall-clock
# scatter between runs (measured on the reference box); B/op and allocs/op
# are noise-free, so allocation growth is the signal this mostly exists
# for — a genuine 2× time regression still trips it.
BENCH_MAX_REGRESS ?= 100

.PHONY: all build test race bench bench-guard bench-experiments bench-snapshot fuzz-short vet \
	quality-guard quality-baseline experiments

all: build test

## build: compile every package and the divotbench CLI
build:
	$(GO) build ./...

## test: the tier-1 gate — build everything and run the full test suite
test: build
	$(GO) test ./...

## race: run the internal suites (core, exper, itdr, ...), the daemon /
## scheduler paths, and the client SDK under the race detector
race:
	$(GO) test -race ./internal/... ./cmd/... ./client/...

## bench: run every benchmark once (experiment tables + hot-path micros);
## -short keeps the 1000-bus fleet sweep and the big federation rows out of
## the smoke pass
bench:
	$(GO) test -short . ./internal/daemon ./cmd/divotherd -run XXX -bench . -benchtime 1x -benchmem

## bench-guard: fail if a hot path leaks allocation back in or regresses
## past the recorded snapshot — benchsnap -max-allocs checks the monitoring
## round and warm re-calibration against their budgets, and -compare diffs
## both against BENCH_$(PR).json with a $(BENCH_MAX_REGRESS)% ceiling
bench-guard:
	$(GO) test . -run XXX -bench 'MonitorRound$$|Calibrate$$' -benchtime 20x -benchmem \
		| $(GO) run ./cmd/benchsnap \
			-max-allocs 'MonitorRound=$(MONITOR_ALLOC_BUDGET)' \
			-max-allocs 'Calibrate=$(CALIB_ALLOC_BUDGET)' \
			-compare BENCH_$(PR).json -max-regress $(BENCH_MAX_REGRESS) > /dev/null

## bench-snapshot: record the hot-path micro-benchmarks plus the full
## federated-attest sweep (1/4/16 daemons × 1k/10k/100k buses — the big rows
## calibrate 100k buses first, so this runs for tens of minutes) as
## machine-readable JSON (BENCH_$(PR).json) for cross-PR diffing
bench-snapshot:
	{ $(GO) test -short . ./internal/daemon -run XXX -bench 'IIPMeasurement|ReflectionSynthesis|Similarity|ErrorFunction|MonitorRound|MonitorAll|ClientRoundTrip|FleetScheduler|Attest$$|FleetHealth|DaemonStartup|Calibrate$$' -benchtime 20x -benchmem ; \
	  $(GO) test ./internal/daemon -run XXX -bench 'FleetColdStart' -benchtime 1x -benchmem -timeout 30m ; \
	  $(GO) test ./internal/daemon -run XXX -bench 'EventFanout' -benchmem ; \
	  $(GO) test ./cmd/divotherd -run XXX -bench 'FederatedAttest' -benchtime 1x -benchmem -timeout 90m ; } \
		| $(GO) run ./cmd/benchsnap > BENCH_$(PR).json

# EventFanout runs on the default time-based benchtime, not 20x: its
# cores/frames-per-second metrics only mean anything once the warmup and
# drain amortize across hundreds of thousands of publishes.

## bench-experiments: the fleet campaign benchmarks used in EXPERIMENTS.md's
## performance table; pipe through benchstat to compare runs
bench-experiments:
	$(GO) test . -run XXX -bench 'Fig7|Fig8|Vibration|EMI|CloneResistance|IIPMeasurement|MonitorAll' -benchtime 3x

## fuzz-short: a quick native-fuzzing pass over the adversarial-input
## decoders — the snapshot envelope, the WAL record scanner/replayer, and the
## binary stream frame codec must never panic or fabricate a record on
## adversarial bytes (CI runs this on every push)
fuzz-short:
	$(GO) test ./internal/store -run XXX -fuzz FuzzDecodeSnapshot -fuzztime 10s
	$(GO) test ./internal/store -run XXX -fuzz FuzzScanRecord -fuzztime 10s
	$(GO) test ./internal/store -run XXX -fuzz FuzzWALReplay -fuzztime 10s
	$(GO) test ./internal/wire -run XXX -fuzz FuzzDecodeFrame -fuzztime 10s

## quality-guard: fail if detection quality regressed — divotlab re-runs the
## short fixed-seed grid and compares every cell's TPR/FPR and every ROC
## curve's AUC against the checked-in baseline (CI runs this on every push)
quality-guard:
	$(GO) run ./cmd/divotlab guard \
		-config experiments/grids/quality.json -baseline QUALITY_BASELINE.json

## quality-baseline: re-record QUALITY_BASELINE.json after a *deliberate*
## detector change (review the TPR/FPR diff before committing it)
quality-baseline:
	$(GO) run ./cmd/divotlab run \
		-config experiments/grids/quality.json -out QUALITY_BASELINE.json

## experiments: regenerate the detection-quality report and splice its
## ROC/operating-point tables into EXPERIMENTS.md between the divotlab markers
experiments:
	$(GO) run ./cmd/divotlab run \
		-config experiments/grids/roc.json \
		-out experiments/detection_quality.json -markdown EXPERIMENTS.md

vet:
	$(GO) vet ./...
