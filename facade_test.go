package divot

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"divot/internal/sim"
)

func TestMultiLinkFacade(t *testing.T) {
	sys := NewSystem(30, DefaultConfig())
	bus, err := sys.NewMultiLink("bus-a", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewMultiLink("bus-a", 2); err == nil {
		t.Error("duplicate multi-link id should fail")
	}
	if _, err := sys.NewLink("bus-a"); err == nil {
		t.Error("multi-link id should also be reserved against NewLink")
	}
	if err := bus.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if alerts, err := bus.MonitorOnce(); err != nil {
		t.Fatal(err)
	} else if len(alerts) != 0 {
		t.Errorf("clean multi-link alerted: %v", alerts)
	}
	if !bus.CPUGate.Authorized() || !bus.ModuleGate.Authorized() {
		t.Error("fused gates should be open")
	}
}

func TestECCMemorySystem(t *testing.T) {
	cfg := DefaultMemoryConfig()
	cfg.Geometry.ECC = true
	sys := NewSystem(31, DefaultConfig())
	m, err := sys.NewMemorySystem("eccdimm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, cfg.Geometry.BurstBytes)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	addr := MemAddress{Bank: 1, Row: 2, Col: 3}
	m.Write(addr, payload)
	if err := m.Drain(1, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// A cosmic-ray upset is corrected transparently during the read.
	m.Device.InjectBitError(addr, 5, 2)
	m.ClearResponses()
	m.Read(addr)
	if err := m.Drain(1, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	resp := m.Responses()[0]
	if resp.Status != StatusOK {
		t.Fatalf("read status %v", resp.Status)
	}
	if resp.Data[5] != payload[5] {
		t.Error("ECC did not repair the upset")
	}
	if m.Device.ECCStats().CorrectedWords != 1 {
		t.Errorf("ECC stats: %+v", m.Device.ECCStats())
	}
	m.StopMonitor()
}

func TestReactorEscalatesOnColdBoot(t *testing.T) {
	sys := NewSystem(32, DefaultConfig())
	m, err := sys.NewMemorySystem("dimm0", DefaultMemoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if m.Reactor.State().String() != "normal" {
		t.Fatalf("initial reactor state %v", m.Reactor.State())
	}
	cb := NewColdBootSwap(sys.Config().Line, sys.Stream("attacker"))
	m.Bus.Module.SetObservedLine(cb.BusSeenByModule())
	// Enough rounds of persistent failure to pass the wipe threshold.
	rounds := DefaultReactionPolicy().AuthFailureToleranceRounds + 3
	m.RunFor(sim.FromSeconds(float64(rounds+1) * m.Bus.MeasurementDuration()))
	if got := m.Reactor.State(); got != ReactStateWiped {
		t.Errorf("reactor state after persistent cold boot: %v", got)
	}
	if len(m.Reactor.Log) == 0 {
		t.Error("reactor log empty")
	}
	m.StopMonitor()
}

func TestAlignStretchFacade(t *testing.T) {
	sys := NewSystem(33, DefaultConfig())
	l := sys.MustNewLink("bus0")
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	// The facade exposes AlignStretch for custom matching flows; a smoke
	// check that it composes with re-exported types.
	var x, y IIP
	res := AlignStretch(x, y, 0.01, Pipeline{})
	if res.Stretch != 1 || res.Score != 0 {
		t.Errorf("invalid-input alignment: %+v", res)
	}
}

func TestStorageSystemStolenDrive(t *testing.T) {
	sys := NewSystem(34, DefaultConfig())
	st, err := sys.NewStorageSystem("ssd0", 1024, StorageHostConfig{
		LinkClockHz: 1e9, CmdOverheadCycles: 64, MediaCycles: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Calibrate(); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, StorageBlockSize)
	payload[0] = 0x5A
	st.WriteBlock(9, payload)
	st.ReadBlock(9)
	st.RunFor(sim.FromSeconds(2 * st.Bus.MeasurementDuration()))
	comps := st.Completions()
	if len(comps) != 2 || comps[0].Status != StorageOK || comps[1].Status != StorageOK {
		t.Fatalf("completions: %+v", comps)
	}
	if comps[1].Data[0] != 0x5A {
		t.Error("read-back mismatch")
	}

	// The drive is stolen and mounted in the attacker's chassis.
	cb := NewColdBootSwap(sys.Config().Line, sys.Stream("thief"))
	st.Bus.Module.SetObservedLine(cb.BusSeenByModule())
	st.RunFor(sim.FromSeconds(3 * st.Bus.MeasurementDuration()))
	st.ClearCompletions()
	st.ReadBlock(9)
	st.RunFor(sim.FromSeconds(2 * st.Bus.MeasurementDuration()))
	comps = st.Completions()
	if len(comps) != 1 || comps[0].Status != StorageBlockedDev {
		t.Fatalf("stolen-drive read: %+v", comps)
	}
	st.StopMonitor()
}

func TestMemMapperFacade(t *testing.T) {
	m, err := NewMemMapper(DefaultMemoryConfig().Geometry, MapBankInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := m.Map(64)
	if err != nil {
		t.Fatal(err)
	}
	if addr.Bank != 1 {
		t.Errorf("second burst should interleave to bank 1, got %v", addr)
	}
}

func TestFacadeConstructorErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.Engine.ITDR.TrialsPerBin = 0
	sys := NewSystem(40, bad)
	if _, err := sys.NewLink("x"); err == nil {
		t.Error("bad engine config should fail NewLink")
	}
	if _, err := sys.NewMultiLink("y", 0); err == nil {
		t.Error("zero wires should fail NewMultiLink")
	}

	good := NewSystem(41, DefaultConfig())
	if _, err := good.NewStorageSystem("s", 0, StorageHostConfig{
		LinkClockHz: 1e9, CmdOverheadCycles: 1, MediaCycles: 1}); err == nil {
		t.Error("zero capacity should fail NewStorageSystem")
	}
	mcfg := DefaultMemoryConfig()
	mcfg.Geometry.Banks = 0
	if _, err := good.NewMemorySystem("m", mcfg); err == nil {
		t.Error("bad geometry should fail NewMemorySystem")
	}
	mcfg = DefaultMemoryConfig()
	mcfg.Reaction.RecoveryRounds = 0
	if _, err := good.NewMemorySystem("m2", mcfg); err == nil {
		t.Error("bad reaction policy should fail NewMemorySystem")
	}
}

func TestFixedPointScorerFacade(t *testing.T) {
	sys := NewSystem(42, DefaultConfig())
	l := sys.MustNewLink("bus0")
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	// Integer scoring through the public alias.
	var s FixedPointScorer
	s.Bits = 8
	if _, err := s.Quantize(IIP{}); err == nil {
		t.Error("invalid fingerprint should fail quantization")
	}
}

func TestSimTimeReexports(t *testing.T) {
	if SimMillisecond != 1000*SimMicrosecond || SimMicrosecond != 1000*SimNanosecond ||
		SimNanosecond != 1000*SimPicosecond {
		t.Error("simulation time constants inconsistent")
	}
	if SimFromSeconds(1e-9) != SimNanosecond {
		t.Error("SimFromSeconds mismatch")
	}
	var d SimTime = 5 * SimMicrosecond
	if math.Abs(d.Seconds()-5e-6) > 1e-18 {
		t.Errorf("Seconds = %v", d.Seconds())
	}
}

func TestSystemRegistryAndSkips(t *testing.T) {
	sys := NewSystem(50, DefaultConfig())
	single := sys.MustNewLink("a-single")
	if err := single.Calibrate(); err != nil {
		t.Fatal(err)
	}
	sys.MustNewLink("b-raw") // never calibrated
	multi, err := sys.NewMultiLink("c-bundle", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := multi.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewMultiLink("d-idle", 2); err != nil {
		t.Fatal(err)
	}

	// The registries must hand back what was built (the old facade stored
	// nil multi-link entries and lost them).
	if got, ok := sys.Link("a-single"); !ok || got != single {
		t.Error("Link getter lost a registered single link")
	}
	if got, ok := sys.MultiLink("c-bundle"); !ok || got != multi {
		t.Error("MultiLink getter lost a registered multi-link")
	}
	if _, ok := sys.Link("c-bundle"); ok {
		t.Error("multi-link id must not resolve as a single link")
	}
	if _, ok := sys.MultiLink("nope"); ok {
		t.Error("unknown id resolved as multi-link")
	}

	rounds, err := sys.MonitorAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 4 {
		t.Fatalf("MonitorAll covered %d of 4 buses: %+v", len(rounds), rounds)
	}
	want := map[string]bool{ // id -> skipped
		"a-single": false, "b-raw": true, "c-bundle": false, "d-idle": true,
	}
	for i, la := range rounds {
		if i > 0 && rounds[i-1].ID >= la.ID {
			t.Error("MonitorAll results not sorted by id")
		}
		skip, known := want[la.ID]
		if !known {
			t.Errorf("unexpected bus %q in MonitorAll", la.ID)
			continue
		}
		if la.Skipped != skip {
			t.Errorf("%s: skipped=%v want %v", la.ID, la.Skipped, skip)
		}
		if skip && la.Reason != "not calibrated" {
			t.Errorf("%s: reason %q", la.ID, la.Reason)
		}
		if len(la.Alerts) != 0 {
			t.Errorf("%s: clean bus alerted: %v", la.ID, la.Alerts)
		}
	}

	// HealthAll: one entry for the calibrated single, one per wire of the
	// calibrated bundle, nothing for uncalibrated buses.
	hs := sys.HealthAll()
	if len(hs) != 3 {
		t.Fatalf("HealthAll entries: %d want 3: %+v", len(hs), hs)
	}
	for i, h := range hs {
		if i > 0 && hs[i-1].ID >= h.ID {
			t.Error("HealthAll not sorted by id")
		}
		if h.State() != HealthOK {
			t.Errorf("%s: state %v", h.ID, h.State())
		}
	}
}

// TestHealthAllEmptyFleetEncodesEmptyJSONList pins the regression where a
// fleet with nothing calibrated returned a nil slice that JSON-encoded as
// null instead of [].
func TestHealthAllEmptyFleetEncodesEmptyJSONList(t *testing.T) {
	sys := NewSystem(3, DefaultConfig())
	if _, err := sys.NewLink("raw"); err != nil { // registered, never calibrated
		t.Fatal(err)
	}
	hs := sys.HealthAll()
	if hs == nil {
		t.Fatal("HealthAll returned a nil slice for an uncalibrated fleet")
	}
	if len(hs) != 0 {
		t.Fatalf("HealthAll = %+v, want empty", hs)
	}
	raw, err := json.Marshal(hs)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "[]" {
		t.Errorf("HealthAll JSON = %s, want []", raw)
	}
}

// TestMonitorAllCtxCancellation checks the context-aware facade round: a
// cancelled context skips every pending bus with SkipCancelled and joins
// context.Canceled into the error, while a live context behaves exactly like
// MonitorAll.
func TestMonitorAllCtxCancellation(t *testing.T) {
	sys := NewSystem(51, DefaultConfig())
	for _, id := range []string{"m0", "m1"} {
		l, err := sys.NewLink(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Calibrate(); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any round starts
	rounds, err := sys.MonitorAllCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled joined in", err)
	}
	if len(rounds) != 2 {
		t.Fatalf("rounds = %+v", rounds)
	}
	for _, la := range rounds {
		if !la.Skipped || la.Reason != SkipCancelled {
			t.Errorf("%s: skipped=%v reason=%q, want cancelled skip", la.ID, la.Skipped, la.Reason)
		}
	}
	if rounds[0].Reason.String() != "cancelled" {
		t.Errorf("SkipCancelled wire form = %q", rounds[0].Reason.String())
	}

	// A live context runs every bus, like MonitorAll.
	rounds, err = sys.MonitorAllCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, la := range rounds {
		if la.Skipped {
			t.Errorf("%s unexpectedly skipped: %q", la.ID, la.Reason)
		}
	}
}

// TestMonitorNCtxStopsBetweenRounds checks the context-aware multi-round
// monitor: cancellation between rounds returns the context error without
// running further rounds.
func TestMonitorNCtxStopsBetweenRounds(t *testing.T) {
	sys := NewSystem(52, DefaultConfig())
	l, err := sys.NewLink("bus0")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Calibrate(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := l.Rounds()
	if _, err := l.MonitorNCtx(ctx, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if l.Rounds() != before {
		t.Errorf("cancelled MonitorNCtx still ran %d rounds", l.Rounds()-before)
	}
	if _, err := l.MonitorNCtx(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if l.Rounds() != before+2 {
		t.Errorf("rounds = %d, want %d", l.Rounds(), before+2)
	}
}
