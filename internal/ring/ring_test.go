package ring

import (
	"fmt"
	"math"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dimm%05d", i)
	}
	return out
}

func assignAll(r *Ring, ks []string) map[string]string {
	out := make(map[string]string, len(ks))
	for _, k := range ks {
		n, ok := r.Get(k)
		if !ok {
			panic("unassigned key on a non-empty ring")
		}
		out[k] = n
	}
	return out
}

func TestEmptyRing(t *testing.T) {
	r := New(0)
	if _, ok := r.Get("x"); ok {
		t.Error("empty ring assigned a key")
	}
	if r.Len() != 0 || len(r.Members()) != 0 {
		t.Error("empty ring reports members")
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r := New(0)
	r.Add("d0")
	for _, k := range keys(100) {
		if n, ok := r.Get(k); !ok || n != "d0" {
			t.Fatalf("Get(%q) = %q, %v; want d0", k, n, ok)
		}
	}
}

func TestAddRemoveIdempotent(t *testing.T) {
	r := New(0)
	r.Add("d0")
	r.Add("d0")
	r.Add("d1")
	if r.Len() != 2 {
		t.Fatalf("Len = %d after duplicate Add, want 2", r.Len())
	}
	r.Remove("ghost")
	r.Remove("d1")
	r.Remove("d1")
	if got := r.Members(); len(got) != 1 || got[0] != "d0" {
		t.Fatalf("Members = %v, want [d0]", got)
	}
}

// TestAssignmentIsMembershipPure: two rings holding the same members agree on
// every key regardless of the Add/Remove history that built them.
func TestAssignmentIsMembershipPure(t *testing.T) {
	a, b := New(64), New(64)
	for _, n := range []string{"d0", "d1", "d2", "d3"} {
		a.Add(n)
	}
	a.Remove("d2")
	b.Add("d3")
	b.Add("d0")
	b.Add("d2")
	b.Remove("d2")
	b.Add("d1")
	for _, k := range keys(500) {
		na, _ := a.Get(k)
		nb, _ := b.Get(k)
		if na != nb {
			t.Fatalf("rings with equal membership disagree on %q: %q vs %q", k, na, nb)
		}
	}
}

// TestJoinMovesAboutOneNth is the consistent-hashing property: adding a node
// to an N-node ring reassigns ~1/(N+1) of the keys — and every reassigned key
// moves TO the new node, never between old ones.
func TestJoinMovesAboutOneNth(t *testing.T) {
	const n, nKeys = 8, 20000
	r := New(0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("d%d", i))
	}
	ks := keys(nKeys)
	before := assignAll(r, ks)
	r.Add("d-new")
	after := assignAll(r, ks)

	moved := 0
	for _, k := range ks {
		if before[k] != after[k] {
			moved++
			if after[k] != "d-new" {
				t.Fatalf("key %q moved between old nodes (%q -> %q) on a join",
					k, before[k], after[k])
			}
		}
	}
	ideal := float64(nKeys) / float64(n+1)
	if f := float64(moved); f < 0.5*ideal || f > 2*ideal {
		t.Errorf("join moved %d keys, want ~%.0f (0.5x..2x tolerated)", moved, ideal)
	}
}

// TestLeaveMovesOnlyTheDepartedKeys: removing a node reassigns exactly the
// keys it owned; every other key stays put.
func TestLeaveMovesOnlyTheDepartedKeys(t *testing.T) {
	const n, nKeys = 8, 20000
	r := New(0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("d%d", i))
	}
	ks := keys(nKeys)
	before := assignAll(r, ks)
	r.Remove("d3")
	after := assignAll(r, ks)

	moved := 0
	for _, k := range ks {
		switch {
		case before[k] == "d3":
			moved++
			if after[k] == "d3" {
				t.Fatalf("key %q still assigned to removed node", k)
			}
		case before[k] != after[k]:
			t.Fatalf("key %q moved (%q -> %q) though its node survived",
				k, before[k], after[k])
		}
	}
	ideal := float64(nKeys) / float64(n)
	if f := float64(moved); f < 0.5*ideal || f > 2*ideal {
		t.Errorf("leave moved %d keys, want ~%.0f (0.5x..2x tolerated)", moved, ideal)
	}
}

// TestBalance: with DefaultReplicas virtual points the per-node share stays
// within a factor of two of ideal — coarse, but it catches a broken hash or
// a collapsed point set.
func TestBalance(t *testing.T) {
	const n, nKeys = 8, 40000
	r := New(0)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("d%d", i))
	}
	counts := make(map[string]int)
	for _, k := range keys(nKeys) {
		node, _ := r.Get(k)
		counts[node]++
	}
	ideal := float64(nKeys) / n
	for node, c := range counts {
		if f := float64(c); f < ideal/2 || f > ideal*2 {
			t.Errorf("node %s owns %d keys, want within [%d, %d]",
				node, c, int(math.Floor(ideal/2)), int(math.Ceil(ideal*2)))
		}
	}
	if len(counts) != n {
		t.Errorf("only %d of %d nodes own keys", len(counts), n)
	}
}

// TestPickSkipsIneligible: Pick must return the first eligible node on the
// clockwise walk, agree with Get when everything is eligible, and fail only
// when nothing qualifies.
func TestPickSkipsIneligible(t *testing.T) {
	r := New(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("d%d", i))
	}
	for _, k := range keys(200) {
		want, _ := r.Get(k)
		if got, ok := r.Pick(k, func(string) bool { return true }); !ok || got != want {
			t.Fatalf("Pick(all-eligible) = %q, want Get's %q", got, want)
		}
		// Excluding the owner must yield a different, eligible node.
		got, ok := r.Pick(k, func(n string) bool { return n != want })
		if !ok || got == want {
			t.Fatalf("Pick(sans owner) = %q, %v; want another node", got, ok)
		}
		if _, ok := r.Pick(k, func(string) bool { return false }); ok {
			t.Fatal("Pick with nothing eligible reported success")
		}
	}
}

// TestPickReassignmentIsConsistent: Picking with "node X ineligible" must
// agree with a ring that never contained X — the federation's re-balance
// story depends on it (a dead daemon's buses land exactly where a ring
// without it would put them).
func TestPickReassignmentIsConsistent(t *testing.T) {
	full, sans := New(0), New(0)
	for _, n := range []string{"d0", "d1", "d2", "d3"} {
		full.Add(n)
		if n != "d2" {
			sans.Add(n)
		}
	}
	for _, k := range keys(1000) {
		got, ok := full.Pick(k, func(n string) bool { return n != "d2" })
		want, _ := sans.Get(k)
		if !ok || got != want {
			t.Fatalf("Pick(sans d2) = %q, want %q (ring-without-d2 assignment)", got, want)
		}
	}
}
