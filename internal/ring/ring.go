// Package ring is a consistent-hash ring: it assigns string keys (buses) to
// nodes (daemons) so that membership changes move only ~1/N of the keys.
//
// Each node is hashed onto the ring at a configurable number of virtual
// points; a key belongs to the first node point clockwise of the key's own
// hash. Adding a node steals ~1/(N+1) of every other node's keys; removing
// one redistributes only its own keys. Assignment is a pure function of the
// membership set — two rings holding the same members agree on every key, no
// matter the order of Add/Remove calls that built them.
//
// Pick extends lookup with an eligibility predicate: it walks clockwise from
// the key's hash and returns the first node the predicate accepts. A
// federation uses this to skip daemons that are down or do not serve the
// bus, which preserves the minimal-movement property for the nodes that
// remain eligible.
package ring

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultReplicas is the virtual-point count per node when New is given 0.
// 128 points keep the per-node key share within a few percent of ideal for
// fleets of up to a few hundred daemons.
const DefaultReplicas = 128

// point is one virtual node position on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring. Safe for concurrent use.
type Ring struct {
	replicas int

	mu      sync.RWMutex
	points  []point // sorted by (hash, node)
	members map[string]bool
}

// New builds an empty ring with the given virtual-point count per node
// (DefaultReplicas when n <= 0).
func New(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]bool)}
}

// hashKey is FNV-1a over the key bytes pushed through a 64-bit avalanche
// finalizer — cheap, stateless, and stable across processes (assignment must
// agree between a herd and any harness that pre-shards a fleet the same
// way). Bare FNV-1a is too correlated on short keys like "d5#17": adjacent
// suffixes land near each other and a node's whole arc clumps, skewing
// ownership 6x; the finalizer's mixing restores the uniformity consistent
// hashing needs.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // fnv cannot fail
	return fmix64(h.Sum64())
}

// fmix64 is the murmur3 64-bit finalizer: full avalanche, bijective.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a node (no-op when already a member).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[node] {
		return
	}
	r.members[node] = true
	for i := 0; i < r.replicas; i++ {
		p := point{hash: hashKey(node + "#" + strconv.Itoa(i)), node: node}
		at := sort.Search(len(r.points), func(j int) bool {
			if r.points[j].hash != p.hash {
				return r.points[j].hash > p.hash
			}
			return r.points[j].node >= p.node
		})
		r.points = append(r.points, point{})
		copy(r.points[at+1:], r.points[at:])
		r.points[at] = p
	}
}

// Remove deletes a node and all its virtual points (no-op for non-members).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether node is a member.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[node]
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the nodes in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the node owning key, or false on an empty ring.
func (r *Ring) Get(key string) (string, bool) {
	return r.Pick(key, nil)
}

// Pick returns the first node clockwise of key's hash that eligible accepts
// (every node is eligible when the predicate is nil). It returns false when
// no member qualifies.
func (r *Ring) Pick(key string, eligible func(node string) bool) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	// Walk at most one full revolution, skipping repeat visits to a node's
	// other virtual points so the predicate cost is bounded by the member
	// count, not the point count.
	seen := 0
	visited := make(map[string]bool, len(r.members))
	for i := 0; i < len(r.points) && seen < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if visited[p.node] {
			continue
		}
		visited[p.node] = true
		seen++
		if eligible == nil || eligible(p.node) {
			return p.node, true
		}
	}
	return "", false
}
