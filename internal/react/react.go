// Package react implements the reaction stage of the §III protocol — the
// part the paper sketches ("the CPU would perform necessary actions to
// protect sensitive information") and defers to future work. It is an
// escalation state machine: monitoring alerts feed in, and the machine
// decides between logging, halting traffic, and destroying in-memory
// secrets, with hysteresis so a single noisy round cannot wipe a machine
// and a persistent attack cannot be ridden out.
package react

import (
	"fmt"

	"divot/internal/core"
	"divot/internal/telemetry"
)

// Action is what the platform is told to do.
type Action int

const (
	// ActionNone: keep operating.
	ActionNone Action = iota
	// ActionLog: record the event; operation continues (a first tamper
	// sighting, e.g. a transient probe).
	ActionLog
	// ActionHalt: stop memory traffic until the link recovers (the
	// paper's stall reaction).
	ActionHalt
	// ActionWipe: destroy volatile secrets (keys, caches) — the response
	// to sustained physical attack, borrowed from the secure-coprocessor
	// practice the paper cites (IBM 4765).
	ActionWipe
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionLog:
		return "log"
	case ActionHalt:
		return "halt"
	case ActionWipe:
		return "wipe"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Policy sets the escalation thresholds.
type Policy struct {
	// TamperToleranceRounds is how many consecutive tamper-alerting rounds
	// are logged before escalating to a halt. Non-contact probes that
	// disappear within the tolerance never interrupt service.
	TamperToleranceRounds int
	// AuthFailureToleranceRounds is how many consecutive authentication
	// failures are tolerated (as halts) before secrets are wiped. Module
	// swaps that persist mean the platform is in hostile hands.
	AuthFailureToleranceRounds int
	// RecoveryRounds is how many consecutive clean rounds restore Normal
	// from the alerted/halted states.
	RecoveryRounds int
}

// DefaultPolicy tolerates two rounds of tampering and five rounds of
// authentication failure, and recovers after three clean rounds.
func DefaultPolicy() Policy {
	return Policy{
		TamperToleranceRounds:      2,
		AuthFailureToleranceRounds: 5,
		RecoveryRounds:             3,
	}
}

// Validate reports nonsensical policies.
func (p Policy) Validate() error {
	if p.TamperToleranceRounds < 0 || p.AuthFailureToleranceRounds < 0 || p.RecoveryRounds <= 0 {
		return fmt.Errorf("react: invalid policy %+v", p)
	}
	return nil
}

// State is the escalation level.
type State int

const (
	// StateNormal: no active concern.
	StateNormal State = iota
	// StateAlerted: tampering observed recently; logged, watching.
	StateAlerted
	// StateHalted: traffic stopped pending recovery.
	StateHalted
	// StateWiped: secrets destroyed; terminal until operator reset.
	StateWiped
	// StateSuspect: the last round's failure was absorbed as a transient by
	// the confirmation protocol — nothing alerted, but the round does not
	// count toward recovery either. (Appended after StateWiped to keep the
	// original states' values stable.)
	StateSuspect
	// StateDegraded: the link authenticates at reduced resolution (masked
	// dead bins). Operationally benign; reported so the platform can
	// schedule maintenance.
	StateDegraded
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateNormal:
		return "normal"
	case StateAlerted:
		return "alerted"
	case StateHalted:
		return "halted"
	case StateWiped:
		return "wiped"
	case StateSuspect:
		return "suspect"
	case StateDegraded:
		return "degraded"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// benign reports whether the state carries no active escalation — the states
// a suspect or degraded observation may freely move between.
func (s State) benign() bool {
	return s == StateNormal || s == StateSuspect || s == StateDegraded
}

// Reactor is the escalation state machine. Feed it each monitoring round's
// alerts; it returns the action to take. Not safe for concurrent use.
type Reactor struct {
	policy Policy
	state  State

	tamperStreak int
	authStreak   int
	cleanStreak  int

	// Log records every non-None action with its triggering round index.
	Log []LogEntry
	// Rounds counts monitoring rounds observed.
	Rounds int

	// sink, when non-nil, receives one EventReactor per recorded action;
	// link labels this reactor's bus in those events. See SetSink.
	sink telemetry.Sink
	link string
	// prev is the state before the mutation currently being recorded.
	prev State
}

// LogEntry is one recorded reaction.
type LogEntry struct {
	Round  int
	Action Action
	State  State
	Cause  string
}

// NewReactor builds a reactor with the given policy.
func NewReactor(p Policy) (*Reactor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Reactor{policy: p}, nil
}

// State returns the current escalation level.
func (r *Reactor) State() State { return r.state }

// SetSink attaches (or, with nil, detaches) a telemetry sink; every recorded
// action is then emitted as an EventReactor labelled with the given link id,
// carrying the state transition and "<action>: <cause>" detail.
func (r *Reactor) SetSink(s telemetry.Sink, link string) {
	r.sink, r.link = s, link
}

// Observe consumes one monitoring round's alerts and returns the action. It
// is ObserveHealth with no health information — every alert-free round reads
// as fully clean.
func (r *Reactor) Observe(alerts []core.Alert) Action {
	return r.ObserveHealth(alerts, core.LinkHealth{})
}

// ObserveHealth consumes one monitoring round's alerts together with the
// link's health snapshot from the same round (core.Link.Health). Health
// refines the alert-free cases:
//
//   - a suspect round (transient fault absorbed by confirmation) is logged
//     and does not count toward recovery — an attacker who manages to look
//     like a transient every RecoveryRounds-1 rounds cannot ratchet an
//     escalation back down;
//   - a degraded link recovers to StateDegraded, not StateNormal, so the
//     reduced resolution stays visible at the reaction layer;
//   - a failed instrument (HealthFailed without alerts, e.g. mass bin loss)
//     halts traffic even though authentication never formally failed.
//
// Wiping remains strictly gated on consecutive confirmed authentication
// failures: suspect and tamper-only rounds reset the failure streak.
func (r *Reactor) ObserveHealth(alerts []core.Alert, h core.LinkHealth) Action {
	r.Rounds++
	r.prev = r.state
	if r.state == StateWiped {
		return ActionWipe // terminal: remains wiped until Reset
	}

	var tamper, authFail bool
	for _, a := range alerts {
		switch a.Kind {
		case core.AlertTamper:
			tamper = true
		case core.AlertAuthFailure:
			authFail = true
		}
	}

	if !tamper && !authFail {
		r.tamperStreak, r.authStreak = 0, 0
		if h.State() == core.HealthFailed {
			// The instrument can no longer authenticate the link at all.
			r.cleanStreak = 0
			r.state = StateHalted
			r.record(ActionHalt, "instrument failure")
			return ActionHalt
		}
		if h.SuspectRound() {
			// Absorbed transient: log it, hold every streak at zero progress.
			r.cleanStreak = 0
			if r.state.benign() {
				r.state = StateSuspect
				r.record(ActionLog, "transient fault absorbed")
				return ActionLog
			}
			return ActionNone // Alerted/Halted hold; no recovery credit
		}
		r.cleanStreak++
		target := StateNormal
		if h.Degraded() {
			target = StateDegraded
		}
		if r.state.benign() {
			if r.state != target && target == StateDegraded {
				r.state = target
				r.record(ActionLog, "degraded resolution")
				return ActionLog
			}
			r.state = target
			return ActionNone
		}
		if r.cleanStreak >= r.policy.RecoveryRounds {
			r.state = target
			r.record(ActionLog, "recovered after clean rounds")
		}
		return ActionNone
	}
	r.cleanStreak = 0

	if authFail {
		r.authStreak++
		if r.authStreak > r.policy.AuthFailureToleranceRounds {
			r.state = StateWiped
			r.record(ActionWipe, "persistent authentication failure")
			return ActionWipe
		}
		r.state = StateHalted
		r.record(ActionHalt, "authentication failure")
		return ActionHalt
	}

	// Tamper without auth failure. The wipe gate demands *consecutive*
	// authentication failures, so the failure streak resets here.
	r.authStreak = 0
	r.tamperStreak++
	if r.tamperStreak > r.policy.TamperToleranceRounds {
		r.state = StateHalted
		r.record(ActionHalt, "sustained tampering")
		return ActionHalt
	}
	r.state = StateAlerted
	r.record(ActionLog, "tamper observed")
	return ActionLog
}

// Reset returns the reactor to Normal — the operator path after physical
// inspection (and, from Wiped, re-provisioning of secrets).
func (r *Reactor) Reset() {
	r.prev = r.state
	r.state = StateNormal
	r.tamperStreak, r.authStreak, r.cleanStreak = 0, 0, 0
	r.record(ActionLog, "operator reset")
}

func (r *Reactor) record(a Action, cause string) {
	r.Log = append(r.Log, LogEntry{Round: r.Rounds, Action: a, State: r.state, Cause: cause})
	if r.sink != nil {
		r.sink.Emit(telemetry.Event{
			Kind:   telemetry.EventReactor,
			Link:   r.link,
			Round:  uint64(r.Rounds),
			From:   r.prev.String(),
			To:     r.state.String(),
			Detail: a.String() + ": " + cause,
		})
	}
}
