package react

import "testing"

func TestSnapshotRoundTrip(t *testing.T) {
	a, err := NewReactor(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	a.state = StateHalted
	a.prev = StateAlerted
	a.tamperStreak = 2
	a.authStreak = 4
	a.cleanStreak = 0
	a.Rounds = 37

	b, err := NewReactor(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(a.Snapshot()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if b.state != StateHalted || b.prev != StateHalted {
		t.Fatalf("state = %v/%v, want Halted/Halted", b.state, b.prev)
	}
	if b.tamperStreak != 2 || b.authStreak != 4 || b.cleanStreak != 0 || b.Rounds != 37 {
		t.Fatalf("streaks lost: %+v", b.Snapshot())
	}
}

func TestRestoreRejectsBadSnapshot(t *testing.T) {
	r, err := NewReactor(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(Snapshot{State: "bogus"}); err == nil {
		t.Fatal("unknown state accepted")
	}
	if err := r.Restore(Snapshot{State: StateNormal.String(), AuthStreak: -1}); err == nil {
		t.Fatal("negative streak accepted")
	}
	if r.state != StateNormal || r.Rounds != 0 {
		t.Fatal("reactor mutated by rejected restore")
	}
}
