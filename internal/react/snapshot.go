package react

import "fmt"

// Snapshot is the reactor's durable state: the escalation level and the
// streaks that gate the anti-ratchet rules. Persisting it means a daemon
// restart cannot be used to launder an escalation — a link that was Halted
// with four consecutive authentication failures restarts Halted with four
// consecutive failures, not Normal with zero. The action Log is deliberately
// not persisted: it is an in-memory trace, and the audit log is the durable
// record of actions.
type Snapshot struct {
	State        string `json:"state"`
	TamperStreak int    `json:"tamper_streak,omitempty"`
	AuthStreak   int    `json:"auth_streak,omitempty"`
	CleanStreak  int    `json:"clean_streak,omitempty"`
	Rounds       int    `json:"rounds,omitempty"`
}

// Snapshot captures the reactor's durable state.
func (r *Reactor) Snapshot() Snapshot {
	return Snapshot{
		State:        r.state.String(),
		TamperStreak: r.tamperStreak,
		AuthStreak:   r.authStreak,
		CleanStreak:  r.cleanStreak,
		Rounds:       r.Rounds,
	}
}

// Restore installs a snapshot, validating it first; on error the reactor is
// unchanged. No event is emitted and nothing is logged — restoring is not an
// action.
func (r *Reactor) Restore(s Snapshot) error {
	state, err := stateFromName(s.State)
	if err != nil {
		return err
	}
	if s.TamperStreak < 0 || s.AuthStreak < 0 || s.CleanStreak < 0 || s.Rounds < 0 {
		return fmt.Errorf("react: snapshot has a negative counter: %+v", s)
	}
	r.state = state
	r.prev = state
	r.tamperStreak = s.TamperStreak
	r.authStreak = s.AuthStreak
	r.cleanStreak = s.CleanStreak
	r.Rounds = s.Rounds
	return nil
}

// stateFromName parses a State's String form.
func stateFromName(name string) (State, error) {
	for s := StateNormal; s <= StateDegraded; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return StateNormal, fmt.Errorf("react: unknown reactor state %q", name)
}
