package react

import (
	"fmt"
	"testing"

	"divot/internal/core"
)

func newReactor(t *testing.T) *Reactor {
	t.Helper()
	r, err := NewReactor(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func tamper() []core.Alert {
	return []core.Alert{{Kind: core.AlertTamper, Side: core.SideCPU}}
}

func authFail() []core.Alert {
	return []core.Alert{{Kind: core.AlertAuthFailure, Side: core.SideModule}}
}

func TestCleanRoundsStayNormal(t *testing.T) {
	r := newReactor(t)
	for i := 0; i < 10; i++ {
		if a := r.Observe(nil); a != ActionNone {
			t.Fatalf("round %d action %v", i, a)
		}
	}
	if r.State() != StateNormal || len(r.Log) != 0 {
		t.Errorf("state %v, log %v", r.State(), r.Log)
	}
}

func TestTransientTamperOnlyLogged(t *testing.T) {
	r := newReactor(t)
	if a := r.Observe(tamper()); a != ActionLog {
		t.Fatalf("first tamper action %v", a)
	}
	if r.State() != StateAlerted {
		t.Errorf("state %v", r.State())
	}
	// The probe disappears; recovery after RecoveryRounds clean rounds.
	for i := 0; i < DefaultPolicy().RecoveryRounds; i++ {
		r.Observe(nil)
	}
	if r.State() != StateNormal {
		t.Errorf("state after recovery %v", r.State())
	}
}

func TestSustainedTamperHalts(t *testing.T) {
	r := newReactor(t)
	p := DefaultPolicy()
	var last Action
	for i := 0; i <= p.TamperToleranceRounds; i++ {
		last = r.Observe(tamper())
	}
	if last != ActionHalt || r.State() != StateHalted {
		t.Errorf("after sustained tamper: action %v, state %v", last, r.State())
	}
}

func TestAuthFailureHaltsImmediately(t *testing.T) {
	r := newReactor(t)
	if a := r.Observe(authFail()); a != ActionHalt {
		t.Fatalf("auth failure action %v", a)
	}
	if r.State() != StateHalted {
		t.Errorf("state %v", r.State())
	}
}

func TestPersistentAuthFailureWipes(t *testing.T) {
	r := newReactor(t)
	p := DefaultPolicy()
	var last Action
	for i := 0; i <= p.AuthFailureToleranceRounds; i++ {
		last = r.Observe(authFail())
	}
	if last != ActionWipe || r.State() != StateWiped {
		t.Fatalf("after persistent failure: action %v, state %v", last, r.State())
	}
	// Terminal: clean rounds do not recover a wiped machine.
	for i := 0; i < 10; i++ {
		if a := r.Observe(nil); a != ActionWipe {
			t.Fatalf("wiped state returned %v", a)
		}
	}
	if r.State() != StateWiped {
		t.Error("wiped state must persist")
	}
	// Operator reset re-provisions.
	r.Reset()
	if r.State() != StateNormal {
		t.Error("reset failed")
	}
	if a := r.Observe(nil); a != ActionNone {
		t.Errorf("post-reset action %v", a)
	}
}

func TestIntermittentAuthFailureDoesNotWipe(t *testing.T) {
	// Failures broken by a recovery never accumulate to a wipe — the
	// paper's module-restored scenario.
	r := newReactor(t)
	p := DefaultPolicy()
	for cycle := 0; cycle < 4; cycle++ {
		for i := 0; i < p.AuthFailureToleranceRounds; i++ {
			r.Observe(authFail())
		}
		for i := 0; i < p.RecoveryRounds; i++ {
			r.Observe(nil)
		}
		if r.State() != StateNormal {
			t.Fatalf("cycle %d: state %v", cycle, r.State())
		}
	}
}

func TestLogRecordsCauses(t *testing.T) {
	r := newReactor(t)
	r.Observe(tamper())
	r.Observe(authFail())
	if len(r.Log) != 2 {
		t.Fatalf("log %v", r.Log)
	}
	if r.Log[0].Cause != "tamper observed" || r.Log[1].Cause != "authentication failure" {
		t.Errorf("log causes: %v", r.Log)
	}
	if r.Log[0].Round != 1 || r.Log[1].Round != 2 {
		t.Errorf("log rounds: %v", r.Log)
	}
}

func TestPolicyValidation(t *testing.T) {
	if _, err := NewReactor(Policy{RecoveryRounds: 0}); err == nil {
		t.Error("expected policy error")
	}
	if _, err := NewReactor(Policy{TamperToleranceRounds: -1, RecoveryRounds: 1}); err == nil {
		t.Error("expected policy error")
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []fmt.Stringer{
		ActionNone, ActionLog, ActionHalt, ActionWipe, Action(9),
		StateNormal, StateAlerted, StateHalted, StateWiped, State(9),
	} {
		if s.String() == "" {
			t.Errorf("empty name for %#v", s)
		}
	}
}
