package react

import (
	"math/rand"
	"testing"

	"divot/internal/core"
)

// round is one randomized observation fed to the reactor.
type round struct {
	authFail bool
	tamper   bool
	suspect  bool // health: transient absorbed (only meaningful alert-free)
	degraded bool // health: reduced resolution
	failed   bool // health: instrument failure (only meaningful alert-free)
}

func (rd round) alerts() []core.Alert {
	var a []core.Alert
	if rd.authFail {
		a = append(a, core.Alert{Side: core.SideCPU, Kind: core.AlertAuthFailure, Score: 0.1})
	}
	if rd.tamper {
		a = append(a, core.Alert{Side: core.SideModule, Kind: core.AlertTamper, PeakError: 1})
	}
	return a
}

func (rd round) health() core.LinkHealth {
	var h core.LinkHealth
	if rd.failed {
		h.CPU.State = core.HealthFailed
	}
	if rd.suspect {
		h.CPU.LastSuspect = true
	}
	if rd.degraded {
		h.Module.DegradedResolution = true
		h.Module.State = core.HealthDegraded
	}
	return h
}

// clean reports whether the round grants recovery credit: alert-free, not a
// suspect round, and the instrument is working.
func (rd round) clean() bool {
	return !rd.authFail && !rd.tamper && !rd.suspect && !rd.failed
}

// checkInvariants drives one reactor through the round sequence and asserts
// the safety properties of the escalation machine.
func checkInvariants(t *testing.T, pol Policy, rounds []round) {
	t.Helper()
	r, err := NewReactor(pol)
	if err != nil {
		t.Fatal(err)
	}
	authFailStreak := 0 // consecutive rounds carrying an auth-failure alert
	cleanStreak := 0
	wiped := false
	for i, rd := range rounds {
		before := r.State()
		action := r.ObserveHealth(rd.alerts(), rd.health())
		after := r.State()

		if wiped {
			if after != StateWiped || action != ActionWipe {
				t.Fatalf("round %d: wiped reactor revived (state %v action %v)", i, after, action)
			}
			continue
		}

		if rd.authFail {
			authFailStreak++
		} else {
			authFailStreak = 0
		}
		if rd.clean() {
			cleanStreak++
		} else {
			cleanStreak = 0
		}

		// Invariant 1: wiping demands more than AuthFailureToleranceRounds
		// strictly consecutive auth-failure rounds.
		if after == StateWiped {
			wiped = true
			if authFailStreak < pol.AuthFailureToleranceRounds+1 {
				t.Fatalf("round %d: wiped after only %d consecutive auth failures (tolerance %d)\npolicy %+v",
					i, authFailStreak, pol.AuthFailureToleranceRounds, pol)
			}
			continue
		}

		// Invariant 2: leaving an escalated state for a benign one requires
		// a full window of recovery-credit rounds.
		escalated := before == StateAlerted || before == StateHalted
		if escalated && after.benign() && cleanStreak < pol.RecoveryRounds {
			t.Fatalf("round %d: recovered from %v after %d clean rounds (policy wants %d)",
				i, before, cleanStreak, pol.RecoveryRounds)
		}

		// Invariant 3: a suspect or failed-health round never grants
		// recovery credit — an escalated state must not step down on it.
		if escalated && !rd.clean() && after.benign() {
			t.Fatalf("round %d: recovered from %v on a non-clean round %+v", i, before, rd)
		}

		// Invariant 4: an auth-failure round from a live state always halts
		// or wipes — the gate decision is never deferred.
		if rd.authFail && after != StateHalted && after != StateWiped {
			t.Fatalf("round %d: auth failure left state %v", i, after)
		}
	}
}

// TestReactorProperties drives randomized round sequences over randomized
// policies and checks the escalation invariants on every step.
func TestReactorProperties(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pol := Policy{
			TamperToleranceRounds:      rng.Intn(4),
			AuthFailureToleranceRounds: rng.Intn(6),
			RecoveryRounds:             1 + rng.Intn(4),
		}
		n := 50 + rng.Intn(150)
		rounds := make([]round, n)
		for i := range rounds {
			rd := round{
				authFail: rng.Float64() < 0.25,
				tamper:   rng.Float64() < 0.2,
				degraded: rng.Float64() < 0.3,
			}
			if !rd.authFail && !rd.tamper {
				rd.suspect = rng.Float64() < 0.2
				rd.failed = rng.Float64() < 0.1
			}
			rounds[i] = rd
		}
		checkInvariants(t, pol, rounds)
	}
}

// TestSuspectRoundsFreezeRecovery pins the anti-ratchet property directly:
// alternating suspect rounds with clean rounds below the recovery window
// never recovers a halted reactor.
func TestSuspectRoundsFreezeRecovery(t *testing.T) {
	r, err := NewReactor(Policy{TamperToleranceRounds: 0, AuthFailureToleranceRounds: 5, RecoveryRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	r.ObserveHealth(round{authFail: true}.alerts(), core.LinkHealth{})
	if r.State() != StateHalted {
		t.Fatalf("setup: state %v", r.State())
	}
	for i := 0; i < 10; i++ {
		// Two clean rounds, then a suspect round: never 3 clean in a row.
		r.ObserveHealth(nil, core.LinkHealth{})
		r.ObserveHealth(nil, core.LinkHealth{})
		r.ObserveHealth(nil, round{suspect: true}.health())
		if r.State() != StateHalted {
			t.Fatalf("cycle %d: recovered to %v without a full clean window", i, r.State())
		}
	}
	// A full clean window recovers.
	for i := 0; i < 3; i++ {
		r.ObserveHealth(nil, core.LinkHealth{})
	}
	if r.State() != StateNormal {
		t.Fatalf("state %v after full clean window", r.State())
	}
}

// TestDegradedRecoveryTarget: a degraded link surfaces StateDegraded both in
// steady state and as the recovery target after an escalation.
func TestDegradedRecoveryTarget(t *testing.T) {
	r, err := NewReactor(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	deg := round{degraded: true}.health()
	if a := r.ObserveHealth(nil, deg); a != ActionLog || r.State() != StateDegraded {
		t.Fatalf("first degraded round: action %v state %v", a, r.State())
	}
	if a := r.ObserveHealth(nil, deg); a != ActionNone || r.State() != StateDegraded {
		t.Fatalf("steady degraded round: action %v state %v", a, r.State())
	}
	// Escalate, then recover while still degraded.
	r.ObserveHealth(round{authFail: true}.alerts(), deg)
	for i := 0; i < DefaultPolicy().RecoveryRounds; i++ {
		r.ObserveHealth(nil, deg)
	}
	if r.State() != StateDegraded {
		t.Fatalf("recovery target %v, want degraded", r.State())
	}
	// Mask cleared (instrument repaired): back to normal.
	r.ObserveHealth(nil, core.LinkHealth{})
	if r.State() != StateNormal {
		t.Fatalf("state %v after degradation cleared", r.State())
	}
}

// TestInstrumentFailureHalts: HealthFailed without alerts halts traffic.
func TestInstrumentFailureHalts(t *testing.T) {
	r, err := NewReactor(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if a := r.ObserveHealth(nil, round{failed: true}.health()); a != ActionHalt || r.State() != StateHalted {
		t.Fatalf("instrument failure: action %v state %v", a, r.State())
	}
	// And it never escalates to a wipe no matter how long it persists.
	for i := 0; i < 20; i++ {
		if a := r.ObserveHealth(nil, round{failed: true}.health()); a == ActionWipe {
			t.Fatal("instrument failure escalated to wipe")
		}
	}
}

// FuzzReactor decodes arbitrary bytes into a round sequence and replays the
// invariant checks.
func FuzzReactor(f *testing.F) {
	f.Add([]byte{0x00}, uint8(2), uint8(5), uint8(3))
	f.Add([]byte{0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01}, uint8(1), uint8(2), uint8(1))
	f.Add([]byte{0x02, 0x04, 0x00, 0x08, 0x01, 0x03}, uint8(0), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, tamperTol, authTol, recovery uint8) {
		pol := Policy{
			TamperToleranceRounds:      int(tamperTol % 8),
			AuthFailureToleranceRounds: int(authTol % 8),
			RecoveryRounds:             1 + int(recovery%8),
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		rounds := make([]round, len(data))
		for i, b := range data {
			rd := round{
				authFail: b&0x01 != 0,
				tamper:   b&0x02 != 0,
				degraded: b&0x10 != 0,
			}
			if !rd.authFail && !rd.tamper {
				rd.suspect = b&0x04 != 0
				rd.failed = b&0x08 != 0
			}
			rounds[i] = rd
		}
		checkInvariants(t, pol, rounds)
	})
}
