package exper

import (
	"fmt"

	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/stats"
	"divot/internal/txline"
)

// AlignmentExtension evaluates the stretch-compensation matcher (an
// extension beyond the paper): under the Fig. 8 oven swing, plain matching
// suffers from the thermal time-axis stretch, while the aligned matcher
// estimates the stretch and recovers near-room accuracy — without loosening
// the threshold, so impostors gain nothing.
func AlignmentExtension(seed uint64, mode Mode) Result {
	lines, enroll, per := campaignSizes(mode)
	per /= 2
	if per < 10 {
		per = 10
	}
	stream := rng.New(seed).Child("fleet")
	rigs := fleet(itdr.DefaultConfig(), txline.DefaultConfig(), stream, lines)
	room := txline.RoomTemperature()
	enrollFleet(rigs, room, enroll)
	env := txline.OvenSwing()
	const maxStrain = 0.05

	var plainG, plainI, alignG, alignI []float64
	for _, r := range rigs {
		for k := 0; k < per; k++ {
			m := r.measure(env)
			for _, other := range rigs {
				plain := fingerprint.Similarity(m, other.ref)
				a := fingerprint.AlignStretch(m, other.ref, maxStrain, r.pipe)
				if other == r {
					plainG = append(plainG, plain)
					alignG = append(alignG, a.Score)
				} else {
					plainI = append(plainI, plain)
					alignI = append(alignI, a.Score)
				}
			}
		}
	}
	res := Result{
		ID:    "align",
		Title: "stretch-compensated matching under the 23→75 °C swing (extension)",
		PaperClaim: "(extension) the Fig. 8 degradation is a one-parameter time-axis " +
			"stretch; estimating and undoing it should restore room-temperature accuracy",
		Headers: []string{"matcher", "genuine min/median", "impostor max", "EER"},
	}
	row := func(name string, g, im []float64) {
		roc, err := stats.ComputeROC(g, im)
		if err != nil {
			panic(err)
		}
		eer, _ := roc.EER()
		gmin, _ := stats.MinMax(g)
		_, imax := stats.MinMax(im)
		res.Rows = append(res.Rows, []string{
			name,
			fmt.Sprintf("%.4f / %.4f", gmin, stats.Median(g)),
			fmt.Sprintf("%.4f", imax),
			fmt.Sprintf("%.3f%%", eer*100),
		})
	}
	row("plain (Eq. 4)", plainG, plainI)
	row("stretch-aligned", alignG, alignI)

	gPlainMin, _ := stats.MinMax(plainG)
	gAlignMin, _ := stats.MinMax(alignG)
	if gAlignMin <= gPlainMin {
		res.Notes = append(res.Notes, "ALIGNMENT FAILED to lift the genuine floor")
	}
	return res
}
