package exper

import (
	"fmt"

	"divot/internal/attack"
	"divot/internal/core"
	"divot/internal/react"
)

// AdaptiveSweep (extension, ROADMAP item 4 first slice) characterizes the
// adaptive adversary: a tap whose loading deepens a fraction of an ohm per
// monitoring round, trying to stay inside the drift the re-enrollment policy
// tolerates so the defender refreshes its baseline around the growing tap.
// The sweep varies the drift rate and reports whether the refresh guards
// launder the tap (post-attack re-enrollments), when it is caught, and what
// the reactor escalates to — including the anti-ratchet rule that denies
// recovery credit to absorbed-transient rounds.
func AdaptiveSweep(seed uint64, mode Mode) Result {
	res := Result{
		ID:    "adaptive",
		Title: "adaptive slow-drift tap vs re-enrollment guards and reactor anti-ratchet (extension)",
		PaperClaim: "(extension) a tap introduced gradually must not be laundered " +
			"into the enrolled baseline by drift-guarded re-enrollment, and the " +
			"reactor must not let absorbed rounds ratchet an escalation back down",
		Headers: []string{"rate Ω/round", "rounds", "alerts", "caught at", "refreshes after mount", "reactor"},
	}
	rounds := 60
	if mode == Full {
		rounds = 120
	}
	cfg := core.DefaultConfig()
	for _, rate := range []float64{-0.05, -0.25, -1, -4} {
		l, err := faultedLink(seed, fmt.Sprintf("adaptive-%g", rate), cfg, nil, nil)
		if err != nil {
			res.Notes = append(res.Notes, "build error: "+err.Error())
			continue
		}
		reactor, err := react.NewReactor(react.DefaultPolicy())
		if err != nil {
			res.Notes = append(res.Notes, "reactor error: "+err.Error())
			continue
		}
		// A clean warm-up lets the drift window fill before the tap lands,
		// the attacker's best case.
		if _, err := l.MonitorN(10); err != nil {
			res.Notes = append(res.Notes, "warm-up error: "+err.Error())
			continue
		}
		refreshesAtMount := l.Health().CPU.Reenrollments + l.Health().Module.Reenrollments

		tap := attack.DefaultAdaptiveTap(0.1)
		tap.RatePerRound = rate
		tap.Apply(l.Line)
		total, caught := 0, "-"
		for r := 1; r <= rounds; r++ {
			if r > 1 {
				tap.Advance(l.Line)
			}
			alerts, err := l.MonitorOnce()
			if err != nil {
				res.Notes = append(res.Notes, "monitor error: "+err.Error())
				break
			}
			reactor.ObserveHealth(alerts, l.Health())
			total += len(alerts)
			if len(alerts) > 0 && caught == "-" {
				caught = fmt.Sprintf("round %d (%.2g Ω deep)", r, tap.DeltaZ())
			}
		}
		h := l.Health()
		refreshes := h.CPU.Reenrollments + h.Module.Reenrollments - refreshesAtMount
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%g", rate), fmt.Sprintf("%d", rounds),
			fmt.Sprintf("%d", total), caught,
			fmt.Sprintf("%d", refreshes), reactor.State().String(),
		})
	}
	res.Notes = append(res.Notes,
		"the refresh guards judge a candidate refresh by contrast and step "+
			"size: at practical drift rates the tap's localized dent exceeds "+
			"them, the refresh is refused, and the accumulating dent fires the "+
			"tamper channel within a handful of rounds",
		"the slowest row maps the guards' sensitivity floor: a tap creeping "+
			"below the per-round step and contrast thresholds is laundered by "+
			"re-enrollment (refreshes > 0, no alerts) — the quantified residual "+
			"risk that motivates tightening ReenrollPolicy.MaxContrast or "+
			"lengthening the drift window on high-assurance deployments",
		"the reactor's anti-ratchet rule gives absorbed-transient rounds no "+
			"recovery credit, so an attacker pacing the drift against the "+
			"escalation policy cannot walk a halt back to normal",
		"internal/experiment measures this scenario's TPR/FPR across a full "+
			"grid; this table is the single-link narrative view")
	return res
}
