package exper

import (
	"fmt"

	"divot/internal/attack"
	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// InterposerDetection (extension) tests the man-in-the-middle that memory
// encryption cannot see: an impedance-matched interposer forwarding all
// traffic unchanged. Cryptographic integrity (MACs, Merkle trees) passes —
// the data is untouched — but the bus fingerprint beyond the cut is gone,
// so DIVOT's authentication collapses regardless of how well the attacker
// matches the line impedance.
func InterposerDetection(seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child("mitm")
	icfg := itdr.DefaultConfig()
	lcfg := txline.DefaultConfig()
	r := newRig("victim", icfg, lcfg, stream)
	env := txline.RoomTemperature()
	enroll := 8
	if mode == Quick {
		enroll = 6
	}
	r.enroll(env, enroll)
	reps := presentations(mode)
	genuine := r.meanSimilarity(env, reps)

	// The same two operating points as the clone experiment: the loose
	// environment-tolerant threshold (0.70) and the strict threshold (0.85)
	// that stretch-aligned matching makes operable. Deep insertions leave
	// most of the genuine line intact, so — like capable clones — they can
	// clear the loose threshold; the strict one rejects them, and the E_xy
	// localization pinpoints the cut independently of any threshold.
	const loose, strict = 0.70, 0.85

	res := Result{
		ID:    "mitm",
		Title: "impedance-matched interposer (man-in-the-middle) detection (extension)",
		PaperClaim: "DIVOT authenticates the physical link itself, so a data-" +
			"transparent interposer — invisible to encryption and MACs — still fails",
		Headers: []string{"insertion point", "similarity", "accepted @0.70", "accepted @0.85", "E_xy onset"},
	}
	res.Rows = append(res.Rows, []string{
		"none (genuine)", fmt.Sprintf("%.4f", genuine),
		fmt.Sprintf("%v", genuine >= loose), fmt.Sprintf("%v", genuine >= strict), "-",
	})
	var errBuf *signal.Waveform
	for _, pos := range []float64{0.05, 0.125, 0.20} {
		mitm := attack.DefaultInterposer(pos)
		mitm.Apply(r.line)
		// One presentation feeds the localization; the similarity column
		// averages it with reps-1 more so the row statistic is the
		// interposer's structural match, not one noise draw.
		m := r.measure(env)
		s := fingerprint.Similarity(m, r.ref)
		for i := 1; i < reps; i++ {
			s += fingerprint.Similarity(r.measure(env), r.ref)
		}
		s /= float64(reps)
		errBuf = fingerprint.ErrorFunctionInto(errBuf, m, r.ref)
		e := errBuf
		// Onset: the first bin where E_xy exceeds 10x its pre-cut mean.
		cut := int(r.line.PositionToTime(pos) * icfg.EquivalentRate())
		var preMean float64
		if cut > 40 {
			preMean = fingerprint.MeanError(e.Slice(0, cut-40))
		}
		onset := -1
		for i, v := range e.Samples {
			if preMean > 0 && v > 10*preMean {
				onset = i
				break
			}
		}
		onsetStr := "-"
		if onset >= 0 {
			onsetStr = fmt.Sprintf("%.1f mm (cut at %.1f mm)",
				fingerprint.LocalizeError(e, onset, lcfg.Velocity)*1e3, pos*1e3)
		}
		mitm.Remove(r.line)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("matched interposer at %.0f mm", pos*1e3),
			fmt.Sprintf("%.4f", s),
			fmt.Sprintf("%v", s >= loose),
			fmt.Sprintf("%v", s >= strict),
			onsetStr,
		})
		if s >= strict {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"INTERPOSER ACCEPTED at %.0f mm even at the strict threshold", pos*1e3))
		}
	}
	res.Notes = append(res.Notes,
		"the closer the insertion to the far end, the more genuine line remains "+
			"and the higher the similarity — deep insertions can clear the loose "+
			"threshold, but the strict (aligned-matcher) threshold rejects them "+
			"and the E_xy onset localizes the cut either way")
	return res
}
