package exper

import (
	"fmt"

	"divot/internal/attack"
	"divot/internal/baseline"
	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// Baselines reproduces §V's comparison as a measured matrix: which attack
// classes each prior-work detector actually catches on the same lines, and
// the operational axes (concurrency, runtime use, localization, cost) that
// separate DIVOT from all of them.
func Baselines(seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child("baselines")
	lcfg := txline.DefaultConfig()
	env := txline.RoomTemperature()

	type attackCase struct {
		name  string
		mount func(l *txline.Line, s *rng.Stream)
	}
	cases := []attackCase{
		// A typical (one-sigma) same-model replacement chip. A random draw
		// can occasionally land an impedance twin — the adversarial-twin
		// case is the clone experiment's subject, not this matrix's.
		{"load mod", func(l *txline.Line, _ *rng.Stream) {
			(&attack.LoadModification{NewTermination: l.Termination() + lcfg.TerminationSpreadRMS}).Apply(l)
		}},
		{"wire tap", func(l *txline.Line, _ *rng.Stream) { attack.DefaultWireTap(0.1).Apply(l) }},
		{"mag probe", func(l *txline.Line, _ *rng.Stream) { attack.DefaultMagneticProbe(0.15).Apply(l) }},
		{"trace mill", func(l *txline.Line, _ *rng.Stream) { attack.DefaultTraceMill(0.2).Apply(l) }},
	}

	res := Result{
		ID:    "baselines",
		Title: "prior-work detectors vs attack classes (measured on shared lines)",
		PaperClaim: "PAD cannot operate concurrently; DC resistance blocks traffic " +
			"and misses EM probes; VNA PUF is offline-only; DIVOT detects all " +
			"classes concurrently with transfers",
		Headers: append([]string{"detector", "concurrent", "runtime", "localizes", "rel. cost"},
			func() []string {
				names := make([]string, len(cases))
				for i, c := range cases {
					names[i] = c.name
				}
				return names
			}()...),
	}

	mark := func(ok bool) string {
		if ok {
			return "detect"
		}
		return "miss"
	}

	detectors := []baseline.Detector{
		baseline.NewPAD(),
		baseline.NewDCResistance(),
		baseline.NewVNAPUF(),
		baseline.NewADCTDR(stream.Child("adc")),
	}
	for di, d := range detectors {
		cap := d.Capability()
		row := []string{
			d.Name(),
			fmt.Sprintf("%v", cap.Concurrent),
			fmt.Sprintf("%v", cap.Runtime),
			fmt.Sprintf("%v", cap.Localizes),
			fmt.Sprintf("%.1f", cap.RelativeCost),
		}
		for ci, c := range cases {
			l := txline.New("dut", lcfg, stream.Child(fmt.Sprintf("line-%d-%d", di, ci)))
			d.Calibrate(l)
			c.mount(l, stream.Child(fmt.Sprintf("attack-%d-%d", di, ci)))
			row = append(row, mark(d.Detect(l)))
		}
		res.Rows = append(res.Rows, row)
	}

	// DIVOT itself, measured through the full iTDR chain.
	row := []string{"DIVOT iTDR", "true", "true", "true", "1.0"}
	enroll := 8
	if mode == Quick {
		enroll = 6
	}
	for ci, c := range cases {
		r := newRig(fmt.Sprintf("divot-%d", ci), itdr.DefaultConfig(), lcfg,
			stream.Child(fmt.Sprintf("divot-%d", ci)))
		r.enroll(env, enroll)
		det := fingerprint.TamperDetector{Velocity: lcfg.Velocity}
		var floor float64
		var errBuf *signal.Waveform
		for i := 0; i < 4; i++ {
			errBuf = fingerprint.ErrorFunctionInto(errBuf, r.measure(env), r.ref)
			if v, _, _ := fingerprint.PeakError(errBuf); v > floor {
				floor = v
			}
		}
		det.PeakThreshold = 3 * floor
		c.mount(r.line, stream.Child(fmt.Sprintf("divot-attack-%d", ci)))
		v := det.Check(r.measure(env), r.ref)
		row = append(row, mark(v.Tampered))
	}
	res.Rows = append(res.Rows, row)
	res.Notes = append(res.Notes,
		"relative cost is unitless with the iTDR at 1.0; the VNA entry is bench "+
			"equipment, not integrable logic")
	return res
}
