package exper

import (
	"fmt"

	"divot/internal/baseline"
	"divot/internal/itdr"
	"divot/internal/rng"
)

// UtilizationModel reproduces §IV-A's resource table: 71 registers and 124
// LUTs on the xczu7ev (~0.8 % of the device), with ~80 % of the logic in
// counters, and the sharing argument — the PLL and modulator amortize over
// many iTDRs.
func UtilizationModel(uint64, Mode) Result {
	cfg := itdr.DefaultConfig()
	one := itdr.ResourceModel(cfg)
	regFrac, lutFrac := one.DeviceFraction()
	res := Result{
		ID:    "util",
		Title: "iTDR hardware utilization model",
		PaperClaim: "71 registers, 124 LUTs (~0.8% of xczu7ev), ~80% counters; " +
			"most logic shared across iTDRs",
		Headers: []string{"configuration", "registers", "LUTs", "counter share", "device %"},
	}
	res.Rows = append(res.Rows, []string{
		"one iTDR (this model)",
		fmt.Sprintf("%d", one.Registers),
		fmt.Sprintf("%d", one.LUTs),
		fmt.Sprintf("%.0f%%", 100*one.CounterShare()),
		fmt.Sprintf("%.3f%% regs / %.3f%% LUTs", 100*regFrac, 100*lutFrac),
	})
	for _, n := range []int{1, 4, 16, 64} {
		f := itdr.FleetUtilization(cfg, n)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d buses + shared PLL/modulator", n),
			fmt.Sprintf("%d", f.Registers),
			fmt.Sprintf("%d", f.LUTs),
			fmt.Sprintf("%.0f%%", 100*f.CounterShare()),
			fmt.Sprintf("%.1f regs/bus", float64(f.Registers)/float64(n)),
		})
	}
	adc := baseline.NewADCTDR(rng.New(1))
	res.Rows = append(res.Rows, []string{
		"conventional ADC TDR (baseline)",
		"-", fmt.Sprintf("~%d gates", adc.GateCountEstimate()), "-", "-",
	})
	return res
}

// DetectionLatency reproduces the §I/§IV claim that authentication and
// tamper detection complete within 50 µs at the prototype's 156.25 MHz, and
// shows how the envelope scales with clock rate and trigger mode.
func DetectionLatency(uint64, Mode) Result {
	res := Result{
		ID:    "latency",
		Title: "measurement latency: trials, cycles, wall-clock time",
		PaperClaim: "both authentication and tamper detection complete within " +
			"50 µs at 156.25 MHz; GHz clocks alert within memory-operation time frames",
		Headers: []string{"configuration", "trials", "cycles", "duration"},
	}
	add := func(name string, cfg itdr.Config) {
		cycles := cfg.TotalTrials()
		if cfg.Trigger != itdr.TriggerClock {
			cycles = int(float64(cycles) / cfg.TriggerDensity)
		}
		res.Rows = append(res.Rows, []string{
			name,
			fmt.Sprintf("%d", cfg.TotalTrials()),
			fmt.Sprintf("%d", cycles),
			fmt.Sprintf("%.1f µs", cfg.MeasurementDuration()*1e6),
		})
	}
	base := itdr.DefaultConfig()
	add("prototype: 156.25 MHz, clock lane", base)

	fifo := base
	fifo.Trigger = itdr.TriggerFIFO
	add("156.25 MHz, NRZ data lane (FIFO trigger, 25% density)", fifo)

	pam4 := base
	pam4.Trigger = itdr.TriggerFIFO
	pam4.TriggerDensity = 1.0 / 16 // full-swing falling launches on PAM4
	add("156.25 MBd, PAM4 data lane (3→0 trigger, 6.25% density)", pam4)

	for _, ghz := range []float64{0.8, 1.6, 3.2} {
		fast := base
		fast.SampleClockHz = ghz * 1e9
		// The window cannot exceed the clock period; the 3.83 ns line
		// window still fits under all of these clocks? Only below 261 MHz.
		// At GHz clocks the line span exceeds the period, so the window
		// folds into multiple periods; model the same trial count.
		if fast.WindowSec > 1/fast.SampleClockHz {
			fast.WindowSec = 1 / fast.SampleClockHz
			scale := base.WindowSec / fast.WindowSec
			fast.TrialsPerBin = int(float64(base.TrialsPerBin)*scale) + 1
		}
		add(fmt.Sprintf("%.1f GHz clock lane", ghz), fast)
	}
	res.Notes = append(res.Notes,
		"at GHz clocks the full line span no longer fits one clock period; the "+
			"model folds the window and keeps the total trial budget, so the "+
			"duration scales inversely with clock rate")
	return res
}
