package exper

import (
	"fmt"

	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/txline"
)

// CloneResistance quantifies §III's claim that a stolen fingerprint is
// useless: "even if attackers gained access to the IIP, they would not be
// able to use it once an IIP leaves the exact Tx-line." An attacker with the
// enrolled IIP fabricates replica lines at progressively finer impedance
// control and presents them to the victim's CPU-side iTDR.
func CloneResistance(seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child("clone")
	icfg := itdr.DefaultConfig()
	lcfg := txline.DefaultConfig()
	victim := newRig("victim", icfg, lcfg, stream)
	env := txline.RoomTemperature()
	enroll := 8
	trials := 3
	if mode == Full {
		trials = 8
	}
	victim.enroll(env, enroll)
	// Two operating points: the environment-tolerant plain-matcher
	// threshold (0.70), and the strict threshold (0.85) that the
	// stretch-aligned matcher makes viable under temperature swing
	// (see the `align` experiment: aligned genuine stays ≥0.97 at 75 °C).
	const loose, strict = 0.70, 0.85
	reps := presentations(mode)

	// Genuine baseline.
	genuine := victim.meanSimilarity(env, reps)

	res := Result{
		ID:    "clone",
		Title: "clone resistance: replica lines built from the stolen fingerprint",
		PaperClaim: "the fingerprint is useless off its own line — the IIP is " +
			"unpredictable, uncontrollable and non-reproducible",
		Headers: []string{"attacker capability", "best similarity", "accepted @0.70", "accepted @0.85"},
	}
	res.Rows = append(res.Rows, []string{
		"genuine line (reference)", fmt.Sprintf("%.4f", genuine),
		fmt.Sprintf("%v", genuine >= loose), fmt.Sprintf("%v", genuine >= strict),
	})

	worstMargin := 1.0
	for _, resolution := range []float64{20e-3, 10e-3, 5e-3, 3e-3, 1.5e-3} {
		spec := txline.CloneSpec{
			ControlResolution:   resolution,
			ResidualContrastRMS: lcfg.ContrastRMS,
			MatchTermination:    true,
		}
		best := 0.0
		// The attacker fabricates several candidates and presents the best.
		// Each candidate is scored by its mean similarity over several
		// presentations — the clone's structural match to the fingerprint,
		// not the luck of one comparator-noise draw.
		for k := 0; k < trials; k++ {
			clone := txline.CloneLine(victim.line, spec,
				stream.Child(fmt.Sprintf("fab-%.4f-%d", resolution, k)))
			victim.line, clone = clone, victim.line // present clone to the victim's iTDR
			s := victim.meanSimilarity(env, reps)
			victim.line, clone = clone, victim.line // restore
			if s > best {
				best = s
			}
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("clone, %.1f mm impedance control", resolution*1e3),
			fmt.Sprintf("%.4f", best),
			fmt.Sprintf("%v", best >= loose),
			fmt.Sprintf("%v", best >= strict),
		})
		if m := genuine - best; m < worstMargin {
			worstMargin = m
		}
		if best >= strict {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"CLONE ACCEPTED at %.1f mm control even at the strict threshold — PUF margin broken",
				resolution*1e3))
		}
	}
	res.Notes = append(res.Notes,
		"capable clones beat the loose (environment-tolerant) threshold: the "+
			"pipeline's noise smoothing also discards the sub-3 mm structure that "+
			"distinguishes them. The strict threshold rejects every clone and is "+
			"operable under environmental stress via stretch-aligned matching.")
	res.Notes = append(res.Notes, fmt.Sprintf(
		"worst genuine-to-clone margin: %.4f; residual clone randomness held at "+
			"the victim's own manufacturing contrast", worstMargin))
	return res
}
