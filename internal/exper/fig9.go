package exper

import (
	"fmt"

	"divot/internal/attack"
	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// tamperTrial mounts an attack on a calibrated rig and reports the error
// function before/after, plus localization.
type tamperTrial struct {
	name string
	// mount applies the attack and returns the true position (negative if
	// the change is at the termination) and an unmount function.
	mount func(r *rig, stream *rng.Stream) (pos float64, unmount func())
}

// runTamper executes the Fig. 9 methodology for one attack class: enroll,
// record the clean error floor, mount the attack, and measure the error
// peak, its contrast, and location.
func runTamper(id, title, claim string, trial tamperTrial, seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child(id)
	r := newRig("dut", itdr.DefaultConfig(), txline.DefaultConfig(), stream)
	env := txline.RoomTemperature()
	enroll := 8
	if mode == Quick {
		enroll = 6
	}
	r.enroll(env, enroll)

	// Clean error floor: E_xy between fresh measurements and the
	// reference, no attack (the paper's dotted lines).
	var cleanPeak, cleanMean float64
	cleanRounds := 4
	var errBuf *signal.Waveform
	for i := 0; i < cleanRounds; i++ {
		errBuf = fingerprint.ErrorFunctionInto(errBuf, r.measure(env), r.ref)
		if v, _, _ := fingerprint.PeakError(errBuf); v > cleanPeak {
			cleanPeak = v
		}
		cleanMean += fingerprint.MeanError(errBuf) / float64(cleanRounds)
	}

	pos, unmount := trial.mount(r, stream.Child("attack"))
	e := fingerprint.ErrorFunction(r.measure(env), r.ref)
	peak, idx, at := fingerprint.PeakError(e)
	loc := fingerprint.LocalizeError(e, idx, r.line.Config().Velocity)

	res := Result{
		ID:         id,
		Title:      title,
		PaperClaim: claim,
		Headers:    []string{"quantity", "value"},
		Rows: [][]string{
			{"clean E_xy peak (floor)", fmtF(cleanPeak)},
			{"clean E_xy mean", fmtF(cleanMean)},
			{"attack E_xy peak", fmtF(peak)},
			{"peak / clean floor", fmt.Sprintf("%.1fx", peak/cleanPeak)},
			{"peak time", fmt.Sprintf("%.2f ns", at*1e9)},
			{"localized at", fmt.Sprintf("%.1f mm", loc*1e3)},
		},
	}
	if pos >= 0 {
		res.Rows = append(res.Rows, []string{"true position", fmt.Sprintf("%.1f mm", pos*1e3)})
		res.Rows = append(res.Rows, []string{"localization error",
			fmt.Sprintf("%.1f mm", (loc-pos)*1e3)})
	} else {
		res.Rows = append(res.Rows, []string{"true position",
			fmt.Sprintf("termination (%.1f mm)", r.line.Config().Length*1e3)})
	}
	if peak <= cleanPeak {
		res.Notes = append(res.Notes, "ATTACK NOT DETECTED — peak within clean floor")
	}

	if unmount != nil {
		unmount()
		e2 := fingerprint.ErrorFunction(r.measure(env), r.ref)
		residual, _, _ := fingerprint.PeakError(e2)
		res.Rows = append(res.Rows, []string{"residual peak after removal", fmtF(residual)})
		res.Rows = append(res.Rows, []string{"residual / clean floor",
			fmt.Sprintf("%.1fx", residual/cleanPeak)})
	}
	return res
}

// Fig9LoadMod reproduces Fig. 9(b,c): replacing the receiver chip with a
// same-model part produces a large E_xy peak at the termination (~3.5 ns).
func Fig9LoadMod(seed uint64, mode Mode) Result {
	return runTamper("fig9bc",
		"load modification (Trojan chip / cold-boot handling)",
		"IIP differs greatly near the 3.5 ns termination; large E_xy peak at the load",
		tamperTrial{
			name: "load-modification",
			mount: func(r *rig, stream *rng.Stream) (float64, func()) {
				a := attack.SameModelReplacement(r.line.Config(), stream)
				a.Apply(r.line)
				return -1, nil
			},
		}, seed, mode)
}

// Fig9WireTap reproduces Fig. 9(e,f): a soldered tapping wire produces a
// very large localized E_xy change that persists after the wire is removed.
func Fig9WireTap(seed uint64, mode Mode) Result {
	const pos = 0.10
	return runTamper("fig9ef",
		"wire-tapping with an oscilloscope probe wire",
		"IIP change is very significant and remains large after wire removal "+
			"(permanently destroyed, non-reversible)",
		tamperTrial{
			name: "wire-tap",
			mount: func(r *rig, _ *rng.Stream) (float64, func()) {
				a := attack.DefaultWireTap(pos)
				a.Apply(r.line)
				return pos, func() { a.Remove(r.line) }
			},
		}, seed, mode)
}

// Fig9MagProbe reproduces Fig. 9(h,i): a non-contact magnetic probe causes a
// small IIP change but a clear, localizable error peak — the weakest attack,
// which sets the detection threshold.
func Fig9MagProbe(seed uint64, mode Mode) Result {
	const pos = 0.15
	r := runTamper("fig9hi",
		"magnetic near-field probing (non-contact)",
		"small IIP difference but large error-function contrast; detectable and "+
			"localizable with a fixed threshold",
		tamperTrial{
			name: "magnetic-probe",
			mount: func(r *rig, _ *rng.Stream) (float64, func()) {
				a := attack.DefaultMagneticProbe(pos)
				a.Apply(r.line)
				return pos, func() { a.Remove(r.line) }
			},
		}, seed, mode)
	r.Notes = append(r.Notes,
		"the paper's absolute threshold (5e-7) is instrument-specific; here the "+
			"threshold is set above the clean floor, and the probe clears it")
	return r
}
