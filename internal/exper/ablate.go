package exper

import (
	"fmt"

	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/stats"
	"divot/internal/txline"
)

// MultiWireAblation reproduces the paper's future-work claim (§IV-C):
// monitoring multiple wires of a bus shrinks the error rate roughly
// exponentially in the wire count. Each bus is a bundle of independent
// lines; per-wire similarities fuse by geometric mean.
func MultiWireAblation(seed uint64, mode Mode) Result {
	buses := 4
	per := 16
	if mode == Full {
		buses, per = 6, 64
	}
	maxWires := 8
	stream := rng.New(seed).Child("multiwire")
	icfg := itdr.DefaultConfig()
	lcfg := txline.DefaultConfig()
	env := txline.OvenSwing() // a stressed environment, so errors are visible

	// Build buses × wires rigs and enroll at room temperature.
	room := txline.RoomTemperature()
	all := make([][]*rig, buses)
	for b := range all {
		all[b] = make([]*rig, maxWires)
		for w := range all[b] {
			all[b][w] = newRig(fmt.Sprintf("bus%d-w%d", b, w), icfg, lcfg, stream)
			all[b][w].enroll(room, 6)
		}
	}

	res := Result{
		ID:    "multiwire",
		Title: "multi-wire fusion: separation margin vs wires monitored",
		PaperClaim: "monitoring multiple wires on a bus can exponentially " +
			"increase authentication accuracy (future work)",
		Headers: []string{"wires", "genuine min", "impostor max", "margin", "EER"},
	}
	for _, wires := range []int{1, 2, 4, 8} {
		var genuine, impostor []float64
		for b := range all {
			for k := 0; k < per; k++ {
				scoresPer := make([]float64, wires)
				for w := 0; w < wires; w++ {
					m := all[b][w].measure(env)
					scoresPer[w] = fingerprint.Similarity(m, all[b][w].ref)
				}
				genuine = append(genuine, fingerprint.FuseSimilarities(scoresPer))
				// Impostor: same measurements scored against another bus.
				other := (b + 1) % buses
				for w := 0; w < wires; w++ {
					m := all[b][w].measure(env)
					scoresPer[w] = fingerprint.Similarity(m, all[other][w].ref)
				}
				impostor = append(impostor, fingerprint.FuseSimilarities(scoresPer))
			}
		}
		gmin, _ := stats.MinMax(genuine)
		_, imax := stats.MinMax(impostor)
		roc, err := stats.ComputeROC(genuine, impostor)
		if err != nil {
			panic(err)
		}
		eer, _ := roc.EER()
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", wires),
			fmt.Sprintf("%.4f", gmin),
			fmt.Sprintf("%.4f", imax),
			fmt.Sprintf("%+.4f", gmin-imax),
			fmt.Sprintf("%.3f%%", eer*100),
		})
	}
	return res
}

// CoprimeAblation reproduces §II-C's validity condition: with f_m = f_s the
// reference never sweeps and reconstruction collapses to the narrow
// intrinsic-noise range; coprime ratios restore the dynamic range.
func CoprimeAblation(seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child("coprime")
	lcfg := txline.DefaultConfig()
	env := txline.RoomTemperature()
	res := Result{
		ID:    "coprime",
		Title: "PDM frequency-ratio ablation: reconstruction fidelity",
		PaperClaim: "f_m and f_s must be relatively prime; f_m = f_s compares " +
			"against the same voltage every time, removing PDM's effectiveness",
		Headers: []string{"ratio f_m/f_s", "distinct levels", "corr. with truth"},
	}
	line := txline.New("dut", lcfg, stream.Child("line"))
	for _, c := range []struct{ num, den int }{{26, 25}, {6, 5}, {5, 5}, {10, 5}} {
		cfg := itdr.DefaultConfig()
		cfg.ModFreqRatioNum, cfg.ModFreqRatioDen = c.num, c.den
		r := itdr.MustNew(cfg, txline.DefaultProbe(), nil,
			stream.Child(fmt.Sprintf("itdr-%d-%d", c.num, c.den)))
		truth := line.Reflect(txline.DefaultProbe(), 0, 1, cfg.EquivalentRate(), cfg.Bins())
		m := r.Measure(line, env)
		sim := signal.NormalizedInnerProduct(signal.RemoveMean(m.IIP), signal.RemoveMean(truth))
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d/%d", c.num, c.den),
			fmt.Sprintf("%d", itdr.VernierLevelCount(c.num, c.den)),
			fmt.Sprintf("%.3f", sim),
		})
	}
	return res
}

// TriggerAblation reproduces §II-E: on a data lane, probing every edge
// regardless of direction cancels the reflections; the FIFO 1→0 trigger
// restores them at the cost of waiting for qualifying cycles.
func TriggerAblation(seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child("trigger")
	lcfg := txline.DefaultConfig()
	env := txline.RoomTemperature()
	line := txline.New("dut", lcfg, stream.Child("line"))
	res := Result{
		ID:    "trigger",
		Title: "runtime trigger ablation on a live data lane",
		PaperClaim: "rising and falling reflections cancel without the trigger; " +
			"a FIFO-generated 1→0 trigger makes runtime measurement work",
		Headers: []string{"trigger mode", "corr. with truth", "cycles used", "duration"},
	}
	for _, mode := range []itdr.TriggerMode{itdr.TriggerClock, itdr.TriggerFIFO, itdr.TriggerNone} {
		cfg := itdr.DefaultConfig()
		cfg.Trigger = mode
		r := itdr.MustNew(cfg, txline.DefaultProbe(), nil, stream.Child("itdr-"+mode.String()))
		truth := line.Reflect(txline.DefaultProbe(), 0, 1, cfg.EquivalentRate(), cfg.Bins())
		m := r.Measure(line, env)
		sim := signal.NormalizedInnerProduct(signal.RemoveMean(m.IIP), signal.RemoveMean(truth))
		res.Rows = append(res.Rows, []string{
			mode.String(),
			fmt.Sprintf("%.3f", sim),
			fmt.Sprintf("%d", m.CyclesUsed),
			fmt.Sprintf("%.1f µs", m.Duration*1e6),
		})
	}
	return res
}

// TrialsAblation sweeps the per-bin trial budget: the paper's ~8k-trial,
// 50 µs operating point sits on a fidelity/latency curve.
func TrialsAblation(seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child("trials")
	lcfg := txline.DefaultConfig()
	env := txline.RoomTemperature()
	line := txline.New("dut", lcfg, stream.Child("line"))
	res := Result{
		ID:    "trials",
		Title: "measurement budget ablation: fidelity vs latency",
		PaperClaim: "(design choice) 8k one-bit trials fit the 50 µs envelope at " +
			"156.25 MHz",
		Headers: []string{"trials/bin", "total trials", "duration", "corr. with truth"},
	}
	sweep := []int{5, 10, 25, 50, 100}
	if mode == Quick {
		sweep = []int{5, 25, 100}
	}
	for _, k := range sweep {
		cfg := itdr.DefaultConfig()
		cfg.TrialsPerBin = k
		r := itdr.MustNew(cfg, txline.DefaultProbe(), nil, stream.Child(fmt.Sprintf("itdr-%d", k)))
		truth := line.Reflect(txline.DefaultProbe(), 0, 1, cfg.EquivalentRate(), cfg.Bins())
		m := r.Measure(line, env)
		sim := signal.NormalizedInnerProduct(signal.RemoveMean(m.IIP), signal.RemoveMean(truth))
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", cfg.TotalTrials()),
			fmt.Sprintf("%.1f µs", cfg.MeasurementDuration()*1e6),
			fmt.Sprintf("%.3f", sim),
		})
	}
	return res
}

// RepresentationAblation compares the similarity representations the
// fingerprint pipeline offers — the derivative (local reflectivity) view
// against the raw mean-removed waveform — on genuine/impostor separation.
func RepresentationAblation(seed uint64, mode Mode) Result {
	lines, enroll, per := campaignSizes(mode)
	per /= 2
	if per < 8 {
		per = 8
	}
	env := txline.RoomTemperature()
	res := Result{
		ID:    "repr",
		Title: "similarity representation ablation",
		PaperClaim: "(design choice) comparing local-reflectivity profiles removes " +
			"the macro structure all same-design lines share",
		Headers: []string{"representation", "genuine min", "impostor max", "margin"},
	}
	for _, m := range []fingerprint.CompareMode{fingerprint.CompareDerivative, fingerprint.CompareMeanRemoved} {
		stream := rng.New(seed).Child("fleet") // same fleet both ways
		rigs := fleet(itdr.DefaultConfig(), txline.DefaultConfig(), stream, lines)
		for _, r := range rigs {
			r.pipe.Mode = m
		}
		enrollFleet(rigs, env, enroll)
		genuine, impostor := scores(rigs, env, per)
		gmin, _ := stats.MinMax(genuine)
		_, imax := stats.MinMax(impostor)
		res.Rows = append(res.Rows, []string{
			m.String(),
			fmt.Sprintf("%.4f", gmin),
			fmt.Sprintf("%.4f", imax),
			fmt.Sprintf("%+.4f", gmin-imax),
		})
	}
	return res
}
