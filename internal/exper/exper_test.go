package exper

import (
	"strconv"
	"strings"
	"testing"

	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/txline"
)

// TestAllExperimentsRun executes every experiment in quick mode and applies
// per-experiment shape assertions — the reproduction's regression suite.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r := e.Generator(42, Quick)
			if r.ID != e.ID {
				t.Errorf("result ID %q, want %q", r.ID, e.ID)
			}
			if len(r.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if r.String() == "" {
				t.Error("empty rendering")
			}
			for _, n := range r.Notes {
				if strings.Contains(n, "FAIL") || strings.Contains(n, "NOT DETECTED") {
					t.Errorf("experiment flagged a failure: %s", n)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig7b"); !ok {
		t.Error("fig7b should exist")
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("unknown id should not resolve")
	}
}

// value extracts the row whose first cell equals key.
func value(t *testing.T, r Result, key string) string {
	t.Helper()
	for _, row := range r.Rows {
		if row[0] == key {
			return row[1]
		}
	}
	t.Fatalf("%s: no row %q in %v", r.ID, key, r.Rows)
	return ""
}

func parsePercent(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func TestFig7bSeparation(t *testing.T) {
	r := Fig7bROC(42, Quick)
	eer := parsePercent(t, value(t, r, "EER"))
	if eer > 1.0 {
		t.Errorf("room-temperature EER %.3f%% far above the paper's <0.06%%", eer)
	}
}

func TestFig8WorseThanRoom(t *testing.T) {
	room := Fig7bROC(42, Quick)
	oven := Fig8Temperature(42, Quick)
	// The paper's shape: the genuine distribution shifts left under the
	// swing. Compare the EER thresholds (where the distributions meet).
	roomTh, _ := strconv.ParseFloat(value(t, room, "EER threshold"), 64)
	ovenTh, _ := strconv.ParseFloat(value(t, oven, "EER threshold"), 64)
	if ovenTh >= roomTh {
		t.Errorf("oven threshold %v should sit below room threshold %v (genuine shifted left)",
			ovenTh, roomTh)
	}
}

func TestVibrationWorseThanOven(t *testing.T) {
	oven := Fig8Temperature(42, Quick)
	vib := VibrationEER(42, Quick)
	ovenG := value(t, oven, "genuine S_xy")
	vibG := value(t, vib, "genuine S_xy")
	// Compare the genuine medians: vibration ≥ oven degradation.
	med := func(s string) float64 {
		for _, f := range strings.Fields(s) {
			if strings.HasPrefix(f, "median=") {
				v, _ := strconv.ParseFloat(strings.TrimPrefix(f, "median="), 64)
				return v
			}
		}
		t.Fatalf("no median in %q", s)
		return 0
	}
	if med(vibG) >= med(ovenG) {
		t.Errorf("vibration genuine median %v should be below oven %v", med(vibG), med(ovenG))
	}
}

func TestEMINoWorseThanRoomEER(t *testing.T) {
	room := Fig7bROC(42, Quick)
	emi := EMIEER(42, Quick)
	roomEER := parsePercent(t, value(t, room, "EER"))
	emiEER := parsePercent(t, value(t, emi, "EER"))
	if emiEER > roomEER+0.5 {
		t.Errorf("EMI EER %.3f%% should stay near room %.3f%%", emiEER, roomEER)
	}
}

func TestFig9ShapesHold(t *testing.T) {
	load := Fig9LoadMod(42, Quick)
	tap := Fig9WireTap(42, Quick)
	probe := Fig9MagProbe(42, Quick)
	ratio := func(r Result) float64 {
		s := value(t, r, "peak / clean floor")
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if ratio(load) < 3 {
		t.Errorf("load-mod contrast %vx too weak", ratio(load))
	}
	if ratio(tap) < ratio(probe) {
		t.Errorf("wire tap (%vx) should dominate magnetic probe (%vx)", ratio(tap), ratio(probe))
	}
	if ratio(probe) < 2 {
		t.Errorf("magnetic probe contrast %vx below detectability", ratio(probe))
	}
	// Wire-tap permanence: residual stays above the floor after removal.
	res := value(t, tap, "residual / clean floor")
	rv, _ := strconv.ParseFloat(strings.TrimSuffix(res, "x"), 64)
	if rv < 1.5 {
		t.Errorf("wire-tap residual %vx should remain detectable", rv)
	}
}

func TestUtilizationMatchesPaperScale(t *testing.T) {
	r := UtilizationModel(1, Quick)
	row := r.Rows[0]
	regs, _ := strconv.Atoi(row[1])
	luts, _ := strconv.Atoi(row[2])
	if regs < 60 || regs > 85 || luts < 105 || luts > 145 {
		t.Errorf("utilization %s regs / %s LUTs strays from the paper's 71/124", row[1], row[2])
	}
}

func TestLatencyWithinEnvelope(t *testing.T) {
	r := DetectionLatency(1, Quick)
	// First row: prototype. Duration must be within ~50-60 µs.
	d := r.Rows[0][3]
	v, err := strconv.ParseFloat(strings.Fields(d)[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	if v > 60 {
		t.Errorf("prototype measurement %v µs exceeds the 50 µs envelope", v)
	}
}

func TestCoprimeAblationShape(t *testing.T) {
	r := CoprimeAblation(42, Quick)
	// Rows: 26/25, 6/5 (good), 5/5, 10/5 (collapsed). Fidelity of the
	// first must beat the third by a wide margin.
	good, _ := strconv.ParseFloat(r.Rows[0][2], 64)
	bad, _ := strconv.ParseFloat(r.Rows[2][2], 64)
	if good < 0.8 {
		t.Errorf("coprime fidelity %v too low", good)
	}
	if bad > good-0.2 {
		t.Errorf("collapsed ratio fidelity %v should trail coprime %v", bad, good)
	}
}

func TestTriggerAblationShape(t *testing.T) {
	r := TriggerAblation(42, Quick)
	clock, _ := strconv.ParseFloat(r.Rows[0][1], 64)
	fifo, _ := strconv.ParseFloat(r.Rows[1][1], 64)
	none, _ := strconv.ParseFloat(r.Rows[2][1], 64)
	if clock < 0.8 || fifo < 0.8 {
		t.Errorf("triggered modes should reconstruct: clock %v, fifo %v", clock, fifo)
	}
	if none > 0.5 {
		t.Errorf("untriggered mode should cancel, got %v", none)
	}
}

func TestMultiWireImprovesMargin(t *testing.T) {
	r := MultiWireAblation(42, Quick)
	margin := func(row []string) float64 {
		v, _ := strconv.ParseFloat(row[3], 64)
		return v
	}
	one := margin(r.Rows[0])
	eight := margin(r.Rows[len(r.Rows)-1])
	if eight <= one {
		t.Errorf("8-wire margin %v should beat 1-wire %v", eight, one)
	}
}

func TestBaselineMatrixShape(t *testing.T) {
	r := Baselines(42, Quick)
	// The DIVOT row is last and must detect every class.
	divotRow := r.Rows[len(r.Rows)-1]
	for _, cell := range divotRow[5:] {
		if cell != "detect" {
			t.Errorf("DIVOT row misses an attack: %v", divotRow)
		}
	}
	// PAD (first row) must miss the magnetic probe (column 7).
	if r.Rows[0][7] != "miss" {
		t.Errorf("PAD should miss the magnetic probe: %v", r.Rows[0])
	}
}

func TestModeString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("mode names")
	}
}

func TestCloneResistanceShape(t *testing.T) {
	r := CloneResistance(42, Quick)
	genuine, _ := strconv.ParseFloat(r.Rows[0][1], 64)
	if r.Rows[0][3] != "true" {
		t.Errorf("genuine line rejected at the strict threshold: %v", r.Rows[0])
	}
	for i, row := range r.Rows[1:] {
		best, _ := strconv.ParseFloat(row[1], 64)
		// The PUF claim is a margin claim: the best fabricated candidate —
		// a max statistic over fabrication luck, so its exact value is
		// seed-sensitive — must stay clearly below a genuine
		// re-measurement, leaving a verifier threshold between them.
		if best > genuine-0.05 {
			t.Errorf("clone %q (%v) within 0.05 of genuine level (%v)", row[0], best, genuine)
		}
		// Coarse fabrication (the first, 20 mm row) is far above the
		// instrument's spatial resolution; strict rejection there is not a
		// tail event and must hold.
		if i == 0 && row[3] == "true" {
			t.Errorf("coarse clone %q accepted at the strict threshold", row[0])
		}
	}
}

func TestAlignmentRestoresGenuineFloor(t *testing.T) {
	r := AlignmentExtension(42, Quick)
	parseMin := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.Split(row[1], " / ")[0], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	plain := parseMin(r.Rows[0])
	aligned := parseMin(r.Rows[1])
	if aligned <= plain {
		t.Errorf("aligned genuine floor %v should beat plain %v", aligned, plain)
	}
	if aligned < 0.9 {
		t.Errorf("aligned genuine floor %v should approach room level", aligned)
	}
}

func TestInterposerDetectionShape(t *testing.T) {
	r := InterposerDetection(42, Quick)
	genuine, _ := strconv.ParseFloat(r.Rows[0][1], 64)
	if r.Rows[0][3] != "true" {
		t.Errorf("genuine line rejected at the strict threshold: %v", r.Rows[0])
	}
	prev := -1.0
	for _, row := range r.Rows[1:] {
		s, _ := strconv.ParseFloat(row[1], 64)
		// Like capable clones, deep insertions may clear the loose
		// environment-tolerant threshold; the strict (aligned-matcher)
		// operating point must reject every interposer.
		if row[3] != "false" {
			t.Errorf("interposer %q accepted at the strict threshold", row[0])
		}
		if s >= genuine {
			t.Errorf("interposer %q similarity %v at genuine level", row[0], s)
		}
		if s <= prev {
			t.Errorf("similarity should rise with insertion distance: %v after %v", s, prev)
		}
		prev = s
		// Threshold or not, E_xy must localize the cut for every insertion.
		if row[4] == "-" {
			t.Errorf("interposer %q not localized by E_xy", row[0])
		}
	}
}

func TestOffsetDriftToleranceShape(t *testing.T) {
	r := OffsetDriftAblation(42, Quick)
	first, _ := strconv.ParseFloat(r.Rows[0][2], 64)
	mid, _ := strconv.ParseFloat(r.Rows[4][2], 64)              // 4σ
	last, _ := strconv.ParseFloat(r.Rows[len(r.Rows)-1][2], 64) // 16σ
	if mid < first-0.05 {
		t.Errorf("similarity at 4σ drift (%v) should hold near zero-drift (%v)", mid, first)
	}
	if last > 0.7 {
		t.Errorf("similarity at 16σ drift (%v) should collapse", last)
	}
}

func TestJitterShape(t *testing.T) {
	r := JitterAblation(42, Quick)
	ideal, _ := strconv.ParseFloat(r.Rows[0][2], 64)
	worst, _ := strconv.ParseFloat(r.Rows[len(r.Rows)-1][2], 64)
	if worst >= ideal {
		t.Errorf("5x-step jitter (%v) should degrade vs ideal PLL (%v)", worst, ideal)
	}
	mmcm, _ := strconv.ParseFloat(r.Rows[2][2], 64) // 2 ps default
	if mmcm < ideal-0.02 {
		t.Errorf("MMCM-class jitter (%v) should be nearly free vs ideal (%v)", mmcm, ideal)
	}
}

func TestSharingShape(t *testing.T) {
	r := SharingAblation(42, Quick)
	// At 64 buses the multiplexed LUT cost must be far below dedicated.
	last := r.Rows[len(r.Rows)-1]
	dedicated := strings.Split(last[1], " / ")
	multiplexed := strings.Split(last[3], " / ")
	d, _ := strconv.Atoi(strings.TrimSpace(dedicated[1]))
	m, _ := strconv.Atoi(strings.TrimSpace(multiplexed[1]))
	if m*10 > d {
		t.Errorf("multiplexed LUTs %d should be <10%% of dedicated %d at 64 buses", m, d)
	}
}

func TestCrosstalkShape(t *testing.T) {
	r := CrosstalkAblation(42, Quick)
	ratio := func(i int) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(r.Rows[i][3], "x"), 64)
		return v
	}
	if ratio(1) < 3 {
		t.Errorf("state-mismatched crosstalk should produce a phantom bump, got %vx", ratio(1))
	}
	if ratio(2) > 2 {
		t.Errorf("matched-calibration crosstalk should be absorbed, got %vx", ratio(2))
	}
}

func TestResultString(t *testing.T) {
	r := Result{
		ID:         "x",
		Title:      "demo",
		PaperClaim: "claimed",
		Headers:    []string{"a", "longer-header"},
		Rows:       [][]string{{"1", "2"}, {"wide-cell", "3"}},
		Notes:      []string{"a note"},
	}
	s := r.String()
	for _, want := range []string{"== x: demo ==", "paper: claimed", "longer-header",
		"wide-cell", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	// Ragged rows (more cells than headers) must not panic.
	r.Rows = append(r.Rows, []string{"1", "2", "extra"})
	if !strings.Contains(r.String(), "extra") {
		t.Error("extra cells dropped")
	}
}

func TestDistSummary(t *testing.T) {
	s := distSummary([]float64{3, 1, 2})
	for _, want := range []string{"n=3", "min=1.0000", "max=3.0000", "median=2.0000"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func TestFmtF(t *testing.T) {
	if fmtF(0.000123456) != "0.000123456" {
		t.Errorf("fmtF = %q", fmtF(0.000123456))
	}
}

// TestScoresParallelismInvariance pins the contract the Parallelism knob
// promises: fleet construction, enrollment, and scoring produce bit-identical
// score slices whether rigs run sequentially or fan out across workers. Rig
// identity derives from labelled stream children, never from execution order.
func TestScoresParallelismInvariance(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	run := func(par int) (g, i []float64) {
		Parallelism = par
		stream := rng.New(7).Child("fleet")
		rigs := fleet(itdr.DefaultConfig(), txline.DefaultConfig(), stream, 4)
		env := txline.RoomTemperature()
		enrollFleet(rigs, env, 3)
		return scores(rigs, env, 3)
	}

	gBase, iBase := run(1)
	for _, par := range []int{4, 0} { // 0 = GOMAXPROCS
		g, i := run(par)
		if len(g) != len(gBase) || len(i) != len(iBase) {
			t.Fatalf("parallelism %d: score counts (%d, %d) differ from sequential (%d, %d)",
				par, len(g), len(i), len(gBase), len(iBase))
		}
		for k := range g {
			if g[k] != gBase[k] {
				t.Fatalf("parallelism %d: genuine[%d] = %v, sequential gave %v", par, k, g[k], gBase[k])
			}
		}
		for k := range i {
			if i[k] != iBase[k] {
				t.Fatalf("parallelism %d: impostor[%d] = %v, sequential gave %v", par, k, i[k], iBase[k])
			}
		}
	}
}

// TestFaultSweepShape pins the robustness claims: one-shot faults alarm the
// bare protocol but never the confirmed one, drift is survived only with
// re-enrollment, dead bins degrade without losing clone rejection, and the
// whole faulted run is parallelism-invariant.
func TestFaultSweepShape(t *testing.T) {
	r := FaultSweep(42, Quick)
	rowsSeen := 0
	for _, row := range r.Rows {
		scenario, proto, alerts, outcome := row[0], row[1], row[3], row[4]
		switch {
		case strings.Contains(scenario, "(1 meas)") && proto == "confirmed":
			rowsSeen++
			if alerts != "0" {
				t.Errorf("confirmed protocol alarmed on transient %q: %s alerts", scenario, alerts)
			}
		case strings.Contains(scenario, "(1 meas)") && proto == "bare":
			rowsSeen++
			if alerts == "0" {
				t.Errorf("bare protocol absorbed transient %q — confirm adds nothing", scenario)
			}
		case strings.HasPrefix(scenario, "PLL aging") && proto == "re-enroll on":
			rowsSeen++
			if alerts != "0" || strings.Contains(outcome, "refreshed 0x") {
				t.Errorf("drift with refresh: alerts %s, outcome %q", alerts, outcome)
			}
		case strings.HasPrefix(scenario, "PLL aging") && proto == "re-enroll off":
			rowsSeen++
			if alerts == "0" {
				t.Error("drift without refresh never alarmed — the guard protects nothing")
			}
		case strings.HasPrefix(scenario, "interposer"):
			rowsSeen++
			if alerts == "0" || !strings.Contains(outcome, "refreshes after attack 0") {
				t.Errorf("interposer under drift: alerts %s, outcome %q", alerts, outcome)
			}
		case strings.Contains(scenario, "genuine bus"):
			rowsSeen++
			if alerts != "0" || !strings.Contains(outcome, "health degraded") {
				t.Errorf("dead-bin genuine row: alerts %s, outcome %q", alerts, outcome)
			}
		case strings.Contains(scenario, "foreign bus"):
			rowsSeen++
			if !strings.Contains(outcome, "rejected true") {
				t.Errorf("dead-bin foreign bus accepted: %q", outcome)
			}
		case strings.Contains(scenario, "Parallelism"):
			rowsSeen++
			if !strings.Contains(outcome, "bit-identical true") {
				t.Errorf("faulted run not parallelism-invariant: %q", outcome)
			}
		}
	}
	if rowsSeen < 15 {
		t.Errorf("only %d fault-sweep rows matched the expected shapes", rowsSeen)
	}
}
