package exper

import (
	"fmt"

	"divot/internal/attack"
	"divot/internal/core"
	"divot/internal/fault"
	"divot/internal/rng"
	"divot/internal/txline"
)

// faultedLink builds and calibrates one protected link with fault planes
// attached to the chosen endpoints, all seeded from the same labelled stream
// universe so the sweep is reproducible at any Parallelism.
func faultedLink(seed uint64, label string, cfg core.Config, cpuFaults, modFaults []fault.Fault) (*core.Link, error) {
	st := rng.New(seed).Child(label)
	l, err := core.NewLink(label, cfg, txline.DefaultConfig(), st.Child("link"))
	if err != nil {
		return nil, err
	}
	if cpuFaults != nil {
		l.CPU.Instrument().SetInjector(fault.NewPlane(st.Child("fault-cpu"), cpuFaults...))
	}
	if modFaults != nil {
		l.Module.Instrument().SetInjector(fault.NewPlane(st.Child("fault-module"), modFaults...))
	}
	if err := l.Calibrate(); err != nil {
		return nil, err
	}
	return l, nil
}

// FaultSweep (extension) characterizes the fault-tolerant monitoring
// protocol end to end: transient instrument faults absorbed by the
// confirm-on-suspect retry, slow timebase aging absorbed by drift-guarded
// re-enrollment (while an interposer arriving on top of the same drift is
// still caught), and dead ETS bins masked into graceful degradation without
// surrendering clone rejection. Every scenario runs the full hardened
// monitoring round; a final check replays a mixed-fault run at Parallelism
// 1 and 4 and demands bit-identical alerts and health.
func FaultSweep(seed uint64, mode Mode) Result {
	res := Result{
		ID:    "faults",
		Title: "instrument-fault tolerance of the hardened monitoring protocol (extension)",
		PaperClaim: "(robustness extension) transient faults must not alarm, slow " +
			"drift must not lock out a genuine bus, and partial instrument loss " +
			"must degrade — all without weakening attack detection",
		Headers: []string{"scenario", "protocol", "rounds", "alerts", "outcome"},
	}
	cfg := core.DefaultConfig()
	onset := uint64(cfg.CalibrationMeasurements() + 1) // first monitoring measurement

	// --- transient one-shot instrument faults: confirm vs bare ---------
	transientRounds := 4
	if mode == Full {
		transientRounds = 8
	}
	transients := []struct {
		name string
		f    fault.Fault
	}{
		{"comparator stuck high (1 meas)", fault.StuckComparator(true, fault.Once(onset))},
		{"EMI burst 50 mV (1 meas)", fault.EMIGlitch(0.05, fault.Once(onset))},
		{"PLL phase glitch 150 ps (1 meas)", fault.PhaseGlitch(150e-12, fault.Once(onset))},
		{"counter bit-3 upsets (1 meas)", fault.CounterUpset(3, 1, fault.Once(onset))},
	}
	bareCfg := cfg
	bareCfg.Robust.ConfirmRetries = 0
	for i, tc := range transients {
		for _, arm := range []struct {
			proto string
			cfg   core.Config
		}{{"confirmed", cfg}, {"bare", bareCfg}} {
			l, err := faultedLink(seed, fmt.Sprintf("transient-%d", i), arm.cfg, []fault.Fault{tc.f}, nil)
			if err != nil {
				res.Notes = append(res.Notes, "build error: "+err.Error())
				continue
			}
			alerts, err := l.MonitorN(transientRounds)
			if err != nil {
				res.Notes = append(res.Notes, "monitor error: "+err.Error())
				continue
			}
			h := l.Health()
			outcome := fmt.Sprintf("health %s, gate open %v, suspects %d",
				h.State(), l.CPU.Gate.Authorized(), h.CPU.SuspectRounds)
			res.Rows = append(res.Rows, []string{tc.name, arm.proto,
				fmt.Sprintf("%d", transientRounds), fmt.Sprintf("%d", len(alerts)), outcome})
		}
	}

	// --- slow timebase drift: guarded re-enrollment ---------------------
	// The PLL's phase step ages at 0.3 ps per measurement while the
	// reference noise grows slowly — a global, gradual fingerprint slide.
	// (Comparator-offset drift is not used: the derivative comparison
	// cancels a uniform offset until clipping, a cliff rather than a slope.)
	drift := []fault.Fault{
		fault.PhaseDrift(0.3e-12, fault.From(onset)),
		fault.NoiseDrift(0, 0.002, fault.From(onset)),
	}
	const driftRounds = 60
	if l, err := faultedLink(seed, "drift", cfg, drift, nil); err == nil {
		alerts, merr := l.MonitorN(driftRounds)
		h := l.Health()
		if merr != nil {
			res.Notes = append(res.Notes, "drift monitor error: "+merr.Error())
		}
		res.Rows = append(res.Rows, []string{"PLL aging 0.3 ps/meas", "re-enroll on",
			fmt.Sprintf("%d", driftRounds), fmt.Sprintf("%d", len(alerts)),
			fmt.Sprintf("refreshed %dx, last score %.3f, gate open %v",
				h.CPU.Reenrollments, h.CPU.LastScore, l.CPU.Gate.Authorized())})
	}
	noRefresh := cfg
	noRefresh.Robust.Reenroll.Enabled = false
	if l, err := faultedLink(seed, "drift", noRefresh, drift, nil); err == nil {
		total, firstAlert := 0, "-"
		for r := 1; r <= 100; r++ {
			alerts, merr := l.MonitorOnce()
			if merr != nil {
				break
			}
			if len(alerts) > 0 && firstAlert == "-" {
				firstAlert = fmt.Sprintf("first alert round %d", r)
			}
			total += len(alerts)
		}
		res.Rows = append(res.Rows, []string{"PLL aging 0.3 ps/meas", "re-enroll off",
			"100", fmt.Sprintf("%d", total),
			fmt.Sprintf("%s, gate open %v", firstAlert, l.CPU.Gate.Authorized())})
	}
	// The refresh guards must refuse to launder an attack that arrives on
	// top of the very drift they tolerate.
	if l, err := faultedLink(seed, "drift", cfg, drift, nil); err == nil {
		if _, err := l.MonitorN(30); err == nil {
			before := l.Health().CPU.Reenrollments
			attack.DefaultInterposer(0.125).Apply(l.Line)
			alerts, _ := l.MonitorN(30)
			h := l.Health()
			tampers := 0
			for _, a := range alerts {
				if a.Kind == core.AlertTamper {
					tampers++
				}
			}
			res.Rows = append(res.Rows, []string{"interposer @125 mm under same drift", "re-enroll on",
				"30+30", fmt.Sprintf("%d", len(alerts)),
				fmt.Sprintf("%d tamper alarms, refreshes after attack %d — dent refused",
					tampers, h.CPU.Reenrollments-before)})
		}
	}

	// --- dead ETS bins: graceful degradation ----------------------------
	for _, frac := range []float64{0.05, 0.10} {
		dead := []fault.Fault{fault.DeadBinField(frac, fault.From(onset))}
		label := fmt.Sprintf("dead-%02.0f", 100*frac)
		l, err := faultedLink(seed, label, cfg, dead, nil)
		if err != nil {
			continue
		}
		alerts, _ := l.MonitorN(6)
		h := l.Health()
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f%% dead bins, genuine bus", 100*frac), "masked",
			"6", fmt.Sprintf("%d", len(alerts)),
			fmt.Sprintf("health %s, masked %.1f%%, score %.3f",
				h.State(), 100*h.CPU.MaskedFraction, h.CPU.LastScore)})

		// Clone rejection through the mask: the degraded endpoint is
		// rerouted onto a foreign bus of the same construction.
		foreign := txline.New("foreign-"+label, txline.DefaultConfig(), rng.New(seed).Child("foreign-"+label))
		l.CPU.SetObservedLine(foreign)
		alerts, _ = l.MonitorOnce()
		worst := 1.0
		for _, a := range alerts {
			if a.Side == core.SideCPU && a.Kind == core.AlertAuthFailure && a.Score < worst {
				worst = a.Score
			}
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f%% dead bins, foreign bus", 100*frac), "masked",
			"1", fmt.Sprintf("%d", len(alerts)),
			fmt.Sprintf("rejected %v, score %.3f, gate open %v",
				len(alerts) > 0, worst, l.CPU.Gate.Authorized())})
	}

	// --- determinism across the parallelism knob ------------------------
	mixed := []fault.Fault{
		fault.DeadBinField(0.05, fault.From(onset)),
		fault.StuckComparator(true, fault.Once(onset+4)),
		fault.PhaseDrift(0.3e-12, fault.From(onset)),
	}
	detRounds := 20
	run := func(par int) (string, error) {
		c := cfg
		c.Parallelism = par
		l, err := faultedLink(seed, "determinism", c, mixed, mixed[1:2])
		if err != nil {
			return "", err
		}
		alerts, err := l.MonitorN(detRounds)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v/%v", alerts, l.Health()), nil
	}
	seq, err1 := run(1)
	par, err2 := run(4)
	if err1 == nil && err2 == nil {
		res.Rows = append(res.Rows, []string{"mixed faults, Parallelism 1 vs 4", "hardened",
			fmt.Sprintf("%d", detRounds), "-",
			fmt.Sprintf("bit-identical %v", seq == par)})
	}

	res.Notes = append(res.Notes,
		"confirm-on-suspect re-measures a failed round up to ConfirmRetries "+
			"times and alarms only on a majority — one-shot faults land as "+
			"suspect rounds, not alerts, while persistent attacks reproduce "+
			"through every retry",
		"re-enrollment refreshes the baseline only under drift guards (slow "+
			"global decay, no abrupt step, low tamper contrast, cooldown), so "+
			"aging is absorbed but an interposer's localized dent is refused",
		"dead bins are masked after repeated saturation and matching "+
			"renormalizes over the live bins: resolution degrades, the "+
			"genuine/foreign margin survives")
	return res
}
