package exper

import (
	"fmt"

	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/stats"
	"divot/internal/txline"
)

// campaignSizes returns (lines, enrollment measurements, measurements per
// line) for the mode.
func campaignSizes(mode Mode) (lines, enroll, per int) {
	if mode == Full {
		return 6, 8, 220
	}
	return 6, 6, 24
}

// authCampaign runs the Fig. 7 methodology under an arbitrary monitoring
// environment: six lines enrolled at room temperature, then measured under
// env, with every measurement scored against every enrollment.
func authCampaign(id, title, claim string, env txline.Environment, seed uint64, mode Mode) Result {
	lines, enroll, per := campaignSizes(mode)
	// All campaigns share the same fleet derivation — the paper measures
	// the same six Tx-lines across every environment, which is what makes
	// "the impostor distribution didn't change noticeably" a meaningful
	// observation.
	stream := rng.New(seed).Child("fleet")
	rigs := fleet(itdr.DefaultConfig(), txline.DefaultConfig(), stream, lines)
	room := txline.RoomTemperature()
	enrollFleet(rigs, room, enroll)
	genuine, impostor := scores(rigs, env, per)
	roc, err := stats.ComputeROC(genuine, impostor)
	if err != nil {
		panic(err) // non-empty by construction
	}
	eer, th := roc.EER()

	res := Result{
		ID:         id,
		Title:      title,
		PaperClaim: claim,
		Headers:    []string{"quantity", "value"},
		Rows: [][]string{
			{"genuine S_xy", distSummary(genuine)},
			{"impostor S_xy", distSummary(impostor)},
			{"EER", fmt.Sprintf("%.4f%%", eer*100)},
			{"EER threshold", fmt.Sprintf("%.4f", th)},
			{"AUC", fmt.Sprintf("%.6f", roc.AUC())},
			{"FPR at TPR=1", fmt.Sprintf("%.4f%%", roc.FPRAtTPR(1)*100)},
			{"ROC samples", rocSamples(roc)},
		},
	}
	if eer == 0 {
		bound := 100.0 / float64(min(len(genuine), len(impostor)))
		res.Notes = append(res.Notes, fmt.Sprintf(
			"distributions fully separated at this sample size; EER < %.3f%% (resolution bound)", bound))
	}
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// rocSamples renders a few operating points of the curve — the Fig. 7(b)
// series itself, not just its EER.
func rocSamples(roc *stats.ROC) string {
	out := ""
	for _, wantTPR := range []float64{0.90, 0.99, 0.999, 1.0} {
		out += fmt.Sprintf("TPR>=%.3f:FPR=%.4f  ", wantTPR, roc.FPRAtTPR(wantTPR))
	}
	return out
}

// Fig7aDistributions reproduces Fig. 7(a): genuine vs impostor similarity
// distributions over six Tx-lines at room temperature.
func Fig7aDistributions(seed uint64, mode Mode) Result {
	r := authCampaign("fig7a",
		"genuine/impostor similarity distributions (6 lines, room temperature)",
		"clear separation between genuine and impostor distributions",
		txline.RoomTemperature(), seed, mode)
	return r
}

// Fig7bROC reproduces Fig. 7(b): the ROC and EER at room temperature.
func Fig7bROC(seed uint64, mode Mode) Result {
	r := authCampaign("fig7b",
		"receiver operating characteristic and EER (room temperature)",
		"EER < 0.06% over six Tx-lines × 8192 measurements",
		txline.RoomTemperature(), seed, mode)
	return r
}

// Fig8Temperature reproduces Fig. 8: the genuine distribution shifts left
// under a 23→75 °C swing while impostors stay put, raising the EER.
func Fig8Temperature(seed uint64, mode Mode) Result {
	r := authCampaign("fig8",
		"authentication under temperature swing 23→75 °C",
		"genuine distribution moves left, impostor unchanged; EER rises to 0.14%",
		txline.OvenSwing(), seed, mode)
	return r
}

// VibrationEER reproduces §IV-C's vibration result: a 1-50 Hz piezo chirp
// strains the board and raises the EER further.
func VibrationEER(seed uint64, mode Mode) Result {
	r := authCampaign("vib",
		"authentication under 1-50 Hz chirped vibration",
		"EER increases to 0.27% under continuous chirped knocking",
		txline.Vibration(2.5e-2), seed, mode)
	return r
}

// EMIEER reproduces §IV-C's EMI result: asynchronous interference from a
// nearby digital circuit averages out of the synchronized measurement, so
// the EER stays at its room-temperature value.
func EMIEER(seed uint64, mode Mode) Result {
	r := authCampaign("emi",
		"authentication with a high-speed digital aggressor nearby",
		"EER stays at 0.06% — asynchronous EMI averages out",
		txline.EMI(0.8e-3, 333e6), seed, mode)
	return r
}
