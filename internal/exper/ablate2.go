package exper

import (
	"fmt"

	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/memctl"
	"divot/internal/rng"
	"divot/internal/sim"
	"divot/internal/txline"
)

// SecondOrderAblation measures what the second-order reflection term
// (termination → source → termination echo) contributes: synthesis cost and
// fingerprint fidelity. DESIGN.md calls this design choice out because the
// first-order Born model is the accuracy/cost knob of the physics substrate.
func SecondOrderAblation(seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child("secorder")
	lcfg := txline.DefaultConfig()
	icfg := itdr.DefaultConfig()
	pipe := fingerprint.DefaultPipeline()
	line := txline.New("dut", lcfg, stream.Child("line"))
	// Use a window long enough to contain the echo at 2×RTT.
	rate := icfg.EquivalentRate()
	n := int(2.2 * line.RoundTripTime() * rate)

	probe1 := txline.DefaultProbe()
	probe1.SecondOrder = false
	probe2 := txline.DefaultProbe()
	probe2.SecondOrder = true

	w1 := line.Reflect(probe1, 0, 1, rate, n)
	w2 := line.Reflect(probe2, 0, 1, rate, n)
	f1 := pipe.FromWaveform(w1)
	f2 := pipe.FromWaveform(w2)
	e := fingerprint.ErrorFunction(f1, f2)
	peak, _, at := fingerprint.PeakError(e)

	res := Result{
		ID:    "secorder",
		Title: "second-order reflection (multi-bounce echo) ablation",
		PaperClaim: "(design choice) first-order reflections carry the IIP; the " +
			"echo is a small correction at twice the round trip",
		Headers: []string{"quantity", "value"},
		Rows: [][]string{
			{"similarity 1st-order vs 1st+2nd", fmt.Sprintf("%.6f", fingerprint.Similarity(f1, f2))},
			{"echo E_xy peak", fmtF(peak)},
			{"echo peak time", fmt.Sprintf("%.2f ns", at*1e9)},
			{"expected echo time (2×RTT)", fmt.Sprintf("%.2f ns", 2*line.RoundTripTime()*1e9)},
		},
	}
	res.Notes = append(res.Notes,
		"within the standard 3.83 ns observation window the echo has not yet "+
			"arrived, so the default window is echo-free by construction")
	return res
}

// PagePolicyAblation exercises the memory-controller page-policy knob under
// the two canonical workloads — not a paper artifact, but the controller
// substrate's own design-choice sweep.
func PagePolicyAblation(seed uint64, mode Mode) Result {
	res := Result{
		ID:    "pagepolicy",
		Title: "memory controller page-policy × workload sweep",
		PaperClaim: "(substrate design choice) open-page wins locality, " +
			"closed-page hides precharge on spaced row conflicts",
		Headers: []string{"policy", "workload", "avg latency", "row hit rate"},
	}
	n := 64
	if mode == Full {
		n = 256
	}
	type workload struct {
		name   string
		addr   func(i int) memctl.Address
		spaced bool
	}
	workloads := []workload{
		{"streaming (one row)", func(i int) memctl.Address {
			return memctl.Address{Bank: 0, Row: 7, Col: i % 512}
		}, false},
		{"spaced row ping-pong", func(i int) memctl.Address {
			return memctl.Address{Bank: 0, Row: i % 2, Col: i % 512}
		}, true},
	}
	for _, policy := range []memctl.PagePolicy{memctl.PageOpen, memctl.PageClosed} {
		for _, wl := range workloads {
			sched := &sim.Scheduler{}
			dev, err := memctl.NewDevice(memctl.DefaultGeometry(), nil)
			if err != nil {
				panic(err)
			}
			cfg := memctl.DefaultControllerConfig()
			cfg.Page = policy
			cfg.Arbiter = memctl.ArbiterFCFS
			ctl, err := memctl.NewController(sched, dev, cfg, nil)
			if err != nil {
				panic(err)
			}
			for i := 0; i < n; i++ {
				req := &memctl.Request{Op: memctl.OpRead, Addr: wl.addr(i)}
				if wl.spaced {
					i := i
					sched.At(sim.Time(i)*2*sim.Microsecond, func() { ctl.Submit(req) })
				} else {
					ctl.Submit(req)
				}
			}
			sched.Run(1 << 22)
			res.Rows = append(res.Rows, []string{
				policy.String(), wl.name,
				ctl.Stats.AvgLatency().String(),
				fmt.Sprintf("%.0f%%", 100*ctl.Stats.RowHitRate()),
			})
		}
	}
	return res
}
