package exper

import (
	"fmt"

	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/txline"
)

// OffsetDriftAblation quantifies how much uncalibrated comparator offset
// (aging, supply drift after factory calibration) the authentication margin
// tolerates. The enrolled fingerprint was taken with a fresh instrument;
// drift then biases every reconstructed bin through the nonlinear inverse
// CDF. A DC bias alone would vanish in the derivative comparison — the
// damage comes from the nonlinearity compressing different waveform regions
// differently.
func OffsetDriftAblation(seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child("offsetdrift")
	icfg := itdr.DefaultConfig()
	sigma := icfg.ComparatorNoise
	r := newRig("dut", icfg, txline.DefaultConfig(), stream)
	env := txline.RoomTemperature()
	enroll := 8
	if mode == Quick {
		enroll = 6
	}
	r.enroll(env, enroll)

	res := Result{
		ID:    "offsetdrift",
		Title: "uncalibrated comparator-offset drift tolerance",
		PaperClaim: "(design choice) APC assumes a calibrated comparator; aging " +
			"drift biases the inverse map and eats the authentication margin",
		Headers: []string{"drift (σ units)", "drift (µV)", "genuine similarity"},
	}
	injected := 0.0
	for _, driftSigma := range []float64{0, 0.5, 1, 2, 4, 8, 12, 16} {
		target := driftSigma * sigma
		r.refl.InjectOffsetDrift(target - injected)
		injected = target
		s := fingerprint.Similarity(r.measure(env), r.ref)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.2f", driftSigma),
			fmt.Sprintf("%.0f", target*1e6),
			fmt.Sprintf("%.4f", s),
		})
	}
	res.Notes = append(res.Notes,
		"PDM makes APC remarkably drift-tolerant: a DC offset shifts the whole "+
			"composite CDF, and within the Vernier sweep's span the inverse map "+
			"just rides the shifted curve. Matching degrades only once the offset "+
			"pushes the signal toward the sweep's edge (~the modulator amplitude), "+
			"where one-sided clamping distorts the waveform shape")
	return res
}
