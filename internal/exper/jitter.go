package exper

import (
	"fmt"

	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/txline"
)

// JitterAblation sweeps the PLL's phase-shift jitter: ETS buys its 89.6 GHz
// equivalent rate from the PLL's fine phase control, so the time base is
// only as good as the PLL. Jitter converts the waveform's local slew rate
// into amplitude noise; once the jitter approaches the 11.16 ps step, the
// equivalent-time grid smears and the fingerprint blurs.
func JitterAblation(seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child("jitter")
	lcfg := txline.DefaultConfig()
	env := txline.RoomTemperature()
	res := Result{
		ID:    "jitter",
		Title: "ETS time-base (PLL phase jitter) ablation",
		PaperClaim: "(design choice) the 11.16 ps phase step assumes a stable " +
			"PLL; the Ultrascale+ MMCM's ps-class jitter must not erase the gain",
		Headers: []string{"jitter RMS", "vs phase step", "genuine similarity"},
	}
	enroll := 8
	if mode == Quick {
		enroll = 6
	}
	reps := presentations(mode)
	for _, jit := range []float64{0, 1e-12, 2e-12, 5e-12, 11e-12, 25e-12, 60e-12} {
		icfg := itdr.DefaultConfig()
		icfg.PhaseJitterRMS = jit
		// Same rig identity for every row: stream children derive from
		// labels, not consumption, so each row gets the *identical* line and
		// instrument noise and differs only in the jitter magnitude — a
		// paired ablation rather than seven different devices.
		r := newRig("dut", icfg, lcfg, stream)
		r.enroll(env, enroll)
		s := r.meanSimilarity(env, reps)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f ps", jit*1e12),
			fmt.Sprintf("%.1fx", jit/icfg.PhaseStepSec),
			fmt.Sprintf("%.4f", s),
		})
	}
	res.Notes = append(res.Notes,
		"jitter well below the probe rise time (~120 ps) barely matters — the "+
			"band-limited waveform has little energy at the jitter's timescale; "+
			"the default 2 ps MMCM-class jitter is essentially free")
	return res
}
