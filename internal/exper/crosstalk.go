package exper

import (
	"fmt"

	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// CrosstalkAblation probes the boundary of the paper's EMI argument: the
// synchronized measurement removes *asynchronous* interference, but a
// neighbouring lane of the same bus runs on the same clock, so its coupling
// lands at the same point of every probe cycle and does not average out.
// The consequence is operational, not fatal: if the neighbour's activity
// state differs between calibration and monitoring, the stable coupling
// bump looks exactly like a tamper signature (a phantom probe); calibrating
// under representative neighbour activity removes the artifact entirely.
func CrosstalkAblation(seed uint64, mode Mode) Result {
	stream := rng.New(seed).Child("crosstalk")
	icfg := itdr.DefaultConfig()
	lcfg := txline.DefaultConfig()
	quiet := txline.RoomTemperature()
	// 1.5 mV of coupling landing 1.5 ns into the window.
	noisy := txline.Crosstalk(1.5e-3, 1.5e-9)
	enroll := 8
	if mode == Quick {
		enroll = 6
	}

	res := Result{
		ID:    "crosstalk",
		Title: "synchronized neighbour-lane crosstalk (EMI-argument boundary)",
		PaperClaim: "§IV-C: asynchronized EMI noises are removed by synchronized " +
			"measurement — which implies same-clock coupling is NOT; it must be " +
			"absorbed at calibration instead",
		Headers: []string{"calibrated under", "monitored under", "genuine similarity", "phantom tamper peak / floor"},
	}

	var errBuf *signal.Waveform
	row := func(calEnv, monEnv txline.Environment, calName, monName string) {
		r := newRig("dut-"+calName+"-"+monName, icfg, lcfg, stream)
		r.enroll(calEnv, enroll)
		var floor float64
		for i := 0; i < 4; i++ {
			errBuf = fingerprint.ErrorFunctionInto(errBuf, r.measure(calEnv), r.ref)
			if v, _, _ := fingerprint.PeakError(errBuf); v > floor {
				floor = v
			}
		}
		m := r.measure(monEnv)
		s := fingerprint.Similarity(m, r.ref)
		errBuf = fingerprint.ErrorFunctionInto(errBuf, m, r.ref)
		peak, _, _ := fingerprint.PeakError(errBuf)
		res.Rows = append(res.Rows, []string{
			calName, monName,
			fmt.Sprintf("%.4f", s),
			fmt.Sprintf("%.1fx", peak/floor),
		})
	}
	row(quiet, quiet, "quiet neighbour", "quiet neighbour")
	row(quiet, noisy, "quiet neighbour", "active neighbour")
	row(noisy, noisy, "active neighbour", "active neighbour")
	res.Notes = append(res.Notes,
		"a neighbour that wakes up after calibration produces a phantom tamper "+
			"bump at the coupled region; calibrating with the neighbour active "+
			"(or scrambling its lane so coupling is data-random) removes it")
	return res
}
