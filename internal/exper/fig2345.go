package exper

import (
	"fmt"
	"math"

	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/stats"
)

// Fig2APCTransfer reproduces Fig. 2: the one-to-one mapping between analog
// voltage and ones-probability through the comparator's Gaussian noise, and
// the ±2σ usable region. It sweeps V_sig across ±4σ, estimates p{Y=1} by
// Monte-Carlo trials, reconstructs the voltage through the inverse CDF, and
// reports the reconstruction error inside and outside the linear region.
func Fig2APCTransfer(seed uint64, mode Mode) Result {
	sigma := 1e-3
	apc := itdr.APC{NoiseSigma: sigma}
	refs := []float64{0}
	trials := 20000
	if mode == Quick {
		trials = 4000
	}
	noise := rng.New(seed).Child("fig2")
	g := stats.NewGaussian(0, sigma)

	res := Result{
		ID:    "fig2",
		Title: "APC transfer: probability vs voltage (single reference)",
		PaperClaim: "p{Y=1} follows the Gaussian noise CDF; high sensitivity and " +
			"linearity within ±2σ",
		Headers: []string{"Vsig/σ", "p̂{Y=1}", "CDF(V)", "V̂/σ (reconstructed)", "|err|/σ"},
	}
	var maxErrIn, maxErrOut float64
	for _, z := range []float64{-4, -3, -2, -1.5, -1, -0.5, 0, 0.5, 1, 1.5, 2, 3, 4} {
		v := z * sigma
		ones := 0
		for i := 0; i < trials; i++ {
			if v+noise.Gaussian(0, sigma) > 0 {
				ones++
			}
		}
		p := float64(ones) / float64(trials)
		vhat := apc.EstimateVoltage(p, trials, refs)
		errSigma := math.Abs(vhat-v) / sigma
		if math.Abs(z) <= 2 {
			maxErrIn = math.Max(maxErrIn, errSigma)
		} else {
			maxErrOut = math.Max(maxErrOut, errSigma)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%+.1f", z),
			fmt.Sprintf("%.4f", p),
			fmt.Sprintf("%.4f", g.CDF(v)),
			fmt.Sprintf("%+.3f", vhat/sigma),
			fmt.Sprintf("%.3f", errSigma),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("max reconstruction error: %.3fσ inside ±2σ vs %.3fσ outside — "+
			"the linear region is where APC is usable", maxErrIn, maxErrOut))
	return res
}

// Fig3PDMVernier reproduces Fig. 3: with f_m/f_s coprime, a fixed time point
// in the probe cycle sees Den distinct, equally spaced reference phases over
// Den consecutive probes; with f_m = f_s the sweep collapses.
func Fig3PDMVernier(uint64, Mode) Result {
	res := Result{
		ID:    "fig3",
		Title: "PDM Vernier reference sweep at a fixed probe-cycle offset",
		PaperClaim: "5f_m = 6f_s creates 5 discrete reference voltages over 5 " +
			"waveform periods; f_m = f_s would remove PDM's effectiveness",
		Headers: []string{"ratio f_m/f_s", "coprime", "distinct levels", "phase set (fractions of T_m)"},
	}
	for _, c := range []struct{ num, den int }{{6, 5}, {26, 25}, {5, 5}, {4, 6}} {
		cfg := itdr.DefaultConfig()
		cfg.ModFreqRatioNum, cfg.ModFreqRatioDen = c.num, c.den
		phases := itdr.VernierPhases(cfg, 0.5e-9, c.den)
		distinct := map[string]bool{}
		for _, p := range phases {
			distinct[fmt.Sprintf("%.3f", p)] = true
		}
		set := ""
		if c.den <= 6 {
			for _, p := range phases {
				set += fmt.Sprintf("%.3f ", p)
			}
		} else {
			set = fmt.Sprintf("(%d equally spaced)", len(distinct))
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d/%d", c.num, c.den),
			fmt.Sprintf("%v", itdr.Coprime(c.num, c.den)),
			fmt.Sprintf("%d", len(distinct)),
			set,
		})
	}
	return res
}

// Fig4PDMLinearRange reproduces Fig. 4: the composite PDF/CDF of multiple
// Vernier reference levels widens the linear (usable) voltage region
// relative to a single reference.
func Fig4PDMLinearRange(uint64, Mode) Result {
	sigma := 1e-3
	apc := itdr.APC{NoiseSigma: sigma}
	res := Result{
		ID:    "fig4",
		Title: "APC linear-region width: single reference vs PDM composite",
		PaperClaim: "PDM effectively increases the linear region, leading to a " +
			"much-widened measurement dynamic range",
		Headers: []string{"reference set", "levels", "linear region (mV)", "gain vs single"},
	}
	mkRefs := func(n int, span float64) []float64 {
		if n == 1 {
			return []float64{0}
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = -span/2 + span*float64(i)/float64(n-1)
		}
		return out
	}
	single := apc.LinearRegion(mkRefs(1, 0), 0.25, sigma/20)
	for _, c := range []struct {
		n    int
		span float64
		name string
	}{
		{1, 0, "single V_ref"},
		{3, 4e-3, "3 levels over 4 mV"},
		{5, 6e-3, "5 levels over 6 mV (Fig. 4)"},
		{25, 9e-3, "25 levels over 9 mV (default iTDR)"},
	} {
		w := apc.LinearRegion(mkRefs(c.n, c.span), 0.25, sigma/20)
		res.Rows = append(res.Rows, []string{
			c.name, fmt.Sprintf("%d", c.n),
			fmt.Sprintf("%.2f", w*1e3),
			fmt.Sprintf("%.1fx", w/single),
		})
	}
	return res
}

// Fig5ETS reproduces Fig. 5 and §II-D's numbers: the equivalent sampling
// rate M/ΔT achieved by phase stepping, and the resulting spatial
// resolution.
func Fig5ETS(uint64, Mode) Result {
	cfg := itdr.DefaultConfig()
	res := Result{
		ID:    "fig5",
		Title: "Equivalent time sampling: real-time vs equivalent rate",
		PaperClaim: "11.16 ps phase steps give >80 GHz equivalent rate; at " +
			"15 cm/ns that is ~0.837 mm spatial resolution",
		Headers: []string{"quantity", "value"},
	}
	period := 1 / cfg.SampleClockHz
	m := int(period / cfg.PhaseStepSec)
	res.Rows = [][]string{
		{"real-time sample clock f_s", fmt.Sprintf("%.2f MHz", cfg.SampleClockHz/1e6)},
		{"clock period ΔT", fmt.Sprintf("%.2f ns", period*1e9)},
		{"phase step τ", fmt.Sprintf("%.2f ps", cfg.PhaseStepSec*1e12)},
		{"phase steps per period M = ΔT/τ", fmt.Sprintf("%d", m)},
		{"equivalent rate 1/τ", fmt.Sprintf("%.1f GHz", cfg.EquivalentRate()/1e9)},
		{"spatial resolution v·τ/2 @ 15 cm/ns", fmt.Sprintf("%.3f mm", cfg.SpatialResolution(1.5e8)*1e3)},
		{"bins over the 3.83 ns window", fmt.Sprintf("%d", cfg.Bins())},
	}
	if cfg.EquivalentRate() < 80e9 {
		res.Notes = append(res.Notes, "equivalent rate fell below the paper's 80 GHz")
	}
	return res
}
