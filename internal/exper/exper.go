// Package exper regenerates every table and figure of the paper's
// evaluation (§IV) plus the ablations DESIGN.md calls out. Each experiment
// is a pure function from a seed and a mode to a Result whose rows print the
// same quantities the paper reports; cmd/divotbench and the root bench suite
// both drive these generators.
package exper

import (
	"fmt"
	"sort"
	"strings"

	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/pool"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// Parallelism bounds the worker goroutines the fleet operations below
// (construction, enrollment, scoring) fan rigs across, and is threaded into
// every rig's iTDR so ETS bins fan out too. 0 (the default) selects
// runtime.GOMAXPROCS(0); 1 reproduces the fully sequential path. Experiment
// results are bit-identical at every setting — each rig and each bin derives
// its randomness from its own labelled stream child — so this knob trades
// wall-clock only, never output.
var Parallelism int

// Mode trades runtime for statistical depth.
type Mode int

const (
	// Quick runs in seconds; suitable for benches and CI.
	Quick Mode = iota
	// Full approaches the paper's sample sizes; takes tens of seconds per
	// experiment.
	Full
)

// String names the mode.
func (m Mode) String() string {
	if m == Full {
		return "full"
	}
	return "quick"
}

// Result is one regenerated artifact.
type Result struct {
	// ID is the experiment identity from DESIGN.md's index (e.g. "fig7b").
	ID string
	// Title describes the artifact.
	Title string
	// PaperClaim is what the paper reports for this artifact.
	PaperClaim string
	// Headers and Rows form the reproduced table/series.
	Headers []string
	Rows    [][]string
	// Notes carries caveats (substitutions, scale differences).
	Notes []string
}

// String renders the result as an aligned text table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(r.Headers)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// rig is one line with its own iTDR and pipeline — a device under test.
type rig struct {
	line *txline.Line
	refl *itdr.Reflectometer
	pipe fingerprint.Pipeline
	ref  fingerprint.IIP
}

// newRig manufactures a line and instrument from the stream.
func newRig(id string, icfg itdr.Config, lcfg txline.Config, stream *rng.Stream) *rig {
	sub := stream.Child("rig-" + id)
	return &rig{
		line: txline.New(id, lcfg, sub.Child("line")),
		refl: itdr.MustNew(icfg, txline.DefaultProbe(), nil, sub.Child("itdr")),
		pipe: fingerprint.DefaultPipeline(),
	}
}

// measure acquires one processed fingerprint.
func (r *rig) measure(env txline.Environment) fingerprint.IIP {
	return r.pipe.FromWaveform(r.refl.Measure(r.line, env).IIP)
}

// meanSimilarity scores k fresh presentations against the enrolled reference
// and returns the mean similarity. A single-shot score carries a couple of
// percent of counting noise at the default trial budget, enough to scramble
// the ordering of nearby table rows; averaging k presentations shrinks it by
// √k so row differences reflect the swept variable, not measurement luck.
func (r *rig) meanSimilarity(env txline.Environment, k int) float64 {
	var s float64
	for i := 0; i < k; i++ {
		s += fingerprint.Similarity(r.measure(env), r.ref)
	}
	return s / float64(k)
}

// presentations returns the per-row measurement count the ablation tables
// average over.
func presentations(mode Mode) int {
	if mode == Full {
		return 8
	}
	return 4
}

// enroll stores the averaged reference fingerprint.
func (r *rig) enroll(env txline.Environment, n int) {
	ws := make([]*signal.Waveform, n)
	for i := range ws {
		ws[i] = r.refl.Measure(r.line, env).IIP
	}
	f, err := r.pipe.Average(ws)
	if err != nil {
		panic(err) // n > 0 by construction
	}
	r.ref = f
}

// fleet builds the paper's six devices under test. Rig identity derives only
// from the stream and the rig's label (never from construction order), so the
// rigs are manufactured concurrently across Parallelism workers.
func fleet(icfg itdr.Config, lcfg txline.Config, stream *rng.Stream, n int) []*rig {
	if icfg.Parallelism == 0 {
		icfg.Parallelism = Parallelism
	}
	rigs := make([]*rig, n)
	pool.Run(n, pool.Workers(Parallelism), func(_, i int) {
		rigs[i] = newRig(fmt.Sprintf("tx%d", i), icfg, lcfg, stream)
	})
	return rigs
}

// enrollFleet enrolls every rig, fanning rigs across Parallelism workers.
// Each rig consumes only its own instrument streams, so the enrolled
// references are identical to enrolling sequentially.
func enrollFleet(rigs []*rig, env txline.Environment, n int) {
	pool.Run(len(rigs), pool.Workers(Parallelism), func(_, i int) {
		rigs[i].enroll(env, n)
	})
}

// scores collects genuine and impostor similarity scores: every rig is
// measured `per` times under env, and each measurement is scored against
// every rig's enrolled reference. Rigs fan out across Parallelism workers —
// a rig's measurements must stay ordered (its instrument streams advance per
// measurement), so the rig is the unit of concurrency; per-rig score slices
// are concatenated in rig order afterwards, reproducing the sequential
// output exactly.
func scores(rigs []*rig, env txline.Environment, per int) (genuine, impostor []float64) {
	gen := make([][]float64, len(rigs))
	imp := make([][]float64, len(rigs))
	pool.Run(len(rigs), pool.Workers(Parallelism), func(_, i int) {
		r := rigs[i]
		for k := 0; k < per; k++ {
			m := r.measure(env)
			for _, other := range rigs {
				s := fingerprint.Similarity(m, other.ref)
				if other == r {
					gen[i] = append(gen[i], s)
				} else {
					imp[i] = append(imp[i], s)
				}
			}
		}
	})
	for i := range rigs {
		genuine = append(genuine, gen[i]...)
		impostor = append(impostor, imp[i]...)
	}
	return genuine, impostor
}

// distSummary formats a score distribution.
func distSummary(xs []float64) string {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	return fmt.Sprintf("n=%d min=%.4f p5=%.4f median=%.4f p95=%.4f max=%.4f",
		n, s[0], s[n/20], s[n/2], s[n-1-n/20], s[n-1])
}

// fmtF formats a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.6g", v) }
