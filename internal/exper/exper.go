// Package exper regenerates every table and figure of the paper's
// evaluation (§IV) plus the ablations DESIGN.md calls out. Each experiment
// is a pure function from a seed and a mode to a Result whose rows print the
// same quantities the paper reports; cmd/divotbench and the root bench suite
// both drive these generators.
package exper

import (
	"fmt"
	"sort"
	"strings"

	"divot/internal/fingerprint"
	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// Mode trades runtime for statistical depth.
type Mode int

const (
	// Quick runs in seconds; suitable for benches and CI.
	Quick Mode = iota
	// Full approaches the paper's sample sizes; takes tens of seconds per
	// experiment.
	Full
)

// String names the mode.
func (m Mode) String() string {
	if m == Full {
		return "full"
	}
	return "quick"
}

// Result is one regenerated artifact.
type Result struct {
	// ID is the experiment identity from DESIGN.md's index (e.g. "fig7b").
	ID string
	// Title describes the artifact.
	Title string
	// PaperClaim is what the paper reports for this artifact.
	PaperClaim string
	// Headers and Rows form the reproduced table/series.
	Headers []string
	Rows    [][]string
	// Notes carries caveats (substitutions, scale differences).
	Notes []string
}

// String renders the result as an aligned text table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(r.Headers)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// rig is one line with its own iTDR and pipeline — a device under test.
type rig struct {
	line *txline.Line
	refl *itdr.Reflectometer
	pipe fingerprint.Pipeline
	ref  fingerprint.IIP
}

// newRig manufactures a line and instrument from the stream.
func newRig(id string, icfg itdr.Config, lcfg txline.Config, stream *rng.Stream) *rig {
	sub := stream.Child("rig-" + id)
	return &rig{
		line: txline.New(id, lcfg, sub.Child("line")),
		refl: itdr.MustNew(icfg, txline.DefaultProbe(), nil, sub.Child("itdr")),
		pipe: fingerprint.DefaultPipeline(),
	}
}

// measure acquires one processed fingerprint.
func (r *rig) measure(env txline.Environment) fingerprint.IIP {
	return r.pipe.FromWaveform(r.refl.Measure(r.line, env).IIP)
}

// enroll stores the averaged reference fingerprint.
func (r *rig) enroll(env txline.Environment, n int) {
	ws := make([]*signal.Waveform, n)
	for i := range ws {
		ws[i] = r.refl.Measure(r.line, env).IIP
	}
	f, err := r.pipe.Average(ws)
	if err != nil {
		panic(err) // n > 0 by construction
	}
	r.ref = f
}

// fleet builds the paper's six devices under test.
func fleet(icfg itdr.Config, lcfg txline.Config, stream *rng.Stream, n int) []*rig {
	rigs := make([]*rig, n)
	for i := range rigs {
		rigs[i] = newRig(fmt.Sprintf("tx%d", i), icfg, lcfg, stream)
	}
	return rigs
}

// scores collects genuine and impostor similarity scores: every rig is
// measured `per` times under env, and each measurement is scored against
// every rig's enrolled reference.
func scores(rigs []*rig, env txline.Environment, per int) (genuine, impostor []float64) {
	for _, r := range rigs {
		for k := 0; k < per; k++ {
			m := r.measure(env)
			for _, other := range rigs {
				s := fingerprint.Similarity(m, other.ref)
				if other == r {
					genuine = append(genuine, s)
				} else {
					impostor = append(impostor, s)
				}
			}
		}
	}
	return genuine, impostor
}

// distSummary formats a score distribution.
func distSummary(xs []float64) string {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	return fmt.Sprintf("n=%d min=%.4f p5=%.4f median=%.4f p95=%.4f max=%.4f",
		n, s[0], s[n/20], s[n/2], s[n-1-n/20], s[n-1])
}

// fmtF formats a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.6g", v) }
