package exper

import (
	"fmt"

	"divot/internal/itdr"
)

// SharingAblation quantifies the paper's multiplexing claim (§V: ">90% of
// the hardware in a DIVOT detector can be shared"): dedicated per-bus iTDRs
// give every bus a 54.9 µs alert latency at full silicon cost, while one
// time-shared datapath scanning buses round-robin costs almost nothing per
// bus but stretches the worst-case alert latency n-fold.
func SharingAblation(uint64, Mode) Result {
	cfg := itdr.DefaultConfig()
	per := cfg.MeasurementDuration()
	res := Result{
		ID:    "sharing",
		Title: "dedicated vs time-multiplexed iTDRs",
		PaperClaim: ">90% of detector hardware can be shared/multiplexed, scaling " +
			"cost-effectively to multiple buses in a complex SoC",
		Headers: []string{"buses", "dedicated regs/LUTs", "alert latency",
			"multiplexed regs/LUTs", "worst-case latency", "shared fraction"},
	}
	for _, n := range []int{1, 4, 16, 64} {
		ded := itdr.FleetUtilization(cfg, n)
		mux := itdr.MultiplexedUtilization(cfg, n)
		one := itdr.ResourceModel(cfg)
		sharedFrac := 1 - float64(mux.LUTs-itdr.MultiplexedUtilization(cfg, 0).LUTs)/
			float64(n*one.LUTs)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d / %d", ded.Registers, ded.LUTs),
			fmt.Sprintf("%.1f µs", per*1e6),
			fmt.Sprintf("%d / %d", mux.Registers, mux.LUTs),
			fmt.Sprintf("%.1f µs", float64(n)*per*1e6),
			fmt.Sprintf("%.0f%%", 100*sharedFrac),
		})
	}
	res.Notes = append(res.Notes,
		"even the 64-bus multiplexed scan alerts within 3.5 ms — far inside any "+
			"human tampering timescale — at 2.6% of the dedicated silicon")
	return res
}
