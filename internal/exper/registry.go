package exper

// Generator produces one experiment result.
type Generator func(seed uint64, mode Mode) Result

// Entry pairs an experiment ID with its generator.
type Entry struct {
	ID        string
	Generator Generator
}

// All lists every experiment in DESIGN.md's per-experiment index, in
// presentation order.
func All() []Entry {
	return []Entry{
		{"fig2", Fig2APCTransfer},
		{"fig3", Fig3PDMVernier},
		{"fig4", Fig4PDMLinearRange},
		{"fig5", Fig5ETS},
		{"fig6", Fig6MemoryBus},
		{"fig7a", Fig7aDistributions},
		{"fig7b", Fig7bROC},
		{"fig8", Fig8Temperature},
		{"vib", VibrationEER},
		{"emi", EMIEER},
		{"fig9bc", Fig9LoadMod},
		{"fig9ef", Fig9WireTap},
		{"fig9hi", Fig9MagProbe},
		{"util", UtilizationModel},
		{"latency", DetectionLatency},
		{"multiwire", MultiWireAblation},
		{"coprime", CoprimeAblation},
		{"trigger", TriggerAblation},
		{"trials", TrialsAblation},
		{"repr", RepresentationAblation},
		{"align", AlignmentExtension},
		{"clone", CloneResistance},
		{"mitm", InterposerDetection},
		{"secorder", SecondOrderAblation},
		{"offsetdrift", OffsetDriftAblation},
		{"jitter", JitterAblation},
		{"sharing", SharingAblation},
		{"crosstalk", CrosstalkAblation},
		{"faults", FaultSweep},
		{"adaptive", AdaptiveSweep},
		{"pagepolicy", PagePolicyAblation},
		{"baselines", Baselines},
	}
}

// Lookup returns the generator for an experiment ID.
func Lookup(id string) (Generator, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e.Generator, true
		}
	}
	return nil, false
}
