package exper

import (
	"fmt"

	"divot"
	"divot/internal/sim"
)

// Fig6MemoryBus reproduces the example design of Fig. 6 end to end: a
// DIVOT-protected memory controller and SDRAM module run traffic, then
// suffer a cold-boot module theft and a module swap; the gates react as §III
// prescribes.
func Fig6MemoryBus(seed uint64, mode Mode) Result {
	reqs := 64
	if mode == Full {
		reqs = 512
	}
	sys := divot.NewSystem(seed, divot.DefaultConfig())
	m, err := sys.NewMemorySystem("dimm0", divot.DefaultMemoryConfig())
	if err != nil {
		panic(err)
	}
	if err := m.Calibrate(); err != nil {
		panic(err)
	}

	res := Result{
		ID:    "fig6",
		Title: "memory-bus protection: calibrate → monitor → react",
		PaperClaim: "two-way runtime authentication; unauthorized accesses blocked; " +
			"column address gated by the authentication result",
		Headers: []string{"phase", "outcome"},
	}

	// Phase 1: normal traffic under continuous monitoring.
	burst := make([]byte, divot.DefaultMemoryConfig().Geometry.BurstBytes)
	stream := sys.Stream("traffic")
	for i := 0; i < reqs; i++ {
		addr := divot.MemAddress{Bank: stream.Intn(8), Row: stream.Intn(64), Col: stream.Intn(128)}
		if stream.Bool(0.5) {
			m.Write(addr, burst)
		} else {
			m.Read(addr)
		}
	}
	if err := m.Drain(reqs, 100*sim.Millisecond); err != nil {
		panic(err)
	}
	okCount := 0
	for _, r := range m.Responses() {
		if r.Status == divot.StatusOK {
			okCount++
		}
	}
	stats := m.Controller.Stats
	res.Rows = append(res.Rows,
		[]string{"normal operation", fmt.Sprintf(
			"%d/%d requests OK, avg latency %v, row hit rate %.0f%%, %d monitor rounds, 0 alerts=%v",
			okCount, reqs, stats.AvgLatency(), 100*stats.RowHitRate(),
			int(m.Sched.Now().Seconds()/m.Bus.MeasurementDuration()), len(m.Bus.Alerts) == 0)})

	// Phase 2: cold boot — the module is moved to an attacker's machine.
	m.ClearResponses()
	cb := divot.NewColdBootSwap(sys.Config().Line, sys.Stream("coldboot"))
	victim := m.Bus.Module.ObservedLine()
	m.Bus.Module.SetObservedLine(cb.BusSeenByModule())
	m.RunFor(sim.FromSeconds(3 * m.Bus.MeasurementDuration()))
	m.Read(divot.MemAddress{Bank: 0, Row: 0, Col: 0})
	blocked := "module gate CLOSED; read stalls/blocked"
	if m.Drain(1, 5*sim.Millisecond) == nil {
		r := m.Responses()[0]
		blocked = fmt.Sprintf("read returned %v", r.Status)
		if r.Status == divot.StatusOK {
			blocked = "FAILURE: attacker read succeeded"
			res.Notes = append(res.Notes, "cold-boot protection FAILED")
		}
	}
	res.Rows = append(res.Rows, []string{"cold-boot theft", fmt.Sprintf(
		"%s; module gate authorized=%v", blocked, m.Bus.Module.Gate.Authorized())})

	// Phase 3: module returned to the genuine bus — service resumes.
	m.ClearResponses()
	m.Bus.Module.SetObservedLine(victim)
	m.RunFor(sim.FromSeconds(3 * m.Bus.MeasurementDuration()))
	m.Read(divot.MemAddress{Bank: 0, Row: 0, Col: 0})
	recovered := "stalled"
	if m.Drain(1, 100*sim.Millisecond) == nil && m.Responses()[0].Status == divot.StatusOK {
		recovered = "read OK"
	}
	res.Rows = append(res.Rows, []string{"module restored", fmt.Sprintf(
		"%s; gates authorized cpu=%v module=%v", recovered,
		m.Bus.CPU.Gate.Authorized(), m.Bus.Module.Gate.Authorized())})

	// Phase 4: wire tap during live traffic — alert raised, traffic keeps
	// flowing (monitoring is concurrent and non-disruptive).
	m.ClearResponses()
	tap := divot.NewMagneticProbe(0.12)
	tap.Apply(m.Bus.Line)
	before := len(m.Bus.Alerts)
	for i := 0; i < 16; i++ {
		m.Read(divot.MemAddress{Bank: i % 8, Row: i, Col: i})
	}
	m.RunFor(sim.FromSeconds(4 * m.Bus.MeasurementDuration()))
	drainErr := m.Drain(16, 100*sim.Millisecond)
	res.Rows = append(res.Rows, []string{"probing during traffic", fmt.Sprintf(
		"alerts raised=%d, traffic uninterrupted=%v",
		len(m.Bus.Alerts)-before, drainErr == nil)})

	m.StopMonitor()
	return res
}
