package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"divot"
)

// Spec is the fleet specification divotd loads at startup: which buses to
// protect, how often to monitor each, where to listen, and (for experiments
// and smoke tests) scripted attacks mounted after a fixed round count.
type Spec struct {
	// Seed roots the fleet's random universe; runs with the same spec are
	// reproducible.
	Seed uint64 `json:"seed"`
	// Parallelism is the engine's worker bound (divot.Config.Engine
	// .Parallelism): 0 = one worker per CPU, 1 = sequential.
	Parallelism int `json:"parallelism"`
	// CalibParallelism bounds the workers used for cold enrollment only: the
	// budget splits two-level, across links first and leftover workers into
	// each link's intra-link measurement fan-out, so both a wide fleet and a
	// single slow link saturate the same cores. Enrollment results are
	// bit-identical at every worker count (the snapshot hash does not depend
	// on it). 0 (the default) inherits Parallelism — which itself defaults
	// to one worker per CPU; 1 = fully sequential calibration.
	CalibParallelism int `json:"calib_parallelism"`
	// Listen is the HTTP API address; default "127.0.0.1:9720".
	Listen string `json:"listen"`
	// IntervalMS is the default monitoring period per bus in milliseconds;
	// default 100.
	IntervalMS int `json:"interval_ms"`
	// JitterFrac spreads each bus's period by ±frac (0..0.9) so a fleet's
	// rounds do not thundering-herd; default 0.
	JitterFrac float64 `json:"jitter_frac"`
	// SchedulerShards bounds the scheduler goroutines: the fleet is dealt
	// round-robin onto this many shards, each driving its buses off a
	// min-heap of due times. 0 = one shard per CPU; shards never exceed
	// the bus count.
	SchedulerShards int `json:"scheduler_shards"`
	// MaxStalenessMS lets POST /v1/attest and GET /v1/health answer from
	// each bus's cached last-round attestation view when it is younger
	// than this bound, instead of taking the bus lock and re-measuring.
	// 0 (the default) disables the cache: every request re-measures,
	// exactly the pre-cache semantics.
	MaxStalenessMS int `json:"max_staleness_ms"`
	// AuditLog is the JSONL audit file path; empty disables the flat-file
	// audit log (with a StateDir the audit trail still goes to the state
	// directory's segmented log).
	AuditLog string `json:"audit_log"`
	// StateDir, when non-empty, makes the daemon's state crash-safe: per-bus
	// enrollment snapshots, the score-history WAL, and a segmented audit log
	// live under this directory, and a restarted daemon warm-restores the
	// fleet from them — zero calibration rounds — instead of re-enrolling.
	// Snapshots are bound to the seed+configuration that produced them; a
	// spec change falls back to cold calibration per bus. Empty keeps the
	// daemon fully in-memory. Overridable with divotd -state-dir.
	StateDir string `json:"state_dir"`
	// AuthThreshold, when positive, overrides the engine's similarity
	// acceptance threshold (divot.Config.Engine.AuthThreshold, default
	// 0.70). This is the operating point `divotlab tune` records after
	// picking a threshold for a target false-positive rate on the
	// experiment grid; it participates in the durable-state spec hash, so
	// changing it recalibrates cold. 0 keeps the engine default.
	AuthThreshold float64 `json:"auth_threshold"`
	// FederationID labels this daemon as a member of a divotherd federation.
	// It is surfaced in /healthz and /v1/health so an aggregator (and its
	// operators) can tell at a glance which fleet a daemon believes it
	// belongs to; divotherd refuses to enroll a daemon whose federation id
	// disagrees with its own. Empty means "not federated" and matches any
	// aggregator. Overridable with divotd -federation-id.
	FederationID string `json:"federation_id"`
	// Buses are the protected links.
	Buses []BusSpec `json:"buses"`
}

// BusSpec describes one protected bus.
type BusSpec struct {
	// ID names the bus; unique within the fleet.
	ID string `json:"id"`
	// IntervalMS overrides the fleet monitoring period for this bus.
	IntervalMS int `json:"interval_ms"`
	// Attack, when non-nil, scripts a physical attack against this bus.
	Attack *AttackSpec `json:"attack"`
}

// AttackSpec scripts a physical attack mounted during the run.
type AttackSpec struct {
	// Kind selects the attack model: "interposer", "wiretap", "probe",
	// "module-swap", or "adaptive-tap" (a tap whose loading drifts slowly
	// between rounds, trying to hide inside the re-enrollment window; the
	// scheduler advances it one step per monitoring round).
	Kind string `json:"kind"`
	// AfterRounds mounts the attack once the bus has completed this many
	// monitoring rounds.
	AfterRounds uint64 `json:"after_rounds"`
	// Position is the attack location in meters from the CPU end (ignored
	// by module-swap).
	Position float64 `json:"position"`
}

// attackKinds are the accepted AttackSpec.Kind values.
var attackKinds = map[string]bool{
	"interposer":   true,
	"wiretap":      true,
	"probe":        true,
	"module-swap":  true,
	"adaptive-tap": true,
}

// LoadSpec reads and validates a fleet spec file.
func LoadSpec(path string) (Spec, error) {
	var spec Spec
	if path == "" {
		return spec, fmt.Errorf("no fleet spec given (use -spec <file>)")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return spec, fmt.Errorf("reading fleet spec: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("parsing fleet spec %s: %w", path, err)
	}
	spec.applyDefaults()
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("fleet spec %s: %w", path, err)
	}
	return spec, nil
}

// applyDefaults fills the optional top-level fields.
func (s *Spec) applyDefaults() {
	if s.Listen == "" {
		s.Listen = "127.0.0.1:9720"
	}
	if s.IntervalMS == 0 {
		s.IntervalMS = 100
	}
}

// Validate rejects specs divotd cannot run.
func (s *Spec) Validate() error {
	if len(s.Buses) == 0 {
		return fmt.Errorf("no buses defined — a fleet needs at least one bus entry")
	}
	if s.IntervalMS < 0 {
		return fmt.Errorf("interval_ms must be positive, got %d", s.IntervalMS)
	}
	if s.JitterFrac < 0 || s.JitterFrac > 0.9 {
		return fmt.Errorf("jitter_frac must be in [0, 0.9], got %g", s.JitterFrac)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("parallelism must be >= 0, got %d", s.Parallelism)
	}
	if s.CalibParallelism < 0 {
		return fmt.Errorf("calib_parallelism must be >= 0, got %d", s.CalibParallelism)
	}
	if s.SchedulerShards < 0 {
		return fmt.Errorf("scheduler_shards must be >= 0, got %d", s.SchedulerShards)
	}
	if s.MaxStalenessMS < 0 {
		return fmt.Errorf("max_staleness_ms must be >= 0, got %d", s.MaxStalenessMS)
	}
	if s.AuthThreshold < 0 || s.AuthThreshold >= 1 {
		return fmt.Errorf("auth_threshold must be in [0, 1), got %g", s.AuthThreshold)
	}
	seen := make(map[string]bool, len(s.Buses))
	for i, b := range s.Buses {
		if b.ID == "" {
			return fmt.Errorf("bus %d has no id", i)
		}
		if seen[b.ID] {
			return fmt.Errorf("duplicate bus id %q", b.ID)
		}
		seen[b.ID] = true
		if b.IntervalMS < 0 {
			return fmt.Errorf("bus %q: interval_ms must be positive, got %d", b.ID, b.IntervalMS)
		}
		if a := b.Attack; a != nil {
			if !attackKinds[a.Kind] {
				return fmt.Errorf("bus %q: unknown attack kind %q (want interposer, wiretap, probe, module-swap, or adaptive-tap)", b.ID, a.Kind)
			}
			if a.Position < 0 {
				return fmt.Errorf("bus %q: attack position must be >= 0, got %g", b.ID, a.Position)
			}
		}
	}
	return nil
}

// interval returns the effective monitoring period for a bus in milliseconds.
func (s *Spec) interval(b BusSpec) int {
	if b.IntervalMS > 0 {
		return b.IntervalMS
	}
	return s.IntervalMS
}

// buildAttack constructs the scripted attack for a bus (nil when none).
func buildAttack(sys *divot.System, id string, a *AttackSpec) divot.Attack {
	if a == nil {
		return nil
	}
	switch a.Kind {
	case "interposer":
		return divot.NewInterposer(a.Position)
	case "wiretap":
		return divot.NewWireTap(a.Position)
	case "probe":
		return divot.NewMagneticProbe(a.Position)
	case "module-swap":
		return divot.NewModuleSwap(sys.Config().Line, sys.Stream("attack-"+id))
	case "adaptive-tap":
		return divot.NewAdaptiveTap(a.Position)
	}
	return nil
}
