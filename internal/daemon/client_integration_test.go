package daemon

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"divot/client"
	"divot/internal/wire"
)

// flakyFront is a fault-injecting front for the daemon's handler: every
// second unary request is severed without an answer, and the first event
// stream — binary or SSE, whichever the client negotiates — is cut after two
// event frames. The SDK behind it must see exactly the same fleet state a
// direct client would.
type flakyFront struct {
	inner http.Handler

	mu          sync.Mutex
	unary       int
	streamsCut  int
	unaryKilled int
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/events") || r.URL.Path == "/v1/stream" {
		f.mu.Lock()
		cut := f.streamsCut == 0
		if cut {
			f.streamsCut++
		}
		f.mu.Unlock()
		if cut {
			if r.URL.Path == "/v1/stream" {
				w = &binaryCuttingWriter{ResponseWriter: w, eventsLeft: 2}
			} else {
				w = &cuttingWriter{ResponseWriter: w, framesLeft: 2}
			}
		}
		f.inner.ServeHTTP(w, r)
		return
	}
	f.mu.Lock()
	n := f.unary
	f.unary++
	if n%2 == 0 {
		f.unaryKilled++
	}
	f.mu.Unlock()
	if n%2 == 0 {
		panic(http.ErrAbortHandler) // connection severed before any answer
	}
	f.inner.ServeHTTP(w, r)
}

// cuttingWriter lets framesLeft SSE frames through, then severs the
// connection mid-stream.
type cuttingWriter struct {
	http.ResponseWriter
	framesLeft int
}

func (c *cuttingWriter) Write(p []byte) (int, error) {
	if bytes.HasPrefix(p, []byte("id: ")) {
		if c.framesLeft == 0 {
			panic(http.ErrAbortHandler)
		}
		c.framesLeft--
	}
	return c.ResponseWriter.Write(p)
}

func (c *cuttingWriter) Flush() {
	if fl, ok := c.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// binaryCuttingWriter is the wire-frame analogue: it lets eventsLeft event
// frames through (hello/heartbeat/control frames pass freely), then severs
// the connection before the next event-bearing write.
type binaryCuttingWriter struct {
	http.ResponseWriter
	eventsLeft int
}

func (c *binaryCuttingWriter) Write(p []byte) (int, error) {
	for buf := p; len(buf) > 0; {
		typ, _, n, err := wire.DecodeFrame(buf)
		if err != nil {
			break // partial frame in this write; let it pass
		}
		if typ == wire.FrameEvent {
			if c.eventsLeft == 0 {
				panic(http.ErrAbortHandler)
			}
			c.eventsLeft--
		}
		buf = buf[n:]
	}
	return c.ResponseWriter.Write(p)
}

func (c *binaryCuttingWriter) Flush() {
	if fl, ok := c.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// TestClientSurvivesFlakyTransport is the end-to-end acceptance test for the
// remote attestation path: a real daemon with a scripted interposer on one
// bus, fronted by a proxy that drops every second unary request and cuts the
// first event stream mid-flight. The SDK must (a) answer unary calls
// correctly through retries, (b) deliver the bus's event feed exactly once
// and in order across the forced resume, and (c) report the interposer
// verdict — attack detection must survive an unreliable network.
func TestClientSurvivesFlakyTransport(t *testing.T) {
	d := newTestDaemon(t, `{
		"seed": 33, "listen": "127.0.0.1:0",
		"buses": [
			{"id": "clean0"},
			{"id": "victim", "attack": {"kind": "interposer", "after_rounds": 0, "position": 0.1}}
		]
	}`)
	for i := 0; i < 4; i++ { // mount the attack and let it be confirmed
		d.monitorOnce(d.byID["victim"])
		d.monitorOnce(d.byID["clean0"])
	}
	front := &flakyFront{inner: d.Handler()}
	srv := httptest.NewServer(front)
	defer srv.Close()

	c, err := client.New(srv.URL,
		client.WithTimeout(5*time.Second),
		client.WithRetryPolicy(client.RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
			Jitter:      0.5,
			Budget:      5 * time.Second,
		}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Unary through drops: every first try dies on the wire.
	links, err := c.Links(ctx)
	if err != nil {
		t.Fatalf("Links through flaky front: %v", err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %+v, want 2 buses", links)
	}

	// The event feed: replayed from the ring, cut after two frames by the
	// front, resumed by the watch. Exactly-once, in order.
	w, err := c.Watch(ctx, "victim", client.WatchOptions{})
	if err != nil {
		t.Fatalf("Watch through flaky front: %v", err)
	}
	defer w.Close()
	retained := d.byID["victim"].snapshotAlerts()
	if len(retained) < 3 {
		t.Fatalf("test premise broken: victim retained only %d events", len(retained))
	}
	var got []client.Event
	deadline := time.After(20 * time.Second)
	for len(got) < len(retained) {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("stream ended early after %d/%d events: %v", len(got), len(retained), w.Err())
			}
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("timed out at %d/%d events", len(got), len(retained))
		}
	}
	sawAlert := false
	for i, ev := range got {
		if ev.Seq != retained[i].Seq || ev.Kind != retained[i].Kind {
			t.Errorf("event %d = seq %d kind %s, want seq %d kind %s (dupes or gaps across resume)",
				i, ev.Seq, ev.Kind, retained[i].Seq, retained[i].Kind)
		}
		if ev.Kind == "alert" {
			sawAlert = true
		}
	}
	if !sawAlert {
		t.Error("no alert event arrived over the remote feed")
	}
	front.mu.Lock()
	if front.streamsCut != 1 {
		t.Errorf("fault injection never cut the stream (streamsCut=%d)", front.streamsCut)
	}
	front.mu.Unlock()

	// The verdict: batch attest through the same flaky front.
	res, err := c.Attest(ctx)
	if err != nil {
		t.Fatalf("Attest through flaky front: %v", err)
	}
	if res.AllAccepted {
		t.Error("fleet with interposed bus reported all_accepted over the remote client")
	}
	byID := map[string]client.AuthReport{}
	for _, rep := range res.Results {
		byID[rep.ID] = rep
	}
	if rep := byID["victim"]; rep.Accepted {
		t.Errorf("interposed bus accepted remotely: %+v", rep)
	}
	if rep := byID["clean0"]; !rep.Accepted {
		t.Errorf("clean bus rejected remotely: %+v", rep)
	}

	front.mu.Lock()
	killed := front.unaryKilled
	front.mu.Unlock()
	if killed == 0 {
		t.Error("fault injection never killed a unary request")
	}
}
