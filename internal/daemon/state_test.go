package daemon

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"divot"
	"divot/internal/attest"
	"divot/internal/store"
)

// stateSpec is a small fleet for durability tests.
func stateSpec(n int) Spec {
	spec := benchSpec(n, 0)
	return spec
}

// stateConfig is a fast engine whose monitoring rounds stay clean — unlike
// lightConfig, whose 5-trial bins are too coarse to keep authenticating
// (fine for benchmarks, fatal for tests that assert "ok" verdicts).
func stateConfig() divot.Config {
	cfg := lightConfig()
	cfg.Engine.ITDR.TrialsPerBin = 40
	return cfg
}

// driveRounds runs k monitoring rounds on every bus.
func driveRounds(d *Daemon, k int) {
	for i := 0; i < k; i++ {
		for _, ls := range d.links {
			d.monitorOnce(ls)
		}
	}
}

// TestWarmRestart is the crash-safety contract end to end: a daemon dies
// without any graceful shutdown (SIGKILL semantics — the backend is simply
// abandoned mid-flight), a second daemon boots from the same state, and the
// fleet is back in milliseconds: every bus restored, zero calibration rounds,
// history continuous, verdicts flowing.
func TestWarmRestart(t *testing.T) {
	backend := store.NewMemory()
	spec := stateSpec(3)

	d1, err := NewWithStore(spec, stateConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	if got := d1.warmN.Load(); got != 0 {
		t.Fatalf("first boot restored %d buses from an empty store", got)
	}
	driveRounds(d1, 5)
	// A real daemon persists on every state-changing round and at graceful
	// shutdown; stand in for "the last persisted round" explicitly, then
	// abandon d1 — no Close, no flush. That is the kill -9.
	d1.persistFleet()
	wantHealth := make(map[string]attest.LinkSummary)
	for _, ls := range d1.links {
		wantHealth[ls.id] = d1.view(ls)
	}

	d2, err := NewWithStore(spec, stateConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.warmN.Load(); got != 3 {
		t.Fatalf("warm restart restored %d/3 buses", got)
	}
	if !d2.ready.Load() {
		t.Fatal("restored daemon not ready")
	}
	for _, ls := range d2.links {
		got := d2.view(ls)
		want := wantHealth[ls.id]
		if got.Rounds != want.Rounds {
			t.Errorf("bus %s: rounds %d after restart, want %d (continuity lost)", ls.id, got.Rounds, want.Rounds)
		}
		if got.Health != want.Health || got.Reaction != want.Reaction {
			t.Errorf("bus %s: health/reaction %s/%s, want %s/%s", ls.id, got.Health, got.Reaction, want.Health, want.Reaction)
		}
		if !got.CPUGate || !got.ModuleGate {
			t.Errorf("bus %s: gates closed after warm restart", ls.id)
		}
	}
	// History rings must be rehydrated from the WAL: 5 rounds per bus.
	for _, ls := range d2.links {
		hist := ls.snapshotHistory()
		if len(hist) != 5 {
			t.Fatalf("bus %s: %d history samples after restart, want 5", ls.id, len(hist))
		}
		rounds := make([]uint64, len(hist))
		for i, s := range hist {
			rounds[i] = s.Round
			if s.Verdict != "ok" {
				t.Errorf("bus %s: clean round recorded verdict %q", ls.id, s.Verdict)
			}
		}
		if !sort.SliceIsSorted(rounds, func(i, j int) bool { return rounds[i] < rounds[j] }) {
			t.Errorf("bus %s: history out of order: %v", ls.id, rounds)
		}
	}
	// And monitoring continues where it left off — round numbers extend the
	// recovered history instead of restarting at 1.
	driveRounds(d2, 1)
	for _, ls := range d2.links {
		hist := ls.snapshotHistory()
		last := hist[len(hist)-1]
		if last.Round != 6 {
			t.Errorf("bus %s: first post-restart round numbered %d, want 6", ls.id, last.Round)
		}
	}
}

// TestWarmRestartPreservesReactorState: the anti-ratchet contract. A bus
// whose reactor had escalated must restart escalated, with its streaks — a
// restart is not an amnesty.
func TestWarmRestartPreservesReactorState(t *testing.T) {
	backend := store.NewMemory()
	spec := stateSpec(1)
	d1, err := NewWithStore(spec, stateConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	ls1 := d1.links[0]
	if err := ls1.reactor.Restore(divot.ReactorSnapshot{
		State: "halted", AuthStreak: 4, Rounds: 12,
	}); err != nil {
		t.Fatal(err)
	}
	d1.persistFleet()

	d2, err := NewWithStore(spec, stateConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	if d2.warmN.Load() != 1 {
		t.Fatal("bus not restored warm")
	}
	snap := d2.links[0].reactor.Snapshot()
	if snap.State != "halted" || snap.AuthStreak != 4 || snap.Rounds != 12 {
		t.Fatalf("reactor state laundered by restart: %+v", snap)
	}
}

// TestCorruptSnapshotFallsBackCold: a damaged snapshot is never trusted — the
// affected bus cold-calibrates, its neighbours restore warm, and the daemon
// comes up either way.
func TestCorruptSnapshotFallsBackCold(t *testing.T) {
	backend := store.NewMemory()
	spec := stateSpec(3)
	d1, err := NewWithStore(spec, stateConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	d1.persistFleet()
	backend.CorruptSnapshot(d1.links[1].id)

	d2, err := NewWithStore(spec, stateConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.warmN.Load(); got != 2 {
		t.Fatalf("restored %d buses, want 2 (one snapshot was corrupt)", got)
	}
	if got := d2.calibratedN.Load(); got != 3 {
		t.Fatalf("calibrated %d buses, want 3", got)
	}
	for _, ls := range d2.links {
		if !ls.link.Calibrated() {
			t.Fatalf("bus %s not calibrated after fallback", ls.id)
		}
	}
	// The cold-calibrated bus's fresh enrollment replaced the corrupt
	// snapshot, so the next restart is fully warm again.
	d3, err := NewWithStore(spec, stateConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	if got := d3.warmN.Load(); got != 3 {
		t.Fatalf("third boot restored %d buses, want 3", got)
	}
}

// TestSpecChangeInvalidatesSnapshots: snapshots are bound to the seed and
// engine configuration. A different seed manufactures different lines — the
// old enrollments must not be trusted against them.
func TestSpecChangeInvalidatesSnapshots(t *testing.T) {
	backend := store.NewMemory()
	spec := stateSpec(2)
	d1, err := NewWithStore(spec, stateConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	d1.persistFleet()

	spec2 := spec
	spec2.Seed = spec.Seed + 1
	d2, err := NewWithStore(spec2, stateConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.warmN.Load(); got != 0 {
		t.Fatalf("stale snapshots accepted: %d buses restored across a seed change", got)
	}
	if got := d2.calibratedN.Load(); got != 2 {
		t.Fatalf("calibrated %d buses, want 2", got)
	}
}

// TestSpecHashIgnoresParallelism: worker-count changes produce bit-identical
// results, so they must not invalidate a fleet's snapshots.
func TestSpecHashIgnoresParallelism(t *testing.T) {
	cfg1 := lightConfig()
	cfg2 := lightConfig()
	cfg2.Engine.Parallelism = 8
	cfg2.Engine.ITDR.Parallelism = 4
	h1, err := computeSpecHash(7, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := computeSpecHash(7, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("parallelism change invalidated the spec hash")
	}
	cfg2.Engine.AuthThreshold = 0.5
	h3, err := computeSpecHash(7, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("threshold change did NOT invalidate the spec hash")
	}
}

// TestWarmRestartFromDiskWithTornWAL is the full crash e2e on the real file
// backend: a daemon writes snapshots and WALs to a state directory, dies with
// a torn history record on disk (the crash caught a write mid-record), and
// the next boot recovers — truncating the torn tail, restoring every bus
// warm, and appending cleanly.
func TestWarmRestartFromDiskWithTornWAL(t *testing.T) {
	dir := t.TempDir()
	spec := stateSpec(2)

	b1, err := store.OpenDir(dir, store.DirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewWithStore(spec, stateConfig(), b1)
	if err != nil {
		t.Fatal(err)
	}
	driveRounds(d1, 3)
	d1.persistFleet()
	if err := b1.Sync(); err != nil {
		t.Fatal(err)
	}
	// The crash: no Close. Tear the history WAL's live segment by appending
	// half a record.
	segs, err := filepath.Glob(filepath.Join(dir, "history", "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no history segments on disk: %v %v", segs, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b2, err := store.OpenDir(dir, store.DirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.HistoryWAL().TruncatedBytes() != 6 {
		t.Fatalf("torn tail: truncated %d bytes, want 6", b2.HistoryWAL().TruncatedBytes())
	}
	d2, err := NewWithStore(spec, stateConfig(), b2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.warmN.Load(); got != 2 {
		t.Fatalf("restored %d/2 buses from disk", got)
	}
	for _, ls := range d2.links {
		if hist := ls.snapshotHistory(); len(hist) != 3 {
			t.Fatalf("bus %s: %d history samples recovered, want 3", ls.id, len(hist))
		}
	}
	// Post-recovery appends work and survive another replay.
	driveRounds(d2, 1)
	if err := b2.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestReadyGating: until warmup completes, /readyz reports progress with 200
// while every other route answers 503 with a Retry-After header; after
// warmup the gate opens.
func TestReadyGating(t *testing.T) {
	d, err := newDaemon(stateSpec(2), lightConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var rv attest.ReadyView
	resp := getRaw(t, srv.URL+"/readyz")
	if resp.code != http.StatusOK {
		t.Fatalf("/readyz pre-warmup status = %d", resp.code)
	}
	if err := attest.ParseBody(resp.body, &rv); err != nil {
		t.Fatal(err)
	}
	if rv.Ready || rv.Total != 2 || rv.Calibrated != 0 {
		t.Fatalf("pre-warmup ready view: %+v", rv)
	}

	resp = getRaw(t, srv.URL+"/v1/links")
	if resp.code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/links pre-warmup status = %d, want 503", resp.code)
	}
	if resp.retryAfter != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", resp.retryAfter)
	}
	var apiErr *attest.Error
	if err := attest.ParseBody(resp.body, nil); err != nil {
		if e, ok := err.(*attest.Error); ok {
			apiErr = e
		} else {
			t.Fatal(err)
		}
	}
	if apiErr == nil || apiErr.Code != attest.CodeUnavailable {
		t.Fatalf("pre-warmup error = %v, want code unavailable", apiErr)
	}
	if resp = getRaw(t, srv.URL+"/metrics"); resp.code != http.StatusOK {
		t.Fatalf("/metrics gated during warmup: %d", resp.code)
	}

	if err := d.warmup(); err != nil {
		t.Fatal(err)
	}
	resp = getRaw(t, srv.URL+"/readyz")
	if err := attest.ParseBody(resp.body, &rv); err != nil {
		t.Fatal(err)
	}
	if !rv.Ready || rv.Calibrated != 2 {
		t.Fatalf("post-warmup ready view: %+v", rv)
	}
	if resp = getRaw(t, srv.URL+"/v1/links"); resp.code != http.StatusOK {
		t.Fatalf("/v1/links post-warmup status = %d", resp.code)
	}
}

// TestHistoryEndpoint: per-bus score history over HTTP, unknown bus 404s.
func TestHistoryEndpoint(t *testing.T) {
	d, err := NewWithConfig(stateSpec(1), stateConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveRounds(d, 4)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var hr attest.HistoryResponse
	resp := getRaw(t, srv.URL+"/v1/links/dimm0000/history")
	if resp.code != http.StatusOK {
		t.Fatalf("history status = %d: %s", resp.code, resp.body)
	}
	if err := attest.ParseBody(resp.body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Link != "dimm0000" || len(hr.Samples) != 4 {
		t.Fatalf("history = %+v, want 4 samples for dimm0000", hr)
	}
	for i, s := range hr.Samples {
		// The light test instrument masks dead bins early, so health may read
		// "degraded" — what matters here is the round numbering, a clean
		// verdict, and a real score.
		if s.Round != uint64(i+1) || s.Verdict != "ok" || s.Score <= 0 || s.Health == "" || s.Reaction == "" {
			t.Errorf("sample %d: %+v", i, s)
		}
	}
	if resp = getRaw(t, srv.URL+"/v1/links/nosuch/history"); resp.code != http.StatusNotFound {
		t.Fatalf("unknown bus history status = %d, want 404", resp.code)
	}
}

// TestHistoryRingBounded: the in-memory ring retains the newest histRingCap
// samples and drops the oldest.
func TestHistoryRingBounded(t *testing.T) {
	d, err := NewWithConfig(stateSpec(1), stateConfig())
	if err != nil {
		t.Fatal(err)
	}
	ls := d.links[0]
	for i := 0; i < histRingCap+10; i++ {
		d.monitorOnce(ls)
	}
	hist := ls.snapshotHistory()
	if len(hist) != histRingCap {
		t.Fatalf("ring holds %d, want %d", len(hist), histRingCap)
	}
	if hist[0].Round != 11 || hist[len(hist)-1].Round != histRingCap+10 {
		t.Fatalf("ring window [%d, %d], want [11, %d]",
			hist[0].Round, hist[len(hist)-1].Round, histRingCap+10)
	}
}

// TestAuditGoesToSegmentedLog: with a backend and no flat audit file, the
// audit trail lands in the backend's segmented log, line-aligned.
func TestAuditGoesToSegmentedLog(t *testing.T) {
	backend := store.NewMemory()
	d, err := NewWithStore(stateSpec(1), stateConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	driveRounds(d, 2)
	if err := d.audit.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := backend.AuditLines()
	if len(lines) == 0 {
		t.Fatal("no audit lines reached the backend")
	}
	for _, ln := range lines {
		if len(ln) == 0 || ln[0] != '{' || ln[len(ln)-1] != '}' {
			t.Fatalf("audit record not line-aligned: %q", ln)
		}
	}
}

// rawResp is a minimal HTTP probe result.
type rawResp struct {
	code       int
	retryAfter string
	body       []byte
}

func getRaw(t *testing.T, url string) rawResp {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := make([]byte, 0, 1024)
	buf := make([]byte, 1024)
	for {
		n, err := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	return rawResp{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), body: body}
}
