package daemon

// The binary multiplexed stream and the legacy per-link SSE feed are two
// transports for the same contract: every retained event, per link, in
// sequence order, exactly once across the client's own reconnects. These
// tests run the real SDK against the real daemon over both transports and
// require the delivered feeds to be identical — the SSE path is forced by
// fronting the daemon with a handler that answers /v1/stream with a bare
// 404, exactly what a pre-stream daemon does, so the negotiation fallback
// is exercised rather than stubbed.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	client "divot/client"
	"divot/internal/telemetry"
)

// legacyFront wraps a daemon handler so it looks like a daemon that predates
// the binary stream: /v1/stream is a bare 404, everything else passes through.
func legacyFront(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stream" {
			http.NotFound(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// drainMulti reads events off mw until every link in want has yielded its
// expected count, failing on a stalled feed or an early close.
func drainMulti(t *testing.T, mw *client.MultiWatch, want map[string]int) map[string][]client.Event {
	t.Helper()
	got := map[string][]client.Event{}
	need := 0
	for _, n := range want {
		need += n
	}
	deadline := time.After(15 * time.Second)
	for need > 0 {
		select {
		case ev, ok := <-mw.Events():
			if !ok {
				t.Fatalf("feed closed early (err=%v), still needed %d events; got %v", mw.Err(), need, got)
			}
			got[ev.Link] = append(got[ev.Link], ev)
			need--
		case <-deadline:
			t.Fatalf("feed stalled, still needed %d events; got %v", need, got)
		}
	}
	return got
}

// eventKey projects the fields both transports must agree on. (The binary
// frame carries the same fields as the SSE JSON; comparing whole structs
// keeps the two encoders honest.)
func normalize(evs []client.Event) []client.Event {
	out := make([]client.Event, len(evs))
	copy(out, evs)
	return out
}

func TestBinaryAndSSEWatchersSeeIdenticalFeeds(t *testing.T) {
	d := newTestDaemon(t, `{
		"seed": 31, "listen": "127.0.0.1:0",
		"buses": [{"id": "a"}, {"id": "b"}]
	}`)
	la, lb := d.byID["a"], d.byID["b"]

	// Retained history before anyone subscribes: the replay window.
	for i := 1; i <= 5; i++ {
		la.record(telemetry.Event{Kind: telemetry.EventAlert, Link: "a", Round: uint64(i)})
		lb.record(telemetry.Event{Kind: telemetry.EventGate, Link: "b", Round: uint64(i)})
	}

	srvBin := httptest.NewServer(d.Handler())
	defer srvBin.Close()
	srvSSE := httptest.NewServer(legacyFront(d.Handler()))
	defer srvSSE.Close()

	retry := client.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	cBin, err := client.New(srvBin.URL, client.WithRetryPolicy(retry))
	if err != nil {
		t.Fatal(err)
	}
	cSSE, err := client.New(srvSSE.URL, client.WithRetryPolicy(retry))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := client.WatchOptions{Links: []string{"a", "b"}, Buffer: 64}
	mwBin, err := cBin.WatchMulti(ctx, opts)
	if err != nil {
		t.Fatalf("binary WatchMulti: %v", err)
	}
	defer mwBin.Close()
	mwSSE, err := cSSE.WatchMulti(ctx, opts)
	if err != nil {
		t.Fatalf("legacy WatchMulti: %v", err)
	}
	defer mwSSE.Close()

	// Phase 1: replay + a burst of live events.
	for i := 6; i <= 9; i++ {
		la.record(telemetry.Event{Kind: telemetry.EventAlert, Link: "a", Round: uint64(i)})
		lb.record(telemetry.Event{Kind: telemetry.EventGate, Link: "b", Round: uint64(i)})
	}
	gotBin := drainMulti(t, mwBin, map[string]int{"a": 9, "b": 9})
	gotSSE := drainMulti(t, mwSSE, map[string]int{"a": 9, "b": 9})

	// Phase 2: tear every TCP connection down mid-stream. Both watchers must
	// reconnect with their cursors and pick up exactly where they left off —
	// no duplicates, no silent skip — including events recorded while down.
	srvBin.CloseClientConnections()
	srvSSE.CloseClientConnections()
	for i := 10; i <= 13; i++ {
		la.record(telemetry.Event{Kind: telemetry.EventAlert, Link: "a", Round: uint64(i)})
		lb.record(telemetry.Event{Kind: telemetry.EventGate, Link: "b", Round: uint64(i)})
	}
	for link, evs := range drainMulti(t, mwBin, map[string]int{"a": 4, "b": 4}) {
		gotBin[link] = append(gotBin[link], evs...)
	}
	for link, evs := range drainMulti(t, mwSSE, map[string]int{"a": 4, "b": 4}) {
		gotSSE[link] = append(gotSSE[link], evs...)
	}

	for _, link := range []string{"a", "b"} {
		bin, sse := normalize(gotBin[link]), normalize(gotSSE[link])
		if !reflect.DeepEqual(bin, sse) {
			t.Fatalf("link %s: binary and SSE feeds differ:\n binary: %v\n    sse: %v", link, bin, sse)
		}
		for i, ev := range bin {
			if want := uint64(i + 1); ev.Seq != want {
				t.Fatalf("link %s event %d: seq = %d, want %d (exactly-once violated)", link, i, ev.Seq, want)
			}
		}
	}
	if la.events.Published() != 13 || lb.events.Published() != 13 {
		t.Fatalf("published = %d/%d, want 13/13", la.events.Published(), lb.events.Published())
	}
}

func TestKindFilterEquivalentAcrossTransports(t *testing.T) {
	d := newTestDaemon(t, `{
		"seed": 32, "listen": "127.0.0.1:0",
		"buses": [{"id": "a"}]
	}`)
	ls := d.byID["a"]
	kinds := []telemetry.EventKind{
		telemetry.EventAlert, telemetry.EventGate, telemetry.EventAlert,
		telemetry.EventHealth, telemetry.EventGate, telemetry.EventAlert,
	}
	for i, k := range kinds {
		ls.record(telemetry.Event{Kind: k, Link: "a", Round: uint64(i + 1)})
	}

	srvBin := httptest.NewServer(d.Handler())
	defer srvBin.Close()
	srvSSE := httptest.NewServer(legacyFront(d.Handler()))
	defer srvSSE.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := client.WatchOptions{Links: []string{"a"}, Kinds: []string{"alert"}, Buffer: 16}

	var feeds []map[string][]client.Event
	for _, base := range []string{srvBin.URL, srvSSE.URL} {
		c, err := client.New(base)
		if err != nil {
			t.Fatal(err)
		}
		mw, err := c.WatchMulti(ctx, opts)
		if err != nil {
			t.Fatalf("WatchMulti(%s): %v", base, err)
		}
		feeds = append(feeds, drainMulti(t, mw, map[string]int{"a": 3}))
		mw.Close()
	}
	// The binary stream filters server-side, SSE filters in the client —
	// the surviving events (and their original seqs) must be identical.
	if !reflect.DeepEqual(feeds[0]["a"], feeds[1]["a"]) {
		t.Fatalf("kind-filtered feeds differ:\n binary: %v\n    sse: %v", feeds[0]["a"], feeds[1]["a"])
	}
	for i, ev := range feeds[0]["a"] {
		if ev.Kind != "alert" {
			t.Fatalf("event %d kind = %q, want alert", i, ev.Kind)
		}
	}
	wantSeqs := []uint64{1, 3, 6}
	for i, ev := range feeds[0]["a"] {
		if ev.Seq != wantSeqs[i] {
			t.Fatalf("filtered event %d seq = %d, want %d", i, ev.Seq, wantSeqs[i])
		}
	}
}
