package daemon

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"divot/internal/attest"
	"divot/internal/telemetry"
	"divot/internal/wire"
)

// handleStream serves the multiplexed binary event stream: many links over
// one connection, framed in the internal/wire format. The subscribe handshake
// (query parameters or JSON body, see wire.ParseSubscribeRequest) selects the
// link set (empty = whole fleet), an optional event-kind filter, and a
// per-link resume cursor; the response is a Hello frame naming the resolved
// links, a Gap frame for every link whose cursor fell off the retention ring,
// ring replay, then live delivery.
//
// All subscribed links share one bounded coalescing queue (streamQueueCap),
// so a slow subscriber's memory bound is per-connection, not per-link, and
// overflow degrades by coalescing periodic updates before dropping anything
// (counted in divot_stream_coalesced_total / divot_stream_dropped_total).
// Handshake errors answer in the JSON envelope before the stream starts;
// after the Hello frame all errors travel as frames.
func (d *Daemon) handleStream(w http.ResponseWriter, r *http.Request) {
	sub, err := wire.ParseSubscribeRequest(r)
	if err != nil {
		attest.WriteError(w, attest.CodeBadRequest, "parsing subscribe request: %v", err)
		return
	}
	var targets []*linkState
	if len(sub.Links) == 0 {
		targets = d.sortedLinks()
	} else {
		seen := make(map[string]bool, len(sub.Links))
		targets = make([]*linkState, 0, len(sub.Links))
		for _, id := range sub.Links {
			ls, ok := d.byID[id]
			if !ok {
				attest.WriteError(w, attest.CodeUnknownLink, "unknown bus %q", id)
				return
			}
			if seen[id] {
				continue
			}
			seen[id] = true
			targets = append(targets, ls)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })
	}
	kinds := make([]telemetry.EventKind, 0, len(sub.Kinds))
	kindSet := map[string]bool{}
	for _, name := range sub.Kinds {
		k, ok := telemetry.KindByName(name)
		if !ok {
			attest.WriteError(w, attest.CodeBadRequest, "unknown event kind %q", name)
			return
		}
		if !kindSet[name] {
			kindSet[name] = true
			kinds = append(kinds, k)
		}
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		attest.WriteError(w, attest.CodeInternal, "response writer cannot stream")
		return
	}

	d.streamSubs.Add(1)
	defer d.streamSubs.Add(-1)

	q := telemetry.NewQueue(streamQueueCap)
	q.Instrument(d.streamCoalesced, d.streamDropped)
	defer q.Close()

	// Subscribe every link before snapshotting its ring: each event is then in
	// the snapshot or on the queue (possibly both — deduplicated by seq, which
	// the per-link `last` cursors below track).
	ids := make([]string, len(targets))
	last := make(map[string]uint64, len(targets))
	type replaySet struct {
		events []attest.Event
		gap    *wire.Gap
	}
	replays := make([]replaySet, len(targets))
	for i, ls := range targets {
		ids[i] = ls.id
		qs := ls.events.SubscribeQueue(q, kinds...)
		defer qs.Close()
		after := sub.After[ls.id]
		last[ls.id] = after
		ring := ls.snapshotAlerts()
		rs := replaySet{}
		// The resume window is the retention ring. A cursor older than the
		// ring's tail means events were lost between connections: say so with
		// a Gap frame — the client surfaces ResumeGapError, never a silent
		// skip — then serve what is still retained.
		oldest := ls.events.Published() + 1
		if len(ring) > 0 {
			oldest = ring[0].Seq
		}
		if after > 0 && after+1 < oldest {
			rs.gap = &wire.Gap{Link: ls.id, Resume: after, Oldest: oldest}
		}
		for _, ev := range ring {
			if ev.Seq <= after {
				continue
			}
			if len(kindSet) > 0 && !kindSet[ev.Kind] {
				continue
			}
			rs.events = append(rs.events, ev)
		}
		replays[i] = rs
	}

	h := w.Header()
	h.Set("Content-Type", wire.ContentType)
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	var buf []byte
	hello, _ := json.Marshal(wire.Hello{Links: ids})
	buf = wire.AppendFrame(buf, wire.FrameHello, hello)
	for _, rs := range replays {
		if rs.gap != nil {
			raw, _ := json.Marshal(rs.gap)
			buf = wire.AppendFrame(buf, wire.FrameGap, raw)
		}
		for _, ev := range rs.events {
			buf = wire.AppendEventFrame(buf, ev)
			last[ev.Link] = ev.Seq
		}
	}
	if _, err := w.Write(buf); err != nil {
		return
	}
	fl.Flush()

	heartbeat := time.NewTicker(d.heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-d.stop:
			// Daemon shutting down; the client reconnects elsewhere (or later)
			// with its per-link cursors.
			buf = wire.AppendFrame(buf[:0], wire.FrameShutdown, nil)
			w.Write(buf) //nolint:errcheck // already terminating
			fl.Flush()
			return
		case <-heartbeat.C:
			buf = wire.AppendFrame(buf[:0], wire.FrameHeartbeat, nil)
			if _, err := w.Write(buf); err != nil {
				return
			}
			fl.Flush()
		case <-q.Ready():
			buf = buf[:0]
			for {
				tev, ok := q.TryPop()
				if !ok {
					break
				}
				if tev.Seq <= last[tev.Link] {
					continue
				}
				buf = wire.AppendEventFrame(buf, attest.EventFromTelemetry(tev))
				last[tev.Link] = tev.Seq
			}
			if len(buf) == 0 {
				continue
			}
			if _, err := w.Write(buf); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
