package daemon

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"

	"divot"
	"divot/internal/attest"
	"divot/internal/pool"
	"divot/internal/store"
	"divot/internal/telemetry"
)

// histRingCap bounds each bus's in-memory score history; older samples fall
// off (with a state_dir the history WAL retains more, bounded by its segment
// budget). It is sized to the WAL hydration depth so a warm restart refills
// the ring exactly.
const histRingCap = 256

// linkSnapshot is the JSON payload persisted per bus: the engine's durable
// state plus the reactor's anti-ratchet state. Persisting them together means
// a restart can neither forget an enrollment nor launder an escalation.
type linkSnapshot struct {
	Link    divot.LinkSnapshot    `json:"link"`
	Reactor divot.ReactorSnapshot `json:"reactor"`
	// StreamSeq is the bus's event-stream sequence counter at snapshot time,
	// and CleanSeq whether the snapshot was a graceful-shutdown one (the
	// counter is then exact). A restart seeds the rebuilt bus from these so
	// resume cursors held by stream subscribers stay meaningful: exactly after
	// a clean shutdown, and past a crash-slack margin otherwise — a crash may
	// have published events after the last snapshot, and reissuing their
	// sequence numbers would make subscribers silently skip new events.
	StreamSeq uint64 `json:"stream_seq,omitempty"`
	CleanSeq  bool   `json:"clean_seq,omitempty"`
}

// seqCrashSlack is how far past a non-clean snapshot's StreamSeq a restart
// seeds the stream sequence space. It over-estimates how many events one bus
// plausibly publishes between two snapshot writes; overshooting is safe (a
// resuming subscriber sees an honest gap), undershooting would silently
// replay sequence numbers.
const seqCrashSlack = 64

// histRecord is one history WAL record: a HistorySample tagged with its bus.
type histRecord struct {
	Link string `json:"link"`
	attest.HistorySample
}

// computeSpecHash fingerprints everything that shapes enrollment: the fleet
// seed plus the engine and line configuration. Parallelism knobs are zeroed
// first — results are bit-identical at every worker count, so changing
// workers must not invalidate a fleet's snapshots. Scheduling fields
// (intervals, jitter, listen address, attack scripts, audit paths) do not
// participate either: they change when rounds run, not what a fingerprint
// looks like.
func computeSpecHash(seed uint64, cfg divot.Config) (string, error) {
	cfg.Engine.Parallelism = 0
	cfg.Engine.ITDR.Parallelism = 0
	raw, err := json.Marshal(struct {
		Seed   uint64       `json:"seed"`
		Config divot.Config `json:"config"`
	}{seed, cfg})
	if err != nil {
		return "", fmt.Errorf("hashing fleet spec: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// warmup brings every bus to calibrated: restored from a validated enrollment
// snapshot when the backend holds one for the current spec hash, cold
// calibrated otherwise. A snapshot that is missing, corrupt, stale, or fails
// engine validation is never trusted — the bus silently falls back to cold
// calibration. Like calibrateFleet before it, each link's telemetry is
// buffered privately and drained in spec order, so startup produces the same
// audit byte sequence at every worker count.
func (d *Daemon) warmup() error {
	if d.warmed {
		return nil
	}
	shared := d.sys.Sink()
	n := len(d.links)
	errs := make([]error, n)
	warm := make([]bool, n)
	recs := make([]*divot.TelemetryRecorder, n)
	for i, ls := range d.links {
		recs[i] = &divot.TelemetryRecorder{}
		ls.link.SetSink(recs[i])
	}
	// The calibration budget (spec calib_parallelism, inheriting the engine
	// Parallelism when 0) splits two-level: across links first, leftover
	// workers handed to each link's intra-link measurement fan-out. A large
	// fleet runs one link per worker; a small fleet pushes the spare workers
	// inside each link's enrollment series. Both levels are bit-identical at
	// any worker count.
	effective := d.spec.CalibParallelism
	if effective == 0 {
		effective = d.sys.Config().Engine.Parallelism
	}
	across, within := pool.Split(effective, n)
	pool.Run(n, across, func(_, i int) {
		ls := d.links[i]
		if d.tryRestore(ls) {
			warm[i] = true
			d.warmN.Add(1)
			d.calibratedN.Add(1)
			return
		}
		if errs[i] = ls.link.CalibrateWith(within); errs[i] == nil {
			d.calibratedN.Add(1)
		}
	})
	for i, ls := range d.links {
		ls.link.SetSink(shared)
		recs[i].DrainTo(shared)
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("calibrating bus %q: %w", d.links[i].id, err)
		}
	}
	if d.backend != nil {
		// Persist the enrollments this boot produced (cold-calibrated buses
		// have no snapshot yet, or a rejected one worth replacing), refill
		// the history rings from the WAL, and make it all durable before
		// declaring ready — a crash after this point restarts warm.
		for i, ls := range d.links {
			if !warm[i] {
				ls.mu.Lock()
				d.saveSnapshot(ls, false)
				ls.mu.Unlock()
			}
		}
		d.hydrateHistory()
		if err := d.backend.Sync(); err != nil {
			d.storeErrs.With("sync").Inc()
		}
	}
	d.warmed = true
	d.ready.Store(true)
	return nil
}

// tryRestore loads, validates, and installs a bus's enrollment snapshot.
// Any failure — no snapshot, checksum damage, stale spec hash, payload that
// fails engine validation — reports false and the caller calibrates cold.
func (d *Daemon) tryRestore(ls *linkState) bool {
	if d.backend == nil {
		return false
	}
	raw, err := d.backend.LoadSnapshot(ls.id, d.specHash)
	if err != nil {
		if !errors.Is(err, store.ErrNoSnapshot) {
			d.storeErrs.With("load_snapshot").Inc()
		}
		return false
	}
	var snap linkSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		d.storeErrs.With("load_snapshot").Inc()
		return false
	}
	// Validate the reactor state first: Link.Restore mutates on success, and
	// a bus restored without its anti-ratchet streaks would let a restart
	// launder an escalation.
	if err := ls.reactor.Restore(snap.Reactor); err != nil {
		d.storeErrs.With("load_snapshot").Inc()
		return false
	}
	if err := ls.link.Restore(snap.Link); err != nil {
		d.storeErrs.With("load_snapshot").Inc()
		return false
	}
	ls.rounds.Store(snap.Link.Rounds)
	// Continue the predecessor's stream sequence space. After a clean
	// shutdown the persisted counter is exact, so resumed subscribers pick up
	// with no gap; after a crash events may have been published beyond the
	// snapshot, so jump the counter past a slack margin — a resuming
	// subscriber then sees a visible sequence jump (an honest ResumeGapError)
	// instead of silently skipping events whose numbers were reissued.
	if snap.CleanSeq {
		ls.events.SeedSeq(snap.StreamSeq)
	} else if snap.StreamSeq > 0 {
		ls.events.SeedSeq(snap.StreamSeq + seqCrashSlack)
	}
	return true
}

// saveSnapshot persists one bus's durable state. Caller holds ls.mu. clean
// marks a graceful-shutdown snapshot whose stream sequence counter is final
// (see linkSnapshot.CleanSeq). Failures are counted, not fatal: the daemon
// keeps monitoring and the next state-changing round retries.
func (d *Daemon) saveSnapshot(ls *linkState, clean bool) {
	if d.backend == nil {
		return
	}
	link, err := ls.link.Snapshot()
	if err != nil {
		d.storeErrs.With("save_snapshot").Inc()
		return
	}
	payload, err := json.Marshal(linkSnapshot{
		Link: link, Reactor: ls.reactor.Snapshot(),
		StreamSeq: ls.events.Published(), CleanSeq: clean,
	})
	if err != nil {
		d.storeErrs.With("save_snapshot").Inc()
		return
	}
	if err := d.backend.SaveSnapshot(ls.id, d.specHash, payload); err != nil {
		d.storeErrs.With("save_snapshot").Inc()
	}
}

// persistFleet snapshots every bus (graceful-shutdown path, and the warm
// restart e2e's stand-in for "the daemon had persisted before the kill").
// Run calls it after the schedulers have drained and open streams were told
// to finish, so the persisted stream sequence counters are final — the
// snapshots are marked clean and the next boot resumes the sequence space
// exactly.
func (d *Daemon) persistFleet() {
	for _, ls := range d.links {
		ls.mu.Lock()
		d.saveSnapshot(ls, true)
		ls.mu.Unlock()
	}
}

// recordHistory condenses one error-free monitoring round into a history
// sample: into the bus's bounded in-memory ring always, and into the history
// WAL when a backend is attached. The WAL record is rendered by hand into a
// reusable per-link buffer — the monitoring hot path stays allocation-free.
// Caller holds ls.mu.
func (d *Daemon) recordHistory(ls *linkState, alerts []divot.Alert, h divot.LinkHealth) {
	var auth, tamper bool
	for _, a := range alerts {
		switch a.Kind {
		case divot.AlertAuthFailure:
			auth = true
		case divot.AlertTamper:
			tamper = true
		}
	}
	verdict := "ok"
	switch {
	case auth && tamper:
		verdict = "auth-failure+tamper"
	case auth:
		verdict = "auth-failure"
	case tamper:
		verdict = "tamper"
	}
	sample := attest.HistorySample{
		Round:    ls.link.Rounds(),
		Score:    h.CPU.LastScore,
		Health:   h.State().String(),
		Reaction: ls.reactor.State().String(),
		Verdict:  verdict,
	}

	ls.histMu.Lock()
	ls.hist[ls.histIdx] = sample
	ls.histIdx = (ls.histIdx + 1) % histRingCap
	if ls.histLen < histRingCap {
		ls.histLen++
	}
	if d.backend != nil {
		b := ls.histBuf[:0]
		b = append(b, `{"link":`...)
		b = telemetry.AppendJSONString(b, ls.id)
		b = append(b, `,"round":`...)
		b = strconv.AppendUint(b, sample.Round, 10)
		b = append(b, `,"score":`...)
		b = strconv.AppendFloat(b, sample.Score, 'g', -1, 64)
		b = append(b, `,"health":`...)
		b = telemetry.AppendJSONString(b, sample.Health)
		b = append(b, `,"reaction":`...)
		b = telemetry.AppendJSONString(b, sample.Reaction)
		b = append(b, `,"verdict":`...)
		b = telemetry.AppendJSONString(b, sample.Verdict)
		b = append(b, '}')
		ls.histBuf = b
		if err := d.backend.AppendHistory(b); err != nil {
			d.storeErrs.With("append_history").Inc()
		}
	}
	ls.histMu.Unlock()
}

// snapshotHistory copies a bus's retained history, oldest first.
func (ls *linkState) snapshotHistory() []attest.HistorySample {
	ls.histMu.Lock()
	defer ls.histMu.Unlock()
	out := make([]attest.HistorySample, ls.histLen)
	start := ls.histIdx - ls.histLen
	if start < 0 {
		start += histRingCap
	}
	for i := 0; i < ls.histLen; i++ {
		out[i] = ls.hist[(start+i)%histRingCap]
	}
	return out
}

// pushHistory appends a recovered sample to the ring (warm-restart hydration).
func (ls *linkState) pushHistory(s attest.HistorySample) {
	ls.histMu.Lock()
	ls.hist[ls.histIdx] = s
	ls.histIdx = (ls.histIdx + 1) % histRingCap
	if ls.histLen < histRingCap {
		ls.histLen++
	}
	ls.histMu.Unlock()
}

// hydrateHistory refills the per-bus history rings from the WAL. Records of
// buses no longer in the spec, damaged records, and torn stretches are
// skipped — history recovery is best-effort and never blocks startup.
func (d *Daemon) hydrateHistory() {
	_, err := d.backend.ReplayHistory(func(rec []byte) error {
		var r histRecord
		if json.Unmarshal(rec, &r) != nil {
			return nil
		}
		if ls, ok := d.byID[r.Link]; ok {
			ls.pushHistory(r.HistorySample)
		}
		return nil
	})
	if err != nil {
		d.storeErrs.With("replay_history").Inc()
	}
}

// auditAppender adapts the backend's segmented audit log to io.Writer so the
// existing AuditLog renderer can feed it. The bufio layer above hands over
// arbitrary chunks; the appender reassembles lines and appends each complete
// one as one WAL record.
type auditAppender struct {
	d   *Daemon
	buf []byte
}

// Write implements io.Writer.
func (a *auditAppender) Write(p []byte) (int, error) {
	a.buf = append(a.buf, p...)
	used := 0
	for i := used; i < len(a.buf); i++ {
		if a.buf[i] != '\n' {
			continue
		}
		if err := a.d.backend.AppendAudit(a.buf[used:i]); err != nil {
			a.d.storeErrs.With("append_audit").Inc()
		}
		used = i + 1
	}
	a.buf = append(a.buf[:0], a.buf[used:]...)
	return len(p), nil
}
