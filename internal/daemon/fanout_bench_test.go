package daemon

import (
	"fmt"
	"io"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"divot/internal/attest"
	"divot/internal/telemetry"
	"divot/internal/wire"
)

// cpuSeconds returns this process's cumulative user+system CPU time.
func cpuSeconds(b *testing.B) float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		b.Fatal(err)
	}
	tv := func(t syscall.Timeval) float64 { return float64(t.Sec) + float64(t.Usec)/1e6 }
	return tv(ru.Utime) + tv(ru.Stime)
}

// BenchmarkEventFanout measures the multiplexed stream fan-out on one daemon:
// every published event travels the real subscriber path — per-link bus →
// bounded coalescing queue → binary frame encoding — to every watcher of that
// link. The fleet has 64 buses; each watcher subscribes to 4, so one publish
// reaches watchers/16 queues. Reported metrics: cores (process CPU over wall
// clock — the "<1 core at 10k watchers" acceptance number), deliveries/op
// (queue pushes one publish fans out to), and delivered frames/s.
func BenchmarkEventFanout(b *testing.B) {
	const nLinks = 64
	const linksPerWatcher = 4
	d, err := NewWithConfig(benchSpec(nLinks, 0), lightConfig())
	if err != nil {
		b.Fatal(err)
	}
	links := d.sortedLinks()
	for _, watchers := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("watchers=%d", watchers), func(b *testing.B) {
			stop := make(chan struct{})
			var delivered atomic.Uint64
			var subs []*telemetry.QueueSub
			queues := make([]*telemetry.Queue, watchers)
			for w := 0; w < watchers; w++ {
				q := telemetry.NewQueue(streamQueueCap)
				queues[w] = q
				for j := 0; j < linksPerWatcher; j++ {
					ls := links[(w*linksPerWatcher+j)%nLinks]
					subs = append(subs, ls.events.SubscribeQueue(q))
				}
				go func(q *telemetry.Queue) {
					var buf []byte
					for {
						select {
						case <-q.Ready():
							for {
								ev, ok := q.TryPop()
								if !ok {
									break
								}
								buf = wire.AppendEventFrame(buf[:0], attest.EventFromTelemetry(ev))
								io.Discard.Write(buf) //nolint:errcheck // Discard
								delivered.Add(1)
							}
						case <-stop:
							return
						}
					}
				}(q)
			}

			for i := 0; i < nLinks; i++ { // warm the fan-out path
				links[i].record(telemetry.Event{Kind: telemetry.EventAlert, Link: links[i].id})
			}
			b.ResetTimer()
			cpu0, t0, d0 := cpuSeconds(b), time.Now(), delivered.Load()
			for i := 0; i < b.N; i++ {
				ls := links[i%nLinks]
				ls.record(telemetry.Event{Kind: telemetry.EventAlert, Link: ls.id, Round: uint64(i)})
			}
			// Drain: every published event is eventually delivered, coalesced,
			// or dropped — wait for the queues to empty so consumer CPU is in
			// the measurement.
			for deadline := time.Now().Add(10 * time.Second); ; {
				busy := false
				for _, q := range queues {
					if q.Len() > 0 {
						busy = true
						break
					}
				}
				if !busy || time.Now().After(deadline) {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			wall := time.Since(t0).Seconds()
			cores := (cpuSeconds(b) - cpu0) / wall
			frames := delivered.Load() - d0
			b.StopTimer()
			b.ReportMetric(cores, "cores")
			b.ReportMetric(float64(frames)/float64(b.N), "deliveries/op")
			b.ReportMetric(float64(frames)/wall, "frames/s")
			close(stop)
			for _, s := range subs {
				s.Close()
			}
		})
	}
}
