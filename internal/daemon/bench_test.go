package daemon

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"divot"
	"divot/internal/attest"
	"divot/internal/store"
)

// lightConfig shrinks the instrument so fleet-scale benchmarks measure the
// daemon — scheduler, cache, telemetry — rather than the physics: a short
// acquisition window (~45 ETS bins instead of ~343), few trials per bin, a
// fixed tamper threshold (no auto-calibration rounds), and shallow
// enrollment.
func lightConfig() divot.Config {
	cfg := divot.DefaultConfig()
	cfg.Engine.ITDR.WindowSec = 0.5e-9
	cfg.Engine.ITDR.TrialsPerBin = 5
	cfg.Engine.TamperThreshold = 1e-6
	cfg.Engine.EnrollMeasurements = 2
	cfg.Engine.Parallelism = 1
	return cfg
}

// benchSpec builds an n-bus spec with a long interval (the benchmarks drive
// rounds directly; the timer path is not what's being measured).
func benchSpec(n int, maxStalenessMS int) Spec {
	spec := Spec{
		Seed:           7,
		Listen:         "127.0.0.1:0",
		IntervalMS:     60_000,
		MaxStalenessMS: maxStalenessMS,
	}
	for i := 0; i < n; i++ {
		spec.Buses = append(spec.Buses, BusSpec{ID: fmt.Sprintf("dimm%04d", i)})
	}
	spec.applyDefaults()
	return spec
}

// BenchmarkFleetScheduler measures one full fleet round — every bus
// monitored once through the daemon's round path (attack check, engine
// round, reactor, metrics, attestation-cache refresh) — at 10/100/1000
// buses on deliberately light instruments.
func BenchmarkFleetScheduler(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("links=%d", n), func(b *testing.B) {
			if testing.Short() && n > 100 {
				b.Skipf("skipping %d-bus fleet in -short mode", n)
			}
			d, err := NewWithConfig(benchSpec(n, 0), lightConfig())
			if err != nil {
				b.Fatal(err)
			}
			for _, ls := range d.links { // warm arenas and inverter caches
				d.monitorOnce(ls)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, ls := range d.links {
					d.monitorOnce(ls)
				}
			}
		})
	}
}

// BenchmarkAttest measures POST /v1/attest through the full HTTP stack:
// cold re-measures the bus every request (max_staleness_ms 0), warm serves
// from the last-round attestation cache. Unlike the fleet sweep this runs
// the paper-weight instrument — the point is the real cost of a spot-check
// measurement against a cache hit.
func BenchmarkAttest(b *testing.B) {
	for _, mode := range []struct {
		name    string
		staleMS int
	}{
		{name: "cold", staleMS: 0},
		{name: "warm", staleMS: 3_600_000},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := divot.DefaultConfig()
			cfg.Engine.Parallelism = 1
			d, err := NewWithConfig(benchSpec(1, mode.staleMS), cfg)
			if err != nil {
				b.Fatal(err)
			}
			srv := httptest.NewServer(d.Handler())
			defer srv.Close()
			status, body := postAttestB(b, srv.URL) // warm cache and connections
			if status != 200 {
				b.Fatalf("attest status %d: %s", status, body)
			}
			_, body = postAttestB(b, srv.URL)
			var ar attest.AttestResponse
			if err := attest.ParseBody(body, &ar); err != nil {
				b.Fatal(err)
			}
			if wantCached := mode.staleMS > 0; ar.Results[0].Cached != wantCached {
				b.Fatalf("%s attest: cached = %v, want %v", mode.name, ar.Results[0].Cached, wantCached)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				postAttestB(b, srv.URL)
			}
		})
	}
}

// postAttestB is postAttest for benchmarks.
func postAttestB(b *testing.B, base string) (int, []byte) {
	b.Helper()
	resp, err := http.Post(base+"/v1/attest", "application/json", strings.NewReader(""))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	return resp.StatusCode, body
}

// mustGet fetches a URL for a benchmark and returns the body.
func mustGet(b *testing.B, url string) []byte {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// BenchmarkDaemonStartup measures fleet bring-up at 100 buses: cold runs the
// full enrollment (calibration measurements plus tamper-floor probes per
// bus), warm restores every bus from its enrollment snapshot in the state
// directory — the crash-recovery path, which must be calibration-free.
func BenchmarkDaemonStartup(b *testing.B) {
	spec := benchSpec(100, 0)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewWithConfig(spec, lightConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		seedBackend, err := store.OpenDir(dir, store.DirOptions{})
		if err != nil {
			b.Fatal(err)
		}
		d, err := NewWithStore(spec, lightConfig(), seedBackend)
		if err != nil {
			b.Fatal(err)
		}
		d.persistFleet()
		if err := seedBackend.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			backend, err := store.OpenDir(dir, store.DirOptions{})
			if err != nil {
				b.Fatal(err)
			}
			d, err := NewWithStore(spec, lightConfig(), backend)
			if err != nil {
				b.Fatal(err)
			}
			if d.warmN.Load() != 100 {
				b.Fatalf("restored %d/100 buses", d.warmN.Load())
			}
			backend.Close() //nolint:errcheck // read-only iteration
		}
	})
}

// BenchmarkFleetHealth measures GET /v1/health at 100 buses, cold (lock and
// snapshot every bus) vs warm (served from the per-bus cached views).
func BenchmarkFleetHealth(b *testing.B) {
	for _, mode := range []struct {
		name    string
		staleMS int
	}{
		{name: "cold", staleMS: 0},
		{name: "warm", staleMS: 3_600_000},
	} {
		b.Run(mode.name, func(b *testing.B) {
			d, err := NewWithConfig(benchSpec(100, mode.staleMS), lightConfig())
			if err != nil {
				b.Fatal(err)
			}
			for _, ls := range d.links { // populate the caches
				d.monitorOnce(ls)
			}
			srv := httptest.NewServer(d.Handler())
			defer srv.Close()
			var hr attest.FleetHealthResponse
			if err := attest.ParseBody(mustGet(b, srv.URL+"/v1/health"), &hr); err != nil {
				b.Fatal(err)
			}
			if len(hr.Links) != 100 {
				b.Fatalf("fleet health returned %d links, want 100", len(hr.Links))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustGet(b, srv.URL+"/v1/health")
			}
		})
	}
}

// BenchmarkFleetColdStart measures full-fidelity fleet bring-up: every bus
// cold-enrolled on the paper-weight instrument — the real one-time pairing
// cost a new fleet pays (BenchmarkDaemonStartup runs light instruments to
// isolate daemon overhead instead). The calib sweep exercises the two-level
// calib_parallelism schedule (across links × within links); enrollment
// output is bit-identical at every worker count, so the knob only moves
// wall clock. The bare sizes run the default budget (0 = one worker per
// CPU).
func BenchmarkFleetColdStart(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		for _, calib := range []int{0, 1, 2} {
			name := fmt.Sprintf("%d", n)
			if calib != 0 {
				name = fmt.Sprintf("%d/calib=%d", n, calib)
			}
			b.Run(name, func(b *testing.B) {
				if testing.Short() && n > 100 {
					b.Skipf("skipping %d-bus cold start in -short mode", n)
				}
				spec := benchSpec(n, 0)
				spec.CalibParallelism = calib
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d, err := NewDaemon(spec)
					if err != nil {
						b.Fatal(err)
					}
					if got := int(d.calibratedN.Load()); got != n {
						b.Fatalf("calibrated %d/%d buses", got, n)
					}
				}
			})
		}
	}
}
