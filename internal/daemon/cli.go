package daemon

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// Main is the divotd command entry point without the process plumbing, so
// tests can drive flag parsing and spec loading and assert on the exit code.
func Main(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("divotd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "fleet spec JSON file (required)")
	listen := fs.String("listen", "", "override the spec's listen address")
	fedID := fs.String("federation-id", "",
		"override the spec's federation id (the label a divotherd aggregator groups this daemon under, surfaced in /healthz and /v1/health)")
	stateDir := fs.String("state-dir", "",
		"override the spec's state_dir (durable enrollment snapshots + history/audit WALs; a restart warm-restores the fleet from it)")
	pprofAddr := fs.String("pprof-addr", "",
		"serve net/http/pprof on this address over its own listener (empty = disabled; never exposed on the attestation API)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	spec, err := LoadSpec(*specPath)
	if err != nil {
		fmt.Fprintf(stderr, "divotd: %v\n", err)
		return 1
	}
	if *listen != "" {
		spec.Listen = *listen
	}
	if *fedID != "" {
		spec.FederationID = *fedID
	}
	if *stateDir != "" {
		spec.StateDir = *stateDir
	}
	// New defers restore/calibration to Run, which binds the socket first and
	// serves /readyz progress while the fleet warms.
	d, err := New(spec)
	if err != nil {
		fmt.Fprintf(stderr, "divotd: %v\n", err)
		return 1
	}
	if *pprofAddr != "" {
		stopPprof, err := servePprof(*pprofAddr, stdout)
		if err != nil {
			fmt.Fprintf(stderr, "divotd: %v\n", err)
			return 1
		}
		defer stopPprof()
	}
	if err := d.Run(ctx, stdout); err != nil {
		fmt.Fprintf(stderr, "divotd: %v\n", err)
		return 1
	}
	return 0
}

// servePprof exposes the runtime profiler on its own listener, deliberately
// separate from the attestation API: an operator opts in per process with
// -pprof-addr (typically bound to localhost), and the attestation listener
// never learns the /debug/pprof routes.
func servePprof(addr string, logw io.Writer) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listening for pprof on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // closed on shutdown
	fmt.Fprintf(logw, "divotd: pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() { srv.Close() }, nil
}
