package daemon

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"divot/internal/attest"
	"divot/internal/telemetry"
	"divot/internal/wire"
)

// multiClient reads binary stream frames off an open /v1/stream connection.
type multiClient struct {
	resp *http.Response
	rd   *wire.Reader
}

// openMulti connects to /v1/stream. qs is the raw query string ("" for the
// whole fleet); body, when non-empty, is sent as the JSON subscribe body.
func openMulti(t *testing.T, base, qs, body string) *multiClient {
	t.Helper()
	url := base + "/v1/stream"
	if qs != "" {
		url += "?" + qs
	}
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest("GET", url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream status = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("stream Content-Type = %q, want %q", ct, wire.ContentType)
	}
	return &multiClient{resp: resp, rd: wire.NewReader(resp.Body)}
}

// hello expects the opening Hello frame and returns its resolved link list.
func (c *multiClient) hello(t *testing.T) []string {
	t.Helper()
	typ, payload, err := c.rd.Next()
	if err != nil || typ != wire.FrameHello {
		t.Fatalf("first frame = %v (%v), want hello", typ, err)
	}
	var h wire.Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		t.Fatalf("bad hello payload: %v", err)
	}
	return h.Links
}

// next returns the next event frame, skipping heartbeats. ok is false at
// stream end (EOF or Shutdown frame). Gap frames are fatal here — tests that
// expect one read frames directly.
func (c *multiClient) next(t *testing.T) (attest.Event, bool) {
	t.Helper()
	for {
		typ, payload, err := c.rd.Next()
		if err != nil {
			return attest.Event{}, false
		}
		switch typ {
		case wire.FrameHeartbeat:
		case wire.FrameShutdown:
			return attest.Event{}, false
		case wire.FrameEvent:
			ev, err := wire.DecodeEvent(payload)
			if err != nil {
				t.Fatalf("bad event frame: %v", err)
			}
			return ev, true
		default:
			t.Fatalf("unexpected frame %v on event stream", typ)
		}
	}
}

func (c *multiClient) close() { c.resp.Body.Close() }

// TestStreamMultiplexedReplayFilterAndLive covers the binary stream at the
// daemon: whole-fleet Hello, multi-link ring replay with per-link sequence
// spaces, per-link resume cursors, kind filtering, live delivery, and
// handshake error envelopes.
func TestStreamMultiplexedReplayFilterAndLive(t *testing.T) {
	d := newTestDaemon(t, `{
		"seed": 33, "listen": "127.0.0.1:0",
		"buses": [
			{"id": "clean0"},
			{"id": "victim", "attack": {"kind": "interposer", "after_rounds": 0, "position": 0.12}}
		]
	}`)
	d.heartbeat = 20 * time.Millisecond
	ls := d.byID["victim"]
	for i := 0; i < 4; i++ {
		d.monitorOnce(ls)
	}
	retained := ls.snapshotAlerts()
	if len(retained) < 3 {
		t.Fatalf("expected several retained events, got %+v", retained)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Whole fleet (no links named): Hello lists every bus in id order, and
	// replay delivers victim's full ring in order.
	c := openMulti(t, srv.URL, "", "")
	links := c.hello(t)
	if len(links) != 2 || links[0] != "clean0" || links[1] != "victim" {
		t.Fatalf("hello links = %v", links)
	}
	for i := range retained {
		ev, ok := c.next(t)
		if !ok {
			t.Fatalf("stream ended after %d of %d replayed events", i, len(retained))
		}
		if ev.Link != "victim" || ev.Seq != retained[i].Seq || ev.Kind != retained[i].Kind {
			t.Fatalf("replay[%d] = %+v, want %+v", i, ev, retained[i])
		}
	}

	// Live delivery: another round's events arrive on the open stream with
	// seqs continuing the replayed space.
	last := retained[len(retained)-1].Seq
	done := make(chan struct{})
	go func() { d.monitorOnce(ls); close(done) }()
	liveEv, ok := c.next(t)
	if !ok || liveEv.Seq <= last || liveEv.Link != "victim" {
		t.Fatalf("no live event after replay: %+v ok=%v", liveEv, ok)
	}
	<-done
	c.close()

	// Named subset + per-link resume cursor + kind filter, via the JSON body
	// form: only victim's alert events after the cursor come back.
	retained = ls.snapshotAlerts()
	after := retained[1].Seq
	body, _ := json.Marshal(wire.Subscribe{
		Links: []string{"victim"},
		Kinds: []string{"alert"},
		After: map[string]uint64{"victim": after},
	})
	c = openMulti(t, srv.URL, "", string(body))
	if links := c.hello(t); len(links) != 1 || links[0] != "victim" {
		t.Fatalf("subset hello links = %v", links)
	}
	want := 0
	for _, ev := range retained {
		if ev.Seq > after && ev.Kind == "alert" {
			want++
		}
	}
	if want == 0 {
		t.Fatalf("test needs retained alert events past seq %d: %+v", after, retained)
	}
	for i := 0; i < want; i++ {
		ev, ok := c.next(t)
		if !ok {
			t.Fatalf("filtered stream ended after %d of %d events", i, want)
		}
		if ev.Kind != "alert" || ev.Seq <= after {
			t.Fatalf("filtered replay delivered %+v", ev)
		}
	}
	c.close()

	// The query form selects the same subset.
	c = openMulti(t, srv.URL, "links=victim&kinds=alert&after=victim:"+jsonNumber(after), "")
	if links := c.hello(t); len(links) != 1 || links[0] != "victim" {
		t.Fatalf("query-form hello links = %v", links)
	}
	ev, ok := c.next(t)
	if !ok || ev.Kind != "alert" || ev.Seq <= after {
		t.Fatalf("query-form first event = %+v ok=%v", ev, ok)
	}
	c.close()

	// Handshake errors answer in the JSON envelope, before any frame.
	for _, tc := range []struct {
		qs, code string
		status   int
	}{
		{"links=ghost", attest.CodeUnknownLink, http.StatusNotFound},
		{"kinds=nope", attest.CodeBadRequest, http.StatusBadRequest},
		{"after=victim:x", attest.CodeBadRequest, http.StatusBadRequest},
	} {
		resp, err := http.Get(srv.URL + "/v1/stream?" + tc.qs)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s status = %d, want %d", tc.qs, resp.StatusCode, tc.status)
		}
		if perr := attest.ParseBody(raw, nil); perr == nil ||
			!strings.Contains(perr.Error(), tc.code) {
			t.Errorf("%s error = %v, want %s", tc.qs, perr, tc.code)
		}
	}
}

// TestStreamGapAndShutdownFrames: a resume cursor that fell off the retention
// ring draws an explicit Gap frame (never a silent skip), and daemon shutdown
// ends the stream with a Shutdown frame.
func TestStreamGapAndShutdownFrames(t *testing.T) {
	d := newTestDaemon(t, `{
		"seed": 5, "listen": "127.0.0.1:0",
		"buses": [{"id": "a"}]
	}`)
	d.heartbeat = 20 * time.Millisecond
	ls := d.byID["a"]
	// Push the ring well past its capacity so early seqs are forgotten.
	for i := 0; i < alertRingCap+40; i++ {
		ls.record(telemetry.Event{Kind: telemetry.EventAlert, Link: "a", Round: uint64(i)})
	}
	ring := ls.snapshotAlerts()
	oldest := ring[0].Seq
	if oldest <= 2 {
		t.Fatalf("ring did not overflow: oldest seq %d", oldest)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	c := openMulti(t, srv.URL, "links=a&after=a:1", "")
	c.hello(t)
	typ, payload, err := c.rd.Next()
	if err != nil || typ != wire.FrameGap {
		t.Fatalf("frame after hello = %v (%v), want gap", typ, err)
	}
	var gap wire.Gap
	if err := json.Unmarshal(payload, &gap); err != nil {
		t.Fatal(err)
	}
	if gap.Link != "a" || gap.Resume != 1 || gap.Oldest != oldest {
		t.Fatalf("gap = %+v, want link a resume 1 oldest %d", gap, oldest)
	}
	// The retained window still streams after the gap notice.
	ev, ok := c.next(t)
	if !ok || ev.Seq != oldest {
		t.Fatalf("first retained event = %+v ok=%v, want seq %d", ev, ok, oldest)
	}

	// Shutdown: closing d.stop must end the stream with a Shutdown frame
	// (multiClient.next reports it as stream end).
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(d.stop)
	}()
	for {
		if _, ok := c.next(t); !ok {
			break
		}
	}
	c.close()

	// An exact-resume cursor (ring tail) is not a gap.
	d2 := newTestDaemon(t, `{"seed": 6, "listen": "127.0.0.1:0", "buses": [{"id": "b"}]}`)
	d2.heartbeat = 20 * time.Millisecond
	ls2 := d2.byID["b"]
	ls2.record(telemetry.Event{Kind: telemetry.EventAlert, Link: "b"})
	ls2.record(telemetry.Event{Kind: telemetry.EventGate, Link: "b"})
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	c2 := openMulti(t, srv2.URL, "links=b&after=b:1", "")
	c2.hello(t)
	typ, _, err = c2.rd.Next()
	if err != nil || typ != wire.FrameEvent {
		t.Fatalf("in-window resume got frame %v (%v), want event", typ, err)
	}
	c2.close()
}

// TestStreamMetricsEndToEnd asserts the stream accounting metrics on
// /metrics: the subscriber gauge tracks open binary and SSE streams, and the
// coalesce/drop counter families are exported.
func TestStreamMetricsEndToEnd(t *testing.T) {
	d := newTestDaemon(t, `{
		"seed": 7, "listen": "127.0.0.1:0",
		"buses": [{"id": "a"}]
	}`)
	d.heartbeat = 20 * time.Millisecond
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	scrape := func() string {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(raw)
	}
	waitGauge := func(want string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			m := scrape()
			if strings.Contains(m, "divot_stream_subscribers "+want+"\n") {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("divot_stream_subscribers never reached %s:\n%s", want, m)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	m := scrape()
	for _, fam := range []string{
		"divot_stream_subscribers", "divot_stream_coalesced_total", "divot_stream_dropped_total",
	} {
		if !strings.Contains(m, "# TYPE "+fam+" ") {
			t.Errorf("metric family %s not exported:\n%s", fam, m)
		}
	}
	waitGauge("0")

	bin := openMulti(t, srv.URL, "links=a", "")
	bin.hello(t)
	waitGauge("1")
	sse := openStream(t, srv.URL, "a", 0)
	waitGauge("2")
	bin.close()
	sse.close()
	waitGauge("0")
}
