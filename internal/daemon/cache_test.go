package daemon

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"divot/internal/attest"
	"divot/internal/telemetry"
)

// cacheSpec builds a one-bus fleet with the attestation cache enabled.
func cacheSpec(t *testing.T, extra string) Spec {
	t.Helper()
	spec, err := LoadSpec(writeSpec(t, `{
		"seed": 11,
		"listen": "127.0.0.1:0",
		"interval_ms": 5,
		"max_staleness_ms": 60000,
		"buses": [{"id": "dimm0"}`+extra+`]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// attestFleet POSTs a whole-fleet /v1/attest and decodes the response.
func attestFleet(t *testing.T, base string) attest.AttestResponse {
	t.Helper()
	status, body := postAttest(t, base, "")
	if status != http.StatusOK {
		t.Fatalf("POST /v1/attest: status %d: %s", status, body)
	}
	var ar attest.AttestResponse
	if err := attest.ParseBody(body, &ar); err != nil {
		t.Fatalf("POST /v1/attest: %v", err)
	}
	return ar
}

// TestAttestCacheHitAfterMiss: with the cache enabled and no scheduler
// running, the first attestation measures (miss) and the second is served
// from the stored view (hit) with the same verdict, flagged Cached.
func TestAttestCacheHitAfterMiss(t *testing.T) {
	d, err := NewDaemon(cacheSpec(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	cold := attestFleet(t, srv.URL)
	if len(cold.Results) != 1 || cold.Results[0].Cached {
		t.Fatalf("cold attest: want one uncached result, got %+v", cold.Results)
	}
	warm := attestFleet(t, srv.URL)
	if len(warm.Results) != 1 || !warm.Results[0].Cached {
		t.Fatalf("warm attest: want one cached result, got %+v", warm.Results)
	}
	c, w := cold.Results[0], warm.Results[0]
	if w.Accepted != c.Accepted || w.Score != c.Score || w.Health != c.Health {
		t.Fatalf("cached verdict diverged: cold %+v warm %+v", c, w)
	}
	metrics := string(get(t, srv.URL+"/metrics"))
	for _, want := range []string{
		`divot_attest_cache_misses_total{link="dimm0"} 1`,
		`divot_attest_cache_hits_total{link="dimm0"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestAttestCacheDisabledByDefault: max_staleness_ms 0 keeps today's
// semantics — every request re-measures and nothing is ever flagged Cached.
func TestAttestCacheDisabledByDefault(t *testing.T) {
	spec, err := LoadSpec(writeSpec(t, `{
		"seed": 11,
		"listen": "127.0.0.1:0",
		"buses": [{"id": "dimm0"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	for i := 0; i < 2; i++ {
		ar := attestFleet(t, srv.URL)
		if ar.Results[0].Cached {
			t.Fatalf("attest %d served from cache with max_staleness_ms 0", i)
		}
	}
}

// TestAttestCacheInvalidation: every attention-worthy telemetry kind —
// re-enrollment, health transition, monitor error, alert, gate move, attack
// — must drop the cached view the instant it is emitted.
func TestAttestCacheInvalidation(t *testing.T) {
	kinds := []telemetry.EventKind{
		telemetry.EventReenroll, telemetry.EventHealth,
		telemetry.EventMonitorError, telemetry.EventAlert,
		telemetry.EventGate, telemetry.EventAttack,
	}
	d, err := NewDaemon(cacheSpec(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	ls := d.byID["dimm0"]
	sink := alertSink{d}
	for _, kind := range kinds {
		ls.refreshCache(attest.AuthReport{ID: ls.id, Accepted: true, Score: 1, Health: "ok"},
			attest.LinkHealthView{ID: ls.id, State: "ok"})
		if _, _, ok := ls.cached(d.maxStale); !ok {
			t.Fatalf("fresh cache not served before %v", kind)
		}
		sink.Emit(telemetry.Event{Kind: kind, Link: ls.id})
		if _, _, ok := ls.cached(d.maxStale); ok {
			t.Errorf("cache survived %v", kind)
		}
	}
	// Events for other buses must not touch this bus's cache.
	ls.refreshCache(attest.AuthReport{ID: ls.id, Accepted: true}, attest.LinkHealthView{ID: ls.id})
	sink.Emit(telemetry.Event{Kind: telemetry.EventAlert, Link: "elsewhere"})
	if _, _, ok := ls.cached(d.maxStale); !ok {
		t.Error("another bus's alert invalidated this bus's cache")
	}
}

// TestAttestCacheNeverServesStaleOK is the safety property behind the whole
// cache: a bus attested "ok" into a 60-second cache window, then hit by an
// interposer, must fail its next attestation the moment monitoring confirms
// the attack — the cached "ok" may never outlive the alert.
func TestAttestCacheNeverServesStaleOK(t *testing.T) {
	spec := cacheSpec(t, `,
		{"id": "dimm1", "attack": {"kind": "interposer", "after_rounds": 2, "position": 0.1}}`)
	d, err := NewDaemon(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx, io.Discard) }()
	defer func() { cancel(); <-done }()

	var base string
	for deadline := time.Now().Add(5 * time.Second); ; {
		if addr := d.Addr(); addr != "" {
			base = "http://" + addr
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never started listening")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Warm the cache while the bus is still clean (the verdict may already
	// be post-attack if the scheduler outran us — then it must reject).
	first := attestFleet(t, base)

	// Wait until monitoring confirms the attack...
	deadline := time.Now().Add(30 * time.Second)
	for {
		var lr attest.LinksResponse
		getData(t, base+"/v1/links", &lr)
		failed := false
		for _, v := range lr.Links {
			if v.ID == "dimm1" && v.Health == "failed" {
				failed = true
			}
		}
		if failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("interposer never confirmed; first attest %+v", first.Results)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// ...then the very next attestation must reject, despite the 60 s
	// staleness allowance.
	after := attestFleet(t, base)
	for _, rep := range after.Results {
		if rep.ID == "dimm1" && rep.Accepted {
			t.Fatalf("stale ok served for attacked bus: %+v", rep)
		}
	}
	// /v1/health must agree (it shares the cache): dimm1 is not ok.
	var hr attest.FleetHealthResponse
	getData(t, base+"/v1/health", &hr)
	for _, v := range hr.Links {
		if v.ID == "dimm1" && v.State == "ok" {
			t.Fatalf("fleet health reports stale ok for attacked bus: %+v", v)
		}
	}
}

// TestShardAssignment pins the deal: round-robin in spec order, shard count
// capped by the fleet size.
func TestShardAssignment(t *testing.T) {
	spec, err := LoadSpec(writeSpec(t, `{
		"seed": 3,
		"listen": "127.0.0.1:0",
		"scheduler_shards": 2,
		"buses": [{"id": "a"}, {"id": "b"}, {"id": "c"}, {"id": "d"}, {"id": "e"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(spec)
	if err != nil {
		t.Fatal(err)
	}
	shards := d.shardLinks()
	if len(shards) != 2 {
		t.Fatalf("shardLinks: %d shards, want 2", len(shards))
	}
	want := [][]string{{"a", "c", "e"}, {"b", "d"}}
	for i, shard := range shards {
		var ids []string
		for _, ls := range shard {
			ids = append(ids, ls.id)
		}
		if strings.Join(ids, ",") != strings.Join(want[i], ",") {
			t.Errorf("shard %d = %v, want %v", i, ids, want[i])
		}
	}

	d.spec.SchedulerShards = 64
	if got := d.shardCount(); got != 5 {
		t.Errorf("shardCount with 64 requested over 5 buses = %d, want 5", got)
	}
	d.spec.SchedulerShards = 0
	if got, max := d.shardCount(), runtime.GOMAXPROCS(0); got > max || got > 5 || got < 1 {
		t.Errorf("default shardCount = %d, want in [1, min(%d, 5)]", got, max)
	}
}

// TestShardSchedulerRoundsEveryBus runs a fleet larger than its shard pool
// and checks every bus gets monitoring rounds and the shard-depth gauge is
// exported.
func TestShardSchedulerRoundsEveryBus(t *testing.T) {
	spec, err := LoadSpec(writeSpec(t, `{
		"seed": 3,
		"listen": "127.0.0.1:0",
		"interval_ms": 2,
		"scheduler_shards": 2,
		"buses": [{"id": "a"}, {"id": "b"}, {"id": "c"}, {"id": "d"}, {"id": "e"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx, io.Discard) }()
	defer func() { cancel(); <-done }()

	deadline := time.Now().Add(30 * time.Second)
	for {
		all := true
		for _, ls := range d.links {
			if ls.rounds.Load() < 3 {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			for _, ls := range d.links {
				t.Logf("bus %s: %d rounds", ls.id, ls.rounds.Load())
			}
			t.Fatal("not every bus reached 3 rounds")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var base string
	for deadline := time.Now().Add(5 * time.Second); base == ""; {
		if addr := d.Addr(); addr != "" {
			base = "http://" + addr
		} else if time.Now().After(deadline) {
			t.Fatal("daemon never started listening")
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	metrics := string(get(t, base+"/metrics"))
	if !strings.Contains(metrics, `divot_scheduler_shard_depth{shard="0"}`) ||
		!strings.Contains(metrics, `divot_scheduler_shard_depth{shard="1"}`) {
		t.Errorf("metrics missing shard depth gauges:\n%s", metrics)
	}
}
