package daemon

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"divot"
)

func TestLoadSpecRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty buses", `{"seed": 1, "buses": []}`, "at least one bus"},
		{"no file content", `{`, "parsing fleet spec"},
		{"duplicate ids", `{"buses": [{"id": "a"}, {"id": "a"}]}`, `duplicate bus id "a"`},
		{"missing id", `{"buses": [{}]}`, "has no id"},
		{"bad jitter", `{"jitter_frac": 2, "buses": [{"id": "a"}]}`, "jitter_frac"},
		{"negative interval", `{"interval_ms": -5, "buses": [{"id": "a"}]}`, "interval_ms"},
		{"unknown attack", `{"buses": [{"id": "a", "attack": {"kind": "laser"}}]}`, `unknown attack kind "laser"`},
		{"unknown field", `{"busses": [{"id": "a"}]}`, "parsing fleet spec"},
		{"bad threshold", `{"auth_threshold": 1.2, "buses": [{"id": "a"}]}`, "auth_threshold"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadSpec(writeSpec(t, tc.body))
			if err == nil {
				t.Fatalf("spec %s loaded without error", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := LoadSpec(""); err == nil || !strings.Contains(err.Error(), "-spec") {
		t.Errorf("missing path error %v should point at -spec", err)
	}
	if _, err := LoadSpec("/does/not/exist.json"); err == nil {
		t.Error("nonexistent file should error")
	}
}

func TestLoadSpecDefaults(t *testing.T) {
	spec, err := LoadSpec(writeSpec(t, `{"seed": 3, "buses": [{"id": "a"}, {"id": "b", "interval_ms": 7}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Listen != "127.0.0.1:9720" {
		t.Errorf("default listen = %q", spec.Listen)
	}
	if spec.IntervalMS != 100 {
		t.Errorf("default interval = %d", spec.IntervalMS)
	}
	if got := spec.interval(spec.Buses[0]); got != 100 {
		t.Errorf("bus a interval = %d, want fleet default 100", got)
	}
	if got := spec.interval(spec.Buses[1]); got != 7 {
		t.Errorf("bus b interval = %d, want override 7", got)
	}
}

// TestSpecAcceptsAdaptiveTapAndThreshold covers the experiment-harness spec
// extensions: the adaptive-tap scripted attack validates and builds a
// stepper, and a tuned auth_threshold reaches the engine configuration.
func TestSpecAcceptsAdaptiveTapAndThreshold(t *testing.T) {
	spec, err := LoadSpec(writeSpec(t, `{
		"seed": 5, "auth_threshold": 0.62,
		"buses": [{"id": "a", "attack": {"kind": "adaptive-tap", "after_rounds": 3, "position": 0.1}}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.AuthThreshold != 0.62 {
		t.Errorf("AuthThreshold = %v, want 0.62", spec.AuthThreshold)
	}
	d, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	ls := d.byID["a"]
	if ls.attack == nil || ls.attack.Name() != "adaptive-tap" {
		t.Fatalf("scripted attack = %v, want adaptive-tap", ls.attack)
	}
	if _, ok := ls.attack.(divot.AttackStepper); !ok {
		t.Fatal("adaptive-tap does not implement the stepper the scheduler advances")
	}
}

// TestRunExitCodes drives the command entry point Main directly: a bad spec
// must exit non-zero with a useful message on stderr, a bad flag must exit 2.
func TestRunExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ctx := context.Background()

	if code := Main(ctx, []string{"-spec", writeSpec(t, `{"buses": []}`)}, &stdout, &stderr); code != 1 {
		t.Errorf("bad spec exit = %d, want 1", code)
	}
	if msg := stderr.String(); !strings.Contains(msg, "at least one bus") {
		t.Errorf("bad-spec stderr %q carries no useful message", msg)
	}

	stderr.Reset()
	if code := Main(ctx, nil, &stdout, &stderr); code != 1 {
		t.Errorf("missing -spec exit = %d, want 1", code)
	}

	stderr.Reset()
	if code := Main(ctx, []string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}

	// The happy path: a cancelled context makes run return promptly after
	// startup, exit 0.
	runCtx, cancel := context.WithCancel(ctx)
	good := writeSpec(t, `{"seed": 1, "interval_ms": 20, "buses": [{"id": "solo"}]}`)
	out, errOut := &syncBuffer{}, &syncBuffer{}
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- Main(runCtx, []string{"-spec", good, "-listen", "127.0.0.1:0"}, out, errOut)
	}()
	for deadline := time.Now().Add(15 * time.Second); !strings.Contains(out.String(), "serving on"); {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported startup (stderr: %s)", errOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if code := <-codeCh; code != 0 {
		t.Errorf("clean run exit = %d, want 0 (stderr: %s)", code, errOut.String())
	}
}

// syncBuffer is a bytes.Buffer safe for one writer and one polling reader.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
