// Package daemon is the divotd fleet-attestation daemon: it owns a
// divot.System of protected buses, monitors each on its own jittered
// interval, escalates alerts through per-bus reactors, and serves health,
// metrics (Prometheus text format), per-bus alert history, and on-demand
// authentication over HTTP. Telemetry flows from the engine through one
// fanned-out sink into the metrics registry, the JSONL audit log, and the
// daemon's alert rings.
//
// The package is a library (cmd/divotd is a thin wrapper around Main) so the
// divotherd federation aggregator can construct in-process daemon packs in
// its tests and benchmarks.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"divot"
	"divot/internal/attest"
	"divot/internal/rng"
	"divot/internal/store"
	"divot/internal/telemetry"
)

// alertRingCap bounds each bus's in-memory alert history; older entries fall
// off (the audit log keeps everything). It is also the stream resume window:
// a subscriber reconnecting with ?after= older than the ring tail continues
// from the oldest retained event.
const alertRingCap = 128

// streamQueueCap bounds each event-stream subscriber's queue; a subscriber
// that cannot keep up loses events (counted on the bus) rather than stalling
// the fleet.
const streamQueueCap = 256

// defaultHeartbeat is the idle keep-alive period of the event stream.
const defaultHeartbeat = 5 * time.Second

// Daemon is the running fleet.
type Daemon struct {
	spec  Spec
	sys   *divot.System
	reg   *divot.MetricsRegistry
	audit *divot.AuditLog
	// auditFile is closed (after a final flush) at shutdown when the audit
	// log writes to a file.
	auditFile *os.File

	links []*linkState
	byID  map[string]*linkState

	roundDur   *telemetry.HistogramVec
	overruns   *telemetry.CounterVec
	shardDepth *telemetry.GaugeVec
	cacheHits  *telemetry.CounterVec
	cacheMiss  *telemetry.CounterVec
	storeErrs  *telemetry.CounterVec

	// Stream-subscriber accounting, shared by the binary /v1/stream and the
	// legacy SSE per-link feeds: live subscriber count, and how the bounded
	// per-subscriber queues degraded under overload.
	streamSubs      *telemetry.Gauge
	streamCoalesced *telemetry.Counter
	streamDropped   *telemetry.Counter

	// backend persists enrollment snapshots, the score-history WAL, and the
	// segmented audit log when the spec names a state_dir (nil otherwise —
	// the daemon is then fully in-memory, the original semantics). specHash
	// binds every snapshot to the seed+config that produced it.
	backend  store.Backend
	specHash string
	// ownBackend marks a backend this daemon opened itself (from
	// spec.StateDir) and must close at shutdown; injected backends belong to
	// the caller.
	ownBackend bool

	// ready flips once every bus is calibrated or warm-restored; until then
	// every route except /readyz and /metrics answers 503 with a Retry-After
	// header. calibratedN/warmN are the /readyz progress counters. warmed
	// makes warmup idempotent (constructors warm eagerly, Run warms lazily).
	ready       atomic.Bool
	calibratedN atomic.Int64
	warmN       atomic.Int64
	warmed      bool

	// maxStale bounds how old a bus's cached attestation view may be and
	// still be served (0 = cache disabled, every request re-measures).
	maxStale time.Duration

	// heartbeat paces the event stream's idle keep-alives (tests shorten it).
	heartbeat time.Duration
	// stop is closed when the daemon begins shutting down; open event
	// streams terminate on it so graceful shutdown is not held hostage by
	// long-lived subscribers.
	stop chan struct{}

	started time.Time
	// listener is set once Run has bound the API socket; Addr exposes it so
	// tests can use ":0".
	listenerMu sync.Mutex
	listener   net.Listener
}

// linkState is one protected bus with its scheduler bookkeeping. mu
// serializes monitoring rounds with on-demand authentication — the engine is
// not safe for concurrent use of one link.
type linkState struct {
	id       string
	mu       sync.Mutex
	link     *divot.Link
	reactor  *divot.Reactor
	interval time.Duration
	jitter   *rng.Stream

	attack      divot.Attack
	attackAfter uint64
	attacked    bool

	rounds atomic.Uint64

	// dirty marks that an attention-worthy event (alert, gate move, health
	// transition, re-enrollment, reaction) changed durable state since the
	// last persisted snapshot. Set by alertSink, drained by monitorOnce —
	// so snapshots are written when state actually moves, not every round.
	dirty atomic.Bool

	// hist is the bus's bounded score-history ring (oldest overwritten) and
	// histBuf the reusable render buffer for its history WAL records;
	// histMu covers both.
	histMu  sync.Mutex
	hist    [histRingCap]attest.HistorySample
	histLen int
	histIdx int
	histBuf []byte

	// events fans the bus's feed out to stream subscribers over bounded
	// queues; its sequence counter is the per-link seq the resume protocol
	// keys on. alerts is the retained history (the resume window), stored
	// in wire form with the same sequence numbers. alertsMu covers both, so
	// ring content and published seqs advance in lockstep.
	events   *telemetry.Bus
	alertsMu sync.Mutex
	alerts   []attest.Event

	// cache is the bus's last attestation view. It is refreshed at the end
	// of every error-free monitoring round and after every real spot
	// check, and invalidated the instant anything attention-worthy happens
	// (alert, gate move, health transition, re-enrollment, monitor error,
	// attack) — so a stale "ok" can never outlive the event that made it
	// wrong. cacheMu nests inside mu (monitorOnce refreshes under both)
	// and is never held across engine calls.
	cacheMu     sync.Mutex
	cacheValid  bool
	cacheAt     time.Time
	cacheReport attest.AuthReport
	cacheHealth attest.LinkHealthView
}

// invalidateCache drops the bus's cached attestation view.
func (ls *linkState) invalidateCache() {
	ls.cacheMu.Lock()
	ls.cacheValid = false
	ls.cacheMu.Unlock()
}

// refreshCache installs a fresh attestation view, stamped now.
func (ls *linkState) refreshCache(rep attest.AuthReport, health attest.LinkHealthView) {
	ls.cacheMu.Lock()
	ls.cacheValid = true
	ls.cacheAt = time.Now()
	ls.cacheReport = rep
	ls.cacheHealth = health
	ls.cacheMu.Unlock()
}

// cached returns the bus's attestation view when it is younger than
// maxStale (false otherwise, including whenever the cache is disabled or
// invalidated).
func (ls *linkState) cached(maxStale time.Duration) (attest.AuthReport, attest.LinkHealthView, bool) {
	if maxStale <= 0 {
		return attest.AuthReport{}, attest.LinkHealthView{}, false
	}
	ls.cacheMu.Lock()
	defer ls.cacheMu.Unlock()
	if !ls.cacheValid || time.Since(ls.cacheAt) > maxStale {
		return attest.AuthReport{}, attest.LinkHealthView{}, false
	}
	return ls.cacheReport, ls.cacheHealth, true
}

// record stamps the per-link sequence number, offers the event to stream
// subscribers, and appends it to the bounded retention ring.
func (ls *linkState) record(ev telemetry.Event) {
	ls.alertsMu.Lock()
	defer ls.alertsMu.Unlock()
	wire := attest.EventFromTelemetry(ev)
	wire.Seq = ls.events.Publish(ev)
	ls.alerts = append(ls.alerts, wire)
	if len(ls.alerts) > alertRingCap {
		ls.alerts = ls.alerts[len(ls.alerts)-alertRingCap:]
	}
}

// snapshotAlerts copies the ring, newest last.
func (ls *linkState) snapshotAlerts() []attest.Event {
	ls.alertsMu.Lock()
	defer ls.alertsMu.Unlock()
	out := make([]attest.Event, len(ls.alerts))
	copy(out, ls.alerts)
	return out
}

// alertSink routes attention-worthy events into the owning bus's ring and
// stream feed, and drops the bus's cached attestation view — every kind it
// passes marks a state change the cache must not outlive.
type alertSink struct{ d *Daemon }

// Emit implements telemetry.Sink.
func (s alertSink) Emit(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.EventAlert, telemetry.EventGate, telemetry.EventHealth,
		telemetry.EventReactor, telemetry.EventMonitorError,
		telemetry.EventAttack, telemetry.EventReenroll:
	default:
		return
	}
	if ls, ok := s.d.byID[ev.Link]; ok {
		ls.invalidateCache()
		ls.dirty.Store(true)
		ls.record(ev)
	}
}

// NewDaemon builds and brings up the fleet described by spec: every bus is
// restored from its enrollment snapshot (when the spec names a state_dir
// holding a valid one) or cold-calibrated before NewDaemon returns, so the
// API never exposes an uncalibrated link.
func NewDaemon(spec Spec) (*Daemon, error) {
	d, err := New(spec)
	if err != nil {
		return nil, err
	}
	if err := d.warmup(); err != nil {
		return nil, err
	}
	return d, nil
}

// New builds the fleet without bringing it up: calibration/restore is
// deferred to Run, which serves /readyz (and 503s everything else) while the
// fleet warms. divotd's main uses it so a 1000-bus cold boot is observable
// instead of a silent multi-second gap before the socket opens.
func New(spec Spec) (*Daemon, error) {
	cfg := divot.DefaultConfig()
	cfg.Engine.Parallelism = spec.Parallelism
	if spec.AuthThreshold > 0 {
		cfg.Engine.AuthThreshold = spec.AuthThreshold
	}
	return newDaemon(spec, cfg, nil)
}

// NewWithConfig is NewDaemon with the engine configuration exposed, so
// benchmarks (here and in cmd/divotherd) can run large fleets on
// deliberately light instruments. The spec's Parallelism is ignored in
// favour of cfg's.
func NewWithConfig(spec Spec, cfg divot.Config) (*Daemon, error) {
	d, err := newDaemon(spec, cfg, nil)
	if err != nil {
		return nil, err
	}
	if err := d.warmup(); err != nil {
		return nil, err
	}
	return d, nil
}

// NewWithStore is NewWithConfig with the persistence backend injected
// (tests use store.Memory; spec.StateDir is ignored). The backend stays
// owned by the caller: the daemon syncs it at shutdown but does not close it.
func NewWithStore(spec Spec, cfg divot.Config, backend store.Backend) (*Daemon, error) {
	d, err := newDaemon(spec, cfg, backend)
	if err != nil {
		return nil, err
	}
	if err := d.warmup(); err != nil {
		return nil, err
	}
	return d, nil
}

// newDaemon builds the daemon without warming the fleet up. When backend is
// nil and the spec names a state_dir, the daemon opens (and owns) the
// embedded file backend there, recovering any torn WAL tails from a crash.
func newDaemon(spec Spec, cfg divot.Config, backend store.Backend) (*Daemon, error) {
	sys := divot.NewSystem(spec.Seed, cfg)

	d := &Daemon{
		spec:      spec,
		sys:       sys,
		reg:       divot.NewMetricsRegistry(),
		byID:      make(map[string]*linkState, len(spec.Buses)),
		heartbeat: defaultHeartbeat,
		stop:      make(chan struct{}),
	}
	hash, err := computeSpecHash(spec.Seed, cfg)
	if err != nil {
		return nil, err
	}
	d.specHash = hash
	if backend == nil && spec.StateDir != "" {
		dir, err := store.OpenDir(spec.StateDir, store.DirOptions{})
		if err != nil {
			return nil, fmt.Errorf("opening state dir: %w", err)
		}
		backend = dir
		d.ownBackend = true
	}
	d.backend = backend

	sinks := []divot.TelemetrySink{divot.NewMetricsSink(d.reg), alertSink{d}}
	if spec.AuditLog != "" {
		f, err := os.Create(spec.AuditLog)
		if err != nil {
			return nil, fmt.Errorf("opening audit log: %w", err)
		}
		d.auditFile = f
		d.audit = divot.NewAuditLog(f).WithClock(time.Now)
		sinks = append(sinks, d.audit)
	} else if d.backend != nil {
		// With a state dir and no flat audit file, the audit trail goes to
		// the backend's segmented log: same rendered lines, but rotation and
		// compaction bound its growth and a torn tail survives a crash.
		d.audit = divot.NewAuditLog(&auditAppender{d: d}).WithClock(time.Now)
		sinks = append(sinks, d.audit)
	}
	sys.SetSink(divot.TelemetryFanout(sinks...))

	d.roundDur = d.reg.Histogram("divot_round_duration_seconds",
		"Wall-clock duration of one monitoring round.",
		telemetry.DurationBuckets, "link")
	d.overruns = d.reg.Counter("divot_scheduler_overruns_total",
		"Rounds that took longer than the bus's monitoring interval.", "link")
	d.shardDepth = d.reg.Gauge("divot_scheduler_shard_depth",
		"Buses due or overdue on a scheduler shard when it starts a round.", "shard")
	d.cacheHits = d.reg.Counter("divot_attest_cache_hits_total",
		"Attestation requests answered from the cached last-round view.", "link")
	d.cacheMiss = d.reg.Counter("divot_attest_cache_misses_total",
		"Attestation requests that re-measured the bus.", "link")
	d.storeErrs = d.reg.Counter("divot_store_errors_total",
		"Durable-state operations that failed (by operation); the daemon keeps running.", "op")
	d.streamSubs = d.reg.Gauge("divot_stream_subscribers",
		"Live event-stream subscribers (binary /v1/stream and legacy SSE).").With()
	d.streamCoalesced = d.reg.Counter("divot_stream_coalesced_total",
		"Periodic events folded into a fresher pending one on a full subscriber queue.").With()
	d.streamDropped = d.reg.Counter("divot_stream_dropped_total",
		"Events lost outright to a full subscriber queue.").With()
	d.maxStale = time.Duration(spec.MaxStalenessMS) * time.Millisecond

	for _, b := range spec.Buses {
		link, err := sys.NewLink(b.ID)
		if err != nil {
			return nil, err
		}
		reactor, err := divot.NewReactor(divot.DefaultReactionPolicy())
		if err != nil {
			return nil, err
		}
		reactor.SetSink(sys.Sink(), b.ID)
		ls := &linkState{
			id:       b.ID,
			link:     link,
			reactor:  reactor,
			interval: time.Duration(spec.interval(b)) * time.Millisecond,
			jitter:   sys.Stream("sched-" + b.ID),
			attack:   buildAttack(sys, b.ID, b.Attack),
			events:   divot.NewTelemetryBus(),
		}
		if b.Attack != nil {
			ls.attackAfter = b.Attack.AfterRounds
		}
		d.links = append(d.links, ls)
		d.byID[b.ID] = ls
	}
	return d, nil
}

// monitorOnce runs one round on a bus: mount the scripted attack when due,
// monitor, feed the reactor, observe the duration.
func (d *Daemon) monitorOnce(ls *linkState) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.attack != nil && !ls.attacked && ls.rounds.Load() >= ls.attackAfter {
		ls.attack.Apply(ls.link.Line)
		ls.attacked = true
		d.sys.Sink().Emit(divot.TelemetryEvent{
			Kind: divot.EventAttack, Link: ls.id,
			Round: ls.link.Rounds(), Detail: ls.attack.Name(),
		})
	} else if ls.attacked {
		// An adaptive adversary paces itself against the monitoring cadence:
		// advance it one step per round once mounted.
		if s, ok := ls.attack.(divot.AttackStepper); ok {
			s.Advance(ls.link.Line)
		}
	}
	start := time.Now()
	alerts, err := ls.link.MonitorOnce()
	d.roundDur.With(ls.id).Observe(time.Since(start).Seconds())
	if err == nil {
		h := ls.link.Health()
		ls.reactor.ObserveHealth(alerts, h)
		d.recordHistory(ls, alerts, h)
		if d.maxStale > 0 {
			// The round just measured both endpoints, so its verdict is a
			// free attestation view: cache it (after the reactor ran, so
			// any invalidation it triggered has already landed).
			ls.refreshCache(reportFromRound(ls, alerts), healthView(ls))
		}
	}
	// Persist the bus's snapshot when this round changed durable state
	// (re-enrollment, gate move, health transition, reaction) — still under
	// ls.mu, so the written state is exactly the round's outcome.
	if d.backend != nil && ls.dirty.Swap(false) {
		d.saveSnapshot(ls, false)
	}
	ls.rounds.Add(1)
}

// reportFromRound condenses one monitoring round into the attestation view
// a spot check would produce, with the same CPU-side acceptance rule as
// Link.Authenticate. Caller holds ls.mu.
func reportFromRound(ls *linkState, alerts []divot.Alert) attest.AuthReport {
	rep := attest.AuthReport{
		ID: ls.id, Accepted: true, Score: 1,
		Health: ls.link.Health().State().String(),
	}
	for _, a := range alerts {
		if a.Side != divot.SideCPU {
			continue
		}
		rep.Accepted = false
		switch a.Kind {
		case divot.AlertAuthFailure:
			rep.Score = a.Score
		case divot.AlertTamper:
			rep.Tampered = true
			rep.TamperPosition = a.Position
		}
	}
	return rep
}

// healthView snapshots one bus's /v1/health entry. Caller holds ls.mu.
func healthView(ls *linkState) attest.LinkHealthView {
	return attest.LinkHealthViews([]divot.LinkHealth{ls.link.Health()})[0]
}

// period draws the next jittered interval for a bus.
func (d *Daemon) period(ls *linkState) time.Duration {
	j := d.spec.JitterFrac
	if j <= 0 {
		return ls.interval
	}
	scale := ls.jitter.Uniform(1-j, 1+j)
	return time.Duration(float64(ls.interval) * scale)
}

// Addr returns the bound API address once Run is listening ("" before).
func (d *Daemon) Addr() string {
	d.listenerMu.Lock()
	defer d.listenerMu.Unlock()
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr().String()
}

// Run serves the fleet until ctx is cancelled (SIGTERM/SIGINT in main), then
// shuts down gracefully: the schedulers drain their in-flight rounds, the
// HTTP server finishes open requests, every bus's snapshot is persisted, and
// the audit log is flushed.
//
// The socket opens before the fleet is warm: a daemon built with New binds,
// serves /readyz (and 503s with Retry-After everywhere else), restores or
// calibrates the fleet, and only then starts the schedulers — so a 1000-bus
// cold boot is observable and a warm boot measurably instant.
func (d *Daemon) Run(ctx context.Context, logw io.Writer) error {
	d.started = time.Now()
	ln, err := net.Listen("tcp", d.spec.Listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", d.spec.Listen, err)
	}
	d.listenerMu.Lock()
	d.listener = ln
	d.listenerMu.Unlock()

	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if err := d.warmup(); err != nil {
		srv.Close() //nolint:errcheck // surfacing the warmup error
		return err
	}

	var wg sync.WaitGroup
	schedCtx, stopSched := context.WithCancel(ctx)
	defer stopSched()
	for i, links := range d.shardLinks() {
		wg.Add(1)
		go func(shard int, links []*linkState) {
			defer wg.Done()
			d.runShard(schedCtx, shard, links)
		}(i, links)
	}
	// Bound what a crash can lose: the audit log and both WALs buffer their
	// appends, so push them to stable storage on a short cadence. Graceful
	// shutdown still does the final flush below; this ticker only matters
	// for the SIGKILL path.
	if d.backend != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-schedCtx.Done():
					return
				case <-t.C:
					if d.audit != nil && d.auditFile == nil {
						if err := d.audit.Flush(); err != nil {
							d.storeErrs.With("flush_audit").Inc()
						}
					}
					if err := d.backend.Sync(); err != nil {
						d.storeErrs.With("sync").Inc()
					}
				}
			}
		}()
	}
	warm := d.warmN.Load()
	fmt.Fprintf(logw, "divotd: %d buses ready (%d restored warm, %d calibrated), serving on %s\n",
		len(d.links), warm, int64(len(d.links))-warm, ln.Addr())

	var runErr error
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			runErr = err
		}
	}

	// Graceful shutdown: stop scheduling, let in-flight rounds finish, tell
	// open event streams to finish (or Shutdown would wait on them forever),
	// then close the server and flush the audit trail.
	stopSched()
	wg.Wait()
	close(d.stop)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && runErr == nil {
		runErr = err
	}
	if d.audit != nil {
		if d.auditFile != nil {
			if err := d.audit.Close(d.auditFile); err != nil && runErr == nil {
				runErr = err
			}
		} else if err := d.audit.Flush(); err != nil && runErr == nil {
			runErr = err
		}
	}
	// Persist the fleet's final state (round counters included) and make the
	// store durable, so the next boot restarts warm exactly where this one
	// stopped. A crash skips all of this — that path is covered by the
	// per-round snapshot writes and the WAL's torn-tail recovery.
	if d.backend != nil {
		d.persistFleet()
		if d.ownBackend {
			if err := d.backend.Close(); err != nil && runErr == nil {
				runErr = err
			}
		} else if err := d.backend.Sync(); err != nil && runErr == nil {
			runErr = err
		}
	}
	fmt.Fprintf(logw, "divotd: shut down after %s\n", time.Since(d.started).Round(time.Millisecond))
	return runErr
}

// sortedLinks returns the fleet in id order.
func (d *Daemon) sortedLinks() []*linkState {
	out := make([]*linkState, len(d.links))
	copy(out, d.links)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
