// Package daemon is the divotd fleet-attestation daemon: it owns a
// divot.System of protected buses, monitors each on its own jittered
// interval, escalates alerts through per-bus reactors, and serves health,
// metrics (Prometheus text format), per-bus alert history, and on-demand
// authentication over HTTP. Telemetry flows from the engine through one
// fanned-out sink into the metrics registry, the JSONL audit log, and the
// daemon's alert rings.
//
// The package is a library (cmd/divotd is a thin wrapper around Main) so the
// divotherd federation aggregator can construct in-process daemon packs in
// its tests and benchmarks.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"divot"
	"divot/internal/attest"
	"divot/internal/pool"
	"divot/internal/rng"
	"divot/internal/telemetry"
)

// alertRingCap bounds each bus's in-memory alert history; older entries fall
// off (the audit log keeps everything). It is also the stream resume window:
// a subscriber reconnecting with ?after= older than the ring tail continues
// from the oldest retained event.
const alertRingCap = 128

// streamQueueCap bounds each event-stream subscriber's queue; a subscriber
// that cannot keep up loses events (counted on the bus) rather than stalling
// the fleet.
const streamQueueCap = 256

// defaultHeartbeat is the idle keep-alive period of the event stream.
const defaultHeartbeat = 5 * time.Second

// Daemon is the running fleet.
type Daemon struct {
	spec  Spec
	sys   *divot.System
	reg   *divot.MetricsRegistry
	audit *divot.AuditLog
	// auditFile is closed (after a final flush) at shutdown when the audit
	// log writes to a file.
	auditFile *os.File

	links []*linkState
	byID  map[string]*linkState

	roundDur   *telemetry.HistogramVec
	overruns   *telemetry.CounterVec
	shardDepth *telemetry.GaugeVec
	cacheHits  *telemetry.CounterVec
	cacheMiss  *telemetry.CounterVec

	// maxStale bounds how old a bus's cached attestation view may be and
	// still be served (0 = cache disabled, every request re-measures).
	maxStale time.Duration

	// heartbeat paces the event stream's idle keep-alives (tests shorten it).
	heartbeat time.Duration
	// stop is closed when the daemon begins shutting down; open event
	// streams terminate on it so graceful shutdown is not held hostage by
	// long-lived subscribers.
	stop chan struct{}

	started time.Time
	// listener is set once Run has bound the API socket; Addr exposes it so
	// tests can use ":0".
	listenerMu sync.Mutex
	listener   net.Listener
}

// linkState is one protected bus with its scheduler bookkeeping. mu
// serializes monitoring rounds with on-demand authentication — the engine is
// not safe for concurrent use of one link.
type linkState struct {
	id       string
	mu       sync.Mutex
	link     *divot.Link
	reactor  *divot.Reactor
	interval time.Duration
	jitter   *rng.Stream

	attack      divot.Attack
	attackAfter uint64
	attacked    bool

	rounds atomic.Uint64

	// events fans the bus's feed out to stream subscribers over bounded
	// queues; its sequence counter is the per-link seq the resume protocol
	// keys on. alerts is the retained history (the resume window), stored
	// in wire form with the same sequence numbers. alertsMu covers both, so
	// ring content and published seqs advance in lockstep.
	events   *telemetry.Bus
	alertsMu sync.Mutex
	alerts   []attest.Event

	// cache is the bus's last attestation view. It is refreshed at the end
	// of every error-free monitoring round and after every real spot
	// check, and invalidated the instant anything attention-worthy happens
	// (alert, gate move, health transition, re-enrollment, monitor error,
	// attack) — so a stale "ok" can never outlive the event that made it
	// wrong. cacheMu nests inside mu (monitorOnce refreshes under both)
	// and is never held across engine calls.
	cacheMu     sync.Mutex
	cacheValid  bool
	cacheAt     time.Time
	cacheReport attest.AuthReport
	cacheHealth attest.LinkHealthView
}

// invalidateCache drops the bus's cached attestation view.
func (ls *linkState) invalidateCache() {
	ls.cacheMu.Lock()
	ls.cacheValid = false
	ls.cacheMu.Unlock()
}

// refreshCache installs a fresh attestation view, stamped now.
func (ls *linkState) refreshCache(rep attest.AuthReport, health attest.LinkHealthView) {
	ls.cacheMu.Lock()
	ls.cacheValid = true
	ls.cacheAt = time.Now()
	ls.cacheReport = rep
	ls.cacheHealth = health
	ls.cacheMu.Unlock()
}

// cached returns the bus's attestation view when it is younger than
// maxStale (false otherwise, including whenever the cache is disabled or
// invalidated).
func (ls *linkState) cached(maxStale time.Duration) (attest.AuthReport, attest.LinkHealthView, bool) {
	if maxStale <= 0 {
		return attest.AuthReport{}, attest.LinkHealthView{}, false
	}
	ls.cacheMu.Lock()
	defer ls.cacheMu.Unlock()
	if !ls.cacheValid || time.Since(ls.cacheAt) > maxStale {
		return attest.AuthReport{}, attest.LinkHealthView{}, false
	}
	return ls.cacheReport, ls.cacheHealth, true
}

// record stamps the per-link sequence number, offers the event to stream
// subscribers, and appends it to the bounded retention ring.
func (ls *linkState) record(ev telemetry.Event) {
	ls.alertsMu.Lock()
	defer ls.alertsMu.Unlock()
	wire := attest.EventFromTelemetry(ev)
	wire.Seq = ls.events.Publish(ev)
	ls.alerts = append(ls.alerts, wire)
	if len(ls.alerts) > alertRingCap {
		ls.alerts = ls.alerts[len(ls.alerts)-alertRingCap:]
	}
}

// snapshotAlerts copies the ring, newest last.
func (ls *linkState) snapshotAlerts() []attest.Event {
	ls.alertsMu.Lock()
	defer ls.alertsMu.Unlock()
	out := make([]attest.Event, len(ls.alerts))
	copy(out, ls.alerts)
	return out
}

// alertSink routes attention-worthy events into the owning bus's ring and
// stream feed, and drops the bus's cached attestation view — every kind it
// passes marks a state change the cache must not outlive.
type alertSink struct{ d *Daemon }

// Emit implements telemetry.Sink.
func (s alertSink) Emit(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.EventAlert, telemetry.EventGate, telemetry.EventHealth,
		telemetry.EventReactor, telemetry.EventMonitorError,
		telemetry.EventAttack, telemetry.EventReenroll:
	default:
		return
	}
	if ls, ok := s.d.byID[ev.Link]; ok {
		ls.invalidateCache()
		ls.record(ev)
	}
}

// NewDaemon builds and calibrates the fleet described by spec. Every bus is
// enrolled before the daemon starts serving, so the API never exposes an
// uncalibrated link.
func NewDaemon(spec Spec) (*Daemon, error) {
	cfg := divot.DefaultConfig()
	cfg.Engine.Parallelism = spec.Parallelism
	return newDaemon(spec, cfg)
}

// NewWithConfig is NewDaemon with the engine configuration exposed, so
// benchmarks (here and in cmd/divotherd) can run large fleets on
// deliberately light instruments. The spec's Parallelism is ignored in
// favour of cfg's.
func NewWithConfig(spec Spec, cfg divot.Config) (*Daemon, error) {
	return newDaemon(spec, cfg)
}

// newDaemon is NewDaemon with the engine configuration exposed.
func newDaemon(spec Spec, cfg divot.Config) (*Daemon, error) {
	sys := divot.NewSystem(spec.Seed, cfg)

	d := &Daemon{
		spec:      spec,
		sys:       sys,
		reg:       divot.NewMetricsRegistry(),
		byID:      make(map[string]*linkState, len(spec.Buses)),
		heartbeat: defaultHeartbeat,
		stop:      make(chan struct{}),
	}
	sinks := []divot.TelemetrySink{divot.NewMetricsSink(d.reg), alertSink{d}}
	if spec.AuditLog != "" {
		f, err := os.Create(spec.AuditLog)
		if err != nil {
			return nil, fmt.Errorf("opening audit log: %w", err)
		}
		d.auditFile = f
		d.audit = divot.NewAuditLog(f).WithClock(time.Now)
		sinks = append(sinks, d.audit)
	}
	sys.SetSink(divot.TelemetryFanout(sinks...))

	d.roundDur = d.reg.Histogram("divot_round_duration_seconds",
		"Wall-clock duration of one monitoring round.",
		telemetry.DurationBuckets, "link")
	d.overruns = d.reg.Counter("divot_scheduler_overruns_total",
		"Rounds that took longer than the bus's monitoring interval.", "link")
	d.shardDepth = d.reg.Gauge("divot_scheduler_shard_depth",
		"Buses due or overdue on a scheduler shard when it starts a round.", "shard")
	d.cacheHits = d.reg.Counter("divot_attest_cache_hits_total",
		"Attestation requests answered from the cached last-round view.", "link")
	d.cacheMiss = d.reg.Counter("divot_attest_cache_misses_total",
		"Attestation requests that re-measured the bus.", "link")
	d.maxStale = time.Duration(spec.MaxStalenessMS) * time.Millisecond

	for _, b := range spec.Buses {
		link, err := sys.NewLink(b.ID)
		if err != nil {
			return nil, err
		}
		reactor, err := divot.NewReactor(divot.DefaultReactionPolicy())
		if err != nil {
			return nil, err
		}
		reactor.SetSink(sys.Sink(), b.ID)
		ls := &linkState{
			id:       b.ID,
			link:     link,
			reactor:  reactor,
			interval: time.Duration(spec.interval(b)) * time.Millisecond,
			jitter:   sys.Stream("sched-" + b.ID),
			attack:   buildAttack(sys, b.ID, b.Attack),
			events:   divot.NewTelemetryBus(),
		}
		if b.Attack != nil {
			ls.attackAfter = b.Attack.AfterRounds
		}
		d.links = append(d.links, ls)
		d.byID[b.ID] = ls
	}
	if err := d.calibrateFleet(); err != nil {
		return nil, err
	}
	return d, nil
}

// calibrateFleet enrolls every bus, running the calibrations concurrently
// under the engine's parallelism bound. Each link's telemetry is buffered in
// a private recorder for the duration and drained into the shared sink in
// spec order afterwards, so startup produces the same audit-log byte
// sequence at every worker count.
func (d *Daemon) calibrateFleet() error {
	shared := d.sys.Sink()
	errs := make([]error, len(d.links))
	recs := make([]*divot.TelemetryRecorder, len(d.links))
	for i, ls := range d.links {
		recs[i] = &divot.TelemetryRecorder{}
		ls.link.SetSink(recs[i])
	}
	pool.Run(len(d.links), pool.Workers(d.sys.Config().Engine.Parallelism), func(_, i int) {
		errs[i] = d.links[i].link.Calibrate()
	})
	for i, ls := range d.links {
		ls.link.SetSink(shared)
		recs[i].DrainTo(shared)
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("calibrating bus %q: %w", d.links[i].id, err)
		}
	}
	return nil
}

// monitorOnce runs one round on a bus: mount the scripted attack when due,
// monitor, feed the reactor, observe the duration.
func (d *Daemon) monitorOnce(ls *linkState) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.attack != nil && !ls.attacked && ls.rounds.Load() >= ls.attackAfter {
		ls.attack.Apply(ls.link.Line)
		ls.attacked = true
		d.sys.Sink().Emit(divot.TelemetryEvent{
			Kind: divot.EventAttack, Link: ls.id,
			Round: ls.link.Rounds(), Detail: ls.attack.Name(),
		})
	}
	start := time.Now()
	alerts, err := ls.link.MonitorOnce()
	d.roundDur.With(ls.id).Observe(time.Since(start).Seconds())
	if err == nil {
		ls.reactor.ObserveHealth(alerts, ls.link.Health())
		if d.maxStale > 0 {
			// The round just measured both endpoints, so its verdict is a
			// free attestation view: cache it (after the reactor ran, so
			// any invalidation it triggered has already landed).
			ls.refreshCache(reportFromRound(ls, alerts), healthView(ls))
		}
	}
	ls.rounds.Add(1)
}

// reportFromRound condenses one monitoring round into the attestation view
// a spot check would produce, with the same CPU-side acceptance rule as
// Link.Authenticate. Caller holds ls.mu.
func reportFromRound(ls *linkState, alerts []divot.Alert) attest.AuthReport {
	rep := attest.AuthReport{
		ID: ls.id, Accepted: true, Score: 1,
		Health: ls.link.Health().State().String(),
	}
	for _, a := range alerts {
		if a.Side != divot.SideCPU {
			continue
		}
		rep.Accepted = false
		switch a.Kind {
		case divot.AlertAuthFailure:
			rep.Score = a.Score
		case divot.AlertTamper:
			rep.Tampered = true
			rep.TamperPosition = a.Position
		}
	}
	return rep
}

// healthView snapshots one bus's /v1/health entry. Caller holds ls.mu.
func healthView(ls *linkState) attest.LinkHealthView {
	return attest.LinkHealthViews([]divot.LinkHealth{ls.link.Health()})[0]
}

// period draws the next jittered interval for a bus.
func (d *Daemon) period(ls *linkState) time.Duration {
	j := d.spec.JitterFrac
	if j <= 0 {
		return ls.interval
	}
	scale := ls.jitter.Uniform(1-j, 1+j)
	return time.Duration(float64(ls.interval) * scale)
}

// Addr returns the bound API address once Run is listening ("" before).
func (d *Daemon) Addr() string {
	d.listenerMu.Lock()
	defer d.listenerMu.Unlock()
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr().String()
}

// Run serves the fleet until ctx is cancelled (SIGTERM/SIGINT in main), then
// shuts down gracefully: the schedulers drain their in-flight rounds, the
// HTTP server finishes open requests, and the audit log is flushed.
func (d *Daemon) Run(ctx context.Context, logw io.Writer) error {
	d.started = time.Now()
	ln, err := net.Listen("tcp", d.spec.Listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", d.spec.Listen, err)
	}
	d.listenerMu.Lock()
	d.listener = ln
	d.listenerMu.Unlock()

	var wg sync.WaitGroup
	schedCtx, stopSched := context.WithCancel(ctx)
	defer stopSched()
	for i, links := range d.shardLinks() {
		wg.Add(1)
		go func(shard int, links []*linkState) {
			defer wg.Done()
			d.runShard(schedCtx, shard, links)
		}(i, links)
	}

	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(logw, "divotd: %d buses calibrated, serving on %s\n", len(d.links), ln.Addr())

	var runErr error
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			runErr = err
		}
	}

	// Graceful shutdown: stop scheduling, let in-flight rounds finish, tell
	// open event streams to finish (or Shutdown would wait on them forever),
	// then close the server and flush the audit trail.
	stopSched()
	wg.Wait()
	close(d.stop)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && runErr == nil {
		runErr = err
	}
	if d.audit != nil {
		if d.auditFile != nil {
			if err := d.audit.Close(d.auditFile); err != nil && runErr == nil {
				runErr = err
			}
		} else if err := d.audit.Flush(); err != nil && runErr == nil {
			runErr = err
		}
	}
	fmt.Fprintf(logw, "divotd: shut down after %s\n", time.Since(d.started).Round(time.Millisecond))
	return runErr
}

// sortedLinks returns the fleet in id order.
func (d *Daemon) sortedLinks() []*linkState {
	out := make([]*linkState, len(d.links))
	copy(out, d.links)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
