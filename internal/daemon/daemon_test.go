package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"divot/internal/attest"
)

// getData fetches a URL and unwraps the v1 envelope into out.
func getData(t *testing.T, url string, out any) {
	t.Helper()
	if err := attest.ParseBody(get(t, url), out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// writeSpec drops a spec file into a temp dir.
func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// get fetches a URL and returns the body.
func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestDaemonEndToEnd runs the acceptance scenario: a three-bus fleet
// monitored concurrently, a scripted interposer inserted on one bus after two
// rounds. The attacked bus must raise alerts, transition health, and close a
// gate — visible through /v1/links, /v1/links/{id}/alerts and /metrics —
// while the other buses keep authenticating. Cancellation (the SIGTERM path)
// must shut the daemon down cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	spec, err := LoadSpec(writeSpec(t, `{
		"seed": 42,
		"listen": "127.0.0.1:0",
		"interval_ms": 5,
		"jitter_frac": 0.2,
		"buses": [
			{"id": "dimm0"},
			{"id": "dimm1", "attack": {"kind": "interposer", "after_rounds": 2, "position": 0.1}},
			{"id": "dimm2"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx, io.Discard) }()
	t.Cleanup(cancel)

	// Wait for the listener, then for the attack to land and be confirmed.
	var base string
	for deadline := time.Now().Add(5 * time.Second); ; {
		if addr := d.Addr(); addr != "" {
			base = "http://" + addr
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never started listening")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var views []attest.LinkSummary
	deadline := time.Now().Add(30 * time.Second)
	for {
		var lr attest.LinksResponse
		getData(t, base+"/v1/links", &lr)
		views = lr.Links
		byID := make(map[string]attest.LinkSummary)
		for _, v := range views {
			byID[v.ID] = v
		}
		if v := byID["dimm1"]; v.Health == "failed" && !v.CPUGate {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("interposer never detected; views: %+v", views)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The clean buses must still be authenticating with open gates.
	// ("degraded" — benign dead-bin masking at reduced resolution — still
	// authenticates; only "failed" means the bus stopped passing.)
	for _, v := range views {
		if v.ID == "dimm1" {
			continue
		}
		if v.Health == "failed" || !v.CPUGate || !v.ModuleGate {
			t.Errorf("clean bus %s failed alongside the attack: %+v", v.ID, v)
		}
	}

	// The attacked bus's alert ring must show the alert and the health
	// transition.
	var er attest.EventsResponse
	getData(t, base+"/v1/links/dimm1/alerts", &er)
	alerts := er.Events
	var sawAlert, sawHealth, sawGate bool
	for _, a := range alerts {
		switch a.Kind {
		case "alert":
			sawAlert = true
		case "health":
			if a.To == "failed" {
				sawHealth = true
			}
		case "gate":
			if a.To == "closed" {
				sawGate = true
			}
		}
	}
	if !sawAlert || !sawHealth || !sawGate {
		t.Fatalf("alert ring missing events: alert=%v health=%v gate=%v\n%+v",
			sawAlert, sawHealth, sawGate, alerts)
	}

	// Metrics must show the alert counter for dimm1, round counters for
	// every bus, and the closed gate. Polled: the gauges converge a round or
	// two after the view does, so a single scrape can race a transient.
	wantMetrics := []string{
		`divot_alerts_total{link="dimm1"`,
		`divot_rounds_total{link="dimm0"`,
		`divot_rounds_total{link="dimm2"`,
		`divot_gate_open{link="dimm1",side="cpu"} 0`,
		`divot_round_duration_seconds_bucket{link="dimm1"`,
	}
	for deadline := time.Now().Add(10 * time.Second); ; {
		metrics := string(get(t, base+"/metrics"))
		missing := ""
		for _, want := range wantMetrics {
			if !strings.Contains(metrics, want) {
				missing = want
				break
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("metrics never showed %q", missing)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// On-demand authentication against the attacked bus must reject.
	resp, err := http.Post(base+"/v1/links/dimm1/authenticate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var auth attest.AuthReport
	if err := attest.ParseBody(body, &auth); err != nil {
		t.Fatal(err)
	}
	if auth.Accepted {
		t.Error("interposed bus passed on-demand authentication")
	}

	// Unknown bus → 404 with the documented error code in the envelope.
	r404, err := http.Get(base + "/v1/links/nope/alerts")
	if err != nil {
		t.Fatal(err)
	}
	body404, _ := io.ReadAll(r404.Body)
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown bus status = %d, want 404", r404.StatusCode)
	}
	if perr := attest.ParseBody(body404, nil); perr == nil ||
		!strings.Contains(perr.Error(), attest.CodeUnknownLink) {
		t.Errorf("unknown bus error = %v, want %s envelope", perr, attest.CodeUnknownLink)
	}

	// Graceful shutdown: cancel (the SIGTERM path) and wait for Run.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s")
	}
}

// TestDaemonAuditLog checks the audit file exists, is flushed at shutdown,
// and carries well-formed JSON lines with wall-clock stamps.
func TestDaemonAuditLog(t *testing.T) {
	auditPath := filepath.Join(t.TempDir(), "audit.jsonl")
	spec, err := LoadSpec(writeSpec(t, fmt.Sprintf(`{
		"seed": 7,
		"listen": "127.0.0.1:0",
		"interval_ms": 5,
		"audit_log": %q,
		"buses": [{"id": "bus0"}]
	}`, auditPath)))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx, io.Discard) }()

	// Let a few rounds land, then stop.
	for deadline := time.Now().Add(15 * time.Second); d.byID["bus0"].rounds.Load() < 3; {
		if time.Now().After(deadline) {
			t.Fatal("no rounds completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 {
		t.Fatalf("audit log has %d lines, want several", len(lines))
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("audit line %d is not JSON: %v\n%s", i+1, err, line)
		}
		if _, ok := rec["wall"]; !ok {
			t.Fatalf("audit line %d has no wall-clock stamp: %s", i+1, line)
		}
		if _, ok := rec["kind"]; !ok {
			t.Fatalf("audit line %d has no kind: %s", i+1, line)
		}
	}
}
