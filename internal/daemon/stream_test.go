package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"divot"
	"divot/internal/attest"
)

// newTestDaemon builds a calibrated daemon without running schedulers, so
// tests drive rounds synchronously via monitorOnce.
func newTestDaemon(t *testing.T, specBody string) *Daemon {
	t.Helper()
	spec, err := LoadSpec(writeSpec(t, specBody))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// postAttest POSTs a body to /v1/attest and returns status and raw body.
func postAttest(t *testing.T, base, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/attest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestAttestEndpoint(t *testing.T) {
	d := newTestDaemon(t, `{
		"seed": 9, "listen": "127.0.0.1:0",
		"buses": [{"id": "dimm1"}, {"id": "dimm0"}]
	}`)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Empty body → whole fleet, results in id order, all accepted.
	status, raw := postAttest(t, srv.URL, "")
	if status != http.StatusOK {
		t.Fatalf("whole-fleet attest status = %d: %s", status, raw)
	}
	var resp attest.AttestResponse
	if err := attest.ParseBody(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.AllAccepted || len(resp.Results) != 2 {
		t.Fatalf("clean fleet attest = %+v", resp)
	}
	if resp.Results[0].ID != "dimm0" || resp.Results[1].ID != "dimm1" {
		t.Errorf("whole-fleet results not in id order: %+v", resp.Results)
	}
	for _, rep := range resp.Results {
		if !rep.Accepted || rep.Score < 0.9 || rep.Health != "ok" {
			t.Errorf("clean bus report: %+v", rep)
		}
	}

	// Named subset, request order preserved.
	status, raw = postAttest(t, srv.URL, `{"links": ["dimm1"]}`)
	if status != http.StatusOK {
		t.Fatalf("subset attest status = %d: %s", status, raw)
	}
	if err := attest.ParseBody(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != "dimm1" {
		t.Errorf("subset attest = %+v", resp)
	}

	// Unknown bus → 404 unknown_link envelope.
	status, raw = postAttest(t, srv.URL, `{"links": ["ghost"]}`)
	if status != http.StatusNotFound {
		t.Errorf("unknown bus status = %d", status)
	}
	if err := attest.ParseBody(raw, nil); err == nil ||
		!strings.Contains(err.Error(), attest.CodeUnknownLink) {
		t.Errorf("unknown bus error = %v", err)
	}

	// Malformed body → 400 bad_request envelope.
	status, raw = postAttest(t, srv.URL, `{"links": 7}`)
	if status != http.StatusBadRequest {
		t.Errorf("bad body status = %d", status)
	}
	if err := attest.ParseBody(raw, nil); err == nil ||
		!strings.Contains(err.Error(), attest.CodeBadRequest) {
		t.Errorf("bad body error = %v", err)
	}
}

// TestAttestDetectsInterposer drives a scripted interposer through monitoring
// rounds and requires the batch attest endpoint to reject the attacked bus
// while accepting the clean one.
func TestAttestDetectsInterposer(t *testing.T) {
	d := newTestDaemon(t, `{
		"seed": 21, "listen": "127.0.0.1:0",
		"buses": [
			{"id": "clean0"},
			{"id": "victim", "attack": {"kind": "interposer", "after_rounds": 0, "position": 0.1}}
		]
	}`)
	for i := 0; i < 4; i++ { // mount the attack and let it be confirmed
		d.monitorOnce(d.byID["victim"])
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	status, raw := postAttest(t, srv.URL, "")
	if status != http.StatusOK {
		t.Fatalf("attest status = %d: %s", status, raw)
	}
	var resp attest.AttestResponse
	if err := attest.ParseBody(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.AllAccepted {
		t.Error("fleet with interposed bus reported all_accepted")
	}
	byID := map[string]attest.AuthReport{}
	for _, rep := range resp.Results {
		byID[rep.ID] = rep
	}
	if rep := byID["victim"]; rep.Accepted {
		t.Errorf("interposed bus accepted: %+v", rep)
	}
	if rep := byID["clean0"]; !rep.Accepted {
		t.Errorf("clean bus rejected: %+v", rep)
	}
}

func TestFleetHealthEndpoint(t *testing.T) {
	d := newTestDaemon(t, `{
		"seed": 5, "listen": "127.0.0.1:0",
		"buses": [{"id": "a"}, {"id": "b"}]
	}`)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var hr attest.FleetHealthResponse
	getData(t, srv.URL+"/v1/health", &hr)
	if len(hr.Links) != 2 {
		t.Fatalf("fleet health links = %+v", hr.Links)
	}
	for _, h := range hr.Links {
		if h.State != "ok" || h.CPU.State != "ok" || h.Module.State != "ok" {
			t.Errorf("calibrated bus health: %+v", h)
		}
	}
}

// TestFleetHealthEmptyEncodesEmptyList is the daemon-level regression for
// System.HealthAll returning nil: a fleet with nothing calibrated must
// encode "links": [], never null.
func TestFleetHealthEmptyEncodesEmptyList(t *testing.T) {
	sys := divot.NewSystem(1, divot.DefaultConfig())
	if _, err := sys.NewLink("raw"); err != nil { // registered, never calibrated
		t.Fatal(err)
	}
	d := &Daemon{sys: sys, heartbeat: defaultHeartbeat, stop: make(chan struct{})}
	d.ready.Store(true) // hand-built daemon: skip the warmup gate
	rec := httptest.NewRecorder()
	d.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if bytes.Contains(rec.Body.Bytes(), []byte(`"links": null`)) {
		t.Fatalf("uncalibrated fleet encoded null: %s", rec.Body.String())
	}
	var hr attest.FleetHealthResponse
	if err := attest.ParseBody(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Links == nil || len(hr.Links) != 0 {
		t.Errorf("links = %#v, want empty non-nil", hr.Links)
	}
}

// sseClient reads server-sent event frames off a stream.
type sseClient struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func openStream(t *testing.T, base, id string, after uint64) *sseClient {
	t.Helper()
	url := base + "/v1/links/" + id + "/events"
	if after > 0 {
		url += "?after=" + jsonNumber(after)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	return &sseClient{resp: resp, sc: bufio.NewScanner(resp.Body)}
}

func jsonNumber(n uint64) string {
	raw, _ := json.Marshal(n)
	return string(raw)
}

// next returns the next event frame, skipping heartbeats. ok is false at
// stream end.
func (c *sseClient) next(t *testing.T) (attest.Event, bool) {
	t.Helper()
	var data []byte
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && data != nil:
			var ev attest.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				t.Fatalf("bad SSE data %s: %v", data, err)
			}
			return ev, true
		}
	}
	return attest.Event{}, false
}

func (c *sseClient) close() { c.resp.Body.Close() }

// TestEventsStreamReplayResumeAndShutdown covers the stream protocol at the
// daemon: ring replay on connect, resume via ?after, live delivery, and
// termination when the daemon shuts down.
func TestEventsStreamReplayResumeAndShutdown(t *testing.T) {
	d := newTestDaemon(t, `{
		"seed": 33, "listen": "127.0.0.1:0",
		"buses": [{"id": "victim", "attack": {"kind": "interposer", "after_rounds": 0, "position": 0.12}}]
	}`)
	d.heartbeat = 20 * time.Millisecond
	ls := d.byID["victim"]
	for i := 0; i < 4; i++ { // generate attack/alert/health/gate events
		d.monitorOnce(ls)
	}
	retained := ls.snapshotAlerts()
	if len(retained) < 3 {
		t.Fatalf("expected several retained events, got %+v", retained)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Full replay: seqs are 1..n, strictly monotonic, matching the ring.
	c := openStream(t, srv.URL, "victim", 0)
	for i := range retained {
		ev, ok := c.next(t)
		if !ok {
			t.Fatalf("stream ended after %d of %d replayed events", i, len(retained))
		}
		if ev.Seq != retained[i].Seq || ev.Kind != retained[i].Kind {
			t.Fatalf("replay[%d] = %+v, want %+v", i, ev, retained[i])
		}
	}
	c.close()

	// Resume skips everything at or before ?after.
	after := retained[1].Seq
	c = openStream(t, srv.URL, "victim", after)
	ev, ok := c.next(t)
	if !ok || ev.Seq != retained[2].Seq {
		t.Fatalf("resume after %d delivered %+v, want seq %d", after, ev, retained[2].Seq)
	}

	// Live delivery: another round's events arrive on the open stream.
	last := retained[len(retained)-1].Seq
	for ; ok && ev.Seq < last; ev, ok = c.next(t) {
	}
	done := make(chan struct{})
	go func() { d.monitorOnce(ls); close(done) }()
	liveEv, ok := c.next(t)
	if !ok || liveEv.Seq <= last {
		t.Fatalf("no live event after replay: %+v ok=%v", liveEv, ok)
	}
	<-done

	// Shutdown: closing d.stop must end the stream promptly.
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(d.stop)
	}()
	for {
		if _, ok := c.next(t); !ok {
			break
		}
	}
	c.close()

	// Bad after parameter → 400 envelope.
	resp, err := http.Get(srv.URL + "/v1/links/victim/events?after=nope")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad after status = %d", resp.StatusCode)
	}
	if perr := attest.ParseBody(raw, nil); perr == nil ||
		!strings.Contains(perr.Error(), attest.CodeBadRequest) {
		t.Errorf("bad after error = %v", perr)
	}
}
