package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"divot/internal/attest"
)

// handleAttest serves batch remote attestation: one read-only spot check per
// requested bus (every bus when the request names none), serialized with
// each bus's scheduler. The results come back in request order — fleet id
// order for the whole-fleet form — so retries of the same request are
// byte-comparable.
func (d *Daemon) handleAttest(w http.ResponseWriter, r *http.Request) {
	// An empty body is the whole-fleet request; anything else must be a
	// well-formed AttestRequest.
	var req attest.AttestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		attest.WriteError(w, attest.CodeBadRequest, "parsing attest request: %v", err)
		return
	}
	var targets []*linkState
	if len(req.Links) == 0 {
		targets = d.sortedLinks()
	} else {
		targets = make([]*linkState, 0, len(req.Links))
		for _, id := range req.Links {
			ls, ok := d.byID[id]
			if !ok {
				attest.WriteError(w, attest.CodeUnknownLink, "unknown bus %q", id)
				return
			}
			targets = append(targets, ls)
		}
	}
	resp := attest.AttestResponse{
		Results:     make([]attest.AuthReport, 0, len(targets)),
		AllAccepted: true,
	}
	for _, ls := range targets {
		rep := d.attestOne(ls)
		if !rep.Accepted {
			resp.AllAccepted = false
		}
		resp.Results = append(resp.Results, rep)
	}
	attest.WriteData(w, http.StatusOK, resp)
}

// handleEvents serves one bus's live event feed as server-sent events. The
// frame format and the per-link sequence numbers are documented in
// internal/attest; ?after=N resumes past events the client has already seen.
// Replay comes from the retention ring, live delivery from a bounded
// per-subscriber queue on the bus's telemetry bus — a subscriber that cannot
// keep up loses events rather than stalling the fleet, and re-syncs by
// reconnecting with its last seen sequence number.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	ls, ok := d.lookup(w, r)
	if !ok {
		return
	}
	after := uint64(0)
	if raw := r.URL.Query().Get("after"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			attest.WriteError(w, attest.CodeBadRequest, "bad after=%q: %v", raw, err)
			return
		}
		after = n
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		attest.WriteError(w, attest.CodeInternal, "response writer cannot stream")
		return
	}

	d.streamSubs.Add(1)
	defer d.streamSubs.Add(-1)

	// Subscribe before snapshotting the ring: every event is then either in
	// the snapshot or on the queue (possibly both — deduplicated by seq).
	sub := ls.events.Subscribe(streamQueueCap)
	defer sub.Close()
	replay := ls.snapshotAlerts()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	last := after
	for _, ev := range replay {
		if ev.Seq <= last {
			continue
		}
		writeSSE(w, ev)
		last = ev.Seq
	}
	fl.Flush()

	heartbeat := time.NewTicker(d.heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-d.stop:
			// Daemon shutting down; the client reconnects elsewhere (or
			// later) with ?after=last.
			fmt.Fprintf(w, ": shutdown\n\n")
			fl.Flush()
			return
		case <-heartbeat.C:
			fmt.Fprintf(w, ": hb\n\n")
			fl.Flush()
		case tev, open := <-sub.Events():
			if !open {
				return
			}
			if tev.Seq <= last {
				continue
			}
			wire := attest.EventFromTelemetry(tev)
			writeSSE(w, wire)
			last = wire.Seq
			fl.Flush()
		}
	}
}

// writeSSE renders one event frame. The data line is single-line by
// construction: encoding/json escapes newlines inside strings.
func writeSSE(w http.ResponseWriter, ev attest.Event) {
	raw, err := json.Marshal(ev)
	if err != nil {
		return // can't happen for a flat struct of basic types
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, raw)
}
