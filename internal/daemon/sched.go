package daemon

import (
	"container/heap"
	"context"
	"runtime"
	"strconv"
	"time"
)

// The fleet scheduler is a fixed pool of shard goroutines, each driving its
// subset of buses off a min-heap of due times. The goroutine count is bound
// by SchedulerShards (default one per CPU) instead of growing with the
// fleet, so a 1000-bus spec runs on a handful of goroutines. Per-bus
// semantics are unchanged from the old goroutine-per-bus loop: each period
// is the bus interval spread by ±JitterFrac (drawn from the bus's own
// labelled stream, so the sequence is reproducible), and a round that
// overruns its period is counted and becomes due again immediately — per-bus
// backpressure rather than an unbounded queue. An overdue bus re-enters the
// heap at "now", so its shard siblings that are also due still interleave
// rather than starve.

// shardCount resolves the scheduler goroutine bound for this fleet.
func (d *Daemon) shardCount() int {
	n := d.spec.SchedulerShards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(d.links) {
		n = len(d.links)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// shardLinks deals the fleet round-robin, in spec order, onto shardCount
// shards.
func (d *Daemon) shardLinks() [][]*linkState {
	shards := make([][]*linkState, d.shardCount())
	for i, ls := range d.links {
		shards[i%len(shards)] = append(shards[i%len(shards)], ls)
	}
	return shards
}

// shardEntry is one scheduled bus on a shard's heap.
type shardEntry struct {
	ls  *linkState
	due time.Time
}

// shardQueue is a min-heap of scheduled buses, earliest due first.
type shardQueue []shardEntry

func (q shardQueue) Len() int           { return len(q) }
func (q shardQueue) Less(i, j int) bool { return q[i].due.Before(q[j].due) }
func (q shardQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *shardQueue) Push(x any)        { *q = append(*q, x.(shardEntry)) }
func (q *shardQueue) Pop() any {
	old := *q
	e := old[len(old)-1]
	*q = old[:len(old)-1]
	return e
}

// backlog counts buses due at or before now — the shard's instantaneous
// depth, exported as divot_scheduler_shard_depth.
func (q shardQueue) backlog(now time.Time) int {
	n := 0
	for _, e := range q {
		if !e.due.After(now) {
			n++
		}
	}
	return n
}

// runShard drives one shard's buses until ctx is done: sleep until the
// earliest due bus, run its round, reschedule it, repeat.
func (d *Daemon) runShard(ctx context.Context, shard int, links []*linkState) {
	if len(links) == 0 {
		return
	}
	depth := d.shardDepth.With(strconv.Itoa(shard))
	q := make(shardQueue, 0, len(links))
	now := time.Now()
	for _, ls := range links {
		q = append(q, shardEntry{ls: ls, due: now.Add(d.period(ls))})
	}
	heap.Init(&q)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		if wait := time.Until(q[0].due); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
		} else {
			// Back-to-back rounds must still observe cancellation.
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
		start := time.Now()
		depth.Set(float64(q.backlog(start)))
		ls := q[0].ls
		d.monitorOnce(ls)
		period := d.period(ls)
		due := start.Add(period)
		if took := time.Since(start); took >= period {
			d.overruns.With(ls.id).Inc()
			due = time.Now()
		}
		// Only this goroutine touches the heap, so the root entry is still
		// ours: restamp it in place and sift.
		q[0].due = due
		heap.Fix(&q, 0)
	}
}
