package daemon

import (
	"net/http"
	"time"

	"divot"
	"divot/internal/attest"
)

// view snapshots a bus under its lock.
func (d *Daemon) view(ls *linkState) attest.LinkSummary {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	h := ls.link.Health()
	return attest.LinkSummary{
		ID:         ls.id,
		Rounds:     ls.link.Rounds(),
		Health:     h.State().String(),
		Reaction:   ls.reactor.State().String(),
		CPUGate:    ls.link.CPU.Gate.Authorized(),
		ModuleGate: ls.link.Module.Gate.Authorized(),
		CPUScore:   h.CPU.LastScore,
		Alerts:     len(ls.link.Alerts),
	}
}

// Handler returns the daemon's HTTP API. It is exposed (rather than buried in
// Run) so tests can drive the API through httptest without binding a socket.
// Every JSON response travels in the attest v1 envelope; the wire schema
// lives in internal/attest, shared with the divot/client SDK.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /v1/health", d.handleFleetHealth)
	mux.HandleFunc("GET /v1/links", d.handleLinks)
	mux.HandleFunc("GET /v1/links/{id}/alerts", d.handleAlerts)
	mux.HandleFunc("GET /v1/links/{id}/history", d.handleHistory)
	mux.HandleFunc("GET /v1/links/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /v1/stream", d.handleStream)
	mux.HandleFunc("POST /v1/links/{id}/authenticate", d.handleAuthenticate)
	mux.HandleFunc("POST /v1/attest", d.handleAttest)
	return d.gateReady(mux)
}

// gateReady rejects requests while the fleet is still warming up (restore or
// calibration in progress). Only /readyz — the progress report itself — and
// /metrics pass through; everything else answers 503 with a Retry-After
// header so well-behaved clients (the SDK honors it) back off instead of
// hammering a booting daemon.
func (d *Daemon) gateReady(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !d.ready.Load() {
			switch r.URL.Path {
			case "/readyz", "/metrics":
			default:
				w.Header().Set("Retry-After", "1")
				attest.WriteError(w, attest.CodeUnavailable,
					"daemon warming up: %d/%d buses ready",
					d.calibratedN.Load(), len(d.links))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// lookup resolves the {id} path segment, answering 404 itself on a miss.
func (d *Daemon) lookup(w http.ResponseWriter, r *http.Request) (*linkState, bool) {
	id := r.PathValue("id")
	ls, ok := d.byID[id]
	if !ok {
		attest.WriteError(w, attest.CodeUnknownLink, "unknown bus %q", id)
	}
	return ls, ok
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// The daemon is healthy when every scheduler can still take a bus lock —
	// which the per-link views below already prove by snapshotting. fleet_ok
	// means every bus still authenticates: "degraded" (benign dead-bin
	// masking at reduced resolution) still passes; only "failed" does not.
	fleetOK := true
	for _, ls := range d.links {
		if d.view(ls).Health == divot.HealthFailed.String() {
			fleetOK = false
		}
	}
	attest.WriteData(w, http.StatusOK, attest.HealthView{
		Status:       "ok",
		Buses:        len(d.links),
		FleetOK:      fleetOK,
		UptimeS:      time.Since(d.started).Seconds(),
		FederationID: d.spec.FederationID,
	})
}

// handleReadyz reports startup progress. It answers 200 from the moment the
// socket binds — readiness is in the payload, not the status code — so
// orchestration (and daemon_smoke.sh) polls one URL whether the fleet is
// restoring in milliseconds or calibrating for a minute.
func (d *Daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	attest.WriteData(w, http.StatusOK, attest.ReadyView{
		Ready:      d.ready.Load(),
		Calibrated: int(d.calibratedN.Load()),
		WarmLoaded: int(d.warmN.Load()),
		Total:      len(d.links),
	})
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	d.reg.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
}

// handleFleetHealth serves the full per-endpoint condition of every
// calibrated bus. With the attestation cache enabled, buses whose cached
// view is fresh are reported from it and only the stale ones are locked and
// snapshotted; with the cache disabled (max_staleness_ms 0) the whole fleet
// is locked and snapshotted between rounds, the original semantics.
// System.HealthAll guarantees a non-nil slice, so an all-uncalibrated fleet
// encodes "links": [] (regression-tested — it used to render null).
func (d *Daemon) handleFleetHealth(w http.ResponseWriter, _ *http.Request) {
	if d.maxStale > 0 {
		views := make([]attest.LinkHealthView, 0, len(d.links))
		for _, ls := range d.sortedLinks() {
			_, hv, ok := ls.cached(d.maxStale)
			if !ok {
				ls.mu.Lock()
				hv = healthView(ls)
				ls.mu.Unlock()
			}
			views = append(views, hv)
		}
		attest.WriteData(w, http.StatusOK, attest.FleetHealthResponse{
			FederationID: d.spec.FederationID, Links: views,
		})
		return
	}
	for _, ls := range d.links {
		ls.mu.Lock() // snapshot between rounds, not mid-round
	}
	views := attest.LinkHealthViews(d.sys.HealthAll())
	for _, ls := range d.links {
		ls.mu.Unlock()
	}
	attest.WriteData(w, http.StatusOK, attest.FleetHealthResponse{
		FederationID: d.spec.FederationID, Links: views,
	})
}

func (d *Daemon) handleLinks(w http.ResponseWriter, _ *http.Request) {
	views := make([]attest.LinkSummary, 0, len(d.links))
	for _, ls := range d.sortedLinks() {
		views = append(views, d.view(ls))
	}
	attest.WriteData(w, http.StatusOK, attest.LinksResponse{Links: views})
}

func (d *Daemon) handleAlerts(w http.ResponseWriter, r *http.Request) {
	ls, ok := d.lookup(w, r)
	if !ok {
		return
	}
	events := ls.snapshotAlerts()
	attest.WriteData(w, http.StatusOK, attest.EventsResponse{Link: ls.id, Events: events})
}

func (d *Daemon) handleHistory(w http.ResponseWriter, r *http.Request) {
	ls, ok := d.lookup(w, r)
	if !ok {
		return
	}
	attest.WriteData(w, http.StatusOK, attest.HistoryResponse{
		Link: ls.id, Samples: ls.snapshotHistory(),
	})
}

func (d *Daemon) handleAuthenticate(w http.ResponseWriter, r *http.Request) {
	ls, ok := d.lookup(w, r)
	if !ok {
		return
	}
	attest.WriteData(w, http.StatusOK, d.attestOne(ls))
}

// attestOne answers one bus's attestation. When the bus's cached last-round
// view is younger than the spec's max_staleness_ms bound it is served
// directly — no bus lock, no measurement; otherwise (and always when the
// cache is disabled) a read-only spot check runs, serialized with the
// scheduler (the engine is not safe for concurrent rounds on one link), and
// its result becomes the new cached view.
func (d *Daemon) attestOne(ls *linkState) attest.AuthReport {
	if rep, _, ok := ls.cached(d.maxStale); ok {
		d.cacheHits.With(ls.id).Inc()
		rep.Cached = true
		return rep
	}
	d.cacheMiss.With(ls.id).Inc()
	ls.mu.Lock()
	res := ls.link.Authenticate()
	rep := attest.AuthReport{
		ID:             ls.id,
		Accepted:       res.Accepted,
		Score:          res.Score,
		Tampered:       res.Tampered,
		TamperPosition: res.TamperPosition,
		Health:         ls.link.Health().State().String(),
	}
	hv := healthView(ls)
	ls.mu.Unlock()
	if d.maxStale > 0 {
		ls.refreshCache(rep, hv)
	}
	return rep
}
