package daemon

import (
	"bytes"
	"testing"

	"divot/internal/store"
)

// coldStartSnapshots cold-calibrates a small fleet at the given
// calib_parallelism into a fresh in-memory backend and returns every bus's
// persisted enrollment snapshot payload, keyed by bus id.
func coldStartSnapshots(t *testing.T, calib int) map[string][]byte {
	t.Helper()
	spec := benchSpec(6, 0)
	spec.CalibParallelism = calib
	backend := store.NewMemory()
	d, err := NewWithStore(spec, lightConfig(), backend)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(d.calibratedN.Load()); got != len(spec.Buses) {
		t.Fatalf("calibrated %d/%d buses at calib_parallelism %d", got, len(spec.Buses), calib)
	}
	out := make(map[string][]byte, len(spec.Buses))
	for _, bus := range spec.Buses {
		raw, err := backend.LoadSnapshot(bus.ID, d.specHash)
		if err != nil {
			t.Fatalf("snapshot for %s at calib_parallelism %d: %v", bus.ID, calib, err)
		}
		out[bus.ID] = raw
	}
	return out
}

// TestCalibParallelismSnapshotInvariance pins the fleet-level determinism
// contract end to end: a cold start at calib_parallelism 1 and one at 8
// persist byte-identical enrollment snapshots for every bus (the store
// envelope hashes the payload, so byte equality here is hash equality
// there). The knob may only move wall clock, never what the fleet enrolled
// as — a spec tuned for a 4-core edge box and a 64-core rack produce
// interchangeable state directories.
func TestCalibParallelismSnapshotInvariance(t *testing.T) {
	sequential := coldStartSnapshots(t, 1)
	parallel := coldStartSnapshots(t, 8)
	if len(sequential) != len(parallel) {
		t.Fatalf("bus counts differ: %d vs %d", len(sequential), len(parallel))
	}
	for id, want := range sequential {
		got, ok := parallel[id]
		if !ok {
			t.Errorf("bus %s missing from parallel cold start", id)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("bus %s: snapshot at calib_parallelism 8 differs from 1 (%d vs %d bytes)",
				id, len(want), len(got))
		}
	}
	// And the spec hash itself must not depend on the knob: snapshots taken
	// at one setting must load under another.
	specA := benchSpec(1, 0)
	specA.CalibParallelism = 1
	specB := benchSpec(1, 0)
	specB.CalibParallelism = 8
	da, err := NewWithStore(specA, lightConfig(), store.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewWithStore(specB, lightConfig(), store.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	if da.specHash != db.specHash {
		t.Errorf("spec hash depends on calib_parallelism: %s vs %s", da.specHash, db.specHash)
	}
}
