package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCleanRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		got, v := Decode(data, Encode(data))
		return got == data && v == Clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSingleDataBitCorrected(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		data := r.Uint64()
		check := Encode(data)
		bit := r.Intn(64)
		corrupted := data ^ (1 << bit)
		got, v := Decode(corrupted, check)
		if v != Corrected {
			t.Fatalf("data %x bit %d: verdict %v", data, bit, v)
		}
		if got != data {
			t.Fatalf("data %x bit %d: corrected to %x", data, bit, got)
		}
	}
}

func TestEverySingleDataBitCorrected(t *testing.T) {
	data := uint64(0xDEADBEEFCAFEF00D)
	check := Encode(data)
	for bit := 0; bit < 64; bit++ {
		got, v := Decode(data^(1<<bit), check)
		if v != Corrected || got != data {
			t.Fatalf("bit %d: verdict %v, data %x", bit, v, got)
		}
	}
}

func TestSingleCheckBitCorrected(t *testing.T) {
	data := uint64(0x0123456789ABCDEF)
	for bit := 0; bit < 8; bit++ {
		w := NewWord(data)
		w.FlipCheckBit(bit)
		got, v := w.Read()
		if v != Corrected || got != data {
			t.Fatalf("check bit %d: verdict %v, data %x", bit, v, got)
		}
	}
}

func TestDoubleBitDetected(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		data := r.Uint64()
		check := Encode(data)
		b1 := r.Intn(64)
		b2 := r.Intn(64)
		for b2 == b1 {
			b2 = r.Intn(64)
		}
		corrupted := data ^ (1 << b1) ^ (1 << b2)
		_, v := Decode(corrupted, check)
		if v != Detected {
			t.Fatalf("data %x bits %d,%d: verdict %v (double error missed)", data, b1, b2, v)
		}
	}
}

func TestDataPlusCheckBitDetectedOrCorrected(t *testing.T) {
	// One data bit + one check bit flipped: SECDED guarantees detection
	// (it may not correct). Verify the decoder never silently returns
	// wrong data as Clean.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		data := r.Uint64()
		w := NewWord(data)
		w.FlipDataBit(r.Intn(64))
		w.FlipCheckBit(r.Intn(8))
		got, v := w.Read()
		if v == Clean {
			t.Fatalf("double error (data+check) decoded as clean")
		}
		if v == Corrected && got != data {
			t.Fatalf("miscorrection: %x → %x", data, got)
		}
	}
}

func TestWordHelpers(t *testing.T) {
	w := NewWord(42)
	if d, v := w.Read(); d != 42 || v != Clean {
		t.Fatalf("fresh word read %v %v", d, v)
	}
	w.FlipDataBit(5)
	if d, v := w.Read(); d != 42 || v != Corrected {
		t.Fatalf("after flip: %v %v", d, v)
	}
	for name, f := range map[string]func(){
		"data":  func() { w.FlipDataBit(64) },
		"check": func() { w.FlipCheckBit(8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestVerdictString(t *testing.T) {
	if Clean.String() != "clean" || Corrected.String() != "corrected" ||
		Detected.String() != "detected-uncorrectable" || Verdict(9).String() == "" {
		t.Error("verdict names")
	}
}

func TestCheckBitsDifferAcrossData(t *testing.T) {
	// Sanity: the code actually depends on the data.
	if Encode(0) == Encode(1) {
		t.Error("check bits identical for different data")
	}
	if Encode(0) != Encode(0) {
		t.Error("encoding not deterministic")
	}
}
