// Package ecc implements the single-error-correcting, double-error-detecting
// Hamming code used by (72,64) ECC DRAM. The paper's introduction frames
// DIVOT as the security analogue of ECC — redundant circuits working in
// parallel with normal accesses — and its related work (SYNERGY, Morphable
// Counters) repurposes exactly this machinery, so the memory substrate
// carries a real implementation.
package ecc

import "fmt"

// CheckBits is the redundancy for one 64-bit word: 7 Hamming parity bits
// plus one overall parity bit.
type CheckBits uint8

// Verdict classifies a decode.
type Verdict int

const (
	// Clean: no error.
	Clean Verdict = iota
	// Corrected: a single-bit error was repaired (in data or check bits).
	Corrected
	// Detected: a double-bit error was detected but cannot be repaired.
	Detected
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Clean:
		return "clean"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected-uncorrectable"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// codeBits is the (72,64) word length: positions 1..72, with parity bits at
// the seven powers of two and the overall parity stored separately.
const codeBits = 72

// isPow2 reports whether p is a power of two.
func isPow2(p int) bool { return p&(p-1) == 0 }

// dataPositions lists the code positions (1-based) holding data bits, in
// data-bit order (bit 0 of the word goes to the first non-power-of-2
// position).
var dataPositions = func() []int {
	pos := make([]int, 0, 64)
	for p := 1; p <= codeBits; p++ {
		if !isPow2(p) {
			pos = append(pos, p)
		}
	}
	if len(pos) != 65 {
		// Positions 1..72 contain 7 powers of two (1,2,4,8,16,32,64),
		// leaving 65 slots; we use the first 64 for data and leave the
		// last unused (the (72,64) shortened code).
		panic("ecc: internal position accounting error")
	}
	return pos[:64]
}()

// Encode computes the check bits for a 64-bit data word.
func Encode(data uint64) CheckBits {
	var hamming uint8
	var overall uint8
	for i, p := range dataPositions {
		bit := uint8(data>>i) & 1
		if bit == 0 {
			continue
		}
		overall ^= 1
		for k := 0; k < 7; k++ {
			if p&(1<<k) != 0 {
				hamming ^= 1 << k
			}
		}
	}
	// Parity bits contribute to the overall parity too.
	for k := 0; k < 7; k++ {
		overall ^= (hamming >> k) & 1
	}
	return CheckBits(hamming | overall<<7)
}

// Decode validates (and where possible repairs) a data word against its
// stored check bits. It returns the corrected data and the verdict.
func Decode(data uint64, stored CheckBits) (uint64, Verdict) {
	fresh := Encode(data)
	syndrome := uint8(fresh^stored) & 0x7F
	// The SECDED discriminator is the parity of the *received* word —
	// data bits plus stored check bits. Even parity means zero or two
	// errors; odd means one (or three). Recomputing the overall bit from
	// the data alone would fold the syndrome's weight into the decision
	// and misclassify half of all double errors.
	total := parity64(data) ^ parity8(uint8(stored))

	switch {
	case syndrome == 0 && total == 0:
		return data, Clean
	case syndrome == 0 && total == 1:
		// The overall parity bit itself flipped; data is intact.
		return data, Corrected
	case total == 1:
		// Single-bit error at position `syndrome`.
		pos := int(syndrome)
		if pos > codeBits {
			return data, Detected
		}
		if isPow2(pos) {
			// A Hamming check bit flipped; data is intact.
			return data, Corrected
		}
		for i, p := range dataPositions {
			if p == pos {
				return data ^ (1 << i), Corrected
			}
		}
		// The unused shortened slot: no valid single-bit explanation.
		return data, Detected
	default:
		// Nonzero syndrome with even total parity: double error.
		return data, Detected
	}
}

// parity64 returns the XOR of all bits of v.
func parity64(v uint64) uint8 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return uint8(v) & 1
}

// parity8 returns the XOR of all bits of v.
func parity8(v uint8) uint8 {
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// Word pairs a 64-bit data word with its check bits — one stored ECC unit.
type Word struct {
	Data  uint64
	Check CheckBits
}

// NewWord encodes data into a stored word.
func NewWord(data uint64) Word {
	return Word{Data: data, Check: Encode(data)}
}

// FlipDataBit injects a data-bit error (bit index 0..63).
func (w *Word) FlipDataBit(i int) {
	if i < 0 || i >= 64 {
		panic(fmt.Sprintf("ecc: data bit %d out of range", i))
	}
	w.Data ^= 1 << i
}

// FlipCheckBit injects a check-bit error (bit index 0..7).
func (w *Word) FlipCheckBit(i int) {
	if i < 0 || i >= 8 {
		panic(fmt.Sprintf("ecc: check bit %d out of range", i))
	}
	w.Check ^= 1 << i
}

// Read decodes the stored word.
func (w Word) Read() (uint64, Verdict) { return Decode(w.Data, w.Check) }
