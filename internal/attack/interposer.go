package attack

import (
	"divot/internal/txline"
)

// Interposer is the man-in-the-middle attack: the bus is cut and an active
// device (a bus analyzer, a malicious repeater) is inserted mid-span. The
// interposer's input network is impedance-matched — the attacker's best
// effort at invisibility — but from the iTDR's viewpoint everything beyond
// the cut changes: the genuine line's inhomogeneity pattern past that point
// is replaced by the interposer's flat input, so authentication collapses
// even though the interposer forwards data perfectly.
type Interposer struct {
	// Position is the cut location in meters from the source.
	Position float64
	// InputZ is the interposer's input impedance (50 Ω for a careful
	// attacker).
	InputZ float64

	restore func()
}

// DefaultInterposer returns a carefully matched interposer at the given
// position.
func DefaultInterposer(position float64) *Interposer {
	return &Interposer{Position: position, InputZ: 50}
}

// Name implements Attack.
func (a *Interposer) Name() string { return "interposer" }

// Apply cuts the line and inserts the device.
func (a *Interposer) Apply(l *txline.Line) {
	if a.restore != nil {
		return
	}
	a.restore = l.ReplaceTail(a.Position, a.InputZ)
}

// Remove unplugs the interposer and reconnects the original remainder.
// (Unlike a wire tap, a connectorized insertion point can be undone; a
// soldered one would leave scars — compose with WireTap for that variant.)
func (a *Interposer) Remove(*txline.Line) {
	if a.restore == nil {
		return
	}
	a.restore()
	a.restore = nil
}
