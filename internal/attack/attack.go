// Package attack models the physical attacks the paper evaluates against
// DIVOT (§IV-D/E/F): load modification (Trojan chip insertion, cold-boot
// module handling), wire-tapping, and magnetic near-field probing, plus the
// module/bus swap scenarios of the memory-protection design (§III). Every
// attack perturbs a txline.Line the way the corresponding physical act
// disturbs a real trace's impedance profile.
package attack

import (
	"fmt"

	"divot/internal/rng"
	"divot/internal/txline"
)

// Attack is a reversible physical manipulation of a transmission line.
type Attack interface {
	// Name identifies the attack class.
	Name() string
	// Apply mounts the attack on the line.
	Apply(l *txline.Line)
	// Remove withdraws the attack. Some attacks (wire-tapping) leave
	// permanent damage behind — Remove models the physical act of
	// detaching, not a restoration of the original line.
	Remove(l *txline.Line)
}

// LoadModification replaces the chip terminating the bus — a Trojan chip
// swap, or the re-insertion games of a cold-boot attack. Even a same-model
// replacement chip has a different input impedance (chip-to-chip spread), so
// the IIP changes abruptly at the load (§IV-D).
type LoadModification struct {
	// NewTermination is the replacement chip's input impedance. Use
	// txline.DrawTermination to model a same-model-number replacement.
	NewTermination float64

	original float64
	applied  bool
}

// SameModelReplacement builds a LoadModification whose replacement chip is
// drawn from the same impedance distribution as the original — the paper's
// exact experiment ("replacing the receiver chip with a different chip
// (same model number)").
func SameModelReplacement(cfg txline.Config, stream *rng.Stream) *LoadModification {
	return &LoadModification{NewTermination: txline.DrawTermination(cfg, stream)}
}

// Name implements Attack.
func (a *LoadModification) Name() string { return "load-modification" }

// Apply swaps the termination chip.
func (a *LoadModification) Apply(l *txline.Line) {
	if a.applied {
		return
	}
	a.original = l.Termination()
	l.SetTermination(a.NewTermination)
	a.applied = true
}

// Remove reinstalls the original chip.
func (a *LoadModification) Remove(l *txline.Line) {
	if !a.applied {
		return
	}
	l.SetTermination(a.original)
	a.applied = false
}

// WireTap solders a tapping wire onto the trace after scratching the solder
// mask (§IV-E). The stub is a severe local impedance drop; detaching the
// wire leaves a scar — the paper found the IIP "permanently destroyed and
// non-reversible" at the tap point.
type WireTap struct {
	// Position is the tap location in meters from the source.
	Position float64
	// TapDeltaZ is the impedance change the attached stub causes
	// (strongly negative: the stub loads the trace capacitively).
	TapDeltaZ float64
	// ScarDeltaZ is the residual change left after the wire is removed
	// (scratched mask, leftover solder).
	ScarDeltaZ float64
	// Extent is the physical size of the disturbance.
	Extent float64
}

// DefaultWireTap returns the paper's oscilloscope-tap experiment at the
// given position.
func DefaultWireTap(position float64) *WireTap {
	return &WireTap{Position: position, TapDeltaZ: -18, ScarDeltaZ: -2.5, Extent: 1.5e-3}
}

// Name implements Attack.
func (a *WireTap) Name() string { return "wire-tap" }

func (a *WireTap) tapKey() string  { return fmt.Sprintf("wiretap-%p", a) }
func (a *WireTap) scarKey() string { return fmt.Sprintf("wiretap-scar-%p", a) }

// Apply solders the tap on. The scar is inflicted immediately — scratching
// the mask precedes soldering.
func (a *WireTap) Apply(l *txline.Line) {
	l.ApplyPerturbation(a.scarKey(), txline.Perturbation{
		Position: a.Position, Extent: a.Extent, DeltaZ: a.ScarDeltaZ,
		Kind: txline.KindCapacitive,
	})
	l.ApplyPerturbation(a.tapKey(), txline.Perturbation{
		Position: a.Position, Extent: a.Extent, DeltaZ: a.TapDeltaZ,
		Kind: txline.KindCapacitive,
	})
}

// Remove detaches the wire but the scar remains: the line never returns to
// its enrolled fingerprint.
func (a *WireTap) Remove(l *txline.Line) {
	l.RemovePerturbation(a.tapKey())
}

// MagneticProbe is a non-contact near-field probe held over the trace
// (§IV-F). Eddy currents in the probe oppose the trace's magnetic field,
// adding mutual inductance and raising the local impedance slightly — the
// weakest signature of the three attack classes, and the one that sets the
// detection threshold.
type MagneticProbe struct {
	// Position is the probe location in meters from the source.
	Position float64
	// DeltaZ is the local impedance rise from the induced mutual
	// inductance (small and positive).
	DeltaZ float64
	// Extent is the footprint of the probe head.
	Extent float64
}

// DefaultMagneticProbe returns a typical near-field probe at the given
// position.
func DefaultMagneticProbe(position float64) *MagneticProbe {
	return &MagneticProbe{Position: position, DeltaZ: 1.5, Extent: 5e-3}
}

// Name implements Attack.
func (a *MagneticProbe) Name() string { return "magnetic-probe" }

func (a *MagneticProbe) key() string { return fmt.Sprintf("magprobe-%p", a) }

// Apply holds the probe over the trace.
func (a *MagneticProbe) Apply(l *txline.Line) {
	l.ApplyPerturbation(a.key(), txline.Perturbation{
		Position: a.Position, Extent: a.Extent, DeltaZ: a.DeltaZ,
		Kind: txline.KindInductive,
	})
}

// Remove lifts the probe away; non-contact probing leaves no residue.
func (a *MagneticProbe) Remove(l *txline.Line) {
	l.RemovePerturbation(a.key())
}
