package attack

import (
	"fmt"

	"divot/internal/txline"
)

// Stepper is implemented by attacks that evolve between monitoring rounds —
// adaptive adversaries that pace their physical manipulation against the
// defender's observation cadence. Callers that mount a scripted attack (the
// divotd scheduler, the experiment harness) call Advance once per round after
// Apply; static attacks simply don't implement it.
type Stepper interface {
	// Advance evolves the mounted attack by one monitoring round.
	Advance(l *txline.Line)
}

// AdaptiveTap is the adaptive adversary of ROADMAP item 4: a tap whose
// loading is introduced gradually, a fraction of an ohm per monitoring round,
// instead of the abrupt −18 Ω dent of a WireTap. The attacker's theory is
// that each round's similarity decay stays inside the drift the re-enrollment
// policy tolerates, so the defender refreshes its enrolled fingerprint around
// the growing tap and launders the attack into the baseline. The
// countermeasures under test are the refresh guards (a tap is *localized* —
// MaxContrast — and its per-round decay can exceed MaxStep) and the reactor's
// anti-ratchet rule (absorbed-transient rounds never count toward recovery).
type AdaptiveTap struct {
	// Position is the tap location in meters from the source.
	Position float64
	// Extent is the physical size of the disturbance.
	Extent float64
	// RatePerRound is how much impedance change each Advance adds (negative:
	// the tap loads the trace capacitively). Small magnitudes hide inside
	// the re-enrollment window; large ones converge toward a plain WireTap.
	RatePerRound float64
	// FinalDeltaZ is the full tap loading the attacker needs to read the
	// bus; drifting stops once reached.
	FinalDeltaZ float64

	current float64
	applied bool
}

// DefaultAdaptiveTap returns a patient attacker at the given position:
// the full −18 Ω wire-tap loading approached at −0.25 Ω per monitoring
// round (72 rounds to full depth).
func DefaultAdaptiveTap(position float64) *AdaptiveTap {
	return &AdaptiveTap{
		Position:     position,
		Extent:       1.5e-3,
		RatePerRound: -0.25,
		FinalDeltaZ:  -18,
	}
}

// Name implements Attack.
func (a *AdaptiveTap) Name() string { return "adaptive-tap" }

func (a *AdaptiveTap) key() string { return fmt.Sprintf("adaptivetap-%p", a) }

// Apply attaches the tap at its first, barely-there increment.
func (a *AdaptiveTap) Apply(l *txline.Line) {
	if a.applied {
		return
	}
	a.applied = true
	a.current = 0
	a.Advance(l)
}

// Advance implements Stepper: deepen the tap by one round's increment,
// saturating at FinalDeltaZ.
func (a *AdaptiveTap) Advance(l *txline.Line) {
	if !a.applied {
		return
	}
	a.current += a.RatePerRound
	// Saturate at the target depth for either drift direction.
	if (a.RatePerRound < 0 && a.current < a.FinalDeltaZ) ||
		(a.RatePerRound > 0 && a.current > a.FinalDeltaZ) {
		a.current = a.FinalDeltaZ
	}
	l.ApplyPerturbation(a.key(), txline.Perturbation{
		Position: a.Position, Extent: a.Extent, DeltaZ: a.current,
		Kind: txline.KindCapacitive,
	})
}

// DeltaZ reports the tap's current loading in ohms.
func (a *AdaptiveTap) DeltaZ() float64 { return a.current }

// Remove lifts the tap. The slow version is attached without scratching the
// mask (the attacker has time to work a connector loose), so unlike WireTap
// no scar remains.
func (a *AdaptiveTap) Remove(l *txline.Line) {
	if !a.applied {
		return
	}
	l.RemovePerturbation(a.key())
	a.applied = false
	a.current = 0
}
