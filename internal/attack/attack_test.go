package attack

import (
	"math"
	"testing"

	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

const (
	rate = 89.6e9
	bins = 343
)

func newLine(seed uint64) *txline.Line {
	return txline.New("L", txline.DefaultConfig(), rng.New(seed))
}

func reflect(l *txline.Line) *signal.Waveform {
	return l.Reflect(txline.DefaultProbe(), 0, 1, rate, bins)
}

// errPeak returns the peak squared difference between two reflections and
// the round-trip time at which it occurs.
func errPeak(a, b *signal.Waveform) (float64, float64) {
	d := signal.Sub(a, b)
	for i, v := range d.Samples {
		d.Samples[i] = v * v
	}
	idx, v := signal.PeakIndex(d)
	return v, d.TimeOf(idx)
}

func TestLoadModificationChangesLoadOnly(t *testing.T) {
	l := newLine(1)
	before := reflect(l)
	a := &LoadModification{NewTermination: l.Termination() + 8}
	a.Apply(l)
	if a.Name() != "load-modification" {
		t.Errorf("Name = %q", a.Name())
	}
	after := reflect(l)
	peak, at := errPeak(before, after)
	if peak == 0 {
		t.Fatal("load modification produced no IIP change")
	}
	rt := l.RoundTripTime()
	if at < rt-0.2e-9 || at > rt+0.5e-9 {
		t.Errorf("load change peak at %v, want near round trip %v", at, rt)
	}
	// Fully reversible: the original chip restores the IIP exactly.
	a.Remove(l)
	restored := reflect(l)
	peak, _ = errPeak(before, restored)
	if peak != 0 {
		t.Errorf("load modification not reversible: residual %v", peak)
	}
	// Double apply/remove are idempotent: the original termination is
	// preserved across redundant calls.
	orig := l.Termination()
	a.Remove(l)
	a.Apply(l)
	a.Apply(l)
	a.Remove(l)
	if l.Termination() != orig {
		t.Errorf("idempotence violated: termination %v, want %v", l.Termination(), orig)
	}
}

func TestSameModelReplacementDiffers(t *testing.T) {
	cfg := txline.DefaultConfig()
	l := txline.New("L", cfg, rng.New(2))
	a := SameModelReplacement(cfg, rng.New(3).Child("chip"))
	if a.NewTermination == l.Termination() {
		t.Error("replacement chip should have a different impedance")
	}
	if math.Abs(a.NewTermination-cfg.TerminationZ) > 6*cfg.TerminationSpreadRMS {
		t.Errorf("replacement impedance %v implausible", a.NewTermination)
	}
}

func TestWireTapSevereAndPermanent(t *testing.T) {
	l := newLine(4)
	before := reflect(l)
	pos := 0.08
	tap := DefaultWireTap(pos)
	if tap.Name() != "wire-tap" {
		t.Errorf("Name = %q", tap.Name())
	}
	tap.Apply(l)
	tapped := reflect(l)
	tapPeak, at := errPeak(before, tapped)
	wantAt := l.PositionToTime(pos)
	if math.Abs(at-wantAt) > 0.3e-9 {
		t.Errorf("tap localized at %v, want ~%v", at, wantAt)
	}

	// Detach the wire: the scar persists and remains detectable at the
	// same place, though weaker than the live tap.
	tap.Remove(l)
	scarred := reflect(l)
	scarPeak, scarAt := errPeak(before, scarred)
	if scarPeak == 0 {
		t.Fatal("wire tap should leave permanent damage")
	}
	if scarPeak >= tapPeak {
		t.Errorf("scar (%v) should be weaker than live tap (%v)", scarPeak, tapPeak)
	}
	if math.Abs(scarAt-wantAt) > 0.3e-9 {
		t.Errorf("scar at %v, want ~%v", scarAt, wantAt)
	}
}

func TestMagneticProbeWeakestButLocalized(t *testing.T) {
	l := newLine(5)
	before := reflect(l)
	pos := 0.15
	probe := DefaultMagneticProbe(pos)
	if probe.Name() != "magnetic-probe" {
		t.Errorf("Name = %q", probe.Name())
	}
	probe.Apply(l)
	probed := reflect(l)
	probePeak, at := errPeak(before, probed)
	if probePeak == 0 {
		t.Fatal("magnetic probe invisible")
	}
	if math.Abs(at-l.PositionToTime(pos)) > 0.3e-9 {
		t.Errorf("probe at %v, want ~%v", at, l.PositionToTime(pos))
	}

	// Non-contact: fully reversible.
	probe.Remove(l)
	restored := reflect(l)
	if peak, _ := errPeak(before, restored); peak != 0 {
		t.Errorf("magnetic probe left residue %v", peak)
	}

	// Ordering of severity: magnetic probe < wire tap (the paper's
	// threshold argument rests on this).
	l2 := newLine(5)
	ref2 := reflect(l2)
	tap := DefaultWireTap(pos)
	tap.Apply(l2)
	tapPeak, _ := errPeak(ref2, reflect(l2))
	if probePeak >= tapPeak {
		t.Errorf("magnetic probe (%v) should be weaker than wire tap (%v)", probePeak, tapPeak)
	}
}

func TestColdBootSwapPresentsDifferentBus(t *testing.T) {
	cfg := txline.DefaultConfig()
	victim := txline.New("victim-bus", cfg, rng.New(6))
	swap := NewColdBootSwap(cfg, rng.New(7))
	if swap.Name() != "cold-boot-swap" {
		t.Errorf("Name = %q", swap.Name())
	}
	a := reflect(victim)
	b := reflect(swap.BusSeenByModule())
	sim := signal.NormalizedInnerProduct(signal.RemoveMean(a), signal.RemoveMean(b))
	if sim > 0.95 {
		t.Errorf("attacker bus correlates with victim at %v", sim)
	}
}

func TestModuleSwap(t *testing.T) {
	cfg := txline.DefaultConfig()
	l := txline.New("L", cfg, rng.New(8))
	orig := l.Termination()
	swap := NewModuleSwap(cfg, rng.New(9))
	if swap.Name() != "module-swap" {
		t.Errorf("Name = %q", swap.Name())
	}
	swap.Apply(l)
	if l.Termination() == orig {
		t.Error("module swap did not change the load")
	}
	swap.Remove(l)
	if l.Termination() != orig {
		t.Error("module swap not reversible")
	}
}

func TestAttackInterfaceCompliance(t *testing.T) {
	var _ Attack = &LoadModification{NewTermination: 50}
	var _ Attack = DefaultWireTap(0.1)
	var _ Attack = DefaultMagneticProbe(0.1)
	var _ Attack = &ModuleSwap{load: &LoadModification{NewTermination: 50}}
}

func TestInterposerCollapsesTailFingerprint(t *testing.T) {
	l := newLine(20)
	before := reflect(l)
	pos := 0.12
	mitm := DefaultInterposer(pos)
	if mitm.Name() != "interposer" {
		t.Errorf("Name = %q", mitm.Name())
	}
	mitm.Apply(l)
	after := reflect(l)

	// Before the cut, nothing changed. (The cut's own reflection edge has
	// a ~120 ps rise time, so leave ~30 bins of margin before it.)
	cutIdx := int(l.PositionToTime(pos) * rate)
	early := signal.Sub(
		before.Slice(0, cutIdx-30),
		after.Slice(0, cutIdx-30))
	if signal.MaxAbs(early) > 1e-12 {
		t.Errorf("interposer leaked before the cut: %v", signal.MaxAbs(early))
	}
	// Beyond the cut the genuine inhomogeneity is gone: the tail of the
	// difference carries essentially all of the original tail's structure.
	tail := signal.Sub(before, after).Slice(cutIdx+30, bins)
	origTail := before.Slice(cutIdx+30, bins)
	if signal.Energy(tail) < 0.2*signal.Energy(signal.RemoveMean(origTail)) {
		t.Error("interposer should erase the tail inhomogeneity")
	}

	// Removal restores the line exactly (connectorized insertion).
	mitm.Remove(l)
	restored := reflect(l)
	if peak, _ := errPeak(before, restored); peak != 0 {
		t.Errorf("interposer not reversible: %v", peak)
	}
	// Idempotence.
	mitm.Remove(l)
	mitm.Apply(l)
	mitm.Apply(l)
	mitm.Remove(l)
	if peak, _ := errPeak(before, reflect(l)); peak != 0 {
		t.Error("idempotence violated")
	}
}

func TestReplaceTailValidation(t *testing.T) {
	l := newLine(21)
	for name, f := range map[string]func(){
		"pos zero": func() { l.ReplaceTail(0, 50) },
		"pos end":  func() { l.ReplaceTail(l.Config().Length, 50) },
		"bad z":    func() { l.ReplaceTail(0.1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAdaptiveTapDriftsToFullDepth(t *testing.T) {
	l := newLine(22)
	before := reflect(l)
	pos := 0.1
	tap := DefaultAdaptiveTap(pos)
	if tap.Name() != "adaptive-tap" {
		t.Errorf("Name = %q", tap.Name())
	}
	var _ Attack = tap
	var _ Stepper = tap

	// Advancing an unmounted tap is a no-op.
	tap.Advance(l)
	if peak, _ := errPeak(before, reflect(l)); peak != 0 {
		t.Fatal("Advance before Apply perturbed the line")
	}

	tap.Apply(l)
	firstPeak, at := errPeak(before, reflect(l))
	if firstPeak == 0 {
		t.Fatal("freshly mounted adaptive tap invisible")
	}
	if math.Abs(at-l.PositionToTime(pos)) > 0.3e-9 {
		t.Errorf("tap at %v, want ~%v", at, l.PositionToTime(pos))
	}

	// Each round deepens the dent monotonically toward FinalDeltaZ...
	prev := firstPeak
	for i := 0; i < 200; i++ {
		tap.Advance(l)
		peak, _ := errPeak(before, reflect(l))
		if peak < prev {
			t.Fatalf("round %d: tap got shallower (%v -> %v)", i, prev, peak)
		}
		prev = peak
	}
	// ...and saturates there.
	if tap.DeltaZ() != tap.FinalDeltaZ {
		t.Errorf("DeltaZ = %v after 200 rounds, want saturated %v", tap.DeltaZ(), tap.FinalDeltaZ)
	}
	saturated := prev
	tap.Advance(l)
	if peak, _ := errPeak(before, reflect(l)); peak != saturated {
		t.Error("tap kept deepening past FinalDeltaZ")
	}

	// Slow workmanship: removal leaves no residue.
	tap.Remove(l)
	if peak, _ := errPeak(before, reflect(l)); peak != 0 {
		t.Errorf("adaptive tap left residue %v", peak)
	}
	// Idempotent re-apply restarts the drift from scratch.
	tap.Apply(l)
	tap.Apply(l)
	if tap.DeltaZ() != tap.RatePerRound {
		t.Errorf("re-applied tap at %v, want one increment %v", tap.DeltaZ(), tap.RatePerRound)
	}
	tap.Remove(l)
}
