package attack

import (
	"divot/internal/rng"
	"divot/internal/txline"
)

// ColdBootSwap models the cold-boot attack of §III: the attacker removes the
// memory module and installs it in a different computer (or connects it over
// a different bus) to read out remanent data. From the module's iTDR
// perspective the transmission line it sees has been replaced wholesale —
// every reflection changes, not just the termination.
type ColdBootSwap struct {
	// AttackerLine is the bus in the attacker's machine.
	AttackerLine *txline.Line
}

// NewColdBootSwap builds the attacker's machine: a bus of the same nominal
// design (the attacker buys the same board) but with its own intrinsic IIP.
func NewColdBootSwap(cfg txline.Config, stream *rng.Stream) *ColdBootSwap {
	return &ColdBootSwap{AttackerLine: txline.New("attacker-bus", cfg, stream.Child("attacker"))}
}

// Name identifies the attack class.
func (a *ColdBootSwap) Name() string { return "cold-boot-swap" }

// BusSeenByModule returns the line the moved module now observes.
func (a *ColdBootSwap) BusSeenByModule() *txline.Line { return a.AttackerLine }

// ModuleSwap models the complementary CPU-side threat: the genuine memory
// module is replaced by a different (potentially malicious or stale) module
// on the same board. The bus wiring up to the socket is unchanged, but the
// termination — the module's interface chip — differs, so the CPU-side iTDR
// sees a load change.
type ModuleSwap struct {
	load *LoadModification
}

// NewModuleSwap draws the impostor module's interface impedance from the
// same-model distribution.
func NewModuleSwap(cfg txline.Config, stream *rng.Stream) *ModuleSwap {
	return &ModuleSwap{load: SameModelReplacement(cfg, stream)}
}

// Name identifies the attack class.
func (a *ModuleSwap) Name() string { return "module-swap" }

// Apply installs the impostor module.
func (a *ModuleSwap) Apply(l *txline.Line) { a.load.Apply(l) }

// Remove reinstalls the genuine module.
func (a *ModuleSwap) Remove(l *txline.Line) { a.load.Remove(l) }
