package attack

import (
	"fmt"

	"divot/internal/txline"
)

// TraceMill models supply-chain PCB tampering: copper is milled away (or a
// trace is thinned and rerouted) to insert an interposer. The damaged copper
// has higher series resistance and a raised local impedance. This is the one
// attack class the DC-resistance baseline (§V, Paley et al.) is actually
// built for; DIVOT sees it as a localized IIP change like any other.
type TraceMill struct {
	// Position is the milled location in meters from the source.
	Position float64
	// DeltaZ is the impedance rise over the damaged section.
	DeltaZ float64
	// DeltaR is the series resistance added, in ohms (what a DC monitor
	// measures).
	DeltaR float64
	// Extent is the damaged length.
	Extent float64
}

// DefaultTraceMill returns a typical interposer-preparation cut at the given
// position.
func DefaultTraceMill(position float64) *TraceMill {
	return &TraceMill{Position: position, DeltaZ: 6, DeltaR: 0.8, Extent: 2e-3}
}

// Name implements Attack.
func (a *TraceMill) Name() string { return "trace-mill" }

func (a *TraceMill) key() string { return fmt.Sprintf("tracemill-%p", a) }

// Apply mills the trace. DeltaR rides along in the perturbation via the
// Resistive kind; the impedance change carries DeltaZ.
func (a *TraceMill) Apply(l *txline.Line) {
	l.ApplyPerturbation(a.key(), txline.Perturbation{
		Position: a.Position, Extent: a.Extent, DeltaZ: a.DeltaZ,
		Kind: txline.KindResistive,
	})
}

// Remove is physically impossible — milled copper does not grow back — so
// removing the attack leaves the full perturbation in place, matching the
// permanence the paper observed for invasive tampering.
func (a *TraceMill) Remove(*txline.Line) {}

// DeltaResistance returns the series resistance the cut added, used by the
// DC-resistance baseline model.
func (a *TraceMill) DeltaResistance() float64 { return a.DeltaR }
