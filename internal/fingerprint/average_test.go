package fingerprint

import (
	"math"
	"testing"

	"divot/internal/rng"
	"divot/internal/signal"
)

// TestAveragerMatchesAverage proves the streaming fold is bit-identical to
// the slice-based Average, including after a Reset reusing the accumulator.
func TestAveragerMatchesAverage(t *testing.T) {
	p := DefaultPipeline()
	stream := rng.New(99)
	var av Averager
	for round := 0; round < 3; round++ {
		n := 3 + 2*round
		ws := make([]*signal.Waveform, n)
		av.Reset()
		for i := range ws {
			w := signal.New(89.6e9, 343)
			for j := range w.Samples {
				w.Samples[j] = stream.Gaussian(0, 1)
			}
			ws[i] = w
			av.Add(w)
		}
		want, err := p.Average(ws)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.FromAverage(&av)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("round %d: length %d != %d", round, got.Len(), want.Len())
		}
		for i := range want.Raw.Samples {
			if math.Float64bits(got.Raw.Samples[i]) != math.Float64bits(want.Raw.Samples[i]) {
				t.Fatalf("round %d: bin %d differs", round, i)
			}
		}
		if av.Count() != n {
			t.Fatalf("round %d: count %d != %d", round, av.Count(), n)
		}
	}

	var empty Averager
	if _, err := p.FromAverage(&empty); err == nil {
		t.Fatal("FromAverage on empty averager should error")
	}
}
