package fingerprint

import (
	"testing"

	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// rig bundles one line with its reflectometer and the processing pipeline —
// the full measurement chain the architecture deploys.
type rig struct {
	line *txline.Line
	r    *itdr.Reflectometer
	p    Pipeline
}

func newRig(t *testing.T, seed uint64) *rig {
	t.Helper()
	stream := rng.New(seed)
	line := txline.New("L", txline.DefaultConfig(), stream.Child("line"))
	r, err := itdr.New(itdr.DefaultConfig(), txline.DefaultProbe(), nil, stream.Child("itdr"))
	if err != nil {
		t.Fatal(err)
	}
	return &rig{line: line, r: r, p: DefaultPipeline()}
}

func (rg *rig) measure(env txline.Environment) IIP {
	return rg.p.FromWaveform(rg.r.Measure(rg.line, env).IIP)
}

func (rg *rig) enroll(t *testing.T, env txline.Environment, n int) IIP {
	t.Helper()
	ws := make([]*signal.Waveform, n)
	for i := range ws {
		ws[i] = rg.r.Measure(rg.line, env).IIP
	}
	f, err := rg.p.Average(ws)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEndToEndGenuineVsImpostor(t *testing.T) {
	env := txline.RoomTemperature()
	a := newRig(t, 100)
	b := newRig(t, 200)
	refA := a.enroll(t, env, 8)
	refB := b.enroll(t, env, 8)

	var genuine, impostor []float64
	for i := 0; i < 10; i++ {
		genuine = append(genuine, Similarity(a.measure(env), refA))
		impostor = append(impostor, Similarity(b.measure(env), refA))
		genuine = append(genuine, Similarity(b.measure(env), refB))
		impostor = append(impostor, Similarity(a.measure(env), refB))
	}
	minG, maxI := 1.0, 0.0
	for _, s := range genuine {
		if s < minG {
			minG = s
		}
	}
	for _, s := range impostor {
		if s > maxI {
			maxI = s
		}
	}
	t.Logf("genuine min %.4f, impostor max %.4f", minG, maxI)
	if minG <= maxI {
		t.Errorf("no separation: genuine min %v <= impostor max %v", minG, maxI)
	}
	if minG < 0.95 {
		t.Errorf("genuine similarity dips to %v; expected tight distribution near 1", minG)
	}
}

func TestEndToEndTamperDetection(t *testing.T) {
	env := txline.RoomTemperature()
	rg := newRig(t, 300)
	ref := rg.enroll(t, env, 8)
	det := TamperDetector{Velocity: rg.line.Config().Velocity}

	// Calibrate the threshold from the clean noise floor: max clean peak
	// across a few measurements, with margin.
	var floor float64
	for i := 0; i < 5; i++ {
		e := ErrorFunction(rg.measure(env), ref)
		if v, _, _ := PeakError(e); v > floor {
			floor = v
		}
	}
	det.PeakThreshold = 3 * floor

	// A magnetic probe: the weakest attack class.
	pos := 0.12
	rg.line.ApplyPerturbation("magprobe", txline.Perturbation{
		Position: pos, Extent: 3e-3, DeltaZ: 1.5,
	})
	v := det.Check(rg.measure(env), ref)
	if !v.Tampered {
		t.Fatalf("magnetic probe not detected: %+v (floor %v)", v, floor)
	}
	if v.Position < pos-0.02 || v.Position > pos+0.02 {
		t.Errorf("probe localized at %v m, want ~%v m", v.Position, pos)
	}

	// Removing the probe restores a clean verdict.
	rg.line.RemovePerturbation("magprobe")
	v = det.Check(rg.measure(env), ref)
	if v.Tampered {
		t.Errorf("clean line still flagged after probe removal: %+v", v)
	}
}
