package fingerprint

import "fmt"

// Matcher makes authentication decisions from similarity scores (§IV-C:
// "if the newly measured IIP is equal to the IIP value stored in the ROM
// within a threshold, then it is authenticated").
type Matcher struct {
	// Threshold is the minimum similarity accepted as genuine.
	Threshold float64
}

// AuthResult is the outcome of one authentication attempt.
type AuthResult struct {
	Score     float64
	Threshold float64
	Accepted  bool
}

// String renders the result for logs.
func (r AuthResult) String() string {
	verdict := "REJECT"
	if r.Accepted {
		verdict = "ACCEPT"
	}
	return fmt.Sprintf("%s (S=%.6f, threshold %.6f)", verdict, r.Score, r.Threshold)
}

// Authenticate scores the measured fingerprint against the enrolled one.
func (m Matcher) Authenticate(measured, enrolled IIP) AuthResult {
	s := Similarity(measured, enrolled)
	return AuthResult{Score: s, Threshold: m.Threshold, Accepted: s >= m.Threshold}
}

// TamperDetector flags localized IIP changes using the error function.
type TamperDetector struct {
	// PeakThreshold is the error-function value (volts²) above which a bin
	// indicates tampering — the paper sets it just above the magnetic-probe
	// floor so the weakest attack is still caught.
	PeakThreshold float64
	// Velocity is the propagation velocity used to localize the peak.
	Velocity float64
}

// TamperVerdict describes a tamper check.
type TamperVerdict struct {
	Tampered bool
	// PeakError is the largest E_xy value observed.
	PeakError float64
	// Position is the estimated distance of the disturbance from the
	// source in meters (meaningful only when Tampered).
	Position float64
	// At is the round-trip time of the peak.
	At float64
	// Contrast is the peak-to-mean ratio of the error function — large for
	// localized change, near the χ² field's ratio for global noise or
	// drift. The re-enrollment guard uses it to tell drift from attack.
	Contrast float64
}

// String renders the verdict for logs.
func (v TamperVerdict) String() string {
	if !v.Tampered {
		return fmt.Sprintf("clean (peak E=%.3g)", v.PeakError)
	}
	return fmt.Sprintf("TAMPER at %.1f mm (E=%.3g, t=%.2f ns)",
		v.Position*1e3, v.PeakError, v.At*1e9)
}

// Check compares a fresh measurement against the reference fingerprint.
func (d TamperDetector) Check(measured, reference IIP) TamperVerdict {
	e := ErrorFunction(measured, reference)
	value, idx, at := PeakError(e)
	v := TamperVerdict{
		Tampered:  value > d.PeakThreshold,
		PeakError: value,
		Position:  LocalizeError(e, idx, d.Velocity),
		At:        at,
	}
	if mean := MeanError(e); mean > 0 {
		v.Contrast = value / mean
	}
	return v
}
