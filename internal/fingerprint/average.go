package fingerprint

import (
	"fmt"

	"divot/internal/signal"
)

// Averager accumulates measurement waveforms into a running pointwise sum so
// enrollment can average EnrollMeasurements captures while holding O(1)
// waveforms instead of retaining every capture. Combined with
// Pipeline.FromAverage it is bit-identical to Pipeline.Average over the same
// waveforms in the same order: both perform the identical left-to-right
// AddInPlace fold into a zeroed accumulator and the identical 1/n Scale.
//
// The accumulator buffer survives Reset, so a reused Averager (one lives on
// each core.Endpoint) allocates nothing after its first enrollment. An
// Averager serves one goroutine; the added waveform is only read and may be
// arena-backed scratch.
type Averager struct {
	acc *signal.Waveform
	n   int
}

// Reset discards any accumulated measurements, keeping the buffer.
func (a *Averager) Reset() { a.n = 0 }

// Add folds one measurement into the running sum. Waveforms after the first
// must share its grid (same panic as Pipeline.Average's AddInPlace fold).
func (a *Averager) Add(w *signal.Waveform) {
	if a.n == 0 {
		a.acc = signal.Reuse(a.acc, w.Rate, w.Len())
	}
	signal.AddInPlace(a.acc, w)
	a.n++
}

// Count returns the number of measurements folded in since the last Reset.
func (a *Averager) Count() int { return a.n }

// FromAverage finalizes the accumulated mean and runs it through the IIP
// extraction pipeline. The returned fingerprint owns its memory and is safe
// to enroll or retain. Averaging zero measurements is an error, matching
// Pipeline.Average.
func (p Pipeline) FromAverage(a *Averager) (IIP, error) {
	if a.n == 0 {
		return IIP{}, fmt.Errorf("fingerprint: cannot average zero measurements")
	}
	mean := signal.Scale(a.acc, 1/float64(a.n))
	return p.FromWaveform(mean), nil
}
