package fingerprint

import (
	"fmt"
	"math"
)

// Fixed-point similarity: the deployed iTDR computes Eq. 4 in integer
// hardware, not floating point. This implementation quantizes fingerprints
// to signed fixed-point samples, accumulates the inner product and energies
// in int64 (the widths a small multiplier-accumulator block provides), and
// reports the same [0, 1] score. The test suite bounds its deviation from
// the float reference, which is what justifies synthesizing the integer
// datapath.

// FixedPointScorer quantizes and scores fingerprints in integer arithmetic.
type FixedPointScorer struct {
	// Bits is the sample quantization width (sign included), e.g. 8 for
	// an 8-bit datapath. Scores use (2·Bits + log2(n))-bit accumulators,
	// which int64 covers for any realistic fingerprint length.
	Bits int
}

// DefaultFixedPointScorer quantizes to an 8-bit datapath.
func DefaultFixedPointScorer() FixedPointScorer {
	return FixedPointScorer{Bits: 8}
}

// Quantize converts a fingerprint's comparison view to integer codes,
// auto-ranging to the vector's own peak (the AGC stage a real front end
// provides). Cosine similarity is invariant to an independent positive
// scaling of each operand, so per-vector ranging costs no accuracy while
// keeping every code in range regardless of the comparison view's units.
func (s FixedPointScorer) Quantize(f IIP) ([]int32, error) {
	if s.Bits < 2 || s.Bits > 24 {
		return nil, fmt.Errorf("fingerprint: quantizer width %d out of [2, 24]", s.Bits)
	}
	if !f.Valid() {
		return nil, fmt.Errorf("fingerprint: quantizing invalid fingerprint")
	}
	maxCode := int32(1)<<(s.Bits-1) - 1
	var peak float64
	for _, v := range f.cmp.Samples {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	out := make([]int32, f.cmp.Len())
	if peak == 0 {
		return out, nil
	}
	lsb := peak / float64(maxCode)
	for i, v := range f.cmp.Samples {
		q := int64(math.Round(v / lsb))
		if q > int64(maxCode) {
			q = int64(maxCode)
		}
		if q < -int64(maxCode) {
			q = -int64(maxCode)
		}
		out[i] = int32(q)
	}
	return out, nil
}

// Score computes Eq. 4 on quantized fingerprints entirely in integers
// (except the final normalization). It returns 0 for mismatched lengths or
// zero-energy inputs, mirroring Similarity's conventions.
func (s FixedPointScorer) Score(x, y []int32) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	var dot, ex, ey int64
	for i := range x {
		dot += int64(x[i]) * int64(y[i])
		ex += int64(x[i]) * int64(x[i])
		ey += int64(y[i]) * int64(y[i])
	}
	if ex == 0 || ey == 0 {
		return 0
	}
	v := float64(dot) / math.Sqrt(float64(ex)*float64(ey))
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SimilarityFixed quantizes both fingerprints and scores them — the
// hardware-equivalent of Similarity.
func (s FixedPointScorer) SimilarityFixed(x, y IIP) (float64, error) {
	qx, err := s.Quantize(x)
	if err != nil {
		return 0, err
	}
	qy, err := s.Quantize(y)
	if err != nil {
		return 0, err
	}
	return s.Score(qx, qy), nil
}

// MACResources estimates the integer datapath cost: one Bits×Bits multiplier
// and three accumulators — far smaller than a floating-point unit, which is
// the point of the fixed-point formulation.
func (s FixedPointScorer) MACResources(samples int) (registers, luts int) {
	accBits := 2*s.Bits + ceilLog2(samples)
	registers = 3*accBits + 2*s.Bits // three accumulators + two operand regs
	luts = s.Bits*s.Bits + 3*accBits // array multiplier + adder chains
	return registers, luts
}

func ceilLog2(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
