package fingerprint

import (
	"fmt"
	"math"

	"divot/internal/signal"
)

// BinMask marks ETS bins whose reconstructed samples carry no information —
// dead acquisition slices, stuck counters, rail-clamped reconstructions. The
// protocol layer maintains one per endpoint and threads it through matching
// so a partially dead instrument degrades gracefully instead of failing: the
// similarity (Eq. 4) and error function (Eq. 5) renormalize over the live
// bins only. A nil or all-false mask reproduces the unmasked path exactly.
type BinMask []bool

// NewBinMask returns an all-live mask over n bins.
func NewBinMask(n int) BinMask { return make(BinMask, n) }

// Count returns the number of masked bins.
func (m BinMask) Count() int {
	n := 0
	for _, b := range m {
		if b {
			n++
		}
	}
	return n
}

// Empty reports whether no bin is masked.
func (m BinMask) Empty() bool { return m.Count() == 0 }

// Fraction returns the masked share of all bins (0 for a nil mask).
func (m BinMask) Fraction() float64 {
	if len(m) == 0 {
		return 0
	}
	return float64(m.Count()) / float64(len(m))
}

// Clone returns an independent copy.
func (m BinMask) Clone() BinMask {
	if m == nil {
		return nil
	}
	out := make(BinMask, len(m))
	copy(out, m)
	return out
}

// Dilate returns a mask that additionally covers `guard` bins on each side of
// every masked bin. Matching excludes the guard band because smoothing leaks
// a repaired bin's residual error into its neighbours. guard <= 0 returns the
// mask unchanged.
func (m BinMask) Dilate(guard int) BinMask {
	if guard <= 0 || m.Empty() {
		return m
	}
	out := make(BinMask, len(m))
	for i, b := range m {
		if !b {
			continue
		}
		lo, hi := i-guard, i+guard
		if lo < 0 {
			lo = 0
		}
		if hi >= len(m) {
			hi = len(m) - 1
		}
		for j := lo; j <= hi; j++ {
			out[j] = true
		}
	}
	return out
}

// Union merges another mask (or a saturation flag slice) into a copy of m.
// Either argument may be nil; the result is nil when nothing is masked.
func (m BinMask) Union(other []bool) BinMask {
	if len(other) == 0 {
		return m
	}
	var out BinMask
	if m == nil {
		out = make(BinMask, len(other))
	} else {
		out = m.Clone()
		for len(out) < len(other) {
			out = append(out, false)
		}
	}
	any := false
	for i := range out {
		if i < len(other) && other[i] {
			out[i] = true
		}
		if out[i] {
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// Repair returns a copy of w with masked bins replaced by linear
// interpolation between the nearest live neighbours (edge runs are held at
// the nearest live value). Repairing before smoothing keeps a dead bin's
// rail-clamped spike from bleeding into live bins through the smoothing
// kernel; the repaired bins themselves are excluded from matching by the
// mask.
func Repair(w *signal.Waveform, m BinMask) *signal.Waveform {
	return RepairInto(nil, w, m)
}

// RepairInto is Repair with a reusable destination (nil allocates a fresh
// one), which must not alias w. An empty mask returns w itself, untouched,
// exactly like Repair.
func RepairInto(dst *signal.Waveform, w *signal.Waveform, m BinMask) *signal.Waveform {
	if m.Empty() {
		return w
	}
	out := signal.CopyInto(dst, w)
	n := out.Len()
	i := 0
	for i < n {
		if i >= len(m) || !m[i] {
			i++
			continue
		}
		j := i
		for j < n && j < len(m) && m[j] {
			j++
		}
		// Masked run [i, j): interpolate between live neighbours i-1 and j.
		switch {
		case i == 0 && j == n:
			for k := i; k < j; k++ {
				out.Samples[k] = 0
			}
		case i == 0:
			for k := i; k < j; k++ {
				out.Samples[k] = out.Samples[j]
			}
		case j == n:
			for k := i; k < j; k++ {
				out.Samples[k] = out.Samples[i-1]
			}
		default:
			a, b := out.Samples[i-1], out.Samples[j]
			span := float64(j - (i - 1))
			for k := i; k < j; k++ {
				t := float64(k-(i-1)) / span
				out.Samples[k] = a + (b-a)*t
			}
		}
		i = j
	}
	return out
}

// FromWaveformMasked is FromWaveform with dead-bin repair applied first. An
// empty mask reproduces FromWaveform exactly.
func (p Pipeline) FromWaveformMasked(w *signal.Waveform, m BinMask) IIP {
	return p.FromWaveform(Repair(w, m))
}

// AverageMasked is Average with dead-bin repair applied to the mean waveform
// — the re-enrollment path of a degraded instrument.
func (p Pipeline) AverageMasked(ws []*signal.Waveform, m BinMask) (IIP, error) {
	if m.Empty() {
		return p.Average(ws)
	}
	if len(ws) == 0 {
		return IIP{}, fmt.Errorf("fingerprint: cannot average zero measurements")
	}
	acc := signal.New(ws[0].Rate, ws[0].Len())
	for _, w := range ws {
		signal.AddInPlace(acc, w)
	}
	mean := signal.Scale(acc, 1/float64(len(ws)))
	return p.FromWaveform(Repair(mean, m)), nil
}

// cmpMasked projects a raw-bin mask onto the comparison view. The derivative
// view's sample i is computed from raw bins i and i+1, so it is invalid when
// either is masked; the mean-removed view maps one-to-one.
func (f IIP) cmpMasked(m BinMask) BinMask {
	n := f.cmp.Len()
	if n == f.Raw.Len() {
		return m
	}
	out := make(BinMask, n)
	for i := 0; i < n; i++ {
		bad := i < len(m) && m[i]
		if i+1 < len(m) && m[i+1] {
			bad = true
		}
		out[i] = bad
	}
	return out
}

// MaskedSimilarity is Similarity (Eq. 4) restricted to live bins: the cosine
// of the two comparison views over the unmasked support, renormalized there,
// clamped to [0, 1]. An empty mask reproduces Similarity exactly.
func MaskedSimilarity(x, y IIP, m BinMask) float64 {
	if m.Empty() {
		return Similarity(x, y)
	}
	if !x.Valid() || !y.Valid() {
		return 0
	}
	cm := x.cmpMasked(m)
	n := x.cmp.Len()
	if y.cmp.Len() < n {
		n = y.cmp.Len()
	}
	var dot, xx, yy float64
	for i := 0; i < n; i++ {
		if i < len(cm) && cm[i] {
			continue
		}
		a, b := x.cmp.Samples[i], y.cmp.Samples[i]
		dot += a * b
		xx += a * a
		yy += b * b
	}
	if xx == 0 || yy == 0 {
		return 0
	}
	s := dot / math.Sqrt(xx*yy)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// MaskedErrorFunction is ErrorFunction (Eq. 5) with masked bins zeroed, so a
// repaired bin's residual cannot masquerade as a tamper peak. An empty mask
// reproduces ErrorFunction exactly.
func MaskedErrorFunction(x, y IIP, m BinMask) *signal.Waveform {
	e := ErrorFunction(x, y)
	if m.Empty() {
		return e
	}
	for i := range e.Samples {
		if i < len(m) && m[i] {
			e.Samples[i] = 0
		}
	}
	return e
}

// MeanErrorMasked returns the mean error over live bins only — the degraded
// instrument's noise floor.
func MeanErrorMasked(e *signal.Waveform, m BinMask) float64 {
	if m.Empty() {
		return MeanError(e)
	}
	var acc float64
	live := 0
	for i, v := range e.Samples {
		if i < len(m) && m[i] {
			continue
		}
		acc += v
		live++
	}
	if live == 0 {
		return 0
	}
	return acc / float64(live)
}

// AuthenticateMasked is Matcher.Authenticate scoring over live bins only.
func (mt Matcher) AuthenticateMasked(measured, enrolled IIP, m BinMask) AuthResult {
	s := MaskedSimilarity(measured, enrolled, m)
	return AuthResult{Score: s, Threshold: mt.Threshold, Accepted: s >= mt.Threshold}
}

// CheckMasked is TamperDetector.Check over live bins only: masked bins cannot
// contribute the peak, and the contrast denominator averages live bins.
func (d TamperDetector) CheckMasked(measured, reference IIP, m BinMask) TamperVerdict {
	e := MaskedErrorFunction(measured, reference, m)
	value, idx, at := PeakError(e)
	v := TamperVerdict{
		Tampered:  value > d.PeakThreshold,
		PeakError: value,
		Position:  LocalizeError(e, idx, d.Velocity),
		At:        at,
	}
	if mean := MeanErrorMasked(e, m); mean > 0 {
		v.Contrast = value / mean
	}
	return v
}
