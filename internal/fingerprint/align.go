package fingerprint

import (
	"divot/internal/signal"
)

// Stretch alignment: temperature and mechanical strain move every reflection
// arrival time by a common factor (§IV-C / Fig. 8). Because the distortion
// is a one-parameter family, the matcher can search it out: resample the
// measured fingerprint by a trial factor and keep the factor that maximizes
// similarity. This is this reproduction's implementation of the paper's
// "higher threshold values" discussion — instead of loosening the threshold
// under environmental stress, the endpoint estimates the stretch and undoes
// it, recovering room-temperature accuracy. The search is cheap enough for
// firmware (tens of 343-point correlations).

// AlignResult reports a stretch-compensated match.
type AlignResult struct {
	// Aligned is the measured fingerprint resampled by 1/Stretch.
	Aligned IIP
	// Stretch is the estimated time-axis factor (1 = no distortion).
	Stretch float64
	// Score is the similarity of the aligned fingerprint to the reference.
	Score float64
}

// AlignStretch searches stretch factors in [1-maxStrain, 1+maxStrain] for
// the one maximizing Similarity(measured', ref), using a coarse grid
// followed by two refinement passes. The pipeline rebuilds the comparison
// view after each resample (without re-smoothing — the input is already the
// post-pipeline Raw waveform).
func AlignStretch(measured, ref IIP, maxStrain float64, p Pipeline) AlignResult {
	if !measured.Valid() || !ref.Valid() || maxStrain <= 0 {
		return AlignResult{Aligned: measured, Stretch: 1, Score: Similarity(measured, ref)}
	}
	noSmooth := p
	noSmooth.SmoothSigmaBins = 0
	eval := func(s float64) (IIP, float64) {
		w := signal.Stretch(measured.Raw, 1/s)
		f := noSmooth.FromWaveform(w)
		return f, Similarity(f, ref)
	}

	best := AlignResult{Stretch: 1}
	best.Aligned, best.Score = eval(1)
	lo, hi := 1-maxStrain, 1+maxStrain
	const gridPoints = 17
	span := hi - lo
	for pass := 0; pass < 3; pass++ {
		step := span / (gridPoints - 1)
		for i := 0; i < gridPoints; i++ {
			s := lo + float64(i)*step
			if s <= 0 {
				continue
			}
			if f, score := eval(s); score > best.Score {
				best = AlignResult{Aligned: f, Stretch: s, Score: score}
			}
		}
		// Refine around the current best.
		span = 2.5 * step
		lo = best.Stretch - span/2
	}
	return best
}

// AuthenticateAligned scores with stretch compensation: the measured
// fingerprint is aligned to the enrollment before thresholding.
func (m Matcher) AuthenticateAligned(measured, enrolled IIP, maxStrain float64, p Pipeline) (AuthResult, AlignResult) {
	a := AlignStretch(measured, enrolled, maxStrain, p)
	return AuthResult{Score: a.Score, Threshold: m.Threshold, Accepted: a.Score >= m.Threshold}, a
}
