package fingerprint

import (
	"math"
	"testing"

	"divot/internal/signal"
)

func noisyWave(n int, phase float64) *signal.Waveform {
	w := signal.New(89.6e9, n)
	for i := range w.Samples {
		w.Samples[i] = 0.01*math.Sin(float64(i)*0.11+phase) + 0.002*math.Cos(float64(i)*0.71)
	}
	return w
}

// TestWorkspaceMatchesAllocatingPipeline proves the workspace-backed scoring
// path is bit-identical to the allocating one — masked and unmasked, across
// repeated reuse of the same workspace.
func TestWorkspaceMatchesAllocatingPipeline(t *testing.T) {
	p := DefaultPipeline()
	d := TamperDetector{PeakThreshold: 1e-9, Velocity: 1.5e8}
	mt := Matcher{Threshold: 0.7}
	enrolled := p.FromWaveform(noisyWave(343, 0))

	mask := NewBinMask(343)
	mask[40], mask[41], mask[120] = true, true, true

	ws := &Workspace{}
	for round := 0; round < 3; round++ {
		w := noisyWave(343, float64(round))
		for _, m := range []BinMask{nil, mask} {
			want := p.FromWaveformMasked(w, m)
			got := p.FromWaveformMaskedWith(ws, w, m)
			for i := range want.Raw.Samples {
				if got.Raw.Samples[i] != want.Raw.Samples[i] {
					t.Fatalf("round %d raw bin %d: with-workspace %v != allocating %v",
						round, i, got.Raw.Samples[i], want.Raw.Samples[i])
				}
			}
			scoring := m.Dilate(2)
			wantAuth := mt.AuthenticateMasked(want, enrolled, scoring)
			gotAuth := mt.AuthenticateMasked(got, enrolled, scoring)
			if wantAuth != gotAuth {
				t.Fatalf("round %d: auth mismatch %+v vs %+v", round, gotAuth, wantAuth)
			}
			wantV := d.CheckMasked(want, enrolled, scoring)
			gotV := d.CheckMaskedWith(ws, got, enrolled, scoring)
			if wantV != gotV {
				t.Fatalf("round %d: verdict mismatch %+v vs %+v", round, gotV, wantV)
			}
		}
	}
}

// TestWorkspaceAllocationFree proves the warm unmasked scoring path — the
// healthy steady state — allocates nothing.
func TestWorkspaceAllocationFree(t *testing.T) {
	p := DefaultPipeline()
	d := TamperDetector{PeakThreshold: 1e-9, Velocity: 1.5e8}
	mt := Matcher{Threshold: 0.7}
	enrolled := p.FromWaveform(noisyWave(343, 0))
	w := noisyWave(343, 1)
	ws := &Workspace{}
	p.FromWaveformMaskedWith(ws, w, nil) // warm the buffers
	allocs := testing.AllocsPerRun(20, func() {
		f := p.FromWaveformMaskedWith(ws, w, nil)
		_ = mt.AuthenticateMasked(f, enrolled, nil)
		_ = d.CheckMaskedWith(ws, f, enrolled, nil)
	})
	if allocs != 0 {
		t.Fatalf("warm workspace scoring allocates %v times per run, want 0", allocs)
	}
}
