package fingerprint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"divot/internal/signal"
)

func waveOf(vals ...float64) *signal.Waveform {
	return signal.FromSamples(89.6e9, vals)
}

func randIIP(r *rand.Rand, n int) IIP {
	w := signal.New(89.6e9, n)
	for i := range w.Samples {
		w.Samples[i] = r.NormFloat64()
	}
	return Pipeline{}.FromWaveform(w)
}

func TestSimilarityRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a, b := randIIP(r, 64), randIIP(r, 64)
		s := Similarity(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("similarity %v out of [0,1]", s)
		}
		if sym := Similarity(b, a); sym != s {
			t.Fatalf("similarity not symmetric: %v vs %v", s, sym)
		}
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 4 {
			return true
		}
		var spread bool
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
			if v != vals[0] {
				spread = true
			}
		}
		if !spread {
			return true // constant waveform has zero AC energy
		}
		x := Pipeline{}.FromWaveform(waveOf(vals...))
		return math.Abs(Similarity(x, x)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilarityClampsAnticorrelation(t *testing.T) {
	p := Pipeline{}
	x := p.FromWaveform(waveOf(1, -1, 1, -1))
	y := p.FromWaveform(waveOf(-1, 1, -1, 1))
	if got := Similarity(x, y); got != 0 {
		t.Errorf("anti-correlated similarity = %v, want 0", got)
	}
}

func TestSimilarityInvalid(t *testing.T) {
	x := Pipeline{}.FromWaveform(waveOf(1, 2, 3))
	if Similarity(x, IIP{}) != 0 || Similarity(IIP{}, x) != 0 {
		t.Error("invalid fingerprints should score 0")
	}
}

func TestErrorFunctionProperties(t *testing.T) {
	p := Pipeline{}
	x := p.FromWaveform(waveOf(1, 2, 3, 4))
	y := p.FromWaveform(waveOf(1, 2, 5, 4))
	e := ErrorFunction(x, y)
	for i, v := range e.Samples {
		if v < 0 {
			t.Fatalf("E_xy[%d] = %v negative", i, v)
		}
	}
	if e.Samples[2] != 4 {
		t.Errorf("E_xy[2] = %v, want (3-5)² = 4", e.Samples[2])
	}
	// E_xx is identically zero.
	exx := ErrorFunction(x, x)
	if signal.Energy(exx) != 0 {
		t.Error("E_xx should be zero")
	}
}

func TestErrorFunctionPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ErrorFunction(IIP{}, IIP{})
}

func TestPeakErrorAndLocalization(t *testing.T) {
	p := Pipeline{}
	x := p.FromWaveform(waveOf(0, 0, 0, 0, 0, 0))
	y := p.FromWaveform(waveOf(0, 0, 0, 0.02, 0, 0))
	e := ErrorFunction(x, y)
	v, idx, at := PeakError(e)
	if idx != 3 {
		t.Errorf("peak at bin %d, want 3", idx)
	}
	if math.Abs(v-4e-4) > 1e-12 {
		t.Errorf("peak value = %v", v)
	}
	wantTime := 3.0 / 89.6e9
	if math.Abs(at-wantTime) > 1e-15 {
		t.Errorf("peak time = %v", at)
	}
	pos := LocalizeError(e, idx, 1.5e8)
	if math.Abs(pos-wantTime*1.5e8/2) > 1e-12 {
		t.Errorf("localized at %v m", pos)
	}
	if !math.IsNaN(LocalizeError(e, -1, 1.5e8)) {
		t.Error("negative index should localize to NaN")
	}
}

func TestPeakErrorEmpty(t *testing.T) {
	v, idx, at := PeakError(signal.New(1, 0))
	if v != 0 || idx != -1 || at != 0 {
		t.Errorf("empty peak = %v, %d, %v", v, idx, at)
	}
}

func TestContrast(t *testing.T) {
	e := waveOf(1, 1, 1, 9)
	if got := Contrast(e); got != 3 {
		t.Errorf("contrast = %v, want 9/3=3", got)
	}
	if Contrast(waveOf(0, 0)) != 0 {
		t.Error("zero error field should have zero contrast")
	}
}

func TestAverageReducesToMean(t *testing.T) {
	p := Pipeline{}
	a := waveOf(0, 2, 4)
	b := waveOf(2, 4, 6)
	f, err := p.Average([]*signal.Waveform{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i, v := range want {
		if f.Raw.Samples[i] != v {
			t.Errorf("averaged[%d] = %v, want %v", i, f.Raw.Samples[i], v)
		}
	}
	if _, err := p.Average(nil); err == nil {
		t.Error("expected error for empty average")
	}
}

func TestPipelineSmoothingReducesNoiseSimilarityGap(t *testing.T) {
	// Two noisy observations of the same underlying pattern must score
	// higher with smoothing than without.
	r := rand.New(rand.NewSource(7))
	base := signal.New(89.6e9, 343)
	for i := range base.Samples {
		base.Samples[i] = math.Sin(float64(i) / 15)
	}
	noisy := func() *signal.Waveform {
		w := base.Clone()
		for i := range w.Samples {
			w.Samples[i] += 0.5 * r.NormFloat64()
		}
		return w
	}
	raw := Pipeline{SmoothSigmaBins: 0}
	sm := Pipeline{SmoothSigmaBins: 4}
	a, b := noisy(), noisy()
	sRaw := Similarity(raw.FromWaveform(a), raw.FromWaveform(b))
	sSm := Similarity(sm.FromWaveform(a), sm.FromWaveform(b))
	if sSm <= sRaw {
		t.Errorf("smoothing should raise genuine similarity: %v vs %v", sSm, sRaw)
	}
}
