package fingerprint

import (
	"math"
	"testing"

	"divot/internal/signal"
	"divot/internal/txline"
)

func TestAlignRecoversKnownStretch(t *testing.T) {
	// Build a genuine measurement pair where the probe waveform is
	// stretched by a known factor; alignment must find it and restore the
	// similarity.
	rg := newRig(t, 400)
	env := txline.Environment{TempC: 23}
	ref := rg.enroll(t, env, 8)

	const trueStretch = 1.004
	// Average a few captures before stretching: stretch estimation is
	// noise-limited (see TestAlignNoopOnUnstretched — the similarity
	// surface is flat within a few tenths of a percent), so a single noisy
	// capture is not a fair input for a ±0.001 recovery bound.
	w := rg.r.Measure(rg.line, env).IIP
	for i := 1; i < 4; i++ {
		signal.AddInPlace(w, rg.r.Measure(rg.line, env).IIP)
	}
	w = signal.Scale(w, 0.25)
	stretched := rg.p.FromWaveform(signal.Stretch(w, trueStretch))

	plain := Similarity(stretched, ref)
	a := AlignStretch(stretched, ref, 0.01, rg.p)
	if a.Score <= plain {
		t.Fatalf("alignment did not improve similarity: %v vs %v", a.Score, plain)
	}
	if math.Abs(a.Stretch-trueStretch) > 0.001 {
		t.Errorf("estimated stretch %v, want ~%v", a.Stretch, trueStretch)
	}
	if a.Score < 0.9 {
		t.Errorf("aligned similarity %v still low", a.Score)
	}
}

func TestAlignNoopOnUnstretched(t *testing.T) {
	rg := newRig(t, 401)
	env := txline.Environment{TempC: 23}
	ref := rg.enroll(t, env, 8)
	m := rg.measure(env)
	a := AlignStretch(m, ref, 0.01, rg.p)
	// Estimation precision is noise-limited: the similarity surface is
	// flat within a few tenths of a percent of stretch.
	if math.Abs(a.Stretch-1) > 0.004 {
		t.Errorf("clean measurement estimated stretch %v, want ~1", a.Stretch)
	}
	if a.Score < Similarity(m, ref)-1e-9 {
		t.Error("alignment made a clean match worse")
	}
}

func TestAlignDoesNotRescueImpostors(t *testing.T) {
	// Stretch search must not let a different line masquerade as genuine:
	// the impostor's profile cannot be aligned into a match.
	a := newRig(t, 402)
	b := newRig(t, 403)
	env := txline.Environment{TempC: 23}
	refA := a.enroll(t, env, 8)
	mB := b.measure(env)
	res := AlignStretch(mB, refA, 0.01, b.p)
	if res.Score > 0.7 {
		t.Errorf("impostor aligned to %v; stretch search must not forge matches", res.Score)
	}
}

func TestAlignInvalidInputs(t *testing.T) {
	rg := newRig(t, 404)
	env := txline.Environment{TempC: 23}
	m := rg.measure(env)
	a := AlignStretch(m, IIP{}, 0.01, rg.p)
	if a.Score != 0 || a.Stretch != 1 {
		t.Errorf("invalid ref: %+v", a)
	}
	a = AlignStretch(m, m, 0, rg.p)
	if a.Stretch != 1 {
		t.Errorf("zero strain budget should skip the search: %+v", a)
	}
}

func TestAuthenticateAligned(t *testing.T) {
	rg := newRig(t, 405)
	// Enroll at room; authenticate under a strong thermal condition that
	// would fail a plain threshold but passes after alignment.
	ref := rg.enroll(t, txline.Environment{TempC: 23}, 8)
	hot := txline.Environment{TempC: 75}
	m := rg.measure(hot)
	matcher := Matcher{Threshold: 0.9}
	plain := matcher.Authenticate(m, ref)
	aligned, a := matcher.AuthenticateAligned(m, ref, 0.05, rg.p)
	if aligned.Score <= plain.Score {
		t.Fatalf("aligned %v should beat plain %v at 75°C", aligned.Score, plain.Score)
	}
	if !aligned.Accepted {
		t.Errorf("aligned authentication at 75°C rejected: %+v", aligned)
	}
	if a.Stretch <= 1 {
		t.Errorf("estimated stretch %v should exceed 1 at +52°C", a.Stretch)
	}
}
