package fingerprint

import (
	"fmt"

	"divot/internal/signal"
)

// Workspace is the reusable working memory of one endpoint's fingerprint
// post-processing: the repaired waveform, the smoothed Raw view, the
// comparison view, the error function, and the hoisted smoothing kernel.
// The XxxWith methods below recycle it across rounds so the steady-state
// monitoring loop allocates nothing; a nil Workspace falls back to the
// allocating forms. Results are bit-identical either way.
//
// Ownership rules: a workspace serves one scoring at a time, and the IIPs
// and verdicts produced through it alias its buffers — valid until the next
// XxxWith call on the same workspace. Enrollment paths (Average, Store) must
// use the allocating forms, which own their memory.
type Workspace struct {
	repair *signal.Waveform
	smooth *signal.Waveform
	cmp    *signal.Waveform
	err    *signal.Waveform

	kernel      []float64
	kernelSigma float64
}

// FromWaveformWith is FromWaveform recycling the workspace's buffers; the
// returned IIP aliases them. A nil workspace falls back to FromWaveform.
func (p Pipeline) FromWaveformWith(ws *Workspace, w *signal.Waveform) IIP {
	if ws == nil {
		return p.FromWaveform(w)
	}
	if p.SmoothSigmaBins > 0 {
		if ws.kernel == nil || ws.kernelSigma != p.SmoothSigmaBins {
			ws.kernel = signal.GaussianKernel(p.SmoothSigmaBins)
			ws.kernelSigma = p.SmoothSigmaBins
		}
		ws.smooth = signal.GaussianSmoothInto(ws.smooth, w, ws.kernel)
	} else {
		ws.smooth = signal.CopyInto(ws.smooth, w)
	}
	switch p.Mode {
	case CompareDerivative:
		ws.cmp = signal.DerivativeInto(ws.cmp, ws.smooth)
	default:
		ws.cmp = signal.RemoveMeanInto(ws.cmp, ws.smooth)
	}
	return IIP{Raw: ws.smooth, cmp: ws.cmp}
}

// FromWaveformMaskedWith is FromWaveformMasked recycling the workspace's
// buffers; the returned IIP aliases them. A nil workspace falls back to
// FromWaveformMasked.
func (p Pipeline) FromWaveformMaskedWith(ws *Workspace, w *signal.Waveform, m BinMask) IIP {
	if ws == nil {
		return p.FromWaveformMasked(w, m)
	}
	if !m.Empty() {
		ws.repair = RepairInto(ws.repair, w, m)
		w = ws.repair
	}
	return p.FromWaveformWith(ws, w)
}

// ErrorFunctionInto is ErrorFunction with a reusable destination (nil
// allocates a fresh one), which must not alias either fingerprint's Raw
// view.
func ErrorFunctionInto(dst *signal.Waveform, x, y IIP) *signal.Waveform {
	if !x.Valid() || !y.Valid() {
		panic("fingerprint: error function of invalid fingerprints")
	}
	a, b := x.Raw, y.Raw
	if a.Rate != b.Rate || a.Len() != b.Len() {
		panic(fmt.Sprintf("fingerprint: error function grid mismatch (%v,%d) vs (%v,%d)",
			a.Rate, a.Len(), b.Rate, b.Len()))
	}
	dst = signal.Reuse(dst, a.Rate, a.Len())
	for i := range a.Samples {
		v := a.Samples[i] - b.Samples[i]
		dst.Samples[i] = v * v
	}
	return dst
}

// MaskedErrorFunctionInto is MaskedErrorFunction with a reusable
// destination.
func MaskedErrorFunctionInto(dst *signal.Waveform, x, y IIP, m BinMask) *signal.Waveform {
	e := ErrorFunctionInto(dst, x, y)
	if m.Empty() {
		return e
	}
	for i := range e.Samples {
		if i < len(m) && m[i] {
			e.Samples[i] = 0
		}
	}
	return e
}

// CheckMaskedWith is CheckMasked recycling the workspace's error buffer. A
// nil workspace falls back to CheckMasked.
func (d TamperDetector) CheckMaskedWith(ws *Workspace, measured, reference IIP, m BinMask) TamperVerdict {
	if ws == nil {
		return d.CheckMasked(measured, reference, m)
	}
	ws.err = MaskedErrorFunctionInto(ws.err, measured, reference, m)
	e := ws.err
	value, idx, at := PeakError(e)
	v := TamperVerdict{
		Tampered:  value > d.PeakThreshold,
		PeakError: value,
		Position:  LocalizeError(e, idx, d.Velocity),
		At:        at,
	}
	if mean := MeanErrorMasked(e, m); mean > 0 {
		v.Contrast = value / mean
	}
	return v
}
