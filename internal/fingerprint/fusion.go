package fingerprint

import (
	"fmt"
	"math"
)

// FuseSimilarities combines per-wire similarity scores from monitoring
// several wires of the same bus into one decision score (§IV-C: "monitoring
// multiple wires on a bus can exponentially increase authentication
// accuracy"). The combined score is the geometric mean, so one badly
// mismatched wire drags the whole bus score down, while independent
// per-wire noise averages out.
func FuseSimilarities(scores []float64) float64 {
	if len(scores) == 0 {
		panic("fingerprint: fusing zero scores")
	}
	logSum := 0.0
	for _, s := range scores {
		if s <= 0 {
			return 0
		}
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(scores)))
}

// MultiWireAuthenticate scores a bus by fusing per-wire matches. The two
// slices pair up by index: measured[i] is checked against enrolled[i].
func (m Matcher) MultiWireAuthenticate(measured, enrolled []IIP) (AuthResult, error) {
	if len(measured) != len(enrolled) {
		return AuthResult{}, fmt.Errorf("fingerprint: %d measured vs %d enrolled wires",
			len(measured), len(enrolled))
	}
	if len(measured) == 0 {
		return AuthResult{}, fmt.Errorf("fingerprint: no wires to authenticate")
	}
	scores := make([]float64, len(measured))
	for i := range measured {
		scores[i] = Similarity(measured[i], enrolled[i])
	}
	s := FuseSimilarities(scores)
	return AuthResult{Score: s, Threshold: m.Threshold, Accepted: s >= m.Threshold}, nil
}
