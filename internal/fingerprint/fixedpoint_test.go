package fingerprint

import (
	"math"
	"testing"

	"divot/internal/txline"
)

func TestFixedPointMatchesFloat(t *testing.T) {
	// The integer datapath must track the float reference closely enough
	// that thresholds transfer: genuine stays genuine, impostor impostor.
	env := txline.Environment{TempC: 23}
	a := newRig(t, 500)
	b := newRig(t, 501)
	refA := a.enroll(t, env, 6)
	refB := b.enroll(t, env, 6)
	s := DefaultFixedPointScorer()

	cases := []struct {
		name string
		x, y IIP
	}{
		{"genuine A", a.measure(env), refA},
		{"genuine B", b.measure(env), refB},
		{"impostor AB", a.measure(env), refB},
		{"impostor BA", b.measure(env), refA},
	}
	for _, c := range cases {
		want := Similarity(c.x, c.y)
		got, err := s.SimilarityFixed(c.x, c.y)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(got-want) > 0.03 {
			t.Errorf("%s: fixed %v vs float %v", c.name, got, want)
		}
	}
}

func TestFixedPointWidthSweep(t *testing.T) {
	// Wider datapaths converge to the float score.
	env := txline.Environment{TempC: 23}
	rg := newRig(t, 502)
	ref := rg.enroll(t, env, 6)
	m := rg.measure(env)
	want := Similarity(m, ref)
	var prevErr = math.Inf(1)
	for _, bits := range []int{4, 8, 16} {
		s := FixedPointScorer{Bits: bits}
		got, err := s.SimilarityFixed(m, ref)
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(got - want)
		if e > prevErr+0.01 {
			t.Errorf("%d bits error %v worse than narrower width %v", bits, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 0.005 {
		t.Errorf("16-bit datapath error %v should be negligible", prevErr)
	}
}

func TestFixedPointScoreConventions(t *testing.T) {
	s := DefaultFixedPointScorer()
	if s.Score(nil, nil) != 0 {
		t.Error("empty score should be 0")
	}
	if s.Score([]int32{1, 2}, []int32{1}) != 0 {
		t.Error("length mismatch should be 0")
	}
	if s.Score([]int32{0, 0}, []int32{1, 1}) != 0 {
		t.Error("zero-energy input should be 0")
	}
	if got := s.Score([]int32{3, 4}, []int32{3, 4}); math.Abs(got-1) > 1e-12 {
		t.Errorf("self score = %v", got)
	}
	if got := s.Score([]int32{1, 0}, []int32{-1, 0}); got != 0 {
		t.Errorf("anti-correlated score = %v, want clamped 0", got)
	}
}

func TestQuantizeValidation(t *testing.T) {
	p := DefaultPipeline()
	f := p.FromWaveform(waveOf(1e-3, -1e-3, 2e-3, 0))
	if _, err := (FixedPointScorer{Bits: 1}).Quantize(f); err == nil {
		t.Error("expected width error")
	}
	if _, err := DefaultFixedPointScorer().Quantize(IIP{}); err == nil {
		t.Error("expected invalid-fingerprint error")
	}
	// Auto-ranging keeps every code inside the rails regardless of scale.
	hot := p.FromWaveform(waveOf(10, -10, 10, -10))
	q, err := DefaultFixedPointScorer().Quantize(hot)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range q {
		if v > 127 || v < -127 {
			t.Fatalf("quantized code %d outside 8-bit rails", v)
		}
	}
	// A flat comparison view quantizes to all-zero codes without error.
	flat := p.FromWaveform(waveOf(1, 1, 1, 1, 1, 1, 1, 1, 1, 1))
	qz, err := DefaultFixedPointScorer().Quantize(flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range qz {
		if v != 0 {
			t.Fatal("flat view should quantize to zero")
		}
	}
}

func TestMACResourcesModest(t *testing.T) {
	s := DefaultFixedPointScorer()
	regs, luts := s.MACResources(343)
	if regs <= 0 || luts <= 0 {
		t.Fatal("non-positive resource estimate")
	}
	// The scoring MAC must stay in the same class as the iTDR itself
	// (~hundreds of LUTs), far from a floating-point unit.
	if luts > 500 {
		t.Errorf("MAC estimate %d LUTs too large", luts)
	}
}
