package fingerprint

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestIIPEncodeDecodeRoundTrip(t *testing.T) {
	p := DefaultPipeline()
	orig := p.FromWaveform(waveOf(1e-3, 2e-3, -1e-3, 0.5e-3, 0, -2e-3, 1e-3, 3e-3))
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeIIP(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("length %d, want %d", back.Len(), orig.Len())
	}
	// Raw samples preserved exactly; similarity with the original is 1.
	for i := range orig.Raw.Samples {
		if back.Raw.Samples[i] != orig.Raw.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	if s := Similarity(orig, back); math.Abs(s-1) > 1e-12 {
		t.Errorf("similarity after round trip = %v", s)
	}
}

func TestEncodeInvalidFails(t *testing.T) {
	var buf bytes.Buffer
	if err := (IIP{}).Encode(&buf); err == nil {
		t.Error("expected error encoding invalid fingerprint")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeIIP(strings.NewReader("not json"), Pipeline{}); err == nil {
		t.Error("expected decode error")
	}
	if _, err := DecodeIIP(strings.NewReader(`{"version":99,"rate":1,"samples":[1]}`), Pipeline{}); err == nil {
		t.Error("expected version error")
	}
	if _, err := DecodeIIP(strings.NewReader(`{"version":1,"rate":0,"samples":[1]}`), Pipeline{}); err == nil {
		t.Error("expected corrupt-rate error")
	}
	if _, err := DecodeIIP(strings.NewReader(`{"version":1,"rate":1,"samples":[]}`), Pipeline{}); err == nil {
		t.Error("expected empty-samples error")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	p := DefaultPipeline()
	s := NewStore()
	a := p.FromWaveform(waveOf(1, 2, 3, 2, 1, 0, -1, -2))
	b := p.FromWaveform(waveOf(-1, 0, 1, 0, -1, 0, 1, 0))
	if err := s.Enroll("bus0", a); err != nil {
		t.Fatal(err)
	}
	if err := s.Enroll("bus1", b); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	ids := loaded.IDs()
	if len(ids) != 2 || ids[0] != "bus0" || ids[1] != "bus1" {
		t.Fatalf("IDs after load = %v", ids)
	}
	got, ok := loaded.Lookup("bus0")
	if !ok {
		t.Fatal("bus0 missing after load")
	}
	if s := Similarity(got, a); math.Abs(s-1) > 1e-12 {
		t.Errorf("bus0 similarity after reload = %v", s)
	}
	// Matching still works against freshly built fingerprints.
	m := Matcher{Threshold: 0.9}
	if !m.Authenticate(a, got).Accepted {
		t.Error("reloaded enrollment fails to authenticate the original")
	}
	if m.Authenticate(b, got).Accepted {
		t.Error("reloaded enrollment accepts the wrong fingerprint")
	}
}

func TestLoadStoreRejectsGarbage(t *testing.T) {
	if _, err := LoadStore(strings.NewReader("nope"), Pipeline{}); err == nil {
		t.Error("expected error")
	}
	if _, err := LoadStore(strings.NewReader(`{"version":2,"entries":{}}`), Pipeline{}); err == nil {
		t.Error("expected version error")
	}
	if _, err := LoadStore(strings.NewReader(
		`{"version":1,"entries":{"x":{"version":1,"rate":-1,"samples":[1]}}}`), Pipeline{}); err == nil {
		t.Error("expected corrupt-entry error")
	}
}

func TestDecodePipelineModeRebuildsComparisonView(t *testing.T) {
	// A fingerprint stored under one comparison mode must be loadable under
	// another: the comparison view derives from Raw at decode time.
	src := Pipeline{SmoothSigmaBins: 0, Mode: CompareMeanRemoved}
	orig := src.FromWaveform(waveOf(0, 1e-3, 2e-3, 1e-3, 0, -1e-3, -2e-3, -1e-3))
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dst := Pipeline{SmoothSigmaBins: 0, Mode: CompareDerivative}
	back, err := DecodeIIP(&buf, dst)
	if err != nil {
		t.Fatal(err)
	}
	native := dst.FromWaveform(orig.Raw)
	if s := Similarity(back, native); math.Abs(s-1) > 1e-12 {
		t.Errorf("mode rebuild similarity = %v", s)
	}
}

// FuzzDecodeIIP feeds arbitrary bytes to the EPROM-image decoder: it must
// never panic and must reject anything that does not round-trip.
func FuzzDecodeIIP(f *testing.F) {
	var buf bytes.Buffer
	_ = DefaultPipeline().FromWaveform(waveOf(1, 2, 3)).Encode(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, err := DecodeIIP(bytes.NewReader(data), DefaultPipeline())
		if err != nil {
			return
		}
		if !fp.Valid() {
			t.Fatal("decoder accepted an invalid fingerprint")
		}
	})
}
