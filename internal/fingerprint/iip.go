// Package fingerprint turns iTDR measurements into authentication decisions:
// the similarity function of Eq. 4, the tamper error function of Eq. 5, the
// enrollment store (the paper's EPROM), threshold matching, and multi-wire
// fusion.
package fingerprint

import (
	"fmt"
	"math"

	"divot/internal/signal"
)

// IIP is one processed impedance-inhomogeneity-pattern fingerprint.
type IIP struct {
	// Raw is the line-referred reconstructed waveform in volts at the
	// ETS-equivalent rate, after bandwidth-matched smoothing. The tamper
	// error function (Eq. 5) runs on this view.
	Raw *signal.Waveform
	// cmp is the comparison view similarity runs on, derived from Raw
	// according to the pipeline mode.
	cmp *signal.Waveform
}

// CompareMode selects the representation similarity scoring uses.
type CompareMode int

const (
	// CompareDerivative scores on the first difference of the smoothed
	// waveform — the local-reflectivity profile. Macroscopic features all
	// same-design lines share (the termination step at a fixed position)
	// collapse into narrow pulses, so impostor lines decorrelate while a
	// genuine line's intrinsic inhomogeneity still matches. This is the
	// default.
	CompareDerivative CompareMode = iota
	// CompareMeanRemoved scores on the mean-removed waveform itself;
	// provided for the representation ablation.
	CompareMeanRemoved
)

// String names the mode.
func (m CompareMode) String() string {
	switch m {
	case CompareDerivative:
		return "derivative"
	case CompareMeanRemoved:
		return "mean-removed"
	}
	return fmt.Sprintf("CompareMode(%d)", int(m))
}

// Pipeline converts raw reflectometer output into fingerprints.
type Pipeline struct {
	// SmoothSigmaBins is the Gaussian smoothing width in ETS bins. The
	// physical waveform is band-limited by the probe rise time (~120 ps ≈
	// 10 bins), so smoothing at a few bins removes only counting noise.
	SmoothSigmaBins float64
	// Mode selects the similarity representation.
	Mode CompareMode
}

// DefaultPipeline matches the default iTDR configuration.
func DefaultPipeline() Pipeline {
	return Pipeline{SmoothSigmaBins: 4, Mode: CompareDerivative}
}

// FromWaveform builds a fingerprint from a reconstructed IIP waveform.
func (p Pipeline) FromWaveform(w *signal.Waveform) IIP {
	sm := signal.GaussianSmooth(w, p.SmoothSigmaBins)
	var cmp *signal.Waveform
	switch p.Mode {
	case CompareDerivative:
		cmp = signal.Derivative(sm)
	default:
		cmp = signal.RemoveMean(sm)
	}
	return IIP{Raw: sm, cmp: cmp}
}

// Average builds a fingerprint from the pointwise mean of several
// reconstructed waveforms — the enrollment path, where averaging R
// measurements shrinks reconstruction noise by √R.
func (p Pipeline) Average(ws []*signal.Waveform) (IIP, error) {
	if len(ws) == 0 {
		return IIP{}, fmt.Errorf("fingerprint: cannot average zero measurements")
	}
	acc := signal.New(ws[0].Rate, ws[0].Len())
	for _, w := range ws {
		signal.AddInPlace(acc, w)
	}
	mean := signal.Scale(acc, 1/float64(len(ws)))
	return p.FromWaveform(mean), nil
}

// Len returns the number of bins in the fingerprint.
func (f IIP) Len() int {
	if f.Raw == nil {
		return 0
	}
	return f.Raw.Len()
}

// Valid reports whether the fingerprint holds data.
func (f IIP) Valid() bool { return f.Raw != nil && f.Raw.Len() > 0 }

// Similarity computes the paper's S_xy (Eq. 4): the inner product of the two
// fingerprints' comparison views, normalized to [0, 1]. The cosine value in
// [-1, 1] is mapped to [0, 1] by clamping negative correlations to zero —
// anti-correlated patterns are no more alike than uncorrelated ones for
// authentication purposes.
func Similarity(x, y IIP) float64 {
	if !x.Valid() || !y.Valid() {
		return 0
	}
	s := signal.NormalizedInnerProduct(x.cmp, y.cmp)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// ErrorFunction computes the paper's E_xy(n) = (x(n) - y(n))² (Eq. 5) on the
// raw fingerprints, in volts². Both fingerprints must share length and rate.
func ErrorFunction(x, y IIP) *signal.Waveform {
	if !x.Valid() || !y.Valid() {
		panic("fingerprint: error function of invalid fingerprints")
	}
	d := signal.Sub(x.Raw, y.Raw)
	out := signal.New(d.Rate, d.Len())
	for i, v := range d.Samples {
		out.Samples[i] = v * v
	}
	return out
}

// PeakError returns the largest error-function value, its bin index, and the
// round-trip time at which it occurs.
func PeakError(e *signal.Waveform) (value float64, index int, at float64) {
	idx, v := signal.PeakIndex(e)
	if idx < 0 {
		return 0, -1, 0
	}
	return v, idx, e.TimeOf(idx)
}

// MeanError returns the average error-function value — the noise floor when
// no attack is present.
func MeanError(e *signal.Waveform) float64 { return signal.Mean(e) }

// Contrast returns the peak-to-mean ratio of the error function. Localized
// tampering produces large contrast; noise alone stays near the ratio a χ²
// field produces.
func Contrast(e *signal.Waveform) float64 {
	m := MeanError(e)
	if m == 0 {
		return 0
	}
	v, _, _ := PeakError(e)
	return v / m
}

// LocalizeError converts an error-peak bin index to a distance along the
// line, given the propagation velocity.
func LocalizeError(e *signal.Waveform, index int, velocity float64) float64 {
	if index < 0 {
		return math.NaN()
	}
	return e.TimeOf(index) * velocity / 2
}
