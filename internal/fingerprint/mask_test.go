package fingerprint

import (
	"math"
	"testing"

	"divot/internal/rng"
	"divot/internal/signal"
)

// noisyPair synthesizes two noisy observations of the same smooth waveform.
func noisyPair(seed uint64, n int, sigma float64) (*signal.Waveform, *signal.Waveform) {
	st := rng.New(seed)
	truth := signal.New(1e9, n)
	for i := range truth.Samples {
		x := float64(i) / float64(n)
		truth.Samples[i] = math.Sin(7*x*2*math.Pi)*1e-3 + math.Sin(2.3*x*2*math.Pi)*0.5e-3
	}
	a, b := truth.Clone(), truth.Clone()
	sa, sb := st.Child("a"), st.Child("b")
	for i := range a.Samples {
		a.Samples[i] += sa.Gaussian(0, sigma)
		b.Samples[i] += sb.Gaussian(0, sigma)
	}
	return a, b
}

func TestMaskBasics(t *testing.T) {
	m := NewBinMask(10)
	if !m.Empty() || m.Count() != 0 || m.Fraction() != 0 {
		t.Fatal("fresh mask not empty")
	}
	m[3], m[7] = true, true
	if m.Count() != 2 || m.Fraction() != 0.2 {
		t.Fatalf("count/fraction wrong: %d %v", m.Count(), m.Fraction())
	}
	d := m.Dilate(1)
	for _, i := range []int{2, 3, 4, 6, 7, 8} {
		if !d[i] {
			t.Errorf("dilated mask misses bin %d", i)
		}
	}
	if d.Count() != 6 {
		t.Errorf("dilated count = %d", d.Count())
	}
	if m.Count() != 2 {
		t.Error("dilate mutated the receiver")
	}

	var nilMask BinMask
	if got := nilMask.Union([]bool{false, false}); got != nil {
		t.Errorf("union of nothing = %v, want nil", got)
	}
	u := nilMask.Union([]bool{false, true, false})
	if u == nil || !u[1] || u.Count() != 1 {
		t.Errorf("union = %v", u)
	}
	u2 := m.Union([]bool{true, false, false, false, false, false, false, false, false, false})
	if u2.Count() != 3 || !u2[0] || !u2[3] || !u2[7] {
		t.Errorf("union = %v", u2)
	}
}

func TestRepairInterpolates(t *testing.T) {
	w := signal.New(1e9, 8)
	for i := range w.Samples {
		w.Samples[i] = float64(i)
	}
	w.Samples[3], w.Samples[4] = 1e6, -1e6 // rail garbage
	m := NewBinMask(8)
	m[3], m[4] = true, true
	r := Repair(w, m)
	if r.Samples[3] != 3 || r.Samples[4] != 4 {
		t.Errorf("interior repair: got %v %v, want 3 4", r.Samples[3], r.Samples[4])
	}
	if w.Samples[3] != 1e6 {
		t.Error("repair mutated input")
	}

	// Edge runs hold the nearest live value.
	m2 := NewBinMask(8)
	m2[0], m2[7] = true, true
	w.Samples[0], w.Samples[7] = 1e6, -1e6
	r2 := Repair(w, m2)
	if r2.Samples[0] != r2.Samples[1] || r2.Samples[7] != r2.Samples[6] {
		t.Errorf("edge repair: %v %v", r2.Samples[0], r2.Samples[7])
	}
}

// TestMaskedReducesToUnmasked pins the compatibility contract: an empty mask
// changes nothing, bit for bit.
func TestMaskedReducesToUnmasked(t *testing.T) {
	a, b := noisyPair(1, 343, 0.2e-3)
	p := DefaultPipeline()
	fa, fb := p.FromWaveform(a), p.FromWaveform(b)
	if got, want := MaskedSimilarity(fa, fb, nil), Similarity(fa, fb); got != want {
		t.Errorf("nil-mask similarity %v != %v", got, want)
	}
	empty := NewBinMask(343)
	if got, want := MaskedSimilarity(fa, fb, empty), Similarity(fa, fb); got != want {
		t.Errorf("empty-mask similarity %v != %v", got, want)
	}
	fm := p.FromWaveformMasked(a, nil)
	for i := range fa.Raw.Samples {
		if fa.Raw.Samples[i] != fm.Raw.Samples[i] {
			t.Fatal("FromWaveformMasked(nil) differs from FromWaveform")
		}
	}
	e, em := ErrorFunction(fa, fb), MaskedErrorFunction(fa, fb, nil)
	for i := range e.Samples {
		if e.Samples[i] != em.Samples[i] {
			t.Fatal("MaskedErrorFunction(nil) differs from ErrorFunction")
		}
	}
}

// TestMaskedMatchingSurvivesDeadBins is the graceful-degradation property:
// rail garbage in masked bins must not break a genuine match once repaired
// and masked, while without the mask it does.
func TestMaskedMatchingSurvivesDeadBins(t *testing.T) {
	a, b := noisyPair(2, 343, 0.2e-3)
	p := DefaultPipeline()
	enrolled := p.FromWaveform(b)

	// Kill 10% of bins with rail-clamped garbage in the measured waveform.
	st := rng.New(99).Child("dead")
	mask := NewBinMask(343)
	bad := a.Clone()
	for i := range bad.Samples {
		if st.ChildN("bin", uint64(i)).Bool(0.10) {
			mask[i] = true
			bad.Samples[i] = -20e-3
		}
	}

	naive := Similarity(p.FromWaveform(bad), enrolled)
	repaired := p.FromWaveformMasked(bad, mask)
	masked := MaskedSimilarity(repaired, enrolled, mask.Dilate(2))
	clean := Similarity(p.FromWaveform(a), enrolled)

	if naive > 0.7*clean {
		t.Errorf("dead bins barely hurt the naive path (%.3f vs clean %.3f) — test not probing anything", naive, clean)
	}
	if masked < clean-0.05 {
		t.Errorf("masked match %.4f much worse than clean %.4f", masked, clean)
	}

	// The repaired bins' residuals must not fake a tamper peak.
	d := TamperDetector{PeakThreshold: 1, Velocity: 1.5e8}
	e := MaskedErrorFunction(repaired, enrolled, mask.Dilate(2))
	peakMasked, _, _ := PeakError(e)
	peakNaive, _, _ := PeakError(ErrorFunction(p.FromWaveform(bad), enrolled))
	if peakMasked > peakNaive/10 {
		t.Errorf("masked error peak %.3g not much below naive %.3g", peakMasked, peakNaive)
	}
	_ = d
}

// TestMaskedMatchingStillRejectsImpostor: renormalization must not let an
// unrelated waveform pass just because bins are masked.
func TestMaskedMatchingStillRejectsImpostor(t *testing.T) {
	a, _ := noisyPair(3, 343, 0.2e-3)
	c, _ := noisyPair(4, 343, 0.2e-3)
	// Different truth: regenerate with a different shape.
	for i := range c.Samples {
		x := float64(i) / 343
		c.Samples[i] = math.Sin(11*x*2*math.Pi) * 1e-3
	}
	p := DefaultPipeline()
	mask := NewBinMask(343)
	for i := 0; i < 34; i++ {
		mask[i*10] = true
	}
	s := MaskedSimilarity(p.FromWaveformMasked(c, mask), p.FromWaveform(a), mask.Dilate(2))
	if s > 0.5 {
		t.Errorf("impostor scores %.3f under mask", s)
	}
}

func TestMeanErrorMasked(t *testing.T) {
	e := signal.New(1e9, 4)
	e.Samples = []float64{1, 100, 3, 0}
	m := NewBinMask(4)
	m[1] = true
	if got := MeanErrorMasked(e, m); got != (1+3+0)/3.0 {
		t.Errorf("masked mean = %v", got)
	}
	if got := MeanErrorMasked(e, nil); got != 26 {
		t.Errorf("unmasked mean = %v", got)
	}
}
