package fingerprint

import (
	"fmt"
	"sort"
	"sync"
)

// Store models the EPROM each endpoint uses to hold enrolled fingerprints
// (§III, calibration). The paper notes the store's secrecy is not
// security-critical — an IIP is useless off its own line — so this is a
// plain keyed store with no access control. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	entries map[string]IIP
}

// NewStore returns an empty fingerprint store.
func NewStore() *Store {
	return &Store{entries: make(map[string]IIP)}
}

// Enroll writes the fingerprint for the given link identity, replacing any
// previous enrollment (re-calibration at user installation time).
func (s *Store) Enroll(id string, f IIP) error {
	if !f.Valid() {
		return fmt.Errorf("fingerprint: refusing to enroll invalid fingerprint for %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[id] = f
	return nil
}

// Lookup returns the enrolled fingerprint for id.
func (s *Store) Lookup(id string) (IIP, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.entries[id]
	return f, ok
}

// Forget removes an enrollment; removing an unknown id is a no-op.
func (s *Store) Forget(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, id)
}

// IDs returns the enrolled identities in sorted order.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
