package fingerprint

import (
	"sync"
	"testing"
)

func TestStoreLifecycle(t *testing.T) {
	s := NewStore()
	f := Pipeline{}.FromWaveform(waveOf(1, 2, 3))
	if err := s.Enroll("bus0", f); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Lookup("bus0")
	if !ok || got.Len() != 3 {
		t.Fatalf("lookup failed: %v %v", got, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("lookup of unknown id should fail")
	}
	s.Forget("bus0")
	if _, ok := s.Lookup("bus0"); ok {
		t.Error("forget did not remove entry")
	}
	s.Forget("missing") // no-op
}

func TestStoreRejectsInvalid(t *testing.T) {
	s := NewStore()
	if err := s.Enroll("x", IIP{}); err == nil {
		t.Error("expected error enrolling invalid fingerprint")
	}
}

func TestStoreIDsSorted(t *testing.T) {
	s := NewStore()
	f := Pipeline{}.FromWaveform(waveOf(1, 2))
	for _, id := range []string{"c", "a", "b"} {
		if err := s.Enroll(id, f); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.IDs()
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestStoreReEnrollReplaces(t *testing.T) {
	s := NewStore()
	if err := s.Enroll("x", Pipeline{}.FromWaveform(waveOf(1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := s.Enroll("x", Pipeline{}.FromWaveform(waveOf(1, 2, 3, 4))); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Lookup("x")
	if got.Len() != 4 {
		t.Errorf("re-enrollment did not replace: len %d", got.Len())
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	f := Pipeline{}.FromWaveform(waveOf(1, 2))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = s.Enroll("shared", f)
				s.Lookup("shared")
				s.IDs()
			}
		}()
	}
	wg.Wait()
}
