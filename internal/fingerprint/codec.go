package fingerprint

import (
	"encoding/json"
	"fmt"
	"io"

	"divot/internal/signal"
)

// The paper stores enrolled fingerprints in each endpoint's EPROM (§III) and
// argues their secrecy is not critical — an IIP is useless away from its own
// line. This codec is that EPROM image: a plain, versioned JSON encoding of
// the raw fingerprint waveform. The comparison view is rebuilt from the
// pipeline on load, so stored images survive pipeline-mode upgrades.

// codecVersion guards against silently decoding incompatible images.
const codecVersion = 1

// iipImage is the serialized form of one fingerprint.
type iipImage struct {
	Version int       `json:"version"`
	Rate    float64   `json:"rate"`
	Samples []float64 `json:"samples"`
}

// storeImage is the serialized form of a whole store.
type storeImage struct {
	Version int                 `json:"version"`
	Entries map[string]iipImage `json:"entries"`
}

// Encode writes the fingerprint to w.
func (f IIP) Encode(w io.Writer) error {
	if !f.Valid() {
		return fmt.Errorf("fingerprint: encoding invalid fingerprint")
	}
	return json.NewEncoder(w).Encode(iipImage{
		Version: codecVersion,
		Rate:    f.Raw.Rate,
		Samples: f.Raw.Samples,
	})
}

// DecodeIIP reads a fingerprint from r and rebuilds its comparison view with
// the given pipeline. Smoothing is not re-applied: the stored waveform is
// already the post-pipeline Raw view.
func DecodeIIP(r io.Reader, p Pipeline) (IIP, error) {
	var img iipImage
	if err := json.NewDecoder(r).Decode(&img); err != nil {
		return IIP{}, fmt.Errorf("fingerprint: decoding: %w", err)
	}
	return imageToIIP(img, p)
}

func imageToIIP(img iipImage, p Pipeline) (IIP, error) {
	if img.Version != codecVersion {
		return IIP{}, fmt.Errorf("fingerprint: image version %d, want %d", img.Version, codecVersion)
	}
	if img.Rate <= 0 || len(img.Samples) == 0 {
		return IIP{}, fmt.Errorf("fingerprint: corrupt image (rate %v, %d samples)",
			img.Rate, len(img.Samples))
	}
	// Rebuild without smoothing: Raw is stored post-smoothing.
	noSmooth := p
	noSmooth.SmoothSigmaBins = 0
	return noSmooth.FromWaveform(signal.FromSamples(img.Rate, img.Samples)), nil
}

// Save writes every enrollment in the store to w.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	img := storeImage{Version: codecVersion, Entries: make(map[string]iipImage, len(s.entries))}
	for id, f := range s.entries {
		img.Entries[id] = iipImage{Version: codecVersion, Rate: f.Raw.Rate, Samples: f.Raw.Samples}
	}
	return json.NewEncoder(w).Encode(img)
}

// LoadStore reads a store image from r, rebuilding comparison views with the
// given pipeline.
func LoadStore(r io.Reader, p Pipeline) (*Store, error) {
	var img storeImage
	if err := json.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("fingerprint: decoding store: %w", err)
	}
	if img.Version != codecVersion {
		return nil, fmt.Errorf("fingerprint: store version %d, want %d", img.Version, codecVersion)
	}
	s := NewStore()
	for id, e := range img.Entries {
		f, err := imageToIIP(e, p)
		if err != nil {
			return nil, fmt.Errorf("fingerprint: entry %q: %w", id, err)
		}
		if err := s.Enroll(id, f); err != nil {
			return nil, err
		}
	}
	return s, nil
}
