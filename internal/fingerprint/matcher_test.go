package fingerprint

import (
	"math"
	"strings"
	"testing"
)

func TestMatcherAccepts(t *testing.T) {
	m := Matcher{Threshold: 0.9}
	p := Pipeline{}
	x := p.FromWaveform(waveOf(1, 2, 3, 2, 1))
	res := m.Authenticate(x, x)
	if !res.Accepted || res.Score < 0.999 {
		t.Errorf("self-auth = %+v", res)
	}
	if !strings.Contains(res.String(), "ACCEPT") {
		t.Errorf("String = %q", res.String())
	}
}

func TestMatcherRejects(t *testing.T) {
	m := Matcher{Threshold: 0.9}
	p := Pipeline{}
	x := p.FromWaveform(waveOf(1, 2, 3, 2, 1))
	y := p.FromWaveform(waveOf(3, -1, 4, -1, 5))
	res := m.Authenticate(x, y)
	if res.Accepted {
		t.Errorf("dissimilar fingerprints accepted: %+v", res)
	}
	if !strings.Contains(res.String(), "REJECT") {
		t.Errorf("String = %q", res.String())
	}
}

func TestTamperDetector(t *testing.T) {
	d := TamperDetector{PeakThreshold: 1e-4, Velocity: 1.5e8}
	p := Pipeline{}
	ref := p.FromWaveform(waveOf(0, 0, 0, 0, 0, 0, 0, 0))
	clean := p.FromWaveform(waveOf(1e-3, -1e-3, 1e-3, 0, 0, -1e-3, 0, 1e-3))
	v := d.Check(clean, ref)
	if v.Tampered {
		t.Errorf("noise flagged as tamper: %+v", v)
	}
	if !strings.Contains(v.String(), "clean") {
		t.Errorf("String = %q", v.String())
	}

	tampered := p.FromWaveform(waveOf(0, 0, 0, 0, 0.05, 0, 0, 0))
	v = d.Check(tampered, ref)
	if !v.Tampered {
		t.Fatalf("tamper missed: %+v", v)
	}
	wantPos := (4.0 / 89.6e9) * 1.5e8 / 2
	if math.Abs(v.Position-wantPos) > 1e-9 {
		t.Errorf("localized at %v, want %v", v.Position, wantPos)
	}
	if !strings.Contains(v.String(), "TAMPER") {
		t.Errorf("String = %q", v.String())
	}
}

func TestFuseSimilarities(t *testing.T) {
	if got := FuseSimilarities([]float64{1, 1, 1}); got != 1 {
		t.Errorf("fuse of ones = %v", got)
	}
	if got := FuseSimilarities([]float64{0.5, 0.9}); math.Abs(got-math.Sqrt(0.45)) > 1e-12 {
		t.Errorf("geometric mean = %v", got)
	}
	if got := FuseSimilarities([]float64{0.9, 0}); got != 0 {
		t.Errorf("zero wire should zero the fused score, got %v", got)
	}
}

func TestFusePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FuseSimilarities(nil)
}

func TestMultiWireAuthenticate(t *testing.T) {
	m := Matcher{Threshold: 0.9}
	p := Pipeline{}
	good := p.FromWaveform(waveOf(1, 2, 3, 2, 1))
	bad := p.FromWaveform(waveOf(-1, 3, -2, 4, 0))
	res, err := m.MultiWireAuthenticate([]IIP{good, good}, []IIP{good, good})
	if err != nil || !res.Accepted {
		t.Errorf("all-genuine multiwire: %+v, %v", res, err)
	}
	// One impostor wire tanks the fused score.
	res, err = m.MultiWireAuthenticate([]IIP{good, bad}, []IIP{good, good})
	if err != nil || res.Accepted {
		t.Errorf("one bad wire should fail the bus: %+v, %v", res, err)
	}
	if _, err := m.MultiWireAuthenticate([]IIP{good}, []IIP{good, good}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := m.MultiWireAuthenticate(nil, nil); err == nil {
		t.Error("expected empty-wire error")
	}
}
