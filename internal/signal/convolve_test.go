package signal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvolveKnown(t *testing.T) {
	a := FromSamples(1, []float64{1, 2})
	b := FromSamples(1, []float64{3, 4, 5})
	c := Convolve(a, b)
	want := []float64{3, 10, 13, 10}
	if c.Len() != len(want) {
		t.Fatalf("length %d, want %d", c.Len(), len(want))
	}
	for i, v := range want {
		if c.Samples[i] != v {
			t.Errorf("sample %d = %v, want %v", i, c.Samples[i], v)
		}
	}
}

func TestConvolveIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	w := randWave(r, 32)
	delta := Impulse(w.Rate, 1, 0)
	c := Convolve(w, delta)
	for i := range w.Samples {
		if math.Abs(c.Samples[i]-w.Samples[i]) > 1e-15 {
			t.Fatalf("identity convolution differs at %d", i)
		}
	}
}

func TestConvolveCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randWave(r, 17)
	b := randWave(r, 9)
	ab := Convolve(a, b)
	ba := Convolve(b, a)
	for i := range ab.Samples {
		if math.Abs(ab.Samples[i]-ba.Samples[i]) > 1e-9 {
			t.Fatalf("convolution not commutative at %d", i)
		}
	}
}

func TestConvolveLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randWave(r, 12)
		b := randWave(r, 12)
		h := randWave(r, 5)
		lhs := Convolve(Add(a, b), h)
		rhs := Add(Convolve(a, h), Convolve(b, h))
		for i := range lhs.Samples {
			if math.Abs(lhs.Samples[i]-rhs.Samples[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConvolveEmpty(t *testing.T) {
	a := New(1, 0)
	b := New(1, 5)
	if Convolve(a, b).Len() != 0 {
		t.Error("empty convolution should be empty")
	}
}

func TestConvolveTruncated(t *testing.T) {
	a := FromSamples(1, []float64{1, 1})
	b := FromSamples(1, []float64{1, 1})
	c := ConvolveTruncated(a, b, 2)
	if c.Len() != 2 || c.Samples[0] != 1 || c.Samples[1] != 2 {
		t.Errorf("truncated = %v", c.Samples)
	}
	// Truncation longer than the full result zero-pads.
	c2 := ConvolveTruncated(a, b, 10)
	if c2.Len() != 10 || c2.Samples[3] != 0 {
		t.Errorf("padded = %v", c2.Samples)
	}
}
