package signal

import (
	"math"
	"testing"
)

func TestStepEdgeLimits(t *testing.T) {
	w := StepEdge(1e12, 1000, 500e-12, 50e-12, 0.8)
	if got := w.Samples[0]; math.Abs(got) > 1e-6 {
		t.Errorf("edge start = %v, want ~0", got)
	}
	if got := w.Samples[999]; math.Abs(got-0.8) > 1e-6 {
		t.Errorf("edge end = %v, want ~0.8", got)
	}
	mid := w.At(500e-12)
	if math.Abs(mid-0.4) > 1e-3 {
		t.Errorf("edge midpoint = %v, want ~0.4", mid)
	}
}

func TestStepEdgeRiseTime(t *testing.T) {
	rise := 100e-12
	w := StepEdge(1e13, 20000, 1000e-12, rise, 1)
	var t10, t90 float64
	for i, v := range w.Samples {
		if t10 == 0 && v >= 0.1 {
			t10 = w.TimeOf(i)
		}
		if t90 == 0 && v >= 0.9 {
			t90 = w.TimeOf(i)
			break
		}
	}
	got := t90 - t10
	if math.Abs(got-rise)/rise > 0.05 {
		t.Errorf("10-90%% rise time = %v, want ~%v", got, rise)
	}
}

func TestFallingEdgeMirrors(t *testing.T) {
	r := StepEdge(1e12, 100, 50e-12, 20e-12, 1)
	f := FallingEdge(1e12, 100, 50e-12, 20e-12, 1)
	for i := range r.Samples {
		if math.Abs(r.Samples[i]+f.Samples[i]-1) > 1e-12 {
			t.Fatalf("rising+falling != amplitude at %d", i)
		}
	}
}

func TestEdgeDerivativeArea(t *testing.T) {
	rate := 1e13
	w := EdgeDerivative(rate, 10000, 500e-12, 40e-12, 0.7)
	var area float64
	for _, v := range w.Samples {
		area += v / rate
	}
	if math.Abs(area-0.7) > 1e-3 {
		t.Errorf("derivative area = %v, want amplitude 0.7", area)
	}
	pi, _ := PeakIndex(w)
	if got := w.TimeOf(pi); math.Abs(got-500e-12) > 1e-12 {
		t.Errorf("derivative peak at %v, want 500ps", got)
	}
}

func TestImpulse(t *testing.T) {
	w := Impulse(1, 5, 2)
	if w.Samples[2] != 1 || Energy(w) != 1 {
		t.Errorf("impulse = %v", w.Samples)
	}
	if Energy(Impulse(1, 5, 9)) != 0 {
		t.Error("out-of-range impulse should be zero")
	}
}
