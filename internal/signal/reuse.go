package signal

// This file holds the buffer-reusing forms of the package's allocating
// operations. Every XxxInto takes a destination waveform that may be nil (a
// fresh one is allocated) or recycled from a previous call (its storage is
// reused when large enough); the returned waveform is the destination, with
// numerics bit-identical to the allocating form — same loops, same
// accumulation order. Destinations must not alias the inputs unless a
// function documents otherwise. The measurement hot path (itdr.Arena,
// fingerprint.Workspace) is built on these.

// Reuse returns a waveform with the given rate and n zeroed samples,
// recycling w's storage when it is non-nil and large enough. The zeroing
// makes the result interchangeable with New(rate, n) — accumulating callers
// (txline.Line.ReflectInto) depend on it, and for overwriting callers n
// samples of clearing is noise next to the work that follows.
func Reuse(w *Waveform, rate float64, n int) *Waveform {
	if w == nil || cap(w.Samples) < n {
		return New(rate, n)
	}
	w.Rate = rate
	w.Samples = w.Samples[:n]
	for i := range w.Samples {
		w.Samples[i] = 0
	}
	return w
}

// CopyInto copies src into dst (reusing dst's storage when possible) and
// returns dst — the reusing form of Clone.
func CopyInto(dst, src *Waveform) *Waveform {
	dst = Reuse(dst, src.Rate, src.Len())
	copy(dst.Samples, src.Samples)
	return dst
}

// GaussianKernel returns the unnormalized Gaussian smoothing kernel
// GaussianSmooth builds internally for the given standard deviation in
// samples: 2*ceil(4σ)+1 taps of exp(-z²/2). Hoist it once per pipeline and
// pass it to GaussianSmoothInto to smooth repeatedly without rebuilding.
// sigmaSamples must be positive.
func GaussianKernel(sigmaSamples float64) []float64 {
	radius := kernelRadius(sigmaSamples)
	kernel := make([]float64, 2*radius+1)
	fillGaussianKernel(kernel, radius, sigmaSamples)
	return kernel
}

// GaussianSmoothInto is GaussianSmooth with a hoisted kernel (from
// GaussianKernel, built at the same sigma) and a reusable destination, which
// must not alias w. Edge renormalization is identical to GaussianSmooth.
func GaussianSmoothInto(dst, w *Waveform, kernel []float64) *Waveform {
	radius := len(kernel) / 2
	dst = Reuse(dst, w.Rate, w.Len())
	smoothWith(dst, w, kernel, radius)
	return dst
}

// DerivativeInto is Derivative with a reusable destination, which must not
// alias w.
func DerivativeInto(dst, w *Waveform) *Waveform {
	if w.Len() < 2 {
		return Reuse(dst, w.Rate, 0)
	}
	dst = Reuse(dst, w.Rate, w.Len()-1)
	for i := range dst.Samples {
		dst.Samples[i] = (w.Samples[i+1] - w.Samples[i]) * w.Rate
	}
	return dst
}

// RemoveMeanInto is RemoveMean with a reusable destination, which must not
// alias w.
func RemoveMeanInto(dst, w *Waveform) *Waveform {
	m := Mean(w)
	dst = Reuse(dst, w.Rate, w.Len())
	for i, v := range w.Samples {
		dst.Samples[i] = v - m
	}
	return dst
}

// ScaleInto is Scale with a reusable destination, which must not alias w.
func ScaleInto(dst, w *Waveform, k float64) *Waveform {
	dst = Reuse(dst, w.Rate, w.Len())
	for i, v := range w.Samples {
		dst.Samples[i] = k * v
	}
	return dst
}
