package signal

import "math"

// Triangle returns the value at time t of an ideal triangle wave with the
// given frequency, swinging between -amplitude and +amplitude, starting at
// -amplitude at t=0.
func Triangle(t, freq, amplitude float64) float64 {
	phase := t * freq
	phase -= math.Floor(phase) // [0, 1)
	var v float64
	if phase < 0.5 {
		v = -1 + 4*phase // rising half
	} else {
		v = 3 - 4*phase // falling half
	}
	return amplitude * v
}

// RCQuasiTriangle models the quasi-triangle waveform obtained by driving an
// RC charge-discharge circuit from a square wave, as the paper proposes for
// the PDM modulation source (§II-C). The output swings between roughly
// -amplitude and +amplitude; the exponential charging makes the "triangle"
// slightly convex, which is the realistic shape an iTDR sees.
type RCQuasiTriangle struct {
	Freq      float64 // square-wave frequency, Hz
	Amplitude float64 // asymptotic swing, volts
	TauRatio  float64 // RC time constant as a fraction of the half period; ~1 gives a near-triangle
}

// Level returns the modulator output voltage at time t.
func (m RCQuasiTriangle) Level(t float64) float64 {
	half := 1 / (2 * m.Freq)
	tau := m.TauRatio * half
	phase := t * m.Freq
	phase -= math.Floor(phase)
	// Steady-state square-wave response of a first-order RC: during the
	// charging half-cycle the output moves from -V0 toward +A, then back.
	// V0 is the steady-state turning-point amplitude.
	v0 := m.Amplitude * math.Tanh(half/(2*tau))
	if phase < 0.5 {
		dt := phase * 2 * half
		return m.Amplitude - (m.Amplitude+v0)*math.Exp(-dt/tau)
	}
	dt := (phase - 0.5) * 2 * half
	return -m.Amplitude + (m.Amplitude+v0)*math.Exp(-dt/tau)
}

// Sample renders n samples of the modulator at the given rate.
func (m RCQuasiTriangle) Sample(rate float64, n int) *Waveform {
	w := New(rate, n)
	for i := range w.Samples {
		w.Samples[i] = m.Level(float64(i) / rate)
	}
	return w
}
