package signal

import "math"

// StepEdge returns a rising edge from 0 to amplitude with the given 10-90%
// rise time, centered at time t0, sampled at rate over n samples. The edge
// shape is the error-function step that a bandwidth-limited driver produces.
func StepEdge(rate float64, n int, t0, riseTime, amplitude float64) *Waveform {
	w := New(rate, n)
	// For an erf edge, the 10-90% rise time is ~1.812 sigma*sqrt(2)... use
	// sigma such that erf covers 10-90% within riseTime: t_{10-90} = 2*1.2816*sigma/sqrt(2)...
	// Simpler, standard mapping: sigma = riseTime / 2.563 gives 10-90% = riseTime.
	sigma := riseTime / 2.563
	for i := range w.Samples {
		t := float64(i)/rate - t0
		w.Samples[i] = amplitude * 0.5 * (1 + math.Erf(t/(sigma*math.Sqrt2)))
	}
	return w
}

// FallingEdge returns a falling edge from amplitude to 0, the mirror of
// StepEdge.
func FallingEdge(rate float64, n int, t0, riseTime, amplitude float64) *Waveform {
	w := StepEdge(rate, n, t0, riseTime, amplitude)
	for i, v := range w.Samples {
		w.Samples[i] = amplitude - v
	}
	return w
}

// EdgeDerivative returns the time-derivative of the erf step edge — the
// effective probe impulse the TDR sees when differentiating reflections of a
// step. It is a Gaussian pulse of unit area scaled by amplitude.
func EdgeDerivative(rate float64, n int, t0, riseTime, amplitude float64) *Waveform {
	w := New(rate, n)
	sigma := riseTime / 2.563
	g := NewGaussianPulse(sigma)
	for i := range w.Samples {
		t := float64(i)/rate - t0
		w.Samples[i] = amplitude * g(t)
	}
	return w
}

// NewGaussianPulse returns a unit-area Gaussian pulse function with the given
// standard deviation.
func NewGaussianPulse(sigma float64) func(t float64) float64 {
	norm := 1 / (sigma * math.Sqrt(2*math.Pi))
	return func(t float64) float64 {
		z := t / sigma
		return norm * math.Exp(-0.5*z*z)
	}
}

// Impulse returns a single-sample unit impulse at index i.
func Impulse(rate float64, n, i int) *Waveform {
	w := New(rate, n)
	if i >= 0 && i < n {
		w.Samples[i] = 1
	}
	return w
}
