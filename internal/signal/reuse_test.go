package signal

import (
	"math"
	"testing"
)

func rampWave(n int) *Waveform {
	w := New(1e9, n)
	for i := range w.Samples {
		w.Samples[i] = math.Sin(float64(i)*0.37) + 0.1*float64(i)
	}
	return w
}

// TestIntoVariantsMatchAllocatingForms proves every XxxInto is bit-identical
// to its allocating counterpart, both into a nil destination and into a
// recycled, previously dirty one.
func TestIntoVariantsMatchAllocatingForms(t *testing.T) {
	w := rampWave(257)
	dirty := New(2e9, 400)
	for i := range dirty.Samples {
		dirty.Samples[i] = 1e9
	}
	check := func(name string, want, got *Waveform) {
		t.Helper()
		if got.Rate != want.Rate || got.Len() != want.Len() {
			t.Fatalf("%s: grid mismatch (%v,%d) vs (%v,%d)", name, got.Rate, got.Len(), want.Rate, want.Len())
		}
		for i := range want.Samples {
			if got.Samples[i] != want.Samples[i] {
				t.Fatalf("%s: sample %d = %v, want %v", name, i, got.Samples[i], want.Samples[i])
			}
		}
	}
	kernel := GaussianKernel(4)
	check("smooth/nil", GaussianSmooth(w, 4), GaussianSmoothInto(nil, w, kernel))
	check("smooth/dirty", GaussianSmooth(w, 4), GaussianSmoothInto(dirty.Clone(), w, kernel))
	check("derivative", Derivative(w), DerivativeInto(dirty.Clone(), w))
	check("removemean", RemoveMean(w), RemoveMeanInto(dirty.Clone(), w))
	check("scale", Scale(w, -2.5), ScaleInto(dirty.Clone(), w, -2.5))
	check("copy", w.Clone(), CopyInto(dirty.Clone(), w))

	short := New(1e9, 1)
	check("derivative/short", Derivative(short), DerivativeInto(nil, short))
}

// TestIntoVariantsAllocationFree proves a warm destination makes the Into
// forms allocation-free — the property the measurement arena builds on.
func TestIntoVariantsAllocationFree(t *testing.T) {
	w := rampWave(257)
	kernel := GaussianKernel(4)
	sm := GaussianSmoothInto(nil, w, kernel)
	dv := DerivativeInto(nil, sm)
	allocs := testing.AllocsPerRun(20, func() {
		sm = GaussianSmoothInto(sm, w, kernel)
		dv = DerivativeInto(dv, sm)
	})
	if allocs != 0 {
		t.Fatalf("warm smooth+derivative allocates %v times per run, want 0", allocs)
	}
}
