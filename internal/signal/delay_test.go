package signal

import (
	"math"
	"testing"
)

func TestDelayWholeSamples(t *testing.T) {
	w := FromSamples(1, []float64{1, 2, 3, 4})
	d := Delay(w, 2)
	// First two samples hold the left edge value.
	want := []float64{1, 1, 1, 2}
	for i, v := range want {
		if d.Samples[i] != v {
			t.Errorf("sample %d = %v, want %v", i, d.Samples[i], v)
		}
	}
}

func TestDelayFractional(t *testing.T) {
	w := FromSamples(1, []float64{0, 10, 20, 30})
	d := Delay(w, 0.5)
	if got := d.Samples[2]; got != 15 {
		t.Errorf("fractionally delayed sample = %v, want 15", got)
	}
}

func TestDelayComposition(t *testing.T) {
	// Delaying a smooth waveform by a then b approximates delaying by a+b.
	w := New(100, 200)
	for i := range w.Samples {
		w.Samples[i] = math.Sin(2 * math.Pi * 2 * w.TimeOf(i))
	}
	d1 := Delay(Delay(w, 0.03), 0.05)
	d2 := Delay(w, 0.08)
	for i := 30; i < 170; i++ {
		if math.Abs(d1.Samples[i]-d2.Samples[i]) > 0.02 {
			t.Fatalf("delay composition differs at %d: %v vs %v", i, d1.Samples[i], d2.Samples[i])
		}
	}
}

func TestShiftSamples(t *testing.T) {
	w := FromSamples(1, []float64{1, 2, 3})
	s := ShiftSamples(w, 1)
	if s.Samples[0] != 0 || s.Samples[1] != 1 || s.Samples[2] != 2 {
		t.Errorf("shift +1 = %v", s.Samples)
	}
	s = ShiftSamples(w, -1)
	if s.Samples[0] != 2 || s.Samples[2] != 0 {
		t.Errorf("shift -1 = %v", s.Samples)
	}
}

func TestStretchMovesFeaturesLater(t *testing.T) {
	w := New(100, 100)
	w.Samples[50] = 1
	// Interpolate so the feature is a smooth bump.
	for i := 45; i < 55; i++ {
		w.Samples[i] = 1 - math.Abs(float64(i-50))/5
	}
	st := Stretch(w, 1.1)
	pi, _ := PeakIndex(st)
	if pi <= 50 {
		t.Errorf("stretch by 1.1 should move peak later, got index %d", pi)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive stretch")
		}
	}()
	Stretch(w, 0)
}
