package signal

import (
	"math"
	"testing"
)

func TestTriangleShape(t *testing.T) {
	freq, amp := 1e6, 0.5
	if got := Triangle(0, freq, amp); got != -amp {
		t.Errorf("t=0 value = %v, want %v", got, -amp)
	}
	if got := Triangle(0.25e-6, freq, amp); math.Abs(got) > 1e-12 {
		t.Errorf("quarter period value = %v, want 0", got)
	}
	if got := Triangle(0.5e-6, freq, amp); math.Abs(got-amp) > 1e-12 {
		t.Errorf("half period value = %v, want %v", got, amp)
	}
	// Periodicity.
	if a, b := Triangle(0.1e-6, freq, amp), Triangle(3.1e-6, freq, amp); math.Abs(a-b) > 1e-9 {
		t.Errorf("triangle not periodic: %v vs %v", a, b)
	}
}

func TestTriangleBounded(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := Triangle(float64(i)*13e-9, 1e6, 1)
		if v < -1-1e-12 || v > 1+1e-12 {
			t.Fatalf("triangle value %v out of range", v)
		}
	}
}

func TestRCQuasiTriangleApproximatesTriangle(t *testing.T) {
	m := RCQuasiTriangle{Freq: 1e6, Amplitude: 1, TauRatio: 2}
	// With a long time constant the RC response is nearly linear: compare
	// correlation against the ideal triangle (phase-aligned: RC starts at
	// its minimum like Triangle does).
	n := 1000
	rate := 1e9
	rc := m.Sample(rate, n)
	ideal := New(rate, n)
	for i := range ideal.Samples {
		ideal.Samples[i] = Triangle(float64(i)/rate, 1e6, 1)
	}
	corr := NormalizedInnerProduct(RemoveMean(rc), RemoveMean(ideal))
	if corr < 0.97 {
		t.Errorf("RC quasi-triangle correlation with ideal = %v, want > 0.97", corr)
	}
}

func TestRCQuasiTriangleBounded(t *testing.T) {
	m := RCQuasiTriangle{Freq: 2e6, Amplitude: 0.3, TauRatio: 0.5}
	w := m.Sample(1e9, 5000)
	for i, v := range w.Samples {
		if v < -0.3-1e-9 || v > 0.3+1e-9 {
			t.Fatalf("sample %d = %v exceeds amplitude", i, v)
		}
	}
}

func TestRCQuasiTriangleSweepsLevels(t *testing.T) {
	// At its turning points the modulator should reach close to ±v0.
	m := RCQuasiTriangle{Freq: 1e6, Amplitude: 1, TauRatio: 1}
	w := m.Sample(1e9, 1000)
	lo, hi := w.Samples[0], w.Samples[0]
	for _, v := range w.Samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < 0.2 || lo > -0.2 {
		t.Errorf("modulator swing [%v, %v] too small", lo, hi)
	}
	if math.Abs(hi+lo) > 0.05 {
		t.Errorf("modulator not symmetric: [%v, %v]", lo, hi)
	}
}
