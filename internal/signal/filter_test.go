package signal

import (
	"math"
	"math/rand"
	"testing"
)

func TestGaussianSmoothPreservesConstant(t *testing.T) {
	w := New(1, 50)
	for i := range w.Samples {
		w.Samples[i] = 3
	}
	s := GaussianSmooth(w, 2)
	for i, v := range s.Samples {
		if math.Abs(v-3) > 1e-9 {
			t.Fatalf("constant not preserved at %d: %v", i, v)
		}
	}
}

func TestGaussianSmoothReducesNoise(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	w := New(1, 1000)
	for i := range w.Samples {
		w.Samples[i] = r.NormFloat64()
	}
	s := GaussianSmooth(w, 3)
	if Energy(s) > 0.3*Energy(w) {
		t.Errorf("smoothing reduced noise energy only to %v of original",
			Energy(s)/Energy(w))
	}
}

func TestGaussianSmoothPreservesSlowSignal(t *testing.T) {
	w := New(100, 400)
	for i := range w.Samples {
		w.Samples[i] = math.Sin(2 * math.Pi * 1 * w.TimeOf(i)) // 1 Hz at 100 Sa/s
	}
	s := GaussianSmooth(w, 2)
	// A 1 Hz tone smoothed with sigma = 20 ms loses almost nothing.
	if Energy(s) < 0.95*Energy(w) {
		t.Errorf("slow signal energy dropped to %v", Energy(s)/Energy(w))
	}
}

func TestGaussianSmoothZeroSigmaCopies(t *testing.T) {
	w := FromSamples(1, []float64{1, 2, 3})
	s := GaussianSmooth(w, 0)
	s.Samples[0] = 99
	if w.Samples[0] != 1 {
		t.Error("zero-sigma smooth should return an independent copy")
	}
}

func TestMovingAverage(t *testing.T) {
	w := FromSamples(1, []float64{0, 3, 6, 3, 0})
	s := MovingAverage(w, 3)
	if s.Samples[2] != 4 {
		t.Errorf("center sample = %v, want 4", s.Samples[2])
	}
	// Edges renormalize over the in-range window.
	if s.Samples[0] != 1.5 {
		t.Errorf("edge sample = %v, want 1.5", s.Samples[0])
	}
	c := MovingAverage(w, 1)
	c.Samples[0] = 42
	if w.Samples[0] != 0 {
		t.Error("width-1 moving average should copy")
	}
}

func TestDerivative(t *testing.T) {
	w := FromSamples(10, []float64{0, 1, 3, 3})
	d := Derivative(w)
	want := []float64{10, 20, 0}
	if d.Len() != 3 {
		t.Fatalf("derivative length %d", d.Len())
	}
	for i, v := range want {
		if d.Samples[i] != v {
			t.Errorf("derivative[%d] = %v, want %v", i, d.Samples[i], v)
		}
	}
	if Derivative(New(1, 1)).Len() != 0 {
		t.Error("derivative of a single sample should be empty")
	}
}
