package signal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randWave(r *rand.Rand, n int) *Waveform {
	w := New(1e9, n)
	for i := range w.Samples {
		w.Samples[i] = r.NormFloat64()
	}
	return w
}

func TestAddSubScale(t *testing.T) {
	a := FromSamples(1, []float64{1, 2, 3})
	b := FromSamples(1, []float64{4, 5, 6})
	sum := Add(a, b)
	if sum.Samples[0] != 5 || sum.Samples[2] != 9 {
		t.Errorf("Add = %v", sum.Samples)
	}
	diff := Sub(b, a)
	if diff.Samples[0] != 3 || diff.Samples[2] != 3 {
		t.Errorf("Sub = %v", diff.Samples)
	}
	sc := Scale(a, -2)
	if sc.Samples[1] != -4 {
		t.Errorf("Scale = %v", sc.Samples)
	}
	AddInPlace(a, b)
	if a.Samples[1] != 7 {
		t.Errorf("AddInPlace = %v", a.Samples)
	}
}

func TestGridMismatchPanics(t *testing.T) {
	a := New(1, 3)
	b := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on rate mismatch")
		}
	}()
	Add(a, b)
}

func TestInnerProductAndEnergy(t *testing.T) {
	a := FromSamples(1, []float64{1, 2, 2})
	if got := Energy(a); got != 9 {
		t.Errorf("Energy = %v", got)
	}
	if got := RMS(a); math.Abs(got-math.Sqrt(3)) > 1e-12 {
		t.Errorf("RMS = %v", got)
	}
	b := FromSamples(1, []float64{1, 0, 1})
	if got := InnerProduct(a, b); got != 3 {
		t.Errorf("InnerProduct = %v", got)
	}
}

func TestNormalizedInnerProductProperties(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := randWave(r, 64)
		b := randWave(r, 64)
		s := NormalizedInnerProduct(a, b)
		if s < -1-1e-12 || s > 1+1e-12 {
			t.Fatalf("similarity %v out of [-1,1]", s)
		}
		if sym := NormalizedInnerProduct(b, a); math.Abs(sym-s) > 1e-12 {
			t.Fatalf("similarity not symmetric: %v vs %v", s, sym)
		}
	}
	a := randWave(r, 64)
	if got := NormalizedInnerProduct(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self-similarity = %v, want 1", got)
	}
	zero := New(1e9, 64)
	if got := NormalizedInnerProduct(a, zero); got != 0 {
		t.Errorf("similarity with zero waveform = %v, want 0", got)
	}
}

func TestNormalizeUnitEnergy(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	w := randWave(r, 100)
	n := Normalize(w)
	if got := Energy(n); math.Abs(got-1) > 1e-12 {
		t.Errorf("normalized energy = %v", got)
	}
	z := Normalize(New(1, 4))
	if Energy(z) != 0 {
		t.Error("normalizing zero waveform should stay zero")
	}
}

func TestRemoveMean(t *testing.T) {
	w := FromSamples(1, []float64{1, 3})
	rm := RemoveMean(w)
	if rm.Samples[0] != -1 || rm.Samples[1] != 1 {
		t.Errorf("RemoveMean = %v", rm.Samples)
	}
	if got := Mean(rm); math.Abs(got) > 1e-15 {
		t.Errorf("mean after RemoveMean = %v", got)
	}
}

func TestPeakIndex(t *testing.T) {
	w := FromSamples(1, []float64{0.1, -5, 2})
	i, v := PeakIndex(w)
	if i != 1 || v != -5 {
		t.Errorf("PeakIndex = %d, %v", i, v)
	}
	if MaxAbs(w) != 5 {
		t.Errorf("MaxAbs = %v", MaxAbs(w))
	}
	if i, _ := PeakIndex(New(1, 0)); i != -1 {
		t.Error("empty waveform should return -1")
	}
}

func TestCauchySchwarz(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		for _, v := range append(xs[:n:n], ys[:n]...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // products would overflow float64
			}
		}
		a := FromSamples(1, xs[:n])
		b := FromSamples(1, ys[:n])
		ip := InnerProduct(a, b)
		return ip*ip <= Energy(a)*Energy(b)*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRemoveMeanInPlaceMatchesRemoveMean(t *testing.T) {
	w := New(1e9, 5)
	copy(w.Samples, []float64{3, -1, 4, 1, 5})
	want := RemoveMean(w)
	got := RemoveMeanInPlace(w)
	if got != w {
		t.Error("RemoveMeanInPlace must return its argument")
	}
	for i := range want.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Errorf("sample %d: in-place %v, copy %v", i, got.Samples[i], want.Samples[i])
		}
	}
}
