// Package signal provides the sampled-waveform substrate for the DIVOT
// simulation: uniformly sampled analog signals with arithmetic, convolution,
// fractional delay, inner products, and the edge/triangle generators the iTDR
// front end needs.
//
// Time is expressed in seconds and rates in samples per second throughout.
package signal

import (
	"fmt"
	"math"
)

// Waveform is a uniformly sampled real-valued signal. Samples[i] is the value
// at time i/Rate.
type Waveform struct {
	Rate    float64 // samples per second
	Samples []float64
}

// New returns an all-zero waveform with n samples at the given rate.
func New(rate float64, n int) *Waveform {
	if rate <= 0 {
		panic(fmt.Sprintf("signal: non-positive rate %v", rate))
	}
	if n < 0 {
		panic(fmt.Sprintf("signal: negative length %d", n))
	}
	return &Waveform{Rate: rate, Samples: make([]float64, n)}
}

// FromSamples wraps the given samples (without copying) at the given rate.
func FromSamples(rate float64, samples []float64) *Waveform {
	if rate <= 0 {
		panic(fmt.Sprintf("signal: non-positive rate %v", rate))
	}
	return &Waveform{Rate: rate, Samples: samples}
}

// Clone returns a deep copy of w.
func (w *Waveform) Clone() *Waveform {
	return &Waveform{Rate: w.Rate, Samples: append([]float64(nil), w.Samples...)}
}

// Len returns the number of samples.
func (w *Waveform) Len() int { return len(w.Samples) }

// Duration returns the time span covered by the waveform.
func (w *Waveform) Duration() float64 { return float64(len(w.Samples)) / w.Rate }

// Dt returns the sample period.
func (w *Waveform) Dt() float64 { return 1 / w.Rate }

// TimeOf returns the time of sample i.
func (w *Waveform) TimeOf(i int) float64 { return float64(i) / w.Rate }

// At returns the waveform value at time t using linear interpolation.
// Times outside the sampled span return the nearest edge sample, so that the
// waveform behaves as if held constant beyond its ends.
func (w *Waveform) At(t float64) float64 {
	if len(w.Samples) == 0 {
		return 0
	}
	pos := t * w.Rate
	if pos <= 0 {
		return w.Samples[0]
	}
	if pos >= float64(len(w.Samples)-1) {
		return w.Samples[len(w.Samples)-1]
	}
	i := int(pos)
	frac := pos - float64(i)
	return w.Samples[i]*(1-frac) + w.Samples[i+1]*frac
}

// Resample returns a new waveform at the given rate covering the same span,
// using linear interpolation.
func (w *Waveform) Resample(rate float64) *Waveform {
	if rate <= 0 {
		panic(fmt.Sprintf("signal: non-positive rate %v", rate))
	}
	n := int(math.Round(w.Duration() * rate))
	if n < 1 {
		n = 1
	}
	out := New(rate, n)
	for i := range out.Samples {
		out.Samples[i] = w.At(float64(i) / rate)
	}
	return out
}

// Slice returns the sub-waveform covering sample indices [lo, hi).
// The returned waveform shares storage with w.
func (w *Waveform) Slice(lo, hi int) *Waveform {
	return &Waveform{Rate: w.Rate, Samples: w.Samples[lo:hi]}
}

// sameGrid panics unless a and b share rate and length; used by element-wise
// operations where silent misalignment would corrupt physics.
func sameGrid(op string, a, b *Waveform) {
	if a.Rate != b.Rate {
		panic(fmt.Sprintf("signal: %s rate mismatch %v vs %v", op, a.Rate, b.Rate))
	}
	if len(a.Samples) != len(b.Samples) {
		panic(fmt.Sprintf("signal: %s length mismatch %d vs %d", op, len(a.Samples), len(b.Samples)))
	}
}
