package signal

import (
	"math"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	w := New(1e9, 100)
	if w.Len() != 100 {
		t.Errorf("Len = %d", w.Len())
	}
	if w.Duration() != 100e-9 {
		t.Errorf("Duration = %v", w.Duration())
	}
	if w.Dt() != 1e-9 {
		t.Errorf("Dt = %v", w.Dt())
	}
	if w.TimeOf(10) != 10e-9 {
		t.Errorf("TimeOf(10) = %v", w.TimeOf(10))
	}
}

func TestAtInterpolates(t *testing.T) {
	w := FromSamples(1, []float64{0, 10, 20})
	if got := w.At(0.5); got != 5 {
		t.Errorf("At(0.5) = %v, want 5", got)
	}
	if got := w.At(1.25); got != 12.5 {
		t.Errorf("At(1.25) = %v, want 12.5", got)
	}
}

func TestAtEdgeHold(t *testing.T) {
	w := FromSamples(1, []float64{3, 4, 5})
	if got := w.At(-10); got != 3 {
		t.Errorf("At before start = %v, want 3", got)
	}
	if got := w.At(100); got != 5 {
		t.Errorf("At past end = %v, want 5", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	w := FromSamples(1, []float64{1, 2})
	c := w.Clone()
	c.Samples[0] = 99
	if w.Samples[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestResampleRoundTrip(t *testing.T) {
	w := New(1e6, 1000)
	for i := range w.Samples {
		w.Samples[i] = math.Sin(2 * math.Pi * 1e3 * w.TimeOf(i))
	}
	up := w.Resample(4e6)
	down := up.Resample(1e6)
	if down.Len() != w.Len() {
		t.Fatalf("round-trip length %d, want %d", down.Len(), w.Len())
	}
	for i := range w.Samples {
		if math.Abs(down.Samples[i]-w.Samples[i]) > 1e-3 {
			t.Fatalf("round-trip sample %d differs: %v vs %v", i, down.Samples[i], w.Samples[i])
		}
	}
}

func TestSliceSharesStorage(t *testing.T) {
	w := FromSamples(1, []float64{1, 2, 3, 4})
	s := w.Slice(1, 3)
	if s.Len() != 2 || s.Samples[0] != 2 {
		t.Fatalf("Slice = %v", s.Samples)
	}
	s.Samples[0] = 99
	if w.Samples[1] != 99 {
		t.Error("Slice should share storage")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero rate":  func() { New(0, 1) },
		"neg length": func() { New(1, -1) },
		"bad wrap":   func() { FromSamples(-1, nil) },
		"bad resamp": func() { New(1, 1).Resample(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
