package signal

// Delay returns w delayed by dt seconds within the same sample span: sample i
// of the output is w evaluated at time i/Rate - dt (linear interpolation,
// edge-held). A positive dt moves features later in time.
func Delay(w *Waveform, dt float64) *Waveform {
	out := New(w.Rate, w.Len())
	for i := range out.Samples {
		out.Samples[i] = w.At(float64(i)/w.Rate - dt)
	}
	return out
}

// ShiftSamples returns w shifted by k whole samples (positive k moves
// features later), zero-filling the vacated region.
func ShiftSamples(w *Waveform, k int) *Waveform {
	out := New(w.Rate, w.Len())
	for i := range out.Samples {
		j := i - k
		if j >= 0 && j < w.Len() {
			out.Samples[i] = w.Samples[j]
		}
	}
	return out
}

// Stretch returns w resampled in time by factor s around t=0: sample i of the
// output is w evaluated at time (i/Rate)/s. s slightly above 1 stretches the
// waveform (features move later), modelling a mechanically elongated line.
func Stretch(w *Waveform, s float64) *Waveform {
	if s <= 0 {
		panic("signal: non-positive stretch factor")
	}
	out := New(w.Rate, w.Len())
	for i := range out.Samples {
		out.Samples[i] = w.At(float64(i) / w.Rate / s)
	}
	return out
}
