package signal

import "math"

// Add returns a + b. Both waveforms must share rate and length.
func Add(a, b *Waveform) *Waveform {
	sameGrid("Add", a, b)
	out := New(a.Rate, a.Len())
	for i := range out.Samples {
		out.Samples[i] = a.Samples[i] + b.Samples[i]
	}
	return out
}

// Sub returns a - b. Both waveforms must share rate and length.
func Sub(a, b *Waveform) *Waveform {
	sameGrid("Sub", a, b)
	out := New(a.Rate, a.Len())
	for i := range out.Samples {
		out.Samples[i] = a.Samples[i] - b.Samples[i]
	}
	return out
}

// Scale returns a copy of w with every sample multiplied by k.
func Scale(w *Waveform, k float64) *Waveform {
	out := New(w.Rate, w.Len())
	for i, v := range w.Samples {
		out.Samples[i] = k * v
	}
	return out
}

// AddInPlace adds b into a. Both waveforms must share rate and length.
func AddInPlace(a, b *Waveform) {
	sameGrid("AddInPlace", a, b)
	for i := range a.Samples {
		a.Samples[i] += b.Samples[i]
	}
}

// InnerProduct returns the sum over samples of a(n)*b(n) (Eq. 4 numerator of
// the paper before normalization).
func InnerProduct(a, b *Waveform) float64 {
	sameGrid("InnerProduct", a, b)
	var s float64
	for i := range a.Samples {
		s += a.Samples[i] * b.Samples[i]
	}
	return s
}

// Energy returns the sum of squared samples.
func Energy(w *Waveform) float64 {
	var s float64
	for _, v := range w.Samples {
		s += v * v
	}
	return s
}

// RMS returns the root-mean-square sample value.
func RMS(w *Waveform) float64 {
	if w.Len() == 0 {
		return 0
	}
	return math.Sqrt(Energy(w) / float64(w.Len()))
}

// Mean returns the mean sample value.
func Mean(w *Waveform) float64 {
	if w.Len() == 0 {
		return 0
	}
	var s float64
	for _, v := range w.Samples {
		s += v
	}
	return s / float64(w.Len())
}

// RemoveMean returns a copy of w with the mean subtracted from every sample.
func RemoveMean(w *Waveform) *Waveform {
	m := Mean(w)
	out := New(w.Rate, w.Len())
	for i, v := range w.Samples {
		out.Samples[i] = v - m
	}
	return out
}

// RemoveMeanInPlace subtracts the mean from w's own samples and returns w —
// the scratch-reusing form of RemoveMean for hot paths that own their buffer
// (the measurement engine de-means the coupler output it just synthesized).
func RemoveMeanInPlace(w *Waveform) *Waveform {
	m := Mean(w)
	for i := range w.Samples {
		w.Samples[i] -= m
	}
	return w
}

// Normalize returns w scaled to unit energy. A zero waveform is returned
// unchanged (as a copy) to avoid dividing by zero.
func Normalize(w *Waveform) *Waveform {
	e := Energy(w)
	if e == 0 {
		return w.Clone()
	}
	return Scale(w, 1/math.Sqrt(e))
}

// NormalizedInnerProduct returns the cosine similarity of a and b, in
// [-1, 1]. If either waveform has zero energy the result is 0.
func NormalizedInnerProduct(a, b *Waveform) float64 {
	ea, eb := Energy(a), Energy(b)
	if ea == 0 || eb == 0 {
		return 0
	}
	return InnerProduct(a, b) / math.Sqrt(ea*eb)
}

// PeakIndex returns the index of the sample with the largest absolute value
// and that value. It returns (-1, 0) for an empty waveform.
func PeakIndex(w *Waveform) (int, float64) {
	if w.Len() == 0 {
		return -1, 0
	}
	best, bv := 0, math.Abs(w.Samples[0])
	for i, v := range w.Samples[1:] {
		if a := math.Abs(v); a > bv {
			best, bv = i+1, a
		}
	}
	return best, w.Samples[best]
}

// MaxAbs returns the largest absolute sample value.
func MaxAbs(w *Waveform) float64 {
	_, v := PeakIndex(w)
	return math.Abs(v)
}
