package signal

// Convolve returns the full linear convolution of a and b, with length
// a.Len()+b.Len()-1. Both inputs must share the same rate; the output keeps
// it. The direct algorithm is used: reflection responses in this codebase are
// short (hundreds to a few thousand samples) so O(n·m) is faster in practice
// than setting up transforms, and it is exact.
func Convolve(a, b *Waveform) *Waveform {
	sameRate("Convolve", a, b)
	if a.Len() == 0 || b.Len() == 0 {
		return New(a.Rate, 0)
	}
	out := New(a.Rate, a.Len()+b.Len()-1)
	for i, av := range a.Samples {
		if av == 0 {
			continue
		}
		for j, bv := range b.Samples {
			out.Samples[i+j] += av * bv
		}
	}
	return out
}

// sameRate panics unless a and b share a sample rate.
func sameRate(op string, a, b *Waveform) {
	if a.Rate != b.Rate {
		panic("signal: " + op + " rate mismatch")
	}
}

// ConvolveTruncated convolves a and b and truncates the result to n samples.
func ConvolveTruncated(a, b *Waveform, n int) *Waveform {
	full := Convolve(a, b)
	if full.Len() <= n {
		out := New(full.Rate, n)
		copy(out.Samples, full.Samples)
		return out
	}
	return &Waveform{Rate: full.Rate, Samples: full.Samples[:n]}
}
