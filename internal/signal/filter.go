package signal

import "math"

// GaussianSmooth convolves w with a unit-gain Gaussian kernel of the given
// standard deviation in samples, handling edges by renormalizing the kernel
// mass that falls inside the waveform. Smoothing at the probe-edge bandwidth
// removes reconstruction noise above the physical bandwidth without touching
// the IIP content.
func GaussianSmooth(w *Waveform, sigmaSamples float64) *Waveform {
	if sigmaSamples <= 0 {
		return w.Clone()
	}
	return GaussianSmoothInto(nil, w, GaussianKernel(sigmaSamples))
}

// kernelRadius is the Gaussian kernel half-width in samples: four sigmas,
// rounded up.
func kernelRadius(sigmaSamples float64) int {
	return int(math.Ceil(4 * sigmaSamples))
}

// fillGaussianKernel writes the unnormalized exp(-z²/2) taps into kernel,
// which must have length 2*radius+1.
func fillGaussianKernel(kernel []float64, radius int, sigmaSamples float64) {
	for i := range kernel {
		z := (float64(i) - float64(radius)) / sigmaSamples
		kernel[i] = math.Exp(-0.5 * z * z)
	}
}

// smoothWith runs the edge-renormalized convolution of GaussianSmooth from w
// into out; out must already have w's length and must not alias w.
func smoothWith(out, w *Waveform, kernel []float64, radius int) {
	for i := range w.Samples {
		var acc, mass float64
		for k, kv := range kernel {
			j := i + k - radius
			if j < 0 || j >= w.Len() {
				continue
			}
			acc += kv * w.Samples[j]
			mass += kv
		}
		if mass > 0 {
			out.Samples[i] = acc / mass
		}
	}
}

// MovingAverage smooths w with a centered boxcar of the given width in
// samples (width < 2 returns a copy).
func MovingAverage(w *Waveform, width int) *Waveform {
	if width < 2 {
		return w.Clone()
	}
	half := width / 2
	out := New(w.Rate, w.Len())
	for i := range w.Samples {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > w.Len() {
			hi = w.Len()
		}
		var acc float64
		for j := lo; j < hi; j++ {
			acc += w.Samples[j]
		}
		out.Samples[i] = acc / float64(hi-lo)
	}
	return out
}

// Derivative returns the first difference of w scaled by the sample rate —
// the local-reflectivity view of a TDR step response.
func Derivative(w *Waveform) *Waveform {
	if w.Len() < 2 {
		return New(w.Rate, 0)
	}
	out := New(w.Rate, w.Len()-1)
	for i := range out.Samples {
		out.Samples[i] = (w.Samples[i+1] - w.Samples[i]) * w.Rate
	}
	return out
}
