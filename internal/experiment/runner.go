package experiment

import (
	"divot/internal/exper"
	"divot/internal/pool"
)

// envKey strips a cell down to its environmental axes. Clean trials (the
// false-positive side) do not depend on which attack a cell would have
// mounted, so cells differing only by attack kind or contrast share one set
// of clean trials.
func envKey(c Cell) Cell {
	c.Attack = "none"
	c.Contrast = 1
	return c
}

// job is one trial to run.
type job struct {
	cell  Cell
	class string
	idx   int
}

// Run executes the whole grid and aggregates the report. Trials fan out
// across exper.Parallelism workers; every trial seeds its own labelled rng
// universe, so the report is byte-identical at any worker count.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cells := cfg.Cells()

	// Deterministic job order: attacked trials in grid order, then clean
	// trials per distinct environment in first-appearance order.
	var jobs []job
	for _, cell := range cells {
		for i := 0; i < cfg.Seeds; i++ {
			jobs = append(jobs, job{cell, classAttacked, i})
		}
	}
	seen := map[Cell]bool{}
	for _, cell := range cells {
		ek := envKey(cell)
		if seen[ek] {
			continue
		}
		seen[ek] = true
		for i := 0; i < cfg.Seeds; i++ {
			jobs = append(jobs, job{ek, classClean, i})
		}
	}

	results := make([]TrialResult, len(jobs))
	errs := make([]error, len(jobs))
	pool.Run(len(jobs), pool.Workers(exper.Parallelism), func(_, i int) {
		results[i], errs[i] = runTrial(cfg, jobs[i].cell, jobs[i].class, jobs[i].idx)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return aggregate(cfg, results), nil
}
