package experiment

import (
	"fmt"
	"os"
	"strings"
)

// Splice markers bounding the generated block in EXPERIMENTS.md. Everything
// between them is owned by `make experiments`; hand edits there are lost.
const (
	beginMarker = "<!-- divotlab:begin -->"
	endMarker   = "<!-- divotlab:end -->"
)

// Markdown renders the report as the generated EXPERIMENTS.md section:
// per-cell quality at the live operating point, per-attack AUC, and the
// auto-tuned threshold.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Grid `%s` (seed %d, %d attacked + shared clean trials per cell).\n\n",
		r.Name, r.Config.Seed, r.Config.Seeds)

	b.WriteString("| attack | contrast | temp °C | noise× | dead bins | fleet | TPR | FPR | latency p50/p90/max |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "| %s | %g | %g | %g | %g | %d | %.2f | %.2f | %d/%d/%d |\n",
			c.Attack, c.Contrast, c.TempC, c.NoiseScale, c.DeadBinFrac, c.FleetSize,
			c.TPR, c.FPR, c.LatencyP50, c.LatencyP90, c.LatencyMax)
	}

	b.WriteString("\nROC area under curve per attack and detection channel:\n\n")
	b.WriteString("| attack | channel | AUC |\n|---|---|---|\n")
	for _, c := range r.ROC {
		fmt.Fprintf(&b, "| %s | %s | %.3f |\n", c.Attack, c.Channel, c.AUC)
	}

	t := r.Tuning
	fmt.Fprintf(&b, "\nAuto-tuned operating point: auth threshold **%.2f** holds pooled FPR at "+
		"%.3f (target %g). Pooled auth-channel TPR there:\n\n", t.AuthThreshold, t.AchievedFPR, t.TargetFPR)
	b.WriteString("| attack | TPR at tuned θ |\n|---|---|\n")
	for _, atk := range r.Config.Attacks {
		fmt.Fprintf(&b, "| %s | %.2f |\n", atk, t.TPRByAttack[atk])
	}
	return b.String()
}

// SpliceMarkdown replaces the marker-delimited block of the file with the
// report's rendering (appending a fresh block when no markers exist yet) and
// returns the new file content.
func (r *Report) SpliceMarkdown(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("reading %s: %w", path, err)
	}
	doc := string(raw)
	block := beginMarker + "\n" + r.Markdown() + endMarker
	begin := strings.Index(doc, beginMarker)
	end := strings.Index(doc, endMarker)
	switch {
	case begin >= 0 && end > begin:
		return doc[:begin] + block + doc[end+len(endMarker):], nil
	case begin < 0 && end < 0:
		if !strings.HasSuffix(doc, "\n") {
			doc += "\n"
		}
		return doc + "\n" + block + "\n", nil
	default:
		return "", fmt.Errorf("%s: splice markers are damaged (begin at %d, end at %d)", path, begin, end)
	}
}
