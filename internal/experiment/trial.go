package experiment

import (
	"fmt"

	"divot/internal/attack"
	"divot/internal/core"
	"divot/internal/fault"
	"divot/internal/react"
	"divot/internal/rng"
	"divot/internal/txline"
)

// Trial classes: attacked trials measure the true-positive side of a cell,
// clean trials the false-positive side. Clean trials depend only on the
// cell's environmental axes, so the runner dedupes them across attack kinds.
const (
	classAttacked = "attacked"
	classClean    = "clean"
)

// RoundRecord is one monitoring round's recorded statistics. The aggregator
// sweeps decision thresholds over these traces offline; the live protocol's
// alerts (also recorded) are the operating point.
type RoundRecord struct {
	// Round is 1-based. In attacked trials the attack mounts at round
	// PreRounds+1, before that round's measurements.
	Round int `json:"round"`

	// VictimScore is the lowest endpoint similarity on the attacked link
	// (link 0); VictimRatio the highest PeakError/TamperThreshold there.
	VictimScore float64 `json:"victim_score"`
	VictimRatio float64 `json:"victim_ratio"`

	// MinScore and MaxRatio take the same extremes across the whole fleet —
	// in clean trials these are the per-round negative statistics.
	MinScore float64 `json:"min_score"`
	MaxRatio float64 `json:"max_ratio"`

	// AuthAlerts and TamperAlerts count the victim link's live alerts this
	// round; FleetAlerts counts alerts on all other links.
	AuthAlerts   int `json:"auth_alerts"`
	TamperAlerts int `json:"tamper_alerts"`
	FleetAlerts  int `json:"fleet_alerts"`

	// Suspect marks rounds the confirmation protocol absorbed as transient
	// on the victim link.
	Suspect bool `json:"suspect,omitempty"`

	// State and Action are the victim reactor's post-round escalation state
	// and the action it returned.
	State  string `json:"state"`
	Action string `json:"action,omitempty"`
}

// TrialResult is one trial's complete outcome.
type TrialResult struct {
	Cell  Cell   `json:"cell"`
	Class string `json:"class"`
	// Index is the trial's seed index within its cell and class.
	Index int `json:"index"`

	// DetectedRound is the first round at or after the attack mount with a
	// live victim alert (0 = the attack was never detected). Clean trials
	// leave it 0.
	DetectedRound int `json:"detected_round,omitempty"`
	// PostReenrollments counts victim fingerprint refreshes granted at or
	// after the mount round — the quantity the adaptive-tap attacker tries
	// to maximize and the refresh guards try to hold at zero.
	PostReenrollments int `json:"post_reenrollments,omitempty"`
	// Halts and Wipes count the victim reactor's escalations; FinalState is
	// its state after the last round.
	Halts      int    `json:"halts,omitempty"`
	Wipes      int    `json:"wipes,omitempty"`
	FinalState string `json:"final_state"`

	Rounds []RoundRecord `json:"rounds,omitempty"`
}

// mountRound returns the 1-based round the attack mounts at.
func (c Config) mountRound() int { return c.PreRounds + 1 }

// totalRounds returns how many monitoring rounds every trial runs.
func (c Config) totalRounds() int { return c.PreRounds + c.PostRounds }

// engineConfig derives the per-trial engine configuration from the cell's
// environmental axes and the grid's detector overrides. Parallelism is pinned
// to 1: the runner parallelizes across trials, and a trial's rounds must stay
// sequential anyway.
func (c Config) engineConfig(cell Cell) core.Config {
	ecfg := core.DefaultConfig()
	ecfg.Parallelism = 1
	ecfg.ITDR.Parallelism = 1
	ecfg.ITDR.ComparatorNoise *= cell.NoiseScale
	if c.Detector.AuthThreshold > 0 {
		ecfg.AuthThreshold = c.Detector.AuthThreshold
	}
	ecfg.TamperThresholdScale = c.Detector.TamperThresholdScale
	if c.Detector.DisableReenroll {
		ecfg.Robust.Reenroll.Enabled = false
	}
	return ecfg
}

// buildAttack constructs the cell's attack against the victim line, scaled by
// the cell's contrast. The interposer is a topological cut with no magnitude
// to scale; contrast is ignored there. The module-swap impostor's impedance is
// interpolated between the genuine termination (contrast 0) and a fresh
// same-model draw (contrast 1).
func buildAttack(cell Cell, position float64, victim *txline.Line, stream *rng.Stream) attack.Attack {
	c := cell.Contrast
	switch cell.Attack {
	case "interposer":
		return attack.DefaultInterposer(position)
	case "wiretap":
		base := attack.DefaultWireTap(position)
		base.TapDeltaZ *= c
		base.ScarDeltaZ *= c
		return base
	case "probe":
		base := attack.DefaultMagneticProbe(position)
		base.DeltaZ *= c
		return base
	case "module-swap":
		orig := victim.Termination()
		drawn := txline.DrawTermination(victim.Config(), stream.Child("impostor"))
		return &attack.LoadModification{NewTermination: orig + c*(drawn-orig)}
	case "adaptive-tap":
		base := attack.DefaultAdaptiveTap(position)
		base.RatePerRound *= c
		base.FinalDeltaZ *= c
		return base
	default:
		panic(fmt.Sprintf("experiment: unvalidated attack kind %q", cell.Attack))
	}
}

// trialLabel is the trial's rng namespace. It derives only from the cell
// identity, class, and seed index — never from grid position — so a trial's
// results are independent of which other cells share the grid and of the
// worker that runs it.
func trialLabel(cell Cell, class string, idx int) string {
	return fmt.Sprintf("%s/%s-%d", cell.Label(), class, idx)
}

// runTrial executes one trial: build and calibrate the fleet, run PreRounds
// clean rounds, mount the attack (attacked class only), run PostRounds more,
// recording every round's detection statistics and the victim reactor's
// escalation.
func runTrial(cfg Config, cell Cell, class string, idx int) (TrialResult, error) {
	res := TrialResult{Cell: cell, Class: class, Index: idx}
	st := rng.New(cfg.Seed).Child(trialLabel(cell, class, idx))
	ecfg := cfg.engineConfig(cell)
	env := txline.RoomTemperature()
	env.TempC = cell.TempC

	// The dead-bin field lands on every CPU endpoint from the first
	// monitoring measurement, like an aging fleet rather than one bad unit.
	onset := uint64(ecfg.CalibrationMeasurements() + 1)

	links := make([]*core.Link, cell.FleetSize)
	for j := range links {
		sub := st.Child(fmt.Sprintf("link-%d", j))
		l, err := core.NewLink(fmt.Sprintf("%s/link-%d", trialLabel(cell, class, idx), j),
			ecfg, txline.DefaultConfig(), sub.Child("link"))
		if err != nil {
			return res, fmt.Errorf("experiment: building link %d: %w", j, err)
		}
		l.Env = env
		if cell.DeadBinFrac > 0 {
			l.CPU.Instrument().SetInjector(fault.NewPlane(sub.Child("fault-cpu"),
				fault.DeadBinField(cell.DeadBinFrac, fault.From(onset))))
		}
		if err := l.Calibrate(); err != nil {
			return res, fmt.Errorf("experiment: calibrating link %d: %w", j, err)
		}
		links[j] = l
	}
	victim := links[0]

	var atk attack.Attack
	if class == classAttacked {
		atk = buildAttack(cell, cfg.Position, victim.Line, st.Child("attack"))
	}

	reactor, err := react.NewReactor(react.DefaultPolicy())
	if err != nil {
		return res, err
	}

	mount := cfg.mountRound()
	reenrollsAtMount := 0
	for r := 1; r <= cfg.totalRounds(); r++ {
		if atk != nil {
			switch {
			case r == mount:
				h := victim.Health()
				reenrollsAtMount = h.CPU.Reenrollments + h.Module.Reenrollments
				atk.Apply(victim.Line)
			case r > mount:
				if s, ok := atk.(attack.Stepper); ok {
					s.Advance(victim.Line)
				}
			}
		}

		rec := RoundRecord{Round: r, VictimScore: 1, MinScore: 1}
		for j, l := range links {
			alerts, err := l.MonitorOnce()
			if err != nil {
				return res, fmt.Errorf("experiment: round %d link %d: %w", r, j, err)
			}
			for _, e := range []*core.Endpoint{l.CPU, l.Module} {
				obs := e.LastObservation()
				ratio := 0.0
				if obs.TamperThreshold > 0 {
					ratio = obs.PeakError / obs.TamperThreshold
				}
				if obs.Score < rec.MinScore {
					rec.MinScore = obs.Score
				}
				if ratio > rec.MaxRatio {
					rec.MaxRatio = ratio
				}
				if j == 0 {
					if obs.Score < rec.VictimScore {
						rec.VictimScore = obs.Score
					}
					if ratio > rec.VictimRatio {
						rec.VictimRatio = ratio
					}
				}
			}
			if j == 0 {
				h := victim.Health()
				rec.Suspect = h.SuspectRound()
				for _, a := range alerts {
					switch a.Kind {
					case core.AlertAuthFailure:
						rec.AuthAlerts++
					case core.AlertTamper:
						rec.TamperAlerts++
					}
				}
				action := reactor.ObserveHealth(alerts, h)
				rec.State = reactor.State().String()
				if action != react.ActionNone {
					rec.Action = action.String()
				}
				switch action {
				case react.ActionHalt:
					res.Halts++
				case react.ActionWipe:
					res.Wipes++
				}
				if atk != nil && r >= mount && res.DetectedRound == 0 && len(alerts) > 0 {
					res.DetectedRound = r
				}
			} else {
				rec.FleetAlerts += len(alerts)
			}
		}
		res.Rounds = append(res.Rounds, rec)
	}

	if atk != nil {
		h := victim.Health()
		res.PostReenrollments = h.CPU.Reenrollments + h.Module.Reenrollments - reenrollsAtMount
	}
	res.FinalState = reactor.State().String()
	return res, nil
}
