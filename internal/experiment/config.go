// Package experiment is the detection-quality harness: it turns the repo's
// anecdotal attack demos into measured TPR/FPR. A Config declares a scenario
// grid (attack type × contrast × temperature × noise × dead-bin fraction ×
// fleet size), the runner fans seeded trials out across workers with
// labelled-rng children (results are bit-identical at any worker count), and
// the aggregator folds the per-round score traces into per-cell TPR/FPR,
// ROC curves swept over the alert thresholds, detection-latency percentiles,
// and an auto-tuned operating point. cmd/divotlab is the CLI; `make
// quality-guard` compares a short fixed-seed grid against a checked-in
// baseline and fails CI when a detector change regresses quality.
package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// attackKinds are the accepted Attack axis values. They mirror the divotd
// spec's scripted-attack kinds plus "none" is implicit (every cell also runs
// attack-free trials for the false-positive side).
var attackKinds = map[string]bool{
	"interposer":   true,
	"wiretap":      true,
	"probe":        true,
	"module-swap":  true,
	"adaptive-tap": true,
}

// AttackKinds lists the accepted attack axis values, sorted.
func AttackKinds() []string {
	kinds := make([]string, 0, len(attackKinds))
	for k := range attackKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// DetectorConfig overrides the detector's knobs for a run — the tuning
// surface of the harness, and the nerf-injection surface of the quality
// guard's self-test.
type DetectorConfig struct {
	// AuthThreshold overrides the engine's similarity acceptance threshold
	// (0 keeps the engine default, 0.70).
	AuthThreshold float64 `json:"auth_threshold,omitempty"`
	// TamperThresholdScale multiplies the auto-calibrated tamper threshold
	// (0 means 1). Raising it desensitizes the tamper channel.
	TamperThresholdScale float64 `json:"tamper_threshold_scale,omitempty"`
	// DisableReenroll turns drift-guarded re-enrollment off for the run.
	DisableReenroll bool `json:"disable_reenroll,omitempty"`
}

// Config declares one experiment grid. Every axis slice is a full factorial
// dimension: the grid is the cartesian product of all of them, and every
// cell runs Seeds attacked trials (the true-positive side) plus Seeds clean
// trials (the false-positive side) from independent labelled rng children.
type Config struct {
	// Name labels the run in the report and the regenerated markdown.
	Name string `json:"name"`
	// Seed roots the grid's random universe. Identical configs produce
	// byte-identical reports at any worker count.
	Seed uint64 `json:"seed"`

	// Attacks is the attack-type axis: interposer, wiretap, probe,
	// module-swap, adaptive-tap.
	Attacks []string `json:"attacks"`
	// Contrasts scales each attack's physical magnitude (1 = the paper's
	// default attack; 0.5 = a gentler attacker). The interposer is a
	// topological cut and does not scale — list it with contrast 1.
	Contrasts []float64 `json:"contrasts,omitempty"`
	// TemperaturesC is the ambient-temperature axis (calibration is at
	// 23 °C, so other values exercise the thermal mismatch).
	TemperaturesC []float64 `json:"temperatures_c,omitempty"`
	// NoiseScales multiplies the comparator's input-referred RMS noise.
	NoiseScales []float64 `json:"noise_scales,omitempty"`
	// DeadBinFracs injects a permanent dead-ETS-bin field of this fraction
	// at the CPU endpoint from the first monitoring round.
	DeadBinFracs []float64 `json:"dead_bin_fracs,omitempty"`
	// FleetSizes is how many links each trial monitors; the attack always
	// targets link 0, the rest contribute clean rounds to the
	// false-positive accounting.
	FleetSizes []int `json:"fleet_sizes,omitempty"`
	// Seeds is how many independent trials of each class each cell runs.
	Seeds int `json:"seeds,omitempty"`

	// PreRounds is how many clean rounds precede the attack mount;
	// PostRounds how many follow it. Clean trials run the same total.
	PreRounds  int `json:"pre_rounds,omitempty"`
	PostRounds int `json:"post_rounds,omitempty"`
	// Position is where contact attacks land, in meters from the CPU end.
	Position float64 `json:"position,omitempty"`

	// Detector overrides detector knobs (tuning sweeps, nerf injection).
	Detector DetectorConfig `json:"detector,omitempty"`

	// TargetFPR is the per-trial false-positive budget the auto-tuner picks
	// the operating threshold for.
	TargetFPR float64 `json:"target_fpr,omitempty"`

	// IncludeTrials embeds every trial's full round traces in the report
	// (large; the determinism tests use it to pin the whole pipeline).
	IncludeTrials bool `json:"include_trials,omitempty"`
}

// WithDefaults fills unset fields with the harness defaults.
func (c Config) WithDefaults() Config {
	if c.Name == "" {
		c.Name = "unnamed"
	}
	if len(c.Contrasts) == 0 {
		c.Contrasts = []float64{1}
	}
	if len(c.TemperaturesC) == 0 {
		c.TemperaturesC = []float64{23}
	}
	if len(c.NoiseScales) == 0 {
		c.NoiseScales = []float64{1}
	}
	if len(c.DeadBinFracs) == 0 {
		c.DeadBinFracs = []float64{0}
	}
	if len(c.FleetSizes) == 0 {
		c.FleetSizes = []int{1}
	}
	if c.Seeds == 0 {
		c.Seeds = 3
	}
	if c.PreRounds == 0 {
		c.PreRounds = 10
	}
	if c.PostRounds == 0 {
		c.PostRounds = 20
	}
	if c.Position == 0 {
		c.Position = 0.1
	}
	if c.TargetFPR == 0 {
		c.TargetFPR = 0.01
	}
	return c
}

// Validate rejects grids the runner cannot execute. Call on a
// WithDefaults()-completed config.
func (c Config) Validate() error {
	if len(c.Attacks) == 0 {
		return fmt.Errorf("experiment: no attacks listed — the grid needs at least one attack kind")
	}
	for _, a := range c.Attacks {
		if !attackKinds[a] {
			return fmt.Errorf("experiment: unknown attack kind %q (want %s)", a, strings.Join(AttackKinds(), ", "))
		}
	}
	for _, v := range c.Contrasts {
		if v <= 0 {
			return fmt.Errorf("experiment: contrast must be positive, got %g", v)
		}
	}
	for _, v := range c.NoiseScales {
		if v <= 0 {
			return fmt.Errorf("experiment: noise scale must be positive, got %g", v)
		}
	}
	for _, v := range c.DeadBinFracs {
		if v < 0 || v >= 1 {
			return fmt.Errorf("experiment: dead-bin fraction must be in [0, 1), got %g", v)
		}
	}
	for _, v := range c.FleetSizes {
		if v <= 0 {
			return fmt.Errorf("experiment: fleet size must be positive, got %d", v)
		}
	}
	if c.Seeds <= 0 {
		return fmt.Errorf("experiment: seeds must be positive, got %d", c.Seeds)
	}
	if c.PreRounds < 1 || c.PostRounds < 1 {
		return fmt.Errorf("experiment: pre_rounds and post_rounds must be at least 1, got %d/%d", c.PreRounds, c.PostRounds)
	}
	if c.Position <= 0 {
		return fmt.Errorf("experiment: position must be positive, got %g", c.Position)
	}
	if c.TargetFPR < 0 || c.TargetFPR >= 1 {
		return fmt.Errorf("experiment: target_fpr must be in [0, 1), got %g", c.TargetFPR)
	}
	if t := c.Detector.AuthThreshold; t < 0 || t >= 1 {
		return fmt.Errorf("experiment: detector.auth_threshold must be in [0, 1), got %g", t)
	}
	if s := c.Detector.TamperThresholdScale; s < 0 {
		return fmt.Errorf("experiment: detector.tamper_threshold_scale must be >= 0, got %g", s)
	}
	return nil
}

// LoadConfig reads, defaults, and validates a grid config file.
func LoadConfig(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("reading experiment config: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("parsing experiment config %s: %w", path, err)
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("experiment config %s: %w", path, err)
	}
	return cfg, nil
}

// Cell identifies one grid cell — one combination of every axis value.
type Cell struct {
	Attack      string  `json:"attack"`
	Contrast    float64 `json:"contrast"`
	TempC       float64 `json:"temp_c"`
	NoiseScale  float64 `json:"noise_scale"`
	DeadBinFrac float64 `json:"dead_bin_frac"`
	FleetSize   int     `json:"fleet_size"`
}

// Label renders the cell's canonical identity — also the rng namespace every
// trial of the cell derives from, so a cell's results are independent of
// which other cells share the grid.
func (c Cell) Label() string {
	return fmt.Sprintf("%s/c%g/t%g/n%g/d%g/f%d",
		c.Attack, c.Contrast, c.TempC, c.NoiseScale, c.DeadBinFrac, c.FleetSize)
}

// Cells expands the grid in deterministic (presentation) order.
func (c Config) Cells() []Cell {
	var cells []Cell
	for _, a := range c.Attacks {
		for _, con := range c.Contrasts {
			for _, t := range c.TemperaturesC {
				for _, n := range c.NoiseScales {
					for _, d := range c.DeadBinFracs {
						for _, f := range c.FleetSizes {
							cells = append(cells, Cell{
								Attack: a, Contrast: con, TempC: t,
								NoiseScale: n, DeadBinFrac: d, FleetSize: f,
							})
						}
					}
				}
			}
		}
	}
	return cells
}
