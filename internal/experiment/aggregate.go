package experiment

import "sort"

// Report is the versioned artifact one grid run produces. Everything in it is
// deterministic: cells appear in grid order, ROC curves in attack-declaration
// order, and map keys are sorted by the JSON encoder — the same config and
// seed marshal to the same bytes at any worker count.
type Report struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Config  Config `json:"config"`

	Cells  []CellResult `json:"cells"`
	ROC    []ROCCurve   `json:"roc"`
	Tuning Tuning       `json:"tuning"`

	// Trials carries the raw per-round traces when Config.IncludeTrials is
	// set (the determinism tests pin the whole pipeline through it).
	Trials []TrialResult `json:"trials,omitempty"`
}

// reportVersion is bumped whenever the report schema or the trial semantics
// change incompatibly — the quality guard refuses to compare across versions.
const reportVersion = 1

// CellResult is one grid cell's detection quality at the live operating
// point (the thresholds the protocol actually ran with).
type CellResult struct {
	Cell

	// AttackedTrials and CleanTrials are the sample sizes behind TPR and
	// FPR. Clean trials are shared across cells that differ only by attack.
	AttackedTrials int `json:"attacked_trials"`
	CleanTrials    int `json:"clean_trials"`

	// TPR is the fraction of attacked trials with a live victim alert at or
	// after the mount round; FPR the fraction of clean trials with any live
	// alert on any link in any round.
	TPR float64 `json:"tpr"`
	FPR float64 `json:"fpr"`

	// Detection latency in rounds from the mount (1 = caught immediately),
	// among detected trials. Zero when nothing was detected.
	LatencyP50 int `json:"latency_p50,omitempty"`
	LatencyP90 int `json:"latency_p90,omitempty"`
	LatencyMax int `json:"latency_max,omitempty"`

	// PostReenrollments totals victim fingerprint refreshes after the mount
	// across attacked trials — nonzero means the attack laundered itself
	// into the baseline at least once.
	PostReenrollments int `json:"post_reenrollments,omitempty"`
	// Halts and Wipes total the victim reactor's escalations across
	// attacked trials.
	Halts int `json:"halts,omitempty"`
	Wipes int `json:"wipes,omitempty"`
}

// ROC channels. The auth channel sweeps the similarity acceptance threshold
// θ (detect when score < θ); the tamper channel sweeps the multiplier m on
// the live tamper threshold (detect when PeakError > m·threshold, so m=1 is
// the live operating point).
const (
	ChannelAuthScore   = "auth-score"
	ChannelTamperRatio = "tamper-ratio"
)

// ROCPoint is one threshold's operating characteristics.
type ROCPoint struct {
	Threshold float64 `json:"threshold"`
	TPR       float64 `json:"tpr"`
	FPR       float64 `json:"fpr"`
}

// ROCCurve is one attack kind's ROC on one detection channel, positives
// pooled across every cell of that attack, negatives pooled across all clean
// trials.
type ROCCurve struct {
	Attack  string     `json:"attack"`
	Channel string     `json:"channel"`
	Points  []ROCPoint `json:"points"`
	AUC     float64    `json:"auc"`
}

// Tuning is the auto-tuned operating point: the highest similarity threshold
// whose pooled false-positive rate stays within the target. divotd specs set
// it via the auth_threshold field.
type Tuning struct {
	TargetFPR float64 `json:"target_fpr"`
	// AuthThreshold is the recommended θ; AchievedFPR the pooled FPR there.
	AuthThreshold float64 `json:"auth_threshold"`
	AchievedFPR   float64 `json:"achieved_fpr"`
	// TPRByAttack is each attack kind's pooled auth-channel TPR at the
	// recommended threshold.
	TPRByAttack map[string]float64 `json:"tpr_by_attack"`
}

// trialStat reduces a trial to its per-channel detection statistic. Both
// classes use only rounds at or after the mount, so positives and negatives
// see the same number of chances to cross a threshold — pooling the clean
// trials' pre-mount rounds too would bias the negative extremes low and
// understate the ROC. Attacked trials read the victim link; clean trials the
// fleet-wide extremes.
func trialStat(cfg Config, t TrialResult) (minScore, maxRatio float64) {
	minScore, maxRatio = 1, 0
	for _, r := range t.Rounds {
		if r.Round < cfg.mountRound() {
			continue
		}
		if t.Class == classAttacked {
			if r.VictimScore < minScore {
				minScore = r.VictimScore
			}
			if r.VictimRatio > maxRatio {
				maxRatio = r.VictimRatio
			}
		} else {
			if r.MinScore < minScore {
				minScore = r.MinScore
			}
			if r.MaxRatio > maxRatio {
				maxRatio = r.MaxRatio
			}
		}
	}
	return minScore, maxRatio
}

// rate is detections/total, 0 for an empty pool.
func rate(detected, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(detected) / float64(total)
}

// quantile returns the nearest-rank q-quantile of sorted ints (0 for empty).
func quantile(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// sweepAuth counts how many statistics fall below θ.
func sweepAuth(stats []float64, theta float64) int {
	n := 0
	for _, s := range stats {
		if s < theta {
			n++
		}
	}
	return n
}

// sweepTamper counts how many statistics exceed the multiplier m.
func sweepTamper(stats []float64, m float64) int {
	n := 0
	for _, s := range stats {
		if s > m {
			n++
		}
	}
	return n
}

// auc integrates TPR over FPR by trapezoid, anchoring the curve at (0,0) and
// (1,1).
func auc(points []ROCPoint) float64 {
	ps := append([]ROCPoint{{TPR: 0, FPR: 0}}, points...)
	ps = append(ps, ROCPoint{TPR: 1, FPR: 1})
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].FPR != ps[j].FPR {
			return ps[i].FPR < ps[j].FPR
		}
		return ps[i].TPR < ps[j].TPR
	})
	var area float64
	for i := 1; i < len(ps); i++ {
		area += (ps[i].FPR - ps[i-1].FPR) * (ps[i].TPR + ps[i-1].TPR) / 2
	}
	return area
}

// aggregate folds the trial results into the report.
func aggregate(cfg Config, trials []TrialResult) *Report {
	rep := &Report{Version: reportVersion, Name: cfg.Name, Config: cfg}
	if cfg.IncludeTrials {
		rep.Trials = trials
	}

	attacked := map[Cell][]TrialResult{}
	clean := map[Cell][]TrialResult{}
	for _, t := range trials {
		if t.Class == classAttacked {
			attacked[t.Cell] = append(attacked[t.Cell], t)
		} else {
			clean[t.Cell] = append(clean[t.Cell], t)
		}
	}

	// cleanAlerted counts an env's clean trials with any live alert.
	cleanAlerted := func(ts []TrialResult) int {
		n := 0
		for _, t := range ts {
			for _, r := range t.Rounds {
				if r.AuthAlerts+r.TamperAlerts+r.FleetAlerts > 0 {
					n++
					break
				}
			}
		}
		return n
	}

	// --- per-cell live operating point ---------------------------------
	for _, cell := range cfg.Cells() {
		ts := attacked[cell]
		cs := clean[envKey(cell)]
		cr := CellResult{Cell: cell, AttackedTrials: len(ts), CleanTrials: len(cs)}
		detected := 0
		var latencies []int
		for _, t := range ts {
			if t.DetectedRound > 0 {
				detected++
				latencies = append(latencies, t.DetectedRound-cfg.PreRounds)
			}
			cr.PostReenrollments += t.PostReenrollments
			cr.Halts += t.Halts
			cr.Wipes += t.Wipes
		}
		cr.TPR = rate(detected, len(ts))
		cr.FPR = rate(cleanAlerted(cs), len(cs))
		sort.Ints(latencies)
		cr.LatencyP50 = quantile(latencies, 0.5)
		cr.LatencyP90 = quantile(latencies, 0.9)
		if n := len(latencies); n > 0 {
			cr.LatencyMax = latencies[n-1]
		}
		rep.Cells = append(rep.Cells, cr)
	}

	// --- pooled statistics for the threshold sweeps --------------------
	// Positives per attack kind (all cells of that attack); negatives
	// pooled globally across every clean trial.
	posScore := map[string][]float64{}
	posRatio := map[string][]float64{}
	var negScore, negRatio []float64
	for _, t := range trials {
		s, r := trialStat(cfg, t)
		if t.Class == classAttacked {
			posScore[t.Cell.Attack] = append(posScore[t.Cell.Attack], s)
			posRatio[t.Cell.Attack] = append(posRatio[t.Cell.Attack], r)
		} else {
			negScore = append(negScore, s)
			negRatio = append(negRatio, r)
		}
	}

	// --- ROC curves -----------------------------------------------------
	for _, atk := range cfg.Attacks {
		authCurve := ROCCurve{Attack: atk, Channel: ChannelAuthScore}
		for i := 0; i <= 100; i++ {
			theta := float64(i) / 100
			authCurve.Points = append(authCurve.Points, ROCPoint{
				Threshold: theta,
				TPR:       rate(sweepAuth(posScore[atk], theta), len(posScore[atk])),
				FPR:       rate(sweepAuth(negScore, theta), len(negScore)),
			})
		}
		authCurve.AUC = auc(authCurve.Points)
		rep.ROC = append(rep.ROC, authCurve)

		tamperCurve := ROCCurve{Attack: atk, Channel: ChannelTamperRatio}
		for i := 1; i <= 50; i++ {
			m := float64(i) / 10
			tamperCurve.Points = append(tamperCurve.Points, ROCPoint{
				Threshold: m,
				TPR:       rate(sweepTamper(posRatio[atk], m), len(posRatio[atk])),
				FPR:       rate(sweepTamper(negRatio, m), len(negRatio)),
			})
		}
		tamperCurve.AUC = auc(tamperCurve.Points)
		rep.ROC = append(rep.ROC, tamperCurve)
	}

	// --- operating-point auto-tune --------------------------------------
	tuning := Tuning{TargetFPR: cfg.TargetFPR, TPRByAttack: map[string]float64{}}
	for i := 100; i >= 0; i-- {
		theta := float64(i) / 100
		if fpr := rate(sweepAuth(negScore, theta), len(negScore)); fpr <= cfg.TargetFPR {
			tuning.AuthThreshold = theta
			tuning.AchievedFPR = fpr
			break
		}
	}
	for _, atk := range cfg.Attacks {
		tuning.TPRByAttack[atk] = rate(
			sweepAuth(posScore[atk], tuning.AuthThreshold), len(posScore[atk]))
	}
	rep.Tuning = tuning
	return rep
}
