package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"divot/internal/exper"
)

// writeFile drops content into a fresh temp file and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigValidatesAndDefaults(t *testing.T) {
	bad := []struct {
		name, body, wantErr string
	}{
		{"no attacks", `{"seed": 1}`, "no attacks"},
		{"unknown attack", `{"attacks": ["laser"]}`, `unknown attack kind "laser"`},
		{"unknown field", `{"attacks": ["probe"], "atacks": []}`, "parsing"},
		{"bad contrast", `{"attacks": ["probe"], "contrasts": [0]}`, "contrast"},
		{"bad dead bins", `{"attacks": ["probe"], "dead_bin_fracs": [1]}`, "dead-bin"},
		{"bad fleet", `{"attacks": ["probe"], "fleet_sizes": [0]}`, "fleet size"},
		{"bad target fpr", `{"attacks": ["probe"], "target_fpr": 1}`, "target_fpr"},
		{"bad auth threshold", `{"attacks": ["probe"], "detector": {"auth_threshold": 1.5}}`, "auth_threshold"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadConfig(writeFile(t, "grid.json", tc.body))
			if err == nil {
				t.Fatalf("config %s loaded without error", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	cfg, err := LoadConfig(writeFile(t, "grid.json", `{"seed": 9, "attacks": ["probe"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seeds != 3 || cfg.PreRounds != 10 || cfg.PostRounds != 20 ||
		cfg.TargetFPR != 0.01 || cfg.Position != 0.1 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if len(cfg.Contrasts) != 1 || cfg.Contrasts[0] != 1 || cfg.FleetSizes[0] != 1 {
		t.Errorf("axis defaults not applied: %+v", cfg)
	}
}

func TestCellsExpandInDeclarationOrder(t *testing.T) {
	cfg := Config{
		Attacks:   []string{"wiretap", "probe"},
		Contrasts: []float64{1, 0.5},
	}.WithDefaults()
	cells := cfg.Cells()
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	want := []string{
		"wiretap/c1/t23/n1/d0/f1", "wiretap/c0.5/t23/n1/d0/f1",
		"probe/c1/t23/n1/d0/f1", "probe/c0.5/t23/n1/d0/f1",
	}
	for i, w := range want {
		if got := cells[i].Label(); got != w {
			t.Errorf("cell %d = %s, want %s", i, got, w)
		}
	}
}

// withParallelism runs fn with the repo-wide worker knob pinned.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := exper.Parallelism
	exper.Parallelism = n
	defer func() { exper.Parallelism = prev }()
	fn()
}

// detTestConfig is the determinism grid: small but exercising the attack
// mount, the adaptive stepper, a fleet of two, and the full trace recording.
func detTestConfig() Config {
	return Config{
		Name: "determinism", Seed: 17,
		Attacks:       []string{"wiretap", "adaptive-tap"},
		FleetSizes:    []int{2},
		Seeds:         1,
		PreRounds:     3,
		PostRounds:    6,
		IncludeTrials: true,
	}
}

// TestRunDeterministicAcrossParallelism is the harness's core contract: the
// same config and seed produce byte-identical report JSON whether trials run
// sequentially or across eight workers. Run under -race by `make race`.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	encode := func(workers int) []byte {
		var raw []byte
		withParallelism(t, workers, func() {
			rep, err := Run(detTestConfig())
			if err != nil {
				t.Fatal(err)
			}
			raw, err = EncodeReport(rep)
			if err != nil {
				t.Fatal(err)
			}
		})
		return raw
	}
	seq := encode(1)
	par := encode(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("report bytes differ between Parallelism 1 (%d bytes) and 8 (%d bytes)",
			len(seq), len(par))
	}
	if !bytes.Equal(par, encode(8)) {
		t.Fatal("report bytes differ between two identical runs")
	}
}

// TestHarnessMeasuresDetection pins the live operating point on an easy grid:
// a full-contrast wiretap must always be caught quickly with no false alarms,
// and the tamper ROC must be perfect.
func TestHarnessMeasuresDetection(t *testing.T) {
	cfg := Config{
		Name: "easy", Seed: 5,
		Attacks:   []string{"wiretap"},
		Seeds:     2,
		PreRounds: 3, PostRounds: 6,
	}
	var rep *Report
	withParallelism(t, 4, func() {
		var err error
		rep, err = Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	if len(rep.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(rep.Cells))
	}
	c := rep.Cells[0]
	if c.TPR != 1 || c.FPR != 0 {
		t.Errorf("wiretap cell TPR=%v FPR=%v, want 1/0", c.TPR, c.FPR)
	}
	if c.LatencyP50 < 1 || c.LatencyMax > cfg.PostRounds {
		t.Errorf("latency p50=%d max=%d out of range", c.LatencyP50, c.LatencyMax)
	}
	for _, curve := range rep.ROC {
		if curve.Channel == ChannelTamperRatio && curve.AUC != 1 {
			t.Errorf("tamper ROC AUC = %v, want 1", curve.AUC)
		}
	}
	if rep.Tuning.AchievedFPR > cfg.TargetFPR {
		t.Errorf("tuned FPR %v exceeds target %v", rep.Tuning.AchievedFPR, rep.Tuning.TargetFPR)
	}
}

// TestGuardCatchesDetectorNerf is the quality gate's acceptance criterion: a
// deliberately desensitized detector (tamper threshold scaled 10x, auth
// threshold dropped to 0.05) must register as a TPR regression against the
// healthy baseline, while comparing the baseline to itself stays green.
func TestGuardCatchesDetectorNerf(t *testing.T) {
	cfg := Config{
		Name: "guard", Seed: 11,
		Attacks:   []string{"probe"},
		Seeds:     2,
		PreRounds: 3, PostRounds: 6,
	}
	nerfed := cfg
	nerfed.Detector = DetectorConfig{AuthThreshold: 0.05, TamperThresholdScale: 10}

	var base, cur *Report
	withParallelism(t, 4, func() {
		var err error
		if base, err = Run(cfg); err != nil {
			t.Fatal(err)
		}
		if cur, err = Run(nerfed); err != nil {
			t.Fatal(err)
		}
	})
	if v := CompareReports(base, base, Tolerances{}); len(v) != 0 {
		t.Fatalf("baseline vs itself reported violations: %v", v)
	}
	violations := CompareReports(base, cur, Tolerances{})
	if len(violations) == 0 {
		t.Fatal("nerfed detector passed the quality gate")
	}
	found := false
	for _, v := range violations {
		if strings.Contains(v, "TPR regressed") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations carry no TPR regression: %v", violations)
	}

	// A shrunken current report must not pass by omission.
	trimmed := *cur
	trimmed.Cells = nil
	trimmed.ROC = nil
	v := CompareReports(base, &trimmed, Tolerances{})
	if len(v) != len(base.Cells)+len(base.ROC) {
		t.Errorf("empty report yields %d violations, want %d", len(v), len(base.Cells)+len(base.ROC))
	}

	// Version mismatches short-circuit with a single explicit violation.
	stale := *base
	stale.Version = 99
	if v := CompareReports(&stale, cur, Tolerances{}); len(v) != 1 || !strings.Contains(v[0], "version") {
		t.Errorf("version mismatch violations = %v", v)
	}
}

func TestSpliceMarkdown(t *testing.T) {
	rep := &Report{Version: reportVersion, Name: "splice", Config: Config{}.WithDefaults()}

	// Existing markers: the block between them is replaced, text outside
	// survives.
	doc := "# Title\n\nintro\n\n" + beginMarker + "\nSTALE-BLOCK\n" + endMarker + "\n\ntrailer\n"
	path := writeFile(t, "doc.md", doc)
	out, err := rep.SpliceMarkdown(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "intro") || !strings.Contains(out, "trailer") {
		t.Error("text outside the markers was lost")
	}
	if strings.Contains(out, "STALE-BLOCK") {
		t.Error("stale generated block survived the splice")
	}
	if !strings.Contains(out, "Grid `splice`") {
		t.Error("fresh render missing from spliced document")
	}

	// No markers: a fresh block is appended.
	out, err = rep.SpliceMarkdown(writeFile(t, "plain.md", "# Plain\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, beginMarker) || !strings.Contains(out, endMarker) {
		t.Error("markers not appended to marker-less document")
	}

	// Damaged markers: refuse rather than corrupt.
	if _, err := rep.SpliceMarkdown(writeFile(t, "broken.md", beginMarker+"\nno end\n")); err == nil {
		t.Error("damaged markers spliced without error")
	}
}

// TestAggregateSweepsAndTunes drives the aggregation math on synthetic
// traces: clearly separated score populations must yield a perfect auth ROC
// and a tuned threshold sitting just under the negative population.
func TestAggregateSweepsAndTunes(t *testing.T) {
	cfg := Config{
		Name: "synthetic", Seed: 1,
		Attacks: []string{"probe"}, Seeds: 2,
		PreRounds: 1, PostRounds: 1,
	}.WithDefaults()
	mk := func(class string, idx int, score float64) TrialResult {
		cell := cfg.Cells()[0]
		if class == classClean {
			cell = envKey(cell)
		}
		return TrialResult{
			Cell: cell, Class: class, Index: idx,
			Rounds: []RoundRecord{
				{Round: 1, VictimScore: 0.99, MinScore: 0.99},
				{Round: 2, VictimScore: score, MinScore: score},
			},
		}
	}
	trials := []TrialResult{
		mk(classAttacked, 0, 0.20), mk(classAttacked, 1, 0.25),
		mk(classClean, 0, 0.90), mk(classClean, 1, 0.92),
	}
	rep := aggregate(cfg, trials)

	var authAUC float64
	for _, c := range rep.ROC {
		if c.Attack == "probe" && c.Channel == ChannelAuthScore {
			authAUC = c.AUC
		}
	}
	if authAUC != 1 {
		t.Errorf("separable populations give auth AUC %v, want 1", authAUC)
	}
	if got := rep.Tuning.AuthThreshold; got != 0.90 {
		t.Errorf("tuned threshold = %v, want 0.90 (just under the negative floor)", got)
	}
	if rep.Tuning.TPRByAttack["probe"] != 1 {
		t.Errorf("TPR at tuned threshold = %v, want 1", rep.Tuning.TPRByAttack["probe"])
	}
}
