package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// EncodeReport marshals the report to its canonical byte form: indented JSON,
// sorted map keys (the encoder's default), trailing newline. Two runs of the
// same config produce the same bytes, so `cmp` and git diffs are meaningful.
func EncodeReport(r *Report) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("encoding report: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadReport reads a report artifact back (for the guard's baseline and the
// report/tune subcommands).
func LoadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("parsing report %s: %w", path, err)
	}
	if r.Version != reportVersion {
		return nil, fmt.Errorf("report %s: version %d, this build writes %d — regenerate it",
			path, r.Version, reportVersion)
	}
	return &r, nil
}
