package experiment

import "fmt"

// Tolerances sets how much a current report may deviate from the baseline
// before the quality guard fails. The zero value is the strict gate: any TPR
// drop, FPR rise, or AUC loss on a fixed-seed grid is a regression, because
// the fixed seed makes the comparison exact, not statistical.
type Tolerances struct {
	// TPR is the largest allowed per-cell true-positive-rate drop.
	TPR float64
	// FPR is the largest allowed per-cell false-positive-rate rise.
	FPR float64
	// AUC is the largest allowed per-curve area-under-curve loss.
	AUC float64
}

// CompareReports checks the current report against the baseline and returns
// one message per violation (empty means the gate passes). Baseline cells and
// curves missing from the current report are violations — a shrunken grid
// must not pass by omission.
func CompareReports(baseline, current *Report, tol Tolerances) []string {
	var bad []string
	if baseline.Version != current.Version {
		return []string{fmt.Sprintf(
			"report version changed %d -> %d; regenerate the baseline deliberately",
			baseline.Version, current.Version)}
	}

	cells := map[Cell]CellResult{}
	for _, c := range current.Cells {
		cells[c.Cell] = c
	}
	for _, base := range baseline.Cells {
		cur, ok := cells[base.Cell]
		if !ok {
			bad = append(bad, fmt.Sprintf("cell %s missing from current report", base.Label()))
			continue
		}
		if cur.TPR < base.TPR-tol.TPR {
			bad = append(bad, fmt.Sprintf("cell %s: TPR regressed %.3f -> %.3f",
				base.Label(), base.TPR, cur.TPR))
		}
		if cur.FPR > base.FPR+tol.FPR {
			bad = append(bad, fmt.Sprintf("cell %s: FPR regressed %.3f -> %.3f",
				base.Label(), base.FPR, cur.FPR))
		}
	}

	type curveKey struct{ attack, channel string }
	curves := map[curveKey]ROCCurve{}
	for _, c := range current.ROC {
		curves[curveKey{c.Attack, c.Channel}] = c
	}
	for _, base := range baseline.ROC {
		cur, ok := curves[curveKey{base.Attack, base.Channel}]
		if !ok {
			bad = append(bad, fmt.Sprintf("ROC curve %s/%s missing from current report",
				base.Attack, base.Channel))
			continue
		}
		if cur.AUC < base.AUC-tol.AUC {
			bad = append(bad, fmt.Sprintf("ROC %s/%s: AUC regressed %.4f -> %.4f",
				base.Attack, base.Channel, base.AUC, cur.AUC))
		}
	}
	return bad
}
