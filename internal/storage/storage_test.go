package storage

import (
	"bytes"
	"testing"

	"divot/internal/memctl"
	"divot/internal/sim"
)

type rig struct {
	sched *sim.Scheduler
	dev   *Device
	host  *Host
	comps []Completion
}

func newRig(t *testing.T, hostGate, devGate memctl.Gate, cfg HostConfig) *rig {
	t.Helper()
	r := &rig{sched: &sim.Scheduler{}}
	var err error
	r.dev, err = NewDevice(1024, devGate)
	if err != nil {
		t.Fatal(err)
	}
	r.host, err = NewHost(r.sched, r.dev, cfg, hostGate)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) submit(op CmdOp, lba int64, data []byte) {
	r.host.Submit(&Command{Op: op, LBA: lba, Data: data,
		Done: func(c Completion) { r.comps = append(r.comps, c) }})
}

func block(b byte) []byte { return bytes.Repeat([]byte{b}, BlockSize) }

func TestReadWriteTrimRoundTrip(t *testing.T) {
	r := newRig(t, nil, nil, DefaultHostConfig())
	r.submit(CmdWrite, 7, block(0xAB))
	r.submit(CmdRead, 7, nil)
	r.submit(CmdTrim, 7, nil)
	r.submit(CmdRead, 7, nil)
	r.sched.Run(1 << 20)
	if len(r.comps) != 4 {
		t.Fatalf("completions: %d", len(r.comps))
	}
	for i, c := range r.comps {
		if c.Status != CompOK {
			t.Fatalf("command %d status %v", i, c.Status)
		}
	}
	if !bytes.Equal(r.comps[1].Data, block(0xAB)) {
		t.Error("read-back differs")
	}
	for _, b := range r.comps[3].Data {
		if b != 0 {
			t.Fatal("trimmed block should read zero")
		}
	}
	if r.host.Completed != 4 {
		t.Errorf("Completed = %d", r.host.Completed)
	}
}

func TestUnwrittenBlockReadsZero(t *testing.T) {
	r := newRig(t, nil, nil, DefaultHostConfig())
	r.submit(CmdRead, 100, nil)
	r.sched.Run(1 << 20)
	for _, b := range r.comps[0].Data {
		if b != 0 {
			t.Fatal("fresh block should read zero")
		}
	}
}

func TestOutOfRangeLBA(t *testing.T) {
	r := newRig(t, nil, nil, DefaultHostConfig())
	r.submit(CmdRead, 5000, nil)
	r.submit(CmdRead, -1, nil)
	r.sched.Run(1 << 20)
	for i, c := range r.comps {
		if c.Status != CompOutOfRange {
			t.Errorf("command %d status %v", i, c.Status)
		}
	}
}

func TestDeviceGateBlocksStolenDrive(t *testing.T) {
	// The storage cold boot: the drive is moved to an attacker's host, so
	// the device-side gate (driven by the drive's own iTDR) is closed and
	// the media refuses to serve.
	devGate := memctl.NewStaticGate(true)
	r := newRig(t, nil, devGate, DefaultHostConfig())
	r.submit(CmdWrite, 3, block(0x42))
	r.sched.Run(1 << 20)
	devGate.Set(false) // drive now sees a foreign bus
	r.submit(CmdRead, 3, nil)
	r.sched.Run(1 << 20)
	last := r.comps[len(r.comps)-1]
	if last.Status != CompBlockedDevice {
		t.Fatalf("stolen-drive read status %v", last.Status)
	}
	if r.dev.Refused != 1 {
		t.Errorf("Refused = %d", r.dev.Refused)
	}
	// Back on the paired host, data is intact.
	devGate.Set(true)
	r.submit(CmdRead, 3, nil)
	r.sched.Run(1 << 20)
	last = r.comps[len(r.comps)-1]
	if last.Status != CompOK || !bytes.Equal(last.Data, block(0x42)) {
		t.Error("data lost after gate reopened")
	}
}

func TestHostGateStallsThenRecovers(t *testing.T) {
	hostGate := memctl.NewStaticGate(false)
	r := newRig(t, hostGate, nil, DefaultHostConfig())
	r.submit(CmdRead, 0, nil)
	r.sched.RunUntil(10 * sim.Microsecond)
	if len(r.comps) != 0 {
		t.Fatal("command completed while host gate closed")
	}
	if r.host.QueueDepth() != 1 {
		t.Fatalf("queue depth %d", r.host.QueueDepth())
	}
	hostGate.Set(true)
	r.sched.Run(1 << 20)
	if len(r.comps) != 1 || r.comps[0].Status != CompOK {
		t.Fatalf("completions after recovery: %+v", r.comps)
	}
	if r.comps[0].Latency < 10*sim.Microsecond {
		t.Error("latency should include the stall")
	}
}

func TestHostGateFailFast(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.FailFast = true
	hostGate := memctl.NewStaticGate(false)
	r := newRig(t, hostGate, nil, cfg)
	r.submit(CmdRead, 0, nil)
	r.submit(CmdWrite, 1, block(1))
	r.sched.Run(1 << 20)
	if len(r.comps) != 2 {
		t.Fatalf("completions: %d", len(r.comps))
	}
	for _, c := range r.comps {
		if c.Status != CompBlockedHost {
			t.Errorf("status %v", c.Status)
		}
	}
	if r.host.Blocked != 2 {
		t.Errorf("Blocked = %d", r.host.Blocked)
	}
}

func TestLatencyModel(t *testing.T) {
	r := newRig(t, nil, nil, DefaultHostConfig())
	r.submit(CmdTrim, 0, nil)
	r.submit(CmdRead, 0, nil)
	r.sched.Run(1 << 20)
	trim, read := r.comps[0].Latency, r.comps[1].Latency
	if read <= trim {
		t.Errorf("read (%v) should outlast trim (%v): payload transfer", read, trim)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewDevice(0, nil); err == nil {
		t.Error("expected capacity error")
	}
	sched := &sim.Scheduler{}
	dev, _ := NewDevice(8, nil)
	bad := DefaultHostConfig()
	bad.LinkClockHz = 0
	if _, err := NewHost(sched, dev, bad, nil); err == nil {
		t.Error("expected clock error")
	}
	bad = DefaultHostConfig()
	bad.MediaCycles = 0
	if _, err := NewHost(sched, dev, bad, nil); err == nil {
		t.Error("expected latency error")
	}
}

func TestBadWriteSizePanicsViaDeviceError(t *testing.T) {
	r := newRig(t, nil, nil, DefaultHostConfig())
	r.submit(CmdWrite, 0, []byte{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Error("malformed write should surface loudly")
		}
	}()
	r.sched.Run(1 << 20)
}

func TestStringers(t *testing.T) {
	if CmdRead.String() != "READ" || CmdWrite.String() != "WRITE" ||
		CmdTrim.String() != "TRIM" || CmdOp(9).String() == "" {
		t.Error("CmdOp names")
	}
	if CompOK.String() != "OK" || CompBlockedHost.String() != "BLOCKED(host)" ||
		CompBlockedDevice.String() != "BLOCKED(device)" ||
		CompOutOfRange.String() != "OUT-OF-RANGE" || CompletionStatus(9).String() == "" {
		t.Error("CompletionStatus names")
	}
}
