// Package storage extends DIVOT to a data-storage link — §VI names "data
// storage systems" as the next interface class after memory buses. A block
// device (an SSD's logical view) sits behind a DIVOT-protected serial link:
// the host-side gate stalls command submission and the device-side gate
// refuses media access when the link fingerprint stops matching, so a drive
// pulled from its chassis (the storage cold boot: stealing the disk) will
// not serve blocks to a foreign host even before full-disk-encryption keys
// enter the picture.
package storage

import (
	"errors"
	"fmt"

	"divot/internal/memctl"
	"divot/internal/sim"
)

// BlockSize is the logical block size in bytes.
const BlockSize = 512

// Sentinel errors.
var (
	// ErrUnauthorized is returned when the device-side gate refuses media
	// access.
	ErrUnauthorized = errors.New("storage: media access blocked by device gate")
	// ErrOutOfRange is returned for LBAs beyond the device capacity.
	ErrOutOfRange = errors.New("storage: LBA out of range")
)

// CmdOp is a block-command opcode.
type CmdOp int

const (
	// CmdRead reads one block.
	CmdRead CmdOp = iota
	// CmdWrite writes one block.
	CmdWrite
	// CmdTrim discards one block.
	CmdTrim
)

// String names the opcode.
func (o CmdOp) String() string {
	switch o {
	case CmdRead:
		return "READ"
	case CmdWrite:
		return "WRITE"
	case CmdTrim:
		return "TRIM"
	}
	return fmt.Sprintf("CmdOp(%d)", int(o))
}

// Command is one queued block operation.
type Command struct {
	ID   uint64
	Op   CmdOp
	LBA  int64
	Data []byte
	Done func(Completion)

	issued sim.Time
}

// CompletionStatus is the command outcome.
type CompletionStatus int

const (
	// CompOK: success.
	CompOK CompletionStatus = iota
	// CompBlockedHost: the host-side gate was closed (link unauthentic
	// from the host's view) under the fail-fast policy.
	CompBlockedHost
	// CompBlockedDevice: the device-side gate refused media access.
	CompBlockedDevice
	// CompOutOfRange: bad LBA.
	CompOutOfRange
)

// String names the status.
func (s CompletionStatus) String() string {
	switch s {
	case CompOK:
		return "OK"
	case CompBlockedHost:
		return "BLOCKED(host)"
	case CompBlockedDevice:
		return "BLOCKED(device)"
	case CompOutOfRange:
		return "OUT-OF-RANGE"
	}
	return fmt.Sprintf("CompletionStatus(%d)", int(s))
}

// Completion reports a finished command.
type Completion struct {
	ID      uint64
	Status  CompletionStatus
	Data    []byte
	Latency sim.Time
}

// Device is the drive's logical media plus its DIVOT gate.
type Device struct {
	capacity int64 // blocks
	gate     memctl.Gate
	blocks   map[int64][]byte

	// Served and Refused count media accesses.
	Served  int64
	Refused int64
}

// NewDevice builds a device with the given capacity in blocks. A nil gate
// means always authorized.
func NewDevice(capacityBlocks int64, gate memctl.Gate) (*Device, error) {
	if capacityBlocks <= 0 {
		return nil, fmt.Errorf("storage: non-positive capacity %d", capacityBlocks)
	}
	if gate == nil {
		gate = memctl.GateFunc(func() bool { return true })
	}
	return &Device{capacity: capacityBlocks, gate: gate, blocks: make(map[int64][]byte)}, nil
}

// Capacity returns the device size in blocks.
func (d *Device) Capacity() int64 { return d.capacity }

// access performs one media operation under the gate.
func (d *Device) access(op CmdOp, lba int64, data []byte) ([]byte, error) {
	if lba < 0 || lba >= d.capacity {
		return nil, fmt.Errorf("%w: %d", ErrOutOfRange, lba)
	}
	if !d.gate.Authorized() {
		d.Refused++
		return nil, fmt.Errorf("%w: LBA %d", ErrUnauthorized, lba)
	}
	d.Served++
	switch op {
	case CmdWrite:
		if len(data) != BlockSize {
			return nil, fmt.Errorf("storage: write of %d bytes, want %d", len(data), BlockSize)
		}
		buf := make([]byte, BlockSize)
		copy(buf, data)
		d.blocks[lba] = buf
		return nil, nil
	case CmdTrim:
		delete(d.blocks, lba)
		return nil, nil
	default:
		out := make([]byte, BlockSize)
		if b, ok := d.blocks[lba]; ok {
			copy(out, b)
		}
		return out, nil
	}
}

// HostConfig parameterizes the host-side queue.
type HostConfig struct {
	// LinkClockHz is the serial-link clock; command and data transfer
	// times derive from it.
	LinkClockHz float64
	// CmdOverheadCycles is the per-command protocol overhead.
	CmdOverheadCycles int
	// MediaCycles is the device's media latency per block.
	MediaCycles int
	// FailFast completes commands with CompBlockedHost while the host gate
	// is closed, instead of stalling them.
	FailFast bool
}

// DefaultHostConfig returns a 1 GHz link with NVMe-ish constants.
func DefaultHostConfig() HostConfig {
	return HostConfig{
		LinkClockHz:       1e9,
		CmdOverheadCycles: 64,
		MediaCycles:       4096,
		FailFast:          false,
	}
}

// Host is the host-side command queue over the protected link.
type Host struct {
	sched  *sim.Scheduler
	clock  *sim.Clock
	cfg    HostConfig
	dev    *Device
	gate   memctl.Gate
	queue  []*Command
	busy   bool
	nextID uint64

	// Completed and Blocked count command outcomes.
	Completed int64
	Blocked   int64
}

// NewHost builds the host-side queue. hostGate may be nil (unprotected).
func NewHost(sched *sim.Scheduler, dev *Device, cfg HostConfig, hostGate memctl.Gate) (*Host, error) {
	if cfg.LinkClockHz <= 0 {
		return nil, fmt.Errorf("storage: non-positive link clock %v", cfg.LinkClockHz)
	}
	if cfg.CmdOverheadCycles <= 0 || cfg.MediaCycles <= 0 {
		return nil, fmt.Errorf("storage: non-positive latency constants %+v", cfg)
	}
	if hostGate == nil {
		hostGate = memctl.GateFunc(func() bool { return true })
	}
	return &Host{
		sched: sched,
		clock: sim.NewClock(sched, cfg.LinkClockHz),
		cfg:   cfg,
		dev:   dev,
		gate:  hostGate,
	}, nil
}

// Submit queues a command and returns its ID.
func (h *Host) Submit(c *Command) uint64 {
	h.nextID++
	c.ID = h.nextID
	c.issued = h.sched.Now()
	h.queue = append(h.queue, c)
	h.kick()
	return c.ID
}

// QueueDepth returns the number of waiting commands.
func (h *Host) QueueDepth() int { return len(h.queue) }

func (h *Host) kick() {
	if h.busy {
		return
	}
	h.busy = true
	h.sched.After(0, h.serviceNext)
}

func (h *Host) serviceNext() {
	if len(h.queue) == 0 {
		h.busy = false
		return
	}
	if !h.gate.Authorized() {
		if h.cfg.FailFast {
			for _, c := range h.queue {
				h.finish(c, Completion{ID: c.ID, Status: CompBlockedHost})
				h.Blocked++
			}
			h.queue = h.queue[:0]
			h.busy = false
			return
		}
		h.sched.After(h.clock.CyclesToTime(256), h.serviceNext)
		return
	}
	c := h.queue[0]
	h.queue = h.queue[1:]

	// Transfer time: command overhead plus one block of payload for
	// reads/writes (8 bits per link cycle on this single-lane model).
	cycles := int64(h.cfg.CmdOverheadCycles + h.cfg.MediaCycles)
	if c.Op != CmdTrim {
		cycles += BlockSize
	}
	done := h.sched.Now() + h.clock.CyclesToTime(cycles)
	h.sched.At(done, func() {
		data, err := h.dev.access(c.Op, c.LBA, c.Data)
		comp := Completion{ID: c.ID, Latency: h.sched.Now() - c.issued}
		switch {
		case err == nil:
			comp.Status = CompOK
			comp.Data = data
			h.Completed++
		case errors.Is(err, ErrUnauthorized):
			comp.Status = CompBlockedDevice
			h.Blocked++
		case errors.Is(err, ErrOutOfRange):
			comp.Status = CompOutOfRange
		default:
			panic(fmt.Sprintf("storage: unexpected device error: %v", err))
		}
		h.finish(c, comp)
		h.serviceNext()
	})
}

func (h *Host) finish(c *Command, comp Completion) {
	if c.Done != nil {
		c.Done(comp)
	}
}
