// Package analog models the small analog front end the DIVOT architecture
// adds to a bus interface: the coupler that taps the back-reflection, the
// intrinsic-noise-afflicted 1-bit comparator that performs analog-to-
// probability conversion, and the RC quasi-triangle modulator that implements
// probability density modulation.
package analog

import (
	"fmt"

	"divot/internal/rng"
	"divot/internal/signal"
)

// Coupler taps a fraction of the wave travelling backward on the line into
// the detector. Real directional couplers also leak a little of the forward
// (incident) wave; Directivity captures that.
type Coupler struct {
	// Factor is the voltage coupling factor for the backward wave (0..1].
	Factor float64
	// Directivity is the fraction of the forward wave that leaks into the
	// detector output relative to Factor (0 = ideal coupler).
	Directivity float64
}

// DefaultCoupler returns a -14 dB integrated coupler. Directivity leakage of
// the forward wave is a static baseline a real iTDR trims out during
// calibration (the incident edge is the same every probe), so the default
// models the post-trim instrument: zero net leakage. Setting a nonzero
// Directivity shows what an untrimmed front end does to the APC's dynamic
// range.
func DefaultCoupler() Coupler {
	return Coupler{Factor: 0.3, Directivity: 0}
}

// Output combines the backward reflection and the forward incident waveform
// into the voltage the comparator sees.
func (c Coupler) Output(backward, forward *signal.Waveform) *signal.Waveform {
	return c.OutputInto(nil, backward, forward)
}

// OutputInto is Output with a reusable destination (nil allocates a fresh
// one), which must not alias either input; numerics are bit-identical to
// Output.
func (c Coupler) OutputInto(dst, backward, forward *signal.Waveform) *signal.Waveform {
	dst = signal.ScaleInto(dst, backward, c.Factor)
	if c.Directivity != 0 && forward != nil {
		k := c.Factor * c.Directivity
		for i, v := range forward.Samples {
			dst.Samples[i] += k * v
		}
	}
	return dst
}

// Comparator is a 1-bit sampler with intrinsic input-referred Gaussian noise
// and a static input offset. Its output is 1 when the (noisy) signal input
// exceeds the reference input at the sampling instant — the APC primitive.
type Comparator struct {
	// NoiseSigma is the RMS input-referred noise voltage.
	NoiseSigma float64
	// Offset is the static input offset voltage.
	Offset float64
	noise  *rng.Stream
}

// NewComparator returns a comparator drawing its noise from the given stream.
func NewComparator(noiseSigma, offset float64, noise *rng.Stream) *Comparator {
	if noiseSigma <= 0 {
		panic(fmt.Sprintf("analog: non-positive comparator noise %v", noiseSigma))
	}
	return &Comparator{NoiseSigma: noiseSigma, Offset: offset, noise: noise}
}

// Sample returns the comparator decision for signal voltage vsig against
// reference voltage vref, including one fresh noise draw.
func (c *Comparator) Sample(vsig, vref float64) bool {
	return c.SampleWith(c.noise, vsig, vref)
}

// SampleWith is Sample drawing its noise from an explicit stream instead of
// the comparator's own. The parallel measurement engine hands each ETS phase
// bin its own labelled child stream through here, so concurrent bins never
// contend on (or reorder) a shared noise sequence — the property that makes
// measurements bit-identical at any parallelism. NoiseSigma and Offset are
// still the comparator's, so offset drift injected between measurements is
// honoured.
func (c *Comparator) SampleWith(noise *rng.Stream, vsig, vref float64) bool {
	n := noise.Gaussian(0, c.NoiseSigma)
	return vsig+c.Offset+n > vref
}

// SampleDistorted is SampleWith for a comparator suffering transient
// degradation: extraOffset volts of additional input offset and a noise sigma
// scaled by noiseScale, neither of which the calibrated inverse map knows
// about. The fault-injection layer routes distorted trials through here so the
// healthy path keeps its exact draw sequence.
func (c *Comparator) SampleDistorted(noise *rng.Stream, vsig, vref, extraOffset, noiseScale float64) bool {
	n := noise.Gaussian(0, c.NoiseSigma*noiseScale)
	return vsig+c.Offset+extraOffset+n > vref
}

// Modulator produces the PDM reference waveform. Level must be deterministic
// in t so that the Vernier relationship between the modulation frequency and
// the sampling clock holds exactly.
type Modulator interface {
	// Level returns the reference voltage at time t.
	Level(t float64) float64
	// Period returns the modulation period in seconds.
	Period() float64
}

// TriangleModulator is the paper's showcased PDM source: a digital output
// driving an RC charge-discharge circuit.
type TriangleModulator struct {
	signal.RCQuasiTriangle
}

// NewTriangleModulator returns an RC quasi-triangle modulator with the given
// fundamental frequency and amplitude. tauRatio sets the RC constant relative
// to the half period; values near 1 give a good triangle approximation.
func NewTriangleModulator(freq, amplitude, tauRatio float64) TriangleModulator {
	if freq <= 0 || amplitude <= 0 || tauRatio <= 0 {
		panic(fmt.Sprintf("analog: invalid modulator parameters f=%v A=%v tau=%v",
			freq, amplitude, tauRatio))
	}
	return TriangleModulator{signal.RCQuasiTriangle{Freq: freq, Amplitude: amplitude, TauRatio: tauRatio}}
}

// Period returns the modulation period.
func (m TriangleModulator) Period() float64 { return 1 / m.Freq }

// FixedReference is a degenerate modulator holding a constant reference —
// the no-PDM baseline used in the Fig. 4 ablation.
type FixedReference float64

// Level returns the constant reference voltage.
func (f FixedReference) Level(float64) float64 { return float64(f) }

// Period returns a nominal 1-second period (the reference never changes).
func (f FixedReference) Period() float64 { return 1 }
