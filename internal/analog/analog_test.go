package analog

import (
	"math"
	"testing"

	"divot/internal/rng"
	"divot/internal/signal"
)

func TestCouplerOutput(t *testing.T) {
	back := signal.FromSamples(1, []float64{1, 2})
	fwd := signal.FromSamples(1, []float64{10, 10})
	c := Coupler{Factor: 0.5, Directivity: 0.1}
	out := c.Output(back, fwd)
	// 0.5*back + 0.5*0.1*fwd
	if math.Abs(out.Samples[0]-1.0) > 1e-12 {
		t.Errorf("sample 0 = %v, want 1.0", out.Samples[0])
	}
	if math.Abs(out.Samples[1]-1.5) > 1e-12 {
		t.Errorf("sample 1 = %v, want 1.5", out.Samples[1])
	}
}

func TestIdealCouplerIgnoresForward(t *testing.T) {
	back := signal.FromSamples(1, []float64{1})
	fwd := signal.FromSamples(1, []float64{100})
	c := Coupler{Factor: 0.2}
	if got := c.Output(back, fwd).Samples[0]; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("ideal coupler output = %v, want 0.2", got)
	}
	// Nil forward wave is allowed.
	c.Directivity = 0.1
	if got := c.Output(back, nil).Samples[0]; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("nil-forward output = %v, want 0.2", got)
	}
}

func TestComparatorProbabilityTracksCDF(t *testing.T) {
	sigma := 1e-3
	c := NewComparator(sigma, 0, rng.New(1))
	const trials = 100000
	// At vsig = vref + sigma the ones probability should be Φ(1) ≈ 0.841.
	ones := 0
	for i := 0; i < trials; i++ {
		if c.Sample(sigma, 0) {
			ones++
		}
	}
	p := float64(ones) / trials
	if math.Abs(p-0.8413) > 0.01 {
		t.Errorf("P(Y=1) at +1σ = %v, want ~0.841", p)
	}
}

func TestComparatorOffset(t *testing.T) {
	c := NewComparator(1e-6, 0.5, rng.New(2))
	// Offset shifts the effective signal: vsig 0 vs vref 0.4 with +0.5
	// offset should almost always fire.
	ones := 0
	for i := 0; i < 1000; i++ {
		if c.Sample(0, 0.4) {
			ones++
		}
	}
	if ones < 990 {
		t.Errorf("offset comparator fired only %d/1000", ones)
	}
}

func TestComparatorPanicsOnBadNoise(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewComparator(0, 0, rng.New(1))
}

func TestTriangleModulatorPeriodAndBounds(t *testing.T) {
	m := NewTriangleModulator(2e6, 0.01, 1)
	if m.Period() != 0.5e-6 {
		t.Errorf("Period = %v", m.Period())
	}
	for i := 0; i < 1000; i++ {
		v := m.Level(float64(i) * 3.7e-9)
		if math.Abs(v) > 0.01 {
			t.Fatalf("modulator level %v exceeds amplitude", v)
		}
	}
}

func TestTriangleModulatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTriangleModulator(0, 1, 1)
}

func TestFixedReference(t *testing.T) {
	f := FixedReference(0.25)
	if f.Level(123) != 0.25 || f.Level(0) != 0.25 {
		t.Error("fixed reference should be constant")
	}
	if f.Period() <= 0 {
		t.Error("period must be positive")
	}
}

func TestSampleWithMatchesOwnStream(t *testing.T) {
	// SampleWith(s, ...) with an identically-derived stream must reproduce
	// Sample's decisions exactly — the property the parallel measurement
	// engine relies on when it hands each ETS bin its own stream child.
	own := NewComparator(1e-3, 0.2e-3, rng.New(5).Child("noise"))
	ext := NewComparator(1e-3, 0.2e-3, nil)
	s := rng.New(5).Child("noise")
	for i := 0; i < 1000; i++ {
		vsig := float64(i%7) * 1e-4
		if own.Sample(vsig, 3e-4) != ext.SampleWith(s, vsig, 3e-4) {
			t.Fatalf("decision %d diverged", i)
		}
	}
}
