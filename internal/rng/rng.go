// Package rng provides deterministic, splittable random streams for the DIVOT
// simulation. Every stochastic component (line manufacturing, comparator
// noise, traffic, environment) draws from its own labelled child stream so
// that experiments are reproducible and components are statistically
// independent of each other.
//
// Determinism contract: a stream's output depends only on its seed, and a
// child's seed depends only on the parent's seed and the label — never on how
// much the parent (or any sibling) has been consumed. This is what lets the
// measurement engine fan independent units of work (ETS phase bins, fleet
// rigs, monitored links) across goroutines and still produce bit-identical
// results at any parallelism level: each unit derives its own child stream
// from a stable label, so scheduling order cannot change what anyone draws.
//
// Streams are backed by PCG (math/rand/v2): two words of state, so forking a
// child per phase bin inside a hot measurement loop costs a few dozen bytes,
// not the ~5 KB a math/rand v1 source would.
package rng

import (
	"math/rand/v2"
)

// Stream is a deterministic random source. It wraps a PCG generator with a
// seed derivation scheme that lets a stream be split into independent,
// labelled children.
type Stream struct {
	seed uint64
	pcg  *rand.PCG
	r    *rand.Rand
}

// New returns a stream rooted at the given seed.
func New(seed uint64) *Stream {
	// The second PCG word is decorrelated from the first with a golden-ratio
	// increment so that nearby seeds do not yield overlapping sequences.
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Stream{seed: seed, pcg: pcg, r: rand.New(pcg)}
}

// Reseed resets the stream in place to the state New(seed) would produce,
// without allocating. A PCG's output depends only on its two state words and
// rand.Rand carries no state of its own, so a reseeded stream is
// bit-identical to a freshly constructed one — the primitive that lets hot
// loops keep one Stream per worker and re-derive it per work unit instead of
// forking garbage.
func (s *Stream) Reseed(seed uint64) {
	s.seed = seed
	s.pcg.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// ReseedChild is Child without the allocation: it re-points s at the stream
// Child(label) of parent would return. s and parent may not be the same
// stream.
func (s *Stream) ReseedChild(parent *Stream, label string) {
	s.Reseed(parent.deriveSeed(label, 0, false))
}

// ReseedChildN is ChildN without the allocation: it re-points s at the
// stream ChildN(label, n) of parent would return. s and parent may not be
// the same stream. Reading the parent's seed is the only access to parent,
// so distinct workers may re-derive children of one shared parent
// concurrently.
func (s *Stream) ReseedChildN(parent *Stream, label string, n uint64) {
	s.Reseed(parent.deriveSeed(label, n, true))
}

// Child derives an independent stream from this stream's seed and a label.
// Calling Child with the same label always yields an identically seeded
// stream, regardless of how much the parent has been consumed.
func (s *Stream) Child(label string) *Stream {
	return New(s.deriveSeed(label, 0, false))
}

// ChildN derives an independent stream from the seed, a label, and an index —
// the allocation-light equivalent of Child(fmt.Sprintf("%s-%d", label, n))
// for fan-out loops that fork one stream per work unit. Distinct (label, n)
// pairs yield independent streams, and ChildN never collides with Child: the
// index is hashed as a fixed-width suffix, not formatted into the label.
func (s *Stream) ChildN(label string, n uint64) *Stream {
	return New(s.deriveSeed(label, n, true))
}

// FNV-1a constants, matching hash/fnv's 64-bit offset basis and prime. The
// hash is inlined (rather than calling hash/fnv) so deriving a child seed
// allocates nothing; the rng tests pin the inline form against hash/fnv so
// historical child seeds can never silently change.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// deriveSeed hashes the parent seed, the label, and (optionally) an index
// into a child seed — FNV-1a over the little-endian seed bytes, the label
// bytes, then the little-endian index bytes.
func (s *Stream) deriveSeed(label string, n uint64, indexed bool) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(s.seed>>(8*i)))) * fnvPrime64
	}
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * fnvPrime64
	}
	if indexed {
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(n>>(8*i)))) * fnvPrime64
		}
	}
	return h
}

// Seed returns the seed this stream was created with.
func (s *Stream) Seed() uint64 { return s.seed }

// Float64 returns a uniform sample in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Gaussian returns a normal sample with the given mean and standard deviation.
func (s *Stream) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*s.r.NormFloat64()
}

// Intn returns a uniform sample in [0, n).
func (s *Stream) Intn(n int) int { return s.r.IntN(n) }

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.r.Float64() < p }

// Bytes fills b with random bytes.
func (s *Stream) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := s.r.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	if i < len(b) {
		v := s.r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }
