// Package rng provides deterministic, splittable random streams for the DIVOT
// simulation. Every stochastic component (line manufacturing, comparator
// noise, traffic, environment) draws from its own labelled child stream so
// that experiments are reproducible and components are statistically
// independent of each other.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Stream is a deterministic random source. It wraps math/rand with a seed
// derivation scheme that lets a stream be split into independent, labelled
// children.
type Stream struct {
	seed uint64
	r    *rand.Rand
}

// New returns a stream rooted at the given seed.
func New(seed uint64) *Stream {
	return &Stream{seed: seed, r: rand.New(rand.NewSource(int64(seed)))}
}

// Child derives an independent stream from this stream's seed and a label.
// Calling Child with the same label always yields an identically seeded
// stream, regardless of how much the parent has been consumed.
func (s *Stream) Child(label string) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(s.seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

// Seed returns the seed this stream was created with.
func (s *Stream) Seed() uint64 { return s.seed }

// Float64 returns a uniform sample in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Gaussian returns a normal sample with the given mean and standard deviation.
func (s *Stream) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*s.r.NormFloat64()
}

// Intn returns a uniform sample in [0, n).
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.r.Float64() < p }

// Bytes fills b with random bytes.
func (s *Stream) Bytes(b []byte) {
	// math/rand Read never fails.
	s.r.Read(b)
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }
