package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestChildIndependentOfParentConsumption(t *testing.T) {
	a := New(7)
	a.Float64() // consume some parent state
	a.Float64()
	c1 := a.Child("noise")
	b := New(7)
	c2 := b.Child("noise")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("child stream depends on parent consumption")
		}
	}
}

func TestChildLabelsDiffer(t *testing.T) {
	s := New(7)
	if s.Child("a").Float64() == s.Child("b").Float64() {
		t.Error("differently labelled children produced identical first samples")
	}
}

func TestGaussianMoments(t *testing.T) {
	s := New(1)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.Gaussian(3, 2)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(2)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(-3, 5)
		if x < -3 || x >= 5 {
			t.Fatalf("Uniform sample %v out of range", x)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(3)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			count++
		}
	}
	p := float64(count) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(4)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSeedAccessor(t *testing.T) {
	if New(99).Seed() != 99 {
		t.Error("Seed accessor mismatch")
	}
}

func TestChildNIndependentOfParentConsumption(t *testing.T) {
	a := New(42)
	b := New(42)
	b.Float64() // consume the parent; children must not notice
	ca, cb := a.ChildN("bin", 7), b.ChildN("bin", 7)
	for i := 0; i < 100; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatalf("ChildN depends on parent consumption (draw %d)", i)
		}
	}
}

func TestChildNIndicesDiffer(t *testing.T) {
	p := New(42)
	seen := make(map[uint64]uint64)
	for n := uint64(0); n < 343; n++ {
		s := p.ChildN("bin", n).Seed()
		if prev, dup := seen[s]; dup {
			t.Fatalf("ChildN seeds collide: indices %d and %d", prev, n)
		}
		seen[s] = n
	}
	if p.ChildN("bin", 0).Seed() == p.Child("bin").Seed() {
		t.Error("ChildN(label, 0) must not collide with Child(label)")
	}
}
