package rng

import (
	"hash/fnv"
	"testing"
)

// TestDeriveSeedMatchesHashFnv pins the inlined FNV-1a against the standard
// library: if the inline form ever drifts, every historical child seed — and
// with it every golden result in the repo — would silently change.
func TestDeriveSeedMatchesHashFnv(t *testing.T) {
	ref := func(seed uint64, label string, n uint64, indexed bool) uint64 {
		h := fnv.New64a()
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(seed >> (8 * i))
		}
		h.Write(buf[:])
		h.Write([]byte(label))
		if indexed {
			for i := range buf {
				buf[i] = byte(n >> (8 * i))
			}
			h.Write(buf[:])
		}
		return h.Sum64()
	}
	cases := []struct {
		seed    uint64
		label   string
		n       uint64
		indexed bool
	}{
		{0, "", 0, false},
		{7, "line", 0, false},
		{7, "bin", 42, true},
		{0xdeadbeefcafef00d, "measurement", 1 << 40, true},
		{^uint64(0), "comparator", ^uint64(0), true},
	}
	for _, c := range cases {
		s := New(c.seed)
		got := s.deriveSeed(c.label, c.n, c.indexed)
		want := ref(c.seed, c.label, c.n, c.indexed)
		if got != want {
			t.Errorf("deriveSeed(%d, %q, %d, %v) = %#x, want %#x",
				c.seed, c.label, c.n, c.indexed, got, want)
		}
	}
}

// TestReseedMatchesChild proves a reseeded stream is bit-identical to a
// freshly forked child: same seed, same draw sequence, at every draw kind.
func TestReseedMatchesChild(t *testing.T) {
	parent := New(99)
	scratch := New(0)
	for n := uint64(0); n < 8; n++ {
		fresh := parent.ChildN("bin", n)
		scratch.ReseedChildN(parent, "bin", n)
		if scratch.Seed() != fresh.Seed() {
			t.Fatalf("n=%d: reseeded seed %#x != child seed %#x", n, scratch.Seed(), fresh.Seed())
		}
		for i := 0; i < 16; i++ {
			a, b := fresh.Gaussian(0, 1), scratch.Gaussian(0, 1)
			if a != b {
				t.Fatalf("n=%d draw %d: child %v != reseeded %v", n, i, a, b)
			}
		}
	}
	fresh := parent.Child("environment")
	scratch.ReseedChild(parent, "environment")
	for i := 0; i < 16; i++ {
		if a, b := fresh.Float64(), scratch.Float64(); a != b {
			t.Fatalf("labelled draw %d: child %v != reseeded %v", i, a, b)
		}
	}
}

// TestReseedAllocationFree is the point of the mechanism: re-deriving a child
// in place must not allocate.
func TestReseedAllocationFree(t *testing.T) {
	parent := New(5)
	scratch := New(0)
	n := uint64(0)
	allocs := testing.AllocsPerRun(100, func() {
		scratch.ReseedChildN(parent, "bin", n)
		n++
		_ = scratch.Float64()
	})
	if allocs != 0 {
		t.Fatalf("ReseedChildN allocates %v times per run, want 0", allocs)
	}
}
