package telemetry

import "strings"

// The standard DIVOT metric families and the sink that feeds them from the
// event stream. Everything here is updated with single atomic operations, so
// wiring a MetricsSink into the monitoring path costs a map lookup and an
// atomic add per event — the registry's series maps are only locked on first
// use of a new label combination.

// SimilarityBuckets are the histogram edges for similarity scores: dense
// near the authentication threshold and the clean baseline.
var SimilarityBuckets = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.975, 0.99, 0.995, 1}

// DurationBuckets are the histogram edges (seconds) for round wall-clock
// latency as observed by the daemon scheduler.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// MetricsSink maps telemetry events onto the standard metric families of a
// Registry. Create one per registry with NewMetricsSink and wire it next to
// the audit log via Fanout.
type MetricsSink struct {
	reg *Registry

	measurements *CounterVec
	satBins      *CounterVec
	rounds       *CounterVec
	verdicts     *CounterVec
	similarity   *HistogramVec
	retries      *CounterVec
	alerts       *CounterVec
	gateMoves    *CounterVec
	gateOpen     *GaugeVec
	healthState  *GaugeVec
	healthMoves  *CounterVec
	suspects     *CounterVec
	reenrolls    *CounterVec
	calibrations *CounterVec
	reactorState *GaugeVec
	reactorActs  *CounterVec
	faults       *CounterVec
	attacks      *CounterVec
	monErrors    *CounterVec
}

// NewMetricsSink registers the standard divot_* families on reg and returns
// the sink that updates them.
func NewMetricsSink(reg *Registry) *MetricsSink {
	return &MetricsSink{
		reg: reg,
		measurements: reg.Counter("divot_measurements_total",
			"IIP acquisitions completed per instrument.", "link", "side"),
		satBins: reg.Counter("divot_saturated_bins_total",
			"Rail-saturated ETS bins observed across measurements.", "link", "side"),
		rounds: reg.Counter("divot_rounds_total",
			"Monitoring rounds completed per endpoint.", "link", "side"),
		verdicts: reg.Counter("divot_round_verdicts_total",
			"Monitoring round verdicts per endpoint.", "link", "side", "verdict"),
		similarity: reg.Histogram("divot_similarity_score",
			"Distribution of per-round similarity scores.", SimilarityBuckets, "link", "side"),
		retries: reg.Counter("divot_confirm_retries_total",
			"Confirmation re-measurements consumed by suspect rounds.", "link", "side"),
		alerts: reg.Counter("divot_alerts_total",
			"Alerts raised by monitoring.", "link", "side", "kind"),
		gateMoves: reg.Counter("divot_gate_transitions_total",
			"Authentication gate state changes.", "link", "side", "to"),
		gateOpen: reg.Gauge("divot_gate_open",
			"Whether the endpoint's authentication gate is open (1) or closed (0).", "link", "side"),
		healthState: reg.Gauge("divot_health_state",
			"Endpoint health (0=ok 1=suspect 2=degraded 3=failed).", "link", "side"),
		healthMoves: reg.Counter("divot_health_transitions_total",
			"Endpoint health state transitions.", "link", "side", "to"),
		suspects: reg.Counter("divot_suspect_rounds_total",
			"Rounds whose failure was absorbed as a transient by confirmation.", "link", "side"),
		reenrolls: reg.Counter("divot_reenrollments_total",
			"Drift-guarded fingerprint refreshes.", "link", "side"),
		calibrations: reg.Counter("divot_calibrations_total",
			"Link calibrations (enrollments).", "link"),
		reactorState: reg.Gauge("divot_reactor_state",
			"Reaction state (0=normal 1=alerted 2=halted 3=wiped 4=suspect 5=degraded).", "link"),
		reactorActs: reg.Counter("divot_reactor_actions_total",
			"Actions recorded by the reaction state machine.", "link", "action"),
		faults: reg.Counter("divot_faults_injected_total",
			"Measurements that had at least one instrument fault active.", "link", "side"),
		attacks: reg.Counter("divot_attacks_total",
			"Scripted physical attacks mounted.", "link"),
		monErrors: reg.Counter("divot_monitor_errors_total",
			"Monitoring rounds that returned a protocol error.", "link"),
	}
}

// Registry returns the registry the sink feeds.
func (m *MetricsSink) Registry() *Registry { return m.reg }

// healthLevel maps health state names to the gauge encoding.
func healthLevel(state string) float64 {
	switch state {
	case "ok":
		return 0
	case "suspect":
		return 1
	case "degraded":
		return 2
	case "failed":
		return 3
	}
	return -1
}

// reactorLevel maps reaction state names to the gauge encoding.
func reactorLevel(state string) float64 {
	switch state {
	case "normal":
		return 0
	case "alerted":
		return 1
	case "halted":
		return 2
	case "wiped":
		return 3
	case "suspect":
		return 4
	case "degraded":
		return 5
	}
	return -1
}

// Emit implements Sink.
func (m *MetricsSink) Emit(ev Event) {
	switch ev.Kind {
	case EventMeasurement:
		m.measurements.With(ev.Link, ev.Side).Inc()
		if ev.SatBins > 0 {
			m.satBins.With(ev.Link, ev.Side).Add(uint64(ev.SatBins))
		}
	case EventRound:
		m.rounds.With(ev.Link, ev.Side).Inc()
		m.verdicts.With(ev.Link, ev.Side, ev.To).Inc()
		m.similarity.With(ev.Link, ev.Side).Observe(ev.Score)
		if ev.Retries > 0 {
			m.retries.With(ev.Link, ev.Side).Add(uint64(ev.Retries))
		}
	case EventAlert:
		m.alerts.With(ev.Link, ev.Side, ev.To).Inc()
	case EventGate:
		m.gateMoves.With(ev.Link, ev.Side, ev.To).Inc()
		open := 0.0
		if ev.To == "open" {
			open = 1
		}
		m.gateOpen.With(ev.Link, ev.Side).Set(open)
	case EventHealth:
		m.healthMoves.With(ev.Link, ev.Side, ev.To).Inc()
		m.healthState.With(ev.Link, ev.Side).Set(healthLevel(ev.To))
	case EventSuspect:
		m.suspects.With(ev.Link, ev.Side).Inc()
	case EventReenroll:
		m.reenrolls.With(ev.Link, ev.Side).Inc()
	case EventCalibrated:
		m.calibrations.With(ev.Link).Inc()
	case EventReactor:
		m.reactorState.With(ev.Link).Set(reactorLevel(ev.To))
		// Reactor events carry "<action>: <cause>" in Detail.
		action := ev.Detail
		if i := strings.IndexByte(action, ':'); i >= 0 {
			action = action[:i]
		}
		m.reactorActs.With(ev.Link, action).Inc()
	case EventFault:
		m.faults.With(ev.Link, ev.Side).Inc()
	case EventAttack:
		m.attacks.With(ev.Link).Inc()
	case EventMonitorError:
		m.monErrors.With(ev.Link).Inc()
	}
}
