package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// AuditLog is a structured JSONL sink: one JSON object per event, fields in
// fixed order, zero-valued fields omitted. The encoder is hand-rolled into a
// reusable buffer, so a line costs one buffered write and no intermediate
// allocations.
//
// Determinism: an event's rendered content is exactly its deterministic
// fields plus a sink-local sequence number, so two identical monitoring
// sequences produce byte-identical logs. Wall-clock timestamps are opt-in
// via WithClock and are appended as a final "wall" field — replay tests
// simply run without a clock.
type AuditLog struct {
	mu    sync.Mutex
	w     *bufio.Writer
	buf   []byte
	seq   uint64
	clock func() time.Time
}

// NewAuditLog wraps w in a buffered JSONL audit sink. Call Flush (or Close)
// before reading whatever w writes to.
func NewAuditLog(w io.Writer) *AuditLog {
	return &AuditLog{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// WithClock makes the log stamp each line with a wall-clock "wall" field.
// The clock runs at write time and does not participate in the event's
// deterministic content. Returns the log for chaining.
func (a *AuditLog) WithClock(clock func() time.Time) *AuditLog {
	a.mu.Lock()
	a.clock = clock
	a.mu.Unlock()
	return a
}

// Emit implements Sink.
func (a *AuditLog) Emit(ev Event) {
	a.mu.Lock()
	a.seq++
	b := a.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, a.seq, 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, ev.Kind.String())
	if ev.Link != "" {
		b = append(b, `,"link":`...)
		b = appendJSONString(b, ev.Link)
	}
	if ev.Side != "" {
		b = append(b, `,"side":`...)
		b = appendJSONString(b, ev.Side)
	}
	if ev.Round != 0 {
		b = append(b, `,"round":`...)
		b = strconv.AppendUint(b, ev.Round, 10)
	}
	if ev.Score != 0 {
		b = append(b, `,"score":`...)
		b = strconv.AppendFloat(b, ev.Score, 'g', -1, 64)
	}
	if ev.Retries != 0 {
		b = append(b, `,"retries":`...)
		b = strconv.AppendInt(b, int64(ev.Retries), 10)
	}
	if ev.SatBins != 0 {
		b = append(b, `,"sat_bins":`...)
		b = strconv.AppendInt(b, int64(ev.SatBins), 10)
	}
	if ev.From != "" {
		b = append(b, `,"from":`...)
		b = appendJSONString(b, ev.From)
	}
	if ev.To != "" {
		b = append(b, `,"to":`...)
		b = appendJSONString(b, ev.To)
	}
	if ev.Detail != "" {
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, ev.Detail)
	}
	if a.clock != nil {
		b = append(b, `,"wall":`...)
		b = appendJSONString(b, a.clock().Format(time.RFC3339Nano))
	}
	b = append(b, '}', '\n')
	a.buf = b
	a.w.Write(b) //nolint:errcheck // surfaced by Flush/Close
	a.mu.Unlock()
}

// Lines returns how many events have been written.
func (a *AuditLog) Lines() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq
}

// Flush drains the write buffer to the underlying writer.
func (a *AuditLog) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.w.Flush()
}

// Close flushes and, when the underlying writer is an io.Closer, closes it.
func (a *AuditLog) Close(underlying io.Writer) error {
	if err := a.Flush(); err != nil {
		return err
	}
	if c, ok := underlying.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// AppendJSONString appends s as a JSON string literal, for hand-rolled
// allocation-free renderers outside this package (the daemon's history WAL
// records use it).
func AppendJSONString(b []byte, s string) []byte { return appendJSONString(b, s) }

// appendJSONString appends s as a JSON string literal. Control characters
// and the two JSON metacharacters are escaped; everything else (the event
// vocabulary is ASCII plus the occasional unit glyph) passes through, with
// invalid UTF-8 replaced so the output is always valid JSON.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch {
		case r == '"':
			b = append(b, '\\', '"')
		case r == '\\':
			b = append(b, '\\', '\\')
		case r == '\n':
			b = append(b, '\\', 'n')
		case r == '\t':
			b = append(b, '\\', 't')
		case r == '\r':
			b = append(b, '\\', 'r')
		case r < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigit(byte(r)>>4), hexDigit(byte(r)&0xf))
		case r == utf8.RuneError:
			b = append(b, "�"...)
		default:
			b = utf8.AppendRune(b, r)
		}
	}
	return append(b, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}
