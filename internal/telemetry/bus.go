package telemetry

import (
	"sync"
	"sync/atomic"
)

// Bus is an asynchronous publish/subscribe event fan-out. Emit never blocks:
// each subscriber owns a bounded queue, and an event that finds a
// subscriber's queue full is dropped for that subscriber and counted — the
// measurement hot path pays an atomic increment, never a stall. Subscribers
// that need completeness (the audit log) should therefore be wired
// synchronously via Fanout instead of through the bus; the bus serves live
// observers (dashboards, the daemon's alert feeds) where freshness beats
// completeness.
type Bus struct {
	mu      sync.RWMutex
	subs    []*Subscription
	qsubs   []*QueueSub
	seq     atomic.Uint64
	dropped atomic.Uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscription is one subscriber's bounded event queue.
type Subscription struct {
	bus    *Bus
	ch     chan Event
	filter uint64 // bitmask over EventKind; 0 = everything
	drops  atomic.Uint64
	closed atomic.Bool
}

// Subscribe registers a subscriber with the given queue capacity (minimum 1).
// With no kinds listed every event is delivered; otherwise only the listed
// kinds are. Close the subscription to unregister.
func (b *Bus) Subscribe(buffer int, kinds ...EventKind) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	var filter uint64
	for _, k := range kinds {
		filter |= 1 << uint(k)
	}
	s := &Subscription{bus: b, ch: make(chan Event, buffer), filter: filter}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	return s
}

// QueueSub ties a shared coalescing Queue to one bus. One Queue is typically
// subscribed to many buses (one per watched link), so a multiplexed stream
// subscriber pays one bounded buffer total; the coalescing drop policy lives
// in the Queue itself.
type QueueSub struct {
	bus    *Bus
	q      *Queue
	filter uint64 // bitmask over EventKind; 0 = everything
	closed atomic.Bool
}

// SubscribeQueue registers a coalescing queue as a subscriber. With no kinds
// listed every event is delivered; otherwise only the listed kinds are.
// Close the QueueSub to unregister (the queue itself stays usable — it may
// serve other buses).
func (b *Bus) SubscribeQueue(q *Queue, kinds ...EventKind) *QueueSub {
	var filter uint64
	for _, k := range kinds {
		filter |= 1 << uint(k)
	}
	s := &QueueSub{bus: b, q: q, filter: filter}
	b.mu.Lock()
	b.qsubs = append(b.qsubs, s)
	b.mu.Unlock()
	return s
}

// Close unregisters the queue subscription. Safe to call more than once.
func (s *QueueSub) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	b := s.bus
	b.mu.Lock()
	for i, sub := range b.qsubs {
		if sub == s {
			b.qsubs = append(b.qsubs[:i], b.qsubs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
}

// Emit implements Sink: it stamps the bus sequence number and offers the
// event to every subscriber without blocking.
func (b *Bus) Emit(ev Event) { b.Publish(ev) }

// Publish is Emit for callers that need the stamped sequence number back —
// the daemon's alert feeds key their resume protocol on it. Sequence numbers
// start at 1 and are strictly monotonic for the life of the bus.
func (b *Bus) Publish(ev Event) uint64 {
	seq := b.seq.Add(1)
	ev.Seq = seq
	b.mu.RLock()
	for _, s := range b.subs {
		if s.filter != 0 && s.filter&(1<<uint(ev.Kind)) == 0 {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.drops.Add(1)
			b.dropped.Add(1)
		}
	}
	for _, s := range b.qsubs {
		if s.filter != 0 && s.filter&(1<<uint(ev.Kind)) == 0 {
			continue
		}
		s.q.Push(ev)
	}
	b.mu.RUnlock()
	return seq
}

// SeedSeq raises the bus's sequence counter to at least n, so a bus rebuilt
// after a restart continues the sequence space its predecessor persisted
// instead of reissuing numbers a subscriber may already hold as a resume
// cursor. Lower values are ignored — the counter never moves backward.
func (b *Bus) SeedSeq(n uint64) {
	for {
		cur := b.seq.Load()
		if cur >= n || b.seq.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Published returns how many events have been emitted on the bus.
func (b *Bus) Published() uint64 { return b.seq.Load() }

// Dropped returns the total number of events dropped across all subscribers
// since the bus was created (closed subscribers' drops included).
func (b *Bus) Dropped() uint64 { return b.dropped.Load() }

// Events is the subscriber's receive channel. It is closed by Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Drops returns how many events this subscriber missed to a full queue.
func (s *Subscription) Drops() uint64 { return s.drops.Load() }

// Close unregisters the subscription and closes its channel. Safe to call
// more than once.
func (s *Subscription) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	b := s.bus
	b.mu.Lock()
	for i, sub := range b.subs {
		if sub == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
	close(s.ch)
}
