package telemetry

import (
	"sync"
	"sync/atomic"
)

// Queue is a bounded event queue with a coalescing drop policy — the
// degradation layer between the measurement hot path and one slow stream
// subscriber. Push never blocks; when the queue is full it degrades in
// preference order instead of stalling the publisher:
//
//  1. A coalescable event (measurement, round, health — periodic state whose
//     newest value supersedes its older ones) replaces the queue's stale
//     pending event of the same (link, kind), counted as a coalesce: the
//     subscriber still learns the current state, just not every step.
//  2. A critical event (alert, gate, reactor, ...) evicts the oldest
//     coalescable entry to make room, so sustained health chatter can never
//     crowd out an alert.
//  3. Only when neither applies is the event dropped, and counted.
//
// One Queue is typically fed by many per-link Bus instances (see
// Bus.SubscribeQueue): a multiplexed stream subscriber owns one Queue no
// matter how many links it watches, so its memory bound is per-subscriber,
// not per-subscriber-per-link.
type Queue struct {
	mu     sync.Mutex
	buf    []Event // ring: [head, head+n)
	head   int
	n      int
	closed bool
	// notify is a 1-slot doorbell: Push arms it, the consumer drains the
	// queue after each receive.
	notify chan struct{}

	coalesced atomic.Uint64
	dropped   atomic.Uint64
	// coalescedC/droppedC mirror the counts into registry counters when
	// Instrument attached them (nil otherwise).
	coalescedC *Counter
	droppedC   *Counter
}

// NewQueue returns a queue holding at most capacity events (minimum 1).
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{buf: make([]Event, capacity), notify: make(chan struct{}, 1)}
}

// Instrument mirrors the queue's coalesce/drop counts into registry counters
// (the daemon's divot_stream_coalesced_total / divot_stream_dropped_total).
// Call before the queue is in use.
func (q *Queue) Instrument(coalesced, dropped *Counter) {
	q.coalescedC = coalesced
	q.droppedC = dropped
}

// coalescable reports whether a kind's newest value supersedes older pending
// ones. Alerts, gate moves, reactor actions, attacks, and errors are not —
// each one matters individually.
func coalescable(k EventKind) bool {
	switch k {
	case EventMeasurement, EventRound, EventHealth:
		return true
	}
	return false
}

// Push implements Sink: it offers the event to the queue under the coalescing
// drop policy and never blocks.
func (q *Queue) Push(ev Event) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	if q.n < len(q.buf) {
		q.buf[(q.head+q.n)%len(q.buf)] = ev
		q.n++
		q.mu.Unlock()
		q.ring()
		return
	}
	// Full. Overflow work is O(capacity) scans, paid only under overload and
	// only by the publisher of the overflowing subscriber's events.
	if coalescable(ev.Kind) {
		for i := q.n - 1; i >= 0; i-- { // newest-first: replace the freshest stale copy
			p := &q.buf[(q.head+i)%len(q.buf)]
			if p.Kind == ev.Kind && p.Link == ev.Link {
				*p = ev
				q.mu.Unlock()
				q.bumpCoalesced()
				q.ring()
				return
			}
		}
		q.mu.Unlock()
		q.bumpDropped()
		return
	}
	for i := 0; i < q.n; i++ { // oldest-first: evict the stalest coalescable
		if coalescable(q.buf[(q.head+i)%len(q.buf)].Kind) {
			for j := i; j < q.n-1; j++ { // close the hole, keeping FIFO order
				q.buf[(q.head+j)%len(q.buf)] = q.buf[(q.head+j+1)%len(q.buf)]
			}
			q.buf[(q.head+q.n-1)%len(q.buf)] = ev
			q.mu.Unlock()
			q.bumpDropped() // the evicted periodic event is lost, and counted
			q.ring()
			return
		}
	}
	q.mu.Unlock()
	q.bumpDropped()
}

// ring arms the doorbell without blocking.
func (q *Queue) ring() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *Queue) bumpCoalesced() {
	q.coalesced.Add(1)
	if q.coalescedC != nil {
		q.coalescedC.Inc()
	}
}

func (q *Queue) bumpDropped() {
	q.dropped.Add(1)
	if q.droppedC != nil {
		q.droppedC.Inc()
	}
}

// Ready is the doorbell: it receives after one or more Pushes. After each
// receive the consumer should TryPop until empty — one signal may cover many
// events.
func (q *Queue) Ready() <-chan struct{} { return q.notify }

// TryPop removes the oldest pending event, reporting false on empty.
func (q *Queue) TryPop() (Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return Event{}, false
	}
	ev := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return ev, true
}

// Len returns how many events are pending.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Coalesced returns how many events were folded into a fresher pending one.
func (q *Queue) Coalesced() uint64 { return q.coalesced.Load() }

// Dropped returns how many events were lost outright to a full queue.
func (q *Queue) Dropped() uint64 { return q.dropped.Load() }

// Close marks the queue dead: subsequent Pushes are ignored. Pending events
// remain poppable. Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
}
