package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventMeasurement, EventRound, EventAlert, EventGate,
		EventHealth, EventSuspect, EventReenroll, EventCalibrated,
		EventReactor, EventFault, EventAttack, EventMonitorError}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "EventKind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if got := EventKind(200).String(); !strings.HasPrefix(got, "EventKind(") {
		t.Fatalf("unknown kind renders as %q", got)
	}
}

func TestFanoutSkipsNil(t *testing.T) {
	if Fanout() != nil || Fanout(nil, nil) != nil {
		t.Fatal("empty fanout should be nil")
	}
	r := &Recorder{}
	if Fanout(nil, r) != Sink(r) {
		t.Fatal("single-sink fanout should unwrap")
	}
	r2 := &Recorder{}
	f := Fanout(r, r2)
	f.Emit(Event{Kind: EventRound})
	if r.Len() != 1 || r2.Len() != 1 {
		t.Fatalf("fanout delivered %d/%d events", r.Len(), r2.Len())
	}
}

func TestRecorderDrainPreservesOrder(t *testing.T) {
	r := &Recorder{}
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: EventRound, Round: uint64(i + 1)})
	}
	dst := &Recorder{}
	r.DrainTo(dst)
	if r.Len() != 0 {
		t.Fatal("drain should empty the recorder")
	}
	evs := dst.Events()
	for i, ev := range evs {
		if ev.Round != uint64(i+1) {
			t.Fatalf("event %d has round %d", i, ev.Round)
		}
	}
	// Draining to nil discards.
	r.Emit(Event{})
	r.DrainTo(nil)
	if r.Len() != 0 {
		t.Fatal("nil drain should discard")
	}
}

func TestBusDeliversAndFilters(t *testing.T) {
	b := NewBus()
	all := b.Subscribe(16)
	alerts := b.Subscribe(16, EventAlert)
	b.Emit(Event{Kind: EventRound, Link: "a"})
	b.Emit(Event{Kind: EventAlert, Link: "a"})
	if got := len(all.Events()); got != 2 {
		t.Fatalf("unfiltered subscriber has %d events, want 2", got)
	}
	if got := len(alerts.Events()); got != 1 {
		t.Fatalf("filtered subscriber has %d events, want 1", got)
	}
	ev := <-alerts.Events()
	if ev.Kind != EventAlert || ev.Seq == 0 {
		t.Fatalf("unexpected event %+v", ev)
	}
	all.Close()
	alerts.Close()
	alerts.Close() // idempotent
	b.Emit(Event{Kind: EventAlert})
	if b.Published() != 3 {
		t.Fatalf("published %d, want 3", b.Published())
	}
}

func TestBusDropsInsteadOfBlocking(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(2)
	for i := 0; i < 10; i++ {
		b.Emit(Event{Kind: EventRound})
	}
	if s.Drops() != 8 {
		t.Fatalf("subscriber dropped %d, want 8", s.Drops())
	}
	if b.Dropped() != 8 {
		t.Fatalf("bus dropped %d, want 8", b.Dropped())
	}
	if len(s.Events()) != 2 {
		t.Fatalf("queue holds %d, want 2", len(s.Events()))
	}
	s.Close()
}

func TestBusConcurrentEmit(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Emit(Event{Kind: EventMeasurement})
			}
		}()
	}
	wg.Wait()
	if got := len(s.Events()) + int(s.Drops()); got != 800 {
		t.Fatalf("delivered+dropped = %d, want 800", got)
	}
	if b.Published() != 800 {
		t.Fatalf("published %d, want 800", b.Published())
	}
	s.Close()
}

func TestAuditLogDeterministicContent(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		a := NewAuditLog(&buf)
		a.Emit(Event{Kind: EventRound, Link: "dimm0", Side: "cpu", Round: 3, Score: 0.98125, To: "ok"})
		a.Emit(Event{Kind: EventAlert, Link: "dimm0", Side: "module", Round: 4,
			Score: 0.41, To: "auth-failure", Detail: `[module] auth failure: S=0.4100`})
		a.Emit(Event{Kind: EventHealth, Link: "dimm0", Side: "module", From: "ok", To: "failed"})
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one, two := emit(), emit()
	if one != two {
		t.Fatalf("audit content differs across identical runs:\n%s\nvs\n%s", one, two)
	}
	want := `{"seq":1,"kind":"round","link":"dimm0","side":"cpu","round":3,"score":0.98125,"to":"ok"}` + "\n"
	if !strings.HasPrefix(one, want) {
		t.Fatalf("first line =\n%swant prefix\n%s", one, want)
	}
	if !strings.Contains(one, `"from":"ok","to":"failed"`) {
		t.Fatalf("health transition missing from log:\n%s", one)
	}
	if a := NewAuditLog(&bytes.Buffer{}); a.Lines() != 0 {
		t.Fatal("fresh log should report zero lines")
	}
}

func TestAuditLogEscapesAndClock(t *testing.T) {
	var buf bytes.Buffer
	a := NewAuditLog(&buf).WithClock(func() time.Time {
		return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	})
	a.Emit(Event{Kind: EventMonitorError, Link: `li"nk`, Detail: "line1\nline2\ttab"})
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{`"link":"li\"nk"`, `line1\nline2\ttab`, `"wall":"2026-08-05T12:00:00Z"`} {
		if !strings.Contains(got, want) {
			t.Fatalf("audit line %q missing %q", got, want)
		}
	}
	if a.Lines() != 1 {
		t.Fatalf("lines = %d, want 1", a.Lines())
	}
}

func TestMetricsSinkUpdatesFamilies(t *testing.T) {
	reg := NewRegistry()
	m := NewMetricsSink(reg)
	m.Emit(Event{Kind: EventMeasurement, Link: "a", Side: "cpu", SatBins: 2})
	m.Emit(Event{Kind: EventRound, Link: "a", Side: "cpu", Score: 0.98, Retries: 2, To: "ok"})
	m.Emit(Event{Kind: EventAlert, Link: "a", Side: "cpu", To: "tamper", Detail: "tamper at 100mm"})
	m.Emit(Event{Kind: EventGate, Link: "a", Side: "cpu", From: "open", To: "closed"})
	m.Emit(Event{Kind: EventHealth, Link: "a", Side: "cpu", From: "ok", To: "degraded"})
	m.Emit(Event{Kind: EventSuspect, Link: "a", Side: "cpu"})
	m.Emit(Event{Kind: EventReenroll, Link: "a", Side: "cpu"})
	m.Emit(Event{Kind: EventCalibrated, Link: "a"})
	m.Emit(Event{Kind: EventReactor, Link: "a", From: "normal", To: "halted", Detail: "halt: authentication failure"})
	m.Emit(Event{Kind: EventFault, Link: "a", Side: "cpu", Detail: "emi-burst"})
	m.Emit(Event{Kind: EventAttack, Link: "a", Detail: "interposer"})
	m.Emit(Event{Kind: EventMonitorError, Link: "a", Detail: "enrollment lost"})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`divot_measurements_total{link="a",side="cpu"} 1`,
		`divot_saturated_bins_total{link="a",side="cpu"} 2`,
		`divot_rounds_total{link="a",side="cpu"} 1`,
		`divot_round_verdicts_total{link="a",side="cpu",verdict="ok"} 1`,
		`divot_confirm_retries_total{link="a",side="cpu"} 2`,
		`divot_alerts_total{link="a",side="cpu",kind="tamper"} 1`,
		`divot_gate_transitions_total{link="a",side="cpu",to="closed"} 1`,
		`divot_gate_open{link="a",side="cpu"} 0`,
		`divot_health_state{link="a",side="cpu"} 2`,
		`divot_health_transitions_total{link="a",side="cpu",to="degraded"} 1`,
		`divot_suspect_rounds_total{link="a",side="cpu"} 1`,
		`divot_reenrollments_total{link="a",side="cpu"} 1`,
		`divot_calibrations_total{link="a"} 1`,
		`divot_reactor_state{link="a"} 2`,
		`divot_reactor_actions_total{link="a",action="halt"} 1`,
		`divot_faults_injected_total{link="a",side="cpu"} 1`,
		`divot_attacks_total{link="a"} 1`,
		`divot_monitor_errors_total{link="a"} 1`,
		`divot_similarity_score_bucket{link="a",side="cpu",le="0.99"} 1`,
		`divot_similarity_score_count{link="a",side="cpu"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "test", []float64{1, 2, 5}).With()
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 16 {
		t.Fatalf("sum = %g", h.Sum())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_bucket{le="1"} 2`, // 0.5 and the exactly-1 observation
		`h_bucket{le="2"} 3`,
		`h_bucket{le="5"} 4`,
		`h_bucket{le="+Inf"} 5`,
		`h_sum 16`,
		`h_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryRenderIsSortedAndStable(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("zzz_total", "last", "link")
	g := reg.Gauge("aaa", "first")
	c.With("b").Inc()
	c.With("a").Add(2)
	g.With().Set(1.5)
	render := func() string {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one := render()
	if one != render() {
		t.Fatal("render not stable")
	}
	if strings.Index(one, "aaa") > strings.Index(one, "zzz_total") {
		t.Fatalf("families not sorted:\n%s", one)
	}
	if strings.Index(one, `{link="a"}`) > strings.Index(one, `{link="b"}`) {
		t.Fatalf("series not sorted:\n%s", one)
	}
}

func TestRegistryReregistrationRules(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c_total", "help", "link")
	b := reg.Counter("c_total", "help", "link")
	a.With("x").Inc()
	if b.With("x").Value() != 1 {
		t.Fatal("re-registration should share the family")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type-mismatched re-registration should panic")
		}
	}()
	reg.Gauge("c_total", "help", "link")
}
