package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. Families and series are created once (on first use) and
// updated lock-free afterwards: counters and gauges are single atomics,
// histograms a fixed array of atomics — cheap enough for the measurement hot
// path.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string
	bounds []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // label-values key -> *Counter / *Gauge / *Histogram
}

// labelKey joins label values with an unprintable separator.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func (r *Registry) family(name, help, typ string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s/%d labels (was %s/%d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		bounds: bounds, series: make(map[string]any)}
	r.fams[name] = f
	return f
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (negative to decrease), atomically — safe for
// concurrent up/down counting like live subscriber tallies.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bounds are upper bucket edges in
// ascending order; observations beyond the last bound land in +Inf.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, cumulative at render time
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, "counter", labels, nil)}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, "gauge", labels, nil)}
}

// Histogram registers (or fetches) a fixed-bucket histogram family. Bounds
// must be ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, "histogram", labels, bounds)}
}

func (f *family) series_(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
	}
	return s
}

// With returns the counter for the given label values, creating it on first
// use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.series_(values, func() any { return &Counter{} }).(*Counter)
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.series_(values, func() any { return &Gauge{} }).(*Gauge)
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.series_(values, func() any {
		return &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}).(*Histogram)
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for the series; "" with no labels.
func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, n := range names {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in Prometheus text exposition format,
// families and series in sorted order so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]any, len(keys))
		values := make([][]string, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
			if k == "" {
				values[i] = nil
			} else {
				values[i] = strings.Split(k, "\x1f")
			}
		}
		f.mu.Unlock()

		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for i, s := range series {
			ls := values[i]
			switch m := s.(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, ls), m.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, ls), formatFloat(m.Value())); err != nil {
					return err
				}
			case *Histogram:
				cum := uint64(0)
				for bi, bound := range m.bounds {
					cum += m.counts[bi].Load()
					le := labelString(f.labels, ls, "le", formatFloat(bound))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
						return err
					}
				}
				cum += m.counts[len(m.bounds)].Load()
				le := labelString(f.labels, ls, "le", "+Inf")
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, ls), formatFloat(m.Sum())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, ls), m.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
