package telemetry

import (
	"sync"
	"testing"
)

// drain pops everything pending.
func drain(q *Queue) []Event {
	var out []Event
	for {
		ev, ok := q.TryPop()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// TestQueueFIFOUnderCapacity: below capacity the queue is a plain FIFO and
// nothing is coalesced or dropped.
func TestQueueFIFOUnderCapacity(t *testing.T) {
	q := NewQueue(8)
	for i := 0; i < 5; i++ {
		q.Push(Event{Kind: EventAlert, Link: "a", Round: uint64(i)})
	}
	got := drain(q)
	if len(got) != 5 {
		t.Fatalf("drained %d events, want 5", len(got))
	}
	for i, ev := range got {
		if ev.Round != uint64(i) {
			t.Errorf("event %d has round %d, want %d (order broken)", i, ev.Round, i)
		}
	}
	if q.Coalesced() != 0 || q.Dropped() != 0 {
		t.Errorf("counters = %d/%d, want 0/0", q.Coalesced(), q.Dropped())
	}
}

// TestQueueCoalescesPeriodicKinds: a full queue folds a fresh health/round
// update into its stale pending twin — the subscriber sees the newest state,
// the counter records the fold, nothing blocks.
func TestQueueCoalescesPeriodicKinds(t *testing.T) {
	q := NewQueue(2)
	q.Push(Event{Kind: EventHealth, Link: "a", Round: 1})
	q.Push(Event{Kind: EventRound, Link: "a", Round: 1})
	q.Push(Event{Kind: EventHealth, Link: "a", Round: 9}) // full → coalesce
	if q.Coalesced() != 1 {
		t.Fatalf("Coalesced = %d, want 1", q.Coalesced())
	}
	got := drain(q)
	if len(got) != 2 {
		t.Fatalf("drained %d events, want 2", len(got))
	}
	if got[0].Kind != EventHealth || got[0].Round != 9 {
		t.Errorf("pending health = %+v, want the superseding round-9 update", got[0])
	}
	if got[1].Kind != EventRound {
		t.Errorf("round event displaced: %+v", got[1])
	}
}

// TestQueueCoalesceIsPerLink: coalescing keys on (link, kind) — link b's
// health update must not overwrite link a's.
func TestQueueCoalesceIsPerLink(t *testing.T) {
	q := NewQueue(2)
	q.Push(Event{Kind: EventHealth, Link: "a", Round: 1})
	q.Push(Event{Kind: EventHealth, Link: "b", Round: 2})
	q.Push(Event{Kind: EventHealth, Link: "b", Round: 5})
	got := drain(q)
	if len(got) != 2 || got[0].Link != "a" || got[1].Link != "b" || got[1].Round != 5 {
		t.Errorf("per-link coalesce broke: %+v", got)
	}
	// No pending twin for link c and nothing evictable by a periodic event:
	// counted drop.
	q2 := NewQueue(1)
	q2.Push(Event{Kind: EventAlert, Link: "a"})
	q2.Push(Event{Kind: EventHealth, Link: "c"})
	if q2.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1 (no twin, nothing evictable)", q2.Dropped())
	}
}

// TestQueueCriticalEvictsPeriodic: alerts must survive sustained periodic
// chatter — a full queue makes room for a critical event by evicting the
// oldest coalescable entry, never by dropping the alert.
func TestQueueCriticalEvictsPeriodic(t *testing.T) {
	q := NewQueue(3)
	q.Push(Event{Kind: EventHealth, Link: "a", Round: 1})
	q.Push(Event{Kind: EventAlert, Link: "a", Round: 2})
	q.Push(Event{Kind: EventRound, Link: "a", Round: 3})
	q.Push(Event{Kind: EventGate, Link: "a", Round: 4}) // full → evict health(1)
	got := drain(q)
	if len(got) != 3 {
		t.Fatalf("drained %d events, want 3", len(got))
	}
	if got[0].Kind != EventAlert || got[1].Kind != EventRound || got[2].Kind != EventGate {
		t.Errorf("after eviction: %+v", got)
	}
	if q.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1 (the evicted health update)", q.Dropped())
	}

	// All-critical full queue: the new critical event is the one dropped —
	// delivered history is never rewritten.
	q2 := NewQueue(2)
	q2.Push(Event{Kind: EventAlert, Link: "a", Round: 1})
	q2.Push(Event{Kind: EventGate, Link: "a", Round: 2})
	q2.Push(Event{Kind: EventReactor, Link: "a", Round: 3})
	got = drain(q2)
	if len(got) != 2 || got[0].Round != 1 || got[1].Round != 2 {
		t.Errorf("all-critical overflow rewrote the queue: %+v", got)
	}
	if q2.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", q2.Dropped())
	}
}

// TestQueueReadyDoorbell: the notify channel wakes a consumer without ever
// blocking the publisher, and one signal can cover a burst.
func TestQueueReadyDoorbell(t *testing.T) {
	q := NewQueue(16)
	for i := 0; i < 10; i++ {
		q.Push(Event{Kind: EventAlert, Link: "a", Round: uint64(i)})
	}
	select {
	case <-q.Ready():
	default:
		t.Fatal("doorbell not armed after pushes")
	}
	if got := drain(q); len(got) != 10 {
		t.Fatalf("drained %d, want 10", len(got))
	}
}

// TestBusSubscribeQueue: many per-link buses feed one shared queue; kind
// filters apply per subscription, seqs are stamped by each bus, and closing
// the sub detaches it.
func TestBusSubscribeQueue(t *testing.T) {
	busA, busB := NewBus(), NewBus()
	q := NewQueue(32)
	subA := busA.SubscribeQueue(q, EventAlert)
	subB := busB.SubscribeQueue(q)

	busA.Publish(Event{Kind: EventAlert, Link: "a"})
	busA.Publish(Event{Kind: EventHealth, Link: "a"}) // filtered out for A
	busB.Publish(Event{Kind: EventHealth, Link: "b"})

	got := drain(q)
	if len(got) != 2 {
		t.Fatalf("queue got %d events, want 2: %+v", len(got), got)
	}
	if got[0].Link != "a" || got[0].Seq != 1 || got[1].Link != "b" || got[1].Seq != 1 {
		t.Errorf("per-bus seq spaces broke: %+v", got)
	}

	subA.Close()
	subA.Close() // idempotent
	busA.Publish(Event{Kind: EventAlert, Link: "a"})
	if q.Len() != 0 {
		t.Error("closed queue subscription still receives")
	}
	subB.Close()
}

// TestBusSeedSeq: seeding moves the counter forward only, so restored buses
// continue their persisted sequence space.
func TestBusSeedSeq(t *testing.T) {
	b := NewBus()
	b.SeedSeq(40)
	if got := b.Publish(Event{Kind: EventAlert}); got != 41 {
		t.Errorf("seq after seed = %d, want 41", got)
	}
	b.SeedSeq(10) // backward: ignored
	if got := b.Publish(Event{Kind: EventAlert}); got != 42 {
		t.Errorf("seq after backward seed = %d, want 42", got)
	}
}

// TestQueueConcurrentPushPop is the race-detector workout: publishers on
// several goroutines against one draining consumer, every event accounted
// for as delivered, coalesced, or dropped.
func TestQueueConcurrentPushPop(t *testing.T) {
	q := NewQueue(64)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				kind := EventHealth
				if i%5 == 0 {
					kind = EventAlert
				}
				q.Push(Event{Kind: kind, Link: "l", Round: uint64(w*perWorker + i)})
			}
		}(w)
	}
	done := make(chan int)
	go func() {
		seen := 0
		for {
			select {
			case <-q.Ready():
				for {
					if _, ok := q.TryPop(); !ok {
						break
					}
					seen++
				}
			case <-done:
				for {
					if _, ok := q.TryPop(); !ok {
						done <- seen
						return
					}
					seen++
				}
			}
		}
	}()
	wg.Wait()
	done <- 0
	seen := <-done
	total := uint64(seen) + q.Coalesced() + q.Dropped()
	if total != workers*perWorker {
		t.Errorf("accounting: delivered %d + coalesced %d + dropped %d = %d, want %d",
			seen, q.Coalesced(), q.Dropped(), total, workers*perWorker)
	}
}
