package telemetry

import "sync"

// Sink consumes telemetry events. Emit must be cheap and must never block
// for long: it is called from the measurement hot path. Implementations in
// this package: *Bus (async fan-out), *AuditLog (buffered JSONL), the sink
// returned by NewMetricsSink (atomic counter updates), *Recorder (slice
// append), and Fanout (composition).
type Sink interface {
	Emit(Event)
}

// Wirable is implemented by emitters that carry a sink plus link/side labels
// and can be re-pointed after construction — fault planes implement it so an
// instrument can forward its own wiring to an injector attached later.
type Wirable interface {
	WireSink(s Sink, link, side string)
}

// Fanout returns a sink that forwards every event to each non-nil sink in
// order. With zero or one usable sink it avoids the wrapper entirely.
func Fanout(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return fanout(live)
}

type fanout []Sink

func (f fanout) Emit(ev Event) {
	for _, s := range f {
		s.Emit(ev)
	}
}

// Recorder is a sink that buffers events in order. The parallel fan-out
// layers give each link its own recorder during a concurrent round and drain
// the recorders in bus-id order afterwards, which is what keeps audit
// content bit-identical at any Parallelism. The mutex is uncontended in that
// pattern (one goroutine per recorder) but makes the recorder safe for
// ad-hoc concurrent use too.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports how many events are buffered.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// DrainTo forwards every buffered event to dst in order and empties the
// recorder. A nil dst just discards the buffer.
func (r *Recorder) DrainTo(dst Sink) {
	r.mu.Lock()
	evs := r.events
	r.events = nil
	r.mu.Unlock()
	if dst == nil {
		return
	}
	for _, ev := range evs {
		dst.Emit(ev)
	}
}
