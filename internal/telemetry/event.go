// Package telemetry is the observability core of the reproduction: a typed
// event taxonomy for everything the protection protocol does (measurements,
// monitoring rounds, health transitions, gate changes, fault suspicions,
// reactor escalations, re-enrollments), an asynchronous event bus with
// bounded subscriber queues and explicit drop counters, a metrics registry
// rendered in Prometheus text format, and a structured JSONL audit log.
//
// The package sits below every protocol layer — it imports only the standard
// library — so core, react, fault, and itdr can all emit through the narrow
// Sink interface without widening their dependency graphs.
//
// Determinism contract: an Event's content is a pure function of the
// simulation (seeds, schedules, round numbers) and never of the wall clock or
// of goroutine scheduling. Wall-clock timestamps are added only at a sink
// (AuditLog's optional clock), and the engine's fan-out layers drain
// per-link Recorders in bus-id order, so two runs of the same monitoring
// sequence produce bit-identical audit content at any Parallelism.
package telemetry

import "fmt"

// EventKind classifies a telemetry event.
type EventKind uint8

const (
	// EventMeasurement: an instrument completed one IIP acquisition.
	EventMeasurement EventKind = iota
	// EventRound: one endpoint finished a monitoring round (with verdict).
	EventRound
	// EventAlert: a monitoring round raised an alert.
	EventAlert
	// EventGate: an authentication gate changed state.
	EventGate
	// EventHealth: an endpoint's health state changed.
	EventHealth
	// EventSuspect: a round's failure was absorbed as a transient fault
	// suspicion by the confirmation protocol.
	EventSuspect
	// EventReenroll: a drift-guarded fingerprint refresh completed.
	EventReenroll
	// EventCalibrated: a link finished calibration (enrollment).
	EventCalibrated
	// EventReactor: the reaction state machine recorded an action.
	EventReactor
	// EventFault: a fault plane injected at least one fault into a
	// measurement.
	EventFault
	// EventAttack: a scripted physical attack was mounted on a bus (a
	// simulation affordance of drills and the divotd fleet spec).
	EventAttack
	// EventMonitorError: a monitoring round returned a protocol error
	// (uncalibrated link, lost enrollment).
	EventMonitorError
	// EventRestored: a link's enrollment and robustness state were restored
	// from a validated persistent snapshot instead of fresh calibration.
	EventRestored

	// EventKindCount is one past the last kind — the size of a dense table
	// indexed by EventKind (the binary wire codec keys its kind codes on it).
	EventKindCount
)

// String names the kind, matching its audit-log rendering.
func (k EventKind) String() string {
	switch k {
	case EventMeasurement:
		return "measurement"
	case EventRound:
		return "round"
	case EventAlert:
		return "alert"
	case EventGate:
		return "gate"
	case EventHealth:
		return "health"
	case EventSuspect:
		return "suspect"
	case EventReenroll:
		return "reenroll"
	case EventCalibrated:
		return "calibrated"
	case EventReactor:
		return "reactor"
	case EventFault:
		return "fault"
	case EventAttack:
		return "attack"
	case EventMonitorError:
		return "monitor-error"
	case EventRestored:
		return "restored"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// KindByName resolves a kind's String() name back to the kind — the inverse
// mapping stream subscribe handshakes use to validate kind filters.
func KindByName(name string) (EventKind, bool) {
	for k := EventKind(0); k < EventKindCount; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Event is one telemetry record. The struct is flat and value-typed so the
// emit path allocates nothing; which fields are meaningful depends on Kind,
// and zero-valued fields are omitted from the audit rendering.
type Event struct {
	// Seq is a sink-local sequence number stamped at publication (the audit
	// log and the event bus each keep their own counter). It is zero while
	// the event is in flight between emitter and sink.
	Seq uint64
	// Kind classifies the event.
	Kind EventKind
	// Link is the bus id the event concerns ("" when not link-scoped).
	Link string
	// Side is "cpu" or "module" for endpoint-scoped events.
	Side string
	// Round is the link's monitoring round number for protocol events, or
	// the instrument's measurement sequence number for measurement and
	// fault events.
	Round uint64
	// Score is the similarity for round and auth-failure events.
	Score float64
	// Retries is how many confirmation re-measurements the round consumed.
	Retries int
	// SatBins counts rail-saturated ETS bins in a measurement event.
	SatBins int
	// From and To describe a transition (gate open/closed, health states,
	// reactor states) or, for alerts, To carries the alert kind.
	From, To string
	// Detail is the kind-specific human-readable remainder: the rendered
	// alert, the active fault kinds, the reactor cause, the error text.
	Detail string
}

// String renders the event compactly (the audit log uses JSON instead).
func (e Event) String() string {
	s := fmt.Sprintf("[%s]", e.Kind)
	if e.Link != "" {
		s += " link=" + e.Link
	}
	if e.Side != "" {
		s += " side=" + e.Side
	}
	if e.Round != 0 {
		s += fmt.Sprintf(" round=%d", e.Round)
	}
	if e.From != "" || e.To != "" {
		s += fmt.Sprintf(" %s->%s", e.From, e.To)
	}
	if e.Score != 0 {
		s += fmt.Sprintf(" score=%.4f", e.Score)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}
