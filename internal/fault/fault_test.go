package fault

import (
	"math"
	"testing"

	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/signal"
	"divot/internal/txline"
)

// rig builds a line and an instrument from one seed, with an optional plane
// attached.
func rig(t *testing.T, seed uint64, parallelism int, faults ...Fault) (*txline.Line, *itdr.Reflectometer, *Plane) {
	t.Helper()
	stream := rng.New(seed)
	cfg := itdr.DefaultConfig()
	cfg.Parallelism = parallelism
	line := txline.New("L", txline.DefaultConfig(), stream.Child("line"))
	r, err := itdr.New(cfg, txline.DefaultProbe(), nil, stream.Child("itdr"))
	if err != nil {
		t.Fatal(err)
	}
	var p *Plane
	if len(faults) > 0 {
		p = NewPlane(stream.Child("faults"), faults...)
		r.SetInjector(p)
	}
	return line, r, p
}

func env() txline.Environment { return txline.Environment{TempC: 23} }

// rmsDiff compares waveforms after the pipeline's bandwidth-matched
// smoothing, so counting noise does not drown systematic fault signatures.
func rmsDiff(a, b *signal.Waveform) float64 {
	as, bs := signal.GaussianSmooth(a, 4), signal.GaussianSmooth(b, 4)
	var acc float64
	for i := range as.Samples {
		d := as.Samples[i] - bs.Samples[i]
		acc += d * d
	}
	return math.Sqrt(acc / float64(as.Len()))
}

func TestScheduleModes(t *testing.T) {
	st := rng.New(1).Child("s")
	one := Once(5)
	for seq := uint64(1); seq <= 10; seq++ {
		if got := one.active(st, seq); got != (seq == 5) {
			t.Errorf("one-shot at seq %d: active=%v", seq, got)
		}
	}
	perm := From(4)
	for seq := uint64(1); seq <= 10; seq++ {
		if got := perm.active(st, seq); got != (seq >= 4) {
			t.Errorf("permanent at seq %d: active=%v", seq, got)
		}
	}
	duty := Duty(1, 0.5)
	on := 0
	for seq := uint64(1); seq <= 1000; seq++ {
		if duty.active(st, seq) {
			on++
		}
	}
	if on < 400 || on > 600 {
		t.Errorf("50%% duty active on %d/1000 measurements", on)
	}
	// Activation at a given seq is a pure function of identity, not of how
	// often the schedule has been consulted.
	for seq := uint64(1); seq <= 20; seq++ {
		a := duty.active(st, seq)
		for k := 0; k < 3; k++ {
			if duty.active(st, seq) != a {
				t.Fatalf("duty activation at seq %d not stable", seq)
			}
		}
	}
}

// TestHealthyPathUnchanged pins the core guarantee: attaching a plane whose
// faults never fire leaves every measurement bit-identical to an instrument
// without the hook.
func TestHealthyPathUnchanged(t *testing.T) {
	lineA, rA, _ := rig(t, 7, 1)
	lineB, rB, _ := rig(t, 7, 1, StuckComparator(true, Once(1_000_000)))
	for i := 0; i < 3; i++ {
		ma := rA.Measure(lineA, env())
		mb := rB.Measure(lineB, env())
		for j := range ma.IIP.Samples {
			if ma.IIP.Samples[j] != mb.IIP.Samples[j] {
				t.Fatalf("measurement %d bin %d differs with inactive plane", i, j)
			}
		}
	}
}

// TestFaultDeterminism pins bit-reproducibility: the same seed yields the
// same faulted measurements, at any parallelism.
func TestFaultDeterminism(t *testing.T) {
	faults := []Fault{
		OffsetStep(0.2e-3, 10e-6, From(2)),
		DeadBinField(0.08, From(1)),
		CounterUpset(3, 0.3, Duty(1, 0.5)),
		EMIGlitch(0.02, Duty(1, 0.3)),
	}
	lineA, rA, pA := rig(t, 11, 1, faults...)
	lineB, rB, pB := rig(t, 11, 4, faults...)
	for i := 0; i < 4; i++ {
		ma := rA.Measure(lineA, env())
		mb := rB.Measure(lineB, env())
		for j := range ma.IIP.Samples {
			if ma.IIP.Samples[j] != mb.IIP.Samples[j] {
				t.Fatalf("measurement %d bin %d: %v != %v (parallelism 1 vs 4)",
					i, j, ma.IIP.Samples[j], mb.IIP.Samples[j])
			}
			if ma.Saturated[j] != mb.Saturated[j] {
				t.Fatalf("measurement %d bin %d saturation differs", i, j)
			}
		}
	}
	if pA.Activations != pB.Activations {
		t.Errorf("activation counts differ: %d vs %d", pA.Activations, pB.Activations)
	}
	if pA.Activations == 0 {
		t.Error("no activations recorded")
	}
}

func TestStuckComparatorSaturatesEverything(t *testing.T) {
	line, r, _ := rig(t, 3, 0, StuckComparator(true, Once(2)))
	clean := r.Measure(line, env())
	stuck := r.Measure(line, env())
	for m, s := range stuck.Saturated {
		if !s {
			t.Fatalf("bin %d not saturated under stuck-high comparator", m)
		}
	}
	sat := 0
	for _, s := range clean.Saturated {
		if s {
			sat++
		}
	}
	if sat > len(clean.Saturated)/10 {
		t.Errorf("healthy measurement saturates %d/%d bins", sat, len(clean.Saturated))
	}
	after := r.Measure(line, env())
	floor := rmsDiff(clean.IIP, r.Measure(line, env()).IIP)
	if d := rmsDiff(clean.IIP, after.IIP); d > 3*floor {
		t.Errorf("one-shot fault left residue: RMS diff %v vs noise floor %v", d, floor)
	}
}

func TestDeadBinsPegLow(t *testing.T) {
	want := []int{10, 50, 51, 200}
	line, r, _ := rig(t, 4, 0, DeadBinList(want, From(1)))
	m := r.Measure(line, env())
	for _, b := range want {
		if !m.Saturated[b] {
			t.Errorf("dead bin %d not saturated", b)
		}
	}
	sat := 0
	for _, s := range m.Saturated {
		if s {
			sat++
		}
	}
	if sat != len(want) {
		t.Errorf("saturated %d bins, want %d", sat, len(want))
	}
}

func TestDeadBinFieldFractionStable(t *testing.T) {
	line, r, _ := rig(t, 5, 0, DeadBinField(0.10, From(1)))
	first := r.Measure(line, env())
	second := r.Measure(line, env())
	n := 0
	for m := range first.Saturated {
		if first.Saturated[m] {
			n++
		}
		if first.Saturated[m] != second.Saturated[m] {
			t.Fatalf("dead-bin set not stable at bin %d", m)
		}
	}
	bins := len(first.Saturated)
	if n < bins/20 || n > bins/5 {
		t.Errorf("10%% dead-bin field killed %d/%d bins", n, bins)
	}
}

func TestOffsetAndSigmaDriftGrow(t *testing.T) {
	// A drifting offset biases the reconstruction; the bias must grow with
	// the measurement count.
	line, r, _ := rig(t, 6, 0)
	ref := r.Measure(line, env())
	lineF, rF, _ := rig(t, 6, 0, OffsetStep(0, 0.1e-3, From(2)), NoiseDrift(0, 0.02, From(2)))
	if d := rmsDiff(ref.IIP, rF.Measure(lineF, env()).IIP); d > 1e-4 {
		t.Fatalf("first measurement already distorted: %v", d)
	}
	early := rF.Measure(lineF, env())
	for i := 0; i < 20; i++ {
		rF.Measure(lineF, env())
	}
	late := rF.Measure(lineF, env())
	dEarly := rmsDiff(ref.IIP, early.IIP)
	dLate := rmsDiff(ref.IIP, late.IIP)
	if dLate < 2*dEarly {
		t.Errorf("drift did not grow: early RMS %v, late RMS %v", dEarly, dLate)
	}
}

func TestTransientGlitchesDistort(t *testing.T) {
	cases := []struct {
		name  string
		fault Fault
	}{
		{"phase-step", PhaseGlitch(120e-12, Once(2))},
		{"emi-burst", EMIGlitch(0.05, Once(2))},
		{"temp-step", TempGlitch(60, Once(2))},
		{"jitter-burst", JitterBurst(200e-12, Once(2))},
		{"counter-flip", CounterUpset(3, 1, Once(2))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			line, r, _ := rig(t, 8, 0, tc.fault)
			clean := r.Measure(line, env())
			faulted := r.Measure(line, env())
			noise := rmsDiff(clean.IIP, r.Measure(line, env()).IIP)
			hit := rmsDiff(clean.IIP, faulted.IIP)
			if hit < 2*noise {
				t.Errorf("fault barely visible: RMS %v vs noise floor %v", hit, noise)
			}
		})
	}
}
