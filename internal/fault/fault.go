// Package fault is a deterministic fault-injection layer for the DIVOT
// instrument stack. A Plane wraps one iTDR with a set of injectable faults —
// comparator stuck-at and offset steps, counter bit flips, PLL phase steps
// and jitter bursts, dead ETS bins, reference-noise sigma drift, and
// transient environmental glitches (temperature steps, EMI bursts) — each
// governed by a schedule: one-shot at a measurement, intermittent with a
// duty cycle, or permanent from a measurement onward.
//
// Everything a plane does is seeded from the same rng.Stream universe as the
// rest of the simulation: whether an intermittent fault is active at
// measurement seq, which bins a dead-bin field kills, and which counters an
// upset flips all derive from labelled child streams of the plane's own
// stream, keyed by fault index, bin index, and measurement sequence number —
// never by execution order. Fault injection is therefore bit-reproducible
// from the system seed at any Parallelism, and two runs that differ only in
// worker count observe identical faults.
//
// Schedules are written against the instrument's measurement sequence number
// (1-based, counting enrollment measurements; see itdr.Reflectometer.Seq and
// core.Config.CalibrationMeasurements for converting monitoring round
// numbers to sequence numbers).
package fault

import (
	"fmt"
	"math"
	"strings"

	"divot/internal/itdr"
	"divot/internal/rng"
	"divot/internal/telemetry"
)

// Kind enumerates the injectable fault mechanisms.
type Kind int

const (
	// CompStuckHigh forces every comparator decision to 1.
	CompStuckHigh Kind = iota
	// CompStuckLow forces every comparator decision to 0.
	CompStuckLow
	// CompOffsetStep adds Magnitude volts of uncalibrated comparator input
	// offset (plus Rate volts per measurement since onset — aging drift).
	CompOffsetStep
	// CounterFlip XORs bit FlipBit into each bin's ones-count with
	// probability BinProb per bin (1 when zero) — single-event upsets.
	CounterFlip
	// PhaseStep shifts every ETS sampling instant by Magnitude seconds — a
	// PLL phase-step error.
	PhaseStep
	// JitterStep adds Magnitude seconds RMS (plus Rate per measurement) of
	// extra PLL jitter, in quadrature with the instrument's own.
	JitterStep
	// DeadBins kills a fixed set of ETS acquisition slices: either the
	// explicit Bins list or a random BinFraction of all bins (drawn once,
	// deterministically, from the plane's stream).
	DeadBins
	// SigmaDrift scales the comparator noise sigma by 1+Magnitude
	// (+Rate per measurement since onset) without the inverse map knowing.
	SigmaDrift
	// TempStep raises the environmental temperature excursion by Magnitude
	// °C for the faulted measurements — a thermal transient.
	TempStep
	// EMIBurst injects Magnitude volts of asynchronous EMI at the detector
	// for the faulted measurements.
	EMIBurst
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CompStuckHigh:
		return "comparator-stuck-high"
	case CompStuckLow:
		return "comparator-stuck-low"
	case CompOffsetStep:
		return "comparator-offset-step"
	case CounterFlip:
		return "counter-bit-flip"
	case PhaseStep:
		return "pll-phase-step"
	case JitterStep:
		return "pll-jitter-step"
	case DeadBins:
		return "dead-ets-bins"
	case SigmaDrift:
		return "noise-sigma-drift"
	case TempStep:
		return "temperature-step"
	case EMIBurst:
		return "emi-burst"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Mode is the temporal pattern of a schedule.
type Mode int

const (
	// Permanent: active from measurement Start onward. The zero value, so
	// Schedule{} means "always on".
	Permanent Mode = iota
	// OneShot: active for exactly the measurement numbered Start.
	OneShot
	// Intermittent: from Start onward, active on each measurement
	// independently with probability Duty.
	Intermittent
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Permanent:
		return "permanent"
	case OneShot:
		return "one-shot"
	case Intermittent:
		return "intermittent"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Schedule says when a fault is active, in instrument measurement sequence
// numbers (1-based; enrollment measurements count).
type Schedule struct {
	Mode  Mode
	Start uint64
	// Duty is the per-measurement activation probability for Intermittent.
	Duty float64
}

// Once schedules a fault for exactly measurement seq.
func Once(seq uint64) Schedule { return Schedule{Mode: OneShot, Start: seq} }

// From schedules a fault permanently from measurement seq onward.
func From(seq uint64) Schedule { return Schedule{Mode: Permanent, Start: seq} }

// Duty schedules a fault intermittently from measurement seq onward, active
// with the given per-measurement probability.
func Duty(seq uint64, duty float64) Schedule {
	return Schedule{Mode: Intermittent, Start: seq, Duty: duty}
}

// active decides whether the schedule fires at measurement seq, drawing the
// intermittent coin from the fault's own stream keyed by seq (not by how many
// times this has been asked), so the answer is a pure function of identity.
func (s Schedule) active(stream *rng.Stream, seq uint64) bool {
	if seq < s.Start {
		return false
	}
	switch s.Mode {
	case OneShot:
		return seq == s.Start
	case Intermittent:
		return stream.ChildN("duty", seq).Bool(s.Duty)
	}
	return true // Permanent
}

// Fault is one injectable fault. Which parameters matter depends on Kind;
// the rest are ignored.
type Fault struct {
	Kind     Kind
	Schedule Schedule
	// Magnitude is the kind-specific strength: volts (CompOffsetStep,
	// EMIBurst), relative sigma increase (SigmaDrift), seconds (PhaseStep,
	// JitterStep), °C (TempStep).
	Magnitude float64
	// Rate grows Magnitude by this much per measurement since onset —
	// drift-style faults.
	Rate float64
	// FlipBit is the counter bit a CounterFlip upsets.
	FlipBit uint
	// BinProb is the per-bin upset probability for CounterFlip (0 means 1).
	BinProb float64
	// Bins is the explicit dead-bin list for DeadBins.
	Bins []int
	// BinFraction kills a random fraction of all bins for DeadBins when
	// Bins is empty.
	BinFraction float64
}

// Helper constructors, one per mechanism, for readable experiment code.

// StuckComparator sticks every decision at a rail (high or low).
func StuckComparator(high bool, sch Schedule) Fault {
	k := CompStuckLow
	if high {
		k = CompStuckHigh
	}
	return Fault{Kind: k, Schedule: sch}
}

// OffsetStep adds step volts of uncalibrated comparator offset, drifting by
// ratePerMeasurement volts each measurement after onset.
func OffsetStep(step, ratePerMeasurement float64, sch Schedule) Fault {
	return Fault{Kind: CompOffsetStep, Schedule: sch, Magnitude: step, Rate: ratePerMeasurement}
}

// NoiseDrift scales the comparator sigma by 1+step, growing by
// ratePerMeasurement each measurement after onset.
func NoiseDrift(step, ratePerMeasurement float64, sch Schedule) Fault {
	return Fault{Kind: SigmaDrift, Schedule: sch, Magnitude: step, Rate: ratePerMeasurement}
}

// PhaseGlitch shifts all sampling instants by shift seconds.
func PhaseGlitch(shift float64, sch Schedule) Fault {
	return Fault{Kind: PhaseStep, Schedule: sch, Magnitude: shift}
}

// PhaseDrift ages the PLL timebase: every sampling instant slides by
// ratePerMeasurement seconds for each measurement since the fault's onset —
// the slow global decay that guarded re-enrollment absorbs.
func PhaseDrift(ratePerMeasurement float64, sch Schedule) Fault {
	return Fault{Kind: PhaseStep, Schedule: sch, Rate: ratePerMeasurement}
}

// JitterBurst adds rms seconds of extra PLL jitter.
func JitterBurst(rms float64, sch Schedule) Fault {
	return Fault{Kind: JitterStep, Schedule: sch, Magnitude: rms}
}

// DeadBinField kills a random fraction of all ETS bins.
func DeadBinField(fraction float64, sch Schedule) Fault {
	return Fault{Kind: DeadBins, Schedule: sch, BinFraction: fraction}
}

// DeadBinList kills exactly the listed ETS bins.
func DeadBinList(bins []int, sch Schedule) Fault {
	return Fault{Kind: DeadBins, Schedule: sch, Bins: bins}
}

// CounterUpset flips counter bit `bit` in each bin with probability prob.
func CounterUpset(bit uint, prob float64, sch Schedule) Fault {
	return Fault{Kind: CounterFlip, Schedule: sch, FlipBit: bit, BinProb: prob}
}

// TempGlitch raises the measurement temperature by deltaC °C.
func TempGlitch(deltaC float64, sch Schedule) Fault {
	return Fault{Kind: TempStep, Schedule: sch, Magnitude: deltaC}
}

// EMIGlitch injects amplitude volts of asynchronous EMI.
func EMIGlitch(amplitude float64, sch Schedule) Fault {
	return Fault{Kind: EMIBurst, Schedule: sch, Magnitude: amplitude}
}

// Plane is a set of faults attached to one instrument. It implements
// itdr.Injector. A plane must not be shared between instruments that measure
// concurrently (each endpoint gets its own plane); within one instrument the
// Bin closure it hands out is safe for the concurrent bin fan-out.
type Plane struct {
	faults  []Fault
	streams []*rng.Stream
	// dead caches the resolved dead-bin set per DeadBins fault, so the
	// random field is drawn from bin identity once and forever.
	dead []map[int]bool
	// Activations counts measurements on which at least one fault was
	// active — a convenience for tests and experiments.
	Activations int

	// sink, when non-nil, receives one EventFault per faulted measurement,
	// naming the active fault kinds. Wired by the owning instrument (see
	// itdr.Reflectometer.SetInjector) or directly via WireSink.
	sink       telemetry.Sink
	link, side string
}

// WireSink implements telemetry.Wirable: the plane emits fault-injection
// events to s, labelled with the given link id and side.
func (p *Plane) WireSink(s telemetry.Sink, link, side string) {
	p.sink, p.link, p.side = s, link, side
}

// NewPlane builds a fault plane drawing all of its randomness from labelled
// children of the given stream.
func NewPlane(stream *rng.Stream, faults ...Fault) *Plane {
	p := &Plane{
		faults:  faults,
		streams: make([]*rng.Stream, len(faults)),
		dead:    make([]map[int]bool, len(faults)),
	}
	for i := range faults {
		p.streams[i] = stream.ChildN("fault", uint64(i))
	}
	return p
}

// Faults returns the plane's fault list.
func (p *Plane) Faults() []Fault { return p.faults }

// deadSet resolves fault i's dead-bin membership function.
func (p *Plane) deadSet(i int) func(m int) bool {
	f := p.faults[i]
	if len(f.Bins) > 0 {
		if p.dead[i] == nil {
			set := make(map[int]bool, len(f.Bins))
			for _, b := range f.Bins {
				set[b] = true
			}
			p.dead[i] = set
		}
		set := p.dead[i]
		return func(m int) bool { return set[m] }
	}
	// Random field: membership is a pure hash of (fault stream, bin), so no
	// precomputation and no knowledge of the bin count is needed.
	frac := f.BinFraction
	st := p.streams[i]
	return func(m int) bool { return st.ChildN("dead", uint64(m)).Bool(frac) }
}

// BeginMeasurement implements itdr.Injector: it folds every fault active at
// measurement seq into one MeasurementFault.
func (p *Plane) BeginMeasurement(seq uint64) (itdr.MeasurementFault, bool) {
	var mf itdr.MeasurementFault
	var binFaults []int
	var activeKinds []string
	var tempDelta, emiAmp float64
	jitterSq := 0.0
	sigmaScale := 1.0
	active := 0
	for i, f := range p.faults {
		if !f.Schedule.active(p.streams[i], seq) {
			continue
		}
		active++
		if p.sink != nil {
			activeKinds = append(activeKinds, f.Kind.String())
		}
		age := float64(seq - f.Schedule.Start)
		switch f.Kind {
		case CompStuckHigh:
			mf.Stuck = itdr.StuckHigh
		case CompStuckLow:
			mf.Stuck = itdr.StuckLow
		case CompOffsetStep:
			mf.ExtraOffset += f.Magnitude + f.Rate*age
		case SigmaDrift:
			sigmaScale *= 1 + f.Magnitude + f.Rate*age
		case JitterStep:
			j := f.Magnitude + f.Rate*age
			jitterSq += j * j
		case PhaseStep:
			mf.PhaseOffset += f.Magnitude + f.Rate*age
		case TempStep:
			tempDelta += f.Magnitude + f.Rate*age
		case EMIBurst:
			emiAmp += f.Magnitude
		case DeadBins, CounterFlip:
			binFaults = append(binFaults, i)
		}
	}
	if active == 0 {
		return itdr.MeasurementFault{}, false
	}
	p.Activations++
	if p.sink != nil {
		p.sink.Emit(telemetry.Event{
			Kind: telemetry.EventFault,
			Link: p.link, Side: p.side,
			Round:  seq,
			Detail: strings.Join(activeKinds, "+"),
		})
	}
	if sigmaScale != 1 {
		mf.NoiseScale = sigmaScale
	}
	if jitterSq > 0 {
		mf.ExtraJitterRMS = math.Sqrt(jitterSq)
	}
	if tempDelta != 0 || emiAmp != 0 {
		mf.Condition = func(c itdr.ConditionTransform) itdr.ConditionTransform {
			c.DeltaT += tempDelta
			c.EMIAmplitude += emiAmp
			return c
		}
	}
	if len(binFaults) > 0 {
		mf.Bin = p.binFault(binFaults, seq)
	}
	return mf, true
}

// binFault builds the per-bin fault closure for the given active fault
// indices at measurement seq. All randomness inside is keyed by (fault, bin,
// seq) identity, so the closure is a pure function of m and safe for the
// concurrent bin fan-out.
func (p *Plane) binFault(idx []int, seq uint64) func(m int) itdr.BinFault {
	type binSrc struct {
		kind Kind
		dead func(m int) bool
		st   *rng.Stream
		prob float64
		xor  uint32
	}
	srcs := make([]binSrc, 0, len(idx))
	for _, i := range idx {
		f := p.faults[i]
		s := binSrc{kind: f.Kind, st: p.streams[i]}
		switch f.Kind {
		case DeadBins:
			s.dead = p.deadSet(i)
		case CounterFlip:
			s.prob = f.BinProb
			if s.prob == 0 {
				s.prob = 1
			}
			s.xor = 1 << f.FlipBit
		}
		srcs = append(srcs, s)
	}
	return func(m int) itdr.BinFault {
		var bf itdr.BinFault
		for _, s := range srcs {
			switch s.kind {
			case DeadBins:
				if s.dead(m) {
					bf.Dead = true
				}
			case CounterFlip:
				if s.st.Child("flip").ChildN("seq", seq).ChildN("bin", uint64(m)).Bool(s.prob) {
					bf.CounterXOR ^= s.xor
				}
			}
		}
		return bf
	}
}
