package netlink

import (
	"encoding/binary"

	"divot/internal/bus"
)

// Deframer turns a continuous 10b symbol stream into frames: it aligns on
// K28.5 commas, decodes bytes, uses the header's length field to find the
// frame boundary, and validates the CRC. Corruption drops the current frame
// and the deframer re-locks on the next comma — the recovery behaviour of a
// real deserializer.
type Deframer struct {
	dec    bus.Decoder8b10b
	buf    []byte
	locked bool

	// Frames and Errors count deframing outcomes.
	Frames int64
	Errors int64
}

// Push consumes symbols and returns any complete frames. Decode and CRC
// errors are counted, the partial frame is discarded, and scanning resumes
// at the next comma.
func (d *Deframer) Push(symbols []uint16) []Frame {
	var out []Frame
	for _, sym := range symbols {
		if bus.IsComma(sym) {
			if err := d.dec.ConsumeComma(sym); err != nil {
				// Disparity slip: resynchronize the decoder to the comma's
				// implied state and drop the partial frame.
				d.Errors++
				d.dec = bus.Decoder8b10b{}
				_ = d.dec.ConsumeComma(sym)
			}
			if len(d.buf) > 0 {
				// A comma mid-frame means the previous frame was cut short.
				d.Errors++
			}
			d.buf = d.buf[:0]
			d.locked = true
			continue
		}
		if !d.locked {
			// Before the first comma the stream is unaligned noise; a real
			// deserializer discards it.
			continue
		}
		b, err := d.dec.DecodeSymbol(sym)
		if err != nil {
			d.Errors++
			d.buf = d.buf[:0]
			d.locked = false // wait for the next comma
			continue
		}
		d.buf = append(d.buf, b)
		if want, ok := d.expected(); ok && len(d.buf) >= want {
			f, err := Unmarshal(d.buf[:want])
			if err != nil {
				d.Errors++
			} else {
				d.Frames++
				out = append(out, f)
			}
			d.buf = d.buf[:0]
		}
	}
	return out
}

// expected returns the full frame length once the header is available.
func (d *Deframer) expected() (int, bool) {
	if len(d.buf) < headerBytes {
		return 0, false
	}
	length := int(binary.BigEndian.Uint16(d.buf[4:]))
	if length > MaxPayload {
		return headerBytes + crcBytes, true // will fail Unmarshal and recover
	}
	return headerBytes + length + crcBytes, true
}
