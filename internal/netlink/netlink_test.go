package netlink

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"divot/internal/memctl"
)

func TestFrameRoundTrip(t *testing.T) {
	f := func(dst, src uint16, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		orig := Frame{Dst: dst, Src: src, Payload: payload}
		raw, err := orig.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(raw)
		if err != nil {
			return false
		}
		return back.Dst == dst && back.Src == src && bytes.Equal(back.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	f := Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Marshal(); err == nil {
		t.Error("expected payload-size error")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	raw, err := (Frame{Dst: 1, Src: 2, Payload: []byte("hello")}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for name, mangle := range map[string]func([]byte) []byte{
		"short":       func(b []byte) []byte { return b[:4] },
		"bit flip":    func(b []byte) []byte { b[7] ^= 0x10; return b },
		"crc flip":    func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"bad length":  func(b []byte) []byte { b[5] = 0xFF; return b },
		"truncated":   func(b []byte) []byte { return b[:len(b)-1] },
		"extra bytes": func(b []byte) []byte { return append(b, 0) },
	} {
		mangled := mangle(append([]byte(nil), raw...))
		if _, err := Unmarshal(mangled); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPortEndToEnd(t *testing.T) {
	tx := NewPort(0x0001, nil)
	rx := NewPort(0x0002, nil)
	payload := []byte("the quick brown fox")
	symbols, err := tx.Transmit(0x0002, payload)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rx.Receive(symbols)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dst != 0x0002 || f.Src != 0x0001 || !bytes.Equal(f.Payload, payload) {
		t.Errorf("frame = %+v", f)
	}
	if tx.Stats.FramesSent != 1 || rx.Stats.FramesReceived != 1 {
		t.Errorf("stats: %+v %+v", tx.Stats, rx.Stats)
	}
}

func TestPortMultipleFramesShareDisparityState(t *testing.T) {
	// The 8b/10b running disparity carries across frames on a real wire;
	// a stream of frames must keep decoding.
	tx := NewPort(1, nil)
	rx := NewPort(2, nil)
	for i := 0; i < 20; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, i*7%64)
		symbols, err := tx.Transmit(2, payload)
		if err != nil {
			t.Fatal(err)
		}
		f, err := rx.Receive(symbols)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(f.Payload, payload) {
			t.Fatalf("frame %d payload differs", i)
		}
	}
}

func TestGateDownBlocksTransmitAndReceive(t *testing.T) {
	gate := memctl.NewStaticGate(false)
	tx := NewPort(1, gate)
	if _, err := tx.Transmit(2, []byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Errorf("tx error = %v", err)
	}
	okTx := NewPort(1, nil)
	symbols, err := okTx.Transmit(2, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	rx := NewPort(2, gate)
	if _, err := rx.Receive(symbols); !errors.Is(err, ErrLinkDown) {
		t.Errorf("rx error = %v", err)
	}
	if tx.Stats.FramesDropped != 1 || rx.Stats.FramesDropped != 1 {
		t.Errorf("drop counters: %+v %+v", tx.Stats, rx.Stats)
	}
	// Gate recovery restores traffic.
	gate.Set(true)
	if _, err := rx.Receive(symbols); err != nil {
		t.Fatalf("receive after recovery: %v", err)
	}
}

func TestReceiveFlagsWireCorruption(t *testing.T) {
	tx := NewPort(1, nil)
	rx := NewPort(2, nil)
	symbols, err := tx.Transmit(2, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// An invalid 10b symbol (all zeros) is a line-coding violation.
	symbols[3] = 0
	if _, err := rx.Receive(symbols); !errors.Is(err, ErrCorrupt) {
		t.Errorf("decode error = %v", err)
	}
	if rx.Stats.DecodeErrors != 1 {
		t.Errorf("DecodeErrors = %d", rx.Stats.DecodeErrors)
	}
}
