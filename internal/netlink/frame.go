// Package netlink extends DIVOT to a network interface — §VI names "network
// interfaces" alongside I/O buses and storage. It implements a minimal
// framed MAC layer over an 8b/10b-coded serial lane: framing with CRC-32,
// transmit/receive queues, and the DIVOT gates in both directions, so a NIC
// whose cable is re-plugged into a rogue switch port (or tapped mid-span)
// stops passing traffic and raises alarms.
package netlink

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Frame layout: | dst(2) | src(2) | length(2) | payload(0..MaxPayload) | crc32(4) |
const (
	headerBytes = 6
	crcBytes    = 4
	// MaxPayload is the largest payload per frame.
	MaxPayload = 1500
)

// Frame is one MAC frame.
type Frame struct {
	Dst, Src uint16
	Payload  []byte
}

// Marshal serializes the frame with its CRC.
func (f Frame) Marshal() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("netlink: payload %d exceeds %d", len(f.Payload), MaxPayload)
	}
	buf := make([]byte, headerBytes+len(f.Payload)+crcBytes)
	binary.BigEndian.PutUint16(buf[0:], f.Dst)
	binary.BigEndian.PutUint16(buf[2:], f.Src)
	binary.BigEndian.PutUint16(buf[4:], uint16(len(f.Payload)))
	copy(buf[headerBytes:], f.Payload)
	crc := crc32.ChecksumIEEE(buf[:headerBytes+len(f.Payload)])
	binary.BigEndian.PutUint32(buf[headerBytes+len(f.Payload):], crc)
	return buf, nil
}

// Unmarshal parses and validates a serialized frame.
func Unmarshal(buf []byte) (Frame, error) {
	if len(buf) < headerBytes+crcBytes {
		return Frame{}, fmt.Errorf("netlink: frame of %d bytes too short", len(buf))
	}
	length := int(binary.BigEndian.Uint16(buf[4:]))
	if length > MaxPayload {
		return Frame{}, fmt.Errorf("netlink: declared payload %d exceeds %d", length, MaxPayload)
	}
	want := headerBytes + length + crcBytes
	if len(buf) != want {
		return Frame{}, fmt.Errorf("netlink: frame of %d bytes, header declares %d", len(buf), want)
	}
	crc := binary.BigEndian.Uint32(buf[headerBytes+length:])
	if got := crc32.ChecksumIEEE(buf[:headerBytes+length]); got != crc {
		return Frame{}, fmt.Errorf("netlink: CRC mismatch (%08x vs %08x)", got, crc)
	}
	f := Frame{
		Dst:     binary.BigEndian.Uint16(buf[0:]),
		Src:     binary.BigEndian.Uint16(buf[2:]),
		Payload: append([]byte(nil), buf[headerBytes:headerBytes+length]...),
	}
	return f, nil
}
