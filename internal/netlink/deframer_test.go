package netlink

import (
	"bytes"
	"testing"

	"divot/internal/bus"
)

func TestDeframerStream(t *testing.T) {
	tx := NewPort(1, nil)
	var d Deframer
	var wire []uint16
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), {}, bytes.Repeat([]byte{7}, 100)}
	for _, p := range payloads {
		syms, err := tx.TransmitFramed(2, p)
		if err != nil {
			t.Fatal(err)
		}
		wire = append(wire, syms...)
	}
	frames := d.Push(wire)
	if len(frames) != len(payloads) {
		t.Fatalf("deframed %d/%d frames (errors %d)", len(frames), len(payloads), d.Errors)
	}
	for i, f := range frames {
		if !bytes.Equal(f.Payload, payloads[i]) {
			t.Errorf("frame %d payload mismatch", i)
		}
		if f.Src != 1 || f.Dst != 2 {
			t.Errorf("frame %d addressing %+v", i, f)
		}
	}
	if d.Errors != 0 {
		t.Errorf("errors = %d", d.Errors)
	}
}

func TestDeframerSplitDelivery(t *testing.T) {
	// Symbols arrive in arbitrary chunks (as from a serial receiver).
	tx := NewPort(1, nil)
	syms, err := tx.TransmitFramed(2, []byte("chunked delivery"))
	if err != nil {
		t.Fatal(err)
	}
	var d Deframer
	var got []Frame
	for i := 0; i < len(syms); i += 3 {
		end := i + 3
		if end > len(syms) {
			end = len(syms)
		}
		got = append(got, d.Push(syms[i:end])...)
	}
	if len(got) != 1 || string(got[0].Payload) != "chunked delivery" {
		t.Fatalf("frames = %+v", got)
	}
}

func TestDeframerIgnoresPreCommaNoise(t *testing.T) {
	tx := NewPort(1, nil)
	syms, err := tx.TransmitFramed(2, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	noise := []uint16{0x3FF, 0x001, 0x155}
	var d Deframer
	frames := d.Push(append(noise, syms...))
	if len(frames) != 1 {
		t.Fatalf("frames = %d (errors %d)", len(frames), d.Errors)
	}
}

func TestDeframerRecoversAfterCorruption(t *testing.T) {
	tx := NewPort(1, nil)
	a, err := tx.TransmitFramed(2, []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tx.TransmitFramed(2, []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a symbol in the middle of frame a.
	a[4] = 0 // invalid symbol
	var d Deframer
	frames := d.Push(append(a, b...))
	if len(frames) != 1 || string(frames[0].Payload) != "second" {
		t.Fatalf("frames = %+v (errors %d)", frames, d.Errors)
	}
	if d.Errors == 0 {
		t.Error("corruption should be counted")
	}
}

func TestDeframerMidFrameCommaDropsPartial(t *testing.T) {
	tx := NewPort(1, nil)
	a, err := tx.TransmitFramed(2, []byte("truncated!"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tx.TransmitFramed(2, []byte("whole"))
	if err != nil {
		t.Fatal(err)
	}
	// Deliver only the first half of frame a, then frame b.
	var d Deframer
	frames := d.Push(append(a[:len(a)/2], b...))
	if len(frames) != 1 || string(frames[0].Payload) != "whole" {
		t.Fatalf("frames = %+v", frames)
	}
	if d.Errors == 0 {
		t.Error("truncated frame should be counted")
	}
}

func TestCommaCodec(t *testing.T) {
	var enc bus.Encoder8b10b
	c1 := enc.EncodeComma()
	if !bus.IsComma(c1) {
		t.Fatal("encoded comma not recognized")
	}
	// Disparity alternates across commas.
	c2 := enc.EncodeComma()
	if c1 == c2 {
		t.Error("consecutive commas should use alternating forms")
	}
	var dec bus.Decoder8b10b
	if err := dec.ConsumeComma(c1); err != nil {
		t.Fatal(err)
	}
	if err := dec.ConsumeComma(c2); err != nil {
		t.Fatal(err)
	}
	// Wrong-polarity comma is a disparity violation.
	var dec2 bus.Decoder8b10b
	if err := dec2.ConsumeComma(c2); err == nil {
		t.Error("expected disparity violation")
	}
	if err := dec2.ConsumeComma(0x123); err == nil {
		t.Error("non-comma should be rejected")
	}
	if bus.IsComma(0x155) {
		t.Error("0x155 misidentified as comma")
	}
}
