package netlink

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes to the frame parser: it must never
// panic, and anything it accepts must re-marshal to the same bytes.
func FuzzUnmarshal(f *testing.F) {
	seed, _ := (Frame{Dst: 1, Src: 2, Payload: []byte("seed")}).Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := fr.Marshal()
		if err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("accepted frame is not canonical")
		}
	})
}

// FuzzFrameRoundTrip checks marshal/unmarshal over arbitrary field values.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint16(2), []byte("payload"))
	f.Fuzz(func(t *testing.T, dst, src uint16, payload []byte) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		raw, err := (Frame{Dst: dst, Src: src, Payload: payload}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		if back.Dst != dst || back.Src != src || !bytes.Equal(back.Payload, payload) {
			t.Fatal("round trip mismatch")
		}
	})
}
