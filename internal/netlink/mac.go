package netlink

import (
	"errors"
	"fmt"

	"divot/internal/bus"
	"divot/internal/memctl"
)

// Sentinel errors.
var (
	// ErrLinkDown is returned when the DIVOT gate holds the port down.
	ErrLinkDown = errors.New("netlink: port held down by authentication gate")
	// ErrCorrupt is returned when decode or CRC fails on receive.
	ErrCorrupt = errors.New("netlink: corrupt frame")
)

// Stats counts port activity.
type Stats struct {
	FramesSent     int64
	FramesReceived int64
	FramesDropped  int64 // gate-down drops
	DecodeErrors   int64
	CRCErrors      int64
}

// Port is one end of the protected network link: framing, 8b/10b line
// coding, and the DIVOT gate. A port refuses to transmit while its gate is
// down (the host side reacting to a tapped or swapped cable) and the peer
// refuses to accept (the switch side reacting symmetrically).
type Port struct {
	// Addr is the port's MAC-style address.
	Addr uint16

	gate memctl.Gate
	enc  *bus.Encoder8b10b
	dec  *bus.Decoder8b10b

	// Stats accumulates port activity.
	Stats Stats
}

// NewPort builds a port. A nil gate means always authorized.
func NewPort(addr uint16, gate memctl.Gate) *Port {
	if gate == nil {
		gate = memctl.GateFunc(func() bool { return true })
	}
	return &Port{Addr: addr, gate: gate, enc: &bus.Encoder8b10b{}, dec: &bus.Decoder8b10b{}}
}

// Transmit frames and line-codes a payload for the wire. It fails when the
// gate is down.
func (p *Port) Transmit(dst uint16, payload []byte) ([]uint16, error) {
	if !p.gate.Authorized() {
		p.Stats.FramesDropped++
		return nil, fmt.Errorf("%w: tx to %04x", ErrLinkDown, dst)
	}
	f := Frame{Dst: dst, Src: p.Addr, Payload: payload}
	raw, err := f.Marshal()
	if err != nil {
		return nil, err
	}
	p.Stats.FramesSent++
	return p.enc.Encode(raw), nil
}

// TransmitFramed is Transmit with a leading K28.5 comma, for receivers that
// deframe a continuous symbol stream (see Deframer).
func (p *Port) TransmitFramed(dst uint16, payload []byte) ([]uint16, error) {
	if !p.gate.Authorized() {
		p.Stats.FramesDropped++
		return nil, fmt.Errorf("%w: tx to %04x", ErrLinkDown, dst)
	}
	f := Frame{Dst: dst, Src: p.Addr, Payload: payload}
	raw, err := f.Marshal()
	if err != nil {
		return nil, err
	}
	p.Stats.FramesSent++
	out := make([]uint16, 0, len(raw)+1)
	out = append(out, p.enc.EncodeComma())
	return append(out, p.enc.Encode(raw)...), nil
}

// Receive decodes symbols from the wire back into a frame. It fails when
// the gate is down (unauthenticated peer) or the stream is corrupt.
func (p *Port) Receive(symbols []uint16) (Frame, error) {
	if !p.gate.Authorized() {
		p.Stats.FramesDropped++
		return Frame{}, fmt.Errorf("%w: rx", ErrLinkDown)
	}
	raw, err := p.dec.Decode(symbols)
	if err != nil {
		p.Stats.DecodeErrors++
		return Frame{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	f, err := Unmarshal(raw)
	if err != nil {
		p.Stats.CRCErrors++
		return Frame{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	p.Stats.FramesReceived++
	return f, nil
}
