package txline

import (
	"testing"

	"divot/internal/rng"
	"divot/internal/signal"
)

func cloneSim(t *testing.T, spec CloneSpec) float64 {
	t.Helper()
	victim := New("victim", DefaultConfig(), rng.New(60))
	clone := CloneLine(victim, spec, rng.New(61))
	probe := DefaultProbe()
	a := victim.Reflect(probe, 0, 1, testRate, testN)
	b := clone.Reflect(probe, 0, 1, testRate, testN)
	da := signal.Derivative(signal.GaussianSmooth(a, 4))
	db := signal.Derivative(signal.GaussianSmooth(b, 4))
	return signal.NormalizedInnerProduct(da, db)
}

func TestCloneBeatsRandomImpostor(t *testing.T) {
	// A clone with the stolen profile must correlate better than a random
	// line — otherwise the attacker model is vacuous.
	clone := cloneSim(t, DefaultCloneSpec())
	victim := New("victim", DefaultConfig(), rng.New(60))
	random := New("random", DefaultConfig(), rng.New(62))
	probe := DefaultProbe()
	a := victim.Reflect(probe, 0, 1, testRate, testN)
	b := random.Reflect(probe, 0, 1, testRate, testN)
	randomSim := signal.NormalizedInnerProduct(
		signal.Derivative(signal.GaussianSmooth(a, 4)),
		signal.Derivative(signal.GaussianSmooth(b, 4)))
	if clone <= randomSim {
		t.Errorf("clone similarity %v should beat random impostor %v", clone, randomSim)
	}
}

func TestCloneStillFallsShortOfGenuine(t *testing.T) {
	// The PUF claim: even a capable clone stays well below a genuine
	// re-measurement, because the sub-window randomness cannot be copied.
	sim := cloneSim(t, DefaultCloneSpec())
	if sim > 0.8 {
		t.Errorf("3 mm-resolution clone reached similarity %v; PUF margin too thin", sim)
	}
}

func TestCloneQualityImprovesWithResolution(t *testing.T) {
	coarse := cloneSim(t, CloneSpec{ControlResolution: 20e-3, ResidualContrastRMS: 0.01, MatchTermination: true})
	fine := cloneSim(t, CloneSpec{ControlResolution: 2e-3, ResidualContrastRMS: 0.01, MatchTermination: true})
	if fine <= coarse {
		t.Errorf("finer control (%v) should beat coarse (%v)", fine, coarse)
	}
}

func TestCloneResidualRandomnessHurts(t *testing.T) {
	quiet := cloneSim(t, CloneSpec{ControlResolution: 3e-3, ResidualContrastRMS: 0.002, MatchTermination: true})
	noisy := cloneSim(t, CloneSpec{ControlResolution: 3e-3, ResidualContrastRMS: 0.02, MatchTermination: true})
	if noisy >= quiet {
		t.Errorf("more residual randomness (%v) should hurt vs less (%v)", noisy, quiet)
	}
}

func TestClonePanicsOnBadResolution(t *testing.T) {
	victim := New("victim", DefaultConfig(), rng.New(63))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CloneLine(victim, CloneSpec{ControlResolution: 0}, rng.New(64))
}

func TestCloneMatchedTermination(t *testing.T) {
	victim := New("victim", DefaultConfig(), rng.New(65))
	matched := CloneLine(victim, DefaultCloneSpec(), rng.New(66))
	if matched.Termination() != victim.Termination() {
		t.Error("matched clone should copy the termination")
	}
	spec := DefaultCloneSpec()
	spec.MatchTermination = false
	unmatched := CloneLine(victim, spec, rng.New(67))
	if unmatched.Termination() == victim.Termination() {
		t.Error("unmatched clone should draw its own termination")
	}
}
