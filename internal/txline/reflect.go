package txline

import (
	"math"

	"divot/internal/signal"
)

// Probe describes the edge waveform used to interrogate the line.
type Probe struct {
	// RiseTime is the 10-90 % rise time of the launched edge in seconds.
	RiseTime float64
	// Amplitude is the edge swing in volts.
	Amplitude float64
	// SecondOrder enables the dominant multi-bounce echo term
	// (termination → source → termination).
	SecondOrder bool
}

// DefaultProbe returns a probe matching a 156.25 MHz FPGA I/O edge.
func DefaultProbe() Probe {
	return Probe{RiseTime: 120e-12, Amplitude: 0.9, SecondOrder: true}
}

// Reflect synthesizes the back-reflection waveform received at the source for
// the line's current state. deltaT is the temperature offset from the 23 °C
// calibration point, stretch is the mechanical time-axis factor (1 = none),
// and the output is sampled at rate over n samples starting at t = 0 (edge
// launch).
//
// The result is the superposition over every impedance boundary of the
// incident edge scaled by the boundary's reflection coefficient, delayed by
// its round-trip time (under stretch) and attenuated by the line loss.
func (l *Line) Reflect(p Probe, deltaT, stretch float64, rate float64, n int) *signal.Waveform {
	return l.ReflectInto(nil, p, deltaT, stretch, rate, n)
}

// reflectEvent is one arrival in the reflection superposition: round-trip
// time t (unstretched) and amplitude a relative to the incident edge.
type reflectEvent struct{ t, a float64 }

// ReflectScratch holds the reusable buffers of ReflectInto: the effective
// impedance profile, the event list, and the output waveform. The zero value
// is ready to use; one scratch serves one goroutine.
type ReflectScratch struct {
	z      []float64
	events []reflectEvent
	hi     []int
	out    *signal.Waveform
}

// ReflectInto is Reflect with every buffer recycled from s (nil s behaves
// like Reflect). The returned waveform aliases s.out and is valid until the
// next ReflectInto on the same scratch; numerics are bit-identical to
// Reflect.
func (l *Line) ReflectInto(s *ReflectScratch, p Probe, deltaT, stretch float64, rate float64, n int) *signal.Waveform {
	if s == nil {
		s = &ReflectScratch{}
	}
	// Thermal slowing of the wave stretches all arrival times on top of
	// any mechanical strain.
	stretch *= 1 + l.cfg.ThermalStretchPerC*deltaT
	z, term := l.effectiveProfileInto(s.z[:0], deltaT)
	s.z = z
	segDt := 2 * l.cfg.SegmentLength / l.cfg.Velocity // round trip per segment
	alpha := l.cfg.LossDBPerMeter * math.Ln10 / 20    // nepers per meter, one way

	type event = reflectEvent
	events := s.events[:0]
	if cap(events) < len(z)+2 {
		events = make([]event, 0, len(z)+2)
	}
	// Launch interface (source impedance to first segment) is excluded: the
	// iTDR couples after the driver, so this static offset carries no IIP
	// information and is removed during calibration anyway.
	for i := 0; i < len(z)-1; i++ {
		g := (z[i+1] - z[i]) / (z[i+1] + z[i])
		if g == 0 {
			continue
		}
		d := float64(i+1) * l.cfg.SegmentLength
		att := math.Exp(-2 * alpha * d)
		events = append(events, event{t: float64(i+1) * segDt, a: g * att})
	}
	// Termination reflection.
	zLast := z[len(z)-1]
	gTerm := (term - zLast) / (term + zLast)
	attTerm := math.Exp(-2 * alpha * l.cfg.Length)
	tTerm := l.RoundTripTime()
	events = append(events, event{t: tTerm, a: gTerm * attTerm})
	if p.SecondOrder {
		// Echo: wave reflects off termination, travels back, re-reflects
		// off the source impedance, and bounces off the termination again.
		gSrc := (l.cfg.SourceZ - z[0]) / (l.cfg.SourceZ + z[0])
		echo := gTerm * gSrc * gTerm * math.Exp(-4*alpha*l.cfg.Length)
		events = append(events, event{t: 2 * tTerm, a: echo})
	}
	s.events = events

	s.out = signal.Reuse(s.out, rate, n)
	out := s.out
	sigma := p.RiseTime / 2.563
	// Each reflection is the incident erf edge delayed to the event time.
	// Evaluate the edge only within ±5σ of its transition and hold 0/full
	// outside — exact to 3e-7 and ~50x faster than evaluating erf everywhere.
	window := 5 * sigma

	// Post-window samples see the full step of every earlier event, so the
	// naive superposition re-adds each event's amplitude over an O(n) tail —
	// ~100k additions per synthesis at the default geometry. Events are
	// emitted in arrival order, which makes the window-end indexes
	// monotonically non-decreasing; when they are, each sample's tail sum is
	// a prefix sum over the event amplitudes and can be written once by
	// assignment into the zeroed buffer. The running prefix uses the same
	// left-to-right fold the tail loops performed, so results stay
	// bit-identical (see TestReflectIntoMatchesReference).
	if cap(s.hi) < len(events) {
		s.hi = make([]int, len(events))
	}
	his := s.hi[:len(events)]
	mono := len(events) > 0
	prev := 0
	for e, ev := range events {
		hi := int((ev.t*stretch+window)*rate) + 1
		if hi > n {
			hi = n
		}
		his[e] = hi
		if hi < prev {
			mono = false
		}
		prev = hi
	}
	if mono && his[0] >= 0 {
		// Pass 1: fill each region [hi_e, hi_{e+1}) with the prefix sum of
		// amplitudes through event e. Assignment, not accumulation — the
		// buffer was zeroed by Reuse and the regions partition [hi_0, n).
		acc := 0.0
		for e, ev := range events {
			acc += p.Amplitude * ev.a
			end := n
			if e+1 < len(events) {
				end = his[e+1]
			}
			for i := his[e]; i < end; i++ {
				out.Samples[i] = acc
			}
		}
		// Pass 2: the windowed erf transitions, added in event order on top
		// of the prefix fill — the same order the combined loop used, since
		// for any sample every tail contribution comes from an earlier event
		// than every window contribution.
		for _, ev := range events {
			tEv := ev.t * stretch
			amp := p.Amplitude * ev.a
			loIdx := int((tEv - window) * rate)
			hiIdx := int((tEv+window)*rate) + 1
			if loIdx < 0 {
				loIdx = 0
			}
			if hiIdx > n {
				hiIdx = n
			}
			for i := loIdx; i < hiIdx; i++ {
				t := float64(i)/rate - tEv
				out.Samples[i] += amp * 0.5 * (1 + math.Erf(t/(sigma*math.Sqrt2)))
			}
		}
		return out
	}

	// Fallback for non-monotone arrival times (negative stretch or a
	// pathological profile): the original combined superposition.
	for _, ev := range events {
		tEv := ev.t * stretch
		amp := p.Amplitude * ev.a
		loIdx := int((tEv - window) * rate)
		hiIdx := int((tEv+window)*rate) + 1
		if loIdx < 0 {
			loIdx = 0
		}
		if hiIdx > n {
			hiIdx = n
		}
		for i := loIdx; i < hiIdx; i++ {
			t := float64(i)/rate - tEv
			out.Samples[i] += amp * 0.5 * (1 + math.Erf(t/(sigma*math.Sqrt2)))
		}
		// Samples after the window see the full step.
		for i := hiIdx; i < n; i++ {
			out.Samples[i] += amp
		}
	}
	return out
}

// TotalReflectionEnergyBound returns the sum of absolute reflection
// coefficients — an upper bound on the reflected amplitude relative to the
// incident edge, used to check passivity.
func (l *Line) TotalReflectionEnergyBound() float64 {
	z, term := l.effectiveProfile(0)
	var s float64
	for i := 0; i < len(z)-1; i++ {
		s += math.Abs((z[i+1] - z[i]) / (z[i+1] + z[i]))
	}
	zLast := z[len(z)-1]
	s += math.Abs((term - zLast) / (term + zLast))
	return s
}
